package encshare

import (
	"net"
	"sync"
	"testing"
	"time"

	"encshare/internal/filter"
)

// TestStaleEpochIsRetryable pins the typed-error contract the cluster
// failover path relies on: a replica pinned ahead of its data refuses
// reads with a StaleEpochError, and the router must classify that as
// retryable to fail the frame over to an in-sync sibling.
func TestStaleEpochIsRetryable(t *testing.T) {
	if !filter.Retryable(&filter.StaleEpochError{Pinned: 1, Current: 2}) {
		t.Fatal("StaleEpochError is not Retryable")
	}
	if filter.Retryable(&filter.SeqGapError{Want: 2, Got: 5}) {
		t.Fatal("SeqGapError classified Retryable: resending a gapped batch is not safe")
	}
}

// TestEpochFencedReaders hammers a reader session against a live
// writer over TCP. The reader dialed before any mutation, so its epoch
// pin goes stale on every write; the server must fence each stale read
// (never serve a torn or stale answer) and the session must re-pin and
// retry transparently. Every answer must therefore be EXACTLY the
// document at some write boundary — the root's regions child plus a
// contiguous run of appended ones — and the observed write count must
// never go backwards.
func TestEpochFencedReaders(t *testing.T) {
	keys, err := GenerateKeys(Params{P: 83}, testNames(t))
	if err != nil {
		t.Fatal(err)
	}
	db := encodeFresh(t, keys, testXML)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go db.Serve(l, keys.Params())
	defer l.Close()
	addr := l.Addr().String()

	reader, err := Dial(keys, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer reader.Close()
	writer, err := Dial(keys, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer writer.Close()

	// Writer: appendInserts appends under the root, so write k puts a
	// <regions/> at pre 10+k and shifts nothing — the valid snapshots
	// are exactly {2} ∪ {11..10+k}.
	const appends = 12
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for i := 0; i < appends; i++ {
			if _, err := writer.Insert(1, "regions"); err != nil {
				t.Errorf("append %d: %v", i, err)
				return
			}
			// Wide enough for a retried read to land between writes even
			// under -race; the reader still overlaps several epochs.
			time.Sleep(15 * time.Millisecond)
		}
	}()

	seen := 0 // appended regions observed so far; must not regress
	for loop := 0; ; loop++ {
		res, err := reader.Query("//regions")
		if err != nil {
			t.Fatalf("reader query %d: %v", loop, err)
		}
		if len(res.Pres) == 0 || res.Pres[0] != 2 {
			t.Fatalf("query %d: %v does not start with the original regions node", loop, res.Pres)
		}
		k := len(res.Pres) - 1
		if k > appends {
			t.Fatalf("query %d: %d appended regions, only %d written", loop, k, appends)
		}
		for i := 1; i <= k; i++ {
			if res.Pres[i] != int64(10+i) {
				t.Fatalf("query %d saw a torn snapshot: %v (appended regions must sit at 11..%d)", loop, res.Pres, 10+k)
			}
		}
		if k < seen {
			t.Fatalf("query %d went back in time: %d appended regions after seeing %d", loop, k, seen)
		}
		seen = k
		select {
		case <-done:
			wg.Wait()
			// One final read must see every write.
			res, err := reader.Query("//regions")
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Pres) != appends+1 {
				t.Fatalf("final read sees %d regions nodes, want %d", len(res.Pres), appends+1)
			}
			return
		default:
		}
	}
}
