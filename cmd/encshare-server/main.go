// Command encshare-server loads an encrypted database file produced by
// encshare-encode and serves the ServerFilter API over TCP (the paper's
// server side, §5.2). The server holds only polynomial shares — it can
// evaluate them at points the client sends, but the results are
// meaningless without the client's seed.
//
// The endpoint speaks both filter protocols: the original per-call
// exchanges and the batched frames (one per engine step), with -workers
// bounding the pool that evaluates batch members in parallel. A shard
// file from encshare-encode -shards serves exactly like a full database
// (the cluster protocol discovers its pre range at dial time);
// -manifest/-shard resolve the shard's file (and listen address, when
// recorded) from a cluster manifest instead of naming it with -db, and
// -replica picks which copy of a replicated shard (encshare-encode
// -replicas) this process serves — every replica is byte-identical, so
// any copy answers any read.
//
// Usage:
//
//	encshare-server -db auction.db -listen :7083 -workers 8 -cache 4096
//	encshare-server -manifest auction.manifest.json -shard 1 -listen :7084
//	encshare-server -manifest auction.manifest.json -shard 1 -replica 1 -listen :7184
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"path/filepath"

	"encshare"
	"encshare/internal/cluster"
	"encshare/internal/minisql"
)

func main() {
	var (
		p        = flag.Uint("p", 83, "field characteristic (prime)")
		e        = flag.Uint("e", 1, "field extension degree")
		dbPath   = flag.String("db", "encrypted.db", "database file from encshare-encode")
		manifest = flag.String("manifest", "", "cluster manifest from encshare-encode -shards")
		shard    = flag.Int("shard", -1, "shard index to serve from -manifest")
		replica  = flag.Int("replica", 0, "replica index of the shard to serve (with -manifest)")
		listen   = flag.String("listen", "", "listen address (default 127.0.0.1:7083, or the manifest's addr)")
		workers  = flag.Int("workers", 0, "batch worker pool size (0 = number of CPUs)")
		cache    = flag.Int("cache", 4096, "decoded-polynomial cache entries (0 = default 4096, negative disables)")
	)
	flag.Parse()

	path := *dbPath
	addr := *listen
	if *manifest != "" {
		m, err := cluster.LoadManifest(*manifest)
		if err != nil {
			fatal(err)
		}
		if *shard < 0 || *shard >= len(m.Shards) {
			fatal(fmt.Errorf("-shard %d out of range: manifest %s has %d shards", *shard, *manifest, len(m.Shards)))
		}
		info := m.Shards[*shard]
		dbs := info.ReplicaDBs()
		if len(dbs) == 0 {
			fatal(fmt.Errorf("manifest shard %d has no db file", *shard))
		}
		if *replica < 0 || *replica >= info.Replicas() {
			fatal(fmt.Errorf("-replica %d out of range: manifest shard %d has %d replicas", *replica, *shard, info.Replicas()))
		}
		// Replica files are byte-identical; if the manifest lists fewer
		// files than addresses, any copy serves any replica slot.
		path = dbs[min(*replica, len(dbs)-1)]
		if !filepath.IsAbs(path) {
			path = filepath.Join(filepath.Dir(*manifest), path)
		}
		if addr == "" {
			if addrs := info.ReplicaAddrs(); *replica < len(addrs) {
				addr = addrs[*replica]
			}
		}
	} else if *shard >= 0 {
		fatal(fmt.Errorf("-shard requires -manifest"))
	} else if *replica != 0 {
		fatal(fmt.Errorf("-replica requires -manifest and -shard"))
	}
	if addr == "" {
		addr = "127.0.0.1:7083"
	}

	db, err := encshare.CreateDatabase(minisql.FreshDSN())
	if err != nil {
		fatal(err)
	}
	defer db.Close()
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	if err := db.LoadFrom(f); err != nil {
		fatal(err)
	}
	f.Close()
	n, err := db.NodeCount()
	if err != nil {
		fatal(err)
	}

	l, err := net.Listen("tcp", addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("serving %d encrypted nodes on %s (F_%d^%d)\n", n, l.Addr(), *p, *e)
	err = db.ServeWith(l, encshare.Params{P: uint32(*p), E: uint32(*e)}, encshare.ServeConfig{
		CacheSize: *cache,
		Workers:   *workers,
	})
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "encshare-server:", err)
	os.Exit(1)
}
