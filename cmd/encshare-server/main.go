// Command encshare-server loads an encrypted database file produced by
// encshare-encode and serves the ServerFilter API over TCP (the paper's
// server side, §5.2). The server holds only polynomial shares — it can
// evaluate them at points the client sends, but the results are
// meaningless without the client's seed.
//
// The endpoint speaks both filter protocols: the original per-call
// exchanges and the batched frames (one per engine step), with -workers
// bounding the pool that evaluates batch members in parallel.
//
// Usage:
//
//	encshare-server -db auction.db -listen :7083 -workers 8 -cache 4096
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"encshare"
	"encshare/internal/minisql"
)

func main() {
	var (
		p       = flag.Uint("p", 83, "field characteristic (prime)")
		e       = flag.Uint("e", 1, "field extension degree")
		dbPath  = flag.String("db", "encrypted.db", "database file from encshare-encode")
		listen  = flag.String("listen", "127.0.0.1:7083", "listen address")
		workers = flag.Int("workers", 0, "batch worker pool size (0 = number of CPUs)")
		cache   = flag.Int("cache", 4096, "decoded-polynomial cache entries (0 = default 4096, negative disables)")
	)
	flag.Parse()

	db, err := encshare.CreateDatabase(minisql.FreshDSN())
	if err != nil {
		fatal(err)
	}
	defer db.Close()
	f, err := os.Open(*dbPath)
	if err != nil {
		fatal(err)
	}
	if err := db.LoadFrom(f); err != nil {
		fatal(err)
	}
	f.Close()
	n, err := db.NodeCount()
	if err != nil {
		fatal(err)
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("serving %d encrypted nodes on %s (F_%d^%d)\n", n, l.Addr(), *p, *e)
	err = db.ServeWith(l, encshare.Params{P: uint32(*p), E: uint32(*e)}, encshare.ServeConfig{
		CacheSize: *cache,
		Workers:   *workers,
	})
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "encshare-server:", err)
	os.Exit(1)
}
