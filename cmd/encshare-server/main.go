// Command encshare-server loads encrypted database files produced by
// encshare-encode and serves the ServerFilter API over TCP (the paper's
// server side, §5.2). The server holds only polynomial shares — it can
// evaluate them at points the client sends, but the results are
// meaningless without the client's seed.
//
// The endpoint speaks both filter protocols: the original per-call
// exchanges and the batched frames (one per engine step), with -workers
// bounding the pool that evaluates batch members in parallel. A shard
// file from encshare-encode -shards serves exactly like a full database
// (the cluster protocol discovers its pre range at dial time);
// -manifest/-shard resolve the shard's file (and listen address, when
// recorded) from a cluster manifest instead of naming it with -db, and
// -replica picks which copy of a replicated shard (encshare-encode
// -replicas) this process serves — every replica is byte-identical, so
// any copy answers any read.
//
// A v2 manifest lists named tenants: one process then serves shard
// -shard of every tenant concurrently, each tenant an independent
// table with its own worker quota and decoded-polynomial cache quota
// (carved from the manifest's cache_budget), dispatched by the tenant
// name in each request frame. Clients that predate the tenant protocol
// are routed to the manifest's default tenant. SIGHUP reloads the
// manifest and attaches/detaches tenants live, without dropping the
// other tenants' connections; SIGTERM (and SIGINT) drains gracefully —
// in-flight frames complete and reply, then the process exits 0.
//
// Usage:
//
//	encshare-server -db auction.db -listen :7083 -workers 8 -cache 4096
//	encshare-server -manifest auction.manifest.json -shard 1 -listen :7084
//	encshare-server -manifest auction.manifest.json -shard 1 -replica 1 -listen :7184
//	encshare-server -manifest tenants.json -listen :7083        (v2, single-shard tenants)
//	encshare-server -db auction.db -listen :7083 -metrics :9090
//	encshare-server -db auction.db -listen :7083 -wal /var/lib/encshare/r0
//	kill -HUP <pid>    # reload tenants.json: attach new tenants, detach removed ones
//
// -wal makes writes (encshare-mutate) durable: every mutation batch
// journals to <dir>/wal.log before it touches the table, and a restart
// recovers snapshot + log state in preference to the -db file. Each
// tenant journals under its own subdirectory; each replica process
// needs its own -wal dir. -compact-bytes folds the log into a snapshot
// once it exceeds the given size, and -compact-idle folds it after a
// quiet period with no writes (both default 0, never fold — replica
// logs then stay byte-comparable).
//
// -fault-fsync-after N is a testing hook for disk-fault drills: it
// routes WAL I/O through a fault-injection filesystem that fails the
// n-th and every later fsync, so the affected tenants trip the sticky
// failure rule and degrade to read-only. Never use it in production.
//
// -metrics starts an HTTP listener exposing the runtime's counters —
// RMI frame/byte totals, per-method latency histograms, per-tenant
// eval/cache counters — as Prometheus text at /metrics, JSON at
// /metrics.json, and the pprof handlers at /debug/pprof/.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"

	"encshare/internal/cluster"
	"encshare/internal/iofault"
	"encshare/internal/obs"
	"encshare/internal/server"
	"encshare/internal/wal"
)

func main() {
	var (
		p        = flag.Uint("p", 83, "field characteristic (prime); per-tenant p in a v2 manifest overrides")
		e        = flag.Uint("e", 1, "field extension degree; per-tenant e in a v2 manifest overrides")
		dbPath   = flag.String("db", "encrypted.db", "database file from encshare-encode")
		manifest = flag.String("manifest", "", "cluster manifest from encshare-encode -shards (v1) or a multi-tenant manifest (v2)")
		shard    = flag.Int("shard", -1, "shard index to serve from -manifest (default 0 for single-shard manifests)")
		replica  = flag.Int("replica", 0, "replica index of the shard to serve (with -manifest)")
		listen   = flag.String("listen", "", "listen address (default 127.0.0.1:7083, or the manifest's addr)")
		workers  = flag.Int("workers", 0, "batch worker pool size per tenant (0 = number of CPUs); per-tenant workers in a v2 manifest override")
		cache    = flag.Int("cache", 4096, "decoded-polynomial cache entries per tenant (0 = default 4096, negative disables); per-tenant cache in a v2 manifest overrides")
		metrics  = flag.String("metrics", "", "serve Prometheus metrics, JSON metrics, and pprof on this HTTP address (e.g. :9090); empty disables")
		walDir   = flag.String("wal", "", "journal mutations under this directory (one subdirectory per tenant); empty = writes die with the process")
		compact  = flag.Int64("compact-bytes", 0, "with -wal: fold the log into a snapshot once it exceeds this many bytes (0 never folds)")
		compIdle = flag.Duration("compact-idle", 0, "with -wal: fold the log into a snapshot after this long without a write (0, the default, never folds on idle)")
		faultN   = flag.Int("fault-fsync-after", 0, "TESTING ONLY: fail the n-th and every later WAL fsync, degrading written tenants to read-only (0 disables); for disk-fault drills, never production")
		engine   = flag.String("engine", "", "storage engine for attached tables: v2 (paged, default) or v1 (minisql oracle)")
	)
	flag.Parse()

	// The drill filesystem is created once so its fsync counter spans the
	// process lifetime (SIGHUP reloads keep counting, like a real disk).
	var walFS wal.FS
	if *faultN > 0 {
		ffs := iofault.New()
		ffs.FailSyncFrom(*faultN)
		walFS = ffs
		fmt.Fprintf(os.Stderr, "encshare-server: FAULT DRILL: WAL fsync %d and later will fail\n", *faultN)
	}

	if *manifest == "" {
		if *shard >= 0 {
			fatal(fmt.Errorf("-shard requires -manifest"))
		}
		if *replica != 0 {
			fatal(fmt.Errorf("-replica requires -manifest and -shard"))
		}
	}

	// loadPlan re-reads the configuration — it runs once at startup and
	// again on every SIGHUP.
	loadPlan := func() (tenants []server.Tenant, dflt, addr string, budget int, err error) {
		tenantWAL := func(name string) string {
			if *walDir == "" {
				return ""
			}
			if name == "" {
				name = "default"
			}
			return filepath.Join(*walDir, name)
		}
		if *manifest == "" {
			return []server.Tenant{{
				Path: *dbPath, P: uint32(*p), E: uint32(*e),
				Workers: *workers, CacheEntries: *cache,
				WALDir: tenantWAL(""), CompactBytes: *compact,
				CompactIdle: *compIdle, FS: walFS,
				Engine: *engine,
			}}, "", "", 0, nil
		}
		m, err := cluster.LoadManifest(*manifest)
		if err != nil {
			return nil, "", "", 0, err
		}
		table := m.TenantTable()
		si := *shard
		if si < 0 {
			if len(table[0].Shards) != 1 {
				return nil, "", "", 0, fmt.Errorf("manifest %s has %d shards: -shard required", *manifest, len(table[0].Shards))
			}
			si = 0
		}
		if si >= len(table[0].Shards) {
			return nil, "", "", 0, fmt.Errorf("-shard %d out of range: manifest %s has %d shards", si, *manifest, len(table[0].Shards))
		}
		for _, tn := range table {
			info := tn.Shards[si]
			dbs := info.ReplicaDBs()
			if len(dbs) == 0 {
				return nil, "", "", 0, fmt.Errorf("manifest tenant %q shard %d has no db file", tn.Name, si)
			}
			if *replica < 0 || *replica >= info.Replicas() {
				return nil, "", "", 0, fmt.Errorf("-replica %d out of range: manifest shard %d has %d replicas", *replica, si, info.Replicas())
			}
			// Replica files are byte-identical; if the manifest lists
			// fewer files than addresses, any copy serves any slot.
			path := dbs[min(*replica, len(dbs)-1)]
			if !filepath.IsAbs(path) {
				path = filepath.Join(filepath.Dir(*manifest), path)
			}
			tp, te := tn.P, tn.E
			if tp == 0 {
				tp, te = uint32(*p), uint32(*e)
			}
			tw := tn.Workers
			if tw == 0 {
				tw = *workers
			}
			tc := tn.Cache
			if tc == 0 {
				tc = *cache // the flag is the default for tenants without a quota
			}
			tenants = append(tenants, server.Tenant{
				Name: tn.Name, Path: path, P: tp, E: te,
				Workers: tw, CacheEntries: tc,
				WALDir: tenantWAL(tn.Name), CompactBytes: *compact,
				CompactIdle: *compIdle, FS: walFS,
				Engine: *engine,
			})
			if addr == "" {
				if addrs := info.ReplicaAddrs(); *replica < len(addrs) {
					addr = addrs[*replica]
				}
			}
		}
		return tenants, m.DefaultTenant(), addr, m.CacheBudget, nil
	}

	tenants, dflt, addr, budget, err := loadPlan()
	if err != nil {
		fatal(err)
	}
	if *listen != "" {
		addr = *listen
	}
	if addr == "" {
		addr = "127.0.0.1:7083"
	}

	rt := server.New(server.Config{CacheBudget: budget, Default: dflt})
	for _, t := range tenants {
		if err := rt.AttachFile(t); err != nil {
			fatal(err)
		}
	}

	l, err := net.Listen("tcp", addr)
	if err != nil {
		fatal(err)
	}
	banner(rt, l.Addr())

	if *metrics != "" {
		ml, err := net.Listen("tcp", *metrics)
		if err != nil {
			fatal(fmt.Errorf("metrics listener: %w", err))
		}
		fmt.Printf("metrics on http://%s/metrics (JSON at /metrics.json, pprof at /debug/pprof/)\n", ml.Addr())
		go func() {
			if err := http.Serve(ml, obs.NewMux(rt.Metrics())); err != nil {
				fmt.Fprintln(os.Stderr, "encshare-server: metrics listener:", err)
			}
		}()
	}

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT, syscall.SIGHUP)
	go func() {
		for s := range sig {
			if s != syscall.SIGHUP {
				fmt.Printf("%s: draining in-flight frames and shutting down\n", s)
				rt.Shutdown()
				return
			}
			if *manifest == "" {
				fmt.Println("SIGHUP ignored: no -manifest to reload")
				continue
			}
			tenants, dflt, _, _, err := loadPlan()
			if err != nil {
				fmt.Fprintln(os.Stderr, "encshare-server: reload failed, keeping current tenants:", err)
				continue
			}
			attached, detached, err := rt.Apply(tenants, dflt)
			if err != nil {
				fmt.Fprintln(os.Stderr, "encshare-server: reload incomplete:", err)
			}
			fmt.Printf("reloaded %s: attached %q, detached %q, serving %q\n",
				*manifest, attached, detached, rt.Tenants())
		}
	}()

	if err := rt.Serve(l); err != nil {
		fatal(err)
	}
}

// banner prints what the process serves: per-tenant node counts for
// multi-tenant runtimes, the classic single-line form otherwise.
func banner(rt *server.Runtime, addr net.Addr) {
	counts, err := rt.NodeCounts()
	if err != nil {
		fatal(err)
	}
	names := make([]string, 0, len(counts))
	for name := range counts {
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 1 && names[0] == "" {
		fmt.Printf("serving %d encrypted nodes on %s\n", counts[""], addr)
		return
	}
	parts := make([]string, len(names))
	for i, name := range names {
		parts[i] = fmt.Sprintf("%s: %d nodes", name, counts[name])
	}
	fmt.Printf("serving %d tenants on %s (default %s) — %s\n",
		len(names), addr, rt.Default(), strings.Join(parts, ", "))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "encshare-server:", err)
	os.Exit(1)
}
