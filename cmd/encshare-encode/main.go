// Command encshare-encode is the MySQLEncode equivalent (§5.1): it reads
// the client's seed and map files plus a plaintext XML document, encodes
// the document into secret-shared polynomial rows, and writes the
// resulting server database to a file that encshare-server can load.
// Only server shares end up in the output; the seed never leaves the
// client.
//
// Usage:
//
//	encshare-encode -seed seed.key -map tags.map -xml auction.xml -out auction.db
package main

import (
	"flag"
	"fmt"
	"os"

	"encshare"
	"encshare/internal/minisql"
)

func main() {
	var (
		p        = flag.Uint("p", 83, "field characteristic (prime)")
		e        = flag.Uint("e", 1, "field extension degree")
		seedPath = flag.String("seed", "seed.key", "seed file")
		mapPath  = flag.String("map", "tags.map", "map file")
		xmlPath  = flag.String("xml", "", "plaintext XML document (required)")
		outPath  = flag.String("out", "encrypted.db", "encrypted database file to write")
		trieMode = flag.String("trie", "off", "text indexing: off, compressed, uncompressed")
	)
	flag.Parse()
	if *xmlPath == "" {
		fatal(fmt.Errorf("-xml is required"))
	}

	params := encshare.Params{P: uint32(*p), E: uint32(*e)}
	switch *trieMode {
	case "off":
	case "compressed":
		params.TrieMode = encshare.TrieCompressed
	case "uncompressed":
		params.TrieMode = encshare.TrieUncompressed
	default:
		fatal(fmt.Errorf("unknown -trie mode %q", *trieMode))
	}

	seed, err := os.ReadFile(*seedPath)
	if err != nil {
		fatal(err)
	}
	mf, err := os.Open(*mapPath)
	if err != nil {
		fatal(err)
	}
	keys, err := encshare.LoadKeys(params, seed, mf)
	mf.Close()
	if err != nil {
		fatal(err)
	}

	db, err := encshare.CreateDatabase(minisql.FreshDSN())
	if err != nil {
		fatal(err)
	}
	defer db.Close()

	xf, err := os.Open(*xmlPath)
	if err != nil {
		fatal(err)
	}
	stats, err := db.EncodeXML(keys, xf)
	xf.Close()
	if err != nil {
		fatal(err)
	}

	out, err := os.Create(*outPath)
	if err != nil {
		fatal(err)
	}
	if err := db.DumpTo(out); err != nil {
		fatal(err)
	}
	if err := out.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("encoded %d nodes in %s: %d polynomial bytes + %d meta bytes -> %s\n",
		stats.Nodes, stats.Elapsed.Round(1e6), stats.PolyBytes, stats.MetaBytes, *outPath)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "encshare-encode:", err)
	os.Exit(1)
}
