// Command encshare-encode is the MySQLEncode equivalent (§5.1): it reads
// the client's seed and map files plus a plaintext XML document, encodes
// the document into secret-shared polynomial rows, and writes the
// resulting server database to a file that encshare-server can load.
// Only server shares end up in the output; the seed never leaves the
// client.
//
// With -shards N the node table is cut into N contiguous pre-range
// slices: one <out-base>.shard<i>.db file per shard plus a
// <out-base>.manifest.json describing the partition, ready for one
// encshare-server per shard and encshare-query -addr a,b,c. Sharding
// leaks nothing new — every share row is independently uniformly
// random, so a slice tells a shard server no more than the whole table
// tells a single server.
//
// With -replicas M each shard is emitted M times
// (<out-base>.shard<i>.r<j>.db) and the manifest lists the copies per
// shard. Replicas are byte-identical — shares are immutable and
// read-only, so a replica needs no consistency protocol, only a copy of
// the file — and give the cluster failover: encshare-server serves any
// copy, and the query side retries a dead replica's frames on its
// siblings.
//
// With -tenant NAME the manifest is written in the v2 multi-tenant
// format (one named tenant) — and is written even for a single,
// unsharded table. Merging several such manifests' tenant lists into
// one file gives encshare-server a multi-tenant serving config; each
// tenant keeps its own keys, field parameters, and quotas.
//
// Usage:
//
//	encshare-encode -seed seed.key -map tags.map -xml auction.xml -out auction.db
//	encshare-encode -shards 3 -seed seed.key -map tags.map -xml auction.xml -out auction.db
//	encshare-encode -shards 3 -replicas 2 -seed seed.key -map tags.map -xml auction.xml -out auction.db
//	encshare-encode -tenant auction -seed seed.key -map tags.map -xml auction.xml -out auction.db
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"encshare"
	"encshare/internal/cluster"
	"encshare/internal/minisql"
)

func main() {
	var (
		p        = flag.Uint("p", 83, "field characteristic (prime)")
		e        = flag.Uint("e", 1, "field extension degree")
		seedPath = flag.String("seed", "seed.key", "seed file")
		mapPath  = flag.String("map", "tags.map", "map file")
		xmlPath  = flag.String("xml", "", "plaintext XML document (required)")
		outPath  = flag.String("out", "encrypted.db", "encrypted database file to write")
		trieMode = flag.String("trie", "off", "text indexing: off, compressed, uncompressed")
		shards   = flag.Int("shards", 1, "split the table into N pre-range shard files plus a manifest")
		replicas = flag.Int("replicas", 1, "with -shards: emit M byte-identical copies of every shard file")
		tenant   = flag.String("tenant", "", "write the manifest in the v2 multi-tenant format under this tenant name")
		engine   = flag.String("engine", "", "storage engine and dump format to emit: v2 (paged, default) or v1 (minisql gob)")
	)
	flag.Parse()
	if *xmlPath == "" {
		fatal(fmt.Errorf("-xml is required"))
	}
	if *replicas < 1 {
		fatal(fmt.Errorf("-replicas must be at least 1"))
	}
	if *replicas > 1 && *shards <= 1 {
		fatal(fmt.Errorf("-replicas requires -shards"))
	}

	params := encshare.Params{P: uint32(*p), E: uint32(*e)}
	switch *trieMode {
	case "off":
	case "compressed":
		params.TrieMode = encshare.TrieCompressed
	case "uncompressed":
		params.TrieMode = encshare.TrieUncompressed
	default:
		fatal(fmt.Errorf("unknown -trie mode %q", *trieMode))
	}

	seed, err := os.ReadFile(*seedPath)
	if err != nil {
		fatal(err)
	}
	mf, err := os.Open(*mapPath)
	if err != nil {
		fatal(err)
	}
	keys, err := encshare.LoadKeys(params, seed, mf)
	mf.Close()
	if err != nil {
		fatal(err)
	}

	db, err := encshare.CreateDatabaseWith(minisql.FreshDSN(), *engine)
	if err != nil {
		fatal(err)
	}
	defer db.Close()

	xf, err := os.Open(*xmlPath)
	if err != nil {
		fatal(err)
	}
	stats, err := db.EncodeXML(keys, xf)
	xf.Close()
	if err != nil {
		fatal(err)
	}

	fmt.Printf("encoded %d nodes in %s: %d polynomial bytes + %d meta bytes\n",
		stats.Nodes, stats.Elapsed.Round(1e6), stats.PolyBytes, stats.MetaBytes)
	if *shards > 1 {
		writeShards(db, *outPath, *shards, *replicas, *tenant)
		return
	}
	out, err := os.Create(*outPath)
	if err != nil {
		fatal(err)
	}
	if err := db.DumpTo(out); err != nil {
		fatal(err)
	}
	if err := out.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("-> %s\n", *outPath)
	if *tenant != "" {
		plan, err := db.ShardPlan(1)
		if err != nil {
			fatal(err)
		}
		m := (&cluster.Manifest{Shards: []cluster.ShardInfo{{
			DB: filepath.Base(*outPath), Lo: plan[0].Lo, Hi: plan[0].Hi,
		}}}).Upgrade(*tenant)
		writeManifest(m, strings.TrimSuffix(*outPath, ".db")+".manifest.json")
	}
}

// writeShards cuts the encoded table into n contiguous slices, writing
// one standalone shard database per range (replicated reps times) and a
// manifest describing the partition.
func writeShards(db *encshare.Database, outPath string, n, reps int, tenant string) {
	base := strings.TrimSuffix(outPath, ".db")
	plan, err := db.ShardPlan(n)
	if err != nil {
		fatal(err)
	}
	m := &cluster.Manifest{}
	for i, r := range plan {
		// Manifest entries are relative to the manifest's own directory
		// (encshare-server resolves them against it), so the whole bundle
		// can be moved or -out can point into a subdirectory.
		info := cluster.ShardInfo{Lo: r.Lo, Hi: r.Hi}
		if reps == 1 {
			path := fmt.Sprintf("%s.shard%d.db", base, i)
			writeShardFile(db, r, path)
			info.DB = filepath.Base(path)
			fmt.Printf("shard %d: pre [%d, %d] -> %s\n", i, r.Lo, r.Hi, path)
		} else {
			first := fmt.Sprintf("%s.shard%d.r0.db", base, i)
			writeShardFile(db, r, first)
			info.DBs = append(info.DBs, filepath.Base(first))
			for j := 1; j < reps; j++ {
				path := fmt.Sprintf("%s.shard%d.r%d.db", base, i, j)
				copyFile(first, path)
				info.DBs = append(info.DBs, filepath.Base(path))
			}
			fmt.Printf("shard %d: pre [%d, %d] -> %d replicas of %s\n", i, r.Lo, r.Hi, reps, first)
		}
		m.Shards = append(m.Shards, info)
	}
	if tenant != "" {
		m = m.Upgrade(tenant)
	}
	writeManifest(m, base+".manifest.json")
}

func writeManifest(m *cluster.Manifest, path string) {
	if err := m.WriteFile(path); err != nil {
		fatal(err)
	}
	fmt.Printf("manifest -> %s\n", path)
}

func writeShardFile(db *encshare.Database, r encshare.ShardRange, path string) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := db.DumpShard(f, r); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
}

func copyFile(src, dst string) {
	in, err := os.Open(src)
	if err != nil {
		fatal(err)
	}
	defer in.Close()
	out, err := os.Create(dst)
	if err != nil {
		fatal(err)
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		fatal(err)
	}
	if err := out.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "encshare-encode:", err)
	os.Exit(1)
}
