// Command encshare-mutate edits a live encshare deployment: it holds
// the seed and map files (the client role, like encshare-query), plans
// each edit by reading the affected shares, and sends versioned
// mutation batches to the owning shard — every replica of it. Servers
// started with -wal journal each batch before applying, so edits
// survive a restart.
//
// Usage:
//
//	encshare-mutate -seed seed.key -map tags.map -addr 127.0.0.1:7083 insert <parentPre> <name>
//	encshare-mutate ... update <pre> <name>
//	encshare-mutate ... delete <pre>
//	encshare-mutate ... -n 32 -interval 25ms -sync-timeout 30s hammer <name>
//
// insert appends a new last child under parentPre and prints its pre;
// update renames the node at pre; delete removes a childless node.
//
// hammer is the crash-drill mode for the CI mutation smoke test: it
// appends -n children of <name> under the root, pausing -interval
// between batches so an operator (or the CI job) can SIGKILL and
// restart a replica mid-run. Mutation sequencing is per session — a
// fresh process cannot redeliver another session's backlog — so the
// kill, the restart, and the catch-up must all happen within the one
// hammer run: after the last append it keeps re-dialing every -addr
// and redelivering missed batches until all replicas report the same
// sequence (or -sync-timeout expires).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"encshare"
)

func main() {
	var (
		p        = flag.Uint("p", 83, "field characteristic (prime)")
		e        = flag.Uint("e", 1, "field extension degree")
		seedPath = flag.String("seed", "seed.key", "seed file")
		mapPath  = flag.String("map", "tags.map", "map file")
		addr     = flag.String("addr", "127.0.0.1:7083", "server address, or comma-separated shard/replica addresses")
		tolerate = flag.Bool("tolerate-down", false, "skip unreachable servers at dial time (replicas must still cover the table)")
		n        = flag.Int("n", 16, "hammer: number of appended nodes")
		interval = flag.Duration("interval", 0, "hammer: pause between appends")
		syncTO   = flag.Duration("sync-timeout", 30*time.Second, "hammer: how long to wait for every replica to catch up (0 skips the wait)")
	)
	flag.Parse()
	if flag.NArg() < 1 {
		fatal(fmt.Errorf("a verb is required: insert, update, delete, or hammer"))
	}

	seed, err := os.ReadFile(*seedPath)
	if err != nil {
		fatal(err)
	}
	mf, err := os.Open(*mapPath)
	if err != nil {
		fatal(err)
	}
	keys, err := encshare.LoadKeys(encshare.Params{P: uint32(*p), E: uint32(*e)}, seed, mf)
	mf.Close()
	if err != nil {
		fatal(err)
	}
	addrs := strings.Split(*addr, ",")
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
	}
	session, err := encshare.DialClusterWith(keys, addrs, encshare.ClusterOptions{
		TolerateUnreachable: *tolerate,
	})
	if err != nil {
		fatal(err)
	}
	defer session.Close()

	arg := func(i int) string {
		if flag.NArg() <= i {
			fatal(fmt.Errorf("%s: missing argument", flag.Arg(0)))
		}
		return flag.Arg(i)
	}
	pre := func(i int) int64 {
		v, err := strconv.ParseInt(arg(i), 10, 64)
		if err != nil {
			fatal(fmt.Errorf("%s: bad pre %q", flag.Arg(0), arg(i)))
		}
		return v
	}

	switch verb := flag.Arg(0); verb {
	case "insert":
		parent, name := pre(1), arg(2)
		newPre, err := session.Insert(parent, name)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("inserted <%s> at pre %d (child of %d)\n", name, newPre, parent)
	case "update":
		target, name := pre(1), arg(2)
		if err := session.Update(target, name); err != nil {
			fatal(err)
		}
		fmt.Printf("renamed pre %d to <%s>\n", target, name)
	case "delete":
		target := pre(1)
		if err := session.Delete(target); err != nil {
			fatal(err)
		}
		fmt.Printf("deleted pre %d\n", target)
	case "hammer":
		name := arg(1)
		for i := 0; i < *n; i++ {
			newPre, err := session.Insert(1, name)
			if err != nil {
				fatal(fmt.Errorf("append %d/%d: %w", i+1, *n, err))
			}
			fmt.Printf("append %d/%d: <%s> at pre %d\n", i+1, *n, name, newPre)
			if *interval > 0 {
				time.Sleep(*interval)
			}
		}
		if *syncTO > 0 {
			if err := session.Resync(addrs, *syncTO); err != nil {
				fatal(fmt.Errorf("replica resync: %w", err))
			}
			fmt.Println("all replicas in sync")
		}
	default:
		fatal(fmt.Errorf("unknown verb %q (want insert, update, delete, or hammer)", verb))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "encshare-mutate:", err)
	os.Exit(1)
}
