// Command encshare-query runs XPath-subset queries against an
// encshare-server, acting as the paper's client (§5.2–5.3): it holds the
// seed and map files, regenerates client polynomial shares locally, and
// combines them with server evaluations.
//
// Queries default to the batched pipeline (one filter exchange per
// engine step); -percall restores the paper's one-exchange-per-check
// protocol for comparison. -addr accepts a comma-separated list of
// shard servers (from encshare-encode -shards): the client dials each
// server, learns its pre range, and scatters every batched step as at
// most one concurrent frame per shard. Servers holding the same range
// (encshare-encode -replicas) are grouped automatically into replica
// failover sets — list them flat, in any order; -hedge additionally
// fires straggling frames at a second replica.
//
// Usage:
//
//	encshare-query -seed seed.key -map tags.map -addr 127.0.0.1:7083 '/site//europe/item'
//	encshare-query -addr 127.0.0.1:7083,127.0.0.1:7084,127.0.0.1:7085 ... '/site//europe/item'
//	encshare-query -addr 127.0.0.1:7083,127.0.0.1:7183,127.0.0.1:7084,127.0.0.1:7184 -hedge ... '//item'
//	encshare-query -engine simple -test containment ... '//bidder/date'
//	encshare-query -percall -v ... '/site//europe/item'
//	encshare-query -agg sum ... '//item'
//	encshare-query -trace ... '/site//europe/item'
//	encshare-query -stats ... '//item'
//
// -trace records a span tree for the query — one span per engine step,
// one per shard frame with wall time and byte counts, events for
// failovers and hedges — and prints it as an indented timing report.
// -stats fetches and prints the server-side work counters (merged over
// every shard replica) after the query.
//
// -agg count|sum|avg folds the matching rows server-side instead of
// listing them: each shard returns one folded share blob per chunk
// (O(shards) bytes instead of O(rows)), the client completes the
// aggregate with its regenerated shares, and a verification share
// detects a shard returning wrong folds. Old servers downgrade to
// client-side reconstruction automatically.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"encshare"
)

func main() {
	var (
		p        = flag.Uint("p", 83, "field characteristic (prime)")
		e        = flag.Uint("e", 1, "field extension degree")
		seedPath = flag.String("seed", "seed.key", "seed file")
		mapPath  = flag.String("map", "tags.map", "map file")
		addr     = flag.String("addr", "127.0.0.1:7083", "server address, or comma-separated shard addresses")
		engName  = flag.String("engine", "advanced", "engine: simple or advanced")
		testName = flag.String("test", "exact", "test: exact (strict) or containment (non-strict)")
		percall  = flag.Bool("percall", false, "use the paper's one-exchange-per-check protocol instead of batching")
		hedge    = flag.Bool("hedge", false, "hedge straggling per-shard frames on a second replica")
		tolerate = flag.Bool("tolerate-down", false, "skip unreachable servers at dial time (replicas must still cover the table)")
		agg      = flag.String("agg", "", "aggregate the matching rows instead of listing them: count, sum, or avg")
		tenant   = flag.String("tenant", "", "tenant to query on a multi-tenant server (default: the server's default tenant)")
		cworkers = flag.Int("client-workers", 0, "client-side worker pool for share streams and reconstructions (0 = number of CPUs)")
		trace    = flag.Bool("trace", false, "trace the query and print the span tree (per-step, per-shard frame timings)")
		stats    = flag.Bool("stats", false, "print the merged server-side work counters after the query")
		verbose  = flag.Bool("v", false, "print work statistics")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fatal(fmt.Errorf("exactly one query argument expected"))
	}

	var opts encshare.QueryOptions
	switch *engName {
	case "advanced":
		opts.Engine = encshare.Advanced
	case "simple":
		opts.Engine = encshare.Simple
	default:
		fatal(fmt.Errorf("unknown engine %q", *engName))
	}
	switch *testName {
	case "exact", "strict":
		opts.Test = encshare.TestExact
	case "containment", "non-strict":
		opts.Test = encshare.TestContainment
	default:
		fatal(fmt.Errorf("unknown test %q", *testName))
	}
	if *percall {
		opts.Batch = encshare.PerCall
	}

	seed, err := os.ReadFile(*seedPath)
	if err != nil {
		fatal(err)
	}
	mf, err := os.Open(*mapPath)
	if err != nil {
		fatal(err)
	}
	keys, err := encshare.LoadKeys(encshare.Params{P: uint32(*p), E: uint32(*e)}, seed, mf)
	mf.Close()
	if err != nil {
		fatal(err)
	}

	addrs := strings.Split(*addr, ",")
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
	}
	session, err := encshare.DialClusterWith(keys, addrs, encshare.ClusterOptions{
		Hedge:               *hedge,
		TolerateUnreachable: *tolerate,
		Tenant:              *tenant,
		ClientWorkers:       *cworkers,
	})
	if err != nil {
		fatal(err)
	}
	defer session.Close()
	if *trace {
		session.SetTracing(true)
	}

	var res encshare.Result
	if *agg != "" {
		var kind encshare.AggKind
		switch *agg {
		case "count":
			kind = encshare.AggCount
		case "sum":
			kind = encshare.AggSum
		case "avg":
			kind = encshare.AggAvg
		default:
			fatal(fmt.Errorf("unknown aggregate %q (want count, sum, or avg)", *agg))
		}
		ar, err := session.AggregateWith(flag.Arg(0), kind, encshare.AggregateOptions{Query: opts})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s over %d matching nodes", kind, ar.Count)
		if kind != encshare.AggCount {
			vec := ar.Sum
			label := "sum"
			if kind == encshare.AggAvg {
				vec, label = ar.Avg, "avg"
			}
			fmt.Printf(": %s coefficients %v", label, vec)
		}
		fmt.Println()
		if ar.Downgraded {
			fmt.Println("note: server predates aggregate frames — rows were reconstructed client-side")
		} else if ar.Verified {
			fmt.Println("verification share: OK")
		}
		res = encshare.Result{Pres: ar.Pres, Stats: ar.Stats}
	} else {
		var err error
		res, err = session.QueryWith(flag.Arg(0), opts)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%d matching nodes (pre positions): %v\n", len(res.Pres), res.Pres)
	}
	if *trace {
		if t := session.Trace(); t != nil {
			t.Render(os.Stdout)
		}
	}
	if *stats {
		ss, err := session.ServerStats()
		if err != nil {
			fatal(fmt.Errorf("fetching server stats: %w", err))
		}
		label := session.Tenant()
		if label == "" {
			label = "default"
		}
		fmt.Printf("server stats (tenant %s, merged over %d shards):\n", label, session.Shards())
		for _, row := range [][2]any{
			{"evaluations", ss.Evals},
			{"cache hits", ss.CacheHits},
			{"cache misses", ss.CacheMisses},
			{"blob decodes", ss.Decodes},
			{"aggregate folds", ss.Aggregates},
		} {
			fmt.Printf("  %-16s %d\n", row[0], row[1])
		}
	}
	if *verbose {
		fmt.Printf("evaluations=%d reconstructions=%d nodes-fetched=%d folds=%d round-trips=%d elapsed=%s\n",
			res.Stats.Evaluations, res.Stats.Reconstructions,
			res.Stats.NodesFetched, res.Stats.Folds, session.RoundTrips(), res.Stats.Elapsed)
		if ss, err := session.ServerStats(); err == nil {
			label := session.Tenant()
			if label == "" {
				label = "default"
			}
			fmt.Printf("tenant=%s server-evals=%d cache-hits=%d cache-misses=%d decodes=%d\n",
				label, ss.Evals, ss.CacheHits, ss.CacheMisses, ss.Decodes)
		}
		if per := session.ShardRoundTrips(); per != nil {
			fmt.Printf("per-shard round-trips: %v (replicas per shard: %v)\n", per, session.Replicas())
			if fo, h := session.Failovers(), session.Hedges(); fo > 0 || h > 0 {
				fmt.Printf("failovers=%d hedged-frames=%d\n", fo, h)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "encshare-query:", err)
	os.Exit(1)
}
