// Command encshare-keygen generates the client's secret key material: a
// seed file (the encryption key, §5.1) and a map file assigning tag names
// to F_q^* values. The name universe comes from a DTD (default: the
// paper's XMark auction DTD), an XML instance, or both; with -trie the
// lowercase alphabet, digits and the ⊥ terminator are added so text
// content can be indexed (§4).
//
// Usage:
//
//	encshare-keygen -p 83 -seed-out seed.key -map-out tags.map
//	encshare-keygen -p 251 -trie -xml doc.xml -seed-out s -map-out m
package main

import (
	"flag"
	"fmt"
	"os"

	"encshare"
	"encshare/internal/dtd"
	"encshare/internal/trie"
	"encshare/internal/xmldoc"
)

func main() {
	var (
		p       = flag.Uint("p", 83, "field characteristic (prime)")
		e       = flag.Uint("e", 1, "field extension degree")
		dtdPath = flag.String("dtd", "", "DTD file to take tag names from (default: embedded XMark auction DTD)")
		xmlPath = flag.String("xml", "", "XML instance to take tag names (and, with -trie, the alphabet) from")
		useTrie = flag.Bool("trie", false, "include text alphabet for content search")
		seedOut = flag.String("seed-out", "seed.key", "seed file to write (keep secret)")
		mapOut  = flag.String("map-out", "tags.map", "map file to write (keep secret)")
	)
	flag.Parse()

	var names []string
	var corpus string
	switch {
	case *xmlPath != "":
		f, err := os.Open(*xmlPath)
		if err != nil {
			fatal(err)
		}
		doc, err := xmldoc.Parse(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		names = doc.Names()
		doc.Walk(func(n *xmldoc.Node) bool {
			corpus += n.Text + " "
			return true
		})
	case *dtdPath != "":
		src, err := os.ReadFile(*dtdPath)
		if err != nil {
			fatal(err)
		}
		d, err := dtd.Parse(string(src))
		if err != nil {
			fatal(err)
		}
		names = d.Names()
	default:
		names = dtd.MustXMark().Names()
	}

	params := encshare.Params{P: uint32(*p), E: uint32(*e)}
	if *useTrie {
		params.TrieMode = encshare.TrieCompressed
		if corpus != "" {
			names = encshare.ContentNames(names, corpus)
		} else {
			// No instance given: cover a generic alphabet.
			var alpha []string
			for c := 'a'; c <= 'z'; c++ {
				alpha = append(alpha, string(c))
			}
			for c := '0'; c <= '9'; c++ {
				alpha = append(alpha, string(c))
			}
			names = append(names, append(alpha, trie.Terminator)...)
		}
	}

	keys, err := encshare.GenerateKeys(params, names)
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*seedOut, keys.Seed(), 0o600); err != nil {
		fatal(err)
	}
	mf, err := os.OpenFile(*mapOut, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o600)
	if err != nil {
		fatal(err)
	}
	if err := keys.SaveMap(mf); err != nil {
		fatal(err)
	}
	if err := mf.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s and %s (%d names, F_%d^%d, %d bytes/polynomial)\n",
		*seedOut, *mapOut, len(names), *p, *e, keys.PolyBytes())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "encshare-keygen:", err)
	os.Exit(1)
}
