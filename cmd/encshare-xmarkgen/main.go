// Command encshare-xmarkgen generates a deterministic XMark-style
// auction document (the paper's Appendix A DTD) for use as experiment
// input.
//
// Usage:
//
//	encshare-xmarkgen -scale 1.0 -seed 42 -out auction.xml
package main

import (
	"flag"
	"fmt"
	"os"

	"encshare/internal/xmark"
)

func main() {
	var (
		scale = flag.Float64("scale", 1.0, "size scale (1.0 is roughly 1 MB)")
		seed  = flag.Int64("seed", 1, "generator seed")
		out   = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	n, err := xmark.WriteXML(w, xmark.Config{Scale: *scale, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d bytes (scale %.2f, seed %d)\n", n, *scale, *seed)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "encshare-xmarkgen:", err)
	os.Exit(1)
}
