// Command encshare-bench regenerates the paper's tables and figures
// (§6) plus this repo's ablation and scaling studies, printing
// paper-style tables. With -json the tables of the run are also written
// to a machine-readable file (e.g. BENCH_cluster.json), so the perf
// trajectory can be tracked across PRs without scraping stdout.
//
// Usage:
//
//	encshare-bench -experiment all
//	encshare-bench -experiment fig4 -scales 0.5,1,2,4
//	encshare-bench -experiment fig6 -scale 0.2
//	encshare-bench -experiment cluster -shards 1,2,4 -json BENCH_cluster.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"encshare/internal/experiment"
)

// jsonReport is the -json file layout: run parameters plus every table
// the experiment produced, verbatim.
type jsonReport struct {
	Experiment string              `json:"experiment"`
	Scale      float64             `json:"scale"`
	Seed       int64               `json:"seed"`
	Shards     string              `json:"shards,omitempty"`
	Tables     []*experiment.Table `json:"tables"`
}

func main() {
	var (
		which    = flag.String("experiment", "all", "fig4|fig5|fig6|fig7|trie|ablation|compute|cluster|failover|multitenant|aggregate|loadtest|mutate|store|all")
		scale    = flag.Float64("scale", 0.1, "XMark scale for the query experiments")
		scales   = flag.String("scales", "0.25,0.5,1,2", "comma-separated scales for fig4")
		shards   = flag.String("shards", "1,2,4", "comma-separated shard counts for the cluster experiment")
		sessions = flag.Int("sessions", 0, "concurrent client sessions for the loadtest experiment (0 = default 4)")
		ops      = flag.Int("ops", 0, "timed operations: per session for loadtest (0 = default 24), per class for mutate (0 = default 12)")
		jsonPath = flag.String("json", "", "also write the run's tables to this JSON file")
		seed     = flag.Int64("seed", 42, "workload seed")
	)
	flag.Parse()

	needEnv := map[string]bool{"fig5": true, "fig6": true, "fig7": true, "ablation": true, "compute": true, "cluster": true, "failover": true, "multitenant": true, "aggregate": true, "loadtest": true, "store": true, "all": true}
	var env *experiment.Env
	if needEnv[*which] {
		var err error
		fmt.Fprintf(os.Stderr, "building encrypted XMark database (scale %.2f)...\n", *scale)
		env, err = experiment.NewEnv(*scale, *seed)
		if err != nil {
			fatal(err)
		}
		defer env.Close()
	}

	report := jsonReport{Experiment: *which, Scale: *scale, Seed: *seed}
	show := func(t *experiment.Table, err error) {
		if err != nil {
			fatal(err)
		}
		if err := t.Fprint(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
		report.Tables = append(report.Tables, t)
	}

	run := func(name string) {
		switch name {
		case "fig4":
			var fs []float64
			for _, s := range strings.Split(*scales, ",") {
				f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
				if err != nil {
					fatal(fmt.Errorf("bad scale %q: %w", s, err))
				}
				fs = append(fs, f)
			}
			show(experiment.Encoding(fs, *seed))
		case "fig5":
			show(experiment.QueryLength(env))
		case "fig6":
			show(experiment.Strictness(env))
			show(experiment.StrictnessWork(env))
		case "fig7":
			show(experiment.Accuracy(env))
		case "trie":
			show(experiment.TrieStorage(*seed))
		case "ablation":
			show(experiment.AblationDescendants(env))
			show(experiment.AblationIndexes(20000))
			show(experiment.AblationSerialization())
			show(experiment.AblationMulStrategy())
		case "compute":
			show(experiment.Compute(env))
		case "cluster":
			var counts []int
			for _, s := range strings.Split(*shards, ",") {
				n, err := strconv.Atoi(strings.TrimSpace(s))
				if err != nil || n < 1 {
					fatal(fmt.Errorf("bad shard count %q", s))
				}
				counts = append(counts, n)
			}
			report.Shards = *shards
			show(experiment.ClusterScaling(env, counts))
		case "failover":
			show(experiment.Failover(env))
		case "multitenant":
			show(experiment.MultiTenant(env))
		case "aggregate":
			show(experiment.AggregateBytes(env))
		case "loadtest":
			tabs, err := experiment.LoadTest(env, experiment.LoadTestConfig{
				Sessions: *sessions, Ops: *ops, Seed: *seed,
			})
			if err != nil {
				fatal(err)
			}
			for _, t := range tabs {
				show(t, nil)
			}
		case "mutate":
			show(experiment.Mutate(experiment.MutateConfig{Ops: *ops, Seed: *seed}))
		case "store":
			show(experiment.StoreEngines(env))
		default:
			fatal(fmt.Errorf("unknown experiment %q", name))
		}
	}

	if *which == "all" {
		for _, name := range []string{"fig4", "fig5", "fig6", "fig7", "trie", "ablation", "compute", "cluster", "failover", "multitenant", "aggregate", "loadtest", "mutate", "store"} {
			run(name)
		}
	} else {
		run(*which)
	}

	if *jsonPath != "" {
		b, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonPath, append(b, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "encshare-bench:", err)
	os.Exit(1)
}
