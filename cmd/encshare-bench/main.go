// Command encshare-bench regenerates the paper's tables and figures
// (§6) plus this repo's ablation studies, printing paper-style tables.
//
// Usage:
//
//	encshare-bench -experiment all
//	encshare-bench -experiment fig4 -scales 0.5,1,2,4
//	encshare-bench -experiment fig6 -scale 0.2
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"encshare/internal/experiment"
)

func main() {
	var (
		which  = flag.String("experiment", "all", "fig4|fig5|fig6|fig7|trie|ablation|all")
		scale  = flag.Float64("scale", 0.1, "XMark scale for the query experiments")
		scales = flag.String("scales", "0.25,0.5,1,2", "comma-separated scales for fig4")
		seed   = flag.Int64("seed", 42, "workload seed")
	)
	flag.Parse()

	needEnv := map[string]bool{"fig5": true, "fig6": true, "fig7": true, "ablation": true, "all": true}
	var env *experiment.Env
	if needEnv[*which] {
		var err error
		fmt.Fprintf(os.Stderr, "building encrypted XMark database (scale %.2f)...\n", *scale)
		env, err = experiment.NewEnv(*scale, *seed)
		if err != nil {
			fatal(err)
		}
		defer env.Close()
	}

	show := func(t *experiment.Table, err error) {
		if err != nil {
			fatal(err)
		}
		if err := t.Fprint(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
	}

	run := func(name string) {
		switch name {
		case "fig4":
			var fs []float64
			for _, s := range strings.Split(*scales, ",") {
				f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
				if err != nil {
					fatal(fmt.Errorf("bad scale %q: %w", s, err))
				}
				fs = append(fs, f)
			}
			show(experiment.Encoding(fs, *seed))
		case "fig5":
			show(experiment.QueryLength(env))
		case "fig6":
			show(experiment.Strictness(env))
			show(experiment.StrictnessWork(env))
		case "fig7":
			show(experiment.Accuracy(env))
		case "trie":
			show(experiment.TrieStorage(*seed))
		case "ablation":
			show(experiment.AblationDescendants(env))
			show(experiment.AblationIndexes(20000))
			show(experiment.AblationSerialization())
			show(experiment.AblationMulStrategy())
		default:
			fatal(fmt.Errorf("unknown experiment %q", name))
		}
	}

	if *which == "all" {
		for _, name := range []string{"fig4", "fig5", "fig6", "fig7", "trie", "ablation"} {
			run(name)
		}
		return
	}
	run(*which)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "encshare-bench:", err)
	os.Exit(1)
}
