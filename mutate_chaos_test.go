package encshare

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"encshare/internal/cluster"
	"encshare/internal/filter"
	"encshare/internal/rmi"
	"encshare/internal/store"
	"encshare/internal/wal"
)

// killConn severs the client side of a replica connection after a fixed
// number of request frames — the deterministic stand-in for a replica
// process dying mid-mutation-batch (same device as the read-path chaos
// tests in internal/cluster).
type killConn struct {
	net.Conn
	mu     sync.Mutex
	frames int
}

func (c *killConn) Write(b []byte) (int, error) {
	c.mu.Lock()
	kill := c.frames == 0
	if c.frames > 0 {
		c.frames--
	}
	c.mu.Unlock()
	if kill {
		c.Conn.Close()
		return 0, errors.New("chaos: replica killed")
	}
	return c.Conn.Write(b)
}

// serveMutableReplica serves st as a writable replica over an
// in-process rmi pipe, journaling every applied batch to walPath.
// Records already in the log are replayed into the store first (the
// restart path). killAfter > 0 wraps the connection in a killConn.
func serveMutableReplica(t *testing.T, keys *Keys, st *store.Store, walPath string, killAfter int) (*filter.Remote, *filter.Mutable) {
	t.Helper()
	var lg *wal.Log
	mut := filter.NewMutable(filter.NewServerFilter(st, keys.ring, 1024), 0,
		func(p []byte) (func() error, error) {
			end, gen, err := lg.Write(p)
			if err != nil {
				return nil, err
			}
			return func() error { return lg.SyncTo(end, gen) }, nil
		}, nil)
	lg, err := wal.Open(walPath, func(payload []byte) error {
		b, err := filter.DecodeBatch(payload)
		if err != nil {
			return fmt.Errorf("decoding journaled batch: %w", err)
		}
		if err := mut.Replay(b); err != nil {
			return fmt.Errorf("replaying batch %d: %w", b.Seq, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lg.Close() })
	srv := rmi.NewServer()
	filter.RegisterServer(srv, mut)
	cConn, sConn := net.Pipe()
	go srv.ServeConn(sConn)
	conn := net.Conn(cConn)
	if killAfter > 0 {
		conn = &killConn{Conn: cConn, frames: killAfter}
	}
	cli := rmi.NewClient(conn)
	t.Cleanup(func() { cli.Close() })
	return filter.NewRemote(cli), mut
}

// findLeafPre returns the first leaf at pre >= min in the database.
func findLeafPre(t *testing.T, db *Database, min int64) int64 {
	t.Helper()
	n, err := db.NodeCount()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := db.st.Range(1, n)
	if err != nil {
		t.Fatal(err)
	}
	hasChild := make(map[int64]bool)
	for _, r := range rows {
		hasChild[r.Parent] = true
	}
	for _, r := range rows {
		if r.Pre >= min && !hasChild[r.Pre] {
			return r.Pre
		}
	}
	t.Fatalf("no leaf at pre >= %d", min)
	return 0
}

// TestChaosReplicaKillMidMutation is the write-path chaos acceptance
// test: on a 2-shard × 2-replica cluster where every replica journals
// to its own WAL, one replica of EACH shard is killed partway through a
// mutation sequence. The killed replicas are then "restarted" — rebuilt
// from a fresh copy of their pre-mutation base store by replaying their
// own logs — rejoined at their old addresses, and caught up from the
// session's redelivery window. Afterwards each shard's replica stores
// AND logs must be byte-identical, and every engine must agree with a
// local session that applied the same edits.
func TestChaosReplicaKillMidMutation(t *testing.T) {
	xml := randomDocXML(rand.New(rand.NewSource(31)), 120)
	names := strings.Fields("site regions europe item name people person city open_auction bidder date")
	keys, err := GenerateKeys(Params{P: 83}, names)
	if err != nil {
		t.Fatal(err)
	}
	db := encodeFresh(t, keys, xml)       // pristine: shard source + restart bases
	dbOracle := encodeFresh(t, keys, xml) // mutated in lockstep by a local session
	total, err := db.NodeCount()
	if err != nil {
		t.Fatal(err)
	}
	ranges, err := cluster.PartitionEven(1, total, 2)
	if err != nil {
		t.Fatal(err)
	}
	split := func() []*store.Store {
		stores, cleanup, err := cluster.SplitStore(db.st, ranges)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(cleanup)
		return stores
	}
	repA, repB := split(), split() // one store per replica

	dir := t.TempDir()
	walPath := func(si, ri int) string { return filepath.Join(dir, fmt.Sprintf("s%d-r%d.wal", si, ri)) }
	// Replica 0 of each shard dies after a budget of request frames —
	// different budgets, so the deaths land in different batches.
	killAfter := map[int]int{0: 10, 1: 16}
	specs := make([]cluster.Shard, len(ranges))
	for si := range ranges {
		specs[si].Range = ranges[si]
		for ri, st := range []*store.Store{repA[si], repB[si]} {
			rem, _ := serveMutableReplica(t, keys, st, walPath(si, ri), map[int]int{0: killAfter[si]}[ri])
			specs[si].Replicas = append(specs[si].Replicas, cluster.Replica{
				Addr: fmt.Sprintf("shard%d-r%d", si, ri), Conn: rem,
			})
		}
		specs[si].Addr = specs[si].Replicas[0].Addr
	}
	cf, err := cluster.NewWith(specs, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := newSession(keys, cf, cf)
	s.shardF = cf
	defer s.Close()
	local := OpenLocal(keys, dbOracle)
	defer local.Close()

	// The mutation script, applied in lockstep to the cluster and the
	// local oracle. The kill budgets expire inside this sequence.
	do := func(name string, f func(*Session) error) {
		t.Helper()
		if err := f(s); err != nil {
			t.Fatalf("cluster %s: %v", name, err)
		}
		if err := f(local); err != nil {
			t.Fatalf("local %s: %v", name, err)
		}
	}
	do("append item", func(ss *Session) error { _, err := ss.Insert(1, "item"); return err })
	do("insert name under 2", func(ss *Session) error { _, err := ss.Insert(2, "name"); return err })
	leaf := findLeafPre(t, dbOracle, 10)
	do("rename a leaf", func(ss *Session) error { return ss.Update(leaf, "city") })
	leaf = findLeafPre(t, dbOracle, total/2)
	do("delete a mid-document leaf", func(ss *Session) error { return ss.Delete(leaf) })
	for i := 0; i < 4; i++ {
		do("append bidder", func(ss *Session) error { _, err := ss.Insert(1, "bidder"); return err })
	}

	// Restart the killed replicas: fresh base copies of the
	// pre-mutation shard slices, rebuilt purely by replaying their own
	// logs, rejoined at their old addresses.
	bases := split()
	for si := range ranges {
		rem, _ := serveMutableReplica(t, keys, bases[si], walPath(si, 0), 0)
		if err := cf.AdoptReplica(si, fmt.Sprintf("shard%d-r%d", si, 0), rem); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		pending, err := cf.SyncReplicas()
		if pending == 0 {
			if err != nil {
				t.Fatal(err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d replica(s) still out of sync: %v", pending, err)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Byte-identity: replaying the log over the base plus redelivery
	// must land the restarted replica EXACTLY where its surviving
	// sibling is — store dumps and journal files alike.
	for si := range ranges {
		var restarted, survivor bytes.Buffer
		if err := bases[si].Dump(&restarted); err != nil {
			t.Fatal(err)
		}
		if err := repB[si].Dump(&survivor); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(restarted.Bytes(), survivor.Bytes()) {
			t.Errorf("shard %d: restarted replica's store differs from its sibling's", si)
		}
		lgR, err := os.ReadFile(walPath(si, 0))
		if err != nil {
			t.Fatal(err)
		}
		lgS, err := os.ReadFile(walPath(si, 1))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(lgR, lgS) {
			t.Errorf("shard %d: replica logs differ (%d vs %d bytes)", si, len(lgR), len(lgS))
		}
	}

	// Engine parity: every engine × wire mode agrees with the local
	// session that applied the same script.
	for _, q := range []string{"//item", "//city", "//bidder", "//name", "/site/*"} {
		for _, opt := range []QueryOptions{{}, {Engine: Simple}, {Batch: PerCall}, {Test: TestContainment}} {
			want, err := local.QueryWith(q, opt)
			if err != nil {
				t.Fatal(err)
			}
			got, err := s.QueryWith(q, opt)
			if err != nil {
				t.Fatalf("cluster %s %+v: %v", q, opt, err)
			}
			if len(got.Pres) != len(want.Pres) {
				t.Fatalf("%s %+v: cluster %v, local %v", q, opt, got.Pres, want.Pres)
			}
			for i := range want.Pres {
				if got.Pres[i] != want.Pres[i] {
					t.Fatalf("%s %+v: cluster %v, local %v", q, opt, got.Pres, want.Pres)
				}
			}
		}
	}
}
