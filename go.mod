module encshare

go 1.21
