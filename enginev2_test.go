package encshare

// Storage-engine parity at the whole-pipeline level: the paged v2
// engine and the minisql v1 oracle must be indistinguishable through
// the public API — same encode results, same query answers over the
// wire, same mutation outcomes, and interchangeable dump files. The
// store package pins these properties at the row level; this layer
// pins them through encode → serve → query → mutate.

import (
	"bytes"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"testing"

	"encshare/internal/minisql"
	"encshare/internal/store"
	"encshare/internal/xmldoc"
	"encshare/internal/xpath"
)

// encodeFreshEngine is encodeFresh on an explicitly selected engine.
func encodeFreshEngine(t *testing.T, keys *Keys, xml, engine string) *Database {
	t.Helper()
	db, err := CreateDatabaseWith(minisql.FreshDSN(), engine)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if _, err := db.EncodeXML(keys, strings.NewReader(xml)); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestEngineParityFullPipeline runs the full query grid over the same
// random document encoded on both engines and served over TCP: every
// engine × test combination must agree with the plaintext oracle on
// both, and the two encoded tables must be row- and blob-identical.
func TestEngineParityFullPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(427))
	xml := randomDocXML(rng, 160)
	doc, err := xmldoc.ParseString(xml)
	if err != nil {
		t.Fatal(err)
	}
	keys, err := GenerateKeys(Params{P: 83}, doc.Names())
	if err != nil {
		t.Fatal(err)
	}
	oracle := xpath.NewOracle(doc)
	queries := []string{
		"/site", "//item", "//person//city", "/site/*/person",
		"/site//europe/item", "//*", "/site/regions/../people",
	}

	dbs := map[string]*Database{}
	for _, engine := range []string{string(store.EngineV1), string(store.EngineV2)} {
		db := encodeFreshEngine(t, keys, xml, engine)
		dbs[engine] = db

		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go db.ServeWith(l, keys.Params(), ServeConfig{Engine: engine})
		defer l.Close()
		session, err := Dial(keys, l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer session.Close()

		for _, qs := range queries {
			q := xpath.MustParse(qs)
			for _, opt := range []QueryOptions{
				{Engine: Simple, Test: TestExact},
				{Engine: Advanced, Test: TestContainment},
			} {
				mode := xpath.MatchEqual
				if opt.Test == TestContainment {
					mode = xpath.MatchContain
				}
				want := xpath.Pres(oracle.Eval(q, mode))
				got, err := session.QueryWith(qs, opt)
				if err != nil {
					t.Fatalf("%s: %s %+v: %v", engine, qs, opt, err)
				}
				if fmt.Sprint(got.Pres) != fmt.Sprint(want) {
					t.Fatalf("%s: %s %+v: result %v != oracle %v", engine, qs, opt, got.Pres, want)
				}
			}
		}
	}

	// Same document, same keys: both engines must hold identical rows.
	assertSameTable(t, "v2 table vs v1 table", dbs[string(store.EngineV2)], dbs[string(store.EngineV1)])
}

// TestEngineParityMutationPipeline drives the same mutation sequence
// through local sessions on both engines and requires identical end
// states — and both must match the gold oracle (a fresh encode of the
// equivalent document).
func TestEngineParityMutationPipeline(t *testing.T) {
	keys, err := GenerateKeys(Params{P: 83}, testNames(t))
	if err != nil {
		t.Fatal(err)
	}
	endXML := `<site><regions><europe><item><name>lamp</name></item><city/></europe></regions><people><person><address><city>Enschede</city></address></person></people></site>`

	apply := func(engine string) *Database {
		db := encodeFreshEngine(t, keys, testXML, engine)
		s := OpenLocal(keys, db)
		defer s.Close()
		if _, err := s.Insert(3, "item"); err != nil {
			t.Fatalf("%s: insert: %v", engine, err)
		}
		if err := s.Update(6, "city"); err != nil {
			t.Fatalf("%s: update: %v", engine, err)
		}
		if err := s.Delete(9); err != nil {
			t.Fatalf("%s: delete: %v", engine, err)
		}
		return db
	}
	v1 := apply(string(store.EngineV1))
	v2 := apply(string(store.EngineV2))

	want := encodeFresh(t, keys, endXML)
	assertSameTable(t, "v1 end state vs oracle", v1, want)
	assertSameTable(t, "v2 end state vs oracle", v2, want)
}

// TestEngineV2ReplicaDumpIdentity: two v2 replicas hydrated from one
// dump and driven through the same mutation sequence via the full
// pipeline must produce byte-identical dump files — the property that
// lets replicated shards skip a consistency protocol.
func TestEngineV2ReplicaDumpIdentity(t *testing.T) {
	keys, err := GenerateKeys(Params{P: 83}, testNames(t))
	if err != nil {
		t.Fatal(err)
	}
	seedDB := encodeFreshEngine(t, keys, testXML, string(store.EngineV2))
	var img bytes.Buffer
	if err := seedDB.DumpTo(&img); err != nil {
		t.Fatal(err)
	}

	mutate := func(which string) []byte {
		db, err := CreateDatabaseWith(minisql.FreshDSN(), string(store.EngineV2))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { db.Close() })
		if err := db.LoadFrom(bytes.NewReader(img.Bytes())); err != nil {
			t.Fatal(err)
		}
		s := OpenLocal(keys, db)
		defer s.Close()
		if _, err := s.Insert(3, "item"); err != nil {
			t.Fatalf("%s: insert: %v", which, err)
		}
		if err := s.Update(6, "city"); err != nil {
			t.Fatalf("%s: update: %v", which, err)
		}
		if err := s.Delete(9); err != nil {
			t.Fatalf("%s: delete: %v", which, err)
		}
		var out bytes.Buffer
		if err := db.DumpTo(&out); err != nil {
			t.Fatal(err)
		}
		return out.Bytes()
	}

	a := mutate("replica a")
	b := mutate("replica b")
	if !bytes.Equal(a, b) {
		t.Fatalf("replica dumps differ after identical mutations: %d vs %d bytes", len(a), len(b))
	}
}
