// Trietext: the §4 trie enhancement. Person records with textual names
// are encrypted with compressed-trie text indexing, enabling
// contains(text(),...) and exact-word searches over the encrypted
// content — the /name[contains(text(),"Joan")] example from the paper.
package main

import (
	"fmt"
	"log"
	"strings"

	"encshare"
	"encshare/internal/xmldoc"
)

const doc = `<people>
  <person><name>Joan Johnson</name><city>Enschede</city></person>
  <person><name>Joanna Keller</name><city>Eindhoven</city></person>
  <person><name>Bob Miller</name><city>Enschede</city></person>
  <person><name>Berry Johnson</name><city>Delft</city></person>
</people>`

func main() {
	parsed, err := xmldoc.ParseString(doc)
	if err != nil {
		log.Fatal(err)
	}
	// The map universe must cover tags AND the text alphabet (plus the ⊥
	// terminator); ContentNames collects it from a corpus.
	var corpus strings.Builder
	parsed.Walk(func(n *xmldoc.Node) bool {
		corpus.WriteString(n.Text + " ")
		return true
	})
	names := encshare.ContentNames(parsed.Names(), corpus.String())
	keys, err := encshare.GenerateKeys(
		encshare.Params{P: 83, TrieMode: encshare.TrieCompressed}, names)
	if err != nil {
		log.Fatal(err)
	}

	db, err := encshare.CreateDatabase("trietext")
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	stats, err := db.EncodeXML(keys, strings.NewReader(doc))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("encoded %d nodes (tags + trie characters)\n", stats.Nodes)

	session := encshare.OpenLocal(keys, db)
	defer session.Close()
	for _, q := range []string{
		`/people/person[contains(text(),"Joan")]`,    // prefix: Joan + Joanna
		`/people/person[text()="joan"]`,              // exact word: Joan only
		`/people/person[contains(text(),"Johnson")]`, // surname search
		`//person[contains(text(),"Enschede")]`,      // city text
		`//person[contains(text(),"Zelda")]`,         // absent
	} {
		res, err := session.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-48s -> %d person(s) %v\n", q, len(res.Pres), res.Pres)
	}
}
