// Auctionsearch: the paper's headline scenario. An XMark auction site is
// encrypted and queried with the Table 2 queries, comparing the simple
// and advanced engines and the strict/non-strict tests — a miniature of
// the §6.2–6.3 experiments.
package main

import (
	"bytes"
	"fmt"
	"log"

	"encshare"
	"encshare/internal/xmark"
	"encshare/internal/xmldoc"
)

func main() {
	// Generate a deterministic auction document (~100 KB).
	var xml bytes.Buffer
	if _, err := xmark.WriteXML(&xml, xmark.Config{Scale: 0.1, Seed: 7}); err != nil {
		log.Fatal(err)
	}
	parsed, err := xmldoc.Parse(bytes.NewReader(xml.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("auction site: %d bytes of XML, %d element nodes\n", xml.Len(), parsed.Count)

	keys, err := encshare.GenerateKeys(encshare.Params{P: 83}, parsed.Names())
	if err != nil {
		log.Fatal(err)
	}
	db, err := encshare.CreateDatabase("auctionsearch")
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	if _, err := db.EncodeXML(keys, bytes.NewReader(xml.Bytes())); err != nil {
		log.Fatal(err)
	}
	session := encshare.OpenLocal(keys, db)
	defer session.Close()

	queries := []string{
		"/site//europe/item",
		"/site//europe//item",
		"/site/*/person//city",
		"/*/*/open_auction/bidder/date",
		"//bidder/date",
	}
	fmt.Printf("\n%-34s %8s %10s %10s %10s\n", "query (exact results)", "matches",
		"simple", "advanced", "speedup")
	for _, q := range queries {
		s, err := session.QueryWith(q, encshare.QueryOptions{Engine: encshare.Simple})
		if err != nil {
			log.Fatal(err)
		}
		a, err := session.QueryWith(q, encshare.QueryOptions{Engine: encshare.Advanced})
		if err != nil {
			log.Fatal(err)
		}
		if len(s.Pres) != len(a.Pres) {
			log.Fatalf("engines disagree on %s", q)
		}
		fmt.Printf("%-34s %8d %10s %10s %9.1fx\n",
			q, len(a.Pres),
			s.Stats.Elapsed.Round(1000), a.Stats.Elapsed.Round(1000),
			float64(s.Stats.Elapsed)/float64(a.Stats.Elapsed))
	}

	// Strictness: exact results cost reconstructions; containment costs
	// accuracy.
	fmt.Printf("\nstrictness on /site/*/person//city:\n")
	exact, err := session.QueryWith("/site/*/person//city", encshare.QueryOptions{})
	if err != nil {
		log.Fatal(err)
	}
	loose, err := session.QueryWith("/site/*/person//city",
		encshare.QueryOptions{Test: encshare.TestContainment})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  exact:       %4d matches, %5d evals, %5d reconstructions\n",
		len(exact.Pres), exact.Stats.Evaluations, exact.Stats.Reconstructions)
	fmt.Printf("  containment: %4d matches, %5d evals (accuracy %.0f%%)\n",
		len(loose.Pres), loose.Stats.Evaluations,
		100*float64(len(exact.Pres))/float64(len(loose.Pres)))
}
