// Quickstart: encrypt a small XML document and query it, all in one
// process. Demonstrates the minimal key → encode → query flow and that
// the server-side table alone reveals nothing useful.
package main

import (
	"fmt"
	"log"
	"strings"

	"encshare"
	"encshare/internal/xmldoc"
)

const doc = `<library>
  <shelf>
    <book><title/><author/></book>
    <book><title/></book>
  </shelf>
  <shelf>
    <book><author/></book>
  </shelf>
</library>`

func main() {
	// 1. The key material: a random seed plus a secret tag map. The name
	//    universe here is just the document's tags.
	parsed, err := xmldoc.ParseString(doc)
	if err != nil {
		log.Fatal(err)
	}
	keys, err := encshare.GenerateKeys(encshare.Params{P: 83}, parsed.Names())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated keys over F_83: %d bytes per node polynomial\n", keys.PolyBytes())

	// 2. Encode: the database receives only secret shares.
	db, err := encshare.CreateDatabase("quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	stats, err := db.EncodeXML(keys, strings.NewReader(doc))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("encoded %d nodes (%d B payload) in %s\n",
		stats.Nodes, stats.OutputBytes(), stats.Elapsed.Round(1000))

	// 3. Query. Default options: advanced engine, exact (strict) test.
	session := encshare.OpenLocal(keys, db)
	defer session.Close()
	for _, q := range []string{
		"/library",
		"//book",
		"//book/author",
		"/library/*/book",
		"//magazine", // not in the document
	} {
		res, err := session.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s -> %d nodes %v  (%d evals, %d reconstructions)\n",
			q, len(res.Pres), res.Pres, res.Stats.Evaluations, res.Stats.Reconstructions)
	}

	// 4. The cheap containment test trades accuracy for speed: //author
	//    now also reports every ancestor of an author.
	res, err := session.QueryWith("//author", encshare.QueryOptions{Test: encshare.TestContainment})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("containment //author -> %d nodes (ancestors included): %v\n", len(res.Pres), res.Pres)
}
