// Remote: the full client/server split of §5. A server process (here a
// goroutine) holds only the encrypted share table and answers RMI calls;
// the thin client holds the seed and map, dials over TCP, and runs
// queries. Swap the goroutine for cmd/encshare-server to split across
// machines.
package main

import (
	"bytes"
	"fmt"
	"log"
	"net"

	"encshare"
	"encshare/internal/xmark"
	"encshare/internal/xmldoc"
)

func main() {
	// --- offline, at the data owner: generate keys and encode ---
	var xml bytes.Buffer
	if _, err := xmark.WriteXML(&xml, xmark.Config{Scale: 0.05, Seed: 3}); err != nil {
		log.Fatal(err)
	}
	parsed, err := xmldoc.Parse(bytes.NewReader(xml.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	keys, err := encshare.GenerateKeys(encshare.Params{P: 83}, parsed.Names())
	if err != nil {
		log.Fatal(err)
	}
	db, err := encshare.CreateDatabase("remote-demo")
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	if _, err := db.EncodeXML(keys, bytes.NewReader(xml.Bytes())); err != nil {
		log.Fatal(err)
	}
	n, _ := db.NodeCount()

	// --- the untrusted server: only shares, no keys ---
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := db.Serve(l, keys.Params()); err != nil {
			log.Print(err)
		}
	}()
	fmt.Printf("server: %d encrypted nodes on %s\n", n, l.Addr())

	// --- the thin client: dials with the secret key material ---
	session, err := encshare.Dial(keys, l.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer session.Close()

	for _, q := range []string{
		"/site/people/person",
		"/site//europe/item",
		"//bidder/date",
	} {
		res, err := session.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s -> %3d nodes (%d server round-trip-heavy evals, %s)\n",
			q, len(res.Pres), res.Stats.Evaluations, res.Stats.Elapsed.Round(1000))
	}
	fmt.Println("the server never saw a tag name, a map value, or the seed")
}
