// Remote: the full client/server split of §5. A server process (here a
// goroutine) holds only the encrypted share table and answers RMI calls;
// the thin client holds the seed and map, dials over TCP, and runs
// queries. Swap the goroutine for cmd/encshare-server to split across
// machines.
//
// The second half shards the same table over three servers and queries
// the cluster: identical answers, identical client-side work, one
// concurrent exchange per shard per batched step — and no single server
// ever holds (or learns) more than a slice of uniformly random shares.
package main

import (
	"bytes"
	"fmt"
	"log"
	"net"

	"encshare"
	"encshare/internal/xmark"
	"encshare/internal/xmldoc"
)

func main() {
	// --- offline, at the data owner: generate keys and encode ---
	var xml bytes.Buffer
	if _, err := xmark.WriteXML(&xml, xmark.Config{Scale: 0.05, Seed: 3}); err != nil {
		log.Fatal(err)
	}
	parsed, err := xmldoc.Parse(bytes.NewReader(xml.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	keys, err := encshare.GenerateKeys(encshare.Params{P: 83}, parsed.Names())
	if err != nil {
		log.Fatal(err)
	}
	db, err := encshare.CreateDatabase("remote-demo")
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	if _, err := db.EncodeXML(keys, bytes.NewReader(xml.Bytes())); err != nil {
		log.Fatal(err)
	}
	n, _ := db.NodeCount()

	// --- the untrusted server: only shares, no keys ---
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := db.Serve(l, keys.Params()); err != nil {
			log.Print(err)
		}
	}()
	fmt.Printf("server: %d encrypted nodes on %s\n", n, l.Addr())

	// --- the thin client: dials with the secret key material ---
	session, err := encshare.Dial(keys, l.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer session.Close()

	queries := []string{
		"/site/people/person",
		"/site//europe/item",
		"//bidder/date",
	}
	for _, q := range queries {
		res, err := session.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s -> %3d nodes (%d server round-trip-heavy evals, %s)\n",
			q, len(res.Pres), res.Stats.Evaluations, res.Stats.Elapsed.Round(1000))
	}
	fmt.Println("the server never saw a tag name, a map value, or the seed")

	// --- cluster mode: the same table cut into three pre-range shards ---
	plan, err := db.ShardPlan(3)
	if err != nil {
		log.Fatal(err)
	}
	var addrs []string
	for i, r := range plan {
		var dump bytes.Buffer
		if err := db.DumpShard(&dump, r); err != nil {
			log.Fatal(err)
		}
		shardDB, err := encshare.CreateDatabase(fmt.Sprintf("remote-demo-shard%d", i))
		if err != nil {
			log.Fatal(err)
		}
		defer shardDB.Close()
		if err := shardDB.LoadFrom(&dump); err != nil {
			log.Fatal(err)
		}
		sl, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		go func() {
			if err := shardDB.Serve(sl, keys.Params()); err != nil {
				log.Print(err)
			}
		}()
		fmt.Printf("shard %d: pre [%d, %d] on %s\n", i, r.Lo, r.Hi, sl.Addr())
		addrs = append(addrs, sl.Addr().String())
	}
	cs, err := encshare.DialCluster(keys, addrs)
	if err != nil {
		log.Fatal(err)
	}
	defer cs.Close()
	for _, q := range queries {
		res, err := cs.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s -> %3d nodes over %d shards (per-shard exchanges so far: %v)\n",
			q, len(res.Pres), cs.Shards(), cs.ShardRoundTrips())
	}
	fmt.Println("each shard saw only its slice of uniformly random shares")
}
