// Remote: the full client/server split of §5. A server process (here a
// goroutine) holds only the encrypted share table and answers RMI calls;
// the thin client holds the seed and map, dials over TCP, and runs
// queries. Swap the goroutine for cmd/encshare-server to split across
// machines.
//
// The second half shards the same table over three shards × two
// replicas and queries the cluster: identical answers, identical
// client-side work, one concurrent exchange per shard per batched step —
// and no single server ever holds (or learns) more than a slice of
// uniformly random shares. Replicas are byte-identical copies (shares
// are immutable, so there is nothing to keep consistent), which the
// demo proves by killing one replica of every shard mid-session: the
// queries keep answering identically, with Session.Failovers counting
// the rerouted frames.
package main

import (
	"bytes"
	"fmt"
	"log"
	"net"
	"sync"

	"encshare"
	"encshare/internal/xmark"
	"encshare/internal/xmldoc"
)

// killableListener wraps a listener so the demo can kill a replica the
// way a crashed process would die: stop accepting AND sever every
// established connection.
type killableListener struct {
	net.Listener
	mu    sync.Mutex
	conns []net.Conn
}

func (l *killableListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err == nil {
		l.mu.Lock()
		l.conns = append(l.conns, c)
		l.mu.Unlock()
	}
	return c, err
}

func (l *killableListener) Kill() {
	l.Listener.Close()
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, c := range l.conns {
		c.Close()
	}
}

func main() {
	// --- offline, at the data owner: generate keys and encode ---
	var xml bytes.Buffer
	if _, err := xmark.WriteXML(&xml, xmark.Config{Scale: 0.05, Seed: 3}); err != nil {
		log.Fatal(err)
	}
	parsed, err := xmldoc.Parse(bytes.NewReader(xml.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	keys, err := encshare.GenerateKeys(encshare.Params{P: 83}, parsed.Names())
	if err != nil {
		log.Fatal(err)
	}
	db, err := encshare.CreateDatabase("remote-demo")
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	if _, err := db.EncodeXML(keys, bytes.NewReader(xml.Bytes())); err != nil {
		log.Fatal(err)
	}
	n, _ := db.NodeCount()

	// --- the untrusted server: only shares, no keys ---
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := db.Serve(l, keys.Params()); err != nil {
			log.Print(err)
		}
	}()
	fmt.Printf("server: %d encrypted nodes on %s\n", n, l.Addr())

	// --- the thin client: dials with the secret key material ---
	session, err := encshare.Dial(keys, l.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer session.Close()

	queries := []string{
		"/site/people/person",
		"/site//europe/item",
		"//bidder/date",
	}
	for _, q := range queries {
		res, err := session.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s -> %3d nodes (%d server round-trip-heavy evals, %s)\n",
			q, len(res.Pres), res.Stats.Evaluations, res.Stats.Elapsed.Round(1000))
	}
	fmt.Println("the server never saw a tag name, a map value, or the seed")

	// --- cluster mode: three pre-range shards, two replicas each ---
	plan, err := db.ShardPlan(3)
	if err != nil {
		log.Fatal(err)
	}
	var addrs []string
	var primaries []*killableListener // replica 0 of each shard, killed below
	for i, r := range plan {
		var dump bytes.Buffer
		if err := db.DumpShard(&dump, r); err != nil {
			log.Fatal(err)
		}
		// A replica is nothing but another server over a byte-identical
		// copy of the shard file — no consistency protocol, no log.
		for j := 0; j < 2; j++ {
			shardDB, err := encshare.CreateDatabase(fmt.Sprintf("remote-demo-shard%d-r%d", i, j))
			if err != nil {
				log.Fatal(err)
			}
			defer shardDB.Close()
			if err := shardDB.LoadFrom(bytes.NewReader(dump.Bytes())); err != nil {
				log.Fatal(err)
			}
			raw, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				log.Fatal(err)
			}
			sl := &killableListener{Listener: raw}
			if j == 0 {
				primaries = append(primaries, sl)
			}
			go func() {
				if err := shardDB.Serve(sl, keys.Params()); err != nil {
					log.Print(err)
				}
			}()
			fmt.Printf("shard %d replica %d: pre [%d, %d] on %s\n", i, j, r.Lo, r.Hi, sl.Addr())
			addrs = append(addrs, sl.Addr().String())
		}
	}
	// The address list is flat: DialCluster groups servers reporting the
	// same pre range into one replica failover set.
	cs, err := encshare.DialCluster(keys, addrs)
	if err != nil {
		log.Fatal(err)
	}
	defer cs.Close()
	fmt.Printf("cluster: %d shards, replicas per shard %v\n", cs.Shards(), cs.Replicas())
	for _, q := range queries {
		res, err := cs.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s -> %3d nodes over %d shards (per-shard exchanges so far: %v)\n",
			q, len(res.Pres), cs.Shards(), cs.ShardRoundTrips())
	}

	// Kill replica 0 of every shard — connections severed, listeners
	// gone — and run the same queries: the scatter layer reroutes every
	// frame to the surviving replicas with zero client-visible errors.
	for _, l := range primaries {
		l.Kill()
	}
	for _, q := range queries {
		res, err := cs.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s -> %3d nodes with one replica of each shard dead\n", q, len(res.Pres))
	}
	fmt.Printf("frames failed over: %d (queries kept their answers)\n", cs.Failovers())
	fmt.Println("each shard saw only its slice of uniformly random shares")
}
