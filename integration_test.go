package encshare

// Integration tests: whole-pipeline properties on randomized documents,
// failure injection, and concurrency — the cross-module layer above the
// per-package suites.

import (
	"bytes"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"

	"encshare/internal/minisql"
	"encshare/internal/store"
	"encshare/internal/xmldoc"
	"encshare/internal/xpath"
)

// randomDocXML builds a random XMark-tag-flavoured document so queries
// over it are meaningful.
func randomDocXML(rng *rand.Rand, nodes int) string {
	names := []string{"site", "regions", "europe", "item", "name", "people",
		"person", "city", "open_auction", "bidder", "date"}
	root := &xmldoc.Node{Name: "site"}
	all := []*xmldoc.Node{root}
	for i := 0; i < nodes; i++ {
		parent := all[rng.Intn(len(all))]
		child := &xmldoc.Node{Name: names[rng.Intn(len(names))]}
		parent.Children = append(parent.Children, child)
		all = append(all, child)
	}
	d := &xmldoc.Doc{Root: root}
	d.Rebuild()
	var buf bytes.Buffer
	if err := d.WriteXML(&buf); err != nil {
		panic(err)
	}
	return buf.String()
}

// TestIntegrationRandomizedOracleParity: on random trees, every engine ×
// test combination agrees with the plaintext oracle for a battery of
// randomized queries. This is the strongest end-to-end correctness check
// in the repo.
func TestIntegrationRandomizedOracleParity(t *testing.T) {
	queries := []string{
		"/site", "//item", "//person//city", "/site/*/person",
		"/site//europe/item", "//bidder/date", "//open_auction/bidder",
		"/site/regions//name", "//*", "/*/*",
		"/site/regions/../people",
	}
	for trial := 0; trial < 5; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial=%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(trial) * 7919))
			xml := randomDocXML(rng, 120+rng.Intn(200))
			doc, err := xmldoc.ParseString(xml)
			if err != nil {
				t.Fatal(err)
			}
			keys, err := GenerateKeys(Params{P: 83}, doc.Names())
			if err != nil {
				t.Fatal(err)
			}
			db, err := CreateDatabase(minisql.FreshDSN())
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			if _, err := db.EncodeXML(keys, strings.NewReader(xml)); err != nil {
				t.Fatal(err)
			}
			session := OpenLocal(keys, db)
			oracle := xpath.NewOracle(doc)

			for _, qs := range queries {
				q := xpath.MustParse(qs)
				for _, opt := range []QueryOptions{
					{Engine: Simple, Test: TestExact},
					{Engine: Advanced, Test: TestExact},
					{Engine: Simple, Test: TestContainment},
					{Engine: Advanced, Test: TestContainment},
				} {
					mode := xpath.MatchEqual
					if opt.Test == TestContainment {
						mode = xpath.MatchContain
					}
					want := xpath.Pres(oracle.Eval(q, mode))
					got, err := session.QueryWith(qs, opt)
					if err != nil {
						t.Fatalf("%s %+v: %v", qs, opt, err)
					}
					if len(got.Pres) != len(want) {
						t.Fatalf("%s %+v: %d nodes, oracle %d", qs, opt, len(got.Pres), len(want))
					}
					for i := range want {
						if got.Pres[i] != want[i] {
							t.Fatalf("%s %+v: result %v != oracle %v", qs, opt, got.Pres, want)
						}
					}
				}
			}
		})
	}
}

// TestIntegrationCorruptedShareDetected: flipping bytes in a stored share
// must not crash the pipeline; out-of-range blobs surface as errors, and
// in-range corruption garbles results (it cannot silently pass the exact
// oracle on all queries — overwhelmingly likely to change some answer).
func TestIntegrationCorruptedShare(t *testing.T) {
	xml := `<site><people><person><city/></person></people></site>`
	doc, _ := xmldoc.ParseString(xml)
	keys, err := GenerateKeys(Params{P: 83}, doc.Names())
	if err != nil {
		t.Fatal(err)
	}
	dsn := minisql.FreshDSN()
	db, err := CreateDatabase(dsn)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.EncodeXML(keys, strings.NewReader(xml)); err != nil {
		t.Fatal(err)
	}

	// Corrupt the root's share to an out-of-range value (all 0xFF exceeds
	// q^n - 1 for F_83), going through the store API so the test covers
	// whichever engine backs the table.
	st, err := store.Open(dsn)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Attach(); err != nil {
		t.Fatal(err)
	}
	root, err := st.Node(1)
	if err != nil {
		t.Fatal(err)
	}
	root.Poly = bytes.Repeat([]byte{0xFF}, keys.PolyBytes())
	if err := st.UpdateNode(1, root); err != nil {
		t.Fatal(err)
	}
	session := OpenLocal(keys, db)
	if _, err := session.Query("/site"); err == nil {
		t.Fatal("query over out-of-range share succeeded")
	}
}

// TestIntegrationStoreErrNotFound: ErrNotFound propagates with errors.Is
// semantics through the store layer.
func TestIntegrationStoreErrNotFound(t *testing.T) {
	dsn := minisql.FreshDSN()
	st, err := store.Open(dsn)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		st.Close()
		minisql.Drop(dsn)
	}()
	if err := st.Init(); err != nil {
		t.Fatal(err)
	}
	_, err = st.Node(42)
	if err == nil || !strings.Contains(err.Error(), "not found") {
		t.Fatalf("err = %v", err)
	}
}

// TestIntegrationConcurrentSessions: multiple client sessions with
// distinct counters may query one server concurrently.
func TestIntegrationConcurrentSessions(t *testing.T) {
	xml := randomDocXML(rand.New(rand.NewSource(3)), 300)
	doc, _ := xmldoc.ParseString(xml)
	keys, err := GenerateKeys(Params{P: 83}, doc.Names())
	if err != nil {
		t.Fatal(err)
	}
	db, err := CreateDatabase(minisql.FreshDSN())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.EncodeXML(keys, strings.NewReader(xml)); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go db.Serve(l, keys.Params())

	ref, err := OpenLocal(keys, db).Query("//item")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			session, err := Dial(keys, l.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			defer session.Close()
			for i := 0; i < 5; i++ {
				res, err := session.Query("//item")
				if err != nil {
					errs <- err
					return
				}
				if len(res.Pres) != len(ref.Pres) {
					errs <- fmt.Errorf("concurrent session got %d nodes, want %d", len(res.Pres), len(ref.Pres))
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestIntegrationExtensionField: the whole pipeline works over a proper
// extension field F_{3^4} (q = 81), not just prime fields.
func TestIntegrationExtensionField(t *testing.T) {
	xml := `<site><regions><europe><item/></europe></regions><people><person><city/></person></people></site>`
	doc, _ := xmldoc.ParseString(xml)
	keys, err := GenerateKeys(Params{P: 3, E: 4}, doc.Names())
	if err != nil {
		t.Fatal(err)
	}
	db, err := CreateDatabase(minisql.FreshDSN())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.EncodeXML(keys, strings.NewReader(xml)); err != nil {
		t.Fatal(err)
	}
	session := OpenLocal(keys, db)
	for qs, want := range map[string]int{
		"/site//city": 1, "//item": 1, "/site/*/person": 1,
	} {
		res, err := session.Query(qs)
		if err != nil {
			t.Fatalf("%s: %v", qs, err)
		}
		if len(res.Pres) != want {
			t.Fatalf("%s over F_81 = %v, want %d", qs, res.Pres, want)
		}
	}
}

// TestIntegrationEngineWorkOrdering: across a randomized document, the
// advanced engine must never lose to the simple engine by more than the
// paper's constant factor in evaluations, and must win in nodes visited
// for descendant-heavy queries.
func TestIntegrationEngineWorkOrdering(t *testing.T) {
	xml := randomDocXML(rand.New(rand.NewSource(17)), 800)
	doc, _ := xmldoc.ParseString(xml)
	keys, err := GenerateKeys(Params{P: 83}, doc.Names())
	if err != nil {
		t.Fatal(err)
	}
	db, err := CreateDatabase(minisql.FreshDSN())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.EncodeXML(keys, strings.NewReader(xml)); err != nil {
		t.Fatal(err)
	}
	session := OpenLocal(keys, db)
	var sumSimple, sumAdvanced int64
	for _, qs := range []string{"//person//city", "//open_auction/bidder", "/site//item"} {
		s, err := session.QueryWith(qs, QueryOptions{Engine: Simple, Test: TestContainment})
		if err != nil {
			t.Fatal(err)
		}
		a, err := session.QueryWith(qs, QueryOptions{Engine: Advanced, Test: TestContainment})
		if err != nil {
			t.Fatal(err)
		}
		sumSimple += s.Stats.NodesVisited
		sumAdvanced += a.Stats.NodesVisited
	}
	if sumAdvanced > sumSimple {
		t.Fatalf("advanced visited %d nodes vs simple %d on descendant-heavy queries",
			sumAdvanced, sumSimple)
	}
}
