package encshare

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"testing"

	"encshare/internal/cluster"
	"encshare/internal/filter"
	"encshare/internal/minisql"
	"encshare/internal/rmi"
)

// encodeFresh encodes xml into a fresh database with the given keys.
// Shares are deterministic in (keys, pre), so two encodes of the same
// document with the same keys are byte-identical — which makes a fresh
// encode of the post-mutation document a gold oracle for the whole
// share table, polynomials included.
func encodeFresh(t *testing.T, keys *Keys, xml string) *Database {
	t.Helper()
	db, err := CreateDatabase(minisql.FreshDSN())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if _, err := db.EncodeXML(keys, strings.NewReader(xml)); err != nil {
		t.Fatal(err)
	}
	return db
}

// assertSameTable compares the two databases' full node tables row by
// row: numbering, structure pointers, and share blobs byte for byte.
func assertSameTable(t *testing.T, step string, got, want *Database) {
	t.Helper()
	ng, err := got.NodeCount()
	if err != nil {
		t.Fatalf("%s: %v", step, err)
	}
	nw, err := want.NodeCount()
	if err != nil {
		t.Fatalf("%s: %v", step, err)
	}
	if ng != nw {
		t.Fatalf("%s: table holds %d nodes, oracle %d", step, ng, nw)
	}
	rg, err := got.st.Range(1, ng)
	if err != nil {
		t.Fatalf("%s: %v", step, err)
	}
	rw, err := want.st.Range(1, nw)
	if err != nil {
		t.Fatalf("%s: %v", step, err)
	}
	sort.Slice(rg, func(i, j int) bool { return rg[i].Pre < rg[j].Pre })
	sort.Slice(rw, func(i, j int) bool { return rw[i].Pre < rw[j].Pre })
	for i := range rw {
		g, w := rg[i], rw[i]
		if g.Pre != w.Pre || g.Post != w.Post || g.Parent != w.Parent {
			t.Fatalf("%s: row %d is (pre %d, post %d, parent %d), oracle (%d, %d, %d)",
				step, i, g.Pre, g.Post, g.Parent, w.Pre, w.Post, w.Parent)
		}
		if !bytes.Equal(g.Poly, w.Poly) {
			t.Fatalf("%s: share blob of pre %d differs from the oracle encode", step, g.Pre)
		}
	}
}

// TestMutateGoldOracle drives every mutation kind through a local
// session and, after each step, requires the mutated table to be
// BYTE-IDENTICAL to a fresh encode of the equivalent XML document with
// the same keys — numbering, parent pointers, and every share blob.
func TestMutateGoldOracle(t *testing.T) {
	keys, err := GenerateKeys(Params{P: 83}, testNames(t))
	if err != nil {
		t.Fatal(err)
	}
	db := encodeFresh(t, keys, testXML)
	s := OpenLocal(keys, db)
	defer s.Close()

	// Base numbering: 1 site, 2 regions, 3 europe, 4 item, 5 name,
	// 6 people, 7 person, 8 name, 9 address, 10 city.
	steps := []struct {
		name   string
		mutate func() error
		xml    string // expected document after this step
	}{
		{
			// Mid-document insert: tail rows 6–10 shift up, ancestors
			// europe/regions/site gain the (x − item) factor.
			name: "insert item under europe",
			mutate: func() error {
				pre, err := s.Insert(3, "item")
				if err == nil && pre != 6 {
					t.Fatalf("Insert under europe landed at pre %d, want 6", pre)
				}
				return err
			},
			xml: `<site><regions><europe><item><name>lamp</name></item><item/></europe></regions><people><person><name>Joan Johnson</name><address><city>Enschede</city></address></person></people></site>`,
		},
		{
			// Rename in place: no renumbering, ancestors rebuilt around
			// the changed child with algebraically recovered tags.
			name:   "rename the new item to city",
			mutate: func() error { return s.Update(6, "city") },
			xml:    `<site><regions><europe><item><name>lamp</name></item><city/></europe></regions><people><person><name>Joan Johnson</name><address><city>Enschede</city></address></person></people></site>`,
		},
		{
			// Mid-document leaf delete: tail shifts down, the parent
			// loses the child's factor.
			name:   "delete person's name",
			mutate: func() error { return s.Delete(9) },
			xml:    `<site><regions><europe><item><name>lamp</name></item><city/></europe></regions><people><person><address><city>Enschede</city></address></person></people></site>`,
		},
		{
			// Append at the document end: no tail to shift.
			name: "append regions under the root",
			mutate: func() error {
				pre, err := s.Insert(1, "regions")
				if err == nil && pre != 11 {
					t.Fatalf("append landed at pre %d, want 11", pre)
				}
				return err
			},
			xml: `<site><regions><europe><item><name>lamp</name></item><city/></europe></regions><people><person><address><city>Enschede</city></address></person></people><regions/></site>`,
		},
		{
			// Delete early in the document: the whole tail, the fresh
			// append included, shifts down past it.
			name:   "delete the lamp name",
			mutate: func() error { return s.Delete(5) },
			xml:    `<site><regions><europe><item/><city/></europe></regions><people><person><address><city>Enschede</city></address></person></people><regions/></site>`,
		},
	}
	for _, step := range steps {
		if err := step.mutate(); err != nil {
			t.Fatalf("%s: %v", step.name, err)
		}
		oracle := encodeFresh(t, keys, step.xml)
		assertSameTable(t, step.name, db, oracle)

		// The engines must see the mutated document exactly as they
		// would a fresh encode of it.
		os := OpenLocal(keys, oracle)
		for _, q := range []string{"//item", "//city", "//name", "//regions", "/site/regions/europe/*"} {
			want, err := os.Query(q)
			if err != nil {
				t.Fatalf("%s: oracle %s: %v", step.name, q, err)
			}
			got, err := s.Query(q)
			if err != nil {
				t.Fatalf("%s: %s: %v", step.name, q, err)
			}
			if len(got.Pres) != len(want.Pres) {
				t.Fatalf("%s: %s = %v, oracle %v", step.name, q, got.Pres, want.Pres)
			}
			for i := range want.Pres {
				if got.Pres[i] != want.Pres[i] {
					t.Fatalf("%s: %s = %v, oracle %v", step.name, q, got.Pres, want.Pres)
				}
			}
		}
		os.Close()
	}
}

// TestMutateErrors pins the typed refusals — and that a refused
// mutation leaves the table untouched.
func TestMutateErrors(t *testing.T) {
	keys, err := GenerateKeys(Params{P: 83}, testNames(t))
	if err != nil {
		t.Fatal(err)
	}
	db := encodeFresh(t, keys, testXML)
	s := OpenLocal(keys, db)
	defer s.Close()

	if err := s.Delete(1); !errors.Is(err, ErrDeleteRoot) {
		t.Errorf("Delete(root) = %v, want ErrDeleteRoot", err)
	}
	if err := s.Delete(2); !errors.Is(err, ErrHasChildren) {
		t.Errorf("Delete(interior) = %v, want ErrHasChildren", err)
	}
	if _, err := s.Insert(1, "no-such-tag"); err == nil {
		t.Error("Insert with an unmapped name succeeded")
	}
	if err := s.Update(4, "no-such-tag"); err == nil {
		t.Error("Update with an unmapped name succeeded")
	}
	if _, err := s.Insert(99, "item"); err == nil {
		t.Error("Insert under a missing node succeeded")
	}
	if err := s.Delete(99); err == nil {
		t.Error("Delete of a missing node succeeded")
	}
	assertSameTable(t, "after refused mutations", db, encodeFresh(t, keys, testXML))
}

// TestMutateRemote covers the single-server write path over TCP: the
// writer sees its own write, a session dialed afterwards sees it, a
// second writer interleaves (each re-learning the sequence after the
// other's write trips its gap check), and a session pinned to the
// pre-mutation epoch gets fenced into a transparent re-pin — never a
// stale answer.
func TestMutateRemote(t *testing.T) {
	keys, err := GenerateKeys(Params{P: 83}, testNames(t))
	if err != nil {
		t.Fatal(err)
	}
	db := encodeFresh(t, keys, testXML)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go db.Serve(l, keys.Params())
	defer l.Close()
	addr := l.Addr().String()

	a, err := Dial(keys, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	// stale dials before any mutation: its epoch pin predates them all.
	stale, err := Dial(keys, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer stale.Close()

	if _, err := a.Insert(3, "item"); err != nil {
		t.Fatalf("remote insert: %v", err)
	}
	res, err := a.Query("//item")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pres) != 2 {
		t.Fatalf("writer sees //item = %v, want 2 nodes", res.Pres)
	}

	// A second writer session: its first mutation learns the sequence
	// fresh; after A writes again, B's cached sequence gaps and the
	// session re-learns transparently.
	b, err := Dial(keys, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := b.Update(6, "city"); err != nil {
		t.Fatalf("second writer: %v", err)
	}
	if _, err := a.Insert(1, "regions"); err != nil {
		t.Fatalf("first writer after interleave (sequence re-learn): %v", err)
	}
	if err := b.Delete(9); err != nil {
		t.Fatalf("second writer after interleave: %v", err)
	}

	// The stale session was pinned three epochs ago; the server must
	// fence its reads and the session must re-pin and answer from the
	// current state.
	res, err = stale.Query("//city")
	if err != nil {
		t.Fatalf("stale-pinned session: %v", err)
	}
	if len(res.Pres) != 2 {
		t.Fatalf("stale-pinned session sees //city = %v, want 2 nodes", res.Pres)
	}

	// End state matches the oracle encode of the equivalent document.
	assertSameTable(t, "remote end state", db, encodeFresh(t, keys,
		`<site><regions><europe><item><name>lamp</name></item><city/></europe></regions><people><person><address><city>Enschede</city></address></person></people><regions/></site>`))
}

// consumeSeqMutable applies batches normally but fails the reply for
// the first `failures` successful applies — modeling a server whose
// apply or compact hook errors (or whose reply is lost) AFTER the
// sequence is consumed.
type consumeSeqMutable struct {
	*filter.Mutable
	failures int
}

func (m *consumeSeqMutable) Mutate(b filter.MutationBatch) (filter.MutateReply, error) {
	reply, err := m.Mutable.Mutate(b)
	if err == nil && m.failures > 0 {
		m.failures--
		return reply, errors.New("chaos: compact hook failed after apply")
	}
	return reply, err
}

// TestWriterRecoversAfterConsumedSeq pins the false-idempotent-ack fix:
// when a batch's sequence is consumed server-side but the writer gets
// an error back, the session must drop its cached sequence. Reusing it
// would make the NEXT batch collide with the consumed sequence and be
// acknowledged without being applied — a silently lost update.
func TestWriterRecoversAfterConsumedSeq(t *testing.T) {
	keys, err := GenerateKeys(Params{P: 83}, testNames(t))
	if err != nil {
		t.Fatal(err)
	}
	db := encodeFresh(t, keys, testXML)
	mut := filter.NewMutable(filter.NewServerFilter(db.st, keys.ring, 1024), 0, nil, nil)
	srv := rmi.NewServer()
	filter.RegisterServer(srv, &consumeSeqMutable{Mutable: mut, failures: 1})
	cConn, sConn := net.Pipe()
	go srv.ServeConn(sConn)
	cli := rmi.NewClient(cConn)
	rem := filter.NewRemote(cli)
	// An unpinned session (no dial-time epoch pin): it cannot rely on
	// stale-epoch fencing to notice the server moved on without it.
	// Lease off: this test pins the optimistic client-sequenced path —
	// the fallback every session keeps — where a cached sequence CAN go
	// stale. (Leased batches carry Seq 0 and are sequenced server-side,
	// so a consumed sequence cannot be reused there by construction.)
	s := newSession(keys, rem, cli)
	s.rmiCli = cli
	s.remote = rem
	s.noLease = true
	defer s.Close()

	// First insert: the server applies it, consumes sequence 1, and
	// fails the reply. The writer must surface the error.
	if _, err := s.Insert(1, "regions"); err == nil {
		t.Fatal("insert against the failing server reported success")
	}
	res, err := s.Query("//regions")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pres) != 2 {
		t.Fatalf("//regions = %v after failed-reply insert, want 2 nodes (batch was applied)", res.Pres)
	}

	// Second insert: pre-fix the session reused cached sequence 0, sent
	// Seq=1 again, and the server acked it idempotently without applying
	// anything. It must instead re-learn the sequence and really apply.
	if _, err := s.Insert(1, "regions"); err != nil {
		t.Fatalf("insert after consumed sequence: %v", err)
	}
	res, err = s.Query("//regions")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pres) != 3 {
		t.Fatalf("//regions = %v after recovery insert, want 3 nodes", res.Pres)
	}
}

// TestMutateCluster runs the write path against a live 2-shard TCP
// cluster: ops are routed to the owning shard, renumbering re-tiles the
// shard ranges, and both the writing session and a session dialed
// afterwards agree with a local session that applied the same edits.
func TestMutateCluster(t *testing.T) {
	keys, err := GenerateKeys(Params{P: 83}, testNames(t))
	if err != nil {
		t.Fatal(err)
	}
	db := encodeFresh(t, keys, testXML)
	plan, err := db.ShardPlan(2)
	if err != nil {
		t.Fatal(err)
	}
	var addrs []string
	for _, r := range plan {
		var dump bytes.Buffer
		if err := db.DumpShard(&dump, r); err != nil {
			t.Fatal(err)
		}
		shardDB, err := CreateDatabase(minisql.FreshDSN())
		if err != nil {
			t.Fatal(err)
		}
		defer shardDB.Close()
		if err := shardDB.LoadFrom(&dump); err != nil {
			t.Fatal(err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		go shardDB.Serve(l, keys.Params())
		addrs = append(addrs, l.Addr().String())
	}

	session, err := DialCluster(keys, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer session.Close()

	// The same edits applied to the unsharded copy are the oracle.
	local := OpenLocal(keys, db)
	defer local.Close()
	if _, err := session.Insert(3, "item"); err != nil {
		t.Fatalf("cluster insert: %v", err)
	}
	if _, err := local.Insert(3, "item"); err != nil {
		t.Fatal(err)
	}
	if err := session.Update(6, "city"); err != nil {
		t.Fatalf("cluster update: %v", err)
	}
	if err := local.Update(6, "city"); err != nil {
		t.Fatal(err)
	}
	if err := session.Delete(9); err != nil {
		t.Fatalf("cluster delete: %v", err)
	}
	if err := local.Delete(9); err != nil {
		t.Fatal(err)
	}

	fresh, err := DialCluster(keys, addrs)
	if err != nil {
		t.Fatalf("re-dial after mutations (ranges must still tile): %v", err)
	}
	defer fresh.Close()
	for _, q := range []string{"//item", "//city", "//name", "/site/regions/europe/*", "/site//person"} {
		want, err := local.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		for who, cs := range map[string]*Session{"writer": session, "fresh": fresh} {
			got, err := cs.Query(q)
			if err != nil {
				t.Fatalf("%s session %s: %v", who, q, err)
			}
			if len(got.Pres) != len(want.Pres) {
				t.Fatalf("%s session %s = %v, local %v", who, q, got.Pres, want.Pres)
			}
			for i := range want.Pres {
				if got.Pres[i] != want.Pres[i] {
					t.Fatalf("%s session %s = %v, local %v", who, q, got.Pres, want.Pres)
				}
			}
		}
	}
}

// failOnceConn drops the first `fails` mutation deliveries to an
// in-process shard at the "transport": the coordinator gets a
// TransportError and cannot know whether the batch landed. The batch
// in fact never reached the server, which is the harder half of the
// unknown-delivery outcome (redelivery must really apply, not just be
// acked idempotently).
type failOnceConn struct {
	*filter.Mutable
	fails int
}

func (c *failOnceConn) Mutate(b filter.MutationBatch) (filter.MutateReply, error) {
	if c.fails > 0 {
		c.fails--
		return filter.MutateReply{}, &rmi.TransportError{Method: "Filter.Mutate", Err: errors.New("chaos: connection dropped mid-delivery")}
	}
	return c.Mutable.Mutate(b)
}

// TestPartialCommitParksAndRepairs pins the torn multi-shard commit
// contract: when a cross-shard mutation commits on one shard and the
// other shard's delivery is unknown, the session surfaces a
// PartialMutationError, refuses further writes (ErrPendingMutation)
// while the numbering is torn, and one SyncReplicas flushes the parked
// batch — after which the document matches a local oracle that applied
// the same edit once.
func TestPartialCommitParksAndRepairs(t *testing.T) {
	keys, err := GenerateKeys(Params{P: 83}, testNames(t))
	if err != nil {
		t.Fatal(err)
	}
	db := encodeFresh(t, keys, testXML)
	plan, err := db.ShardPlan(2)
	if err != nil {
		t.Fatal(err)
	}
	var shards []cluster.Shard
	for i, r := range plan {
		var dump bytes.Buffer
		if err := db.DumpShard(&dump, r); err != nil {
			t.Fatal(err)
		}
		sdb, err := CreateDatabase(minisql.FreshDSN())
		if err != nil {
			t.Fatal(err)
		}
		defer sdb.Close()
		if err := sdb.LoadFrom(&dump); err != nil {
			t.Fatal(err)
		}
		mut := filter.NewMutable(filter.NewServerFilter(sdb.st, keys.ring, 1024), 0, nil, nil)
		var conn cluster.Conn = mut
		if i == 1 {
			conn = &failOnceConn{Mutable: mut, fails: 1}
		}
		shards = append(shards, cluster.Shard{
			Addr:  fmt.Sprintf("shard%d", i),
			Range: r,
			Conn:  conn,
		})
	}
	f, err := cluster.NewWith(shards, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := newSession(keys, f, f)
	s.shardF = f
	defer s.Close()

	// Insert under pre 3: renumbering patches land on shard 0, the new
	// row and the tail shifts on shard 1 — whose delivery fails. Shard 0
	// commits its slice, so the outcome is a partial commit naming the
	// torn shard.
	_, err = s.Insert(3, "item")
	var pe *cluster.PartialMutationError
	if !errors.As(err, &pe) {
		t.Fatalf("insert with one shard unreachable = %v, want PartialMutationError", err)
	}
	if len(pe.Applied) != 1 || pe.Applied[0] != 0 || len(pe.Failed) != 1 || pe.Failed[0] != 1 {
		t.Fatalf("partial commit applied=%v failed=%v, want applied=[0] failed=[1]", pe.Applied, pe.Failed)
	}

	// The numbering is torn across shards; further writes must be
	// refused until the parked batch is flushed.
	if _, err := s.Insert(1, "regions"); !errors.Is(err, cluster.ErrPendingMutation) {
		t.Fatalf("write against torn numbering = %v, want ErrPendingMutation", err)
	}

	// One sync flushes the parked batch (the transport healed: fails is
	// spent) and re-tiles the ranges.
	if pending, err := f.SyncReplicas(); err != nil || pending != 0 {
		t.Fatalf("SyncReplicas after partial commit = (%d, %v), want (0, nil)", pending, err)
	}

	// The logical insert happened exactly once; subsequent writes work.
	local := OpenLocal(keys, db)
	defer local.Close()
	if _, err := local.Insert(3, "item"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert(1, "regions"); err != nil {
		t.Fatalf("insert after repair: %v", err)
	}
	if _, err := local.Insert(1, "regions"); err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"//item", "//regions", "//name", "/site/regions/europe/*"} {
		want, err := local.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.Query(q)
		if err != nil {
			t.Fatalf("query %s after repair: %v", q, err)
		}
		if len(got.Pres) != len(want.Pres) {
			t.Fatalf("%s = %v after repair, local %v", q, got.Pres, want.Pres)
		}
		for i := range want.Pres {
			if got.Pres[i] != want.Pres[i] {
				t.Fatalf("%s = %v after repair, local %v", q, got.Pres, want.Pres)
			}
		}
	}
}
