package encshare

import (
	"bytes"
	"fmt"
	"math/rand"
	"net"
	"reflect"
	"strings"
	"sync"
	"testing"

	"encshare/internal/minisql"
	"encshare/internal/server"
	"encshare/internal/xmldoc"
)

// buildTenant encodes a fresh random document under its own keys and
// returns the pair — one tenant's world.
func buildTenant(t *testing.T, seed int64, nodes int) (*Keys, *Database) {
	t.Helper()
	xml := randomDocXML(rand.New(rand.NewSource(seed)), nodes)
	doc, err := xmldoc.ParseString(xml)
	if err != nil {
		t.Fatal(err)
	}
	keys, err := GenerateKeys(Params{P: 83}, doc.Names())
	if err != nil {
		t.Fatal(err)
	}
	db, err := CreateDatabase(minisql.FreshDSN())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if _, err := db.EncodeXML(keys, strings.NewReader(xml)); err != nil {
		t.Fatal(err)
	}
	return keys, db
}

// TestEndToEndMultiTenant pins the acceptance criteria of the
// multi-tenant runtime: a single server process serves two tenants
// concurrently with isolated caches and stats, and a tenantless client
// — wire-identical to a pre-tenant binary — still queries the default
// tenant unmodified.
func TestEndToEndMultiTenant(t *testing.T) {
	aKeys, aDB := buildTenant(t, 101, 400)
	bKeys, bDB := buildTenant(t, 202, 300)

	rt := server.New(server.Config{CacheBudget: 8192, Default: "auction"})
	if err := rt.AttachStore(server.Tenant{Name: "auction", P: 83, CacheEntries: 4096}, aDB.st); err != nil {
		t.Fatal(err)
	}
	if err := rt.AttachStore(server.Tenant{Name: "books", P: 83, CacheEntries: 4096}, bDB.st); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go rt.Serve(l)
	addr := l.Addr().String()

	aLocal, bLocal := OpenLocal(aKeys, aDB), OpenLocal(bKeys, bDB)
	queries := []string{"/site", "//item", "//person//city"}

	aSess, err := DialWith(aKeys, addr, DialOptions{Tenant: "auction"})
	if err != nil {
		t.Fatal(err)
	}
	defer aSess.Close()
	bSess, err := DialWith(bKeys, addr, DialOptions{Tenant: "books"})
	if err != nil {
		t.Fatal(err)
	}
	defer bSess.Close()
	if aSess.Tenant() != "auction" || bSess.Tenant() != "books" {
		t.Fatalf("session tenants %q/%q", aSess.Tenant(), bSess.Tenant())
	}

	// Concurrent load on both tenants through ONE process: every
	// answer must match the tenant's own local session.
	var wg sync.WaitGroup
	errc := make(chan error, 2*len(queries))
	run := func(sess, local *Session, label string) {
		defer wg.Done()
		for _, qs := range queries {
			want, err := local.Query(qs)
			if err != nil {
				errc <- err
				return
			}
			got, err := sess.Query(qs)
			if err != nil {
				errc <- fmt.Errorf("%s %s: %v", label, qs, err)
				return
			}
			if !reflect.DeepEqual(got.Pres, want.Pres) {
				errc <- fmt.Errorf("%s %s: got %v want %v", label, qs, got.Pres, want.Pres)
				return
			}
		}
	}
	wg.Add(2)
	go run(aSess, aLocal, "auction")
	go run(bSess, bLocal, "books")
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Per-tenant stats are isolated: each session's counters move only
	// with its own traffic, and evals sum to the runtime's totals.
	aStats, err := aSess.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	bStats, err := bSess.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	if aStats.Evals == 0 || bStats.Evals == 0 {
		t.Fatalf("missing per-tenant eval counts: %+v %+v", aStats, bStats)
	}
	rtStats := rt.Stats()
	if rtStats["auction"] != aStats || rtStats["books"] != bStats {
		t.Fatalf("wire stats diverge from runtime stats: %+v vs %+v / %+v vs %+v",
			aStats, rtStats["auction"], bStats, rtStats["books"])
	}

	// A client that never names a tenant sends frames wire-identical
	// to a pre-PR binary's (the tenant field is gob-omitted when
	// empty): it must land on the default tenant and see exactly the
	// single-tenant behavior.
	legacy, err := Dial(aKeys, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer legacy.Close()
	before := rt.Stats()["books"]
	for _, qs := range queries {
		want, _ := aLocal.Query(qs)
		got, err := legacy.Query(qs)
		if err != nil {
			t.Fatalf("legacy client %s: %v", qs, err)
		}
		if !reflect.DeepEqual(got.Pres, want.Pres) {
			t.Fatalf("legacy client %s: got %v want %v", qs, got.Pres, want.Pres)
		}
	}
	if after := rt.Stats()["books"]; after != before {
		t.Fatalf("legacy (default-tenant) traffic moved another tenant's counters: %+v -> %+v", before, after)
	}

	// Dialing a tenant the server does not host fails loudly.
	if _, err := DialWith(aKeys, addr, DialOptions{Tenant: "nobody"}); err == nil {
		t.Fatal("dial with unknown tenant succeeded")
	}
}

// TestEndToEndLiveReplicaJoin pins the live-topology criterion: a
// replica added to a running cluster session via Session.AddReplica
// serves traffic without a redial — proven by killing the original
// replica of its shard and watching the session keep answering through
// the join.
func TestEndToEndLiveReplicaJoin(t *testing.T) {
	keys, db := buildTenant(t, 77, 500)
	plan, err := db.ShardPlan(2)
	if err != nil {
		t.Fatal(err)
	}

	dumps := make([]*bytes.Buffer, len(plan))
	var addrs []string
	var listeners []*killableListener
	serveShard := func(si int) *killableListener {
		shardDB, err := CreateDatabase(minisql.FreshDSN())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { shardDB.Close() })
		if err := shardDB.LoadFrom(bytes.NewReader(dumps[si].Bytes())); err != nil {
			t.Fatal(err)
		}
		raw, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		l := &killableListener{Listener: raw}
		t.Cleanup(l.Kill)
		go shardDB.Serve(l, keys.Params())
		return l
	}
	for si, r := range plan {
		dumps[si] = &bytes.Buffer{}
		if err := db.DumpShard(dumps[si], r); err != nil {
			t.Fatal(err)
		}
		l := serveShard(si)
		listeners = append(listeners, l)
		addrs = append(addrs, l.Addr().String())
	}

	session, err := DialCluster(keys, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer session.Close()
	local := OpenLocal(keys, db)
	const q = "//item"
	want, err := local.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	check := func(label string) {
		t.Helper()
		got, err := session.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if !reflect.DeepEqual(got.Pres, want.Pres) {
			t.Fatalf("%s: got %v want %v", label, got.Pres, want.Pres)
		}
	}
	check("before join")

	// AddReplica on a non-cluster session is a clear error.
	if _, err := local.AddReplica("127.0.0.1:1"); err == nil {
		t.Fatal("AddReplica on local session succeeded")
	}

	// Provision a new replica of shard 0 and join it to the LIVE
	// session — no redial.
	joined := serveShard(0)
	si, err := session.AddReplica(joined.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if si != 0 {
		t.Fatalf("joined shard %d, want 0", si)
	}
	if got := session.Replicas(); !reflect.DeepEqual(got, []int{2, 1}) {
		t.Fatalf("Replicas after join = %v, want [2 1]", got)
	}
	check("after join")

	// Kill the ORIGINAL shard-0 replica: only the joined one can
	// answer shard 0 now. The session must keep returning identical
	// results, with failovers counted and no redial.
	listeners[0].Kill()
	check("after original replica died")
	if session.Failovers() == 0 {
		t.Fatal("original replica killed but Failovers() = 0")
	}
}

// TestClientWorkerPoolParity pins the client-side worker pool
// satellite: any pool bound computes identical results and identical
// work counters — one worker degenerates to the sequential loop, N
// workers just spread the same per-node PRG stream passes over cores.
func TestClientWorkerPoolParity(t *testing.T) {
	keys, db := buildTenant(t, 55, 400)
	queries := []string{"/site", "//item", "//person//city", "//bidder/date"}
	type outcome struct {
		pres  [][]int64
		evals []int64
		recon []int64
	}
	runAll := func(workers int, opts QueryOptions) outcome {
		sess := OpenLocal(keys, db)
		sess.SetClientWorkers(workers)
		var o outcome
		for _, qs := range queries {
			res, err := sess.QueryWith(qs, opts)
			if err != nil {
				t.Fatalf("workers=%d %s: %v", workers, qs, err)
			}
			o.pres = append(o.pres, res.Pres)
			o.evals = append(o.evals, res.Stats.Evaluations)
			o.recon = append(o.recon, res.Stats.Reconstructions)
		}
		return o
	}
	for _, opts := range []QueryOptions{{}, {Test: TestContainment}, {Engine: Simple}} {
		base := runAll(1, opts)
		for _, workers := range []int{2, 8} {
			got := runAll(workers, opts)
			if !reflect.DeepEqual(got, base) {
				t.Fatalf("opts %+v: workers=%d diverged from single-worker run:\n%+v\n%+v",
					opts, workers, got, base)
			}
		}
	}
}
