package encshare

import (
	"bytes"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"

	"encshare/internal/minisql"
	"encshare/internal/xmldoc"
)

// killableListener tracks accepted connections so a test can kill a
// replica server the way a crashed process dies: no more accepts AND
// every established connection severed.
type killableListener struct {
	net.Listener
	mu    sync.Mutex
	conns []net.Conn
}

func (l *killableListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err == nil {
		l.mu.Lock()
		l.conns = append(l.conns, c)
		l.mu.Unlock()
	}
	return c, err
}

func (l *killableListener) Kill() {
	l.Listener.Close()
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, c := range l.conns {
		c.Close()
	}
}

// TestEndToEndFailover exercises replica failover through the public
// API: a 3-shard × 2-replica TCP deployment, dialed as a flat address
// list, keeps answering queries identically after one replica of every
// shard is killed mid-session, with Session.Failovers counting the
// rerouted frames and no client-visible errors.
func TestEndToEndFailover(t *testing.T) {
	xml := randomDocXML(rand.New(rand.NewSource(33)), 500)
	doc, _ := xmldoc.ParseString(xml)
	keys, err := GenerateKeys(Params{P: 83}, doc.Names())
	if err != nil {
		t.Fatal(err)
	}
	db, err := CreateDatabase(minisql.FreshDSN())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.EncodeXML(keys, strings.NewReader(xml)); err != nil {
		t.Fatal(err)
	}

	plan, err := db.ShardPlan(3)
	if err != nil {
		t.Fatal(err)
	}
	var addrs []string
	var primaries []*killableListener
	for _, r := range plan {
		var dump bytes.Buffer
		if err := db.DumpShard(&dump, r); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 2; j++ {
			shardDB, err := CreateDatabase(minisql.FreshDSN())
			if err != nil {
				t.Fatal(err)
			}
			defer shardDB.Close()
			if err := shardDB.LoadFrom(bytes.NewReader(dump.Bytes())); err != nil {
				t.Fatal(err)
			}
			raw, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			l := &killableListener{Listener: raw}
			defer l.Kill()
			if j == 0 {
				primaries = append(primaries, l)
			}
			go shardDB.Serve(l, keys.Params())
			addrs = append(addrs, l.Addr().String())
		}
	}

	session, err := DialCluster(keys, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer session.Close()
	if session.Shards() != 3 {
		t.Fatalf("Shards() = %d, want 3 (6 servers grouped into replica sets)", session.Shards())
	}
	for si, n := range session.Replicas() {
		if n != 2 {
			t.Fatalf("shard %d has %d replicas, want 2", si, n)
		}
	}

	local := OpenLocal(keys, db)
	queries := []string{"/site", "//item", "//person//city", "//bidder/date"}
	for _, qs := range queries {
		want, err := local.Query(qs)
		if err != nil {
			t.Fatal(err)
		}
		got, err := session.Query(qs)
		if err != nil {
			t.Fatalf("healthy cluster %s: %v", qs, err)
		}
		if len(got.Pres) != len(want.Pres) {
			t.Fatalf("healthy %s: cluster %v != local %v", qs, got.Pres, want.Pres)
		}
	}
	if session.Failovers() != 0 {
		t.Fatalf("healthy run recorded %d failovers", session.Failovers())
	}

	// Kill replica 0 of every shard and repeat: identical answers, no
	// errors, a positive failover count.
	for _, l := range primaries {
		l.Kill()
	}
	for _, opt := range []QueryOptions{{}, {Engine: Simple}, {Batch: PerCall}, {Test: TestContainment}} {
		for _, qs := range queries {
			want, err := local.QueryWith(qs, opt)
			if err != nil {
				t.Fatal(err)
			}
			got, err := session.QueryWith(qs, opt)
			if err != nil {
				t.Fatalf("degraded cluster %s %+v: client-visible error: %v", qs, opt, err)
			}
			if len(got.Pres) != len(want.Pres) {
				t.Fatalf("degraded %s %+v: cluster %v != local %v", qs, opt, got.Pres, want.Pres)
			}
			for i := range want.Pres {
				if got.Pres[i] != want.Pres[i] {
					t.Fatalf("degraded %s %+v: cluster %v != local %v", qs, opt, got.Pres, want.Pres)
				}
			}
			if got.Stats.Evaluations != want.Stats.Evaluations ||
				got.Stats.Reconstructions != want.Stats.Reconstructions {
				t.Fatalf("degraded %s %+v: cluster work %+v != local %+v", qs, opt, got.Stats, want.Stats)
			}
		}
	}
	if session.Failovers() == 0 {
		t.Fatal("killed one replica per shard but Session.Failovers() = 0")
	}
}
