package encshare

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"encshare/internal/cluster"
	"encshare/internal/filter"
	"encshare/internal/rmi"
	"encshare/internal/server"
)

// appendItemsXML is testXML with n extra <item/> elements appended as
// last children of the root — the oracle document for concurrent
// append-at-root writers, whose end state is interleave-independent.
func appendItemsXML(n int) string {
	return strings.TrimSuffix(testXML, "</site>") + strings.Repeat("<item/>", n) + "</site>"
}

// TestConcurrentWritersLease runs two writer sessions against one
// WAL-backed TCP server at the same time. Under the writer lease the
// server assigns every batch's sequence, so the sessions interleave
// without ever colliding on one — and the end state must be
// byte-identical to the gold oracle encode.
func TestConcurrentWritersLease(t *testing.T) {
	keys, err := GenerateKeys(Params{P: 83}, testNames(t))
	if err != nil {
		t.Fatal(err)
	}
	db := encodeFresh(t, keys, testXML)

	rt := server.New(server.Config{})
	if err := rt.AttachStore(server.Tenant{P: 83, WALDir: t.TempDir()}, db.st); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Shutdown)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go rt.Serve(l)

	const perWriter = 6
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for w := 0; w < 2; w++ {
		s, err := Dial(keys, l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		wg.Add(1)
		go func(w int, s *Session) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, err := s.Insert(1, "item"); err != nil {
					errs[w] = fmt.Errorf("writer %d insert %d: %w", w, i, err)
					return
				}
			}
		}(w, s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Both writers really ran under the lease (no silent downgrade to
	// the optimistic path), and the server sequenced every batch.
	dw := rt.WALStats()[""]
	if dw.LeaseAcquires == 0 {
		t.Fatal("no lease acquisitions: writers fell back to optimistic sequencing")
	}
	if dw.Appends != 2*perWriter {
		t.Fatalf("journaled %d batches, want %d", dw.Appends, 2*perWriter)
	}

	assertSameTable(t, "two leased writers", db, encodeFresh(t, keys, appendItemsXML(2*perWriter)))
}

// TestLeaseExpiryMidBatch is the lease chaos drill: writer A's lease
// expires between planning and applying (a second writer takes the
// lease and commits meanwhile). A's apply must be fenced with a typed
// LeaseExpiredError — never applied — and the session must re-acquire,
// re-plan against the other writer's state, and land the edit, with the
// end state matching the gold oracle.
func TestLeaseExpiryMidBatch(t *testing.T) {
	keys, err := GenerateKeys(Params{P: 83}, testNames(t))
	if err != nil {
		t.Fatal(err)
	}
	db := encodeFresh(t, keys, testXML)
	mut := filter.NewMutable(filter.NewServerFilter(db.st, keys.ring, 1024), 0, nil, nil)
	var clock atomic.Int64
	mut.SetLeaseClock(clock.Load)
	srv := rmi.NewServer()
	filter.RegisterServer(srv, mut)

	dial := func() *Session {
		cConn, sConn := net.Pipe()
		go srv.ServeConn(sConn)
		cli := rmi.NewClient(cConn)
		rem := filter.NewRemote(cli)
		s := newSession(keys, rem, cli)
		s.rmiCli = cli
		s.remote = rem
		t.Cleanup(func() { s.Close() })
		return s
	}
	a, b := dial(), dial()
	a.leaseTTL = 500 * time.Millisecond

	// Between A's plan and its apply: A's lease TTL lapses and B takes
	// the lease and commits an insert. The takeover bumps the fencing
	// ID, so A's staged batch must be refused.
	fired := false
	a.testHookAfterPlan = func() {
		if fired {
			return
		}
		fired = true
		clock.Add(int64(time.Second))
		if _, err := b.Insert(1, "item"); err != nil {
			t.Errorf("intruding writer: %v", err)
		}
	}
	if _, err := a.Insert(1, "item"); err != nil {
		t.Fatalf("writer A after lease expiry: %v", err)
	}
	if !fired {
		t.Fatal("chaos hook never ran")
	}
	st := mut.LeaseStatsNow()
	if st.Expirations == 0 {
		t.Fatal("lease takeover did not count an expiration")
	}
	if got := mut.LastSeq(); got != 2 {
		t.Fatalf("server applied %d batches, want 2 (fenced batch must not count)", got)
	}

	assertSameTable(t, "lease expiry mid-batch", db, encodeFresh(t, keys, appendItemsXML(2)))
}

// TestClusterWritersLease runs two concurrent writer sessions against a
// 2-shard TCP cluster. The cluster lease (held on shard 0's designated
// replica) makes the writers take turns planning, so cross-shard
// batches interleave cleanly; the per-shard sequence and digest checks
// stay on as the backstop. End state must match the gold oracle.
func TestClusterWritersLease(t *testing.T) {
	keys, err := GenerateKeys(Params{P: 83}, testNames(t))
	if err != nil {
		t.Fatal(err)
	}
	db := encodeFresh(t, keys, testXML)
	total, err := db.NodeCount()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := cluster.PartitionEven(1, total, 2)
	if err != nil {
		t.Fatal(err)
	}
	stores, cleanup, err := cluster.SplitStore(db.st, plan)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cleanup)

	var addrs []string
	var rts []*server.Runtime
	for _, st := range stores {
		rt := server.New(server.Config{})
		if err := rt.AttachStore(server.Tenant{P: 83}, st); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(rt.Shutdown)
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		go rt.Serve(l)
		addrs = append(addrs, l.Addr().String())
		rts = append(rts, rt)
	}

	const perWriter = 4
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for w := 0; w < 2; w++ {
		s, err := DialCluster(keys, addrs)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		wg.Add(1)
		go func(w int, s *Session) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, err := s.Insert(1, "item"); err != nil {
					errs[w] = fmt.Errorf("writer %d insert %d: %w", w, i, err)
					return
				}
			}
		}(w, s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// The lease lives on exactly one of the runtimes (the lowest
	// address of shard 0); the writers must have used it.
	var acquires uint64
	for _, rt := range rts {
		acquires += rt.WALStats()[""].LeaseAcquires
	}
	if acquires == 0 {
		t.Fatal("no lease acquisitions on any replica: cluster writers ran unleased")
	}

	// Verify through a fresh session + the gold oracle: every row of
	// the re-tiled shards agrees with a fresh encode.
	verify, err := DialCluster(keys, addrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { verify.Close() })
	oracle := OpenLocal(keys, encodeFresh(t, keys, appendItemsXML(2*perWriter)))
	t.Cleanup(func() { oracle.Close() })
	for _, q := range []string{"//item", "//city", "/site/*"} {
		want, err := oracle.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := verify.Query(q)
		if err != nil {
			t.Fatalf("cluster %s: %v", q, err)
		}
		if len(got.Pres) != len(want.Pres) {
			t.Fatalf("%s: cluster %v, oracle %v", q, got.Pres, want.Pres)
		}
		for i := range want.Pres {
			if got.Pres[i] != want.Pres[i] {
				t.Fatalf("%s: cluster %v, oracle %v", q, got.Pres, want.Pres)
			}
		}
	}
}
