package encshare

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"testing"

	"encshare/internal/filter"
	"encshare/internal/gf"
	"encshare/internal/minisql"
	"encshare/internal/ring"
	"encshare/internal/server"
	"encshare/internal/xmldoc"
)

// aggSession builds a local session over testXML for the given field.
func aggSession(t *testing.T, params Params) *Session {
	t.Helper()
	keys, err := GenerateKeys(params, testNames(t))
	if err != nil {
		t.Fatal(err)
	}
	db, err := CreateDatabase(minisql.FreshDSN())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if _, err := db.EncodeXML(keys, strings.NewReader(testXML)); err != nil {
		t.Fatal(err)
	}
	s := OpenLocal(keys, db)
	t.Cleanup(func() { s.Close() })
	return s
}

// aggOracleSum reconstructs every matching row through the session's
// own client filter and sums client-side — the pre-aggregate ground
// truth every fold must match.
func aggOracleSum(t *testing.T, s *Session, pres []int64) ring.Poly {
	t.Helper()
	r := s.keys.ring
	total := r.NewPoly()
	for _, pre := range pres {
		p, err := s.cli.Reconstruct(pre)
		if err != nil {
			t.Fatal(err)
		}
		r.AddInPlace(total, p)
	}
	return total
}

// TestAggregateParityGrid is the acceptance parity grid: across prime
// and extension fields, both engines, both wire protocols, and all
// three kinds, the aggregate over a query's rows must equal the
// client-side reconstruction oracle — verified, with no downgrade.
func TestAggregateParityGrid(t *testing.T) {
	fields := []Params{{P: 83}, {P: 29}, {P: 5, E: 3}}
	queries := []string{"//item", "//name", "/site//person", "/site", "//zzz-not-there"}
	grid := []QueryOptions{
		{},
		{Engine: Simple},
		{Batch: PerCall},
		{Engine: Simple, Batch: PerCall},
	}
	for _, params := range fields {
		s := aggSession(t, params)
		f, r := s.keys.field, s.keys.ring
		for _, qs := range queries {
			for _, qopt := range grid {
				tag := fmt.Sprintf("q=%d %s %+v", f.Q(), qs, qopt)
				want, err := s.QueryWith(qs, qopt)
				if err != nil {
					t.Fatal(err)
				}
				oracle := aggOracleSum(t, s, want.Pres)

				res, err := s.AggregateWith(qs, AggSum, AggregateOptions{Query: qopt})
				if err != nil {
					t.Fatalf("%s: %v", tag, err)
				}
				if fmt.Sprint(res.Pres) != fmt.Sprint(want.Pres) {
					t.Fatalf("%s: aggregate rows %v != query rows %v", tag, res.Pres, want.Pres)
				}
				if res.Count != int64(len(want.Pres)) {
					t.Fatalf("%s: Count = %d, want %d", tag, res.Count, len(want.Pres))
				}
				if !r.Equal(res.Sum, oracle) {
					t.Fatalf("%s: SUM != reconstruction oracle", tag)
				}
				if !res.Verified || res.Downgraded {
					t.Fatalf("%s: verified=%v downgraded=%v", tag, res.Verified, res.Downgraded)
				}

				cnt, err := s.AggregateWith(qs, AggCount, AggregateOptions{Query: qopt})
				if err != nil {
					t.Fatalf("%s count: %v", tag, err)
				}
				if cnt.Count != res.Count || cnt.Sum != nil {
					t.Fatalf("%s: COUNT = %d (sum %v), want %d (nil)", tag, cnt.Count, cnt.Sum, res.Count)
				}

				avg, err := s.AggregateWith(qs, AggAvg, AggregateOptions{Query: qopt})
				if res.Count%int64(f.Q()) == 0 {
					if !errors.As(err, new(*filter.AvgUndefinedError)) {
						t.Fatalf("%s: AVG over %d rows: err = %v, want AvgUndefinedError", tag, res.Count, err)
					}
					continue
				}
				if err != nil {
					t.Fatalf("%s avg: %v", tag, err)
				}
				wantAvg := r.AddScaledInPlace(r.NewPoly(), oracle, f.Inv(gf.Elem(res.Count%int64(f.Q()))))
				if !r.Equal(avg.Avg, wantAvg) {
					t.Fatalf("%s: AVG != SUM · count⁻¹", tag)
				}
			}
		}
	}
}

// TestAggregateRemoteEndToEnd runs the fold against a real TCP server:
// parity with the local oracle, and the aggregation phase costs exactly
// ONE extra exchange over the bare query — O(shards), not O(rows).
func TestAggregateRemoteEndToEnd(t *testing.T) {
	xml := randomDocXML(rand.New(rand.NewSource(55)), 300)
	doc, err := xmldoc.ParseString(xml)
	if err != nil {
		t.Fatal(err)
	}
	keys, err := GenerateKeys(Params{P: 83}, doc.Names())
	if err != nil {
		t.Fatal(err)
	}
	db, err := CreateDatabase(minisql.FreshDSN())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.EncodeXML(keys, strings.NewReader(xml)); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go db.Serve(l, keys.Params())

	session, err := Dial(keys, l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer session.Close()
	local := OpenLocal(keys, db)
	defer local.Close()

	const q = "//item"
	want, err := local.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Pres) < 5 {
		t.Fatalf("fixture too small: %d items", len(want.Pres))
	}
	oracle := aggOracleSum(t, local, want.Pres)

	before := session.RoundTrips()
	qr, err := session.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	queryCost := session.RoundTrips() - before

	before = session.RoundTrips()
	res, err := session.Aggregate(q, AggSum)
	if err != nil {
		t.Fatal(err)
	}
	aggCost := session.RoundTrips() - before

	if !keys.ring.Equal(res.Sum, oracle) || res.Count != int64(len(want.Pres)) {
		t.Fatalf("remote aggregate: count=%d parity=%v", res.Count, keys.ring.Equal(res.Sum, oracle))
	}
	if !res.Verified || res.Downgraded {
		t.Fatalf("remote aggregate: verified=%v downgraded=%v", res.Verified, res.Downgraded)
	}
	if got := aggCost - queryCost; got != 1 {
		t.Fatalf("aggregation phase cost %d exchanges over %d rows, want 1 (O(shards) not O(rows))", got, len(qr.Pres))
	}
	if res.Stats.Folds != int64(len(want.Pres)) {
		t.Fatalf("Stats.Folds = %d, want %d (one client-share fold per row)", res.Stats.Folds, len(want.Pres))
	}
}

// TestAggregateClusterEndToEnd: the public cluster path — shard dumps,
// TCP servers, DialCluster — answers verified aggregates identical to
// the local session.
func TestAggregateClusterEndToEnd(t *testing.T) {
	xml := randomDocXML(rand.New(rand.NewSource(77)), 400)
	doc, err := xmldoc.ParseString(xml)
	if err != nil {
		t.Fatal(err)
	}
	keys, err := GenerateKeys(Params{P: 83}, doc.Names())
	if err != nil {
		t.Fatal(err)
	}
	db, err := CreateDatabase(minisql.FreshDSN())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.EncodeXML(keys, strings.NewReader(xml)); err != nil {
		t.Fatal(err)
	}
	plan, err := db.ShardPlan(3)
	if err != nil {
		t.Fatal(err)
	}
	var addrs []string
	for _, r := range plan {
		var dump bytes.Buffer
		if err := db.DumpShard(&dump, r); err != nil {
			t.Fatal(err)
		}
		shardDB, err := CreateDatabase(minisql.FreshDSN())
		if err != nil {
			t.Fatal(err)
		}
		defer shardDB.Close()
		if err := shardDB.LoadFrom(&dump); err != nil {
			t.Fatal(err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		go shardDB.Serve(l, keys.Params())
		addrs = append(addrs, l.Addr().String())
	}

	session, err := DialCluster(keys, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer session.Close()
	local := OpenLocal(keys, db)
	defer local.Close()

	for _, qs := range []string{"//item", "//person//city", "/site"} {
		want, err := local.Query(qs)
		if err != nil {
			t.Fatal(err)
		}
		oracle := aggOracleSum(t, local, want.Pres)
		for _, kind := range []AggKind{AggCount, AggSum} {
			res, err := session.Aggregate(qs, kind)
			if err != nil {
				t.Fatalf("%s %v: %v", qs, kind, err)
			}
			if res.Count != int64(len(want.Pres)) {
				t.Fatalf("%s %v: count %d, want %d", qs, kind, res.Count, len(want.Pres))
			}
			if kind == AggSum && !keys.ring.Equal(res.Sum, oracle) {
				t.Fatalf("%s: cluster SUM != local oracle", qs)
			}
			if res.Downgraded || !res.Verified {
				t.Fatalf("%s %v: downgraded=%v verified=%v", qs, kind, res.Downgraded, res.Verified)
			}
		}
	}
}

// TestMultiTenantAggregateStats: aggregate frames are counted per
// tenant, for both the segmented (default) and shared cache layouts —
// one tenant's folds never move another tenant's counter.
func TestMultiTenantAggregateStats(t *testing.T) {
	for _, layout := range []struct {
		name string
		cfg  server.Config
	}{
		{"segmented", server.Config{CacheBudget: 8192, Default: "auction"}},
		{"shared", server.Config{CacheBudget: 8192, SharedCache: true, Default: "auction"}},
	} {
		t.Run(layout.name, func(t *testing.T) {
			aKeys, aDB := buildTenant(t, 303, 300)
			bKeys, bDB := buildTenant(t, 404, 300)
			rt := server.New(layout.cfg)
			if err := rt.AttachStore(server.Tenant{Name: "auction", P: 83, CacheEntries: 2048}, aDB.st); err != nil {
				t.Fatal(err)
			}
			if err := rt.AttachStore(server.Tenant{Name: "books", P: 83, CacheEntries: 2048}, bDB.st); err != nil {
				t.Fatal(err)
			}
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			go rt.Serve(l)

			aSess, err := DialWith(aKeys, l.Addr().String(), DialOptions{Tenant: "auction"})
			if err != nil {
				t.Fatal(err)
			}
			defer aSess.Close()
			bSess, err := DialWith(bKeys, l.Addr().String(), DialOptions{Tenant: "books"})
			if err != nil {
				t.Fatal(err)
			}
			defer bSess.Close()

			// Tenant A folds twice, tenant B three times: the counters
			// must land exactly, on the right tenants.
			for i := 0; i < 2; i++ {
				if _, err := aSess.Aggregate("//item", AggSum); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 3; i++ {
				if _, err := bSess.Aggregate("//item", AggCount); err != nil {
					t.Fatal(err)
				}
			}
			aStats, err := aSess.ServerStats()
			if err != nil {
				t.Fatal(err)
			}
			bStats, err := bSess.ServerStats()
			if err != nil {
				t.Fatal(err)
			}
			if aStats.Aggregates != 2 || bStats.Aggregates != 3 {
				t.Fatalf("per-tenant Aggregates = %d/%d, want 2/3", aStats.Aggregates, bStats.Aggregates)
			}
		})
	}
}
