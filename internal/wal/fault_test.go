package wal_test

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"encshare/internal/iofault"
	"encshare/internal/wal"
)

func collectAt(t *testing.T, fsys wal.FS, path string) ([]string, *wal.Log) {
	t.Helper()
	var got []string
	l, err := wal.OpenAt(fsys, path, func(p []byte) error {
		got = append(got, string(p))
		return nil
	})
	if err != nil {
		t.Fatalf("OpenAt: %v", err)
	}
	return got, l
}

// Concurrent Appends must coalesce: every append acked, fewer fdatasyncs
// than appends, and all records durable on reopen.
func TestGroupCommitCoalesces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := wal.Open(path, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	const writers, per = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := l.Append([]byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := l.Stats()
	if st.Appends != writers*per {
		t.Fatalf("appends = %d, want %d", st.Appends, writers*per)
	}
	// With 8 concurrent writers the commit leader must absorb at least
	// some followers. Keep the bound loose (scheduling-dependent) but
	// meaningful.
	if st.Syncs >= st.Appends {
		t.Fatalf("no coalescing: %d syncs for %d appends", st.Syncs, st.Appends)
	}
	t.Logf("group commit: %d appends amortized over %d fdatasyncs", st.Appends, st.Syncs)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	n := 0
	l2, err := wal.Open(path, func(p []byte) error { n++; return nil })
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if n != writers*per {
		t.Fatalf("recovered %d records, want %d", n, writers*per)
	}
}

// With coalescing off (the benchmark baseline) every append pays its
// own fdatasync.
func TestPerAppendSyncBaseline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := wal.Open(path, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	l.SetCoalesce(false)
	for i := 0; i < 10; i++ {
		if err := l.Append([]byte("r")); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if st := l.Stats(); st.Syncs < 10 {
		t.Fatalf("baseline coalesced: %d syncs for %d appends", st.Syncs, st.Appends)
	}
}

// After a sync error the log is permanently failed: the append that hit
// it is not acked, later appends refuse with ErrFailed, and no fsync is
// ever retried. Restart-and-replay recovers the synced prefix.
func TestStickySyncFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	fsys := iofault.New()
	_, l := collectAt(t, fsys, path)
	if err := l.Append([]byte("durable")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	syncsBefore := l.Stats().Syncs
	fsys.FailSyncFrom(int(fsys.Counts().Syncs) + 1)
	if err := l.Append([]byte("lost")); !errors.Is(err, wal.ErrFailed) {
		t.Fatalf("Append during sick disk = %v, want ErrFailed", err)
	}
	// Disk "recovers" — the log must NOT retry fsync or accept writes.
	fsys.FailSyncFrom(0)
	if err := l.Append([]byte("refused")); !errors.Is(err, wal.ErrFailed) {
		t.Fatalf("Append after failure = %v, want ErrFailed", err)
	}
	if err := l.Failed(); !errors.Is(err, wal.ErrFailed) {
		t.Fatalf("Failed() = %v", err)
	}
	st := l.Stats()
	if st.Syncs != syncsBefore+1 {
		t.Fatalf("fsync retried after failure: %d syncs, want %d", st.Syncs, syncsBefore+1)
	}
	if st.SyncFailures != 1 || !st.Failed {
		t.Fatalf("stats = %+v", st)
	}
	l.Close()

	// Restart: only the record covered by a successful sync survives.
	got, l2 := collectAt(t, wal.OS, path)
	defer l2.Close()
	if len(got) != 1 || got[0] != "durable" {
		t.Fatalf("recovered %q, want [durable]", got)
	}
}

// Append after Close returns the typed ErrClosed, not a panic.
func TestAppendAfterClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := wal.Open(path, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := l.Append([]byte("x")); !errors.Is(err, wal.ErrClosed) {
		t.Fatalf("Append after close = %v, want ErrClosed", err)
	}
	if err := l.Truncate(); !errors.Is(err, wal.ErrClosed) {
		t.Fatalf("Truncate after close = %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

// A directory that disappears mid-recovery surfaces an error from Open
// instead of silently recovering an empty log.
func TestOpenVanishMidRecovery(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	l, err := wal.Open(path, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 5; i++ {
		if err := l.Append(bytes.Repeat([]byte{byte(i)}, 100)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	l.Close()

	fsys := iofault.New()
	fsys.VanishAtRead(2)
	if _, err := wal.OpenAt(fsys, path, nil); !errors.Is(err, iofault.ErrVanished) {
		t.Fatalf("OpenAt = %v, want ErrVanished", err)
	}
}

// Snapshot Sync or Rename failures must leave the previous snapshot
// intact and readable.
func TestSnapshotFaultLeavesOldIntact(t *testing.T) {
	for _, tc := range []struct {
		name   string
		inject func(f *iofault.FS)
	}{
		{"sync", func(f *iofault.FS) { f.FailSyncFrom(1) }},
		{"rename", func(f *iofault.FS) { f.FailRenameAt(1) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "base.snap")
			dump := func(body string) func(w io.Writer) error {
				return func(w io.Writer) error { _, err := io.WriteString(w, body); return err }
			}
			if err := wal.WriteSnapshot(path, 7, dump("old-state")); err != nil {
				t.Fatalf("seed snapshot: %v", err)
			}
			fsys := iofault.New()
			tc.inject(fsys)
			if err := wal.WriteSnapshotAt(fsys, path, 8, dump("new-state")); err == nil {
				t.Fatalf("WriteSnapshotAt succeeded despite %s fault", tc.name)
			}
			seq, body, err := wal.OpenSnapshot(path)
			if err != nil {
				t.Fatalf("old snapshot unreadable: %v", err)
			}
			defer body.Close()
			b, _ := io.ReadAll(body)
			if seq != 7 || string(b) != "old-state" {
				t.Fatalf("old snapshot corrupted: seq=%d body=%q", seq, b)
			}
			if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
				t.Fatalf("tmp file left behind: %v", err)
			}
		})
	}
}

// Crash-loop drill at the wal level: crash at every write index a run
// of appends produces, reopen, and require the recovered log to be a
// clean prefix of the appended records — with everything acked before
// the crash present. Reopened logs keep appending the missing suffix so
// every iteration also proves the post-recovery log is writable.
func TestCrashLoopRecoversPrefix(t *testing.T) {
	const total = 12
	rng := rand.New(rand.NewSource(9))
	payload := func(i int) []byte {
		b := make([]byte, 20+rng.Intn(50))
		for j := range b {
			b[j] = byte(i)
		}
		return b
	}
	// Pre-generate deterministic payloads shared by all crash points.
	var payloads [][]byte
	for i := 0; i < total; i++ {
		payloads = append(payloads, payload(i))
	}

	for crashAt := 1; crashAt <= total+2; crashAt++ {
		dir := t.TempDir()
		path := filepath.Join(dir, "wal.log")
		fsys := iofault.New()
		fsys.CrashAtWrite(crashAt)
		acked := 0
		l, err := wal.OpenAt(fsys, path, nil)
		if err != nil {
			// The crash landed on the header write during open — no
			// record was ever acked, recovery from the empty/torn file
			// must still work.
			if !errors.Is(err, iofault.ErrCrashed) && !errors.Is(err, wal.ErrFailed) {
				t.Fatalf("crashAt=%d: open: %v", crashAt, err)
			}
		} else {
			for i := 0; i < total; i++ {
				if err := l.Append(payloads[i]); err != nil {
					break
				}
				acked++
			}
			l.Close()
		}

		// "Restart": reopen through the real filesystem.
		var got [][]byte
		l2, err := wal.Open(path, func(p []byte) error {
			got = append(got, append([]byte(nil), p...))
			return nil
		})
		if err != nil {
			t.Fatalf("crashAt=%d: reopen: %v", crashAt, err)
		}
		if len(got) < acked {
			t.Fatalf("crashAt=%d: acked %d but recovered %d — ack before covering fsync", crashAt, acked, len(got))
		}
		for i, p := range got {
			if !bytes.Equal(p, payloads[i]) {
				t.Fatalf("crashAt=%d: record %d corrupted", crashAt, i)
			}
		}
		// Recovered log is live: append the missing suffix and confirm.
		for i := len(got); i < total; i++ {
			if err := l2.Append(payloads[i]); err != nil {
				t.Fatalf("crashAt=%d: post-recovery append: %v", crashAt, err)
			}
		}
		l2.Close()
		n := 0
		l3, err := wal.Open(path, func(p []byte) error {
			if !bytes.Equal(p, payloads[n]) {
				t.Fatalf("crashAt=%d: final record %d corrupted", crashAt, n)
			}
			n++
			return nil
		})
		if err != nil {
			t.Fatalf("crashAt=%d: final reopen: %v", crashAt, err)
		}
		l3.Close()
		if n != total {
			t.Fatalf("crashAt=%d: final log has %d records, want %d", crashAt, n, total)
		}
	}
}

// Compaction racing an in-flight group commit: a SyncTo whose records
// were folded into the snapshot (generation moved) must report success,
// because the snapshot fsync covers them.
func TestSyncToAcrossTruncate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := wal.Open(path, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	end, gen, err := l.Write([]byte("folded"))
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := l.Truncate(); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	if err := l.SyncTo(end, gen); err != nil {
		t.Fatalf("SyncTo after truncate = %v, want nil (snapshot covers it)", err)
	}
	if l.Records() != 0 {
		t.Fatalf("records = %d after truncate", l.Records())
	}
}
