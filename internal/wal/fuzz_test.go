package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// refScan is an independent re-implementation of the record grammar,
// the fuzz oracle for Scan: walk frames from the start, stop at the
// first incomplete or CRC-failing one.
func refScan(data []byte) (recs [][]byte, validLen int) {
	off := 0
	for off+8 <= len(data) {
		n := int(binary.BigEndian.Uint32(data[off : off+4]))
		if n > MaxRecord || off+8+n > len(data) {
			break
		}
		payload := data[off+8 : off+8+n]
		if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(data[off+4:off+8]) {
			break
		}
		recs = append(recs, payload)
		off += 8 + n
	}
	return recs, off
}

// FuzzWALRecover pins the recovery invariant on arbitrary damage: build
// a log of committed records, truncate it at a fuzz-chosen offset and
// flip a fuzz-chosen byte, and assert recovery yields exactly the
// longest valid prefix of the damaged image — which must include every
// leading record whose bytes survived intact — with the file truncated
// to a clean boundary that accepts further appends.
func FuzzWALRecover(f *testing.F) {
	f.Add([]byte("abc"), []byte("defghij"), []byte(""), uint16(20), uint16(0xFFFF))
	f.Add([]byte("one record"), []byte("two"), []byte("three33"), uint16(9), uint16(12))
	f.Add([]byte(""), []byte(""), []byte(""), uint16(0xFFFF), uint16(8))
	f.Add([]byte("x"), []byte("yy"), []byte("zzz"), uint16(11), uint16(0xFFFF))
	f.Fuzz(func(t *testing.T, p1, p2, p3 []byte, cut16, flip16 uint16) {
		payloads := [][]byte{p1, p2, p3}
		image := append([]byte(nil), magic...)
		var boundaries []int
		for _, p := range payloads {
			image = AppendRecord(image, p)
			boundaries = append(boundaries, len(image))
		}

		// Damage: truncate to cut (clamped into [0, len]), then flip one
		// byte at flip if it is still inside the file.
		cut := int(cut16) % (len(image) + 1)
		mutated := append([]byte(nil), image[:cut]...)
		flip := int(flip16)
		flipped := flip < len(mutated)
		if flipped {
			mutated[flip] ^= 0x40
		}

		headerOK := len(mutated) >= headerLen && bytes.Equal(mutated[:headerLen], image[:headerLen])
		var wantRecs [][]byte
		wantLen := 0
		if headerOK {
			wantRecs, wantLen = refScan(mutated[headerLen:])
		}
		// Lower bound: every leading record whose full frame is
		// byte-identical to the committed image must be recovered.
		intact := 0
		for _, b := range boundaries {
			if b <= len(mutated) && bytes.Equal(mutated[:b], image[:b]) {
				intact++
			} else {
				break
			}
		}
		if !headerOK {
			intact = 0
		}

		path := filepath.Join(t.TempDir(), "wal.log")
		if err := os.WriteFile(path, mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		l, recs, err := openCollect(path)
		if err != nil {
			t.Fatalf("Open on damaged log: %v", err)
		}
		defer l.Close()
		if len(recs) != len(wantRecs) {
			t.Fatalf("cut=%d flip=%d: recovered %d records, reference says %d", cut, flip, len(recs), len(wantRecs))
		}
		for i := range recs {
			if !bytes.Equal(recs[i], wantRecs[i]) {
				t.Fatalf("record %d = %q, reference %q", i, recs[i], wantRecs[i])
			}
		}
		if len(recs) < intact {
			t.Fatalf("recovered %d records but %d leading records were intact", len(recs), intact)
		}
		if !flipped && len(recs) != intact {
			// Pure truncation (the torn-write case): recovery is exactly
			// the committed records whose frames fit in the kept prefix.
			t.Fatalf("torn tail at %d: recovered %d records, want %d", cut, len(recs), intact)
		}
		if headerOK {
			if st, _ := os.Stat(path); st.Size() != int64(headerLen+wantLen) {
				t.Fatalf("file %d bytes after recovery, want %d", st.Size(), headerLen+wantLen)
			}
		}
		// The log must accept appends and recover them after the damage.
		if err := l.Append([]byte("recovered-append")); err != nil {
			t.Fatal(err)
		}
		l.Close()
		_, recs2, err := openCollect(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs2) != len(wantRecs)+1 || !bytes.Equal(recs2[len(wantRecs)], []byte("recovered-append")) {
			t.Fatalf("post-damage append not recovered: got %d records", len(recs2))
		}
	})
}
