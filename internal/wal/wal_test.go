package wal

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func logPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "wal.log")
}

// openCollect opens the log collecting every replayed record — the
// test-side stand-in for an owner's replay callback. Payloads are
// copied, since Open reuses its buffer between calls.
func openCollect(path string) (*Log, []Record, error) {
	var recs []Record
	l, err := Open(path, func(payload []byte) error {
		recs = append(recs, Record(append([]byte(nil), payload...)))
		return nil
	})
	return l, recs, err
}

func TestAppendReopenReplay(t *testing.T) {
	path := logPath(t)
	l, recs, err := openCollect(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh log recovered %d records", len(recs))
	}
	payloads := [][]byte{[]byte("alpha"), {}, []byte("gamma-gamma")}
	for _, p := range payloads {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if l.Records() != len(payloads) {
		t.Fatalf("Records() = %d, want %d", l.Records(), len(payloads))
	}
	l.Close()

	l2, recs, err := openCollect(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(recs) != len(payloads) {
		t.Fatalf("recovered %d records, want %d", len(recs), len(payloads))
	}
	for i, p := range payloads {
		if !bytes.Equal(recs[i], p) {
			t.Fatalf("record %d = %q, want %q", i, recs[i], p)
		}
	}
	// Appends after recovery extend the clean log.
	if err := l2.Append([]byte("delta")); err != nil {
		t.Fatal(err)
	}
	if l2.Records() != len(payloads)+1 {
		t.Fatalf("Records() = %d after post-recovery append", l2.Records())
	}
}

// TestTornTailRecovery crashes the log mid-record at every byte of the
// final frame and checks recovery keeps exactly the intact prefix.
func TestTornTailRecovery(t *testing.T) {
	payloads := [][]byte{[]byte("one"), []byte("two-two"), []byte("three-three-three")}
	image := append([]byte(nil), magic...)
	var boundaries []int // record-boundary offsets, ascending
	for _, p := range payloads {
		image = AppendRecord(image, p)
		boundaries = append(boundaries, len(image))
	}
	for cut := headerLen; cut <= len(image); cut++ {
		path := logPath(t)
		if err := os.WriteFile(path, image[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l, recs, err := openCollect(path)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		want := 0
		for _, b := range boundaries {
			if cut >= b {
				want++
			}
		}
		if len(recs) != want {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(recs), want)
		}
		// The file must have been truncated to the last intact boundary.
		st, _ := os.Stat(path)
		wantSize := int64(headerLen)
		if want > 0 {
			wantSize = int64(boundaries[want-1])
		}
		if st.Size() != wantSize {
			t.Fatalf("cut %d: file %d bytes after recovery, want %d", cut, st.Size(), wantSize)
		}
		l.Close()
	}
}

func TestBadHeaderRecoversEmpty(t *testing.T) {
	path := logPath(t)
	if err := os.WriteFile(path, []byte("GARBAGE!not-a-wal"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, recs, err := openCollect(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if len(recs) != 0 {
		t.Fatalf("recovered %d records from garbage", len(recs))
	}
	if err := l.Append([]byte("fresh")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	_, recs, err = openCollect(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || string(recs[0]) != "fresh" {
		t.Fatalf("recovered %v after reset", recs)
	}
}

func TestTruncateAfterCompaction(t *testing.T) {
	path := logPath(t)
	l, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 4; i++ {
		if err := l.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Truncate(); err != nil {
		t.Fatal(err)
	}
	if l.Records() != 0 || l.Size() != headerLen {
		t.Fatalf("after Truncate: %d records, %d bytes", l.Records(), l.Size())
	}
	if err := l.Append([]byte("post")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	_, recs, err := openCollect(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || string(recs[0]) != "post" {
		t.Fatalf("recovered %v after truncate+append", recs)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "base.snap")
	body := []byte("store-dump-bytes")
	err := WriteSnapshot(path, 42, func(w io.Writer) error { _, e := w.Write(body); return e })
	if err != nil {
		t.Fatal(err)
	}
	seq, rc, err := OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if seq != 42 {
		t.Fatalf("snapshot lastSeq = %d, want 42", seq)
	}
	got := make([]byte, len(body))
	if _, err := rc.Read(got); err != nil || !bytes.Equal(got, body) {
		t.Fatalf("snapshot body = %q (%v), want %q", got, err, body)
	}
}
