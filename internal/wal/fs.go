package wal

import (
	"io"
	"io/fs"
	"os"
)

// FS is the filesystem seam the log and snapshot code write through.
// The default (OS) is a thin passthrough to the os package; tests swap
// in internal/iofault's implementation to inject fsync errors, torn
// writes, ENOSPC, and crash points deterministically.
type FS interface {
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	MkdirAll(dir string, perm fs.FileMode) error
	Rename(oldpath, newpath string) error
	Remove(name string) error
}

// File is the subset of *os.File the log and snapshot code use.
type File interface {
	io.Reader
	io.Writer
	io.WriterAt
	Seek(offset int64, whence int) (int64, error)
	Truncate(size int64) error
	Sync() error
	Close() error
}

// OS is the real filesystem — the FS every production path uses.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) MkdirAll(dir string, perm fs.FileMode) error { return os.MkdirAll(dir, perm) }
func (osFS) Rename(oldpath, newpath string) error        { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                    { return os.Remove(name) }
