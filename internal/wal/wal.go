// Package wal implements the per-tenant write-ahead log behind writable
// shares: every mutation batch is appended as one CRC-framed record and
// fsynced before it is acknowledged, so a crash at any byte loses at
// most the batches that were never acknowledged.
//
// # Record format
//
// A log file is an 8-byte magic header followed by records:
//
//	[4B big-endian payload length][4B big-endian CRC-32 (IEEE) of payload][payload]
//
// The payload is opaque to this package (the filter layer stores an
// encoded mutation batch). Length zero is valid (an empty payload).
//
// # Recovery invariant
//
// Open scans the file from the start and keeps exactly the longest
// prefix of intact records: a record is intact when its full frame is
// present, its length field is sane, and its CRC matches. The first
// violation — a torn tail, a flipped bit, a truncated frame — ends the
// scan, and Open truncates the file to the end of the last intact
// record so subsequent appends extend a clean log. The scan streams:
// records are read frame by frame and handed to the caller's replay
// callback one at a time, so recovering a long-lived log costs one
// record of memory, not the whole write history. Scan implements the
// same grammar over an in-memory byte string, exported so the
// torn-write fuzz harness can exercise it on arbitrary inputs.
//
// Replicas that append the same batches in the same order produce
// byte-identical log files — the property the cluster layer's replay
// rule and the CI mutation-smoke byte-diff rely on.
//
// # Group commit
//
// Append is Write + SyncTo. Write frames the record and hands it to the
// file under the log's write mutex; SyncTo makes it durable, coalescing
// concurrent callers: the first waiter becomes the commit leader and
// issues one fdatasync that covers every record written so far, and the
// waiters behind it observe their record already synced and return
// without touching the disk. A record is covered — and its batch may be
// acknowledged — only once SyncTo returns nil. Compaction interacts via
// a truncation generation: SyncTo for a record the snapshot already
// folded (the generation moved) returns nil without syncing, because
// the snapshot was fsynced before the log was truncated.
//
// # Sticky failure
//
// Any write, sync, or truncate error moves the log into a permanent
// failed state: every subsequent operation returns an error wrapping
// ErrFailed and nothing is ever retried against the file. This is
// deliberate — after a failed fsync the kernel may have dropped the
// dirty pages, so a later fsync returning nil proves nothing about the
// data, and a write after a failed write could leave a hole below
// records that would then be acknowledged and lost. Recovery is
// restart-and-replay: reopen the log and serve the valid prefix.
package wal

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// magic marks a wal file; a file shorter than the header or with a
// different magic recovers as an empty log.
var magic = []byte("ENCWAL01")

// MaxRecord bounds one record's payload; a length field beyond it is
// treated as corruption, ending recovery at the previous record.
const MaxRecord = 64 << 20

const headerLen = 8
const frameLen = 8 // length + crc

// ErrFailed marks a log in the permanent failed state: a write or sync
// error occurred and the file's durable contents can no longer be
// trusted past the last successful sync. Match with errors.Is.
var ErrFailed = errors.New("wal: log failed")

// ErrClosed reports an operation on a closed log.
var ErrClosed = errors.New("wal: log closed")

// Record is one recovered payload.
type Record []byte

// Scan walks data (the bytes of a log file after the magic header) and
// returns the records of its longest valid prefix plus the byte length
// of that prefix. It never fails: corruption just ends the prefix.
func Scan(data []byte) (recs []Record, validLen int) {
	off := 0
	for {
		if off+frameLen > len(data) {
			return recs, off
		}
		n := int(binary.BigEndian.Uint32(data[off:]))
		sum := binary.BigEndian.Uint32(data[off+4:])
		if n > MaxRecord || off+frameLen+n > len(data) {
			return recs, off
		}
		payload := data[off+frameLen : off+frameLen+n]
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, off
		}
		recs = append(recs, Record(append([]byte(nil), payload...)))
		off += frameLen + n
	}
}

// AppendRecord appends one framed record to buf and returns it — the
// exact bytes Append writes, exposed for tests that build log images.
func AppendRecord(buf, payload []byte) []byte {
	var hdr [frameLen]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	return append(append(buf, hdr[:]...), payload...)
}

// Stats is a point-in-time copy of a log's work counters. Appends vs
// Syncs is the group-commit amortization: with coalescing, concurrent
// appends share fdatasyncs and Appends/Syncs exceeds 1.
type Stats struct {
	Appends      uint64 // records written
	Syncs        uint64 // fdatasyncs issued by SyncTo
	SyncFailures uint64 // fdatasyncs that returned an error
	Failed       bool   // the log is in the sticky failed state
}

// Log is an open write-ahead log file. Safe for concurrent use: writers
// serialize under an internal mutex and concurrent SyncTo calls coalesce
// under a commit leader (see the package comment).
type Log struct {
	fsys FS
	path string

	mu     sync.Mutex // guards f, size, recs, synced, gen, err, closed
	f      File
	size   int64 // current file length, always at a record boundary
	recs   int   // records in the log (recovered + appended)
	synced int64 // file length covered by the last successful sync
	gen    uint64
	err    error // sticky failure, wraps ErrFailed
	closed bool

	// syncMu elects the commit leader: one fdatasync in flight at a
	// time, writers keep appending under mu while it runs.
	syncMu sync.Mutex

	stats struct {
		appends, syncs, syncFailures atomic.Uint64
	}
	coalesceOff atomic.Bool // true = fsync every SyncTo (per-append baseline)
	syncObs     atomic.Pointer[func(time.Duration)]
}

// Open opens (creating if necessary) the log at path on the real
// filesystem, recovering to the longest valid prefix of records.
func Open(path string, replay func(payload []byte) error) (*Log, error) {
	return OpenAt(OS, path, replay)
}

// OpenAt is Open through an explicit filesystem. Recovery streams: each
// intact record's payload is handed to replay in log order as it is
// validated, then the file is truncated to the prefix and positioned
// for appending. The payload slice is reused between calls — replay
// must copy anything it keeps (decoding into an owned value counts). A
// nil replay just validates and counts. A replay error aborts the open:
// the owner's recovery failed, not the log's.
func OpenAt(fsys FS, path string, replay func(payload []byte) error) (*Log, error) {
	if err := fsys.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("wal: mkdir: %w", err)
	}
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	l := &Log{fsys: fsys, f: f, path: path}
	br := bufio.NewReaderSize(f, 1<<16)
	hdr := make([]byte, headerLen)
	if _, herr := io.ReadFull(br, hdr); herr != nil || !bytes.Equal(hdr, magic) {
		// A read error here may be transient-looking but the file is
		// unreadable — distinguish a short/fresh file (start clean) from
		// an I/O failure (surface it).
		if herr != nil && !errors.Is(herr, io.EOF) && !errors.Is(herr, io.ErrUnexpectedEOF) {
			f.Close()
			return nil, fmt.Errorf("wal: read header %s: %w", path, herr)
		}
		// Fresh file, or a header torn by a crash during creation (no
		// record can have been acknowledged yet): start clean.
		if err := l.reset(); err != nil {
			f.Close()
			return nil, err
		}
		return l, nil
	}
	l.size = headerLen
	var (
		frame   [frameLen]byte
		payload []byte
	)
	for {
		if _, err := io.ReadFull(br, frame[:]); err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				f.Close()
				return nil, fmt.Errorf("wal: read %s: %w", path, err)
			}
			break
		}
		n := int(binary.BigEndian.Uint32(frame[0:]))
		sum := binary.BigEndian.Uint32(frame[4:])
		if n > MaxRecord {
			break
		}
		if cap(payload) < n {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(br, payload); err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				f.Close()
				return nil, fmt.Errorf("wal: read %s: %w", path, err)
			}
			break
		}
		if crc32.ChecksumIEEE(payload) != sum {
			break
		}
		if replay != nil {
			if err := replay(payload); err != nil {
				f.Close()
				return nil, err
			}
		}
		l.size += int64(frameLen + n)
		l.recs++
	}
	if err := f.Truncate(l.size); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: truncate %s: %w", path, err)
	}
	if _, err := f.Seek(l.size, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: seek %s: %w", path, err)
	}
	l.synced = l.size
	return l, nil
}

// SetCoalesce turns sync coalescing off (false) or back on (true, the
// default). With coalescing off every SyncTo issues its own fdatasync —
// the per-append-fsync baseline the group-commit experiment compares
// against.
func (l *Log) SetCoalesce(on bool) { l.coalesceOff.Store(!on) }

// SetSyncObserver installs a callback invoked with the duration of
// every fdatasync SyncTo issues (successful or not) — the runtime wires
// it to the encshare_wal_fsync_seconds histogram.
func (l *Log) SetSyncObserver(fn func(time.Duration)) {
	if fn == nil {
		l.syncObs.Store(nil)
		return
	}
	l.syncObs.Store(&fn)
}

// fail moves the log into the sticky failed state (first cause wins).
// Caller holds l.mu.
func (l *Log) fail(cause error) error {
	if l.err == nil {
		l.err = fmt.Errorf("%w (%s): %v", ErrFailed, l.path, cause)
	}
	return l.err
}

// Failed returns the sticky failure, or nil while the log is healthy.
func (l *Log) Failed() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Stats returns a snapshot of the log's work counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	failed := l.err != nil
	l.mu.Unlock()
	return Stats{
		Appends:      l.stats.appends.Load(),
		Syncs:        l.stats.syncs.Load(),
		SyncFailures: l.stats.syncFailures.Load(),
		Failed:       failed,
	}
}

// reset truncates the log to an empty (header-only) file and syncs it.
// Caller holds l.mu (or owns the log exclusively, as Open does).
func (l *Log) reset() error {
	if err := l.f.Truncate(0); err != nil {
		return l.fail(fmt.Errorf("truncate: %v", err))
	}
	if _, err := l.f.WriteAt(magic, 0); err != nil {
		return l.fail(fmt.Errorf("write header: %v", err))
	}
	if err := l.f.Sync(); err != nil {
		return l.fail(fmt.Errorf("sync header: %v", err))
	}
	if _, err := l.f.Seek(headerLen, 0); err != nil {
		return l.fail(fmt.Errorf("seek: %v", err))
	}
	l.size = headerLen
	l.synced = headerLen
	l.recs = 0
	l.gen++
	return nil
}

// Write frames payload and hands it to the file, returning the byte
// offset its frame ends at and the current truncation generation — the
// pair SyncTo needs to make it durable. Writes serialize under the
// log's mutex, and ANY write error (a short write included) is sticky:
// allowing later writes past a hole would let a record above it be
// synced, acknowledged, and then lost to the recovery scan.
func (l *Log) Write(payload []byte) (end int64, gen uint64, err error) {
	if len(payload) > MaxRecord {
		return 0, 0, fmt.Errorf("wal: record of %d bytes exceeds MaxRecord", len(payload))
	}
	frame := AppendRecord(make([]byte, 0, frameLen+len(payload)), payload)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, 0, fmt.Errorf("%w: append %s", ErrClosed, l.path)
	}
	if l.err != nil {
		return 0, 0, l.err
	}
	if _, werr := l.f.WriteAt(frame, l.size); werr != nil {
		return 0, 0, l.fail(fmt.Errorf("append: %v", werr))
	}
	l.size += int64(len(frame))
	l.recs++
	l.stats.appends.Add(1)
	return l.size, l.gen, nil
}

// SyncTo blocks until the record ending at end (written under gen) is
// durable, then returns nil. Concurrent callers coalesce: the first in
// becomes the commit leader and fdatasyncs once for everything written
// so far; the rest observe their offset already covered. A gen mismatch
// means compaction folded the record into the (already-fsynced) base
// snapshot, which covers it. A sync error is sticky — the caller must
// NOT acknowledge its record.
func (l *Log) SyncTo(end int64, gen uint64) error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return fmt.Errorf("%w: sync %s", ErrClosed, l.path)
	}
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return err
	}
	if l.gen != gen || (!l.coalesceOff.Load() && l.synced >= end) {
		l.mu.Unlock()
		return nil
	}
	covered := l.size
	f := l.f
	l.mu.Unlock()

	start := time.Now()
	serr := f.Sync()
	if obs := l.syncObs.Load(); obs != nil {
		(*obs)(time.Since(start))
	}
	l.stats.syncs.Add(1)

	l.mu.Lock()
	defer l.mu.Unlock()
	if serr != nil {
		l.stats.syncFailures.Add(1)
		return l.fail(fmt.Errorf("sync: %v", serr))
	}
	if l.gen == gen && covered > l.synced {
		l.synced = covered
	}
	return nil
}

// Append frames payload, writes it, and makes it durable before
// returning: once Append returns nil the record survives any crash.
// Concurrent Appends coalesce their fdatasyncs (group commit).
func (l *Log) Append(payload []byte) error {
	end, gen, err := l.Write(payload)
	if err != nil {
		return err
	}
	return l.SyncTo(end, gen)
}

// Truncate discards every record (after a successful compaction folded
// them into the base snapshot) and leaves an empty log. It serializes
// against any in-flight sync; waiters from before the truncation
// observe the generation moved and report their records durable — the
// snapshot fsync that preceded this call covers them.
func (l *Log) Truncate() error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("%w: truncate %s", ErrClosed, l.path)
	}
	if l.err != nil {
		return l.err
	}
	return l.reset()
}

// Size returns the current file length in bytes (header included).
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Records returns how many records the log currently holds.
func (l *Log) Records() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.recs
}

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// Close closes the underlying file. Always permitted, even on a failed
// log; subsequent operations return ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	return l.f.Close()
}
