// Package wal implements the per-tenant write-ahead log behind writable
// shares: every mutation batch is appended as one CRC-framed record and
// fsynced before it is applied to the in-memory node table, so a crash
// at any byte loses at most the batches that were never acknowledged.
//
// # Record format
//
// A log file is an 8-byte magic header followed by records:
//
//	[4B big-endian payload length][4B big-endian CRC-32 (IEEE) of payload][payload]
//
// The payload is opaque to this package (the filter layer stores an
// encoded mutation batch). Length zero is valid (an empty payload).
//
// # Recovery invariant
//
// Open scans the file from the start and keeps exactly the longest
// prefix of intact records: a record is intact when its full frame is
// present, its length field is sane, and its CRC matches. The first
// violation — a torn tail, a flipped bit, a truncated frame — ends the
// scan, and Open truncates the file to the end of the last intact
// record so subsequent appends extend a clean log. The scan streams:
// records are read frame by frame and handed to the caller's replay
// callback one at a time, so recovering a long-lived log costs one
// record of memory, not the whole write history. Scan implements the
// same grammar over an in-memory byte string, exported so the
// torn-write fuzz harness can exercise it on arbitrary inputs.
//
// Replicas that append the same batches in the same order produce
// byte-identical log files — the property the cluster layer's replay
// rule and the CI mutation-smoke byte-diff rely on.
package wal

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// magic marks a wal file; a file shorter than the header or with a
// different magic recovers as an empty log.
var magic = []byte("ENCWAL01")

// MaxRecord bounds one record's payload; a length field beyond it is
// treated as corruption, ending recovery at the previous record.
const MaxRecord = 64 << 20

const headerLen = 8
const frameLen = 8 // length + crc

// Record is one recovered payload.
type Record []byte

// Scan walks data (the bytes of a log file after the magic header) and
// returns the records of its longest valid prefix plus the byte length
// of that prefix. It never fails: corruption just ends the prefix.
func Scan(data []byte) (recs []Record, validLen int) {
	off := 0
	for {
		if off+frameLen > len(data) {
			return recs, off
		}
		n := int(binary.BigEndian.Uint32(data[off:]))
		sum := binary.BigEndian.Uint32(data[off+4:])
		if n > MaxRecord || off+frameLen+n > len(data) {
			return recs, off
		}
		payload := data[off+frameLen : off+frameLen+n]
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, off
		}
		recs = append(recs, Record(append([]byte(nil), payload...)))
		off += frameLen + n
	}
}

// AppendRecord appends one framed record to buf and returns it — the
// exact bytes Append writes, exposed for tests that build log images.
func AppendRecord(buf, payload []byte) []byte {
	var hdr [frameLen]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	return append(append(buf, hdr[:]...), payload...)
}

// Log is an open write-ahead log file. Not safe for concurrent use; the
// owner (one writer per tenant) serializes access.
type Log struct {
	f    *os.File
	path string
	size int64 // current file length, always at a record boundary
	recs int   // records in the log (recovered + appended)
}

// Open opens (creating if necessary) the log at path, recovering to the
// longest valid prefix of records. Recovery streams: each intact
// record's payload is handed to replay in log order as it is validated,
// then the file is truncated to the prefix and positioned for
// appending. The payload slice is reused between calls — replay must
// copy anything it keeps (decoding into an owned value counts). A nil
// replay just validates and counts. A replay error aborts the open: the
// owner's recovery failed, not the log's.
func Open(path string, replay func(payload []byte) error) (*Log, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("wal: mkdir: %w", err)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	l := &Log{f: f, path: path}
	br := bufio.NewReaderSize(f, 1<<16)
	hdr := make([]byte, headerLen)
	if _, herr := io.ReadFull(br, hdr); herr != nil || !bytes.Equal(hdr, magic) {
		// Fresh file, or a header torn by a crash during creation (no
		// record can have been acknowledged yet): start clean.
		if err := l.reset(); err != nil {
			f.Close()
			return nil, err
		}
		return l, nil
	}
	l.size = headerLen
	var (
		frame   [frameLen]byte
		payload []byte
	)
	for {
		if _, err := io.ReadFull(br, frame[:]); err != nil {
			break
		}
		n := int(binary.BigEndian.Uint32(frame[0:]))
		sum := binary.BigEndian.Uint32(frame[4:])
		if n > MaxRecord {
			break
		}
		if cap(payload) < n {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(br, payload); err != nil {
			break
		}
		if crc32.ChecksumIEEE(payload) != sum {
			break
		}
		if replay != nil {
			if err := replay(payload); err != nil {
				f.Close()
				return nil, err
			}
		}
		l.size += int64(frameLen + n)
		l.recs++
	}
	if err := f.Truncate(l.size); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: truncate %s: %w", path, err)
	}
	if _, err := f.Seek(l.size, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: seek %s: %w", path, err)
	}
	return l, nil
}

// reset truncates the log to an empty (header-only) file and syncs it.
func (l *Log) reset() error {
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: truncate %s: %w", l.path, err)
	}
	if _, err := l.f.WriteAt(magic, 0); err != nil {
		return fmt.Errorf("wal: write header %s: %w", l.path, err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync %s: %w", l.path, err)
	}
	if _, err := l.f.Seek(headerLen, 0); err != nil {
		return fmt.Errorf("wal: seek %s: %w", l.path, err)
	}
	l.size = headerLen
	l.recs = 0
	return nil
}

// Append frames payload, writes it, and fsyncs before returning: once
// Append returns nil the record survives any crash.
func (l *Log) Append(payload []byte) error {
	if len(payload) > MaxRecord {
		return fmt.Errorf("wal: record of %d bytes exceeds MaxRecord", len(payload))
	}
	frame := AppendRecord(make([]byte, 0, frameLen+len(payload)), payload)
	if _, err := l.f.WriteAt(frame, l.size); err != nil {
		return fmt.Errorf("wal: append %s: %w", l.path, err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync %s: %w", l.path, err)
	}
	l.size += int64(len(frame))
	l.recs++
	return nil
}

// Truncate discards every record (after a successful compaction folded
// them into the base snapshot) and leaves an empty log.
func (l *Log) Truncate() error { return l.reset() }

// Size returns the current file length in bytes (header included).
func (l *Log) Size() int64 { return l.size }

// Records returns how many records the log currently holds.
func (l *Log) Records() int { return l.recs }

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// Close closes the underlying file.
func (l *Log) Close() error { return l.f.Close() }
