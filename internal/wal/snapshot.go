package wal

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// snapMagic marks a base snapshot: the compacted store image the log's
// records have been folded into.
var snapMagic = []byte("ENCSNAP1")

// WriteSnapshot atomically writes a base snapshot at path on the real
// filesystem. See WriteSnapshotAt.
func WriteSnapshot(path string, lastSeq uint64, dump func(w io.Writer) error) error {
	return WriteSnapshotAt(OS, path, lastSeq, dump)
}

// WriteSnapshotAt atomically writes a base snapshot at path: the magic,
// the sequence number of the last batch folded in, then the body
// produced by dump (a store dump). The write goes to path+".tmp",
// fsyncs, and renames over path, so a crash — or an injected fault — at
// any point leaves either the old snapshot or the new one, never a torn
// file.
func WriteSnapshotAt(fsys FS, path string, lastSeq uint64, dump func(w io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	var hdr [8]byte
	binary.BigEndian.PutUint64(hdr[:], lastSeq)
	if _, err := f.Write(snapMagic); err == nil {
		_, err = f.Write(hdr[:])
		if err == nil {
			err = dump(f)
		}
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("wal: snapshot %s: %w", path, err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("wal: snapshot rename: %w", err)
	}
	return nil
}

// OpenSnapshot opens the snapshot at path on the real filesystem. See
// OpenSnapshotAt.
func OpenSnapshot(path string) (lastSeq uint64, body io.ReadCloser, err error) {
	return OpenSnapshotAt(OS, path)
}

// OpenSnapshotAt opens the snapshot at path and returns the folded
// sequence number plus a reader over the store dump body. A missing
// file returns an error satisfying errors.Is(err, os.ErrNotExist)
// (attach falls back to the seed file).
func OpenSnapshotAt(fsys FS, path string) (lastSeq uint64, body io.ReadCloser, err error) {
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return 0, nil, err
	}
	hdr := make([]byte, len(snapMagic)+8)
	if _, err := io.ReadFull(f, hdr); err != nil {
		f.Close()
		return 0, nil, fmt.Errorf("wal: snapshot %s: short header: %w", path, err)
	}
	if string(hdr[:len(snapMagic)]) != string(snapMagic) {
		f.Close()
		return 0, nil, fmt.Errorf("wal: snapshot %s: bad magic", path)
	}
	return binary.BigEndian.Uint64(hdr[len(snapMagic):]), f, nil
}
