//go:build !race

package ring

const raceEnabled = false
