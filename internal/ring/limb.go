// Allocation-free radix-q polynomial codec.
//
// The storage format is unchanged from the big.Int implementation it
// replaces (retained below as BytesBig/FromBytesBig, the property-test
// oracle): a polynomial packs as the base-q integer Σ c_i·q^i written
// big-endian into exactly PolyBytes() bytes. The rewrite changes only
// how that integer is computed:
//
//   - the multiprecision value lives in a fixed-width little-endian
//     uint64 limb vector sized at ring construction, drawn from a
//     sync.Pool — no big.Int, no per-call heap allocation;
//   - digits move in CHUNKS: the largest k with q^k ≤ 2^63 digits are
//     folded into one uint64 first, so each multiprecision multiply-add
//     (encode) or divmod (decode) moves k digits instead of one. For the
//     paper's F_83 this turns 82 limb-vector divisions into 9.
//
// Pooling invariant: limb scratch never escapes a single Append/Decode
// call. Pooled Polys (GetPoly/PutPoly) are different — see ring.go.
package ring

import (
	"fmt"
	"math/big"
	"math/bits"

	"encshare/internal/gf"
)

// limbScratch is a pooled limb vector. The pointer wrapper keeps
// Get/Put round-trips allocation-free.
type limbScratch struct{ a []uint64 }

func (r *Ring) getLimbs() *limbScratch {
	if v := r.limbPool.Get(); v != nil {
		ls := v.(*limbScratch)
		clear(ls.a)
		return ls
	}
	return &limbScratch{a: make([]uint64, r.limbs)}
}

func (r *Ring) putLimbs(ls *limbScratch) { r.limbPool.Put(ls) }

// mulAddSmall sets a = a*mul + add in place. The caller guarantees the
// result fits the limb vector (values stay < q^n, which fits PolyBytes()
// bytes by construction); a final carry indicates a caller bug.
func mulAddSmall(a []uint64, mul, add uint64) {
	carry := add
	for i := range a {
		hi, lo := bits.Mul64(a[i], mul)
		lo, c := bits.Add64(lo, carry, 0)
		a[i] = lo
		carry = hi + c // hi ≤ 2^64-2, so this cannot overflow
	}
	if carry != 0 {
		panic("ring: limb overflow (value exceeds PolyBytes width)")
	}
}

// divmodSmall sets a = a/d in place and returns a mod d. d ≤ 2^63 keeps
// bits.Div64 in range (the running remainder is always < d).
func divmodSmall(a []uint64, d uint64) uint64 {
	var rem uint64
	for i := len(a) - 1; i >= 0; i-- {
		a[i], rem = bits.Div64(rem, a[i], d)
	}
	return rem
}

// AppendBytes appends the fixed-width radix-q packing of p to dst and
// returns the extended slice. With cap(dst)-len(dst) ≥ PolyBytes() it
// performs no allocation; Bytes is the convenience wrapper that
// allocates the slice.
func (r *Ring) AppendBytes(dst []byte, p Poly) []byte {
	ls := r.getLimbs()
	a := ls.a
	q64 := uint64(r.q32)
	// Fold digits top-down so each multiply-add shifts the accumulator
	// by a whole chunk; the one partial chunk (n mod k digits) goes
	// first so all later shifts are by exactly q^k.
	i := r.n
	for i > 0 {
		g := i % r.chunk
		if g == 0 {
			g = r.chunk
		}
		var ch uint64
		for t := i - 1; t >= i-g; t-- {
			ch = ch*q64 + uint64(p[t])
		}
		mulAddSmall(a, r.qpow[g], ch)
		i -= g
	}
	start := len(dst)
	dst = append(dst, make([]byte, r.polyBytes)...)
	out := dst[start:]
	for bi := range out {
		k := r.polyBytes - 1 - bi // byte index from the LSB
		out[bi] = byte(a[k>>3] >> ((k & 7) * 8))
	}
	r.putLimbs(ls)
	return dst
}

// DecodeInto deserializes a polynomial previously produced by
// Bytes/AppendBytes into the caller-supplied dst (len == N()),
// performing no allocation. It validates exactly like FromBytes: wrong
// blob length and out-of-range values are errors, never panics — the
// blob comes from an untrusted server.
func (r *Ring) DecodeInto(dst Poly, b []byte) error {
	if len(b) != r.polyBytes {
		return fmt.Errorf("ring: polynomial blob is %d bytes, want %d", len(b), r.polyBytes)
	}
	if len(dst) != r.n {
		return fmt.Errorf("ring: decode target has %d coefficients, want %d", len(dst), r.n)
	}
	ls := r.getLimbs()
	a := ls.a
	for bi, v := range b {
		k := r.polyBytes - 1 - bi
		a[k>>3] |= uint64(v) << ((k & 7) * 8)
	}
	q64 := uint64(r.q32)
	i := 0
	for i < r.n {
		g := r.chunk
		if rest := r.n - i; g > rest {
			g = rest
		}
		ch := divmodSmall(a, r.qpow[g])
		for t := 0; t < g; t++ {
			dst[i+t] = gf.Elem(ch % q64)
			ch /= q64
		}
		i += g
	}
	for _, w := range a {
		if w != 0 {
			r.putLimbs(ls)
			return fmt.Errorf("ring: polynomial blob out of range")
		}
	}
	r.putLimbs(ls)
	return nil
}

// BytesBig is the original big.Int radix-q encoder, byte-for-byte
// identical to Bytes. Retained as the property-test oracle and the
// compute experiment's baseline.
func (r *Ring) BytesBig(p Poly) []byte {
	acc := new(big.Int)
	tmp := new(big.Int)
	for i := r.n - 1; i >= 0; i-- {
		acc.Mul(acc, r.qBig)
		tmp.SetUint64(uint64(p[i]))
		acc.Add(acc, tmp)
	}
	out := make([]byte, r.polyBytes)
	acc.FillBytes(out)
	return out
}

// FromBytesBig is the original big.Int decoder matching BytesBig,
// retained as the property-test oracle and the compute experiment's
// baseline.
func (r *Ring) FromBytesBig(b []byte) (Poly, error) {
	if len(b) != r.polyBytes {
		return nil, fmt.Errorf("ring: polynomial blob is %d bytes, want %d", len(b), r.polyBytes)
	}
	acc := new(big.Int).SetBytes(b)
	mod := new(big.Int)
	p := make(Poly, r.n)
	for i := 0; i < r.n; i++ {
		acc.DivMod(acc, r.qBig, mod)
		v := mod.Uint64()
		p[i] = gf.Elem(v)
	}
	if acc.Sign() != 0 {
		return nil, fmt.Errorf("ring: polynomial blob out of range")
	}
	return p, nil
}
