package ring

import (
	"testing"

	"encshare/internal/gf"
	"encshare/internal/prg"
)

// naiveAddScaled is the schoolbook oracle for AddScaledInPlace: a + c·b
// computed coefficient by coefficient through the field API, with no
// log-table shortcuts.
func naiveAddScaled(r *Ring, a, b Poly, c gf.Elem) Poly {
	f := r.Field()
	out := r.Clone(a)
	for i := range out {
		out[i] = f.Add(out[i], f.Mul(c, b[i]))
	}
	return out
}

func TestAddScaledInPlaceMatchesNaive(t *testing.T) {
	for _, r := range testRings(t) {
		gen := prg.New([]byte("fold")).Stream("p", uint64(r.Field().Q()))
		for trial := 0; trial < 20; trial++ {
			a, b := r.Rand(gen), r.Rand(gen)
			for c := gf.Elem(0); c < r.Field().Q(); c++ {
				want := naiveAddScaled(r, a, b, c)
				got := r.AddScaledInPlace(r.Clone(a), b, c)
				if !r.Equal(got, want) {
					t.Fatalf("%s c=%d: AddScaledInPlace diverges from naive", r.Field(), c)
				}
			}
		}
	}
}

func TestAddScaledInPlaceEdgeScalars(t *testing.T) {
	r := f83(t)
	gen := prg.New([]byte("edge")).Stream("p", 0)
	a, b := r.Rand(gen), r.Rand(gen)

	// c = 0 must leave a untouched.
	if got := r.AddScaledInPlace(r.Clone(a), b, 0); !r.Equal(got, a) {
		t.Fatal("AddScaledInPlace with c=0 changed the accumulator")
	}
	// c = 1 must match a plain add.
	if got := r.AddScaledInPlace(r.Clone(a), b, 1); !r.Equal(got, r.Add(a, b)) {
		t.Fatal("AddScaledInPlace with c=1 != Add")
	}
	// Scaling the zero polynomial is a no-op for any c.
	zero := r.NewPoly()
	for c := gf.Elem(2); c < 10; c++ {
		if got := r.AddScaledInPlace(r.Clone(a), zero, c); !r.Equal(got, a) {
			t.Fatalf("c=%d: adding scaled zero changed the accumulator", c)
		}
	}
}

func TestSumIntoMatchesSequentialAdds(t *testing.T) {
	for _, r := range testRings(t) {
		gen := prg.New([]byte("sum")).Stream("p", 0)
		ps := make([]Poly, 7)
		for i := range ps {
			ps[i] = r.Rand(gen)
		}
		want := r.NewPoly()
		for _, p := range ps {
			want = r.Add(want, p)
		}
		got := r.SumInto(r.NewPoly(), ps...)
		if !r.Equal(got, want) {
			t.Fatalf("%s: SumInto != sequential Add", r.Field())
		}
		// Empty variadic call is the identity.
		if acc := r.SumInto(r.Clone(got)); !r.Equal(acc, got) {
			t.Fatalf("%s: SumInto with no summands changed dst", r.Field())
		}
	}
}

// TestFoldLinearity pins the algebra server-side aggregation rests on:
// Σ (c_i · f_i) evaluated anywhere equals Σ c_i · f_i(v) — folding
// commutes with evaluation, which is why one blob per chunk suffices.
func TestFoldLinearity(t *testing.T) {
	for _, r := range testRings(t) {
		f := r.Field()
		gen := prg.New([]byte("lin")).Stream("p", 1)
		ps := make([]Poly, 5)
		cs := make([]gf.Elem, 5)
		for i := range ps {
			ps[i] = r.Rand(gen)
			cs[i] = 1 + gf.Elem(uint32(i*7+3)%(f.Q()-1))
		}
		acc := r.NewPoly()
		for i := range ps {
			r.AddScaledInPlace(acc, ps[i], cs[i])
		}
		for v := gf.Elem(1); v < f.Q(); v++ {
			var want gf.Elem
			for i := range ps {
				want = f.Add(want, f.Mul(cs[i], r.Eval(ps[i], v)))
			}
			if got := r.Eval(acc, v); got != want {
				t.Fatalf("%s v=%d: fold(%d polys) evaluates to %d, want %d", f, v, len(ps), got, want)
			}
		}
	}
}
