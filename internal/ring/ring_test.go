package ring

import (
	"testing"
	"testing/quick"

	"encshare/internal/gf"
	"encshare/internal/prg"
)

func f83(t testing.TB) *Ring  { return MustNew(gf.MustNew(83, 1)) }
func f5(t testing.TB) *Ring   { return MustNew(gf.MustNew(5, 1)) }
func f3_2(t testing.TB) *Ring { return MustNew(gf.MustNew(3, 2)) }

func testRings(t *testing.T) []*Ring {
	return []*Ring{f5(t), f83(t), f3_2(t), MustNew(gf.MustNew(29, 1))}
}

func TestNewRejectsTinyFields(t *testing.T) {
	if _, err := New(gf.MustNew(2, 1)); err == nil {
		t.Fatal("ring over GF(2) should be rejected")
	}
}

func TestDimensions(t *testing.T) {
	r := f83(t)
	if r.N() != 82 {
		t.Fatalf("N = %d, want 82", r.N())
	}
	// (q-1)*log2(q) bits = 82 * 6.375.. ~= 523 bits ~= 66 bytes.
	if r.PolyBytes() != 66 {
		t.Fatalf("PolyBytes = %d, want 66", r.PolyBytes())
	}
	// Paper §4 says "in case p = 29 a polynomial costs 17 bytes": that is
	// (q-1)*log2(q) = 28*4.857 = 136.02 bits rounded *down*. Exact packing
	// needs ceil(136.02/8) = 18 bytes; we assert the exact figure and
	// record the paper's rounding as an erratum in EXPERIMENTS.md.
	r29 := MustNew(gf.MustNew(29, 1))
	if r29.PolyBytes() != 18 {
		t.Fatalf("PolyBytes(F_29) = %d, want 18 (paper §4 says ~17)", r29.PolyBytes())
	}
}

// TestPaperFigure1 reproduces the paper's worked example: the tree of
// Fig. 1(a) with map a=2, b=1, c=3 over F_5, checking the reduced
// encodings of Fig. 1(d) coefficient-for-coefficient.
//
// The tree (recovered from the factorizations in Fig. 1(c)):
//
//	    a(2)
//	   /    \
//	b(1)    c(3)
//	 |      /  \
//	c(3)  a(2) b(1)
func TestPaperFigure1(t *testing.T) {
	r := f5(t)
	const a, b, c = 2, 1, 3

	leafC := r.Linear(c)                         // x - 3 = x + 2
	leafA := r.Linear(a)                         // x - 2 = x + 3
	leafB := r.Linear(b)                         // x - 1 = x + 4
	nodeB := r.MulLinear(leafC, b)               // (x-1)(x-3) = x^2 + x + 3
	nodeC := r.MulLinear(r.Mul(leafA, leafB), c) // (x-3)(x-2)(x-1) = x^3 + 4x^2 + x + 4
	root := r.MulLinear(r.Mul(nodeB, nodeC), a)  // (x-1)^2 (x-2)^2 (x-3)^2 reduced

	cases := []struct {
		name string
		got  Poly
		want string
	}{
		{"leaf c", leafC, "x + 2"},
		{"leaf a", leafA, "x + 3"},
		{"leaf b", leafB, "x + 4"},
		{"node b", nodeB, "x^2 + x + 3"},
		{"node c", nodeC, "x^3 + 4x^2 + x + 4"},
		// PAPER ERRATUM: Fig. 1(d) prints the root as 2x^3+3x^2+2x+3, but
		// the true reduction of (x-1)^2(x-2)^2(x-3)^2 mod (x^4 - 1) is
		// x^3+4x^2+x+4 — the same reduced polynomial as node c, since both
		// vanish on {1,2,3} and take value 1 at 4, and reduced polynomials
		// are determined by their values on F_5^*. The paper's printed
		// value equals x * (children product), i.e. a root factor (x - 0)
		// instead of (x - map(a)) = (x - 2). See EXPERIMENTS.md.
		{"root a", root, "x^3 + 4x^2 + x + 4"},
	}
	for _, tc := range cases {
		if got := r.String(tc.got); got != tc.want {
			t.Errorf("%s: got %s, want %s (paper Fig. 1(d))", tc.name, got, tc.want)
		}
	}

	// Containment semantics on the root: every tag value 1,2,3 occurs in
	// the tree, so the root polynomial vanishes at all of them; it must
	// not vanish at the unused value 4.
	for _, v := range []gf.Elem{1, 2, 3} {
		if r.Eval(root, v) != 0 {
			t.Errorf("root poly does not vanish at %d", v)
		}
	}
	if r.Eval(root, 4) == 0 {
		t.Error("root poly vanishes at 4, which is not in the tree")
	}
	// nodeB's subtree is {b, c}: vanishes at 1 and 3 only.
	if r.Eval(nodeB, 1) != 0 || r.Eval(nodeB, 3) != 0 {
		t.Error("node b poly must vanish at map(b) and map(c)")
	}
	if r.Eval(nodeB, 2) == 0 {
		t.Error("node b poly must not vanish at map(a)")
	}

	// Equality-test identity: root == (x - map(root)) * prod(children).
	prod := r.Mul(nodeB, nodeC)
	if !r.Equal(root, r.MulLinear(prod, a)) {
		t.Error("first-factor identity violated at root")
	}
	// ... and fails for a wrong candidate tag.
	if r.Equal(root, r.MulLinear(prod, b)) {
		t.Error("first-factor identity matched a wrong tag")
	}
}

// TestEvalMatchesUnreducedProduct is the soundness property from DESIGN.md:
// for nonzero v, Eval(FromRoots(ts), v) == prod (v - t).
func TestEvalMatchesUnreducedProduct(t *testing.T) {
	for _, r := range testRings(t) {
		f := r.Field()
		gen := prg.New([]byte("eval")).Stream("roots", uint64(f.Q()))
		for trial := 0; trial < 50; trial++ {
			k := int(gen.Uniform(200)) // degree can far exceed q-1: reduction must wrap
			ts := make([]gf.Elem, k)
			for i := range ts {
				ts[i] = gen.Uniform(f.Q()-1) + 1 // nonzero roots
			}
			p := r.FromRoots(ts)
			v := gen.Uniform(f.Q()-1) + 1 // nonzero point
			want := gf.Elem(1)
			for _, root := range ts {
				want = f.Mul(want, f.Sub(v, root))
			}
			if got := r.Eval(p, v); got != want {
				t.Fatalf("%v: Eval(FromRoots(%d roots), %d) = %d, want %d", f, k, v, got, want)
			}
		}
	}
}

// TestContainmentExact: the reduced polynomial vanishes at nonzero v
// exactly when v is among the roots.
func TestContainmentExact(t *testing.T) {
	for _, r := range testRings(t) {
		f := r.Field()
		gen := prg.New([]byte("contain")).Stream("roots", uint64(f.Q()))
		for trial := 0; trial < 30; trial++ {
			k := int(gen.Uniform(40)) + 1
			ts := make([]gf.Elem, k)
			present := map[gf.Elem]bool{}
			for i := range ts {
				ts[i] = gen.Uniform(f.Q()-1) + 1
				present[ts[i]] = true
			}
			p := r.FromRoots(ts)
			for v := gf.Elem(1); v < f.Q(); v++ {
				zero := r.Eval(p, v) == 0
				if zero != present[v] {
					t.Fatalf("%v: containment mismatch at v=%d: eval-zero=%v present=%v", f, v, zero, present[v])
				}
			}
		}
	}
}

func TestMulLinearAgreesWithMul(t *testing.T) {
	for _, r := range testRings(t) {
		gen := prg.New([]byte("mlin")).Stream("x", uint64(r.N()))
		for trial := 0; trial < 20; trial++ {
			p := r.Rand(gen)
			tv := gen.Uniform(r.Field().Q())
			if !r.Equal(r.MulLinear(p, tv), r.Mul(p, r.Linear(tv))) {
				t.Fatalf("%v: MulLinear != Mul by linear factor", r.Field())
			}
		}
	}
}

func TestRingAxiomsQuick(t *testing.T) {
	r := f83(t)
	gen := prg.New([]byte("axioms")).Stream("x", 0)
	randPoly := func() Poly { return r.Rand(gen) }
	for trial := 0; trial < 40; trial++ {
		a, b, c := randPoly(), randPoly(), randPoly()
		if !r.Equal(r.Add(a, b), r.Add(b, a)) {
			t.Fatal("add not commutative")
		}
		if !r.Equal(r.Mul(a, b), r.Mul(b, a)) {
			t.Fatal("mul not commutative")
		}
		if !r.Equal(r.Mul(r.Mul(a, b), c), r.Mul(a, r.Mul(b, c))) {
			t.Fatal("mul not associative")
		}
		if !r.Equal(r.Mul(a, r.Add(b, c)), r.Add(r.Mul(a, b), r.Mul(a, c))) {
			t.Fatal("not distributive")
		}
		if !r.Equal(r.Mul(a, r.One()), a) {
			t.Fatal("one not identity")
		}
		if !r.IsZero(r.Sub(a, a)) {
			t.Fatal("a - a != 0")
		}
		if !r.Equal(r.Add(a, r.Neg(a)), r.NewPoly()) {
			t.Fatal("a + (-a) != 0")
		}
	}
}

// TestXPowNWrapsToOne: x^(q-1) must reduce to 1 — the defining relation.
func TestXPowNWrapsToOne(t *testing.T) {
	for _, r := range testRings(t) {
		x := r.Linear(0) // the polynomial x
		p := r.One()
		for i := 0; i < r.N(); i++ {
			p = r.Mul(p, x)
		}
		if !r.Equal(p, r.One()) {
			t.Fatalf("%v: x^(q-1) != 1 in the ring", r.Field())
		}
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	for _, r := range testRings(t) {
		gen := prg.New([]byte("ser")).Stream("x", 1)
		for trial := 0; trial < 25; trial++ {
			p := r.Rand(gen)
			b := r.Bytes(p)
			if len(b) != r.PolyBytes() {
				t.Fatalf("Bytes length %d, want %d", len(b), r.PolyBytes())
			}
			q, err := r.FromBytes(b)
			if err != nil {
				t.Fatal(err)
			}
			if !r.Equal(p, q) {
				t.Fatalf("%v: serialization round-trip failed", r.Field())
			}
		}
		// Edge polynomials.
		for _, p := range []Poly{r.NewPoly(), r.One(), maxPoly(r)} {
			q, err := r.FromBytes(r.Bytes(p))
			if err != nil || !r.Equal(p, q) {
				t.Fatalf("%v: round-trip failed on edge poly (%v)", r.Field(), err)
			}
		}
	}
}

func maxPoly(r *Ring) Poly {
	p := r.NewPoly()
	for i := range p {
		p[i] = r.Field().Q() - 1
	}
	return p
}

func TestFromBytesRejectsBadInput(t *testing.T) {
	r := f5(t)
	if _, err := r.FromBytes(make([]byte, r.PolyBytes()+1)); err == nil {
		t.Error("oversized blob accepted")
	}
	if _, err := r.FromBytes(make([]byte, r.PolyBytes()-1)); err == nil {
		t.Error("undersized blob accepted")
	}
	// All-0xFF exceeds q^n - 1 for F_5 (n=4: q^n = 625 <= 2^10, blob is 2 bytes,
	// max value 624 < 65535).
	bad := make([]byte, r.PolyBytes())
	for i := range bad {
		bad[i] = 0xFF
	}
	if _, err := r.FromBytes(bad); err == nil {
		t.Error("out-of-range blob accepted")
	}
}

func TestQuickSerialization(t *testing.T) {
	r := f83(t)
	q := r.Field().Q()
	err := quick.Check(func(seed uint64) bool {
		gen := prg.New([]byte("qs")).Stream("x", seed)
		p := make(Poly, r.N())
		for i := range p {
			p[i] = gen.Uniform(q)
		}
		back, err := r.FromBytes(r.Bytes(p))
		return err == nil && r.Equal(p, back)
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Error(err)
	}
}

func TestStringZero(t *testing.T) {
	r := f5(t)
	if s := r.String(r.NewPoly()); s != "0" {
		t.Errorf("String(0) = %q", s)
	}
	if s := r.String(r.One()); s != "1" {
		t.Errorf("String(1) = %q", s)
	}
	if s := r.String(r.Linear(0)); s != "x" {
		t.Errorf("String(x) = %q", s)
	}
}

func TestRandIsUniformish(t *testing.T) {
	// All coefficients in range, and not all identical across draws.
	r := f83(t)
	gen := prg.New([]byte("rand")).Stream("x", 0)
	p1, p2 := r.Rand(gen), r.Rand(gen)
	for _, p := range []Poly{p1, p2} {
		for _, c := range p {
			if c >= r.Field().Q() {
				t.Fatalf("coefficient %d out of range", c)
			}
		}
	}
	if r.Equal(p1, p2) {
		t.Fatal("two successive random polynomials identical")
	}
}

func TestAddInPlace(t *testing.T) {
	r := f83(t)
	gen := prg.New([]byte("aip")).Stream("x", 0)
	a, b := r.Rand(gen), r.Rand(gen)
	want := r.Add(a, b)
	got := r.AddInPlace(r.Clone(a), b)
	if !r.Equal(want, got) {
		t.Fatal("AddInPlace disagrees with Add")
	}
}

func BenchmarkMulF83(b *testing.B) {
	r := MustNew(gf.MustNew(83, 1))
	gen := prg.New([]byte("bench")).Stream("x", 0)
	p, q := r.Rand(gen), r.Rand(gen)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Mul(p, q)
	}
}

func BenchmarkMulLinearF83(b *testing.B) {
	r := MustNew(gf.MustNew(83, 1))
	gen := prg.New([]byte("bench")).Stream("x", 0)
	p := r.Rand(gen)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.MulLinear(p, 17)
	}
}

func BenchmarkEvalF83(b *testing.B) {
	r := MustNew(gf.MustNew(83, 1))
	gen := prg.New([]byte("bench")).Stream("x", 0)
	p := r.Rand(gen)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Eval(p, 29)
	}
}

func BenchmarkSerializeF83(b *testing.B) {
	r := MustNew(gf.MustNew(83, 1))
	gen := prg.New([]byte("bench")).Stream("x", 0)
	p := r.Rand(gen)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Bytes(p)
	}
}

func BenchmarkDeserializeF83(b *testing.B) {
	r := MustNew(gf.MustNew(83, 1))
	gen := prg.New([]byte("bench")).Stream("x", 0)
	blob := r.Bytes(r.Rand(gen))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.FromBytes(blob); err != nil {
			b.Fatal(err)
		}
	}
}
