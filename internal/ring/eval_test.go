package ring

import (
	"testing"

	"encshare/internal/gf"
	"encshare/internal/prg"
)

// evalOracle is Horner's rule through the generic field arithmetic —
// the pre-table evaluation the fast paths must reproduce.
func evalOracle(r *Ring, p Poly, v gf.Elem) gf.Elem {
	f := r.Field()
	acc := gf.Elem(0)
	for i := r.N() - 1; i >= 0; i-- {
		acc = f.Add(f.MulGeneric(acc, v), p[i])
	}
	return acc
}

func allPoints(r *Ring) []gf.Elem {
	vs := make([]gf.Elem, 0, r.Field().Q())
	for v := gf.Elem(0); v < r.Field().Q(); v++ {
		vs = append(vs, v)
	}
	return vs
}

// TestEvalMatchesOracle checks the table-hoisted Horner loop against the
// generic oracle at every point of every test ring.
func TestEvalMatchesOracle(t *testing.T) {
	gen := prg.New([]byte("eval-oracle"))
	for _, r := range testRings(t) {
		for pi := uint64(0); pi < 8; pi++ {
			p := r.Rand(gen.Stream(r.Field().String(), pi))
			for _, v := range allPoints(r) {
				if got, want := r.Eval(p, v), evalOracle(r, p, v); got != want {
					t.Fatalf("%v: Eval(p, %d) = %d, oracle %d", r.Field(), v, got, want)
				}
			}
		}
		// Degenerate polynomials.
		for _, p := range []Poly{r.NewPoly(), r.One(), r.Linear(1)} {
			for _, v := range []gf.Elem{0, 1, r.Field().Q() - 1} {
				if got, want := r.Eval(p, v), evalOracle(r, p, v); got != want {
					t.Fatalf("%v: degenerate Eval at %d: %d vs %d", r.Field(), v, got, want)
				}
			}
		}
	}
}

// TestEvalBatchEvalMany checks the batch entry points agree with
// scalar Eval element-for-element.
func TestEvalBatchEvalMany(t *testing.T) {
	gen := prg.New([]byte("eval-batch"))
	for _, r := range testRings(t) {
		polys := make([]Poly, 17)
		for i := range polys {
			polys[i] = r.Rand(gen.Stream(r.Field().String(), uint64(i)))
		}
		vs := allPoints(r)
		for _, v := range []gf.Elem{0, 1, 2, r.Field().Q() - 1} {
			got := r.EvalBatch(polys, v)
			for i, p := range polys {
				if want := r.Eval(p, v); got[i] != want {
					t.Fatalf("%v: EvalBatch[%d] at %d = %d, want %d", r.Field(), i, v, got[i], want)
				}
			}
		}
		for _, p := range polys[:3] {
			got := r.EvalMany(p, vs)
			for i, v := range vs {
				if want := r.Eval(p, v); got[i] != want {
					t.Fatalf("%v: EvalMany at %d = %d, want %d", r.Field(), v, got[i], want)
				}
			}
			// Small point sets exercise the stack-scratch path; the
			// single-point case exercises its dedicated fast path.
			for k := 1; k <= 3; k++ {
				sub := vs[:k]
				got := r.EvalMany(p, sub)
				for i, v := range sub {
					if want := r.Eval(p, v); got[i] != want {
						t.Fatalf("%v: EvalMany(k=%d) at %d mismatch", r.Field(), k, v)
					}
				}
			}
		}
	}
}

// TestEvalBatchLockstepIdentity pins the four-wide lockstep batch path
// to the sequential one: for every batch size around the chunk width
// (covering empty, partial-tail, and multi-chunk batches) and every
// point of the field, EvalBatchInto must produce exactly the values a
// plain per-polynomial loop produces — including on all-zero and sparse
// polynomials, whose skipped coefficients are where a lockstep rewrite
// would drift first.
func TestEvalBatchLockstepIdentity(t *testing.T) {
	gen := prg.New([]byte("eval-lockstep"))
	for _, r := range testRings(t) {
		polys := make([]Poly, 11)
		for i := range polys {
			polys[i] = r.Rand(gen.Stream(r.Field().String(), uint64(i)))
		}
		polys[2] = r.NewPoly() // all zero
		polys[5] = r.One()
		sparse := r.NewPoly() // lone high-degree term
		sparse[r.N()-1] = 1
		polys[7] = sparse
		for size := 0; size <= len(polys); size++ {
			batch := polys[:size]
			for _, v := range allPoints(r) {
				got := make([]gf.Elem, size)
				r.EvalBatchInto(got, batch, v)
				for i, p := range batch {
					if want := r.Eval(p, v); got[i] != want {
						t.Fatalf("%v: lockstep batch size %d, poly %d, point %d: got %d, sequential %d",
							r.Field(), size, i, v, got[i], want)
					}
				}
			}
		}
	}
}

// TestEvalStreamMatchesRand proves the streaming evaluation equals
// materializing the polynomial with Rand from the same stream and
// evaluating it — the client-share equivalence the filter relies on.
func TestEvalStreamMatchesRand(t *testing.T) {
	gen := prg.New([]byte("eval-stream"))
	for _, r := range testRings(t) {
		for i := uint64(0); i < 6; i++ {
			for _, v := range []gf.Elem{0, 1, 2, r.Field().Q() - 1} {
				p := r.Rand(gen.Stream("s", i))
				want := r.Eval(p, v)
				got := r.EvalStream(gen.Stream("s", i), v)
				if got != want {
					t.Fatalf("%v: EvalStream at %d = %d, want %d", r.Field(), v, got, want)
				}
			}
		}
	}
}

// TestEvalStreamManyMatchesScalar proves the single-pass multi-point
// stream evaluation equals per-point streaming, including zero points
// mixed in and point sets beyond the stack-scratch bound.
func TestEvalStreamManyMatchesScalar(t *testing.T) {
	gen := prg.New([]byte("eval-stream-many"))
	for _, r := range testRings(t) {
		q := r.Field().Q()
		pointSets := [][]gf.Elem{
			{1},
			{0},
			{2 % q, 0, 1, q - 1},
			allPoints(r)[:min(12, int(q))], // exceeds the 8-wide stack scratch
		}
		for i := uint64(0); i < 4; i++ {
			for _, vs := range pointSets {
				out := make([]gf.Elem, len(vs))
				r.EvalStreamMany(gen.Stream("m", i), vs, out)
				for j, v := range vs {
					want := r.EvalStream(gen.Stream("m", i), v)
					if out[j] != want {
						t.Fatalf("%v: EvalStreamMany[%d] at %d = %d, want %d", r.Field(), j, v, out[j], want)
					}
				}
			}
		}
	}
}

// TestMulIntoMatchesMul checks the Into variants against their
// allocating twins and the generic convolution oracle.
func TestMulIntoMatchesMul(t *testing.T) {
	gen := prg.New([]byte("mulinto"))
	for _, r := range testRings(t) {
		f := r.Field()
		mulOracle := func(a, b Poly) Poly {
			out := r.NewPoly()
			for i := 0; i < r.N(); i++ {
				for j := 0; j < r.N(); j++ {
					k := (i + j) % r.N()
					out[k] = f.Add(out[k], f.MulGeneric(a[i], b[j]))
				}
			}
			return out
		}
		for i := uint64(0); i < 4; i++ {
			a := r.Rand(gen.Stream("a", i))
			b := r.Rand(gen.Stream("b", i))
			want := mulOracle(a, b)
			if !r.Equal(r.Mul(a, b), want) {
				t.Fatalf("%v: Mul differs from generic convolution", f)
			}
			dst := r.GetPoly()
			if !r.Equal(r.MulInto(dst, a, b), want) {
				t.Fatalf("%v: MulInto differs from generic convolution", f)
			}
			r.PutPoly(dst)
			tval := gf.Elem(i+1) % f.Q()
			lin := r.MulLinear(a, tval)
			dst2 := r.GetPoly()
			if !r.Equal(r.MulLinearInto(dst2, a, tval), lin) {
				t.Fatalf("%v: MulLinearInto differs from MulLinear", f)
			}
			if !r.Equal(lin, r.Mul(a, r.Linear(tval))) {
				t.Fatalf("%v: MulLinear differs from Mul by linear factor", f)
			}
			r.PutPoly(dst2)
		}
	}
}
