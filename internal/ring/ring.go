// Package ring implements the quotient ring F_q[x]/(x^(q-1) − 1) in which
// the paper encodes XML trees (§3, step 2).
//
// Every polynomial is kept in reduced form as exactly n = q−1 coefficients
// c[0..n−1] (c[i] is the coefficient of x^i). Reduction modulo x^(q−1) − 1
// identifies x^(q−1) with 1, i.e. multiplication is cyclic convolution of
// the coefficient vectors.
//
// The crucial soundness property (tested in this package) is that for any
// nonzero point t ∈ F_q^*, t^(q−1) = 1, so reduction preserves evaluation
// at every nonzero point. Since the secret tag map only uses nonzero
// values, "f(map(N)) == 0" holds in the reduced ring exactly when the
// unreduced product Π(x − t_i) has map(N) among its roots — i.e. exactly
// when tag N occurs in the subtree. Containment matching has no false
// positives or negatives at the ring level.
package ring

import (
	"fmt"
	"math/big"

	"encshare/internal/gf"
	"encshare/internal/prg"
)

// Ring is the polynomial ring F_q[x]/(x^(q-1) − 1). Immutable and safe for
// concurrent use.
type Ring struct {
	f *gf.Field
	n int // q - 1, number of coefficients in reduced form

	// serialization support: polynomials are packed as a base-q integer
	// occupying polyBytes bytes, the paper's (q−1)·log2(q) bits (§4).
	polyBytes int
	qBig      *big.Int
}

// New constructs the ring over the given field. Fields of order q < 3 are
// rejected: the scheme needs at least one nonzero map value and a degree
// >= 1 reduced representation to hold (x − t).
func New(f *gf.Field) (*Ring, error) {
	if f.Q() < 3 {
		return nil, fmt.Errorf("ring: field order %d too small (need q >= 3)", f.Q())
	}
	n := int(f.Q() - 1)
	r := &Ring{f: f, n: n, qBig: big.NewInt(int64(f.Q()))}
	// polyBytes = bytes needed for the largest packed value q^n - 1.
	max := new(big.Int).Exp(r.qBig, big.NewInt(int64(n)), nil)
	max.Sub(max, big.NewInt(1))
	r.polyBytes = (max.BitLen() + 7) / 8
	return r, nil
}

// MustNew is New but panics on error.
func MustNew(f *gf.Field) *Ring {
	r, err := New(f)
	if err != nil {
		panic(err)
	}
	return r
}

// Field returns the coefficient field.
func (r *Ring) Field() *gf.Field { return r.f }

// N returns the number of coefficients of a reduced polynomial (q − 1).
func (r *Ring) N() int { return r.n }

// PolyBytes returns the serialized size of one polynomial in bytes — the
// paper's per-node storage cost.
func (r *Ring) PolyBytes() int { return r.polyBytes }

// Poly is a reduced polynomial: a coefficient vector of length Ring.N().
// Polys from different rings must not be mixed; all Poly-taking methods on
// Ring assume the argument belongs to it.
type Poly []gf.Elem

// NewPoly returns the zero polynomial.
func (r *Ring) NewPoly() Poly { return make(Poly, r.n) }

// One returns the constant polynomial 1.
func (r *Ring) One() Poly {
	p := r.NewPoly()
	p[0] = 1
	return p
}

// Constant returns the constant polynomial c.
func (r *Ring) Constant(c gf.Elem) Poly {
	p := r.NewPoly()
	p[0] = c
	return p
}

// Linear returns the monic linear polynomial x − t, the leaf encoding of a
// node mapped to t (§3, step 2).
func (r *Ring) Linear(t gf.Elem) Poly {
	p := r.NewPoly()
	p[0] = r.f.Neg(t)
	p[1] = 1
	return p
}

// Clone returns an independent copy of p.
func (r *Ring) Clone(p Poly) Poly {
	q := make(Poly, r.n)
	copy(q, p)
	return q
}

// Add returns a + b.
func (r *Ring) Add(a, b Poly) Poly {
	out := make(Poly, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.f.Add(a[i], b[i])
	}
	return out
}

// AddInPlace sets a += b and returns a.
func (r *Ring) AddInPlace(a, b Poly) Poly {
	for i := 0; i < r.n; i++ {
		a[i] = r.f.Add(a[i], b[i])
	}
	return a
}

// Sub returns a − b.
func (r *Ring) Sub(a, b Poly) Poly {
	out := make(Poly, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.f.Sub(a[i], b[i])
	}
	return out
}

// Neg returns −a.
func (r *Ring) Neg(a Poly) Poly {
	out := make(Poly, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.f.Neg(a[i])
	}
	return out
}

// Mul returns a·b, reduced: cyclic convolution of the coefficient vectors.
func (r *Ring) Mul(a, b Poly) Poly {
	out := make(Poly, r.n)
	for i := 0; i < r.n; i++ {
		ai := a[i]
		if ai == 0 {
			continue
		}
		for j := 0; j < r.n; j++ {
			bj := b[j]
			if bj == 0 {
				continue
			}
			k := i + j
			if k >= r.n {
				k -= r.n
			}
			out[k] = r.f.Add(out[k], r.f.Mul(ai, bj))
		}
	}
	return out
}

// MulLinear returns a·(x − t) without forming the dense factor — the inner
// loop of the encoder, where every node contributes one linear factor.
func (r *Ring) MulLinear(a Poly, t gf.Elem) Poly {
	out := make(Poly, r.n)
	negT := r.f.Neg(t)
	for i := 0; i < r.n; i++ {
		ai := a[i]
		if ai == 0 {
			continue
		}
		// a_i x^i (x − t) = a_i x^(i+1) − t a_i x^i
		k := i + 1
		if k == r.n {
			k = 0
		}
		out[k] = r.f.Add(out[k], ai)
		out[i] = r.f.Add(out[i], r.f.Mul(negT, ai))
	}
	return out
}

// FromRoots returns Π (x − t) over the given roots — the unshared encoding
// of a subtree whose nodes map to ts.
func (r *Ring) FromRoots(ts []gf.Elem) Poly {
	p := r.One()
	for _, t := range ts {
		p = r.MulLinear(p, t)
	}
	return p
}

// Eval evaluates p at point v by Horner's rule. For v ∈ F_q^* this equals
// the evaluation of any unreduced preimage of p.
func (r *Ring) Eval(p Poly, v gf.Elem) gf.Elem {
	acc := gf.Elem(0)
	for i := r.n - 1; i >= 0; i-- {
		acc = r.f.Add(r.f.Mul(acc, v), p[i])
	}
	return acc
}

// IsZero reports whether p is the zero polynomial.
func (r *Ring) IsZero(p Poly) bool {
	for _, c := range p {
		if c != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether a and b are identical polynomials.
func (r *Ring) Equal(a, b Poly) bool {
	for i := 0; i < r.n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Rand returns a polynomial with coefficients drawn uniformly from the
// given stream — the client share generator (§3, step 3).
func (r *Ring) Rand(s *prg.Stream) Poly {
	p := make(Poly, r.n)
	q := r.f.Q()
	for i := range p {
		p[i] = s.Uniform(q)
	}
	return p
}

// Bytes serializes p into exactly PolyBytes() bytes by radix-q packing
// (big-endian): the storage format matching the paper's
// (q−1)·log2(q)-bit cost accounting. Fixed width keeps rows uniform.
func (r *Ring) Bytes(p Poly) []byte {
	acc := new(big.Int)
	tmp := new(big.Int)
	for i := r.n - 1; i >= 0; i-- {
		acc.Mul(acc, r.qBig)
		tmp.SetUint64(uint64(p[i]))
		acc.Add(acc, tmp)
	}
	out := make([]byte, r.polyBytes)
	acc.FillBytes(out)
	return out
}

// FromBytes deserializes a polynomial previously produced by Bytes.
func (r *Ring) FromBytes(b []byte) (Poly, error) {
	if len(b) != r.polyBytes {
		return nil, fmt.Errorf("ring: polynomial blob is %d bytes, want %d", len(b), r.polyBytes)
	}
	acc := new(big.Int).SetBytes(b)
	mod := new(big.Int)
	p := make(Poly, r.n)
	for i := 0; i < r.n; i++ {
		acc.DivMod(acc, r.qBig, mod)
		v := mod.Uint64()
		p[i] = gf.Elem(v)
	}
	if acc.Sign() != 0 {
		return nil, fmt.Errorf("ring: polynomial blob out of range")
	}
	return p, nil
}

// String renders p in conventional descending-degree notation, e.g.
// "2x^3 + 3x^2 + 2x + 3" (cf. the paper's Fig. 1).
func (r *Ring) String(p Poly) string {
	s := ""
	for i := r.n - 1; i >= 0; i-- {
		c := p[i]
		if c == 0 {
			continue
		}
		if s != "" {
			s += " + "
		}
		switch {
		case i == 0:
			s += fmt.Sprintf("%d", c)
		case i == 1:
			if c == 1 {
				s += "x"
			} else {
				s += fmt.Sprintf("%dx", c)
			}
		default:
			if c == 1 {
				s += fmt.Sprintf("x^%d", i)
			} else {
				s += fmt.Sprintf("%dx^%d", c, i)
			}
		}
	}
	if s == "" {
		return "0"
	}
	return s
}
