// Package ring implements the quotient ring F_q[x]/(x^(q-1) − 1) in which
// the paper encodes XML trees (§3, step 2).
//
// Every polynomial is kept in reduced form as exactly n = q−1 coefficients
// c[0..n−1] (c[i] is the coefficient of x^i). Reduction modulo x^(q−1) − 1
// identifies x^(q−1) with 1, i.e. multiplication is cyclic convolution of
// the coefficient vectors.
//
// The crucial soundness property (tested in this package) is that for any
// nonzero point t ∈ F_q^*, t^(q−1) = 1, so reduction preserves evaluation
// at every nonzero point. Since the secret tag map only uses nonzero
// values, "f(map(N)) == 0" holds in the reduced ring exactly when the
// unreduced product Π(x − t_i) has map(N) among its roots — i.e. exactly
// when tag N occurs in the subtree. Containment matching has no false
// positives or negatives at the ring level.
//
// # Hot path
//
// This package is the compute floor of every query: a containment test
// is one Eval per share, an equality test decodes and multiplies whole
// polynomials. The hot entry points are built accordingly:
//
//   - evaluation and multiplication hoist the field's log/exp tables
//     (gf.Tables) out of their inner loops, with a branch-free residue
//     fast path for prime fields;
//   - EvalBatch/EvalMany amortize the hoisting across many polynomials
//     or many points; EvalStream evaluates a PRG-defined polynomial
//     without materializing it (the client-share path);
//   - the radix-q codec runs on pooled uint64 limb vectors (limb.go)
//     and decodes into caller-supplied buffers — zero heap allocations
//     on the decode path;
//   - GetPoly/PutPoly expose a pooled buffer source for transient
//     polynomials. Pooling invariant: a Poly may be returned to the
//     pool only when no other reference to it can remain — never pool a
//     polynomial that was handed to a cache or kept in a result.
package ring

import (
	"fmt"
	"math/big"
	"sync"

	"encshare/internal/gf"
	"encshare/internal/prg"
)

// Ring is the polynomial ring F_q[x]/(x^(q-1) − 1). Immutable and safe for
// concurrent use.
type Ring struct {
	f     *gf.Field
	n     int    // q - 1, number of coefficients in reduced form
	q32   uint32 // field order, hoisted for the prime fast paths
	prime bool   // e == 1: coefficients are residues mod q

	// serialization support: polynomials are packed as a base-q integer
	// occupying polyBytes bytes, the paper's (q−1)·log2(q) bits (§4).
	polyBytes int
	qBig      *big.Int

	// limb codec geometry (see limb.go): values occupy `limbs` uint64
	// words; `chunk` is the largest k with q^k ≤ 2^63 and qpow[g] = q^g.
	limbs int
	chunk int
	qpow  []uint64

	// sampler holds the precomputed Uniform(q) constants for the PRG
	// draws (coefficient sampling is division-free).
	sampler prg.Sampler

	limbPool sync.Pool // *limbScratch
	polyPool sync.Pool // *polyBox (full)
	boxPool  sync.Pool // *polyBox (empty, recycled wrappers)
}

// New constructs the ring over the given field. Fields of order q < 3 are
// rejected: the scheme needs at least one nonzero map value and a degree
// >= 1 reduced representation to hold (x − t).
func New(f *gf.Field) (*Ring, error) {
	if f.Q() < 3 {
		return nil, fmt.Errorf("ring: field order %d too small (need q >= 3)", f.Q())
	}
	n := int(f.Q() - 1)
	r := &Ring{f: f, n: n, q32: f.Q(), prime: f.E() == 1, qBig: big.NewInt(int64(f.Q())), sampler: prg.NewSampler(f.Q())}
	// polyBytes = bytes needed for the largest packed value q^n - 1.
	max := new(big.Int).Exp(r.qBig, big.NewInt(int64(n)), nil)
	max.Sub(max, big.NewInt(1))
	r.polyBytes = (max.BitLen() + 7) / 8
	r.limbs = (r.polyBytes + 7) / 8
	q64 := uint64(f.Q())
	qk := uint64(1)
	for qk <= (uint64(1)<<63)/q64 {
		qk *= q64
		r.chunk++
	}
	r.qpow = make([]uint64, r.chunk+1)
	r.qpow[0] = 1
	for i := 1; i <= r.chunk; i++ {
		r.qpow[i] = r.qpow[i-1] * q64
	}
	return r, nil
}

// MustNew is New but panics on error.
func MustNew(f *gf.Field) *Ring {
	r, err := New(f)
	if err != nil {
		panic(err)
	}
	return r
}

// Field returns the coefficient field.
func (r *Ring) Field() *gf.Field { return r.f }

// N returns the number of coefficients of a reduced polynomial (q − 1).
func (r *Ring) N() int { return r.n }

// PolyBytes returns the serialized size of one polynomial in bytes — the
// paper's per-node storage cost.
func (r *Ring) PolyBytes() int { return r.polyBytes }

// Poly is a reduced polynomial: a coefficient vector of length Ring.N().
// Polys from different rings must not be mixed; all Poly-taking methods on
// Ring assume the argument belongs to it.
type Poly []gf.Elem

// NewPoly returns the zero polynomial.
func (r *Ring) NewPoly() Poly { return make(Poly, r.n) }

// polyBox wraps a pooled Poly so Get/Put round trips reuse the pointer
// cell instead of boxing a fresh slice header per Put: emptied boxes
// recycle through boxPool, so the steady state allocates nothing.
type polyBox struct{ p Poly }

// GetPoly returns a zeroed polynomial from the ring's buffer pool. Pair
// with PutPoly for transient polynomials on hot paths. A Poly obtained
// here is indistinguishable from NewPoly's — forgetting to return it
// costs an allocation, never correctness.
func (r *Ring) GetPoly() Poly {
	if v := r.polyPool.Get(); v != nil {
		b := v.(*polyBox)
		p := b.p
		b.p = nil
		r.boxPool.Put(b)
		clear(p)
		return p
	}
	return make(Poly, r.n)
}

// PutPoly returns a polynomial to the buffer pool. The caller must hold
// the only remaining reference: never return a Poly that was stored in a
// cache, captured in a result, or is still being read by another
// goroutine. Polys of the wrong length are dropped.
func (r *Ring) PutPoly(p Poly) {
	if len(p) != r.n {
		return
	}
	var b *polyBox
	if v := r.boxPool.Get(); v != nil {
		b = v.(*polyBox)
	} else {
		b = &polyBox{}
	}
	b.p = p
	r.polyPool.Put(b)
}

// One returns the constant polynomial 1.
func (r *Ring) One() Poly {
	p := r.NewPoly()
	p[0] = 1
	return p
}

// Constant returns the constant polynomial c.
func (r *Ring) Constant(c gf.Elem) Poly {
	p := r.NewPoly()
	p[0] = c
	return p
}

// Linear returns the monic linear polynomial x − t, the leaf encoding of a
// node mapped to t (§3, step 2).
func (r *Ring) Linear(t gf.Elem) Poly {
	p := r.NewPoly()
	p[0] = r.f.Neg(t)
	p[1] = 1
	return p
}

// Clone returns an independent copy of p.
func (r *Ring) Clone(p Poly) Poly {
	q := make(Poly, r.n)
	copy(q, p)
	return q
}

// Add returns a + b.
func (r *Ring) Add(a, b Poly) Poly {
	out := make(Poly, r.n)
	if r.prime {
		q := r.q32
		for i, av := range a {
			s := av + b[i]
			if s >= q {
				s -= q
			}
			out[i] = s
		}
		return out
	}
	for i := 0; i < r.n; i++ {
		out[i] = r.f.Add(a[i], b[i])
	}
	return out
}

// AddInPlace sets a += b and returns a.
func (r *Ring) AddInPlace(a, b Poly) Poly {
	if r.prime {
		q := r.q32
		for i, bv := range b {
			s := a[i] + bv
			if s >= q {
				s -= q
			}
			a[i] = s
		}
		return a
	}
	for i := 0; i < r.n; i++ {
		a[i] = r.f.Add(a[i], b[i])
	}
	return a
}

// SumInto folds every polynomial of ps into dst (dst += Σ ps) and
// returns dst — the additive share combination behind server-side
// aggregation: a shard sums the server shares of all matching rows into
// one polynomial instead of shipping each row. Addition is coefficient-
// wise, so the fold is exact in the field regardless of how many shares
// it absorbs; only counters (sums of ones) need the chunking rule, not
// the share fold itself.
func (r *Ring) SumInto(dst Poly, ps ...Poly) Poly {
	for _, p := range ps {
		r.AddInPlace(dst, p)
	}
	return dst
}

// AddScaledInPlace sets a += c·b and returns a — the masked-fold
// primitive of the verification share: the scalar multiple of a share is
// again a share, so Σ ρ_i·s_i is computable shard-side without revealing
// anything. The scale runs in the log domain (one table add per nonzero
// coefficient), matching the evaluation paths' cost model.
func (r *Ring) AddScaledInPlace(a, b Poly, c gf.Elem) Poly {
	switch c {
	case 0:
		return a
	case 1:
		return r.AddInPlace(a, b)
	}
	t := r.f.Tables()
	lg, ex := t.Log, t.Exp
	lc := lg[c]
	if r.prime {
		q := r.q32
		for i, bv := range b {
			if bv == 0 {
				continue
			}
			s := a[i] + ex[lg[bv]+lc]
			if s >= q {
				s -= q
			}
			a[i] = s
		}
		return a
	}
	for i, bv := range b {
		if bv != 0 {
			a[i] = r.f.Add(a[i], ex[lg[bv]+lc])
		}
	}
	return a
}

// Sub returns a − b.
func (r *Ring) Sub(a, b Poly) Poly {
	out := make(Poly, r.n)
	if r.prime {
		q := r.q32
		for i, av := range a {
			bv := b[i]
			if av >= bv {
				out[i] = av - bv
			} else {
				out[i] = av + q - bv
			}
		}
		return out
	}
	for i := 0; i < r.n; i++ {
		out[i] = r.f.Sub(a[i], b[i])
	}
	return out
}

// Neg returns −a.
func (r *Ring) Neg(a Poly) Poly {
	out := make(Poly, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.f.Neg(a[i])
	}
	return out
}

// Mul returns a·b, reduced: cyclic convolution of the coefficient vectors.
func (r *Ring) Mul(a, b Poly) Poly {
	return r.MulInto(make(Poly, r.n), a, b)
}

// MulInto sets dst = a·b and returns dst. dst must not alias a or b.
// The inner loop runs on the hoisted log/exp tables: each nonzero
// coefficient pair costs one exp lookup and one modular add.
func (r *Ring) MulInto(dst, a, b Poly) Poly {
	t := r.f.Tables()
	lg, ex := t.Log, t.Exp
	clear(dst)
	n := r.n
	if r.prime {
		q := r.q32
		for i, ai := range a {
			if ai == 0 {
				continue
			}
			la := lg[ai]
			for j, bj := range b {
				if bj == 0 {
					continue
				}
				k := i + j
				if k >= n {
					k -= n
				}
				s := dst[k] + ex[la+lg[bj]]
				if s >= q {
					s -= q
				}
				dst[k] = s
			}
		}
		return dst
	}
	f := r.f
	for i, ai := range a {
		if ai == 0 {
			continue
		}
		la := lg[ai]
		for j, bj := range b {
			if bj == 0 {
				continue
			}
			k := i + j
			if k >= n {
				k -= n
			}
			dst[k] = f.Add(dst[k], ex[la+lg[bj]])
		}
	}
	return dst
}

// MulLinear returns a·(x − t) without forming the dense factor — the inner
// loop of the encoder, where every node contributes one linear factor.
func (r *Ring) MulLinear(a Poly, t gf.Elem) Poly {
	return r.MulLinearInto(make(Poly, r.n), a, t)
}

// MulLinearInto sets dst = a·(x − t) and returns dst. dst must not
// alias a.
func (r *Ring) MulLinearInto(dst, a Poly, t gf.Elem) Poly {
	tab := r.f.Tables()
	lg, ex := tab.Log, tab.Exp
	negT := r.f.Neg(t)
	clear(dst)
	n := r.n
	if r.prime {
		q := r.q32
		var lnt uint32
		if negT != 0 {
			lnt = lg[negT]
		}
		for i, ai := range a {
			if ai == 0 {
				continue
			}
			// a_i x^i (x − t) = a_i x^(i+1) − t a_i x^i
			k := i + 1
			if k == n {
				k = 0
			}
			s := dst[k] + ai
			if s >= q {
				s -= q
			}
			dst[k] = s
			if negT != 0 {
				s = dst[i] + ex[lnt+lg[ai]]
				if s >= q {
					s -= q
				}
				dst[i] = s
			}
		}
		return dst
	}
	f := r.f
	for i, ai := range a {
		if ai == 0 {
			continue
		}
		k := i + 1
		if k == n {
			k = 0
		}
		dst[k] = f.Add(dst[k], ai)
		if negT != 0 {
			dst[i] = f.Add(dst[i], ex[lg[negT]+lg[ai]])
		}
	}
	return dst
}

// FromRoots returns Π (x − t) over the given roots — the unshared encoding
// of a subtree whose nodes map to ts.
func (r *Ring) FromRoots(ts []gf.Elem) Poly {
	p := r.One()
	for _, t := range ts {
		p = r.MulLinear(p, t)
	}
	return p
}

// Eval evaluates p at point v by Horner's rule. For v ∈ F_q^* this equals
// the evaluation of any unreduced preimage of p.
func (r *Ring) Eval(p Poly, v gf.Elem) gf.Elem {
	return r.evalTab(r.f.Tables(), p, v)
}

// evalTab computes Σ c_i·v^i with the tables already hoisted, in power
// form rather than Horner form: the power of v rides in the log domain
// (one add mod N per step) and each term is one exp lookup. Horner's
// loop carries its dependency through Log[acc] — a load — every
// iteration; here the only loop-carried state is two integer adds, so
// the table loads of successive terms pipeline.
func (r *Ring) evalTab(t *gf.Tables, p Poly, v gf.Elem) gf.Elem {
	if v == 0 {
		return p[0]
	}
	lg, ex := t.Log, t.Exp
	logv := lg[v]
	var pw uint32 // log of v^i, updated incrementally mod N
	if r.prime {
		q := r.q32
		var acc uint32
		for _, c := range p {
			if c != 0 {
				acc += ex[lg[c]+pw]
				if acc >= q {
					acc -= q
				}
			}
			pw += logv
			if pw >= t.N {
				pw -= t.N
			}
		}
		return acc
	}
	f := r.f
	var acc gf.Elem
	for _, c := range p {
		if c != 0 {
			acc = f.Add(acc, ex[lg[c]+pw])
		}
		pw += logv
		if pw >= t.N {
			pw -= t.N
		}
	}
	return acc
}

// EvalBatch evaluates every polynomial at the same point v — the
// server's batched containment test. Field and table pointers are
// hoisted once for the whole batch.
func (r *Ring) EvalBatch(polys []Poly, v gf.Elem) []gf.Elem {
	out := make([]gf.Elem, len(polys))
	r.EvalBatchInto(out, polys, v)
	return out
}

// EvalBatchInto is EvalBatch into a caller-supplied result slice
// (len(out) ≥ len(polys)), performing no allocation.
//
// Batches of prime-field polynomials run four at a time in lockstep:
// all members share the point v, so the log-domain power counter — the
// only loop-carried state of the power-form evaluation — is computed
// once per coefficient index and feeds four independent accumulators.
// Per-element arithmetic is identical to evalTab's, so the results are
// the ones sequential evaluation produces (a test pins this).
func (r *Ring) EvalBatchInto(out []gf.Elem, polys []Poly, v gf.Elem) {
	t := r.f.Tables()
	i := 0
	if r.prime && v != 0 {
		lg, ex := t.Log, t.Exp
		logv := lg[v]
		q := r.q32
		n := r.n
		for ; i+4 <= len(polys); i += 4 {
			p0, p1, p2, p3 := polys[i], polys[i+1], polys[i+2], polys[i+3]
			if len(p0) != n || len(p1) != n || len(p2) != n || len(p3) != n {
				break // ragged batch: finish on the sequential path
			}
			var a0, a1, a2, a3 uint32
			var pw uint32
			for k := 0; k < n; k++ {
				if c := p0[k]; c != 0 {
					a0 += ex[lg[c]+pw]
					if a0 >= q {
						a0 -= q
					}
				}
				if c := p1[k]; c != 0 {
					a1 += ex[lg[c]+pw]
					if a1 >= q {
						a1 -= q
					}
				}
				if c := p2[k]; c != 0 {
					a2 += ex[lg[c]+pw]
					if a2 >= q {
						a2 -= q
					}
				}
				if c := p3[k]; c != 0 {
					a3 += ex[lg[c]+pw]
					if a3 >= q {
						a3 -= q
					}
				}
				pw += logv
				if pw >= t.N {
					pw -= t.N
				}
			}
			out[i], out[i+1], out[i+2], out[i+3] = a0, a1, a2, a3
		}
	}
	for ; i < len(polys); i++ {
		out[i] = r.evalTab(t, polys[i], v)
	}
}

// EvalMany evaluates one polynomial at many points — the advanced
// engine's look-ahead asks several names of the same node. One pass
// over the coefficients updates all accumulators, so p streams through
// the cache once however many points are asked.
func (r *Ring) EvalMany(p Poly, vs []gf.Elem) []gf.Elem {
	out := make([]gf.Elem, len(vs))
	r.EvalManyInto(out, p, vs)
	return out
}

// EvalManyInto is EvalMany into a caller-supplied result slice
// (len(out) ≥ len(vs)).
func (r *Ring) EvalManyInto(out []gf.Elem, p Poly, vs []gf.Elem) {
	t := r.f.Tables()
	if len(vs) == 1 { // common case: skip the accumulator machinery
		out[0] = r.evalTab(t, p, vs[0])
		return
	}
	lg, ex := t.Log, t.Exp
	var logs [8]uint32
	lv := logs[:0]
	if len(vs) > len(logs) {
		lv = make([]uint32, 0, len(vs))
	}
	for i, v := range vs {
		out[i] = 0
		if v == 0 {
			// x^0 term only; handled after the loop.
			lv = append(lv, 0)
			continue
		}
		lv = append(lv, lg[v])
	}
	if r.prime {
		q := r.q32
		for i := r.n - 1; i >= 0; i-- {
			c := p[i]
			for j, v := range vs {
				if v == 0 {
					continue
				}
				acc := out[j]
				if acc != 0 {
					acc = ex[lg[acc]+lv[j]]
				}
				acc += c
				if acc >= q {
					acc -= q
				}
				out[j] = acc
			}
		}
	} else {
		f := r.f
		for i := r.n - 1; i >= 0; i-- {
			c := p[i]
			for j, v := range vs {
				if v == 0 {
					continue
				}
				acc := out[j]
				if acc != 0 {
					acc = ex[lg[acc]+lv[j]]
				}
				if c != 0 {
					acc = f.Add(acc, c)
				}
				out[j] = acc
			}
		}
	}
	for j, v := range vs {
		if v == 0 {
			out[j] = p[0]
		}
	}
}

// IsZero reports whether p is the zero polynomial.
func (r *Ring) IsZero(p Poly) bool {
	for _, c := range p {
		if c != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether a and b are identical polynomials.
func (r *Ring) Equal(a, b Poly) bool {
	for i := 0; i < r.n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Rand returns a polynomial with coefficients drawn uniformly from the
// given stream — the client share generator (§3, step 3).
func (r *Ring) Rand(s *prg.Stream) Poly {
	return r.RandInto(make(Poly, r.n), s)
}

// RandInto fills dst (len == N()) with coefficients drawn uniformly
// from the stream and returns it — Rand without the allocation.
func (r *Ring) RandInto(dst Poly, s *prg.Stream) Poly {
	u := r.sampler
	for i := range dst {
		dst[i] = s.Sample(u)
	}
	return dst
}

// Sampler returns the precomputed Uniform(Q()) sampler — for callers
// (the sharing scheme) that draw coefficients from the same stream
// layout as Rand.
func (r *Ring) Sampler() prg.Sampler { return r.sampler }

// EvalStream evaluates, at point v, the polynomial whose coefficients
// Rand would draw from s — WITHOUT materializing it: the coefficients
// stream straight from the PRG into an accumulator, with the power of v
// carried incrementally in the log domain. This is the client-share
// evaluation path: a containment check costs a PRG pass and zero
// allocations instead of a polynomial construction.
func (r *Ring) EvalStream(s *prg.Stream, v gf.Elem) gf.Elem {
	q := r.q32
	u := r.sampler
	if v == 0 {
		return s.Sample(u) // only c_0 · v^0 survives
	}
	t := r.f.Tables()
	lg, ex := t.Log, t.Exp
	logv := lg[v]
	var pw uint32 // log of v^i, updated incrementally mod N
	var acc gf.Elem
	if r.prime {
		for i := 0; i < r.n; i++ {
			c := s.Sample(u)
			if c != 0 {
				acc += ex[lg[c]+pw]
				if acc >= q {
					acc -= q
				}
			}
			pw += logv
			if pw >= t.N {
				pw -= t.N
			}
		}
		return acc
	}
	f := r.f
	for i := 0; i < r.n; i++ {
		c := s.Sample(u)
		if c != 0 {
			acc = f.Add(acc, ex[lg[c]+pw])
		}
		pw += logv
		if pw >= t.N {
			pw -= t.N
		}
	}
	return acc
}

// EvalStreamMany evaluates the stream-defined polynomial at every point
// in vs with a SINGLE pass over the PRG stream, writing results to out
// (len(out) ≥ len(vs)). The PRG work — the dominant cost of a client
// evaluation — is paid once however many points are asked of one node.
func (r *Ring) EvalStreamMany(s *prg.Stream, vs []gf.Elem, out []gf.Elem) {
	if len(vs) == 0 {
		return
	}
	if len(vs) == 1 {
		out[0] = r.EvalStream(s, vs[0])
		return
	}
	t := r.f.Tables()
	lg, ex := t.Log, t.Exp
	q := r.q32
	var logsArr, pwArr [8]uint32
	var logs, pw []uint32
	if len(vs) <= len(logsArr) {
		logs, pw = logsArr[:len(vs)], pwArr[:len(vs)]
	} else {
		logs, pw = make([]uint32, len(vs)), make([]uint32, len(vs))
	}
	for j, v := range vs {
		if v != 0 {
			logs[j] = lg[v]
		}
	}
	for j := range vs {
		out[j] = 0
	}
	prime := r.prime
	f := r.f
	u := r.sampler
	for i := 0; i < r.n; i++ {
		c := s.Sample(u)
		if c != 0 {
			lc := lg[c]
			for j, v := range vs {
				if v == 0 {
					if i == 0 {
						out[j] = c
					}
					continue
				}
				if prime {
					acc := out[j] + ex[lc+pw[j]]
					if acc >= q {
						acc -= q
					}
					out[j] = acc
				} else {
					out[j] = f.Add(out[j], ex[lc+pw[j]])
				}
			}
		}
		for j, v := range vs {
			if v == 0 {
				continue
			}
			p := pw[j] + logs[j]
			if p >= t.N {
				p -= t.N
			}
			pw[j] = p
		}
	}
}

// Bytes serializes p into exactly PolyBytes() bytes by radix-q packing
// (big-endian): the storage format matching the paper's
// (q−1)·log2(q)-bit cost accounting. Fixed width keeps rows uniform.
// The encoding runs on pooled limb vectors (see limb.go); AppendBytes
// is the allocation-free variant.
func (r *Ring) Bytes(p Poly) []byte {
	return r.AppendBytes(make([]byte, 0, r.polyBytes), p)
}

// FromBytes deserializes a polynomial previously produced by Bytes.
// DecodeInto is the variant that reuses a caller-supplied buffer.
func (r *Ring) FromBytes(b []byte) (Poly, error) {
	p := make(Poly, r.n)
	if err := r.DecodeInto(p, b); err != nil {
		return nil, err
	}
	return p, nil
}

// String renders p in conventional descending-degree notation, e.g.
// "2x^3 + 3x^2 + 2x + 3" (cf. the paper's Fig. 1).
func (r *Ring) String(p Poly) string {
	s := ""
	for i := r.n - 1; i >= 0; i-- {
		c := p[i]
		if c == 0 {
			continue
		}
		if s != "" {
			s += " + "
		}
		switch {
		case i == 0:
			s += fmt.Sprintf("%d", c)
		case i == 1:
			if c == 1 {
				s += "x"
			} else {
				s += fmt.Sprintf("%dx", c)
			}
		default:
			if c == 1 {
				s += fmt.Sprintf("x^%d", i)
			} else {
				s += fmt.Sprintf("%dx^%d", c, i)
			}
		}
	}
	if s == "" {
		return "0"
	}
	return s
}
