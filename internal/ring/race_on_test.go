//go:build race

package ring

// raceEnabled reports that the race detector is active: sync.Pool
// deliberately drops items under -race, so allocation-count assertions
// on pooled paths are skipped there.
const raceEnabled = true
