package ring

import (
	"testing"

	"encshare/internal/gf"
	"encshare/internal/prg"
)

func benchRings(b *testing.B) []*Ring {
	return []*Ring{
		MustNew(gf.MustNew(83, 1)), // the paper's parameters
		MustNew(gf.MustNew(5, 3)),  // extension field
	}
}

func benchPoly(r *Ring, idx uint64) Poly {
	return r.Rand(prg.New([]byte("ring-bench")).Stream("poly", idx))
}

func BenchmarkPolyCodec(b *testing.B) {
	for _, r := range benchRings(b) {
		p := benchPoly(r, 0)
		blob := r.Bytes(p)
		buf := make([]byte, 0, r.PolyBytes())
		dst := r.NewPoly()
		b.Run(r.Field().String()+"/encode", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				buf = r.AppendBytes(buf[:0], p)
			}
		})
		b.Run(r.Field().String()+"/decode", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := r.DecodeInto(dst, blob); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkRingEval(b *testing.B) {
	for _, r := range benchRings(b) {
		p := benchPoly(r, 0)
		b.Run(r.Field().String(), func(b *testing.B) {
			var acc gf.Elem
			for i := 0; i < b.N; i++ {
				acc = r.Eval(p, 2)
			}
			_ = acc
		})
	}
}

func BenchmarkRingEvalBatch(b *testing.B) {
	for _, r := range benchRings(b) {
		const k = 64
		polys := make([]Poly, k)
		for i := range polys {
			polys[i] = benchPoly(r, uint64(i))
		}
		out := make([]gf.Elem, k)
		b.Run(r.Field().String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r.EvalBatchInto(out, polys, 2)
			}
		})
	}
}
