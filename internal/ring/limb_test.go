package ring

import (
	"bytes"
	"math/rand"
	"testing"

	"encshare/internal/gf"
	"encshare/internal/prg"
)

// codecRings covers prime and extension fields, small and at the chunk
// boundaries (q near powers of two stress the q^k ≤ 2^63 chunk choice).
func codecRings(t testing.TB) []*Ring {
	return []*Ring{
		MustNew(gf.MustNew(5, 1)),
		MustNew(gf.MustNew(29, 1)),
		MustNew(gf.MustNew(83, 1)),
		MustNew(gf.MustNew(251, 1)),
		MustNew(gf.MustNew(3, 2)),
		MustNew(gf.MustNew(5, 3)),
		MustNew(gf.MustNew(2, 8)),
	}
}

// TestLimbCodecMatchesBigInt proves the limb codec is byte-for-byte the
// big.Int codec it replaced, across random, boundary, and adversarial
// inputs. The big.Int pair (BytesBig/FromBytesBig) is the retained
// oracle — its correctness is covered by the original round-trip tests.
func TestLimbCodecMatchesBigInt(t *testing.T) {
	for _, r := range codecRings(t) {
		name := r.Field().String()
		// Random polynomials drawn from the PRG, as the encoder produces.
		gen := prg.New([]byte("limb-codec"))
		polys := []Poly{
			r.NewPoly(), // all zero
			r.One(),
		}
		// All-max coefficients: the largest representable packed value.
		maxP := r.NewPoly()
		for i := range maxP {
			maxP[i] = r.Field().Q() - 1
		}
		polys = append(polys, maxP)
		for i := uint64(0); i < 32; i++ {
			polys = append(polys, r.Rand(gen.Stream("p", i)))
		}
		for pi, p := range polys {
			limb := r.Bytes(p)
			big := r.BytesBig(p)
			if !bytes.Equal(limb, big) {
				t.Fatalf("%s poly %d: limb encode differs from big.Int encode\nlimb %x\nbig  %x", name, pi, limb, big)
			}
			back, err := r.FromBytes(limb)
			if err != nil {
				t.Fatalf("%s poly %d: decode: %v", name, pi, err)
			}
			if !r.Equal(back, p) {
				t.Fatalf("%s poly %d: round-trip mismatch", name, pi)
			}
			bigBack, err := r.FromBytesBig(limb)
			if err != nil {
				t.Fatalf("%s poly %d: big decode: %v", name, pi, err)
			}
			if !r.Equal(bigBack, back) {
				t.Fatalf("%s poly %d: limb and big decode disagree", name, pi)
			}
		}
		// Adversarial blobs: random bytes must make BOTH decoders agree —
		// same polynomial or same rejection (the server is untrusted, so
		// the validation behavior is part of the protocol).
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 64; i++ {
			blob := make([]byte, r.PolyBytes())
			rng.Read(blob)
			if i%4 == 0 {
				// Bias toward the validity boundary: high bytes maxed.
				for j := 0; j < len(blob)/2; j++ {
					blob[j] = 0xFF
				}
			}
			lp, lerr := r.FromBytes(blob)
			bp, berr := r.FromBytesBig(blob)
			if (lerr == nil) != (berr == nil) {
				t.Fatalf("%s blob %d: limb err %v vs big err %v", name, i, lerr, berr)
			}
			if lerr == nil && !r.Equal(lp, bp) {
				t.Fatalf("%s blob %d: decoders disagree on valid blob", name, i)
			}
		}
		// Wrong-length blobs are rejected by both.
		if _, err := r.FromBytes(make([]byte, r.PolyBytes()+1)); err == nil {
			t.Fatalf("%s: oversized blob accepted", name)
		}
		if _, err := r.FromBytes(nil); err == nil && r.PolyBytes() != 0 {
			t.Fatalf("%s: empty blob accepted", name)
		}
	}
}

// TestDecodeIntoValidation covers the caller-buffer entry point's own
// checks.
func TestDecodeIntoValidation(t *testing.T) {
	r := MustNew(gf.MustNew(83, 1))
	blob := r.Bytes(r.One())
	if err := r.DecodeInto(make(Poly, r.N()-1), blob); err == nil {
		t.Fatal("short destination accepted")
	}
	if err := r.DecodeInto(r.NewPoly(), blob[:len(blob)-1]); err == nil {
		t.Fatal("short blob accepted")
	}
	dst := r.NewPoly()
	if err := r.DecodeInto(dst, blob); err != nil {
		t.Fatal(err)
	}
	if !r.Equal(dst, r.One()) {
		t.Fatal("DecodeInto produced wrong polynomial")
	}
}

// TestAppendBytesAppends checks AppendBytes composes with existing
// content and matches Bytes.
func TestAppendBytesAppends(t *testing.T) {
	r := MustNew(gf.MustNew(83, 1))
	p := r.Rand(prg.New([]byte("append")).Stream("p", 0))
	prefix := []byte{0xAA, 0xBB}
	out := r.AppendBytes(append([]byte(nil), prefix...), p)
	if !bytes.Equal(out[:2], prefix) {
		t.Fatal("AppendBytes clobbered the prefix")
	}
	if !bytes.Equal(out[2:], r.Bytes(p)) {
		t.Fatal("AppendBytes payload differs from Bytes")
	}
}

// TestCodecZeroAlloc pins the allocation-free property of the hot
// codec path — the headline claim of the limb rewrite.
func TestCodecZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under -race; allocation counts are meaningless")
	}
	r := MustNew(gf.MustNew(83, 1))
	p := r.Rand(prg.New([]byte("alloc")).Stream("p", 0))
	blob := r.Bytes(p)
	buf := make([]byte, 0, r.PolyBytes())
	dst := r.NewPoly()
	// Warm the limb pool first.
	_ = r.AppendBytes(buf[:0], p)
	if avg := testing.AllocsPerRun(200, func() {
		buf = r.AppendBytes(buf[:0], p)
		if err := r.DecodeInto(dst, blob); err != nil {
			t.Fatal(err)
		}
	}); avg > 0 {
		t.Fatalf("codec round-trip allocates %.1f objects/op, want 0", avg)
	}
}

// TestPolyPool checks the pooled buffers come back zeroed and reject
// foreign lengths.
func TestPolyPool(t *testing.T) {
	r := MustNew(gf.MustNew(5, 1))
	p := r.GetPoly()
	for i := range p {
		p[i] = 3
	}
	r.PutPoly(p)
	q := r.GetPoly()
	if !r.IsZero(q) {
		t.Fatal("pooled poly not zeroed")
	}
	r.PutPoly(make(Poly, r.N()+1)) // must be dropped, not corrupt the pool
	if got := r.GetPoly(); len(got) != r.N() {
		t.Fatalf("pool returned poly of length %d", len(got))
	}
	if !raceEnabled {
		// The Get/Put round trip must be allocation-free in steady state
		// (the wrapper boxes recycle; see polyBox).
		warm := r.GetPoly()
		r.PutPoly(warm)
		if avg := testing.AllocsPerRun(200, func() {
			p := r.GetPoly()
			r.PutPoly(p)
		}); avg > 0 {
			t.Fatalf("GetPoly/PutPoly allocates %.2f objects/op, want 0", avg)
		}
	}
}

// FuzzPolyCodec fuzzes the decoder pair: any blob must either be
// rejected by both decoders or produce identical polynomials, and a
// valid decode must re-encode to the original blob (the packing is a
// bijection on its range).
func FuzzPolyCodec(f *testing.F) {
	r := MustNew(gf.MustNew(83, 1))
	f.Add(r.Bytes(r.One()))
	f.Add(r.Bytes(r.Rand(prg.New([]byte("fuzz")).Stream("p", 0))))
	f.Add(make([]byte, r.PolyBytes()))
	f.Add(bytes.Repeat([]byte{0xFF}, r.PolyBytes()))
	f.Fuzz(func(t *testing.T, blob []byte) {
		lp, lerr := r.FromBytes(blob)
		bp, berr := r.FromBytesBig(blob)
		if (lerr == nil) != (berr == nil) {
			t.Fatalf("decoders disagree on validity: limb %v, big %v", lerr, berr)
		}
		if lerr != nil {
			return
		}
		if !r.Equal(lp, bp) {
			t.Fatal("decoders disagree on polynomial")
		}
		if !bytes.Equal(r.Bytes(lp), blob) {
			t.Fatal("re-encode does not reproduce the blob")
		}
	})
}
