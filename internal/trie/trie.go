// Package trie implements the paper's §4 enhancement: representing the
// textual data of an XML document as a trie of single-character nodes so
// that content (not just tag names) becomes searchable under the
// polynomial encoding.
//
// A data string is split into words; each word becomes a path of
// character nodes terminated by the sentinel character ⊥ (Terminator), cf.
// Fig. 2. Two representations exist:
//
//   - Compressed: words are inserted into a shared trie, so common
//     prefixes are stored once and duplicate words collapse entirely.
//     Order and cardinality of words are lost (the paper suggests adding
//     an encryption of the full string if that matters).
//   - Uncompressed: every word occurrence becomes its own chain, keeping
//     exactly the information of the original string.
//
// Queries like /name[contains(text(),"Joan")] become the path query
// /name[//j/o/a/n] after the same normalization (paper §4).
package trie

import (
	"fmt"
	"strings"
	"unicode"

	"encshare/internal/xmldoc"
)

// Terminator is the ⊥ end-of-word marker node name (paper Fig. 2).
const Terminator = "⊥"

// Mode selects the text representation.
type Mode int

const (
	// Off leaves text nodes unindexed (the §3 tag-only scheme).
	Off Mode = iota
	// Compressed merges words into a shared prefix trie (Fig. 2(b)).
	Compressed
	// Uncompressed keeps one chain per word occurrence (Fig. 2(c)).
	Uncompressed
)

func (m Mode) String() string {
	switch m {
	case Off:
		return "off"
	case Compressed:
		return "compressed"
	case Uncompressed:
		return "uncompressed"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Words splits a data string into normalized words: runs of letters or
// digits, lowercased. This is the "split a string into words" step of §4;
// the same normalization must be applied to query strings.
func Words(s string) []string {
	var out []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for _, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			cur.WriteRune(unicode.ToLower(r))
		} else {
			flush()
		}
	}
	flush()
	return out
}

// PathSteps returns the per-character node names of a single normalized
// word, e.g. "joan" -> [j o a n]. Multi-byte runes are single nodes.
func PathSteps(word string) []string {
	steps := make([]string, 0, len(word))
	for _, r := range word {
		steps = append(steps, string(r))
	}
	return steps
}

// Alphabet returns the distinct character node names needed to encode the
// given corpus of words, plus the Terminator — the name universe the map
// function must cover (it determines the minimal field size for content
// search).
func Alphabet(words []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, w := range words {
		for _, c := range PathSteps(w) {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	out = append(out, Terminator)
	return out
}

// BuildSubtree builds the trie representation of a data string as a list
// of sibling subtrees to be attached under the element that contained the
// text.
func BuildSubtree(text string, mode Mode) []*xmldoc.Node {
	words := Words(text)
	if len(words) == 0 || mode == Off {
		return nil
	}
	switch mode {
	case Uncompressed:
		var out []*xmldoc.Node
		for _, w := range words {
			out = append(out, chain(w))
		}
		return out
	case Compressed:
		// Insert words into a shared trie. Roots are first characters.
		rootIdx := map[string]*xmldoc.Node{}
		var roots []*xmldoc.Node
		for _, w := range words {
			steps := append(PathSteps(w), Terminator)
			first := steps[0]
			cur, ok := rootIdx[first]
			if !ok {
				cur = &xmldoc.Node{Name: first}
				rootIdx[first] = cur
				roots = append(roots, cur)
			}
			for _, step := range steps[1:] {
				var next *xmldoc.Node
				for _, c := range cur.Children {
					if c.Name == step {
						next = c
						break
					}
				}
				if next == nil {
					next = &xmldoc.Node{Name: step}
					cur.Children = append(cur.Children, next)
				}
				cur = next
			}
		}
		return roots
	}
	return nil
}

// chain builds the single-word path j -> o -> a -> n -> ⊥.
func chain(word string) *xmldoc.Node {
	steps := append(PathSteps(word), Terminator)
	root := &xmldoc.Node{Name: steps[0]}
	cur := root
	for _, s := range steps[1:] {
		next := &xmldoc.Node{Name: s}
		cur.Children = append(cur.Children, next)
		cur = next
	}
	return root
}

// TransformDoc rewrites a parsed document in place: the Text of every
// element is expanded into trie subtrees appended after the element's
// children, then the numbering is rebuilt. With mode Off the document is
// unchanged. Returns the number of synthetic nodes added.
func TransformDoc(d *xmldoc.Doc, mode Mode) int64 {
	if mode == Off || d.Root == nil {
		return 0
	}
	before := d.Count
	var rec func(n *xmldoc.Node)
	rec = func(n *xmldoc.Node) {
		// Expand children first: synthetic nodes have no text.
		for _, c := range n.Children {
			rec(c)
		}
		if n.Text != "" {
			n.Children = append(n.Children, BuildSubtree(n.Text, mode)...)
		}
	}
	rec(d.Root)
	d.Rebuild()
	return d.Count - before
}

// Stats quantifies the §4 storage claims for a corpus of text.
type Stats struct {
	Chars            int // total characters in normalized words (with repeats)
	UncompressedNode int // nodes in the uncompressed representation (incl. terminators)
	CompressedNodes  int // nodes in the compressed trie (incl. terminators)
	DistinctWords    int
	TotalWords       int
}

// Measure computes representation sizes for a text corpus.
func Measure(text string) Stats {
	words := Words(text)
	var st Stats
	st.TotalWords = len(words)
	distinct := map[string]bool{}
	for _, w := range words {
		st.Chars += len(PathSteps(w))
		distinct[w] = true
	}
	st.DistinctWords = len(distinct)
	st.UncompressedNode = st.Chars + st.TotalWords // + one terminator per word
	// Count compressed trie nodes by building it.
	roots := BuildSubtree(text, Compressed)
	var count func(n *xmldoc.Node) int
	count = func(n *xmldoc.Node) int {
		total := 1
		for _, c := range n.Children {
			total += count(c)
		}
		return total
	}
	for _, r := range roots {
		st.CompressedNodes += count(r)
	}
	return st
}
