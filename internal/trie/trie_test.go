package trie

import (
	"strings"
	"testing"
	"testing/quick"

	"encshare/internal/xmldoc"
)

func TestWords(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"Joan Johnson", "joan johnson"},
		{"  spaced   out  ", "spaced out"},
		{"comma,separated;words", "comma separated words"},
		{"MiXeD CaSe", "mixed case"},
		{"", ""},
		{"42 items", "42 items"},
		{"don't", "don t"},
	}
	for _, c := range cases {
		got := strings.Join(Words(c.in), " ")
		if got != c.want {
			t.Errorf("Words(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestPathSteps(t *testing.T) {
	steps := PathSteps("joan")
	if strings.Join(steps, "/") != "j/o/a/n" {
		t.Fatalf("PathSteps = %v", steps)
	}
	// Multi-byte runes are single steps.
	if got := PathSteps("héllo"); len(got) != 5 || got[1] != "é" {
		t.Fatalf("PathSteps(héllo) = %v", got)
	}
}

// TestFigure2 reproduces the paper's Fig. 2: "Joan Johnson" as compressed
// and uncompressed tries.
func TestFigure2(t *testing.T) {
	// Uncompressed: two chains j-o-a-n-⊥ and j-o-h-n-s-o-n-⊥.
	un := BuildSubtree("Joan Johnson", Uncompressed)
	if len(un) != 2 {
		t.Fatalf("uncompressed roots = %d, want 2", len(un))
	}
	if got := chainString(un[0]); got != "j/o/a/n/"+Terminator {
		t.Fatalf("first chain = %s", got)
	}
	if got := chainString(un[1]); got != "j/o/h/n/s/o/n/"+Terminator {
		t.Fatalf("second chain = %s", got)
	}

	// Compressed: shared j-o prefix, branching to a-n-⊥ and h-n-s-o-n-⊥.
	co := BuildSubtree("Joan Johnson", Compressed)
	if len(co) != 1 {
		t.Fatalf("compressed roots = %d, want 1", len(co))
	}
	j := co[0]
	if j.Name != "j" || len(j.Children) != 1 || j.Children[0].Name != "o" {
		t.Fatalf("compressed root structure wrong")
	}
	o := j.Children[0]
	if len(o.Children) != 2 {
		t.Fatalf("o has %d children, want 2 (a and h)", len(o.Children))
	}
	if o.Children[0].Name != "a" || o.Children[1].Name != "h" {
		t.Fatalf("o children = %s,%s", o.Children[0].Name, o.Children[1].Name)
	}
	// Compressed node count: j,o shared, then a,n,⊥ and h,n,s,o,n,⊥ = 11.
	if n := countNodes(co); n != 11 {
		t.Fatalf("compressed node count = %d, want 11", n)
	}
	// Uncompressed: (4+1) + (7+1) = 13.
	if n := countNodes(un); n != 13 {
		t.Fatalf("uncompressed node count = %d, want 13", n)
	}
}

func TestCompressedDeduplicates(t *testing.T) {
	// Duplicate words must collapse entirely in compressed mode.
	co := BuildSubtree("apple apple apple", Compressed)
	if n := countNodes(co); n != 6 { // a,p,p,l,e,⊥
		t.Fatalf("compressed 3x apple = %d nodes, want 6", n)
	}
	un := BuildSubtree("apple apple apple", Uncompressed)
	if n := countNodes(un); n != 18 {
		t.Fatalf("uncompressed 3x apple = %d nodes, want 18", n)
	}
}

func TestModeOff(t *testing.T) {
	if got := BuildSubtree("something", Off); got != nil {
		t.Fatal("Off mode produced nodes")
	}
}

func TestAlphabet(t *testing.T) {
	a := Alphabet([]string{"ab", "ba", "cc"})
	want := []string{"a", "b", "c", Terminator}
	if strings.Join(a, ",") != strings.Join(want, ",") {
		t.Fatalf("Alphabet = %v", a)
	}
}

func TestTransformDoc(t *testing.T) {
	d, err := xmldoc.ParseString(`<person><name>Joan Johnson</name><age>42</age></person>`)
	if err != nil {
		t.Fatal(err)
	}
	added := TransformDoc(d, Compressed)
	// name gains 11 nodes (shared j-o prefix), age gains 3 (4,2,⊥).
	if added != 14 {
		t.Fatalf("added = %d, want 14", added)
	}
	if d.Count != 3+14 {
		t.Fatalf("Count = %d", d.Count)
	}
	// Numbering must be rebuilt consistently.
	seen := map[int64]bool{}
	d.Walk(func(n *xmldoc.Node) bool {
		if seen[n.Pre] {
			t.Fatalf("duplicate pre %d", n.Pre)
		}
		seen[n.Pre] = true
		return true
	})
	// The trie path must hang under name: name/j/o/a/n and name/j/o/h/...
	name := d.Root.Children[0]
	if name.Name != "name" || len(name.Children) != 1 || name.Children[0].Name != "j" {
		t.Fatalf("trie not attached under name")
	}
}

func TestTransformDocOffIsNoop(t *testing.T) {
	d, _ := xmldoc.ParseString(`<a>text here</a>`)
	if added := TransformDoc(d, Off); added != 0 || d.Count != 1 {
		t.Fatalf("Off transform changed the document")
	}
}

func TestMeasureClaims(t *testing.T) {
	// Build a repetitive corpus like running text: compression must remove
	// a large fraction of nodes (paper: dedup ~50%, trie 75-80% on real
	// text; we assert directional claims on synthetic repetitive text).
	corpus := strings.Repeat("the quick brown fox jumps over the lazy dog the fox ", 40)
	st := Measure(corpus)
	if st.TotalWords <= st.DistinctWords {
		t.Fatalf("corpus not repetitive: %d total vs %d distinct", st.TotalWords, st.DistinctWords)
	}
	if st.CompressedNodes >= st.UncompressedNode/4 {
		t.Fatalf("compression too weak: %d compressed vs %d uncompressed",
			st.CompressedNodes, st.UncompressedNode)
	}
}

// TestCompressedSubsetProperty: every word inserted must be findable as a
// root-to-terminator path in the compressed trie.
func TestCompressedContainsAllWords(t *testing.T) {
	err := quick.Check(func(raw []string) bool {
		text := strings.Join(raw, " ")
		words := Words(text)
		roots := BuildSubtree(text, Compressed)
		for _, w := range words {
			if !hasPath(roots, append(PathSteps(w), Terminator)) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}

// TestNoSpuriousWholeWords: a word is represented iff its full path ends
// with a terminator; prefixes of inserted words must NOT appear as words.
func TestNoSpuriousWholeWords(t *testing.T) {
	roots := BuildSubtree("joan", Compressed)
	if hasPath(roots, append(PathSteps("joa"), Terminator)) {
		t.Fatal("prefix joa appears as a complete word")
	}
	if !hasPath(roots, PathSteps("joa")) {
		t.Fatal("prefix path joa missing (substring search relies on it)")
	}
}

func chainString(n *xmldoc.Node) string {
	var parts []string
	for n != nil {
		parts = append(parts, n.Name)
		if len(n.Children) == 0 {
			break
		}
		if len(n.Children) != 1 {
			return "BRANCHED"
		}
		n = n.Children[0]
	}
	return strings.Join(parts, "/")
}

func countNodes(roots []*xmldoc.Node) int {
	total := 0
	var rec func(n *xmldoc.Node)
	rec = func(n *xmldoc.Node) {
		total++
		for _, c := range n.Children {
			rec(c)
		}
	}
	for _, r := range roots {
		rec(r)
	}
	return total
}

func hasPath(roots []*xmldoc.Node, steps []string) bool {
	if len(steps) == 0 {
		return true
	}
	for _, r := range roots {
		if r.Name == steps[0] {
			if len(steps) == 1 {
				return true
			}
			if hasPath(r.Children, steps[1:]) {
				return true
			}
		}
	}
	return false
}

func BenchmarkTransformCompressed(b *testing.B) {
	src := `<doc><t>` + strings.Repeat("lorem ipsum dolor sit amet consectetur ", 20) + `</t></doc>`
	for i := 0; i < b.N; i++ {
		d, err := xmldoc.ParseString(src)
		if err != nil {
			b.Fatal(err)
		}
		TransformDoc(d, Compressed)
	}
}
