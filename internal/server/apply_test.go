package server_test

import (
	"testing"

	"encshare/internal/server"
)

// TestApplyUnnamedReload pins the v1-manifest SIGHUP path end to end:
// Apply with only the unnamed tenant must route tenantless clients to
// it, and a config change (new db path) must detach and re-attach it
// without losing the dispatch default or panicking.
func TestApplyUnnamedReload(t *testing.T) {
	alpha := newTenantFixture(t, alphaXML, "seed-alpha")
	beta := newTenantFixture(t, betaXML, "seed-beta")
	dir := t.TempDir()
	aDB := dumpFixture(t, alpha, dir, "a.db")
	bDB := dumpFixture(t, beta, dir, "b.db")

	rt := server.New(server.Config{})
	defer rt.Shutdown()
	if _, _, err := rt.Apply([]server.Tenant{{Path: aDB, P: 83}}, ""); err != nil {
		t.Fatal(err)
	}
	lc, _ := runtimeClient(t, rt, "", alpha)
	if n, err := lc.Count(); err != nil || n != alpha.nodes {
		t.Fatalf("first apply: %d, %v", n, err)
	}
	if _, _, err := rt.Apply([]server.Tenant{{Path: bDB, P: 83}}, ""); err != nil {
		t.Fatal(err)
	}
	lc2, _ := runtimeClient(t, rt, "", beta)
	if n, err := lc2.Count(); err != nil || n != beta.nodes {
		t.Fatalf("second apply: %d, %v", n, err)
	}
}
