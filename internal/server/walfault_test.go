package server_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"encshare/internal/filter"
	"encshare/internal/iofault"
	"encshare/internal/rmi"
	"encshare/internal/server"
	"encshare/internal/wal"
)

// noopBatch consumes a sequence and journals a record without touching
// the table (empty blob, no renumbering) — the smallest durable write.
func noopBatch(seq uint64) filter.MutationBatch {
	return filter.MutationBatch{
		Ver: filter.MutationBatchVersion, Seq: seq,
		Ops: []filter.RowOp{{Kind: filter.OpPatch, Pre: 2}},
	}
}

// TestStickyFsyncDegradesTenantReadOnly drives the whole degradation
// path through the runtime: an fsync failure on the tenant's WAL trips
// the sticky failure, every later mutation is refused with a typed,
// retryable error naming the tenant, reads keep serving, the log never
// sees another fsync attempt, and a restart over the same directory
// recovers exactly the durable prefix and accepts writes again.
func TestStickyFsyncDegradesTenantReadOnly(t *testing.T) {
	fx := newTenantFixture(t, alphaXML, "seed-sticky")
	ffs := iofault.New()
	dir := t.TempDir()

	rt := server.New(server.Config{Default: "alpha"})
	if err := rt.AttachStore(server.Tenant{Name: "alpha", P: 83, WALDir: dir, FS: ffs}, fx.st); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Shutdown)
	cli := rmi.Pipe(rt.RMI())
	cli.SetTenant("alpha")
	t.Cleanup(func() { cli.Close() })
	rem := filter.NewRemote(cli)

	// Healthy batch first: it must be durable across the failure.
	if _, err := rem.Mutate(noopBatch(1)); err != nil {
		t.Fatal(err)
	}

	// Every fsync from here on fails. The next mutation's covering sync
	// trips the sticky failure; the ack must NOT happen.
	ffs.FailSyncFrom(ffs.Counts().Syncs + 1)
	_, err := rem.Mutate(noopBatch(2))
	if !filter.IsWALFailed(err) {
		t.Fatalf("mutation over a failing disk got %v, want WALFailedError", err)
	}
	if !filter.Retryable(err) {
		t.Fatal("WALFailedError must be retryable (fail over to a healthy sibling)")
	}
	if !strings.Contains(err.Error(), `tenant "alpha"`) {
		t.Fatalf("error does not name the sick tenant: %v", err)
	}

	// Sticky: later mutations are refused BEFORE journaling, and the
	// log never retries an fsync (a disk that "recovers" must not be
	// trusted — the failed write's pages may be gone from cache).
	syncsAtTrip := ffs.Counts().Syncs
	if _, err := rem.Mutate(noopBatch(3)); !filter.IsWALFailed(err) {
		t.Fatalf("mutation after trip got %v, want WALFailedError", err)
	}
	ffs.FailSyncFrom(0) // disk "recovers" — too late
	if _, err := rem.Mutate(noopBatch(3)); !filter.IsWALFailed(err) {
		t.Fatalf("mutation after disk recovery got %v, want WALFailedError", err)
	}
	if got := ffs.Counts().Syncs; got != syncsAtTrip {
		t.Fatalf("fsync retried after the sticky trip: %d -> %d syncs", syncsAtTrip, got)
	}

	// Compaction must also refuse: a snapshot would promote state whose
	// durability was never confirmed.
	if err := rt.Compact("alpha"); err == nil {
		t.Fatal("Compact succeeded on a failed WAL")
	}

	// Reads keep flowing on the degraded tenant.
	c, _ := runtimeClient(t, rt, "alpha", fx)
	mustContain(t, c, "item", fx.m, true)

	// The counters tell the story for the operator.
	dw := rt.WALStats()["alpha"]
	if !dw.Failed || dw.StickyTrips == 0 || dw.SyncFailures == 0 {
		t.Fatalf("WALStats after trip = %+v, want failed with trips and sync failures", dw)
	}

	// Restart-and-replay is the only cure: detach, reattach over the
	// same directory on a healthy disk. Only the durable prefix (batch
	// 1) survives; the tenant accepts writes again at sequence 2.
	if err := rt.Detach("alpha"); err != nil {
		t.Fatal(err)
	}
	if err := rt.AttachStore(server.Tenant{Name: "alpha", P: 83, WALDir: dir}, fx.st); err != nil {
		t.Fatalf("reattach after restart: %v", err)
	}
	info, err := rem.Epoch()
	if err != nil {
		t.Fatal(err)
	}
	if info.LastSeq != 1 {
		t.Fatalf("recovered LastSeq = %d, want 1 (batch 2 was never durable)", info.LastSeq)
	}
	if _, err := rem.Mutate(noopBatch(2)); err != nil {
		t.Fatalf("mutation after restart: %v", err)
	}
	if dw := rt.WALStats()["alpha"]; dw.Failed {
		t.Fatal("tenant still marked failed after restart")
	}
}

// TestIdleCompactionFoldsLog pins the idle trigger: a tenant with
// CompactIdle folds its log into base.snap once writes go quiet, the
// log truncates to its header, sequences keep counting across the fold,
// and a tenant with CompactIdle zero never compacts on its own.
func TestIdleCompactionFoldsLog(t *testing.T) {
	fx := newTenantFixture(t, alphaXML, "seed-idle")
	dir := t.TempDir()
	rt := server.New(server.Config{Default: "alpha"})
	if err := rt.AttachStore(server.Tenant{Name: "alpha", P: 83, WALDir: dir, CompactIdle: 50 * time.Millisecond}, fx.st); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Shutdown)
	cli := rmi.Pipe(rt.RMI())
	cli.SetTenant("alpha")
	t.Cleanup(func() { cli.Close() })
	rem := filter.NewRemote(cli)

	for seq := uint64(1); seq <= 3; seq++ {
		if _, err := rem.Mutate(noopBatch(seq)); err != nil {
			t.Fatal(err)
		}
	}

	// The loop should fold once the 50ms window passes with no writes.
	snapPath := filepath.Join(dir, "base.snap")
	logPath := filepath.Join(dir, "wal.log")
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := os.Stat(logPath)
		if err == nil && st.Size() == 8 { // bare magic: log truncated
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("log never compacted (size %v, err %v)", st, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	seq, body, err := wal.OpenSnapshot(snapPath)
	if err != nil {
		t.Fatalf("snapshot after idle compaction: %v", err)
	}
	body.Close()
	if seq != 3 {
		t.Fatalf("snapshot sequence = %d, want 3", seq)
	}

	// Writes continue past the fold, sequence unbroken.
	if _, err := rem.Mutate(noopBatch(4)); err != nil {
		t.Fatalf("mutation after idle compaction: %v", err)
	}

	// CompactIdle zero means never: the log keeps its records.
	fx2 := newTenantFixture(t, betaXML, "seed-noidle")
	dir2 := t.TempDir()
	if err := rt.AttachStore(server.Tenant{Name: "beta", P: 83, WALDir: dir2}, fx2.st); err != nil {
		t.Fatal(err)
	}
	cli2 := rmi.Pipe(rt.RMI())
	cli2.SetTenant("beta")
	t.Cleanup(func() { cli2.Close() })
	if _, err := filter.NewRemote(cli2).Mutate(noopBatch(1)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)
	if _, err := os.Stat(filepath.Join(dir2, "base.snap")); err == nil {
		t.Fatal("tenant without CompactIdle compacted on its own")
	}
	if st, err := os.Stat(filepath.Join(dir2, "wal.log")); err != nil || st.Size() <= 8 {
		t.Fatalf("beta's log lost its records: %v, %v", st, err)
	}
}
