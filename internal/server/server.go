// Package server is the multi-tenant server runtime: everything a
// serving process does that is not pure query evaluation. It owns the
// rmi endpoint and its accept/dispatch loop, a registry of named
// tenants — each an independent encrypted shard table with its own
// store, field parameters, worker quota, and decoded-polynomial cache
// quota — and the process lifecycle (graceful drain on shutdown, live
// attach/detach for config reloads).
//
// The filter package stays pure: a ServerFilter evaluates queries
// against one store and knows nothing about listeners, tenants, or
// cache budgets. The runtime builds one filter per tenant, hands each
// a cache carved from the shared global budget (per-tenant segments by
// default, so one tenant's scan cannot evict another's hot set; one
// shared cache when quotas are disabled), and registers the filter's
// RMI methods under the tenant's name. Calls carrying no tenant — from
// pre-tenant client binaries, whose frames decode identically — route
// to the designated default tenant, so a single-tenant deployment
// upgrades in place.
package server

import (
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"encshare/internal/filter"
	"encshare/internal/gf"
	"encshare/internal/minisql"
	"encshare/internal/obs"
	"encshare/internal/ring"
	"encshare/internal/rmi"
	"encshare/internal/store"
	"encshare/internal/wal"
)

// Per-tenant durability files inside Tenant.WALDir.
const (
	walLogName  = "wal.log"
	walSnapName = "base.snap"
)

// Runtime-level RMI methods, registered in the global handler set so
// they answer under any tenant name (they run before a tenant is
// trusted to exist).
const (
	methodResolveTenant = "runtime.ResolveTenant"
	methodTenants       = "runtime.Tenants"
)

// DefaultCacheEntries is the decoded-polynomial cache quota a tenant
// gets when neither it nor the runtime budget says otherwise — the same
// default a standalone single-tenant server always had.
const DefaultCacheEntries = 4096

// tenantKeySpacing separates tenants' key ranges inside a shared cache:
// pre values are dense encoder-assigned positions, far below 2^44.
const tenantKeySpacing = int64(1) << 44

// unnamedKey is the rmi registry key of the unnamed (legacy
// single-tenant) tenant. It must NOT be the empty string: the empty
// key is the global handler set (runtime methods), which can never be
// dropped — registering the unnamed tenant there would make it
// impossible to detach and re-attach on a config reload. The NUL
// prefix keeps it out of the way of configured names (config
// validation requires non-empty names; a wire client naming it
// explicitly just reaches the default-tenant handlers, exactly as an
// empty tenant field would).
const unnamedKey = "\x00unnamed"

// regKey maps a tenant name to its rmi registry key.
func regKey(name string) string {
	if name == "" {
		return unnamedKey
	}
	return name
}

// Tenant describes one tenant's serving configuration.
type Tenant struct {
	// Name identifies the tenant in frame headers. Empty names the
	// legacy unnamed tenant (registered globally) — valid only for the
	// single-tenant layout.
	Name string
	// Path is the encoded database file to load (AttachFile).
	Path string
	// P, E are the field parameters the tenant's table was encoded
	// with (the server needs ring dimensions, not secrets).
	P, E uint32
	// Workers bounds the tenant's batch worker pool (0 = number of
	// CPUs).
	Workers int
	// CacheEntries is the tenant's decoded-polynomial cache quota
	// (0 = DefaultCacheEntries, negative disables). With a runtime
	// cache budget set, the quotas of all attached tenants may not
	// exceed it.
	CacheEntries int
	// WALDir, when set, makes the tenant's writes durable: mutation
	// batches journal to WALDir/wal.log before applying, compaction
	// folds the log into WALDir/base.snap, and AttachFile recovers
	// snapshot + log state in preference to Path. Empty means
	// mutations are accepted but die with the process.
	WALDir string
	// CompactBytes, when positive, folds the log into a snapshot
	// automatically once wal.log exceeds this many bytes (checked
	// after each applied batch). Zero leaves folding to
	// Runtime.Compact — the default, so operators (and the CI
	// byte-diff of replica logs) control when log bytes disappear.
	CompactBytes int64
	// CompactIdle, when positive, folds the log into a snapshot once the
	// tenant has gone this long without an applied batch — compaction
	// during the lull instead of mid-write-burst. Zero keeps the
	// PR 8 semantics: never fold on a timer, so replica logs stay
	// byte-comparable until an operator (or CompactBytes) folds them.
	CompactIdle time.Duration
	// FS is the filesystem the tenant's WAL and snapshots go through.
	// Nil means the real filesystem (wal.OS); tests install
	// internal/iofault to inject disk faults deterministically.
	FS wal.FS
	// WALPerAppendSync disables group-commit coalescing: every journaled
	// batch pays its own fdatasync. The pre-group-commit baseline, kept
	// for the mutation experiment's comparison arm.
	WALPerAppendSync bool
	// Engine selects the storage engine AttachFile builds the tenant's
	// table on ("" or "v2" = paged engine, "v1" = minisql oracle).
	// Ignored by AttachStore, where the caller already opened the store.
	Engine string
	// PoolPages bounds the tenant's v2 buffer pool. Zero derives a quota
	// from CacheEntries (see poolPages); ignored by the v1 engine.
	PoolPages int
}

func (t Tenant) quota() int {
	switch {
	case t.CacheEntries < 0:
		return 0
	case t.CacheEntries == 0:
		return DefaultCacheEntries
	default:
		return t.CacheEntries
	}
}

// poolPages is the tenant's buffer-pool quota in pages. Explicit
// PoolPages wins; otherwise it scales with the tenant's cache quota —
// the one budget knob operators already size per tenant — at one page
// per four cache entries, floored so small tenants still cover their
// tree depth and capped at the engine default.
func (t Tenant) poolPages() int {
	if t.PoolPages > 0 {
		return t.PoolPages
	}
	pages := t.quota() / 4
	if pages < 128 {
		pages = 128
	}
	if pages > store.DefaultPoolPages {
		pages = store.DefaultPoolPages
	}
	return pages
}

// Config tunes the runtime.
type Config struct {
	// CacheBudget caps the sum of all tenants' cache quotas (0 = no
	// cap). Attaching a tenant whose quota would exceed the budget
	// fails — the enforcement that keeps one tenant from starving the
	// others of cache memory.
	CacheBudget int
	// SharedCache disables per-tenant cache segmentation: every tenant
	// draws on one cache of CacheBudget entries (quotas "off"). Key
	// namespacing keeps correctness; isolation is gone — a noisy
	// tenant can evict its neighbors' hot sets. Kept for the
	// tenant-isolation experiment and as an explicit opt-out.
	SharedCache bool
	// Default names the tenant that calls without a tenant header route
	// to. Empty means the first attached tenant becomes the default.
	Default string
}

type tenantState struct {
	cfg   Tenant
	st    *store.Store
	dsn   string // fresh DSN to drop, when the runtime opened the store
	owned bool
	sf    *filter.ServerFilter
	mut   *filter.Mutable   // always set: the registered (writable) API
	log   *wal.Log          // nil when cfg.WALDir is empty
	cache *filter.PolyCache // nil when drawing on the shared cache

	// lastWrite is the UnixNano stamp of the last applied batch, read by
	// the idle-compaction loop (0 = nothing written this process life).
	lastWrite atomic.Int64
	// stop ends the idle-compaction goroutine; nil when none runs.
	stop chan struct{}
}

// Runtime hosts a set of tenants behind one rmi endpoint.
type Runtime struct {
	cfg Config
	srv *rmi.Server

	mu      sync.Mutex
	tenants map[string]*tenantState
	slots   int64 // next shared-cache key-namespace slot
	shared  *filter.PolyCache
	dflt    string
	l       net.Listener
	reg     *obs.Registry // created lazily by Metrics

	// fsyncH is the encshare_wal_fsync_seconds histogram once Metrics
	// has run; tenant logs observe through it via an atomic load so the
	// serving path never touches a registry before one exists.
	fsyncH atomic.Pointer[obs.Histogram]
}

// New creates an empty runtime and registers the runtime-level RMI
// methods (tenant resolution and listing).
func New(cfg Config) *Runtime {
	rt := &Runtime{cfg: cfg, srv: rmi.NewServer(), tenants: map[string]*tenantState{}}
	if cfg.SharedCache {
		size := cfg.CacheBudget
		if size == 0 {
			size = DefaultCacheEntries
		}
		rt.shared = filter.NewPolyCache(size)
	}
	rmi.HandleFunc(rt.srv, methodResolveTenant, func(name string) (string, error) {
		return rt.resolve(name)
	})
	rmi.HandleFunc(rt.srv, methodTenants, func(struct{}) ([]string, error) {
		return rt.Tenants(), nil
	})
	// The epoch gate brackets every read frame: it holds the tenant's
	// read lock across the handler (mutations cannot interleave with a
	// frame) and refuses frames pinned to an epoch the data has moved
	// past. Write and runtime methods bypass it — they take their own
	// locks or touch no tenant data.
	rt.srv.SetGate(func(tenant, method string, epoch uint64) (func(), error) {
		if filter.GateExempt(method) || strings.HasPrefix(method, "runtime.") {
			return nil, nil
		}
		rt.mu.Lock()
		name := tenant
		if name == "" {
			name = rt.dflt
		}
		ts := rt.tenants[name]
		rt.mu.Unlock()
		if ts == nil {
			return nil, nil // unknown tenant: dispatch reports it
		}
		return ts.mut.ReadLock(epoch)
	})
	if cfg.Default != "" {
		rt.setDefault(cfg.Default)
	}
	return rt
}

// RMI returns the runtime's rmi server, for callers that register
// additional methods (tests, future admin surfaces).
func (rt *Runtime) RMI() *rmi.Server { return rt.srv }

// resolve maps a caller-supplied tenant name ("" = default) to the
// attached tenant it would dispatch to.
func (rt *Runtime) resolve(name string) (string, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if name == "" {
		name = rt.dflt
	}
	if _, ok := rt.tenants[name]; !ok {
		return "", rmi.ErrUnknownTenant(name)
	}
	return name, nil
}

// Tenants returns the attached tenant names, sorted.
func (rt *Runtime) Tenants() []string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]string, 0, len(rt.tenants))
	for name := range rt.tenants {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Default returns the tenant name calls without a tenant header route
// to.
func (rt *Runtime) Default() string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.dflt
}

// setDefault records the default and points the rmi dispatcher at it.
// The empty name means "no named default": if the unnamed tenant is
// attached, tenantless frames dispatch to it (its registry key is
// unnamedKey, never the empty string). Caller must not hold rt.mu.
func (rt *Runtime) setDefault(name string) {
	rt.mu.Lock()
	rt.dflt = name
	_, hasUnnamed := rt.tenants[""]
	rt.mu.Unlock()
	key := name
	if name == "" && hasUnnamed {
		key = unnamedKey
	}
	rt.srv.SetDefaultTenant(key)
}

// budgetLeft returns how many cache entries of the budget remain,
// ignoring tenant skip. Caller holds rt.mu.
func (rt *Runtime) budgetLeft(skip string) int {
	left := rt.cfg.CacheBudget
	for name, ts := range rt.tenants {
		if name == skip {
			continue
		}
		left -= ts.cfg.quota()
	}
	return left
}

// AttachFile opens and loads tenant t into a fresh store and attaches
// it. The base state comes from t.WALDir/base.snap when that snapshot
// exists, t.Path otherwise; with a WALDir, the tail of wal.log is then
// replayed on top, so a restarted server recovers exactly the batches
// it acknowledged. The runtime owns the store: Detach (and a failed
// attach) closes it and drops its backing DSN.
func (rt *Runtime) AttachFile(t Tenant) error {
	eng, err := store.ParseEngine(t.Engine)
	if err != nil {
		return err
	}
	dsn := minisql.FreshDSN()
	st, err := store.OpenWith(dsn, store.Options{Engine: eng, PoolPages: t.poolPages()})
	if err != nil {
		return err
	}
	if err := st.Init(); err != nil {
		st.Close()
		minisql.Drop(dsn)
		return err
	}
	var lastSeq uint64
	fromSnap := false
	if t.WALDir != "" {
		seq, body, serr := wal.OpenSnapshotAt(tenantFS(t), filepath.Join(t.WALDir, walSnapName))
		switch {
		case serr == nil:
			err = st.Load(body)
			body.Close()
			lastSeq, fromSnap = seq, true
		case !errors.Is(serr, os.ErrNotExist):
			err = serr
		}
	}
	if err == nil && !fromSnap {
		var f *os.File
		f, err = os.Open(t.Path)
		if err == nil {
			err = st.Load(f)
			f.Close()
		}
	}
	if err == nil {
		err = rt.attach(t, st, dsn, true, lastSeq)
	}
	if err != nil {
		st.Close()
		minisql.Drop(dsn)
		return fmt.Errorf("server: attaching tenant %q from %s: %w", t.Name, t.Path, err)
	}
	return nil
}

// AttachStore attaches an already-open store as tenant t. The caller
// keeps ownership: Detach unregisters the tenant but leaves the store
// open. With a WALDir, wal.log is replayed over the caller's store
// (snapshots are not consulted — the caller supplies the base state).
func (rt *Runtime) AttachStore(t Tenant, st *store.Store) error {
	return rt.attach(t, st, "", false, 0)
}

func (rt *Runtime) attach(t Tenant, st *store.Store, dsn string, owned bool, lastSeq uint64) error {
	f, err := gf.New(normParams(t.P, t.E))
	if err != nil {
		return err
	}
	r, err := ring.New(f)
	if err != nil {
		return err
	}

	rt.mu.Lock()
	if _, dup := rt.tenants[t.Name]; dup {
		rt.mu.Unlock()
		return fmt.Errorf("server: tenant %q already attached", t.Name)
	}
	if rt.cfg.CacheBudget > 0 && !rt.cfg.SharedCache && t.quota() > rt.budgetLeft(t.Name) {
		left := rt.budgetLeft(t.Name)
		rt.mu.Unlock()
		return fmt.Errorf("server: tenant %q cache quota %d exceeds remaining budget %d (global budget %d)",
			t.Name, t.quota(), left, rt.cfg.CacheBudget)
	}
	opts := filter.ServerOptions{Workers: t.Workers}
	ts := &tenantState{cfg: t, st: st, dsn: dsn, owned: owned}
	if rt.shared != nil {
		opts.Cache = rt.shared
		opts.CacheKeyBase = rt.slots * tenantKeySpacing
		rt.slots++
	} else {
		ts.cache = filter.NewPolyCache(t.quota())
		opts.Cache = ts.cache
	}
	ts.sf = filter.NewServerFilterWith(st, r, opts)
	// The journal and compact hooks close over lg, which is assigned
	// only after wal.OpenAt returns: recovery replays through the
	// Mutable (below) but never journals or compacts, so the hooks fire
	// only once the log handle exists.
	fsys := tenantFS(t)
	var (
		lg      *wal.Log
		journal filter.JournalFunc
		compact func(uint64) error
	)
	if t.WALDir != "" {
		// Two-phase journal: staging orders the record in the log under
		// the Mutable's writer lock; the returned commit fsyncs OUTSIDE
		// it, so concurrent sessions' commits coalesce under the WAL's
		// commit leader (group commit).
		journal = func(p []byte) (func() error, error) {
			end, gen, err := lg.Write(p)
			if err != nil {
				return nil, err
			}
			return func() error { return lg.SyncTo(end, gen) }, nil
		}
		// Runs under the Mutable's writer lock after each applied batch:
		// no batch can interleave with the dump. It always stamps the
		// write clock for the idle-compaction loop; the size trigger
		// stays opt-in.
		compact = func(seq uint64) error {
			ts.lastWrite.Store(time.Now().UnixNano())
			if t.CompactBytes > 0 && lg.Size() >= t.CompactBytes {
				return compactTenant(fsys, t.WALDir, lg, st, seq)
			}
			return nil
		}
	}
	ts.mut = filter.NewMutable(ts.sf, lastSeq, journal, compact)
	if name := t.Name; name != "" {
		ts.mut.SetTenant(name)
	} else {
		ts.mut.SetTenant("default")
	}
	if t.WALDir != "" {
		// Recover the log tail: replay every journaled batch past the
		// base state's sequence, streamed one record at a time so a
		// long-lived log never has to fit in memory. Apply errors are
		// not fatal — a batch that failed deterministically when first
		// accepted fails identically here, and the store lands in the
		// same (prefix-applied) state it was in when the process died.
		// A sequence gap is fatal: the log does not follow from the
		// snapshot, so serving would diverge from the acked history.
		rec := 0
		l, lerr := wal.OpenAt(fsys, filepath.Join(t.WALDir, walLogName), func(payload []byte) error {
			b, derr := filter.DecodeBatch(payload)
			if derr != nil {
				return fmt.Errorf("server: wal record %d: %w", rec, derr)
			}
			if rerr := ts.mut.Replay(b); rerr != nil && filter.IsSeqGap(rerr) {
				return fmt.Errorf("server: wal record %d (seq %d): %w", rec, b.Seq, rerr)
			}
			rec++
			return nil
		})
		if lerr != nil {
			rt.mu.Unlock()
			return lerr
		}
		lg = l
		ts.log = lg
		lg.SetCoalesce(!t.WALPerAppendSync)
		lg.SetSyncObserver(func(d time.Duration) {
			if h := rt.fsyncH.Load(); h != nil {
				h.Observe(d)
			}
		})
		if t.CompactIdle > 0 {
			ts.stop = make(chan struct{})
			go rt.idleCompactLoop(t.Name, ts, t.CompactIdle)
		}
	}
	rt.tenants[t.Name] = ts
	needDefault := rt.dflt == "" && (rt.cfg.Default == "" || rt.cfg.Default == t.Name) && t.Name != ""
	rt.mu.Unlock()

	filter.RegisterServerAt(rt.srv, regKey(t.Name), ts.mut)
	switch {
	case needDefault:
		rt.setDefault(t.Name)
	case t.Name == "":
		// The unnamed tenant is the legacy single-tenant layout:
		// tenantless frames must dispatch to it. rt.dflt stays "" —
		// resolve("") already finds tenants[""] directly.
		rt.setDefault("")
	}
	return nil
}

// tenantFS resolves the filesystem the tenant's durability files go
// through (nil = the real one).
func tenantFS(t Tenant) wal.FS {
	if t.FS != nil {
		return t.FS
	}
	return wal.OS
}

// compactTenant folds the tenant's current table into base.snap at
// sequence lastSeq and truncates the log. Caller must hold the
// tenant's writer lock (Mutable.Compact, or the compact hook). The
// snapshot is fsynced before the truncate, which is what lets an
// in-flight group commit for a folded record report success.
func compactTenant(fsys wal.FS, dir string, lg *wal.Log, st *store.Store, lastSeq uint64) error {
	if err := wal.WriteSnapshotAt(fsys, filepath.Join(dir, walSnapName), lastSeq, st.Dump); err != nil {
		return err
	}
	return lg.Truncate()
}

// idleCompactLoop folds the tenant's log once writes have been idle for
// the window. Best-effort: a compaction error (including a sick WAL's
// refusal) leaves the log alone and the loop keeps watching.
func (rt *Runtime) idleCompactLoop(name string, ts *tenantState, window time.Duration) {
	every := window / 4
	if every < 10*time.Millisecond {
		every = 10 * time.Millisecond
	}
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-ts.stop:
			return
		case <-tick.C:
		}
		lw := ts.lastWrite.Load()
		if lw == 0 || ts.log.Records() == 0 || ts.mut.WALFailed() != nil {
			continue
		}
		if time.Since(time.Unix(0, lw)) < window {
			continue
		}
		rt.Compact(name)
	}
}

// Compact folds the named tenant's log into its snapshot now,
// excluding writers for the duration. Reads keep flowing — the table
// is not mutating under the dump.
func (rt *Runtime) Compact(name string) error {
	rt.mu.Lock()
	ts, ok := rt.tenants[name]
	rt.mu.Unlock()
	if !ok {
		return fmt.Errorf("server: tenant %q not attached", name)
	}
	if ts.log == nil {
		return fmt.Errorf("server: tenant %q has no write-ahead log", name)
	}
	return ts.mut.Compact(func(lastSeq uint64) error {
		return compactTenant(tenantFS(ts.cfg), ts.cfg.WALDir, ts.log, ts.st, lastSeq)
	})
}

// Detach unregisters the named tenant: subsequent frames naming it get
// an unknown-tenant error, and a runtime-owned store is closed and
// dropped. In-flight calls already dispatched may fail as the store
// goes away — detach during a drain, not under live tenant traffic.
func (rt *Runtime) Detach(name string) error {
	rt.mu.Lock()
	ts, ok := rt.tenants[name]
	if !ok {
		rt.mu.Unlock()
		return fmt.Errorf("server: tenant %q not attached", name)
	}
	delete(rt.tenants, name)
	wasDefault := rt.dflt == name
	rt.mu.Unlock()

	rt.srv.DropTenant(regKey(name))
	if wasDefault {
		rt.setDefault("")
	}
	if ts.stop != nil {
		close(ts.stop)
	}
	if ts.log != nil {
		ts.log.Close()
	}
	if ts.owned {
		ts.st.Close()
		minisql.Drop(ts.dsn)
	}
	return nil
}

// Apply reconciles the attached tenant set against want (a freshly
// reloaded config): tenants not yet attached are attached from their
// files, attached tenants missing from want are detached, and tenants
// whose configuration changed are detached and re-attached. It returns
// the names touched, and the first error with the reconciliation
// stopped at it (already-applied changes stay applied).
func (rt *Runtime) Apply(want []Tenant, dflt string) (attached, detached []string, err error) {
	wantByName := make(map[string]Tenant, len(want))
	for _, t := range want {
		wantByName[t.Name] = t
	}
	rt.mu.Lock()
	var toDetach []string
	for name, ts := range rt.tenants {
		w, keep := wantByName[name]
		if keep && w == ts.cfg {
			delete(wantByName, name) // unchanged
			continue
		}
		toDetach = append(toDetach, name)
	}
	rt.mu.Unlock()
	sort.Strings(toDetach)
	for _, name := range toDetach {
		if err := rt.Detach(name); err != nil {
			return attached, detached, err
		}
		detached = append(detached, name)
	}
	var toAttach []string
	for name := range wantByName {
		toAttach = append(toAttach, name)
	}
	sort.Strings(toAttach)
	for _, name := range toAttach {
		if err := rt.AttachFile(wantByName[name]); err != nil {
			return attached, detached, err
		}
		attached = append(attached, name)
	}
	if dflt != "" {
		rt.setDefault(dflt)
	} else if rt.Default() == "" {
		// The previous default was detached: fall back to the first
		// attached tenant, so legacy clients keep an endpoint.
		if names := rt.Tenants(); len(names) > 0 {
			rt.setDefault(names[0])
		}
	}
	return attached, detached, nil
}

// Metrics returns the runtime's metrics registry, creating and wiring
// it on first call: the rmi server's traffic counters and per-method
// latency histograms register directly, and a collector emits every
// attached tenant's work counters at scrape time — so tenants attached
// or detached after this call are always reflected, with no
// unregistration bookkeeping. Until the first call, nothing in the
// serving path touches a registry.
func (rt *Runtime) Metrics() *obs.Registry {
	rt.mu.Lock()
	if rt.reg != nil {
		defer rt.mu.Unlock()
		return rt.reg
	}
	reg := obs.NewRegistry()
	rt.reg = reg
	rt.mu.Unlock()

	rt.srv.SetMetrics(reg)
	reg.GaugeFunc("encshare_tenants", "attached tenants", nil, func() int64 {
		return int64(len(rt.Tenants()))
	})
	// The fsync histogram registers eagerly (an idle server still
	// exposes the family) and tenant logs observe into it via rt.fsyncH.
	rt.fsyncH.Store(reg.Histogram("encshare_wal_fsync_seconds", "WAL fdatasync latency", nil))
	reg.Collect(func(emit func(obs.Sample)) {
		for name, st := range rt.Stats() {
			if name == "" {
				name = "default"
			}
			lbl := obs.Labels{"tenant": name}
			emit(obs.Sample{Name: "encshare_tenant_evals_total", Help: "server-share evaluations", Type: obs.TypeCounter, Labels: lbl, Value: float64(st.Evals)})
			emit(obs.Sample{Name: "encshare_tenant_cache_hits_total", Help: "decoded-polynomial cache hits", Type: obs.TypeCounter, Labels: lbl, Value: float64(st.CacheHits)})
			emit(obs.Sample{Name: "encshare_tenant_cache_misses_total", Help: "decoded-polynomial cache misses", Type: obs.TypeCounter, Labels: lbl, Value: float64(st.CacheMisses)})
			emit(obs.Sample{Name: "encshare_tenant_decodes_total", Help: "share-blob decodes", Type: obs.TypeCounter, Labels: lbl, Value: float64(st.Decodes)})
			emit(obs.Sample{Name: "encshare_tenant_aggregates_total", Help: "aggregate fold frames served", Type: obs.TypeCounter, Labels: lbl, Value: float64(st.Aggregates)})
		}
		// Durability + lease families, emitted for every tenant (zeros
		// for WAL-less tenants) so scrapes always see the full set.
		// Appends/fsyncs is the group-commit batch-size ratio.
		for name, dw := range rt.WALStats() {
			if name == "" {
				name = "default"
			}
			lbl := obs.Labels{"tenant": name}
			failed := float64(0)
			if dw.Failed {
				failed = 1
			}
			emit(obs.Sample{Name: "encshare_wal_appends_total", Help: "mutation batches journaled", Type: obs.TypeCounter, Labels: lbl, Value: float64(dw.Appends)})
			emit(obs.Sample{Name: "encshare_wal_fsyncs_total", Help: "WAL fdatasyncs issued (group commit coalesces several appends into one)", Type: obs.TypeCounter, Labels: lbl, Value: float64(dw.Syncs)})
			emit(obs.Sample{Name: "encshare_wal_fsync_failures_total", Help: "WAL fdatasyncs that failed", Type: obs.TypeCounter, Labels: lbl, Value: float64(dw.SyncFailures)})
			emit(obs.Sample{Name: "encshare_wal_sticky_trips_total", Help: "transitions into the sticky WAL-failed (read-only) state", Type: obs.TypeCounter, Labels: lbl, Value: float64(dw.StickyTrips)})
			emit(obs.Sample{Name: "encshare_wal_failed", Help: "1 while the tenant is read-only with a failed WAL", Type: obs.TypeGauge, Labels: lbl, Value: failed})
			emit(obs.Sample{Name: "encshare_lease_acquires_total", Help: "writer-lease grants (extensions included)", Type: obs.TypeCounter, Labels: lbl, Value: float64(dw.LeaseAcquires)})
			emit(obs.Sample{Name: "encshare_lease_expirations_total", Help: "expired writer leases fenced or taken over", Type: obs.TypeCounter, Labels: lbl, Value: float64(dw.LeaseExpirations)})
		}
		// Buffer-pool families of the v2 storage engine, emitted for
		// every tenant (zeros on v1, which has no pool) so scrapes see a
		// stable set. Hits/(hits+misses) is the page hit rate.
		for name, ps := range rt.PoolStats() {
			if name == "" {
				name = "default"
			}
			lbl := obs.Labels{"tenant": name}
			emit(obs.Sample{Name: "encshare_pool_pages", Help: "buffer-pool frame capacity", Type: obs.TypeGauge, Labels: lbl, Value: float64(ps.Pages)})
			emit(obs.Sample{Name: "encshare_pool_resident", Help: "buffer-pool frames holding a page", Type: obs.TypeGauge, Labels: lbl, Value: float64(ps.Resident)})
			emit(obs.Sample{Name: "encshare_pool_hits_total", Help: "page fetches served from the pool", Type: obs.TypeCounter, Labels: lbl, Value: float64(ps.Hits)})
			emit(obs.Sample{Name: "encshare_pool_misses_total", Help: "page fetches that read the pager", Type: obs.TypeCounter, Labels: lbl, Value: float64(ps.Misses)})
			emit(obs.Sample{Name: "encshare_pool_evictions_total", Help: "pool frames recycled by the clock", Type: obs.TypeCounter, Labels: lbl, Value: float64(ps.Evictions)})
		}
	})
	return reg
}

// TenantWAL is one tenant's durability and lease counters.
type TenantWAL struct {
	Appends          uint64 // batches journaled
	Syncs            uint64 // fdatasyncs issued (< Appends under group commit)
	SyncFailures     uint64
	Failed           bool // sticky WAL failure: tenant is read-only
	StickyTrips      uint64
	LeaseAcquires    uint64
	LeaseExpirations uint64
}

// WALStats returns every tenant's durability counters (zeros for
// tenants without a WAL), keyed by tenant name.
func (rt *Runtime) WALStats() map[string]TenantWAL {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make(map[string]TenantWAL, len(rt.tenants))
	for name, ts := range rt.tenants {
		var tw TenantWAL
		if ts.log != nil {
			st := ts.log.Stats()
			tw.Appends, tw.Syncs, tw.SyncFailures = st.Appends, st.Syncs, st.SyncFailures
		}
		tw.Failed = ts.mut.WALFailed() != nil
		tw.StickyTrips = ts.mut.WALTrips()
		lst := ts.mut.LeaseStatsNow()
		tw.LeaseAcquires, tw.LeaseExpirations = lst.Acquires, lst.Expirations
		out[name] = tw
	}
	return out
}

// PoolStats returns every tenant's buffer-pool counters, keyed by
// tenant name. Tenants on the v1 engine (no pool) report zeros, so the
// metric families stay present across the fleet.
func (rt *Runtime) PoolStats() map[string]store.PoolStats {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make(map[string]store.PoolStats, len(rt.tenants))
	for name, ts := range rt.tenants {
		ps, _ := ts.st.PoolStats()
		out[name] = ps
	}
	return out
}

// Stats returns every tenant's server-side work counters, keyed by
// tenant name — isolated per tenant even when the cache is shared.
func (rt *Runtime) Stats() map[string]filter.ServerStats {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make(map[string]filter.ServerStats, len(rt.tenants))
	for name, ts := range rt.tenants {
		st, _ := ts.sf.ServerStats()
		out[name] = st
	}
	return out
}

// NodeCounts returns every tenant's stored-node count, for startup
// banners and smoke checks.
func (rt *Runtime) NodeCounts() (map[string]int64, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make(map[string]int64, len(rt.tenants))
	for name, ts := range rt.tenants {
		n, err := ts.st.Count()
		if err != nil {
			return nil, err
		}
		out[name] = n
	}
	return out, nil
}

// Serve accepts connections on l until the listener closes or Shutdown
// runs.
func (rt *Runtime) Serve(l net.Listener) error {
	rt.mu.Lock()
	rt.l = l
	rt.mu.Unlock()
	return rt.srv.Serve(l)
}

// Shutdown drains gracefully: the listener stops accepting, frames
// already being handled complete and reply, connections close, and
// owned tenant stores are released. Serve then returns nil.
func (rt *Runtime) Shutdown() {
	rt.mu.Lock()
	l := rt.l
	rt.l = nil
	rt.mu.Unlock()
	if l != nil {
		l.Close()
	}
	rt.srv.Shutdown()
	for _, name := range rt.Tenants() {
		rt.Detach(name)
	}
}

func normParams(p, e uint32) (uint32, uint32) {
	if e == 0 {
		e = 1
	}
	return p, e
}

// TenantError reports that a reachable, answering server cannot serve
// the requested tenant — it does not host it, or predates the tenant
// protocol entirely. Distinct from a transport failure: retrying or
// tolerating the server is wrong, the deployment is misconfigured.
type TenantError struct {
	Tenant string
	Err    error
}

func (e *TenantError) Error() string {
	return fmt.Sprintf("server: tenant %q: %v", e.Tenant, e.Err)
}

func (e *TenantError) Unwrap() error { return e.Err }

// ResolveTenant verifies, over an established client connection, that
// the server will dispatch this client's tenant, returning the resolved
// name (the default tenant's name for clients that set none). Old
// servers that predate the multi-tenant protocol pass the check for
// tenantless clients — their dispatch behavior is identical — and fail
// it with a *TenantError when a tenant was named, instead of silently
// answering from the wrong table.
func ResolveTenant(c *rmi.Client) (string, error) {
	tenant := c.Tenant()
	var name string
	err := c.Call(methodResolveTenant, tenant, &name)
	switch {
	case err == nil:
		return name, nil
	case rmi.IsUnknownMethod(err, methodResolveTenant):
		if tenant == "" {
			return "", nil // pre-tenant server, pre-tenant client: compatible
		}
		return "", &TenantError{Tenant: tenant, Err: errors.New("server predates the multi-tenant protocol")}
	case rmi.IsUnknownTenant(err, tenant):
		return "", &TenantError{Tenant: tenant, Err: err}
	default:
		return "", err
	}
}

// ListTenants asks a server for its attached tenant names (empty on
// pre-tenant servers).
func ListTenants(c *rmi.Client) ([]string, error) {
	var names []string
	err := c.Call(methodTenants, struct{}{}, &names)
	if rmi.IsUnknownMethod(err, methodTenants) {
		return nil, nil
	}
	return names, err
}
