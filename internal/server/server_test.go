package server_test

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"encshare/internal/encoder"
	"encshare/internal/filter"
	"encshare/internal/gf"
	"encshare/internal/mapping"
	"encshare/internal/minisql"
	"encshare/internal/prg"
	"encshare/internal/ring"
	"encshare/internal/rmi"
	"encshare/internal/secshare"
	"encshare/internal/server"
	"encshare/internal/store"
	"encshare/internal/xmldoc"
)

// tenantFixture is one encoded document with its own keys — one tenant
// of a multi-tenant runtime.
type tenantFixture struct {
	m      *mapping.Map
	scheme *secshare.Scheme
	st     *store.Store
	nodes  int64
}

func newTenantFixture(t testing.TB, xml, seed string) *tenantFixture {
	t.Helper()
	doc, err := xmldoc.ParseString(xml)
	if err != nil {
		t.Fatal(err)
	}
	f := gf.MustNew(83, 1)
	m, err := mapping.Generate(f, doc.Names())
	if err != nil {
		t.Fatal(err)
	}
	r := ring.MustNew(f)
	scheme := secshare.New(r, prg.New([]byte(seed)))
	dsn := minisql.FreshDSN()
	st, err := store.Open(dsn)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Init(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		st.Close()
		minisql.Drop(dsn)
	})
	if _, err := encoder.EncodeDoc(doc, encoder.Options{Map: m, Scheme: scheme}, st); err != nil {
		t.Fatal(err)
	}
	n, err := st.Count()
	if err != nil {
		t.Fatal(err)
	}
	return &tenantFixture{m: m, scheme: scheme, st: st, nodes: n}
}

const (
	alphaXML = `<site><regions><europe><item/><item/></europe></regions></site>`
	betaXML  = `<library><shelf><book/><book/><book/></shelf><shelf><book/></shelf></library>`
)

// client opens a filter client against rt for the named tenant ("" =
// legacy, no tenant header).
func runtimeClient(t testing.TB, rt *server.Runtime, tenant string, fx *tenantFixture) (*filter.Client, *rmi.Client) {
	t.Helper()
	cli := rmi.Pipe(rt.RMI())
	if tenant != "" {
		cli.SetTenant(tenant)
	}
	t.Cleanup(func() { cli.Close() })
	return filter.NewClient(filter.NewRemote(cli), fx.scheme), cli
}

// contains runs one containment check through the client filter — real
// shares, so a wrong tenant's table gives garbage sums, and a correct
// one gives the document truth.
func mustContain(t *testing.T, c *filter.Client, name string, m *mapping.Map, want bool) {
	t.Helper()
	root, err := c.Root()
	if err != nil {
		t.Fatal(err)
	}
	val, err := m.Value(name)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Contains(root.Pre, val)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("Contains(root, %s) = %v, want %v", name, got, want)
	}
}

func TestRuntimeServesTwoTenants(t *testing.T) {
	alpha := newTenantFixture(t, alphaXML, "seed-alpha")
	beta := newTenantFixture(t, betaXML, "seed-beta")
	rt := server.New(server.Config{})
	if err := rt.AttachStore(server.Tenant{Name: "alpha", P: 83}, alpha.st); err != nil {
		t.Fatal(err)
	}
	if err := rt.AttachStore(server.Tenant{Name: "beta", P: 83}, beta.st); err != nil {
		t.Fatal(err)
	}
	if got := rt.Tenants(); !reflect.DeepEqual(got, []string{"alpha", "beta"}) {
		t.Fatalf("Tenants = %v", got)
	}
	if rt.Default() != "alpha" {
		t.Fatalf("Default = %q, want first attached", rt.Default())
	}

	ac, _ := runtimeClient(t, rt, "alpha", alpha)
	bc, _ := runtimeClient(t, rt, "beta", beta)
	if n, err := ac.Count(); err != nil || n != alpha.nodes {
		t.Fatalf("alpha Count = %d, %v; want %d", n, err, alpha.nodes)
	}
	if n, err := bc.Count(); err != nil || n != beta.nodes {
		t.Fatalf("beta Count = %d, %v; want %d", n, err, beta.nodes)
	}
	mustContain(t, ac, "europe", alpha.m, true)
	mustContain(t, bc, "book", beta.m, true)

	// A legacy client (no tenant header) lands on the default tenant
	// and sees alpha's table, bit for bit.
	lc, _ := runtimeClient(t, rt, "", alpha)
	if n, err := lc.Count(); err != nil || n != alpha.nodes {
		t.Fatalf("legacy Count = %d, %v; want default tenant's %d", n, err, alpha.nodes)
	}
	mustContain(t, lc, "item", alpha.m, true)

	// An unknown tenant is rejected by name.
	uc, _ := runtimeClient(t, rt, "gamma", alpha)
	_, err := uc.Count()
	if !rmi.IsUnknownTenant(err, "gamma") {
		t.Fatalf("unknown tenant: got %v", err)
	}
}

// TestRuntimeStatsIsolated pins the satellite requirement: per-tenant
// hit/miss counters stay disjoint under interleaved multi-tenant load,
// and a tenantless client's stats are exactly the default tenant's.
func TestRuntimeStatsIsolated(t *testing.T) {
	alpha := newTenantFixture(t, alphaXML, "seed-alpha")
	beta := newTenantFixture(t, betaXML, "seed-beta")
	for _, shared := range []bool{false, true} {
		name := map[bool]string{false: "segmented", true: "shared-cache"}[shared]
		t.Run(name, func(t *testing.T) {
			rt := server.New(server.Config{CacheBudget: 1024, SharedCache: shared})
			if err := rt.AttachStore(server.Tenant{Name: "alpha", P: 83, CacheEntries: 512}, alpha.st); err != nil {
				t.Fatal(err)
			}
			if err := rt.AttachStore(server.Tenant{Name: "beta", P: 83, CacheEntries: 512}, beta.st); err != nil {
				t.Fatal(err)
			}
			ac, _ := runtimeClient(t, rt, "alpha", alpha)
			bc, _ := runtimeClient(t, rt, "beta", beta)
			// Interleaved load: alpha evaluates twice per node (miss
			// then hit), beta once (all misses).
			mustContain(t, ac, "europe", alpha.m, true)
			mustContain(t, bc, "book", beta.m, true)
			mustContain(t, ac, "europe", alpha.m, true)

			stats := rt.Stats()
			as, bs := stats["alpha"], stats["beta"]
			if as.Evals != 2 || bs.Evals != 1 {
				t.Errorf("evals alpha=%d beta=%d, want 2/1", as.Evals, bs.Evals)
			}
			if as.CacheHits != 1 || as.CacheMisses != 1 {
				t.Errorf("alpha cache hits/misses = %d/%d, want 1/1", as.CacheHits, as.CacheMisses)
			}
			if bs.CacheHits != 0 || bs.CacheMisses != 1 {
				t.Errorf("beta cache hits/misses = %d/%d, want 0/1 (alpha's traffic leaked)", bs.CacheHits, bs.CacheMisses)
			}
			// The wire-level StatsAPI sees the same isolation.
			aws, err := ac.ServerStats()
			if err != nil {
				t.Fatal(err)
			}
			if aws != as {
				t.Errorf("wire stats %+v != runtime stats %+v", aws, as)
			}
			// A tenantless (pre-tenant) client reads the default
			// tenant's counters — its view is unchanged by the other
			// tenants' existence.
			lc, _ := runtimeClient(t, rt, "", alpha)
			lws, err := lc.ServerStats()
			if err != nil {
				t.Fatal(err)
			}
			if lws != as {
				t.Errorf("legacy client stats %+v, want default tenant's %+v", lws, as)
			}
		})
	}
}

func TestRuntimeCacheBudget(t *testing.T) {
	alpha := newTenantFixture(t, alphaXML, "seed-alpha")
	beta := newTenantFixture(t, betaXML, "seed-beta")
	rt := server.New(server.Config{CacheBudget: 1000})
	if err := rt.AttachStore(server.Tenant{Name: "alpha", P: 83, CacheEntries: 800}, alpha.st); err != nil {
		t.Fatal(err)
	}
	err := rt.AttachStore(server.Tenant{Name: "beta", P: 83, CacheEntries: 400}, beta.st)
	if err == nil {
		t.Fatal("attach exceeding the cache budget succeeded")
	}
	if err := rt.AttachStore(server.Tenant{Name: "beta", P: 83, CacheEntries: 200}, beta.st); err != nil {
		t.Fatalf("attach within budget: %v", err)
	}
	// Detaching frees the quota.
	if err := rt.Detach("alpha"); err != nil {
		t.Fatal(err)
	}
	if err := rt.AttachStore(server.Tenant{Name: "gamma", P: 83, CacheEntries: 800}, alpha.st); err != nil {
		t.Fatalf("attach after detach freed budget: %v", err)
	}
}

func TestRuntimeDetach(t *testing.T) {
	alpha := newTenantFixture(t, alphaXML, "seed-alpha")
	beta := newTenantFixture(t, betaXML, "seed-beta")
	rt := server.New(server.Config{})
	if err := rt.AttachStore(server.Tenant{Name: "alpha", P: 83}, alpha.st); err != nil {
		t.Fatal(err)
	}
	if err := rt.AttachStore(server.Tenant{Name: "beta", P: 83}, beta.st); err != nil {
		t.Fatal(err)
	}
	ac, _ := runtimeClient(t, rt, "alpha", alpha)
	if err := rt.Detach("alpha"); err != nil {
		t.Fatal(err)
	}
	if _, err := ac.Count(); !rmi.IsUnknownTenant(err, "alpha") {
		t.Fatalf("after detach: got %v", err)
	}
	if err := rt.Detach("alpha"); err == nil {
		t.Fatal("double detach succeeded")
	}
	if got := rt.Tenants(); !reflect.DeepEqual(got, []string{"beta"}) {
		t.Fatalf("Tenants after detach = %v", got)
	}
}

// dumpFixture writes a fixture's table to a db file, as encshare-encode
// would.
func dumpFixture(t *testing.T, fx *tenantFixture, dir, name string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := fx.st.Dump(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRuntimeApply drives the SIGHUP reload path: attach from files,
// reconcile against a changed tenant table, and verify attach/detach
// and default reassignment.
func TestRuntimeApply(t *testing.T) {
	alpha := newTenantFixture(t, alphaXML, "seed-alpha")
	beta := newTenantFixture(t, betaXML, "seed-beta")
	dir := t.TempDir()
	alphaDB := dumpFixture(t, alpha, dir, "alpha.db")
	betaDB := dumpFixture(t, beta, dir, "beta.db")

	rt := server.New(server.Config{})
	defer rt.Shutdown()
	attached, detached, err := rt.Apply([]server.Tenant{
		{Name: "alpha", Path: alphaDB, P: 83},
		{Name: "beta", Path: betaDB, P: 83},
	}, "alpha")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(attached, []string{"alpha", "beta"}) || len(detached) != 0 {
		t.Fatalf("first apply: attached %v detached %v", attached, detached)
	}
	ac, _ := runtimeClient(t, rt, "alpha", alpha)
	if n, err := ac.Count(); err != nil || n != alpha.nodes {
		t.Fatalf("alpha over file-attached store: %d, %v", n, err)
	}

	// Second apply: alpha gone, beta unchanged (must NOT be
	// re-attached), gamma new; default moves off the detached tenant.
	attached, detached, err = rt.Apply([]server.Tenant{
		{Name: "beta", Path: betaDB, P: 83},
		{Name: "gamma", Path: alphaDB, P: 83},
	}, "")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(attached, []string{"gamma"}) || !reflect.DeepEqual(detached, []string{"alpha"}) {
		t.Fatalf("second apply: attached %v detached %v", attached, detached)
	}
	if rt.Default() == "alpha" || rt.Default() == "" {
		t.Fatalf("default still %q after its tenant detached", rt.Default())
	}
	if _, err := ac.Count(); !rmi.IsUnknownTenant(err, "alpha") {
		t.Fatalf("alpha after reload: %v", err)
	}
	gc, _ := runtimeClient(t, rt, "gamma", alpha)
	if n, err := gc.Count(); err != nil || n != alpha.nodes {
		t.Fatalf("gamma (alpha's data re-attached): %d, %v", n, err)
	}

	// Quota change on an attached tenant forces re-attach.
	attached, detached, err = rt.Apply([]server.Tenant{
		{Name: "beta", Path: betaDB, P: 83, CacheEntries: 64},
		{Name: "gamma", Path: alphaDB, P: 83},
	}, "")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(attached, []string{"beta"}) || !reflect.DeepEqual(detached, []string{"beta"}) {
		t.Fatalf("quota-change apply: attached %v detached %v", attached, detached)
	}
}

// TestUnnamedTenantDetachReattach pins the v1-manifest reload path: the
// unnamed (legacy single-tenant) tenant must detach cleanly and
// re-attach without a duplicate-handler panic, with tenantless clients
// routed to it throughout — and the runtime's global methods surviving
// the detach.
func TestUnnamedTenantDetachReattach(t *testing.T) {
	alpha := newTenantFixture(t, alphaXML, "seed-alpha")
	beta := newTenantFixture(t, betaXML, "seed-beta")
	rt := server.New(server.Config{})
	if err := rt.AttachStore(server.Tenant{P: 83}, alpha.st); err != nil {
		t.Fatal(err)
	}
	lc, _ := runtimeClient(t, rt, "", alpha)
	if n, err := lc.Count(); err != nil || n != alpha.nodes {
		t.Fatalf("unnamed tenant: %d, %v", n, err)
	}
	if err := rt.Detach(""); err != nil {
		t.Fatal(err)
	}
	if _, err := lc.Count(); err == nil {
		t.Fatal("detached unnamed tenant still answers")
	}
	// Global runtime methods survive the detach.
	cli := rmi.Pipe(rt.RMI())
	defer cli.Close()
	if _, err := server.ListTenants(cli); err != nil {
		t.Fatalf("runtime methods gone after unnamed detach: %v", err)
	}
	// Re-attach (the SIGHUP config-change path) — must not panic, and
	// must serve the new table.
	if err := rt.AttachStore(server.Tenant{P: 83}, beta.st); err != nil {
		t.Fatalf("re-attach after detach: %v", err)
	}
	lc2, _ := runtimeClient(t, rt, "", beta)
	if n, err := lc2.Count(); err != nil || n != beta.nodes {
		t.Fatalf("re-attached unnamed tenant: %d, %v", n, err)
	}
}

func TestResolveTenantDowngrade(t *testing.T) {
	// A pre-tenant server: plain rmi server with only filter methods.
	fx := newTenantFixture(t, alphaXML, "seed-alpha")
	old := rmi.NewServer()
	filter.RegisterServer(old, filter.NewServerFilter(fx.st, ring.MustNew(gf.MustNew(83, 1)), 0))

	cli := rmi.Pipe(old)
	defer cli.Close()
	if name, err := server.ResolveTenant(cli); err != nil || name != "" {
		t.Fatalf("tenantless client vs old server: %q, %v", name, err)
	}
	cli.SetTenant("alpha")
	_, err := server.ResolveTenant(cli)
	var te *server.TenantError
	if !errors.As(err, &te) {
		t.Fatalf("tenant client vs old server: %v, want TenantError", err)
	}

	// The unknown-METHOD downgrade branch (a true pre-PR binary
	// answers that way): a server that knows the tenant name but not
	// the resolve method must also yield a TenantError naming the
	// protocol gap.
	noResolve := rmi.NewServer()
	rmi.HandleFuncAt(noResolve, "alpha", "x", func(struct{}) (bool, error) { return true, nil })
	nrCli := rmi.Pipe(noResolve)
	defer nrCli.Close()
	nrCli.SetTenant("alpha")
	_, err = server.ResolveTenant(nrCli)
	if !errors.As(err, &te) || !strings.Contains(err.Error(), "predates") {
		t.Fatalf("unknown-method downgrade: %v", err)
	}
	nrCli.SetTenant("")
	if _, err := server.ResolveTenant(nrCli); err != nil {
		t.Fatalf("tenantless vs no-resolve server: %v", err)
	}

	// A runtime server resolves "" to the default tenant's name and
	// rejects unknown tenants with a TenantError-compatible reply.
	rt := server.New(server.Config{})
	if err := rt.AttachStore(server.Tenant{Name: "alpha", P: 83}, fx.st); err != nil {
		t.Fatal(err)
	}
	ncli := rmi.Pipe(rt.RMI())
	defer ncli.Close()
	if name, err := server.ResolveTenant(ncli); err != nil || name != "alpha" {
		t.Fatalf("default resolution: %q, %v", name, err)
	}
	ncli.SetTenant("nobody")
	if _, err := server.ResolveTenant(ncli); !errors.As(err, &te) {
		t.Fatalf("unknown tenant on runtime: %v", err)
	}
	if names, err := server.ListTenants(ncli); err != nil || !reflect.DeepEqual(names, []string{"alpha"}) {
		t.Fatalf("ListTenants = %v, %v", names, err)
	}
}
