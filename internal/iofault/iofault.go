// Package iofault is a fault-injection filesystem implementing wal.FS.
// It models the property that makes fsync errors dangerous: written
// data lives in volatile dirty pages until a successful Sync flushes
// it. Writes buffer in memory; Sync flushes the buffer to the inner
// filesystem and fsyncs it; a crash — or a failed sync — DROPS the
// buffer, so data that was written but never covered by a successful
// sync genuinely disappears at "restart" (reopening through the inner
// filesystem). That is exactly the kernel behavior that makes
// retrying a failed fsync unsound, and it lets tests prove the
// no-ack-before-covering-fsync invariant instead of assuming it.
//
// Faults trigger on global 1-based operation counters (per-op kind,
// shared across all files of the FS) so a test can deterministically
// say "the 3rd fsync fails" or "crash during the 7th write". After a
// crash every operation fails with ErrCrashed until the test opens a
// fresh FS over the same inner filesystem — the moral equivalent of a
// process restart after power loss.
package iofault

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"sync"

	"encshare/internal/wal"
)

// Injected fault errors. Tests match with errors.Is.
var (
	ErrSyncFailed = errors.New("iofault: injected fsync failure")
	ErrCrashed    = errors.New("iofault: filesystem crashed")
	ErrNoSpace    = errors.New("iofault: injected ENOSPC")
	ErrVanished   = errors.New("iofault: injected read failure (directory vanished)")
	ErrRename     = errors.New("iofault: injected rename failure")
)

// Counts reports how many operations of each kind the FS has seen —
// useful to calibrate "crash at write K" drills (run once cleanly,
// read Counts, then sweep K over the range).
type Counts struct {
	Writes  int
	Syncs   int
	Reads   int
	Renames int
}

// FS wraps an inner wal.FS (default: the real filesystem) with
// deterministic fault injection. Safe for concurrent use; one mutex
// serializes everything so operation counters are deterministic under
// a deterministic caller.
type FS struct {
	inner wal.FS

	mu      sync.Mutex
	counts  Counts
	crashed bool

	failSyncFrom int // every sync >= this fails (sticky disk sickness)
	failRenameAt int
	shortWriteAt int
	noSpaceAt    int
	crashAtWrite int
	vanishAtRead int // this read and every later op fail
	vanished     bool
}

// New returns an FS over the real filesystem.
func New() *FS { return NewWith(wal.OS) }

// NewWith returns an FS over inner. Reusing the same inner across a
// Crash models restart: data never covered by a successful Sync is
// gone.
func NewWith(inner wal.FS) *FS { return &FS{inner: inner} }

// FailSyncFrom makes the n-th (1-based) and every subsequent Sync fail
// with ErrSyncFailed, dropping the failing file's unflushed writes —
// the page-cache behavior that makes fsync retry unsound.
func (f *FS) FailSyncFrom(n int) { f.mu.Lock(); f.failSyncFrom = n; f.mu.Unlock() }

// FailRenameAt makes the n-th (1-based) Rename fail with ErrRename.
func (f *FS) FailRenameAt(n int) { f.mu.Lock(); f.failRenameAt = n; f.mu.Unlock() }

// ShortWriteAt makes the n-th (1-based) write a short write: only the
// first half of the buffer is accepted, and io.ErrShortWrite returned.
func (f *FS) ShortWriteAt(n int) { f.mu.Lock(); f.shortWriteAt = n; f.mu.Unlock() }

// NoSpaceAt makes the n-th (1-based) write fail with ErrNoSpace,
// accepting none of the buffer.
func (f *FS) NoSpaceAt(n int) { f.mu.Lock(); f.noSpaceAt = n; f.mu.Unlock() }

// CrashAtWrite crashes the filesystem during the n-th (1-based) write:
// half of that write's bytes reach the inner file as a torn tail, all
// dirty (unsynced) data is dropped, and every subsequent operation
// fails with ErrCrashed.
func (f *FS) CrashAtWrite(n int) { f.mu.Lock(); f.crashAtWrite = n; f.mu.Unlock() }

// VanishAtRead makes the n-th (1-based) read — and every operation
// after it — fail with ErrVanished, modeling the log's directory
// disappearing mid-recovery.
func (f *FS) VanishAtRead(n int) { f.mu.Lock(); f.vanishAtRead = n; f.mu.Unlock() }

// Crash drops all unsynced data immediately and fails every subsequent
// operation with ErrCrashed.
func (f *FS) Crash() { f.mu.Lock(); f.crashed = true; f.mu.Unlock() }

// Counts returns the operation counters so far.
func (f *FS) Counts() Counts { f.mu.Lock(); defer f.mu.Unlock(); return f.counts }

func (f *FS) gate() error {
	if f.crashed {
		return ErrCrashed
	}
	if f.vanished {
		return ErrVanished
	}
	return nil
}

// OpenFile implements wal.FS.
func (f *FS) OpenFile(name string, flag int, perm fs.FileMode) (wal.File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.gate(); err != nil {
		return nil, err
	}
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	file := &faultFile{fs: f, inner: inner, name: name}
	if flag&os.O_APPEND != 0 {
		inner.Close()
		return nil, fmt.Errorf("iofault: O_APPEND unsupported (write offsets would be ambiguous)")
	}
	return file, nil
}

// MkdirAll implements wal.FS.
func (f *FS) MkdirAll(dir string, perm fs.FileMode) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.gate(); err != nil {
		return err
	}
	return f.inner.MkdirAll(dir, perm)
}

// Rename implements wal.FS. The snapshot path relies on rename for
// atomic replacement, so it is a distinct injection point.
func (f *FS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.gate(); err != nil {
		return err
	}
	f.counts.Renames++
	if f.failRenameAt != 0 && f.counts.Renames == f.failRenameAt {
		return ErrRename
	}
	return f.inner.Rename(oldpath, newpath)
}

// Remove implements wal.FS.
func (f *FS) Remove(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.gate(); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

// writeOp is one buffered (dirty, unsynced) write.
type writeOp struct {
	off  int64
	data []byte
}

// faultFile wraps an inner file with the dirty-page buffer. All methods
// take the owning FS's mutex — counter determinism over concurrency.
type faultFile struct {
	fs     *FS
	inner  wal.File
	name   string
	dirty  []writeOp
	pos    int64 // sequential read/write position (Seek/Read/Write)
	closed bool
}

// flushLocked writes the dirty buffer through to the inner file.
func (ff *faultFile) flushLocked() error {
	for _, op := range ff.dirty {
		if _, err := ff.inner.WriteAt(op.data, op.off); err != nil {
			return err
		}
	}
	ff.dirty = nil
	return nil
}

// writeAtLocked is the shared write path for WriteAt and Write.
func (ff *faultFile) writeAtLocked(p []byte, off int64) (int, error) {
	f := ff.fs
	if err := f.gate(); err != nil {
		return 0, err
	}
	if ff.closed {
		return 0, fs.ErrClosed
	}
	f.counts.Writes++
	n := f.counts.Writes
	if f.crashAtWrite != 0 && n == f.crashAtWrite {
		// Torn tail: half this write persists, dirty data is lost.
		torn := append([]byte(nil), p[:len(p)/2]...)
		ff.inner.WriteAt(torn, off)
		f.crashed = true
		return 0, ErrCrashed
	}
	if f.noSpaceAt != 0 && n == f.noSpaceAt {
		return 0, ErrNoSpace
	}
	if f.shortWriteAt != 0 && n == f.shortWriteAt {
		half := len(p) / 2
		ff.dirty = append(ff.dirty, writeOp{off, append([]byte(nil), p[:half]...)})
		return half, io.ErrShortWrite
	}
	ff.dirty = append(ff.dirty, writeOp{off, append([]byte(nil), p...)})
	return len(p), nil
}

func (ff *faultFile) WriteAt(p []byte, off int64) (int, error) {
	ff.fs.mu.Lock()
	defer ff.fs.mu.Unlock()
	return ff.writeAtLocked(p, off)
}

func (ff *faultFile) Write(p []byte) (int, error) {
	ff.fs.mu.Lock()
	defer ff.fs.mu.Unlock()
	n, err := ff.writeAtLocked(p, ff.pos)
	ff.pos += int64(n)
	return n, err
}

func (ff *faultFile) Read(p []byte) (int, error) {
	ff.fs.mu.Lock()
	defer ff.fs.mu.Unlock()
	f := ff.fs
	if err := f.gate(); err != nil {
		return 0, err
	}
	if ff.closed {
		return 0, fs.ErrClosed
	}
	f.counts.Reads++
	if f.vanishAtRead != 0 && f.counts.Reads >= f.vanishAtRead {
		f.vanished = true
		return 0, ErrVanished
	}
	// Reads see the synced image plus the dirty buffer (the OS view of
	// a file with dirty pages).
	n, err := ff.readThrough(p, ff.pos)
	ff.pos += int64(n)
	return n, err
}

// readThrough reads from the inner file overlaid with dirty writes.
func (ff *faultFile) readThrough(p []byte, off int64) (int, error) {
	if _, err := ff.inner.Seek(off, io.SeekStart); err != nil {
		return 0, err
	}
	n, err := ff.inner.Read(p)
	// Overlay dirty ranges; extend n if a dirty write reaches past the
	// inner file's current end.
	for _, op := range ff.dirty {
		start := op.off - off
		for i, b := range op.data {
			idx := start + int64(i)
			if idx < 0 || idx >= int64(len(p)) {
				continue
			}
			p[idx] = b
			if int(idx)+1 > n {
				n = int(idx) + 1
			}
		}
	}
	if n > 0 && errors.Is(err, io.EOF) {
		err = nil
	}
	return n, err
}

func (ff *faultFile) Seek(offset int64, whence int) (int64, error) {
	ff.fs.mu.Lock()
	defer ff.fs.mu.Unlock()
	if err := ff.fs.gate(); err != nil {
		return 0, err
	}
	if ff.closed {
		return 0, fs.ErrClosed
	}
	if whence != io.SeekStart {
		return 0, fmt.Errorf("iofault: only SeekStart supported")
	}
	ff.pos = offset
	return offset, nil
}

func (ff *faultFile) Truncate(size int64) error {
	ff.fs.mu.Lock()
	defer ff.fs.mu.Unlock()
	if err := ff.fs.gate(); err != nil {
		return err
	}
	if ff.closed {
		return fs.ErrClosed
	}
	// Truncation discards dirty writes (they would land past or get cut
	// by the new length in ways the caller can't rely on anyway — the
	// wal only truncates as part of reset, which rewrites the header).
	ff.dirty = nil
	return ff.inner.Truncate(size)
}

func (ff *faultFile) Sync() error {
	ff.fs.mu.Lock()
	defer ff.fs.mu.Unlock()
	f := ff.fs
	if err := f.gate(); err != nil {
		return err
	}
	if ff.closed {
		return fs.ErrClosed
	}
	f.counts.Syncs++
	if f.failSyncFrom != 0 && f.counts.Syncs >= f.failSyncFrom {
		// The kernel reports the error once and drops the dirty pages.
		ff.dirty = nil
		return ErrSyncFailed
	}
	if err := ff.flushLocked(); err != nil {
		return err
	}
	return ff.inner.Sync()
}

func (ff *faultFile) Close() error {
	ff.fs.mu.Lock()
	defer ff.fs.mu.Unlock()
	if ff.closed {
		return nil
	}
	ff.closed = true
	// Close flushes buffered writes to the inner file (like the OS page
	// cache surviving a clean close) but does NOT sync — only a crash
	// or failed sync loses them.
	if !ff.fs.crashed {
		if err := ff.flushLocked(); err != nil {
			ff.inner.Close()
			return err
		}
	}
	return ff.inner.Close()
}
