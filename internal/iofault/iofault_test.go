package iofault

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"encshare/internal/wal"
)

func open(t *testing.T, f *FS, path string) wal.File {
	t.Helper()
	file, err := f.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	return file
}

func readAll(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	return b
}

// Written-but-unsynced data must not reach the inner file; synced data
// must.
func TestDirtyBufferSemantics(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	fs := New()
	f := open(t, fs, path)
	if _, err := f.WriteAt([]byte("hello"), 0); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	if got := readAll(t, path); len(got) != 0 {
		t.Fatalf("unsynced write reached disk: %q", got)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if got := readAll(t, path); string(got) != "hello" {
		t.Fatalf("after sync: %q", got)
	}
}

// A failed sync drops the dirty buffer: the unsynced write is gone even
// if a later sync succeeds — the exact page-cache trap sticky failure
// guards against.
func TestFailedSyncDropsDirty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	fs := New()
	fs.FailSyncFrom(1)
	f := open(t, fs, path)
	if _, err := f.WriteAt([]byte("doomed"), 0); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrSyncFailed) {
		t.Fatalf("Sync = %v, want ErrSyncFailed", err)
	}
	fs.FailSyncFrom(0) // disk "recovers"
	if err := f.Sync(); err != nil {
		t.Fatalf("second Sync: %v", err)
	}
	if got := readAll(t, path); len(got) != 0 {
		t.Fatalf("dropped write resurfaced: %q", got)
	}
}

// Crash freezes the FS and loses dirty data; half the crashing write
// persists as a torn tail.
func TestCrashAtWriteTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	fs := New()
	f := open(t, fs, path)
	if _, err := f.WriteAt([]byte("base"), 0); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	fs.CrashAtWrite(3) // 1:base 2:dirty 3:crash
	if _, err := f.WriteAt([]byte("dirty"), 4); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	if _, err := f.WriteAt([]byte("CRASHME!"), 9); !errors.Is(err, ErrCrashed) {
		t.Fatalf("crashing WriteAt = %v, want ErrCrashed", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash Sync = %v, want ErrCrashed", err)
	}
	got := readAll(t, path)
	// "base" synced; "dirty" dropped; first half of "CRASHME!" torn in
	// at offset 9.
	want := append([]byte("base"), 0, 0, 0, 0, 0)
	want = append(want, []byte("CRAS")...)
	if string(got) != string(want) {
		t.Fatalf("post-crash image = %q, want %q", got, want)
	}
}

func TestShortWriteAndNoSpace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	fs := New()
	fs.ShortWriteAt(1)
	fs.NoSpaceAt(2)
	f := open(t, fs, path)
	n, err := f.WriteAt([]byte("abcdef"), 0)
	if n != 3 || !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("short write = (%d, %v), want (3, ErrShortWrite)", n, err)
	}
	n, err = f.WriteAt([]byte("xyz"), 10)
	if n != 0 || !errors.Is(err, ErrNoSpace) {
		t.Fatalf("enospc write = (%d, %v), want (0, ErrNoSpace)", n, err)
	}
}

// Reads overlay the dirty buffer on the synced image — the live process
// sees its own unsynced writes, like the OS page cache.
func TestReadSeesDirty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	fs := New()
	f := open(t, fs, path)
	if _, err := f.WriteAt([]byte("unsynced"), 0); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		t.Fatalf("Seek: %v", err)
	}
	buf := make([]byte, 8)
	if _, err := io.ReadFull(f, buf); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if string(buf) != "unsynced" {
		t.Fatalf("read-through = %q", buf)
	}
}

func TestVanishAtRead(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	if err := os.WriteFile(path, []byte("0123456789"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs := New()
	fs.VanishAtRead(1)
	f := open(t, fs, path)
	if _, err := f.Read(make([]byte, 4)); !errors.Is(err, ErrVanished) {
		t.Fatalf("Read = %v, want ErrVanished", err)
	}
	// Vanish is sticky across all ops.
	if _, err := fs.OpenFile(path, os.O_RDONLY, 0); !errors.Is(err, ErrVanished) {
		t.Fatalf("OpenFile after vanish = %v, want ErrVanished", err)
	}
}

func TestRenameInjection(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a"), filepath.Join(dir, "b")
	if err := os.WriteFile(a, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs := New()
	fs.FailRenameAt(1)
	if err := fs.Rename(a, b); !errors.Is(err, ErrRename) {
		t.Fatalf("Rename = %v, want ErrRename", err)
	}
	if err := fs.Rename(a, b); err != nil {
		t.Fatalf("second Rename: %v", err)
	}
	if _, err := os.Stat(b); err != nil {
		t.Fatalf("rename target: %v", err)
	}
}

// Close flushes dirty data (clean shutdown) but Crash before Close
// loses it (power loss).
func TestCloseFlushesUnlessCrashed(t *testing.T) {
	dir := t.TempDir()
	clean, crashed := filepath.Join(dir, "clean"), filepath.Join(dir, "crashed")

	fs := New()
	f := open(t, fs, clean)
	f.WriteAt([]byte("kept"), 0)
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := readAll(t, clean); string(got) != "kept" {
		t.Fatalf("clean close lost data: %q", got)
	}

	fs2 := New()
	f2 := open(t, fs2, crashed)
	f2.WriteAt([]byte("lost"), 0)
	fs2.Crash()
	f2.Close()
	if got := readAll(t, crashed); len(got) != 0 {
		t.Fatalf("crashed close kept data: %q", got)
	}
}
