// Package xpath parses the XPath subset of the paper's query engines
// (§5.3): absolute paths of child (/) and descendant (//) steps over name
// tests, the wildcard * and the parent step .., plus trailing path
// predicates:
//
//	/site/*/person//city
//	/site//europe/item
//	/*/*/open_auction/bidder/date
//	//bidder/date
//	/name[contains(text(),"Joan")]     -- §4: becomes /name[//j/o/a/n]
//	/name[text()="joan"]               -- exact word: adds the ⊥ terminator
//	/site//person[//j/o/a/n]
//
// The package also contains a plaintext oracle evaluator used as ground
// truth by tests and by the accuracy experiment (Fig. 7).
package xpath

import (
	"fmt"
	"strings"

	"encshare/internal/trie"
)

// Axis is the navigation direction of one step.
type Axis int

const (
	// Child is the / axis.
	Child Axis = iota
	// Descendant is the // axis.
	Descendant
)

func (a Axis) String() string {
	if a == Descendant {
		return "//"
	}
	return "/"
}

// Step names with special meaning.
const (
	// Wildcard matches every node without an evaluation.
	Wildcard = "*"
	// ParentStep navigates to the parent (".." in the query).
	ParentStep = ".."
)

// Step is one navigation step.
type Step struct {
	Axis Axis
	Name string // a tag name, Wildcard, or ParentStep
}

// IsNameTest reports whether the step filters by an actual tag name
// (i.e. requires polynomial evaluations).
func (s Step) IsNameTest() bool {
	return s.Name != Wildcard && s.Name != ParentStep
}

func (s Step) String() string { return s.Axis.String() + s.Name }

// Query is a parsed query: a main path plus conjunctive relative
// predicates applied to the nodes the path reaches.
type Query struct {
	Steps []Step
	Preds []*Query // each evaluated relative to a result candidate
	Raw   string
}

func (q *Query) String() string {
	var sb strings.Builder
	for _, s := range q.Steps {
		sb.WriteString(s.String())
	}
	for _, p := range q.Preds {
		sb.WriteString("[")
		sb.WriteString(p.String())
		sb.WriteString("]")
	}
	return sb.String()
}

// Names returns the distinct name tests of the query in order of first
// appearance, including predicate names — the values the advanced
// engine's look-ahead checks.
func (q *Query) Names() []string {
	seen := map[string]bool{}
	var out []string
	var rec func(*Query)
	rec = func(qq *Query) {
		for _, s := range qq.Steps {
			if s.IsNameTest() && !seen[s.Name] {
				seen[s.Name] = true
				out = append(out, s.Name)
			}
		}
		for _, p := range qq.Preds {
			rec(p)
		}
	}
	rec(q)
	return out
}

// Length returns the number of steps in the main path (the x-axis of
// Fig. 5).
func (q *Query) Length() int { return len(q.Steps) }

// Parse parses a query string.
func Parse(src string) (*Query, error) {
	p := &parser{src: src}
	q, err := p.parseQuery(true)
	if err != nil {
		return nil, fmt.Errorf("xpath: parsing %q: %w", src, err)
	}
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("xpath: parsing %q: trailing input at %d", src, p.pos)
	}
	q.Raw = src
	return q, nil
}

// MustParse is Parse for known-good constant queries.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	src string
	pos int
}

func (p *parser) peek() byte {
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

// parseQuery parses steps and, when top is true, trailing predicates.
func (p *parser) parseQuery(top bool) (*Query, error) {
	q := &Query{}
	if p.peek() != '/' {
		return nil, fmt.Errorf("query must start with / or // at %d", p.pos)
	}
	for p.pos < len(p.src) && p.peek() == '/' {
		axis := Child
		p.pos++
		if p.peek() == '/' {
			axis = Descendant
			p.pos++
		}
		name, err := p.parseName()
		if err != nil {
			return nil, err
		}
		q.Steps = append(q.Steps, Step{Axis: axis, Name: name})
	}
	if !top {
		return q, nil
	}
	for p.peek() == '[' {
		pred, err := p.parsePredicate()
		if err != nil {
			return nil, err
		}
		q.Preds = append(q.Preds, pred...)
	}
	return q, nil
}

func (p *parser) parseName() (string, error) {
	start := p.pos
	if strings.HasPrefix(p.src[p.pos:], ParentStep) {
		p.pos += 2
		return ParentStep, nil
	}
	if p.peek() == '*' {
		p.pos++
		return Wildcard, nil
	}
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '/' || c == '[' || c == ']' {
			break
		}
		if c == '(' || c == ')' || c == '"' || c == '\'' || c == ',' || c == '=' {
			return "", fmt.Errorf("unexpected %q in name at %d", c, p.pos)
		}
		p.pos++
	}
	if p.pos == start {
		return "", fmt.Errorf("empty step name at %d", start)
	}
	return p.src[start:p.pos], nil
}

// parsePredicate parses one [...] group, which may expand to several
// conjunctive relative queries (multi-word contains()).
func (p *parser) parsePredicate() ([]*Query, error) {
	p.pos++ // consume '['
	var preds []*Query
	switch {
	case strings.HasPrefix(p.src[p.pos:], "contains(text(),"):
		p.pos += len("contains(text(),")
		lit, err := p.parseStringLit()
		if err != nil {
			return nil, err
		}
		if p.peek() != ')' {
			return nil, fmt.Errorf("expected ) at %d", p.pos)
		}
		p.pos++
		words := trie.Words(lit)
		if len(words) == 0 {
			return nil, fmt.Errorf("contains() needs at least one word")
		}
		for _, w := range words {
			preds = append(preds, wordQuery(w, false))
		}
	case strings.HasPrefix(p.src[p.pos:], "text()="):
		p.pos += len("text()=")
		lit, err := p.parseStringLit()
		if err != nil {
			return nil, err
		}
		words := trie.Words(lit)
		if len(words) == 0 {
			return nil, fmt.Errorf("text()= needs at least one word")
		}
		for _, w := range words {
			preds = append(preds, wordQuery(w, true))
		}
	default:
		sub, err := p.parseQuery(false)
		if err != nil {
			return nil, err
		}
		preds = append(preds, sub)
	}
	if p.peek() != ']' {
		return nil, fmt.Errorf("expected ] at %d", p.pos)
	}
	p.pos++
	return preds, nil
}

func (p *parser) parseStringLit() (string, error) {
	quote := p.peek()
	if quote != '"' && quote != '\'' {
		return "", fmt.Errorf("expected string literal at %d", p.pos)
	}
	p.pos++
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] != quote {
		p.pos++
	}
	if p.pos == len(p.src) {
		return "", fmt.Errorf("unterminated string literal at %d", start)
	}
	lit := p.src[start:p.pos]
	p.pos++
	return lit, nil
}

// wordQuery builds the §4 translation of a normalized word: the relative
// path //c1/c2/.../cn (plus the terminator for exact matches).
func wordQuery(word string, exact bool) *Query {
	steps := trie.PathSteps(word)
	q := &Query{}
	for i, c := range steps {
		axis := Child
		if i == 0 {
			axis = Descendant
		}
		q.Steps = append(q.Steps, Step{Axis: axis, Name: c})
	}
	if exact {
		q.Steps = append(q.Steps, Step{Axis: Child, Name: trie.Terminator})
	}
	return q
}
