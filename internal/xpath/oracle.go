package xpath

import (
	"sort"

	"encshare/internal/xmldoc"
)

// MatchMode selects how a name test accepts a node — mirroring the two
// tests of the encrypted engines so the oracle can predict both.
type MatchMode int

const (
	// MatchEqual accepts a node iff its own tag equals the name (the
	// equality / "strict" test).
	MatchEqual MatchMode = iota
	// MatchContain accepts a node iff the name occurs anywhere in its
	// subtree, including the node itself (the containment test).
	MatchContain
)

// Oracle evaluates queries directly on a plaintext document — the ground
// truth for engine tests and the E (equality) reference of the Fig. 7
// accuracy metric.
type Oracle struct {
	doc *xmldoc.Doc
	// subtreeTags[pre] is the set of tag names in the subtree of pre.
	subtreeTags map[int64]map[string]bool
}

// NewOracle precomputes subtree tag sets for containment matching.
func NewOracle(d *xmldoc.Doc) *Oracle {
	o := &Oracle{doc: d, subtreeTags: make(map[int64]map[string]bool, d.Count)}
	if d.Root != nil {
		o.fill(d.Root)
	}
	return o
}

func (o *Oracle) fill(n *xmldoc.Node) map[string]bool {
	tags := map[string]bool{n.Name: true}
	for _, c := range n.Children {
		for t := range o.fill(c) {
			tags[t] = true
		}
	}
	o.subtreeTags[n.Pre] = tags
	return tags
}

func (o *Oracle) matches(n *xmldoc.Node, name string, mode MatchMode) bool {
	if mode == MatchEqual {
		return n.Name == name
	}
	return o.subtreeTags[n.Pre][name]
}

// Eval runs the query, returning matching nodes in document order
// (deduplicated).
func (o *Oracle) Eval(q *Query, mode MatchMode) []*xmldoc.Node {
	if o.doc.Root == nil {
		return nil
	}
	frontier := o.evalSteps([]*xmldoc.Node{}, q.Steps, mode, true)
	// Apply predicates conjunctively.
	var out []*xmldoc.Node
	for _, n := range frontier {
		ok := true
		for _, p := range q.Preds {
			if len(o.evalSteps([]*xmldoc.Node{n}, p.Steps, mode, false)) == 0 {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, n)
		}
	}
	return out
}

// evalSteps applies steps to a frontier. When fromRoot is true the
// initial context is the virtual document root (whose only child is the
// document root and whose descendants are all nodes).
func (o *Oracle) evalSteps(frontier []*xmldoc.Node, steps []Step, mode MatchMode, fromRoot bool) []*xmldoc.Node {
	for i, s := range steps {
		var cands []*xmldoc.Node
		switch {
		case s.Name == ParentStep:
			for _, n := range frontier {
				if n.Parent != nil {
					cands = append(cands, n.Parent)
				}
			}
			frontier = dedup(cands)
			continue
		case s.Axis == Child:
			if i == 0 && fromRoot {
				cands = []*xmldoc.Node{o.doc.Root}
			} else {
				for _, n := range frontier {
					cands = append(cands, n.Children...)
				}
			}
		case s.Axis == Descendant:
			if i == 0 && fromRoot {
				o.doc.Walk(func(n *xmldoc.Node) bool {
					cands = append(cands, n)
					return true
				})
			} else {
				for _, n := range frontier {
					collectDescendants(n, &cands)
				}
			}
		}
		cands = dedup(cands)
		if s.Name == Wildcard {
			frontier = cands
			continue
		}
		var kept []*xmldoc.Node
		for _, c := range cands {
			if o.matches(c, s.Name, mode) {
				kept = append(kept, c)
			}
		}
		frontier = kept
	}
	return frontier
}

func collectDescendants(n *xmldoc.Node, out *[]*xmldoc.Node) {
	for _, c := range n.Children {
		*out = append(*out, c)
		collectDescendants(c, out)
	}
}

func dedup(nodes []*xmldoc.Node) []*xmldoc.Node {
	seen := map[int64]bool{}
	var out []*xmldoc.Node
	for _, n := range nodes {
		if !seen[n.Pre] {
			seen[n.Pre] = true
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pre < out[j].Pre })
	return out
}

// Pres extracts sorted pre numbers from a node list (handy for comparing
// against engine results).
func Pres(nodes []*xmldoc.Node) []int64 {
	out := make([]int64, len(nodes))
	for i, n := range nodes {
		out[i] = n.Pre
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
