package xpath

import "testing"

// FuzzParse guards the query parser against panics and checks that every
// accepted query round-trips through String and re-parses to the same
// form. Seeds cover every syntactic construct; run with
// `go test -fuzz=FuzzParse ./internal/xpath` for deeper exploration.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"/site",
		"//bidder/date",
		"/site/*/person//city",
		"/site/regions/../people",
		`/name[contains(text(),"Joan")]`,
		`/name[text()="joan"]`,
		"/site//person[//j/o/a/n]",
		"/a[/b][/c]",
		"///",
		"/[",
		"/site[contains(text(),",
		"/*",
		"//..",
		"/site]",
		"/site/regions/europe/item/description/parlist/listitem/text/keyword",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return // rejected input: fine, as long as it did not panic
		}
		// Accepted queries must round-trip stably.
		again, err := Parse(q.String())
		if err != nil {
			t.Fatalf("round-trip of %q -> %q failed: %v", src, q.String(), err)
		}
		if again.String() != q.String() {
			t.Fatalf("unstable round-trip: %q -> %q -> %q", src, q.String(), again.String())
		}
	})
}
