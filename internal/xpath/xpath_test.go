package xpath

import (
	"strings"
	"testing"

	"encshare/internal/trie"
	"encshare/internal/xmldoc"
)

func TestParsePaperQueries(t *testing.T) {
	// All queries from Tables 1 and 2 must parse and round-trip.
	queries := []string{
		"/site",
		"/site/regions",
		"/site/regions/europe",
		"/site/regions/europe/item",
		"/site/regions/europe/item/description",
		"/site/regions/europe/item/description/parlist",
		"/site/regions/europe/item/description/parlist/listitem",
		"/site/regions/europe/item/description/parlist/listitem/text",
		"/site/regions/europe/item/description/parlist/listitem/text/keyword",
		"/site//europe/item",
		"/site//europe//item",
		"/site/*/person//city",
		"/*/*/open_auction/bidder/date",
		"//bidder/date",
	}
	for _, src := range queries {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if q.String() != src {
			t.Errorf("round-trip %q -> %q", src, q.String())
		}
	}
}

func TestParseStructure(t *testing.T) {
	q := MustParse("/site/*/person//city")
	if q.Length() != 4 {
		t.Fatalf("Length = %d", q.Length())
	}
	want := []Step{
		{Child, "site"}, {Child, "*"}, {Child, "person"}, {Descendant, "city"},
	}
	for i, s := range q.Steps {
		if s != want[i] {
			t.Fatalf("step %d = %v, want %v", i, s, want[i])
		}
	}
	if !q.Steps[0].IsNameTest() || q.Steps[1].IsNameTest() {
		t.Fatal("IsNameTest wrong")
	}
	names := q.Names()
	if strings.Join(names, ",") != "site,person,city" {
		t.Fatalf("Names = %v", names)
	}
}

func TestParseParentStep(t *testing.T) {
	q := MustParse("/site/regions/../people")
	if q.Steps[2].Name != ParentStep {
		t.Fatalf("steps = %v", q.Steps)
	}
}

func TestParseContainsPredicate(t *testing.T) {
	// The paper's §4 example: /name[contains(text(),"Joan")] becomes
	// /name[//j/o/a/n].
	q := MustParse(`/name[contains(text(),"Joan")]`)
	if len(q.Preds) != 1 {
		t.Fatalf("preds = %d", len(q.Preds))
	}
	if got := q.Preds[0].String(); got != "//j/o/a/n" {
		t.Fatalf("pred = %s, want //j/o/a/n", got)
	}
	// Multi-word contains: one predicate per word.
	q = MustParse(`/name[contains(text(),"Joan Johnson")]`)
	if len(q.Preds) != 2 {
		t.Fatalf("preds = %d", len(q.Preds))
	}
	if q.Preds[1].String() != "//j/o/h/n/s/o/n" {
		t.Fatalf("pred 2 = %s", q.Preds[1].String())
	}
}

func TestParseExactTextPredicate(t *testing.T) {
	q := MustParse(`/name[text()="joan"]`)
	want := "//j/o/a/n/" + trie.Terminator
	if got := q.Preds[0].String(); got != want {
		t.Fatalf("pred = %s, want %s", got, want)
	}
}

func TestParsePathPredicate(t *testing.T) {
	q := MustParse(`/site//person[//j/o/a/n]`)
	if len(q.Preds) != 1 || q.Preds[0].String() != "//j/o/a/n" {
		t.Fatalf("preds = %v", q.Preds)
	}
	// Multiple predicates are conjunctive.
	q = MustParse(`/site//person[/name][//city]`)
	if len(q.Preds) != 2 {
		t.Fatalf("preds = %d", len(q.Preds))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"site",                       // missing leading slash
		"/",                          // empty step
		"/site/",                     // trailing empty step
		"/site[",                     // unterminated predicate
		"/site[/x",                   // unterminated predicate
		`/site[contains(text(),"")]`, // no words
		`/site[contains(text(),"x)]`, // unterminated literal
		"/site]extra",                // trailing garbage
		"/si(te",                     // bad character
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

const oracleXML = `<site>
  <regions>
    <europe><item><name/></item><item><name/></item></europe>
    <asia><item><name/></item></asia>
  </regions>
  <people>
    <person><name/><address><city/></address></person>
    <person><name/></person>
  </people>
  <open_auctions>
    <open_auction><bidder><date/></bidder><bidder><date/></bidder></open_auction>
  </open_auctions>
</site>`

func oracleDoc(t *testing.T) (*xmldoc.Doc, *Oracle) {
	t.Helper()
	d, err := xmldoc.ParseString(oracleXML)
	if err != nil {
		t.Fatal(err)
	}
	return d, NewOracle(d)
}

func countByName(d *xmldoc.Doc, name string) int {
	n := 0
	d.Walk(func(m *xmldoc.Node) bool {
		if m.Name == name {
			n++
		}
		return true
	})
	return n
}

func TestOracleEqualBasics(t *testing.T) {
	d, o := oracleDoc(t)
	cases := []struct {
		q    string
		want int
	}{
		{"/site", 1},
		{"/site/regions", 1},
		{"/site/regions/europe/item", 2},
		{"/site//item", 3},
		{"//item", 3},
		{"//item/name", 3},
		{"/site/*/person", 2},
		{"/site/*/person//city", 1},
		{"//bidder/date", 2},
		{"/*/*/open_auction/bidder/date", 2},
		{"//city", countByName(d, "city")},
		{"/nonexistent", 0},
		{"/site/regions/../people/person", 2},
	}
	for _, c := range cases {
		got := o.Eval(MustParse(c.q), MatchEqual)
		if len(got) != c.want {
			t.Errorf("oracle(%s) = %d nodes, want %d", c.q, len(got), c.want)
		}
	}
}

func TestOracleContainSuperset(t *testing.T) {
	_, o := oracleDoc(t)
	for _, q := range []string{
		"/site//europe/item", "/site/*/person//city", "//bidder/date",
		"/site/regions/europe/item",
	} {
		query := MustParse(q)
		eq := Pres(o.Eval(query, MatchEqual))
		co := Pres(o.Eval(query, MatchContain))
		set := map[int64]bool{}
		for _, p := range co {
			set[p] = true
		}
		for _, p := range eq {
			if !set[p] {
				t.Errorf("%s: equality result %d missing from containment result", q, p)
			}
		}
		if len(eq) > len(co) {
			t.Errorf("%s: E=%d > C=%d", q, len(eq), len(co))
		}
	}
}

// TestOracleAccuracyAbsoluteQueries: absolute child-only queries have
// E == C only in their final step... the paper's Fig. 7 shows 100%
// accuracy for queries without //. Verify the containment result of a
// child-only query over leaf targets equals the equality result.
func TestOracleAbsoluteLeafQueryExact(t *testing.T) {
	_, o := oracleDoc(t)
	q := MustParse("/site/regions/europe/item/name")
	eq := Pres(o.Eval(q, MatchEqual))
	co := Pres(o.Eval(q, MatchContain))
	if len(eq) != len(co) {
		t.Fatalf("leaf-targeted absolute query: E=%d C=%d", len(eq), len(co))
	}
}

func TestOracleDocOrderAndDedup(t *testing.T) {
	_, o := oracleDoc(t)
	nodes := o.Eval(MustParse("//item"), MatchEqual)
	for i := 1; i < len(nodes); i++ {
		if nodes[i-1].Pre >= nodes[i].Pre {
			t.Fatal("oracle result not in document order / contains duplicates")
		}
	}
}

func TestOraclePredicates(t *testing.T) {
	d, err := xmldoc.ParseString(`<people><person><name>x</name></person><person><age>4</age></person></people>`)
	if err != nil {
		t.Fatal(err)
	}
	o := NewOracle(d)
	got := o.Eval(MustParse("/people/person[/name]"), MatchEqual)
	if len(got) != 1 || got[0].Pre != 2 {
		t.Fatalf("predicate filter = %v", Pres(got))
	}
	got = o.Eval(MustParse("/people/person[/name][/age]"), MatchEqual)
	if len(got) != 0 {
		t.Fatal("conjunctive predicates not both applied")
	}
}

func TestOracleTriePredicate(t *testing.T) {
	d, err := xmldoc.ParseString(`<people><person><name>Joan</name></person><person><name>Bob</name></person></people>`)
	if err != nil {
		t.Fatal(err)
	}
	trie.TransformDoc(d, trie.Compressed)
	o := NewOracle(d)
	got := o.Eval(MustParse(`/people/person[contains(text(),"Joan")]`), MatchEqual)
	if len(got) != 1 {
		t.Fatalf("trie predicate matched %d persons, want 1", len(got))
	}
	if got[0].Children[0].Name != "name" {
		t.Fatalf("matched wrong node")
	}
	// Prefix search: "jo" matches Joan only.
	got = o.Eval(MustParse(`/people/person[contains(text(),"jo")]`), MatchEqual)
	if len(got) != 1 {
		t.Fatalf("prefix predicate matched %d, want 1", len(got))
	}
	// Exact word: "joa" must NOT match (no terminator after a).
	got = o.Eval(MustParse(`/people/person[text()="joa"]`), MatchEqual)
	if len(got) != 0 {
		t.Fatalf("exact-word predicate matched prefix")
	}
	got = o.Eval(MustParse(`/people/person[text()="joan"]`), MatchEqual)
	if len(got) != 1 {
		t.Fatalf("exact-word predicate missed the word")
	}
}
