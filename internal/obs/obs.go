// Package obs is the repo's observability core: a dependency-free
// metrics registry (atomic counters, gauges, log-bucketed latency
// histograms) with Prometheus text and JSON exposition, plus the query
// tracer (trace.go) whose span trees Session.Trace renders.
//
// Design constraints, in order:
//
//   - Zero cost when unused. Nothing in the hot path touches a registry
//     unless one was explicitly attached; instruments are plain atomics,
//     so an attached registry costs one atomic add per event.
//   - No double accounting. Subsystems that already keep atomic counters
//     (rmi traffic, cluster failovers, per-tenant filter stats) register
//     *func-backed* instruments that read the live counter at scrape
//     time instead of maintaining a second copy.
//   - Dynamic label sets without unregistration. Per-tenant metrics come
//     and go with attach/detach; a Collect callback enumerates whatever
//     exists at scrape time, so detaching a tenant never leaves a stale
//     series behind.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels is one metric series' label set. Exposition sorts keys, so any
// map order is fine.
type Labels map[string]string

// signature is the canonical form of a label set, used to dedupe
// get-or-create registration.
func (l Labels) signature() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", k, l[k])
	}
	return sb.String()
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (n must be >= 0 for the exposition to
// stay a valid Prometheus counter).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic gauge: a value that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Metric types, as exposed in Sample.Type and the Prometheus TYPE line.
const (
	TypeCounter   = "counter"
	TypeGauge     = "gauge"
	TypeHistogram = "histogram"
)

// Sample is one gathered metric series: a point-in-time value with its
// identity. Histograms carry a snapshot instead of a scalar.
type Sample struct {
	Name   string
	Help   string
	Type   string
	Labels Labels
	Value  float64
	Hist   *HistSnapshot
}

// instrument is one registered series.
type instrument struct {
	name   string
	help   string
	typ    string
	labels Labels
	sig    string

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() int64 // func-backed counter/gauge
}

func (in *instrument) sample() Sample {
	s := Sample{Name: in.name, Help: in.help, Type: in.typ, Labels: in.labels}
	switch {
	case in.fn != nil:
		s.Value = float64(in.fn())
	case in.counter != nil:
		s.Value = float64(in.counter.Load())
	case in.gauge != nil:
		s.Value = float64(in.gauge.Load())
	case in.hist != nil:
		s.Hist = in.hist.Snapshot()
	}
	return s
}

// Registry holds instruments and scrape-time collectors. Safe for
// concurrent registration and gathering; get-or-create semantics make
// it safe to register the same (name, labels) series from concurrent
// hot paths (per-method histograms do exactly that).
type Registry struct {
	mu         sync.Mutex
	order      []*instrument
	byKey      map[string]*instrument // name + "\x00" + label signature
	collectors []func(emit func(Sample))
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: map[string]*instrument{}}
}

func (r *Registry) getOrCreate(name, help, typ string, labels Labels) *instrument {
	key := name + "\x00" + labels.signature()
	r.mu.Lock()
	defer r.mu.Unlock()
	if in, ok := r.byKey[key]; ok {
		if in.typ != typ {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s (was %s)", name, typ, in.typ))
		}
		return in
	}
	in := &instrument{name: name, help: help, typ: typ, labels: labels, sig: labels.signature()}
	r.byKey[key] = in
	r.order = append(r.order, in)
	return in
}

// Counter registers (or returns the existing) counter series.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	in := r.getOrCreate(name, help, TypeCounter, labels)
	if in.counter == nil && in.fn == nil {
		in.counter = &Counter{}
	}
	return in.counter
}

// Gauge registers (or returns the existing) gauge series.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	in := r.getOrCreate(name, help, TypeGauge, labels)
	if in.gauge == nil && in.fn == nil {
		in.gauge = &Gauge{}
	}
	return in.gauge
}

// Histogram registers (or returns the existing) duration histogram
// series. Concurrency-safe get-or-create, so hot paths can call it per
// event with a label value discovered at runtime (e.g. an RMI method).
func (r *Registry) Histogram(name, help string, labels Labels) *Histogram {
	in := r.getOrCreate(name, help, TypeHistogram, labels)
	if in.hist == nil {
		in.hist = NewHistogram()
	}
	return in.hist
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the no-double-accounting hook for subsystems that already keep
// an atomic counter.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() int64) {
	in := r.getOrCreate(name, help, TypeCounter, labels)
	in.fn = fn
}

// GaugeFunc is CounterFunc for gauges.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() int64) {
	in := r.getOrCreate(name, help, TypeGauge, labels)
	in.fn = fn
}

// Collect registers a scrape-time callback that emits samples for
// series whose label sets are dynamic (per-tenant counters, per-replica
// breaker state): whatever exists at scrape time is emitted, so
// detaching a tenant or dropping a replica needs no unregistration.
func (r *Registry) Collect(fn func(emit func(Sample))) {
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

// Gather snapshots every registered instrument and collector into a
// stable order: by name, then label signature, preserving registration
// order within ties. The result is what the exposition formats render
// and what tests diff.
func (r *Registry) Gather() []Sample {
	r.mu.Lock()
	ins := append([]*instrument(nil), r.order...)
	cols := append([]func(func(Sample)){}, r.collectors...)
	r.mu.Unlock()
	var out []Sample
	for _, in := range ins {
		out = append(out, in.sample())
	}
	for _, fn := range cols {
		fn(func(s Sample) { out = append(out, s) })
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Labels.signature() < out[j].Labels.signature()
	})
	return out
}
