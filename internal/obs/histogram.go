package obs

import (
	"sync/atomic"
	"time"
)

// Histogram bucket layout: log base-2 duration buckets starting at 1µs.
// Bucket i covers durations <= histBase << i; the last slot is +Inf.
// 1µs << 25 ≈ 33.6s, so the ladder spans sub-microsecond RPCs to
// stuck-for-half-a-minute outliers in 26 buckets + overflow.
const (
	histBase    = time.Microsecond
	histBuckets = 26
)

// Histogram is a fixed-bucket, allocation-free duration histogram. All
// fields are atomics, so Observe is safe from any goroutine and costs
// three atomic adds — cheap enough for per-RPC hot paths.
type Histogram struct {
	buckets [histBuckets + 1]atomic.Int64 // +1 for +Inf overflow
	count   atomic.Int64
	sumNs   atomic.Int64
}

// NewHistogram returns an empty histogram (also usable standalone,
// outside any registry — the load-test harness does).
func NewHistogram() *Histogram { return &Histogram{} }

// bucketFor returns the index of the first bucket whose upper bound
// holds d.
func bucketFor(d time.Duration) int {
	if d < 0 {
		d = 0
	}
	bound := histBase
	for i := 0; i < histBuckets; i++ {
		if d <= bound {
			return i
		}
		bound <<= 1
	}
	return histBuckets
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.buckets[bucketFor(d)].Add(1)
	h.count.Add(1)
	h.sumNs.Add(int64(d))
}

// HistSnapshot is a point-in-time copy of a histogram, the unit the
// exposition formats and quantile extraction work from.
type HistSnapshot struct {
	// Buckets holds per-bucket (non-cumulative) counts; Bounds[i] is
	// Buckets[i]'s inclusive upper bound, with the final overflow bucket
	// unbounded (Bounds has len(Buckets)-1 entries).
	Buckets []int64
	Bounds  []time.Duration
	Count   int64
	Sum     time.Duration
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() *HistSnapshot {
	s := &HistSnapshot{
		Buckets: make([]int64, histBuckets+1),
		Bounds:  make([]time.Duration, histBuckets),
		Count:   h.count.Load(),
		Sum:     time.Duration(h.sumNs.Load()),
	}
	bound := histBase
	for i := 0; i < histBuckets; i++ {
		s.Bounds[i] = bound
		bound <<= 1
	}
	for i := range s.Buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Count returns how many observations the histogram has absorbed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Quantile extracts an approximate quantile (0 < q <= 1) from the
// snapshot by walking the cumulative bucket counts and interpolating
// linearly inside the winning bucket. With log-2 buckets the answer is
// within 2x of the true quantile — plenty for p50/p90/p99 latency
// tables. Returns 0 when the histogram is empty.
func (s *HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			lo := time.Duration(0)
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := 2 * lo
			if i < len(s.Bounds) {
				hi = s.Bounds[i]
			}
			frac := (rank - float64(cum)) / float64(n)
			return lo + time.Duration(frac*float64(hi-lo))
		}
		cum += n
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Quantile is Snapshot().Quantile for callers that need one value.
func (h *Histogram) Quantile(q float64) time.Duration {
	return h.Snapshot().Quantile(q)
}
