package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Span kinds. A trace is one query: a root span, one child per engine
// step (or wave), frame spans under the step that issued them, and
// event spans (failover, hedge) recording replica routing decisions.
const (
	KindQuery = "query"
	KindStep  = "step"
	KindFrame = "frame"
	KindEvent = "event"
)

// Span is one node of a trace tree. Start is the offset from the trace's
// beginning, so a rendered report reads as a timeline.
type Span struct {
	ID    uint64
	Name  string
	Kind  string
	Start time.Duration
	Dur   time.Duration

	// Frame-span payload (zero elsewhere): which shard replica answered
	// and what traveled.
	Shard    int
	Addr     string
	Method   string
	BytesOut int64
	BytesIn  int64
	Rows     int64
	Err      string

	Children []*Span
}

// Frames counts the frame spans in the subtree — the quantity the trace
// invariant checks against the session's round-trip counters.
func (s *Span) Frames() int64 {
	var n int64
	if s.Kind == KindFrame {
		n++
	}
	for _, c := range s.Children {
		n += c.Frames()
	}
	return n
}

// ShardFrames counts frame spans per shard index in the subtree.
func (s *Span) ShardFrames(out map[int]int64) {
	if s.Kind == KindFrame {
		out[s.Shard]++
	}
	for _, c := range s.Children {
		c.ShardFrames(out)
	}
}

// Fprint renders the subtree as an indented timing report.
func (s *Span) Fprint(w io.Writer) error {
	var sb strings.Builder
	s.fprint(&sb, 0)
	_, err := io.WriteString(w, sb.String())
	return err
}

func (s *Span) fprint(sb *strings.Builder, depth int) {
	sb.WriteString(strings.Repeat("  ", depth))
	switch s.Kind {
	case KindFrame:
		fmt.Fprintf(sb, "frame %-28s shard %d %-21s +%-9s %-9s out %s in %s",
			s.Method, s.Shard, s.Addr, fmtDur(s.Start), fmtDur(s.Dur), fmtBytes(s.BytesOut), fmtBytes(s.BytesIn))
		if s.Rows > 0 {
			fmt.Fprintf(sb, " rows %d", s.Rows)
		}
		if s.Err != "" {
			fmt.Fprintf(sb, " err %q", s.Err)
		}
	case KindEvent:
		fmt.Fprintf(sb, "event %s +%s", s.Name, fmtDur(s.Start))
	default:
		fmt.Fprintf(sb, "%s %s +%s %s", s.Kind, s.Name, fmtDur(s.Start), fmtDur(s.Dur))
		if s.Kind == KindStep {
			fmt.Fprintf(sb, " (%d frames)", s.Frames())
		}
	}
	sb.WriteByte('\n')
	for _, c := range s.Children {
		c.fprint(sb, depth+1)
	}
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// Frame is one recorded RMI exchange, as reported by the filter proxy.
type Frame struct {
	Method   string
	Shard    int
	Addr     string
	Start    time.Time
	Dur      time.Duration
	BytesOut int64
	BytesIn  int64
	Rows     int64
	Err      string
}

// Tracer assembles one query's span tree. Steps are sequential (the
// engines run one step/wave at a time), so a single current-step
// pointer suffices; frames within a step arrive concurrently from the
// per-shard scatter goroutines, so every mutation takes the mutex.
//
// A tracer is attached once (to the session's filter chain) and
// recycled per query: Begin resets the tree, End seals it. Frames
// reported outside a Begin..End window — session teardown, stats
// fetches around the capture — are dropped, which is what keeps the
// frame-count invariant exact.
type Tracer struct {
	traceID uint64
	spanID  atomic.Uint64

	mu     sync.Mutex
	active bool
	start  time.Time
	root   *Span
	cur    *Span // current step span; nil parks frames on the root
}

// nextTraceID makes trace IDs unique within a process without needing
// a random source.
var nextTraceID atomic.Uint64

// NewTracer returns an idle tracer.
func NewTracer() *Tracer {
	return &Tracer{}
}

// ID returns the current trace's ID (0 when no trace ran yet).
func (t *Tracer) ID() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.traceID
}

// NextSpanID allocates a span ID for wire propagation.
func (t *Tracer) NextSpanID() uint64 { return t.spanID.Add(1) }

// Active reports whether a Begin..End capture window is open — the
// gate every recording hook checks before doing any work.
func (t *Tracer) Active() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.active
}

// Begin opens a capture window: a fresh root span named after the
// query. Any previous tree is discarded.
func (t *Tracer) Begin(name string) {
	t.mu.Lock()
	t.traceID = nextTraceID.Add(1)
	t.spanID.Store(0)
	t.active = true
	t.start = time.Now()
	t.root = &Span{ID: t.NextSpanID(), Name: name, Kind: KindQuery}
	t.cur = nil
	t.mu.Unlock()
}

// End seals the capture window: the last open step closes, the root's
// duration is stamped, and subsequent frames are dropped.
func (t *Tracer) End() {
	t.mu.Lock()
	if t.active {
		t.closeStepLocked()
		t.root.Dur = time.Since(t.start)
		t.active = false
	}
	t.mu.Unlock()
}

// BeginStep closes the current step (if any) and opens a new one as a
// child of the root — called by the engines at each step/wave boundary.
func (t *Tracer) BeginStep(name string) {
	t.mu.Lock()
	if t.active {
		t.closeStepLocked()
		sp := &Span{ID: t.NextSpanID(), Name: name, Kind: KindStep, Start: time.Since(t.start)}
		t.root.Children = append(t.root.Children, sp)
		t.cur = sp
	}
	t.mu.Unlock()
}

// EndStep closes the current step; later frames land on the root.
func (t *Tracer) EndStep() {
	t.mu.Lock()
	if t.active {
		t.closeStepLocked()
	}
	t.mu.Unlock()
}

func (t *Tracer) closeStepLocked() {
	if t.cur != nil {
		t.cur.Dur = time.Since(t.start) - t.cur.Start
		t.cur = nil
	}
}

// AddFrame records one RMI exchange under the current step (or the
// root, outside any step). Safe to call from concurrent per-shard
// goroutines; dropped outside a capture window.
func (t *Tracer) AddFrame(f Frame) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.active {
		return
	}
	start := f.Start
	if start.IsZero() {
		start = time.Now().Add(-f.Dur)
	}
	sp := &Span{
		ID: t.NextSpanID(), Kind: KindFrame,
		Start: start.Sub(t.start), Dur: f.Dur,
		Method: f.Method, Shard: f.Shard, Addr: f.Addr,
		BytesOut: f.BytesOut, BytesIn: f.BytesIn, Rows: f.Rows, Err: f.Err,
	}
	parent := t.root
	if t.cur != nil {
		parent = t.cur
	}
	parent.Children = append(parent.Children, sp)
}

// Event records a routing event (failover, hedge) under the current
// step.
func (t *Tracer) Event(name string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.active {
		return
	}
	sp := &Span{ID: t.NextSpanID(), Name: name, Kind: KindEvent, Start: time.Since(t.start)}
	parent := t.root
	if t.cur != nil {
		parent = t.cur
	}
	parent.Children = append(parent.Children, sp)
}

// Root returns the last sealed (or in-progress) span tree. The tree is
// not copied: callers must not read it concurrently with an open
// capture window.
func (t *Tracer) Root() *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.root
}
