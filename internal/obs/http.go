package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"time"
)

// WritePrometheus renders every registry's gathered samples in the
// Prometheus text exposition format (version 0.0.4). Multiple
// registries merge into one page — the server process passes its
// runtime registry, tests additionally merge a client-side cluster
// registry so breaker state shows up on the same scrape.
func WritePrometheus(w io.Writer, regs ...*Registry) error {
	samples := gatherAll(regs)
	var sb strings.Builder
	seenHeader := map[string]bool{}
	for _, s := range samples {
		if !seenHeader[s.Name] {
			seenHeader[s.Name] = true
			if s.Help != "" {
				fmt.Fprintf(&sb, "# HELP %s %s\n", s.Name, s.Help)
			}
			fmt.Fprintf(&sb, "# TYPE %s %s\n", s.Name, s.Type)
		}
		if s.Hist != nil {
			writePromHist(&sb, s)
			continue
		}
		fmt.Fprintf(&sb, "%s%s %s\n", s.Name, promLabels(s.Labels, "", 0), promFloat(s.Value))
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// writePromHist renders one histogram series: cumulative _bucket lines
// with le= bounds in seconds, then _sum and _count.
func writePromHist(sb *strings.Builder, s Sample) {
	snap := s.Hist
	var cum int64
	for i, n := range snap.Buckets {
		cum += n
		le := "+Inf"
		if i < len(snap.Bounds) {
			le = promFloat(snap.Bounds[i].Seconds())
		}
		fmt.Fprintf(sb, "%s_bucket%s %d\n", s.Name, promLabels(s.Labels, le, 1), cum)
	}
	fmt.Fprintf(sb, "%s_sum%s %s\n", s.Name, promLabels(s.Labels, "", 0), promFloat(snap.Sum.Seconds()))
	fmt.Fprintf(sb, "%s_count%s %d\n", s.Name, promLabels(s.Labels, "", 0), snap.Count)
}

// promLabels renders a label set (plus an optional le bucket bound when
// mode==1) as {k="v",...}, or "" when empty.
func promLabels(l Labels, le string, mode int) string {
	if len(l) == 0 && mode == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", k, l[k])
	}
	if mode == 1 {
		if len(keys) > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "le=%q", le)
	}
	sb.WriteByte('}')
	return sb.String()
}

// promFloat renders a float the way Prometheus clients do: integers
// without a decimal point, everything else with minimal digits.
func promFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// jsonSample is the debug-dump shape of one series.
type jsonSample struct {
	Name   string            `json:"name"`
	Type   string            `json:"type"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  *float64          `json:"value,omitempty"`
	Hist   *jsonHist         `json:"histogram,omitempty"`
}

type jsonHist struct {
	Count int64   `json:"count"`
	SumMs float64 `json:"sum_ms"`
	P50Ms float64 `json:"p50_ms"`
	P90Ms float64 `json:"p90_ms"`
	P99Ms float64 `json:"p99_ms"`
}

// WriteJSON renders the merged registries as an indented JSON debug
// dump with pre-extracted percentiles — handier than bucket math when
// a human is curling.
func WriteJSON(w io.Writer, regs ...*Registry) error {
	samples := gatherAll(regs)
	out := make([]jsonSample, 0, len(samples))
	for _, s := range samples {
		js := jsonSample{Name: s.Name, Type: s.Type, Labels: s.Labels}
		if s.Hist != nil {
			js.Hist = &jsonHist{
				Count: s.Hist.Count,
				SumMs: float64(s.Hist.Sum) / float64(time.Millisecond),
				P50Ms: float64(s.Hist.Quantile(0.50)) / float64(time.Millisecond),
				P90Ms: float64(s.Hist.Quantile(0.90)) / float64(time.Millisecond),
				P99Ms: float64(s.Hist.Quantile(0.99)) / float64(time.Millisecond),
			}
		} else {
			v := s.Value
			js.Value = &v
		}
		out = append(out, js)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func gatherAll(regs []*Registry) []Sample {
	var out []Sample
	for _, r := range regs {
		if r != nil {
			out = append(out, r.Gather()...)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Labels.signature() < out[j].Labels.signature()
	})
	return out
}

// NewMux builds the metrics HTTP handler: /metrics (Prometheus text),
// /metrics.json (debug dump), and /debug/pprof/* on the same mux —
// explicitly wired so we can keep http.DefaultServeMux out of it.
func NewMux(regs ...*Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, regs...)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = WriteJSON(w, regs...)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
