package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeGather(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests", Labels{"tenant": "a"})
	c.Add(3)
	c.Inc()
	g := r.Gauge("conns", "open connections", nil)
	g.Set(7)
	g.Add(-2)
	r.CounterFunc("fn_total", "func backed", nil, func() int64 { return 42 })

	got := map[string]float64{}
	for _, s := range r.Gather() {
		got[s.Name+s.Labels.signature()] = s.Value
	}
	if got[`reqs_total`+Labels{"tenant": "a"}.signature()] != 4 {
		t.Fatalf("counter = %v, want 4", got)
	}
	if got["conns"] != 5 {
		t.Fatalf("gauge = %v, want 5", got)
	}
	if got["fn_total"] != 42 {
		t.Fatalf("func counter = %v, want 42", got)
	}
}

func TestGetOrCreateDedupes(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "", Labels{"k": "v"})
	b := r.Counter("x_total", "", Labels{"k": "v"})
	if a != b {
		t.Fatal("same (name, labels) should return the same counter")
	}
	c := r.Counter("x_total", "", Labels{"k": "w"})
	if a == c {
		t.Fatal("different labels should return a different counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering as a different type should panic")
		}
	}()
	r.Gauge("x_total", "", Labels{"k": "v"})
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	// 100 observations spread evenly from 1ms to 100ms.
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	snap := h.Snapshot()
	p50 := snap.Quantile(0.50)
	if p50 < 20*time.Millisecond || p50 > 100*time.Millisecond {
		t.Fatalf("p50 = %v, want within 2x of 50ms", p50)
	}
	p99 := snap.Quantile(0.99)
	if p99 < 64*time.Millisecond || p99 > 200*time.Millisecond {
		t.Fatalf("p99 = %v, want within 2x of 99ms", p99)
	}
	if p50 > p99 {
		t.Fatalf("p50 %v > p99 %v", p50, p99)
	}
	if got := (&HistSnapshot{}).Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
	var sum int64
	for _, n := range h.Snapshot().Buckets {
		sum += n
	}
	if sum != 8000 {
		t.Fatalf("bucket sum = %d, want 8000", sum)
	}
}

func TestPrometheusText(t *testing.T) {
	r := NewRegistry()
	r.Counter("encshare_reqs_total", "total requests", Labels{"tenant": "acme"}).Add(12)
	r.Gauge("encshare_conns", "open conns", nil).Set(3)
	h := r.Histogram("rmi_server_call_seconds", "per-call latency", Labels{"method": "Eval"})
	h.Observe(3 * time.Millisecond)
	h.Observe(40 * time.Microsecond)
	r.Collect(func(emit func(Sample)) {
		emit(Sample{Name: "dyn_total", Type: TypeCounter, Labels: Labels{"shard": "0"}, Value: 9})
	})

	var sb strings.Builder
	if err := WritePrometheus(&sb, r); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"# TYPE encshare_reqs_total counter",
		`encshare_reqs_total{tenant="acme"} 12`,
		"# TYPE encshare_conns gauge",
		"encshare_conns 3",
		"# TYPE rmi_server_call_seconds histogram",
		`rmi_server_call_seconds_bucket{method="Eval",le="+Inf"} 2`,
		`rmi_server_call_seconds_count{method="Eval"} 2`,
		`rmi_server_call_seconds_sum{method="Eval"}`,
		`dyn_total{shard="0"} 9`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus text missing %q:\n%s", want, text)
		}
	}
	// Buckets must be cumulative: every _bucket count <= the +Inf count.
	if !strings.Contains(text, `le="4.096e-05"`) && !strings.Contains(text, `le="6.4e-05"`) {
		// 40µs falls in the 64µs bucket (bounds 1µs<<k); just assert some le label rendered.
		if !strings.Contains(text, `le="`) {
			t.Fatalf("no le labels rendered:\n%s", text)
		}
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "", nil).Add(5)
	r.Histogram("lat_seconds", "", nil).Observe(2 * time.Millisecond)
	var sb strings.Builder
	if err := WriteJSON(&sb, r); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"a_total"`, `"lat_seconds"`, `"p99_ms"`} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("json missing %q:\n%s", want, sb.String())
		}
	}
}

func TestTracerTree(t *testing.T) {
	tr := NewTracer()
	if tr.Active() {
		t.Fatal("new tracer should be inactive")
	}
	// Frames before Begin are dropped.
	tr.AddFrame(Frame{Method: "Drop"})

	tr.Begin("//site//item")
	tr.BeginStep("step //site")
	tr.AddFrame(Frame{Method: "EvalBatch", Shard: 0, Addr: "s0", Dur: time.Millisecond, BytesOut: 100, BytesIn: 200, Rows: 4})
	tr.AddFrame(Frame{Method: "EvalBatch", Shard: 1, Addr: "s1", Dur: 2 * time.Millisecond, Rows: 2})
	tr.Event("failover shard 1")
	tr.BeginStep("step //item")
	tr.AddFrame(Frame{Method: "ChildrenBatch", Shard: 0, Addr: "s0"})
	tr.End()
	// Frames after End are dropped too.
	tr.AddFrame(Frame{Method: "Drop"})

	root := tr.Root()
	if root == nil || root.Kind != KindQuery || root.Name != "//site//item" {
		t.Fatalf("bad root: %+v", root)
	}
	if len(root.Children) != 2 {
		t.Fatalf("want 2 steps, got %d", len(root.Children))
	}
	if got := root.Frames(); got != 3 {
		t.Fatalf("frame count = %d, want 3", got)
	}
	perShard := map[int]int64{}
	root.ShardFrames(perShard)
	if perShard[0] != 2 || perShard[1] != 1 {
		t.Fatalf("per-shard frames = %v", perShard)
	}
	step0 := root.Children[0]
	if step0.Frames() != 2 {
		t.Fatalf("step0 frames = %d, want 2", step0.Frames())
	}
	var hasEvent bool
	for _, c := range step0.Children {
		if c.Kind == KindEvent {
			hasEvent = true
		}
	}
	if !hasEvent {
		t.Fatal("failover event not recorded under step0")
	}

	var sb strings.Builder
	if err := root.Fprint(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"query //site//item", "step step //site", "frame EvalBatch", "event failover shard 1", "rows 4"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTracerConcurrentFrames(t *testing.T) {
	tr := NewTracer()
	tr.Begin("q")
	tr.BeginStep("s")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.AddFrame(Frame{Method: "Eval", Shard: shard})
			}
		}(g)
	}
	wg.Wait()
	tr.End()
	if got := tr.Root().Frames(); got != 800 {
		t.Fatalf("frames = %d, want 800", got)
	}
}

func TestTracerReuseResets(t *testing.T) {
	tr := NewTracer()
	tr.Begin("first")
	tr.AddFrame(Frame{Method: "A"})
	tr.End()
	first := tr.ID()
	tr.Begin("second")
	tr.AddFrame(Frame{Method: "B"})
	tr.End()
	if tr.ID() == first {
		t.Fatal("trace ID should change between captures")
	}
	root := tr.Root()
	if root.Name != "second" || root.Frames() != 1 {
		t.Fatalf("reuse did not reset tree: %+v", root)
	}
}
