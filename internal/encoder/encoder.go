// Package encoder is the Go counterpart of the paper's MySQLEncode class
// (§5.1): it turns a plaintext XML document into the server-side table of
// secret-shared node polynomials.
//
// The pipeline per §3:
//
//  1. stream-parse the XML (O(depth) memory, like the paper's SAX setup),
//  2. optionally expand text into tries (§4),
//  3. bottom-up, compute f(node) = (x − map(node)) · Π f(child) in the
//     reduced ring,
//  4. split each polynomial into a PRG client share (derived from the
//     node's pre value) and a server share,
//  5. emit (pre, post, parent, serverShare) rows to the sink.
//
// Only the server shares leave this package; the client keeps the seed.
package encoder

import (
	"fmt"
	"io"
	"time"

	"encshare/internal/mapping"
	"encshare/internal/ring"
	"encshare/internal/secshare"
	"encshare/internal/store"
	"encshare/internal/trie"
	"encshare/internal/xmldoc"
)

// RowSink receives encoded rows; *store.Store implements it.
type RowSink interface {
	InsertNode(store.NodeRow) error
}

// Options configures an encoding run.
type Options struct {
	Map    *mapping.Map     // secret tag/character map (required)
	Scheme *secshare.Scheme // ring + seeded PRG (required)
	// TrieMode expands element text per §4. The map must cover the
	// alphabet characters (and trie.Terminator) that occur in the text.
	TrieMode trie.Mode
}

// Stats reports what an encoding run produced — the quantities of the
// paper's Fig. 4.
type Stats struct {
	Nodes     int64         // rows emitted (elements + trie nodes)
	PolyBytes int64         // total polynomial payload
	MetaBytes int64         // pre/post/parent overhead (3 x 8 bytes per row)
	Elapsed   time.Duration // wall-clock encoding time
}

// OutputBytes is the total server-side storage excluding indexes.
func (s Stats) OutputBytes() int64 { return s.PolyBytes + s.MetaBytes }

// enc carries the streaming state: one frame per open element.
type enc struct {
	opts Options
	sink RowSink
	r    *ring.Ring

	pre   int64
	post  int64
	stack []frame
	stats Stats
}

type frame struct {
	name      string
	pre       int64
	parentPre int64
	childProd ring.Poly // product of completed children's polynomials
	text      string    // accumulated character data (expanded at close)
}

// EncodeStream encodes an XML document read from r.
func EncodeStream(src io.Reader, opts Options, sink RowSink) (Stats, error) {
	if opts.Map == nil || opts.Scheme == nil {
		return Stats{}, fmt.Errorf("encoder: Map and Scheme are required")
	}
	start := time.Now()
	e := &enc{opts: opts, sink: sink, r: opts.Scheme.Ring()}
	if err := xmldoc.Stream(src, e); err != nil {
		return e.stats, err
	}
	e.stats.Elapsed = time.Since(start)
	return e.stats, nil
}

// EncodeDoc encodes an already parsed document by replaying it as stream
// events, guaranteeing identical output to EncodeStream on the same
// serialized document.
func EncodeDoc(d *xmldoc.Doc, opts Options, sink RowSink) (Stats, error) {
	if opts.Map == nil || opts.Scheme == nil {
		return Stats{}, fmt.Errorf("encoder: Map and Scheme are required")
	}
	if d.Root == nil {
		return Stats{}, fmt.Errorf("encoder: empty document")
	}
	start := time.Now()
	e := &enc{opts: opts, sink: sink, r: opts.Scheme.Ring()}
	if err := replay(d.Root, e); err != nil {
		return e.stats, err
	}
	e.stats.Elapsed = time.Since(start)
	return e.stats, nil
}

func replay(n *xmldoc.Node, e *enc) error {
	if err := e.StartElement(n.Name); err != nil {
		return err
	}
	if n.Text != "" {
		if err := e.Text(n.Text); err != nil {
			return err
		}
	}
	for _, c := range n.Children {
		if err := replay(c, e); err != nil {
			return err
		}
	}
	return e.EndElement(n.Name)
}

// StartElement implements xmldoc.Handler.
func (e *enc) StartElement(name string) error {
	e.pre++
	parentPre := int64(0)
	if len(e.stack) > 0 {
		parentPre = e.stack[len(e.stack)-1].pre
	}
	e.stack = append(e.stack, frame{
		name:      name,
		pre:       e.pre,
		parentPre: parentPre,
		childProd: e.r.One(),
	})
	return nil
}

// Text implements xmldoc.Handler: character data is buffered on the
// enclosing element and expanded when it closes.
func (e *enc) Text(data string) error {
	f := &e.stack[len(e.stack)-1]
	if f.text == "" {
		f.text = data
	} else {
		f.text += " " + data
	}
	return nil
}

// EndElement implements xmldoc.Handler: here the node's polynomial is
// completed, shared and emitted.
func (e *enc) EndElement(string) error {
	f := &e.stack[len(e.stack)-1]

	// §4: expand buffered text into trie subtrees, emitted as extra
	// children of this element.
	if f.text != "" && e.opts.TrieMode != trie.Off {
		for _, root := range trie.BuildSubtree(f.text, e.opts.TrieMode) {
			poly, err := e.emitSubtree(root, f.pre)
			if err != nil {
				return err
			}
			f.childProd = e.r.Mul(f.childProd, poly)
		}
	}

	val, err := e.opts.Map.Value(f.name)
	if err != nil {
		return fmt.Errorf("encoder: element %q: %w", f.name, err)
	}
	poly := e.r.MulLinear(f.childProd, val)
	if err := e.emit(poly, f.pre, f.parentPre); err != nil {
		return err
	}

	e.stack = e.stack[:len(e.stack)-1]
	if len(e.stack) > 0 {
		p := &e.stack[len(e.stack)-1]
		p.childProd = e.r.Mul(p.childProd, poly)
	}
	return nil
}

// emitSubtree assigns numbering to a synthetic (trie) subtree, emits all
// of its rows bottom-up, and returns the subtree root's polynomial.
func (e *enc) emitSubtree(n *xmldoc.Node, parentPre int64) (ring.Poly, error) {
	e.pre++
	myPre := e.pre
	prod := e.r.One()
	for _, c := range n.Children {
		childPoly, err := e.emitSubtree(c, myPre)
		if err != nil {
			return nil, err
		}
		prod = e.r.Mul(prod, childPoly)
	}
	val, err := e.opts.Map.Value(n.Name)
	if err != nil {
		return nil, fmt.Errorf("encoder: trie node %q: %w (is the alphabet in the map file?)", n.Name, err)
	}
	poly := e.r.MulLinear(prod, val)
	if err := e.emit(poly, myPre, parentPre); err != nil {
		return nil, err
	}
	return poly, nil
}

// emit splits a completed polynomial and writes its row.
func (e *enc) emit(poly ring.Poly, pre, parentPre int64) error {
	e.post++
	server := e.opts.Scheme.Split(poly, uint64(pre))
	blob := e.r.Bytes(server)
	row := store.NodeRow{Pre: pre, Post: e.post, Parent: parentPre, Poly: blob}
	if err := e.sink.InsertNode(row); err != nil {
		return err
	}
	e.stats.Nodes++
	e.stats.PolyBytes += int64(len(blob))
	e.stats.MetaBytes += 24
	return nil
}
