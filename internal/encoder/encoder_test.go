package encoder

import (
	"bytes"
	"strings"
	"testing"

	"encshare/internal/gf"
	"encshare/internal/mapping"
	"encshare/internal/prg"
	"encshare/internal/ring"
	"encshare/internal/secshare"
	"encshare/internal/store"
	"encshare/internal/trie"
	"encshare/internal/xmark"
	"encshare/internal/xmldoc"
)

// sliceSink collects rows in memory.
type sliceSink struct {
	rows []store.NodeRow
}

func (s *sliceSink) InsertNode(r store.NodeRow) error {
	s.rows = append(s.rows, r)
	return nil
}

func testSetup(t testing.TB, p uint32, names []string, seed string) (Options, *ring.Ring) {
	t.Helper()
	f := gf.MustNew(p, 1)
	m, err := mapping.Generate(f, names)
	if err != nil {
		t.Fatal(err)
	}
	r := ring.MustNew(f)
	return Options{
		Map:    m,
		Scheme: secshare.New(r, prg.New([]byte(seed))),
	}, r
}

const paperXML = `<a><b><c/></b><c><a/><b/></c></a>`

func TestEncodePaperExample(t *testing.T) {
	// Fig. 1 with its exact map: a=2, b=1, c=3 over F_5.
	f := gf.MustNew(5, 1)
	m, err := mapping.Load(f, strings.NewReader("a = 2\nb = 1\nc = 3\n"))
	if err != nil {
		t.Fatal(err)
	}
	r := ring.MustNew(f)
	scheme := secshare.New(r, prg.New([]byte("fig1")))
	sink := &sliceSink{}
	stats, err := EncodeStream(strings.NewReader(paperXML), Options{Map: m, Scheme: scheme}, sink)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Nodes != 6 {
		t.Fatalf("encoded %d nodes, want 6", stats.Nodes)
	}
	// Reconstruct each node polynomial and compare against Fig. 1(d)
	// (with the root erratum corrected; see ring tests).
	want := map[int64]string{
		1: "x^3 + 4x^2 + x + 4", // root a (reduces same as node c)
		2: "x^2 + x + 3",        // b
		3: "x + 2",              // leaf c
		4: "x^3 + 4x^2 + x + 4", // c
		5: "x + 3",              // leaf a
		6: "x + 4",              // leaf b
	}
	for _, row := range sink.rows {
		server, err := r.FromBytes(row.Poly)
		if err != nil {
			t.Fatal(err)
		}
		full := scheme.Reconstruct(server, uint64(row.Pre))
		if got := r.String(full); got != want[row.Pre] {
			t.Errorf("pre %d: poly = %s, want %s", row.Pre, got, want[row.Pre])
		}
	}
}

func TestNumberingMatchesXmldoc(t *testing.T) {
	opts, _ := testSetup(t, 83, []string{"a", "b", "c"}, "num")
	sink := &sliceSink{}
	if _, err := EncodeStream(strings.NewReader(paperXML), opts, sink); err != nil {
		t.Fatal(err)
	}
	d, err := xmldoc.ParseString(paperXML)
	if err != nil {
		t.Fatal(err)
	}
	byPre := map[int64]store.NodeRow{}
	for _, r := range sink.rows {
		byPre[r.Pre] = r
	}
	d.Walk(func(n *xmldoc.Node) bool {
		row, ok := byPre[n.Pre]
		if !ok {
			t.Fatalf("no row for pre %d", n.Pre)
		}
		if row.Post != n.Post {
			t.Errorf("pre %d: post %d, want %d", n.Pre, row.Post, n.Post)
		}
		wantParent := int64(0)
		if n.Parent != nil {
			wantParent = n.Parent.Pre
		}
		if row.Parent != wantParent {
			t.Errorf("pre %d: parent %d, want %d", n.Pre, row.Parent, wantParent)
		}
		return true
	})
}

// TestEncodeDocEqualsEncodeStream: both paths must produce identical rows.
func TestEncodeDocEqualsEncodeStream(t *testing.T) {
	doc := xmark.Generate(xmark.Config{Scale: 0.02, Seed: 5})
	var xml bytes.Buffer
	if err := doc.WriteXML(&xml); err != nil {
		t.Fatal(err)
	}
	names := append(doc.Names(), trie.Alphabet(trie.Words(allText(doc)))...)
	opts, _ := testSetup(t, 251, names, "both")
	opts.TrieMode = trie.Compressed

	streamSink := &sliceSink{}
	if _, err := EncodeStream(bytes.NewReader(xml.Bytes()), opts, streamSink); err != nil {
		t.Fatal(err)
	}
	docSink := &sliceSink{}
	doc2, err := xmldoc.Parse(bytes.NewReader(xml.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EncodeDoc(doc2, opts, docSink); err != nil {
		t.Fatal(err)
	}
	if len(streamSink.rows) != len(docSink.rows) {
		t.Fatalf("stream %d rows vs doc %d rows", len(streamSink.rows), len(docSink.rows))
	}
	for i := range streamSink.rows {
		a, b := streamSink.rows[i], docSink.rows[i]
		if a.Pre != b.Pre || a.Post != b.Post || a.Parent != b.Parent || !bytes.Equal(a.Poly, b.Poly) {
			t.Fatalf("row %d differs: %+v vs %+v", i, a, b)
		}
	}
}

// TestPolynomialSemantics verifies the fundamental invariant on a real
// XMark fragment: the reconstructed polynomial of every node vanishes at
// map(N) exactly when N occurs in its subtree.
func TestPolynomialSemantics(t *testing.T) {
	doc := xmark.Generate(xmark.Config{Scale: 0.01, Seed: 2})
	opts, r := testSetup(t, 83, doc.Names(), "sem")
	sink := &sliceSink{}
	if _, err := EncodeDoc(doc, opts, sink); err != nil {
		t.Fatal(err)
	}
	byPre := map[int64]store.NodeRow{}
	for _, row := range sink.rows {
		byPre[row.Pre] = row
	}
	// Collect subtree tag sets from the plaintext tree.
	var subtreeTags func(n *xmldoc.Node, acc map[string]bool)
	subtreeTags = func(n *xmldoc.Node, acc map[string]bool) {
		acc[n.Name] = true
		for _, c := range n.Children {
			subtreeTags(c, acc)
		}
	}
	checked := 0
	doc.Walk(func(n *xmldoc.Node) bool {
		if checked > 200 { // keep runtime bounded
			return false
		}
		checked++
		tags := map[string]bool{}
		subtreeTags(n, tags)
		row := byPre[n.Pre]
		server, err := r.FromBytes(row.Poly)
		if err != nil {
			t.Fatal(err)
		}
		full := opts.Scheme.Reconstruct(server, uint64(n.Pre))
		for _, name := range opts.Map.Names() {
			v, _ := opts.Map.Value(name)
			zero := r.Eval(full, v) == 0
			if zero != tags[name] {
				t.Fatalf("node %s (pre %d): eval at map(%s) zero=%v, contained=%v",
					n.Path(), n.Pre, name, zero, tags[name])
			}
		}
		return true
	})
}

// TestSharesNotPlaintext: the server share alone must not vanish at the
// contained tags (i.e. the server cannot run the containment test by
// itself).
func TestServerShareAloneUseless(t *testing.T) {
	doc := xmark.Generate(xmark.Config{Scale: 0.01, Seed: 3})
	opts, r := testSetup(t, 83, doc.Names(), "hide")
	sink := &sliceSink{}
	if _, err := EncodeDoc(doc, opts, sink); err != nil {
		t.Fatal(err)
	}
	// Root contains "site" for sure. Count how many of the first rows'
	// server shares vanish at map(site): should be ~N/83, not ~N.
	v, _ := opts.Map.Value("site")
	zeros := 0
	for _, row := range sink.rows {
		server, err := r.FromBytes(row.Poly)
		if err != nil {
			t.Fatal(err)
		}
		if r.Eval(server, v) == 0 {
			zeros++
		}
	}
	if zeros*4 > len(sink.rows) { // generous: expect ~1.2%, fail above 25%
		t.Fatalf("server shares vanish at map(site) for %d/%d rows — shares leak structure",
			zeros, len(sink.rows))
	}
}

func TestTrieModeNeedsAlphabetInMap(t *testing.T) {
	opts, _ := testSetup(t, 83, []string{"name"}, "noalpha")
	opts.TrieMode = trie.Uncompressed
	sink := &sliceSink{}
	_, err := EncodeStream(strings.NewReader("<name>Joan</name>"), opts, sink)
	if err == nil {
		t.Fatal("encoding text without alphabet mapping succeeded")
	}
}

func TestTrieModeCounts(t *testing.T) {
	names := append([]string{"name"}, trie.Alphabet(trie.Words("Joan Johnson"))...)
	opts, _ := testSetup(t, 83, names, "trie")
	opts.TrieMode = trie.Compressed
	sink := &sliceSink{}
	stats, err := EncodeStream(strings.NewReader("<name>Joan Johnson</name>"), opts, sink)
	if err != nil {
		t.Fatal(err)
	}
	// name + 11 compressed trie nodes (see trie tests).
	if stats.Nodes != 12 {
		t.Fatalf("encoded %d nodes, want 12", stats.Nodes)
	}
	// Containment must now see character paths: root polynomial vanishes
	// at map(j), map(o), ..., map(⊥).
	r := opts.Scheme.Ring()
	root := sink.rows[len(sink.rows)-1] // root emitted last (post-order)
	if root.Pre != 1 {
		t.Fatalf("last row is pre %d, want root", root.Pre)
	}
	server, err := r.FromBytes(root.Poly)
	if err != nil {
		t.Fatal(err)
	}
	full := opts.Scheme.Reconstruct(server, 1)
	for _, c := range []string{"j", "o", "a", "n", "h", "s", trie.Terminator} {
		v, err := opts.Map.Value(c)
		if err != nil {
			t.Fatal(err)
		}
		if r.Eval(full, v) != 0 {
			t.Errorf("root poly does not vanish at map(%q)", c)
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	opts, r := testSetup(t, 83, []string{"a", "b", "c"}, "stats")
	sink := &sliceSink{}
	stats, err := EncodeStream(strings.NewReader(paperXML), opts, sink)
	if err != nil {
		t.Fatal(err)
	}
	if stats.PolyBytes != int64(6*r.PolyBytes()) {
		t.Errorf("PolyBytes = %d, want %d", stats.PolyBytes, 6*r.PolyBytes())
	}
	if stats.MetaBytes != 6*24 {
		t.Errorf("MetaBytes = %d", stats.MetaBytes)
	}
	if stats.OutputBytes() != stats.PolyBytes+stats.MetaBytes {
		t.Error("OutputBytes inconsistent")
	}
	if stats.Elapsed <= 0 {
		t.Error("Elapsed not measured")
	}
}

func TestMissingOptions(t *testing.T) {
	if _, err := EncodeStream(strings.NewReader(paperXML), Options{}, &sliceSink{}); err == nil {
		t.Fatal("nil options accepted")
	}
}

func TestUnknownTagFails(t *testing.T) {
	opts, _ := testSetup(t, 83, []string{"a"}, "unk")
	_, err := EncodeStream(strings.NewReader("<a><zzz/></a>"), opts, &sliceSink{})
	if err == nil {
		t.Fatal("unknown tag accepted")
	}
	var unknown *mapping.UnknownNameError
	if !asUnknown(err, &unknown) {
		t.Fatalf("error %v does not wrap UnknownNameError", err)
	}
}

func asUnknown(err error, target **mapping.UnknownNameError) bool {
	for err != nil {
		if u, ok := err.(*mapping.UnknownNameError); ok {
			*target = u
			return true
		}
		type unwrapper interface{ Unwrap() error }
		u, ok := err.(unwrapper)
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func allText(d *xmldoc.Doc) string {
	var sb strings.Builder
	d.Walk(func(n *xmldoc.Node) bool {
		if n.Text != "" {
			sb.WriteString(n.Text)
			sb.WriteByte(' ')
		}
		return true
	})
	return sb.String()
}

func BenchmarkEncodeXMarkScale01(b *testing.B) {
	doc := xmark.Generate(xmark.Config{Scale: 0.1, Seed: 1})
	f := gf.MustNew(83, 1)
	m, err := mapping.Generate(f, doc.Names())
	if err != nil {
		b.Fatal(err)
	}
	opts := Options{Map: m, Scheme: secshare.New(ring.MustNew(f), prg.New([]byte("bench")))}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink := &sliceSink{}
		stats, err := EncodeDoc(doc, opts, sink)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(stats.OutputBytes())
	}
}
