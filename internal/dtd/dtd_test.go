package dtd

import (
	"strings"
	"testing"
)

func TestXMarkElementCount(t *testing.T) {
	d := MustXMark()
	// The paper (§6): "The DTD ... contains 77 elements."
	if got := len(d.Elements); got != 77 {
		t.Fatalf("XMark DTD has %d elements, paper says 77", got)
	}
}

func TestXMarkFitsF83(t *testing.T) {
	if got := len(MustXMark().Elements); got > 82 {
		t.Fatalf("%d elements do not fit in F_83^*", got)
	}
}

func TestLookupAndModel(t *testing.T) {
	d := MustXMark()
	site, ok := d.Lookup("site")
	if !ok {
		t.Fatal("site not declared")
	}
	kids := site.Children()
	want := []string{"regions", "categories", "catgraph", "people", "open_auctions", "closed_auctions"}
	if strings.Join(kids, ",") != strings.Join(want, ",") {
		t.Fatalf("site children = %v", kids)
	}
	edge, ok := d.Lookup("edge")
	if !ok || edge.Model != "EMPTY" {
		t.Fatalf("edge = %+v", edge)
	}
	if len(edge.Children()) != 0 {
		t.Fatalf("EMPTY model has children %v", edge.Children())
	}
	name, _ := d.Lookup("name")
	if len(name.Children()) != 0 {
		t.Fatalf("#PCDATA model has children %v", name.Children())
	}
	if _, ok := d.Lookup("nonexistent"); ok {
		t.Fatal("Lookup found undeclared element")
	}
}

func TestMixedContentChildren(t *testing.T) {
	d := MustXMark()
	text, _ := d.Lookup("text")
	got := strings.Join(text.Children(), ",")
	if got != "bold,keyword,emph" {
		t.Fatalf("text children = %s", got)
	}
}

func TestXMarkClosedUnderReference(t *testing.T) {
	// Every element referenced in a content model is declared: required
	// for the generator to be able to emit any referenced child.
	if missing := MustXMark().Undeclared(); len(missing) != 0 {
		t.Fatalf("undeclared elements referenced: %v", missing)
	}
}

func TestNamesOrder(t *testing.T) {
	d := MustXMark()
	names := d.Names()
	if names[0] != "site" {
		t.Fatalf("first element = %s", names[0])
	}
	if len(names) != 77 {
		t.Fatalf("Names() returned %d", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate name %q", n)
		}
		seen[n] = true
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse("no declarations here"); err == nil {
		t.Fatal("empty DTD accepted")
	}
	if _, err := Parse("<!ELEMENT a (b)>\n<!ELEMENT a (c)>"); err == nil {
		t.Fatal("duplicate declaration accepted")
	}
}

func TestParseTolerant(t *testing.T) {
	src := `<!-- comment -->
<!ELEMENT root (child*)>
<!ATTLIST root id CDATA #REQUIRED>
<!ELEMENT child (#PCDATA)>`
	d, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Elements) != 2 {
		t.Fatalf("parsed %d elements", len(d.Elements))
	}
}

func TestOptionalAndStarMarkersIgnored(t *testing.T) {
	d, err := Parse(`<!ELEMENT person (name, phone?, watches*)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT phone (#PCDATA)>
<!ELEMENT watches EMPTY>`)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := d.Lookup("person")
	got := strings.Join(p.Children(), ",")
	if got != "name,phone,watches" {
		t.Fatalf("children = %s", got)
	}
}
