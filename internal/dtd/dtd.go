// Package dtd parses the <!ELEMENT ...> declarations of a Document Type
// Definition. The scheme's map function is defined over "tag names chosen
// from a fixed sized set (described in a DTD)" (paper §4); this package
// extracts that set (and the content models, used by tests and by the
// XMark generator to stay faithful to Appendix A).
package dtd

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
)

// Element is one parsed <!ELEMENT name model> declaration.
type Element struct {
	Name  string
	Model string // raw content model text, e.g. "(name, description)" or "EMPTY"
}

// Children returns the element names referenced by the content model,
// in order of first appearance (ignores #PCDATA, cardinality markers and
// grouping).
func (e Element) Children() []string {
	seen := map[string]bool{}
	var out []string
	model := strings.ReplaceAll(e.Model, "#PCDATA", "")
	for _, tok := range nameRE.FindAllString(model, -1) {
		if tok == "EMPTY" || tok == "ANY" {
			continue
		}
		if !seen[tok] {
			seen[tok] = true
			out = append(out, tok)
		}
	}
	return out
}

var (
	elementRE = regexp.MustCompile(`<!ELEMENT\s+([A-Za-z_][\w.-]*)\s+([^>]*)>`)
	nameRE    = regexp.MustCompile(`[A-Za-z_][\w.-]*`)
)

// DTD is a parsed set of element declarations.
type DTD struct {
	Elements []Element
	byName   map[string]*Element
}

// Parse extracts all element declarations from DTD source text. It is
// deliberately permissive: attributes, entities and comments are ignored.
func Parse(src string) (*DTD, error) {
	matches := elementRE.FindAllStringSubmatch(src, -1)
	if len(matches) == 0 {
		return nil, fmt.Errorf("dtd: no <!ELEMENT> declarations found")
	}
	d := &DTD{byName: map[string]*Element{}}
	for _, m := range matches {
		name, model := m[1], strings.TrimSpace(m[2])
		if _, dup := d.byName[name]; dup {
			return nil, fmt.Errorf("dtd: duplicate declaration of element %q", name)
		}
		d.Elements = append(d.Elements, Element{Name: name, Model: model})
		d.byName[name] = &d.Elements[len(d.Elements)-1]
	}
	return d, nil
}

// Names returns all declared element names in declaration order.
func (d *DTD) Names() []string {
	out := make([]string, len(d.Elements))
	for i, e := range d.Elements {
		out[i] = e.Name
	}
	return out
}

// Lookup returns the declaration for name.
func (d *DTD) Lookup(name string) (Element, bool) {
	e, ok := d.byName[name]
	if !ok {
		return Element{}, false
	}
	return *e, true
}

// Undeclared returns content-model references to elements that have no
// declaration of their own — useful as a lint for generator fidelity.
func (d *DTD) Undeclared() []string {
	missing := map[string]bool{}
	for _, e := range d.Elements {
		for _, c := range e.Children() {
			if _, ok := d.byName[c]; !ok {
				missing[c] = true
			}
		}
	}
	out := make([]string, 0, len(missing))
	for n := range missing {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// XMarkAuction is the complete auction-site DTD from the paper's
// Appendix A (the XMark benchmark DTD), verbatim.
const XMarkAuction = `
<!ELEMENT site (regions, categories, catgraph, people, open_auctions, closed_auctions)>
<!ELEMENT categories (category+)>
<!ELEMENT category (name, description)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT description (text | parlist)>
<!ELEMENT text (#PCDATA | bold | keyword | emph)*>
<!ELEMENT bold (#PCDATA | bold | keyword | emph)*>
<!ELEMENT keyword (#PCDATA | bold | keyword | emph)*>
<!ELEMENT emph (#PCDATA | bold | keyword | emph)*>
<!ELEMENT parlist (listitem)*>
<!ELEMENT listitem (text | parlist)*>
<!ELEMENT catgraph (edge*)>
<!ELEMENT edge EMPTY>
<!ELEMENT regions (africa, asia, australia, europe, namerica, samerica)>
<!ELEMENT africa (item*)>
<!ELEMENT asia (item*)>
<!ELEMENT australia (item*)>
<!ELEMENT namerica (item*)>
<!ELEMENT samerica (item*)>
<!ELEMENT europe (item*)>
<!ELEMENT item (location, quantity, name, payment, description, shipping, incategory+, mailbox)>
<!ELEMENT location (#PCDATA)>
<!ELEMENT quantity (#PCDATA)>
<!ELEMENT payment (#PCDATA)>
<!ELEMENT shipping (#PCDATA)>
<!ELEMENT reserve (#PCDATA)>
<!ELEMENT incategory EMPTY>
<!ELEMENT mailbox (mail*)>
<!ELEMENT mail (from, to, date, text)>
<!ELEMENT from (#PCDATA)>
<!ELEMENT to (#PCDATA)>
<!ELEMENT date (#PCDATA)>
<!ELEMENT itemref EMPTY>
<!ELEMENT personref EMPTY>
<!ELEMENT people (person*)>
<!ELEMENT person (name, emailaddress, phone?, address?, homepage?, creditcard?, profile?, watches?)>
<!ELEMENT emailaddress (#PCDATA)>
<!ELEMENT phone (#PCDATA)>
<!ELEMENT address (street, city, country, province?, zipcode)>
<!ELEMENT street (#PCDATA)>
<!ELEMENT city (#PCDATA)>
<!ELEMENT province (#PCDATA)>
<!ELEMENT zipcode (#PCDATA)>
<!ELEMENT country (#PCDATA)>
<!ELEMENT homepage (#PCDATA)>
<!ELEMENT creditcard (#PCDATA)>
<!ELEMENT profile (interest*, education?, gender?, business, age?)>
<!ELEMENT interest EMPTY>
<!ELEMENT education (#PCDATA)>
<!ELEMENT income (#PCDATA)>
<!ELEMENT gender (#PCDATA)>
<!ELEMENT business (#PCDATA)>
<!ELEMENT age (#PCDATA)>
<!ELEMENT watches (watch*)>
<!ELEMENT watch EMPTY>
<!ELEMENT open_auctions (open_auction*)>
<!ELEMENT open_auction (initial, reserve?, bidder*, current, privacy?, itemref, seller, annotation, quantity, type, interval)>
<!ELEMENT privacy (#PCDATA)>
<!ELEMENT initial (#PCDATA)>
<!ELEMENT bidder (date, time, personref, increase)>
<!ELEMENT seller EMPTY>
<!ELEMENT current (#PCDATA)>
<!ELEMENT increase (#PCDATA)>
<!ELEMENT type (#PCDATA)>
<!ELEMENT interval (start, end)>
<!ELEMENT start (#PCDATA)>
<!ELEMENT end (#PCDATA)>
<!ELEMENT time (#PCDATA)>
<!ELEMENT status (#PCDATA)>
<!ELEMENT amount (#PCDATA)>
<!ELEMENT closed_auctions (closed_auction*)>
<!ELEMENT closed_auction (seller, buyer, itemref, price, date, quantity, type, annotation?)>
<!ELEMENT buyer EMPTY>
<!ELEMENT price (#PCDATA)>
<!ELEMENT annotation (author, description?, happiness)>
<!ELEMENT author EMPTY>
<!ELEMENT happiness (#PCDATA)>
`

// MustXMark returns the parsed Appendix A DTD; it panics only if the
// embedded constant is corrupted (covered by tests).
func MustXMark() *DTD {
	d, err := Parse(XMarkAuction)
	if err != nil {
		panic(err)
	}
	return d
}
