package cluster

import (
	"fmt"
	"io"

	"encshare/internal/filter"
	"encshare/internal/rmi"
)

// Dial connects to every listed server with default options — see
// DialWith.
func Dial(addrs []string) (*Filter, error) { return DialWith(addrs, Options{}) }

// DialWith connects to every listed server, asks each for the pre range
// it holds (filter.RangeAPI — no manifest file needed on the query
// side), and assembles the cluster filter. Servers reporting the SAME
// range are replicas of one shard (byte-identical copies of the same
// slice) and become one replica group with failover between them; the
// distinct ranges must tile a contiguous pre interval. The address list
// can therefore be flat — shards and their replicas in any order. A
// server that cannot be reached, does not speak the cluster protocol,
// or reports a range that neither matches nor tiles with the others
// fails the dial with a ShardError naming it; with
// Options.TolerateUnreachable, unreachable servers are skipped instead
// (an up-but-broken server still fails the dial), so sessions can start
// while a replica is down.
func DialWith(addrs []string, opts Options) (*Filter, error) {
	var closers []io.Closer
	closeAll := func() {
		for _, c := range closers {
			c.Close()
		}
	}
	type group struct {
		rng  Range
		reps []Replica
	}
	var groups []*group
	byRange := make(map[Range]*group)
	for i, addr := range addrs {
		cli, err := rmi.Dial(addr)
		if err != nil {
			if opts.TolerateUnreachable {
				continue
			}
			closeAll()
			return nil, &ShardError{Shard: i, Addr: addr, Err: err}
		}
		closers = append(closers, cli)
		rem := filter.NewRemote(cli)
		pr, err := rem.PreRange()
		if err != nil {
			closeAll()
			return nil, &ShardError{Shard: i, Addr: addr, Err: err}
		}
		r := Range{Lo: pr.Lo, Hi: pr.Hi}
		g := byRange[r]
		if g == nil {
			g = &group{rng: r}
			byRange[r] = g
			groups = append(groups, g)
		}
		g.reps = append(g.reps, Replica{Addr: addr, Conn: rem})
	}
	if len(groups) == 0 {
		closeAll()
		return nil, fmt.Errorf("cluster: no reachable servers among %d addresses", len(addrs))
	}
	shards := make([]Shard, len(groups))
	for i, g := range groups {
		shards[i] = Shard{Addr: g.reps[0].Addr, Range: g.rng, Replicas: g.reps}
	}
	f, err := NewWith(shards, opts)
	if err != nil {
		closeAll()
		return nil, err
	}
	f.closers = closers
	return f, nil
}
