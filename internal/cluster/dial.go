package cluster

import (
	"io"

	"encshare/internal/filter"
	"encshare/internal/rmi"
)

// Dial connects to every shard server, asks each for the pre range it
// holds (filter.RangeAPI — no manifest file needed on the query side),
// and assembles the cluster filter. A shard that cannot be reached, does
// not speak the cluster protocol, or reports a range that does not tile
// with the others fails the dial with a ShardError naming it.
func Dial(addrs []string) (*Filter, error) {
	var closers []io.Closer
	closeAll := func() {
		for _, c := range closers {
			c.Close()
		}
	}
	shards := make([]Shard, 0, len(addrs))
	for i, addr := range addrs {
		cli, err := rmi.Dial(addr)
		if err != nil {
			closeAll()
			return nil, &ShardError{Shard: i, Addr: addr, Err: err}
		}
		closers = append(closers, cli)
		rem := filter.NewRemote(cli)
		pr, err := rem.PreRange()
		if err != nil {
			closeAll()
			return nil, &ShardError{Shard: i, Addr: addr, Err: err}
		}
		shards = append(shards, Shard{Addr: addr, Range: Range{Lo: pr.Lo, Hi: pr.Hi}, Conn: rem})
	}
	f, err := New(shards)
	if err != nil {
		closeAll()
		return nil, err
	}
	f.closers = closers
	return f, nil
}
