package cluster

import (
	"errors"
	"fmt"
	"io"

	"encshare/internal/filter"
	"encshare/internal/rmi"
	"encshare/internal/server"
)

// dialServer dials one server for the given tenant: the connection's
// frames carry the tenant name, and for a non-default tenant the
// server must positively confirm it hosts that tenant (a pre-tenant
// server would otherwise silently answer from its only table).
func dialServer(addr, tenant string) (*rmi.Client, error) {
	cli, err := rmi.Dial(addr)
	if err != nil {
		return nil, err
	}
	if tenant != "" {
		cli.SetTenant(tenant)
		if _, err := server.ResolveTenant(cli); err != nil {
			cli.Close()
			return nil, err
		}
	}
	return cli, nil
}

// Dial connects to every listed server with default options — see
// DialWith.
func Dial(addrs []string) (*Filter, error) { return DialWith(addrs, Options{}) }

// DialWith connects to every listed server, asks each for the pre range
// it holds (filter.RangeAPI — no manifest file needed on the query
// side), and assembles the cluster filter. Servers reporting the SAME
// range are replicas of one shard (byte-identical copies of the same
// slice) and become one replica group with failover between them; the
// distinct ranges must tile a contiguous pre interval. The address list
// can therefore be flat — shards and their replicas in any order. A
// server that cannot be reached, does not speak the cluster protocol,
// or reports a range that neither matches nor tiles with the others
// fails the dial with a ShardError naming it; with
// Options.TolerateUnreachable, unreachable servers are skipped instead
// (an up-but-broken server still fails the dial), so sessions can start
// while a replica is down.
func DialWith(addrs []string, opts Options) (*Filter, error) {
	var closers []io.Closer
	closeAll := func() {
		for _, c := range closers {
			c.Close()
		}
	}
	type group struct {
		rng  Range
		reps []Replica
	}
	var groups []*group
	byRange := make(map[Range]*group)
	for i, addr := range addrs {
		cli, err := dialServer(addr, opts.Tenant)
		if err != nil {
			if opts.TolerateUnreachable && !isTenantErr(err) {
				continue
			}
			closeAll()
			return nil, &ShardError{Shard: i, Addr: addr, Err: err}
		}
		closers = append(closers, cli)
		rem := filter.NewRemote(cli)
		pr, err := rem.PreRange()
		if err != nil {
			closeAll()
			return nil, &ShardError{Shard: i, Addr: addr, Err: err}
		}
		r := Range{Lo: pr.Lo, Hi: pr.Hi}
		g := byRange[r]
		if g == nil {
			g = &group{rng: r}
			byRange[r] = g
			groups = append(groups, g)
		}
		g.reps = append(g.reps, Replica{Addr: addr, Conn: rem})
	}
	if len(groups) == 0 {
		closeAll()
		return nil, fmt.Errorf("cluster: no reachable servers among %d addresses", len(addrs))
	}
	shards := make([]Shard, len(groups))
	for i, g := range groups {
		shards[i] = Shard{Addr: g.reps[0].Addr, Range: g.rng, Replicas: g.reps}
	}
	f, err := NewWith(shards, opts)
	if err != nil {
		closeAll()
		return nil, err
	}
	f.closers = closers
	// Best-effort epoch pin: reads are fenced from the first frame when
	// the servers speak the mutation protocol; pre-mutation servers (and
	// transient probe failures) just leave the session unpinned, exactly
	// the read-only behavior it had before.
	_ = f.RefreshEpochs()
	return f, nil
}

// isTenantErr reports a tenant-level rejection from an otherwise
// healthy server — never skipped by TolerateUnreachable, because the
// server is up and the configuration is wrong.
func isTenantErr(err error) bool {
	var te *server.TenantError
	return errors.As(err, &te)
}

// AddReplica dials addr and joins it to the live session's shard group
// whose pre range it reports — the topology-change seam replication
// left open: a freshly provisioned replica starts taking traffic
// without the session redialing. The server must hold exactly the same
// range as an existing group (byte-identical replicas are the only
// safe live addition; re-sharding is a different operation), and must
// serve the session's tenant. Returns the index of the shard group
// joined.
func (f *Filter) AddReplica(addr string) (int, error) {
	cli, err := dialServer(addr, f.opts.Tenant)
	if err != nil {
		return 0, fmt.Errorf("cluster: adding replica %s: %w", addr, err)
	}
	rem := filter.NewRemote(cli)
	pr, err := rem.PreRange()
	if err != nil {
		cli.Close()
		return 0, fmt.Errorf("cluster: adding replica %s: %w", addr, err)
	}
	r := Range{Lo: pr.Lo, Hi: pr.Hi}
	for si, sh := range f.shards {
		if sh.rangeOf() == r {
			if tr := f.tracer.Load(); tr != nil {
				rem.SetTracer(tr, si, addr)
			}
			sh.addReplica(&replica{addr: addr, conn: rem})
			f.addCloser(cli)
			return si, nil
		}
	}
	// No exact match: a replica that missed renumbering batches reports
	// a range lagging its group's by the missed shifts. If it speaks the
	// mutation protocol it also reports WHERE its log stopped, and this
	// session's redelivery backlog records what each shard's range was
	// at every retained log position — so the replica is adopted into
	// the one shard whose recorded range at that position equals its
	// reported range exactly. Shard ranges are disjoint at every log
	// position, so the match is unambiguous where an overlap heuristic
	// is not: a replica that missed enough renumbering can overlap a
	// neighbor shard more than its own group, and joining the wrong
	// group would apply foreign batches to its store and serve wrong
	// rows. A replica whose position fell out of the window is refused —
	// SyncReplicas could not catch it up anyway; re-seed it from a
	// sibling.
	if info, eerr := rem.Epoch(); eerr == nil {
		lagged := Range{Lo: info.Range.Lo, Hi: info.Range.Hi}
		if si, ok := f.shardAtLogPos(lagged, info.LastSeq); ok {
			if tr := f.tracer.Load(); tr != nil {
				rem.SetTracer(tr, si, addr)
			}
			f.shards[si].addReplica(&replica{addr: addr, conn: rem})
			f.addCloser(cli)
			return si, nil
		}
	}
	cli.Close()
	return 0, fmt.Errorf("cluster: replica %s reports range [%d, %d], which matches no shard group", addr, r.Lo, r.Hi)
}

// shardAtLogPos returns the shard whose range at log position seq was
// exactly r, consulting each shard's recorded write history (see
// shardState.rangeAt). At most one shard can match — ranges tile the
// pre axis disjointly at every position.
func (f *Filter) shardAtLogPos(r Range, seq uint64) (int, bool) {
	f.mutMu.mu.Lock()
	defer f.mutMu.mu.Unlock()
	for si, sh := range f.shards {
		if !sh.seqOK {
			continue
		}
		if g, ok := sh.rangeAt(seq); ok && g == r {
			return si, true
		}
	}
	return -1, false
}
