// Package cluster shards the encrypted node table over N servers and
// presents them to the engines as one filter.ServerAPI + filter.BatchAPI.
//
// The paper's protocol assumes a single untrusted server holding the
// whole (pre, post, parent, poly) share table. Because every share row
// is independently uniformly random, the table can be cut along the pre
// axis into contiguous slices and each slice handed to a different
// server without changing what any one server learns: a shard sees a
// strict subset of the rows, point queries, and batch frames the single
// server would have seen, and the secrets (seed, tag map) still never
// leave the client. See DESIGN.md for the full trust argument.
//
// Routing exploits the Grust numbering the store already relies on:
//
//   - point operations (Node, EvalAt, Poly) go to the one shard whose
//     range contains the pre;
//   - descendants of (pre, post) occupy the contiguous pre interval
//     (pre, pre+size], so the span scatters to every shard whose range
//     ends past pre, each shard range-scans its slice independently, and
//     concatenating replies in shard order is already document order;
//   - children of pre live inside that same interval, so child fetches
//     broadcast the same way; and the strict equality test's
//     node+children bundles use filter.PartialAPI, where every relevant
//     shard returns the fragment it stores and the client merges.
//
// Every batch frame of one engine step is scattered as at most ONE
// concurrent rmi frame per shard, gathered, and re-ordered to preserve
// batch member order — so the whole batched pipeline of PR 1 runs
// unchanged against a cluster, and a step costs at most one exchange
// per shard instead of one exchange total.
//
// # Replicas and failover
//
// A shard may be served by several replicas. Replicas are byte-identical
// copies of the same share slice (the rows are immutable once encoded,
// so there is no consistency protocol — any replica answers any read
// identically). Each per-shard frame is routed to one healthy replica,
// chosen round-robin to spread load; a transport failure or a
// protocol-violating reply (filter.Retryable) fails the frame over to
// the next replica and trips the failed connection's circuit breaker,
// so a dead replica is skipped until its cooldown expires. With
// Options.Hedge, a frame that outlives the shard's recent latency
// percentile is duplicated on a second replica and the first reply
// wins — safe for the same immutability reason.
package cluster

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"encshare/internal/filter"
	"encshare/internal/gf"
	"encshare/internal/obs"
	"encshare/internal/store"
)

// Range is a contiguous, inclusive pre interval owned by one shard.
type Range struct {
	Lo int64 `json:"lo"`
	Hi int64 `json:"hi"`
}

func (r Range) contains(pre int64) bool { return pre >= r.Lo && pre <= r.Hi }

// Conn is what the cluster needs from each shard replica: the base and
// batched filter protocols, the shard-partial equality bundles, and the
// aggregate fold frames. Both *filter.Remote (TCP shards, which answers
// filter.ErrAggregateUnsupported for pre-aggregate servers) and
// *filter.ServerFilter (in-process shards) satisfy it.
type Conn interface {
	filter.ServerAPI
	filter.BatchAPI
	filter.PartialAPI
	filter.AggregateAPI
}

// Replica couples one replica connection with its address label.
type Replica struct {
	Addr string
	Conn Conn
}

// Shard couples a replica set with the pre range it owns. The
// single-replica shorthand (Addr + Conn, as PR 2 deployments built)
// remains valid: when Replicas is empty, {Addr, Conn} is the one
// replica.
type Shard struct {
	Addr     string // diagnostic label (host:port, or a name for local shards)
	Range    Range
	Conn     Conn // single-replica shorthand; ignored when Replicas is set
	Replicas []Replica
}

// replicas returns the shard's normalized replica list.
func (s Shard) replicas() []Replica {
	if len(s.Replicas) > 0 {
		return s.Replicas
	}
	if s.Conn == nil {
		return nil
	}
	return []Replica{{Addr: s.Addr, Conn: s.Conn}}
}

// Options tunes the replica routing of a cluster filter.
type Options struct {
	// Hedge enables hedged reads: a per-shard frame still unanswered
	// after the hedge delay is duplicated on a second replica, first
	// reply wins. Replicas hold identical immutable rows, so duplicated
	// reads are always consistent.
	Hedge bool
	// HedgeAfter fixes the hedge trigger delay. Zero means adaptive: the
	// 90th percentile of the shard's recent call latencies, once enough
	// samples exist.
	HedgeAfter time.Duration
	// TolerateUnreachable lets DialWith succeed while some listed
	// servers are down, as long as the reachable ones still tile the pre
	// axis — so sessions can start during a replica outage. The default
	// (strict) dial fails on the first unreachable address, which is the
	// right behavior for catching typos.
	TolerateUnreachable bool
	// Tenant names the tenant every dialed connection is issued
	// against — how one cluster of multi-tenant servers presents a
	// different shard table per tenant. Empty routes to each server's
	// default tenant (the pre-tenant behavior). Non-empty tenants are
	// verified at dial time: a server that predates the tenant
	// protocol fails the dial instead of silently answering from its
	// default table.
	Tenant string
}

// replica is the runtime state of one shard replica connection.
type replica struct {
	addr string
	conn Conn
	brk  breaker
}

// Op classes for latency sampling. Point lookups (a row fetch, one
// evaluation) and batch frames (a whole engine step's work) live on
// latency scales orders of magnitude apart; hedging batches against a
// point-op percentile would duplicate every expensive frame, so each
// class keeps its own window.
const (
	opPoint = iota
	opBatch
	opClasses
)

// shardState is the runtime state of one shard: its replica set plus the
// round-robin cursor and per-op-class latency windows the router uses.
// The replica set is mutable — AddReplica grows it on a live session —
// so readers take a snapshot through replicaList and index only into
// that snapshot.
type shardState struct {
	label string // first replica's address, for error messages
	rngMu sync.RWMutex
	rng   Range // guarded by rngMu: renumbering mutations shift it live
	repMu sync.RWMutex
	reps  []*replica
	rr    atomic.Uint32
	lat   [opClasses]latWindow

	// Writer-session mutation state, guarded by the Filter's mutMu: the
	// shard's log position as this session knows it, the bounded
	// redelivery window SyncReplicas serves lagging replicas from, and
	// at most one parked batch whose delivery is unknown (sent while
	// every replica was unreachable; flushed by SyncReplicas).
	lastSeq uint64
	seqOK   bool
	backlog []backlogEntry
	pending *filter.MutationBatch
}

// backlogEntry is one committed batch in the redelivery window plus the
// shard's pre range BEFORE it applied — the log-position evidence that
// lets a recovering replica be adopted into the right shard (see
// rangeAt / Filter.shardAtLogPos).
type backlogEntry struct {
	b    filter.MutationBatch
	prev Range
}

// rangeAt returns the shard's pre range as of log position seq (the
// range after batch seq applied; seq 0 = before any batch this session
// recorded), reconstructed from the backlog's pre-batch ranges.
// ok=false when seq falls outside the retained window or ahead of the
// log. Caller holds the Filter's mutMu.
func (sh *shardState) rangeAt(seq uint64) (Range, bool) {
	if seq == sh.lastSeq {
		return sh.rangeOf(), true
	}
	if seq > sh.lastSeq {
		return Range{}, false
	}
	for i := len(sh.backlog) - 1; i >= 0; i-- {
		if sh.backlog[i].b.Seq == seq+1 {
			return sh.backlog[i].prev, true
		}
	}
	return Range{}, false
}

// rangeOf snapshots the shard's current pre range.
func (sh *shardState) rangeOf() Range {
	sh.rngMu.RLock()
	defer sh.rngMu.RUnlock()
	return sh.rng
}

func (sh *shardState) setRange(r Range) {
	sh.rngMu.Lock()
	sh.rng = r
	sh.rngMu.Unlock()
}

// replicaList snapshots the current replica set. The slice is
// append-only: a concurrent addReplica may publish a longer list, but
// never mutates the elements a snapshot holds.
func (sh *shardState) replicaList() []*replica {
	sh.repMu.RLock()
	defer sh.repMu.RUnlock()
	return sh.reps
}

func (sh *shardState) addReplica(r *replica) {
	sh.repMu.Lock()
	sh.reps = append(sh.reps, r)
	sh.repMu.Unlock()
}

// replicaOrder returns indices into reps in dispatch-preference order:
// round-robin rotated for load spread, connections with open circuit
// breakers pushed last (still tried when every healthy replica fails —
// a degraded replica beats no answer).
func (sh *shardState) replicaOrder(reps []*replica) []int {
	n := len(reps)
	if n == 1 {
		return []int{0}
	}
	start := int(sh.rr.Add(1)-1) % n
	order := make([]int, 0, n)
	var open []int
	for i := 0; i < n; i++ {
		ri := (start + i) % n
		if reps[ri].brk.allow() {
			order = append(order, ri)
		} else {
			open = append(open, ri)
		}
	}
	return append(order, open...)
}

// Filter is the client-side sharded backend: a filter.ServerAPI +
// filter.BatchAPI that scatters work over shards and gathers replies in
// request order, failing over between replicas per shard. A
// filter.Client (and therefore every engine) runs against it unchanged.
type Filter struct {
	shards []*shardState // sorted by rng.Lo; ranges tile [lo, hi] with no gaps
	opts   Options
	mutMu  mutState // serializes this session's Mutate/SyncReplicas calls

	closerMu sync.Mutex
	closers  []io.Closer

	failovers atomic.Int64
	hedges    atomic.Int64

	// tracer, when attached, gets failover/hedge events and is pushed
	// down to every replica proxy (including ones joined later).
	tracer atomic.Pointer[obs.Tracer]
}

// connTracer is the tracing hook a replica connection may expose
// (*filter.Remote does; in-process conns don't record frames).
type connTracer interface {
	SetTracer(tr *obs.Tracer, shard int, addr string)
}

var (
	_ filter.ServerAPI    = (*Filter)(nil)
	_ filter.BatchAPI     = (*Filter)(nil)
	_ filter.StatsAPI     = (*Filter)(nil)
	_ filter.AggregateAPI = (*Filter)(nil)
)

// New assembles a cluster filter from shards with default options. The
// shard ranges must tile a contiguous pre interval: copies may arrive in
// any order, but after sorting there must be no gap and no overlap.
func New(shards []Shard) (*Filter, error) { return NewWith(shards, Options{}) }

// NewWith is New with explicit replica-routing options.
func NewWith(shards []Shard, opts Options) (*Filter, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("cluster: no shards")
	}
	s := append([]Shard(nil), shards...)
	sort.Slice(s, func(i, j int) bool { return s[i].Range.Lo < s[j].Range.Lo })
	states := make([]*shardState, len(s))
	for i, sh := range s {
		reps := sh.replicas()
		if len(reps) == 0 {
			return nil, fmt.Errorf("cluster: shard %d (%s) has no connection", i, sh.Addr)
		}
		if sh.Range.Lo > sh.Range.Hi {
			return nil, fmt.Errorf("cluster: shard %d (%s) has empty range [%d, %d]", i, sh.Addr, sh.Range.Lo, sh.Range.Hi)
		}
		if i > 0 && sh.Range.Lo != s[i-1].Range.Hi+1 {
			return nil, fmt.Errorf("cluster: shard ranges do not tile: [..., %d] then [%d, ...]",
				s[i-1].Range.Hi, sh.Range.Lo)
		}
		st := &shardState{rng: sh.Range}
		for ri, rep := range reps {
			if rep.Conn == nil {
				return nil, fmt.Errorf("cluster: shard %d replica %d (%s) has no connection", i, ri, rep.Addr)
			}
			st.reps = append(st.reps, &replica{addr: rep.Addr, conn: rep.Conn})
		}
		st.label = st.reps[0].addr
		states[i] = st
	}
	return &Filter{shards: states, opts: opts}, nil
}

// Shards returns the shard count.
func (f *Filter) Shards() int { return len(f.shards) }

// Replicas returns the per-shard replica counts, in shard order.
func (f *Filter) Replicas() []int {
	out := make([]int, len(f.shards))
	for i, sh := range f.shards {
		out[i] = len(sh.replicaList())
	}
	return out
}

// Failovers returns how many per-shard frames were retried on another
// replica after a retryable failure.
func (f *Filter) Failovers() int64 { return f.failovers.Load() }

// Hedges returns how many hedge frames were fired at a second replica.
func (f *Filter) Hedges() int64 { return f.hedges.Load() }

// SetTracer attaches (nil detaches) a query tracer: every replica proxy
// records its frames under the owning shard's index and address, and
// the router emits failover/hedge events. Replicas joined later via
// AddReplica inherit the tracer.
func (f *Filter) SetTracer(tr *obs.Tracer) {
	f.tracer.Store(tr)
	for si, sh := range f.shards {
		for _, rep := range sh.replicaList() {
			if ct, ok := rep.conn.(connTracer); ok {
				ct.SetTracer(tr, si, rep.addr)
			}
		}
	}
}

// RegisterMetrics registers the cluster's routing health into reg:
// failover/hedge totals as func-backed counters, and per-replica
// breaker state plus per-shard replica counts as a scrape-time
// collector (the replica set is live-mutable, so enumeration happens at
// scrape).
func (f *Filter) RegisterMetrics(reg *obs.Registry) {
	reg.CounterFunc("cluster_failovers_total", "frames retried on another replica", nil, f.failovers.Load)
	reg.CounterFunc("cluster_hedges_total", "hedge frames fired", nil, f.hedges.Load)
	reg.Collect(func(emit func(obs.Sample)) {
		for si, sh := range f.shards {
			reps := sh.replicaList()
			emit(obs.Sample{
				Name: "cluster_replicas", Help: "replicas serving the shard", Type: obs.TypeGauge,
				Labels: obs.Labels{"shard": fmt.Sprint(si)}, Value: float64(len(reps)),
			})
			for _, rep := range reps {
				streak, open := rep.brk.state()
				lbl := obs.Labels{"shard": fmt.Sprint(si), "addr": rep.addr}
				var openVal float64
				if open {
					openVal = 1
				}
				emit(obs.Sample{Name: "cluster_breaker_open", Help: "1 while the replica's circuit breaker is open", Type: obs.TypeGauge, Labels: lbl, Value: openVal})
				emit(obs.Sample{Name: "cluster_breaker_streak", Help: "consecutive retryable failures on the replica", Type: obs.TypeGauge, Labels: lbl, Value: float64(streak)})
			}
		}
	})
}

// Close closes whatever closers the filter owns (the rmi connections of
// a dialed cluster, including ones joined later via AddReplica; none
// for in-process shards).
func (f *Filter) Close() error {
	f.closerMu.Lock()
	closers := f.closers
	f.closers = nil
	f.closerMu.Unlock()
	var first error
	for _, c := range closers {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// addCloser registers a connection for Close to release.
func (f *Filter) addCloser(c io.Closer) {
	f.closerMu.Lock()
	f.closers = append(f.closers, c)
	f.closerMu.Unlock()
}

// roundTripper is implemented by *filter.Remote; in-process shard conns
// report zero.
type roundTripper interface {
	RoundTrips() int64
	EvalRoundTrips() int64
}

// RoundTrips returns the total rmi exchanges issued across all shards.
func (f *Filter) RoundTrips() int64 {
	var total int64
	for _, n := range f.ShardRoundTrips() {
		total += n
	}
	return total
}

// ShardRoundTrips returns per-shard exchange counts (summed over the
// shard's replicas), in shard order — how the tests enforce "at most one
// exchange per shard per step".
func (f *Filter) ShardRoundTrips() []int64 {
	out := make([]int64, len(f.shards))
	for i, sh := range f.shards {
		for _, rep := range sh.replicaList() {
			if rt, ok := rep.conn.(roundTripper); ok {
				out[i] += rt.RoundTrips()
			}
		}
	}
	return out
}

// ServerStats implements filter.StatsAPI: the member-wise sum of every
// reachable replica's server-side counters (each replica serves a share
// of the shard's frames, so the shard's work is spread across them).
// Replicas that are down or predate the stats method contribute zeros —
// stats are diagnostics and must not fail a healthy query session.
func (f *Filter) ServerStats() (filter.ServerStats, error) {
	var (
		mu    sync.Mutex
		total filter.ServerStats
	)
	all := make([]bool, len(f.shards))
	for i := range all {
		all[i] = true
	}
	_ = f.scatter(all, func(si int) error {
		for _, rep := range f.shards[si].replicaList() {
			sa, ok := rep.conn.(filter.StatsAPI)
			if !ok {
				continue
			}
			st, err := sa.ServerStats()
			if err != nil {
				continue // unreachable replica: diagnostics stay best-effort
			}
			mu.Lock()
			total = total.Add(st)
			mu.Unlock()
		}
		return nil
	})
	return total, nil
}

// ShardEvalRoundTrips returns per-shard evaluation exchange counts.
func (f *Filter) ShardEvalRoundTrips() []int64 {
	out := make([]int64, len(f.shards))
	for i, sh := range f.shards {
		for _, rep := range sh.replicaList() {
			if rt, ok := rep.conn.(roundTripper); ok {
				out[i] += rt.EvalRoundTrips()
			}
		}
	}
	return out
}

// owner returns the index of the shard owning pre.
func (f *Filter) owner(pre int64) (int, error) {
	i := sort.Search(len(f.shards), func(i int) bool { return f.shards[i].rangeOf().Hi >= pre })
	if i == len(f.shards) || !f.shards[i].rangeOf().contains(pre) {
		return 0, &RangeError{Pre: pre, Lo: f.shards[0].rangeOf().Lo, Hi: f.shards[len(f.shards)-1].rangeOf().Hi}
	}
	return i, nil
}

// onShard runs op against one replica of shard si: the round-robin
// choice first, failing over through the remaining replicas on
// retryable errors (filter.Retryable — transport failures and
// protocol-violating replies), with an optional hedge duplicate once
// the call outlives the shard's latency percentile for the op's class.
// The first successful reply wins; a deterministic error aborts
// immediately, as every byte-identical replica would repeat it.
func onShard[T any](f *Filter, si, class int, op func(Conn) (T, error)) (T, error) {
	sh := f.shards[si]
	reps := sh.replicaList()
	order := sh.replicaOrder(reps)
	type result struct {
		v   T
		err error
	}
	// Buffered to the replica count so abandoned calls (losing hedges,
	// stragglers behind a non-retryable failure) never leak a goroutine.
	ch := make(chan result, len(order))
	next, inflight := 0, 0
	launch := func() {
		rep := reps[order[next]]
		next++
		inflight++
		go func() {
			start := time.Now()
			v, err := op(rep.conn)
			switch {
			case err == nil:
				rep.brk.success()
				sh.lat[class].add(time.Since(start))
			case filter.Retryable(err):
				rep.brk.failure()
			default:
				// A deterministic handler error still proves the
				// connection round-trips: health-wise it is a success.
				rep.brk.success()
			}
			ch <- result{v, err}
		}()
	}
	launch()
	var hedge <-chan time.Time
	if f.opts.Hedge && next < len(order) {
		if d, ok := f.hedgeDelay(sh, class); ok {
			hedge = time.After(d)
		}
	}
	var lastErr error
	for inflight > 0 {
		select {
		case r := <-ch:
			inflight--
			if r.err == nil {
				return r.v, nil
			}
			if !filter.Retryable(r.err) {
				var zero T
				return zero, r.err
			}
			lastErr = r.err
			// Fail over immediately even while a hedge duplicate is
			// still in flight — otherwise the frame's latency would be
			// gated on the very straggler the hedge was meant to beat.
			if next < len(order) {
				f.failovers.Add(1)
				if tr := f.tracer.Load(); tr != nil {
					tr.Event(fmt.Sprintf("failover shard %d -> %s", si, reps[order[next]].addr))
				}
				launch()
			}
		case <-hedge:
			hedge = nil
			if next < len(order) { // a failover may already hold the last replica
				f.hedges.Add(1)
				if tr := f.tracer.Load(); tr != nil {
					tr.Event(fmt.Sprintf("hedge shard %d -> %s", si, reps[order[next]].addr))
				}
				launch()
			}
		}
	}
	var zero T
	if len(order) == 1 {
		return zero, lastErr
	}
	return zero, fmt.Errorf("cluster: all %d replicas failed: %w", len(order), lastErr)
}

// hedgeDelay returns the delay after which a frame of the given class
// on sh should be hedged, or ok=false when there is no basis to hedge
// yet.
func (f *Filter) hedgeDelay(sh *shardState, class int) (time.Duration, bool) {
	if f.opts.HedgeAfter > 0 {
		return f.opts.HedgeAfter, true
	}
	d, ok := sh.lat[class].quantile(hedgeQuantile)
	if !ok {
		return 0, false
	}
	if d < minHedgeDelay {
		d = minHedgeDelay
	}
	return d, true
}

// scatter runs fn for every shard with a non-nil work item, one
// goroutine per shard, and returns the first failure wrapped as a
// ShardError naming the shard.
func (f *Filter) scatter(active []bool, fn func(si int) error) error {
	var wg sync.WaitGroup
	errs := make([]error, len(f.shards))
	for si := range f.shards {
		if !active[si] {
			continue
		}
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			errs[si] = fn(si)
		}(si)
	}
	wg.Wait()
	for si, err := range errs {
		if err != nil {
			return &ShardError{Shard: si, Addr: f.shards[si].label, Err: err}
		}
	}
	return nil
}

// group splits request indices by owning shard, preserving request order
// within each group.
func (f *Filter) group(n int, preAt func(int) int64) (groups [][]int, active []bool, err error) {
	groups = make([][]int, len(f.shards))
	active = make([]bool, len(f.shards))
	for i := 0; i < n; i++ {
		si, err := f.owner(preAt(i))
		if err != nil {
			return nil, nil, err
		}
		groups[si] = append(groups[si], i)
		active[si] = true
	}
	return groups, active, nil
}

// spread lists, per shard, the request indices the shard may hold rows
// for: everything whose subtree interval reaches into the shard's range
// (rows of interest have pre > req pre, so shards ending at or before it
// hold none).
func (f *Filter) spread(n int, preAt func(int) int64) (groups [][]int, active []bool) {
	groups = make([][]int, len(f.shards))
	active = make([]bool, len(f.shards))
	for si, sh := range f.shards {
		hi := sh.rangeOf().Hi
		for i := 0; i < n; i++ {
			if hi > preAt(i) {
				groups[si] = append(groups[si], i)
				active[si] = true
			}
		}
	}
	return groups, active
}

// --- point operations: route to the owning shard -----------------------

// shardErr wraps a shard-level failure with the shard's identity.
func (f *Filter) shardErr(si int, err error) error {
	if err == nil {
		return nil
	}
	return &ShardError{Shard: si, Addr: f.shards[si].label, Err: err}
}

// Root implements filter.ServerAPI: the document root is the smallest
// pre, owned by the first shard.
func (f *Filter) Root() (filter.NodeMeta, error) {
	m, err := onShard(f, 0, opPoint, func(c Conn) (filter.NodeMeta, error) { return c.Root() })
	if err != nil {
		return filter.NodeMeta{}, f.shardErr(0, err)
	}
	return m, nil
}

// Node implements filter.ServerAPI.
func (f *Filter) Node(pre int64) (filter.NodeMeta, error) {
	si, err := f.owner(pre)
	if err != nil {
		return filter.NodeMeta{}, err
	}
	m, err := onShard(f, si, opPoint, func(c Conn) (filter.NodeMeta, error) { return c.Node(pre) })
	if err != nil {
		return filter.NodeMeta{}, f.shardErr(si, err)
	}
	return m, nil
}

// EvalAt implements filter.ServerAPI.
func (f *Filter) EvalAt(pre int64, point gf.Elem) (gf.Elem, error) {
	si, err := f.owner(pre)
	if err != nil {
		return 0, err
	}
	v, err := onShard(f, si, opPoint, func(c Conn) (gf.Elem, error) { return c.EvalAt(pre, point) })
	if err != nil {
		return 0, f.shardErr(si, err)
	}
	return v, nil
}

// Poly implements filter.ServerAPI.
func (f *Filter) Poly(pre int64) (filter.PolyRow, error) {
	si, err := f.owner(pre)
	if err != nil {
		return filter.PolyRow{}, err
	}
	row, err := onShard(f, si, opPoint, func(c Conn) (filter.PolyRow, error) { return c.Poly(pre) })
	if err != nil {
		return filter.PolyRow{}, f.shardErr(si, err)
	}
	return row, nil
}

// Count implements filter.ServerAPI: the sum over shards.
func (f *Filter) Count() (int64, error) {
	counts := make([]int64, len(f.shards))
	all := make([]bool, len(f.shards))
	for i := range all {
		all[i] = true
	}
	err := f.scatter(all, func(si int) error {
		n, err := onShard(f, si, opPoint, func(c Conn) (int64, error) { return c.Count() })
		counts[si] = n
		return err
	})
	if err != nil {
		return 0, err
	}
	var total int64
	for _, n := range counts {
		total += n
	}
	return total, nil
}

// --- interval operations: broadcast and merge in shard order -----------

// mergeLists concatenates each member's per-shard reply lists in shard
// order. Shards tile the pre axis in ascending order and every shard
// returns its rows sorted by pre, so the concatenation is document
// order — identical to the single-server reply.
func mergeLists[T any](nShards, nReqs int, groups [][]int, parts [][][]T) [][]T {
	out := make([][]T, nReqs)
	for si := 0; si < nShards; si++ {
		for j, i := range groups[si] {
			if len(parts[si][j]) > 0 {
				out[i] = append(out[i], parts[si][j]...)
			}
		}
	}
	return out
}

// badCount reports a shard reply carrying the wrong member count — a
// retryable protocol violation (another replica may answer correctly).
func badCount(got, want int) error {
	return &filter.BadReplyError{Msg: fmt.Sprintf("shard reply carried %d members for %d requests", got, want)}
}

// broadcastLists is the shared scatter/gather of Children- and
// Descendants-shaped calls: ship each shard its relevant members in one
// call, validate reply lengths, merge in shard order. Validation runs
// inside the per-replica op, so a malformed reply fails over like a
// transport error.
func broadcastLists[Req, T any](f *Filter, reqs []Req, preOf func(Req) int64,
	call func(Conn, []Req) ([][]T, error)) ([][]T, error) {
	groups, active := f.spread(len(reqs), func(i int) int64 { return preOf(reqs[i]) })
	parts := make([][][]T, len(f.shards))
	err := f.scatter(active, func(si int) error {
		sub := make([]Req, len(groups[si]))
		for j, i := range groups[si] {
			sub[j] = reqs[i]
		}
		part, err := onShard(f, si, opBatch, func(c Conn) ([][]T, error) {
			part, err := call(c, sub)
			if err != nil {
				return nil, err
			}
			if len(part) != len(sub) {
				return nil, badCount(len(part), len(sub))
			}
			return part, nil
		})
		if err != nil {
			return err
		}
		parts[si] = part
		return nil
	})
	if err != nil {
		return nil, err
	}
	return mergeLists(len(f.shards), len(reqs), groups, parts), nil
}

// Children implements filter.ServerAPI: children can spill past the
// owner's boundary, so the fetch broadcasts to every shard past pre.
func (f *Filter) Children(pre int64) ([]filter.NodeMeta, error) {
	lists, err := broadcastLists(f, []int64{pre}, func(p int64) int64 { return p },
		func(c Conn, sub []int64) ([][]filter.NodeMeta, error) {
			kids, err := c.Children(sub[0])
			return [][]filter.NodeMeta{kids}, err
		})
	if err != nil {
		return nil, err
	}
	return lists[0], nil
}

// Descendants implements filter.ServerAPI. Each shard resolves the span
// against its own slice (the store's boundary scan is correct on a
// slice: any local row between pre and the first local following node
// is a descendant), and shard-order concatenation restores document
// order.
func (f *Filter) Descendants(pre, post int64) ([]filter.NodeMeta, error) {
	lists, err := broadcastLists(f, []filter.Span{{Pre: pre, Post: post}},
		func(sp filter.Span) int64 { return sp.Pre },
		func(c Conn, sub []filter.Span) ([][]filter.NodeMeta, error) {
			ms, err := c.Descendants(sub[0].Pre, sub[0].Post)
			return [][]filter.NodeMeta{ms}, err
		})
	if err != nil {
		return nil, err
	}
	return lists[0], nil
}

// ChildrenPolys implements filter.ServerAPI.
func (f *Filter) ChildrenPolys(pre int64) ([]filter.PolyRow, error) {
	lists, err := broadcastLists(f, []int64{pre}, func(p int64) int64 { return p },
		func(c Conn, sub []int64) ([][]filter.PolyRow, error) {
			rows, err := c.ChildrenPolys(sub[0])
			return [][]filter.PolyRow{rows}, err
		})
	if err != nil {
		return nil, err
	}
	return lists[0], nil
}

// --- batched operations: one frame per shard per batch -----------------

// gatherIndexed is the shared scatter/gather of the index-addressed
// batch methods (EvalBatch, NodeBatch): one frame per shard carrying the
// shard's members, replies land back at their request indices.
func gatherIndexed[Req, Resp any](f *Filter, reqs []Req, preOf func(Req) int64,
	call func(Conn, []Req) ([]Resp, error)) ([]Resp, error) {
	groups, active, err := f.group(len(reqs), func(i int) int64 { return preOf(reqs[i]) })
	if err != nil {
		return nil, err
	}
	out := make([]Resp, len(reqs))
	err = f.scatter(active, func(si int) error {
		sub := make([]Req, len(groups[si]))
		for j, i := range groups[si] {
			sub[j] = reqs[i]
		}
		part, err := onShard(f, si, opBatch, func(c Conn) ([]Resp, error) {
			part, err := call(c, sub)
			if err != nil {
				return nil, err
			}
			if len(part) != len(sub) {
				return nil, badCount(len(part), len(sub))
			}
			return part, nil
		})
		if err != nil {
			return err
		}
		for j, i := range groups[si] {
			out[i] = part[j]
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// EvalBatch implements filter.BatchAPI: members are grouped by owning
// shard, one concurrent frame per shard, and replies land back at their
// request indices.
func (f *Filter) EvalBatch(reqs []filter.EvalRequest) ([]filter.EvalResult, error) {
	return gatherIndexed(f, reqs, func(r filter.EvalRequest) int64 { return r.Pre },
		func(c Conn, sub []filter.EvalRequest) ([]filter.EvalResult, error) { return c.EvalBatch(sub) })
}

// NodeBatch implements filter.BatchAPI.
func (f *Filter) NodeBatch(pres []int64) ([]filter.NodeMeta, error) {
	return gatherIndexed(f, pres, func(p int64) int64 { return p },
		func(c Conn, sub []int64) ([]filter.NodeMeta, error) { return c.NodeBatch(sub) })
}

// ChildrenBatch implements filter.BatchAPI.
func (f *Filter) ChildrenBatch(pres []int64) ([][]filter.NodeMeta, error) {
	return broadcastLists(f, pres, func(p int64) int64 { return p },
		func(c Conn, sub []int64) ([][]filter.NodeMeta, error) { return c.ChildrenBatch(sub) })
}

// DescendantsBatch implements filter.BatchAPI.
func (f *Filter) DescendantsBatch(spans []filter.Span) ([][]filter.NodeMeta, error) {
	return broadcastLists(f, spans, func(sp filter.Span) int64 { return sp.Pre },
		func(c Conn, sub []filter.Span) ([][]filter.NodeMeta, error) { return c.DescendantsBatch(sub) })
}

// AggregateBatch implements filter.AggregateAPI: the rows are grouped
// by owning shard (shards tile the pre axis, so each group is a
// contiguous run of the sorted request), each shard folds its run in ONE
// frame — this is where bytes-on-wire drop from O(rows) to O(shards) —
// and the per-shard chunk lists concatenate in shard order, which is
// exactly request order. Each chunk is stamped with its shard's label so
// a failed verification names the misbehaving shard. Folds are pure
// functions of immutable rows, so a replica dying mid-frame fails over
// like any read: the sibling reproduces the identical chunks, and a
// duplicated (hedged) frame is harmless. A single shard replying with a
// pre-aggregate "unknown method" downgrades the whole call
// (filter.ErrAggregateUnsupported), so mixed-version clusters fall back
// to client-side reconstruction rather than half-fold.
func (f *Filter) AggregateBatch(req filter.AggregateRequest) (filter.AggregateReply, error) {
	pres, err := filter.UnpackPres(req.Pres)
	if err != nil {
		return filter.AggregateReply{}, err
	}
	if len(req.Mask) != 0 && len(req.Mask) != len(pres) {
		return filter.AggregateReply{}, fmt.Errorf("cluster: aggregate mask has %d elements for %d rows", len(req.Mask), len(pres))
	}
	groups, active, err := f.group(len(pres), func(i int) int64 { return pres[i] })
	if err != nil {
		return filter.AggregateReply{}, err
	}
	parts := make([][]filter.AggregateChunk, len(f.shards))
	err = f.scatter(active, func(si int) error {
		idx := groups[si]
		subPres := make([]int64, len(idx))
		var subMask []gf.Elem
		if len(req.Mask) != 0 {
			subMask = make([]gf.Elem, len(idx))
		}
		for j, i := range idx {
			subPres[j] = pres[i]
			if subMask != nil {
				subMask[j] = req.Mask[i]
			}
		}
		subReq := filter.AggregateRequest{
			Ver:       req.Ver,
			Kind:      req.Kind,
			Pres:      filter.PackPres(subPres),
			Mask:      subMask,
			ChunkRows: req.ChunkRows,
		}
		rep, err := onShard(f, si, opBatch, func(c Conn) (filter.AggregateReply, error) {
			rep, err := c.AggregateBatch(subReq)
			if err != nil {
				return filter.AggregateReply{}, err
			}
			// Structural validation runs inside the per-replica op so a
			// malformed reply fails over to a sibling; the value-level
			// verification stays with the client, which holds the keys.
			var rows int
			for _, ck := range rep.Chunks {
				rows += int(ck.Rows)
			}
			if rows != len(subPres) {
				return filter.AggregateReply{}, badCount(rows, len(subPres))
			}
			return rep, nil
		})
		if err != nil {
			return err
		}
		for i := range rep.Chunks {
			rep.Chunks[i].Origin = f.shards[si].label
		}
		parts[si] = rep.Chunks
		return nil
	})
	if err != nil {
		if errors.Is(err, filter.ErrAggregateUnsupported) {
			return filter.AggregateReply{}, filter.ErrAggregateUnsupported
		}
		return filter.AggregateReply{}, err
	}
	out := filter.AggregateReply{Ver: filter.AggregateFrameVersion}
	for si := range f.shards {
		out.Chunks = append(out.Chunks, parts[si]...)
	}
	return out, nil
}

// NodePolysBatch implements filter.BatchAPI: every shard whose range
// reaches the node or could hold its children answers with the fragment
// it stores (filter.PartialAPI); fragments merge into the single-server
// bundle — node row from the owner, children concatenated in shard
// order.
func (f *Filter) NodePolysBatch(pres []int64) ([]filter.NodePolys, error) {
	groups := make([][]int, len(f.shards))
	active := make([]bool, len(f.shards))
	for si, sh := range f.shards {
		hi := sh.rangeOf().Hi
		for i, pre := range pres {
			if hi >= pre { // owner (Hi >= pre) or potential child holder (Hi > pre)
				groups[si] = append(groups[si], i)
				active[si] = true
			}
		}
	}
	parts := make([][]filter.PartialNodePolys, len(f.shards))
	err := f.scatter(active, func(si int) error {
		sub := make([]int64, len(groups[si]))
		for j, i := range groups[si] {
			sub[j] = pres[i]
		}
		part, err := onShard(f, si, opBatch, func(c Conn) ([]filter.PartialNodePolys, error) {
			part, err := c.NodePolysPartial(sub)
			if err != nil {
				return nil, err
			}
			if len(part) != len(sub) {
				return nil, badCount(len(part), len(sub))
			}
			return part, nil
		})
		if err != nil {
			return err
		}
		parts[si] = part
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]filter.NodePolys, len(pres))
	found := make([]bool, len(pres))
	for si := 0; si < len(f.shards); si++ {
		for j, i := range groups[si] {
			frag := parts[si][j]
			if frag.Err != "" && out[i].Err == "" {
				out[i].Err = frag.Err
				continue
			}
			if frag.Has {
				out[i].Node = frag.Node
				found[i] = true
			}
			out[i].Children = append(out[i].Children, frag.Children...)
		}
	}
	for i, ok := range found {
		if !ok && out[i].Err == "" {
			// Mirror the single-server behavior for a nonexistent node: a
			// member error, not a call failure.
			out[i].Err = store.NotFoundError(pres[i]).Error()
		}
	}
	return out, nil
}
