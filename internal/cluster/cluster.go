// Package cluster shards the encrypted node table over N servers and
// presents them to the engines as one filter.ServerAPI + filter.BatchAPI.
//
// The paper's protocol assumes a single untrusted server holding the
// whole (pre, post, parent, poly) share table. Because every share row
// is independently uniformly random, the table can be cut along the pre
// axis into contiguous slices and each slice handed to a different
// server without changing what any one server learns: a shard sees a
// strict subset of the rows, point queries, and batch frames the single
// server would have seen, and the secrets (seed, tag map) still never
// leave the client. See DESIGN.md for the full trust argument.
//
// Routing exploits the Grust numbering the store already relies on:
//
//   - point operations (Node, EvalAt, Poly) go to the one shard whose
//     range contains the pre;
//   - descendants of (pre, post) occupy the contiguous pre interval
//     (pre, pre+size], so the span scatters to every shard whose range
//     ends past pre, each shard range-scans its slice independently, and
//     concatenating replies in shard order is already document order;
//   - children of pre live inside that same interval, so child fetches
//     broadcast the same way; and the strict equality test's
//     node+children bundles use filter.PartialAPI, where every relevant
//     shard returns the fragment it stores and the client merges.
//
// Every batch frame of one engine step is scattered as at most ONE
// concurrent rmi frame per shard, gathered, and re-ordered to preserve
// batch member order — so the whole batched pipeline of PR 1 runs
// unchanged against a cluster, and a step costs at most one exchange
// per shard instead of one exchange total.
package cluster

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"encshare/internal/filter"
	"encshare/internal/gf"
	"encshare/internal/store"
)

// Range is a contiguous, inclusive pre interval owned by one shard.
type Range struct {
	Lo int64 `json:"lo"`
	Hi int64 `json:"hi"`
}

func (r Range) contains(pre int64) bool { return pre >= r.Lo && pre <= r.Hi }

// Conn is what the cluster needs from each shard: the base and batched
// filter protocols plus the shard-partial equality bundles. Both
// *filter.Remote (TCP shards) and *filter.ServerFilter (in-process
// shards) satisfy it.
type Conn interface {
	filter.ServerAPI
	filter.BatchAPI
	filter.PartialAPI
}

// Shard couples a connection with the pre range it owns.
type Shard struct {
	Addr  string // diagnostic label (host:port, or a name for local shards)
	Range Range
	Conn  Conn
}

// Filter is the client-side sharded backend: a filter.ServerAPI +
// filter.BatchAPI that scatters work over shards and gathers replies in
// request order. A filter.Client (and therefore every engine) runs
// against it unchanged.
type Filter struct {
	shards  []Shard // sorted by Range.Lo; ranges tile [lo, hi] with no gaps
	closers []io.Closer
}

var (
	_ filter.ServerAPI = (*Filter)(nil)
	_ filter.BatchAPI  = (*Filter)(nil)
)

// New assembles a cluster filter from shards. The shard ranges must tile
// a contiguous pre interval: sorted copies may arrive in any order, but
// after sorting there must be no gap and no overlap.
func New(shards []Shard) (*Filter, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("cluster: no shards")
	}
	s := append([]Shard(nil), shards...)
	sort.Slice(s, func(i, j int) bool { return s[i].Range.Lo < s[j].Range.Lo })
	for i, sh := range s {
		if sh.Conn == nil {
			return nil, fmt.Errorf("cluster: shard %d (%s) has no connection", i, sh.Addr)
		}
		if sh.Range.Lo > sh.Range.Hi {
			return nil, fmt.Errorf("cluster: shard %d (%s) has empty range [%d, %d]", i, sh.Addr, sh.Range.Lo, sh.Range.Hi)
		}
		if i > 0 && sh.Range.Lo != s[i-1].Range.Hi+1 {
			return nil, fmt.Errorf("cluster: shard ranges do not tile: [..., %d] then [%d, ...]",
				s[i-1].Range.Hi, sh.Range.Lo)
		}
	}
	return &Filter{shards: s}, nil
}

// Shards returns the shard count.
func (f *Filter) Shards() int { return len(f.shards) }

// Close closes whatever closers the filter owns (the rmi connections of
// a dialed cluster; none for in-process shards).
func (f *Filter) Close() error {
	var first error
	for _, c := range f.closers {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// roundTripper is implemented by *filter.Remote; in-process shard conns
// report zero.
type roundTripper interface {
	RoundTrips() int64
	EvalRoundTrips() int64
}

// RoundTrips returns the total rmi exchanges issued across all shards.
func (f *Filter) RoundTrips() int64 {
	var total int64
	for _, n := range f.ShardRoundTrips() {
		total += n
	}
	return total
}

// ShardRoundTrips returns per-shard exchange counts, in shard order —
// how the tests enforce "at most one exchange per shard per step".
func (f *Filter) ShardRoundTrips() []int64 {
	out := make([]int64, len(f.shards))
	for i, sh := range f.shards {
		if rt, ok := sh.Conn.(roundTripper); ok {
			out[i] = rt.RoundTrips()
		}
	}
	return out
}

// ShardEvalRoundTrips returns per-shard evaluation exchange counts.
func (f *Filter) ShardEvalRoundTrips() []int64 {
	out := make([]int64, len(f.shards))
	for i, sh := range f.shards {
		if rt, ok := sh.Conn.(roundTripper); ok {
			out[i] = rt.EvalRoundTrips()
		}
	}
	return out
}

// owner returns the index of the shard owning pre.
func (f *Filter) owner(pre int64) (int, error) {
	i := sort.Search(len(f.shards), func(i int) bool { return f.shards[i].Range.Hi >= pre })
	if i == len(f.shards) || !f.shards[i].Range.contains(pre) {
		return 0, &RangeError{Pre: pre, Lo: f.shards[0].Range.Lo, Hi: f.shards[len(f.shards)-1].Range.Hi}
	}
	return i, nil
}

// scatter runs fn for every shard with a non-nil work item, one
// goroutine per shard, and returns the first failure wrapped as a
// ShardError naming the shard.
func (f *Filter) scatter(active []bool, fn func(si int) error) error {
	var wg sync.WaitGroup
	errs := make([]error, len(f.shards))
	for si := range f.shards {
		if !active[si] {
			continue
		}
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			errs[si] = fn(si)
		}(si)
	}
	wg.Wait()
	for si, err := range errs {
		if err != nil {
			return &ShardError{Shard: si, Addr: f.shards[si].Addr, Err: err}
		}
	}
	return nil
}

// group splits request indices by owning shard, preserving request order
// within each group.
func (f *Filter) group(n int, preAt func(int) int64) (groups [][]int, active []bool, err error) {
	groups = make([][]int, len(f.shards))
	active = make([]bool, len(f.shards))
	for i := 0; i < n; i++ {
		si, err := f.owner(preAt(i))
		if err != nil {
			return nil, nil, err
		}
		groups[si] = append(groups[si], i)
		active[si] = true
	}
	return groups, active, nil
}

// spread lists, per shard, the request indices the shard may hold rows
// for: everything whose subtree interval reaches into the shard's range
// (rows of interest have pre > req pre, so shards ending at or before it
// hold none).
func (f *Filter) spread(n int, preAt func(int) int64) (groups [][]int, active []bool) {
	groups = make([][]int, len(f.shards))
	active = make([]bool, len(f.shards))
	for si, sh := range f.shards {
		for i := 0; i < n; i++ {
			if sh.Range.Hi > preAt(i) {
				groups[si] = append(groups[si], i)
				active[si] = true
			}
		}
	}
	return groups, active
}

// --- point operations: route to the owning shard -----------------------

// Root implements filter.ServerAPI: the document root is the smallest
// pre, owned by the first shard.
func (f *Filter) Root() (filter.NodeMeta, error) {
	m, err := f.shards[0].Conn.Root()
	if err != nil {
		return filter.NodeMeta{}, &ShardError{Shard: 0, Addr: f.shards[0].Addr, Err: err}
	}
	return m, nil
}

// Node implements filter.ServerAPI.
func (f *Filter) Node(pre int64) (filter.NodeMeta, error) {
	si, err := f.owner(pre)
	if err != nil {
		return filter.NodeMeta{}, err
	}
	m, err := f.shards[si].Conn.Node(pre)
	if err != nil {
		return filter.NodeMeta{}, &ShardError{Shard: si, Addr: f.shards[si].Addr, Err: err}
	}
	return m, nil
}

// EvalAt implements filter.ServerAPI.
func (f *Filter) EvalAt(pre int64, point gf.Elem) (gf.Elem, error) {
	si, err := f.owner(pre)
	if err != nil {
		return 0, err
	}
	v, err := f.shards[si].Conn.EvalAt(pre, point)
	if err != nil {
		return 0, &ShardError{Shard: si, Addr: f.shards[si].Addr, Err: err}
	}
	return v, nil
}

// Poly implements filter.ServerAPI.
func (f *Filter) Poly(pre int64) (filter.PolyRow, error) {
	si, err := f.owner(pre)
	if err != nil {
		return filter.PolyRow{}, err
	}
	row, err := f.shards[si].Conn.Poly(pre)
	if err != nil {
		return filter.PolyRow{}, &ShardError{Shard: si, Addr: f.shards[si].Addr, Err: err}
	}
	return row, nil
}

// Count implements filter.ServerAPI: the sum over shards.
func (f *Filter) Count() (int64, error) {
	counts := make([]int64, len(f.shards))
	all := make([]bool, len(f.shards))
	for i := range all {
		all[i] = true
	}
	err := f.scatter(all, func(si int) error {
		n, err := f.shards[si].Conn.Count()
		counts[si] = n
		return err
	})
	if err != nil {
		return 0, err
	}
	var total int64
	for _, n := range counts {
		total += n
	}
	return total, nil
}

// --- interval operations: broadcast and merge in shard order -----------

// mergeLists concatenates each member's per-shard reply lists in shard
// order. Shards tile the pre axis in ascending order and every shard
// returns its rows sorted by pre, so the concatenation is document
// order — identical to the single-server reply.
func mergeLists[T any](nShards, nReqs int, groups [][]int, parts [][][]T) [][]T {
	out := make([][]T, nReqs)
	for si := 0; si < nShards; si++ {
		for j, i := range groups[si] {
			if len(parts[si][j]) > 0 {
				out[i] = append(out[i], parts[si][j]...)
			}
		}
	}
	return out
}

// broadcastLists is the shared scatter/gather of Children- and
// Descendants-shaped calls: ship each shard its relevant members in one
// call, validate reply lengths, merge in shard order.
func broadcastLists[Req, T any](f *Filter, reqs []Req, preOf func(Req) int64,
	call func(Conn, []Req) ([][]T, error)) ([][]T, error) {
	groups, active := f.spread(len(reqs), func(i int) int64 { return preOf(reqs[i]) })
	parts := make([][][]T, len(f.shards))
	err := f.scatter(active, func(si int) error {
		sub := make([]Req, len(groups[si]))
		for j, i := range groups[si] {
			sub[j] = reqs[i]
		}
		part, err := call(f.shards[si].Conn, sub)
		if err != nil {
			return err
		}
		if len(part) != len(sub) {
			return fmt.Errorf("cluster: shard reply carried %d members for %d requests", len(part), len(sub))
		}
		parts[si] = part
		return nil
	})
	if err != nil {
		return nil, err
	}
	return mergeLists(len(f.shards), len(reqs), groups, parts), nil
}

// Children implements filter.ServerAPI: children can spill past the
// owner's boundary, so the fetch broadcasts to every shard past pre.
func (f *Filter) Children(pre int64) ([]filter.NodeMeta, error) {
	lists, err := broadcastLists(f, []int64{pre}, func(p int64) int64 { return p },
		func(c Conn, sub []int64) ([][]filter.NodeMeta, error) {
			kids, err := c.Children(sub[0])
			return [][]filter.NodeMeta{kids}, err
		})
	if err != nil {
		return nil, err
	}
	return lists[0], nil
}

// Descendants implements filter.ServerAPI. Each shard resolves the span
// against its own slice (the store's boundary scan is correct on a
// slice: any local row between pre and the first local following node
// is a descendant), and shard-order concatenation restores document
// order.
func (f *Filter) Descendants(pre, post int64) ([]filter.NodeMeta, error) {
	lists, err := broadcastLists(f, []filter.Span{{Pre: pre, Post: post}},
		func(sp filter.Span) int64 { return sp.Pre },
		func(c Conn, sub []filter.Span) ([][]filter.NodeMeta, error) {
			ms, err := c.Descendants(sub[0].Pre, sub[0].Post)
			return [][]filter.NodeMeta{ms}, err
		})
	if err != nil {
		return nil, err
	}
	return lists[0], nil
}

// ChildrenPolys implements filter.ServerAPI.
func (f *Filter) ChildrenPolys(pre int64) ([]filter.PolyRow, error) {
	lists, err := broadcastLists(f, []int64{pre}, func(p int64) int64 { return p },
		func(c Conn, sub []int64) ([][]filter.PolyRow, error) {
			rows, err := c.ChildrenPolys(sub[0])
			return [][]filter.PolyRow{rows}, err
		})
	if err != nil {
		return nil, err
	}
	return lists[0], nil
}

// --- batched operations: one frame per shard per batch -----------------

// EvalBatch implements filter.BatchAPI: members are grouped by owning
// shard, one concurrent frame per shard, and replies land back at their
// request indices.
func (f *Filter) EvalBatch(reqs []filter.EvalRequest) ([]filter.EvalResult, error) {
	groups, active, err := f.group(len(reqs), func(i int) int64 { return reqs[i].Pre })
	if err != nil {
		return nil, err
	}
	out := make([]filter.EvalResult, len(reqs))
	err = f.scatter(active, func(si int) error {
		sub := make([]filter.EvalRequest, len(groups[si]))
		for j, i := range groups[si] {
			sub[j] = reqs[i]
		}
		part, err := f.shards[si].Conn.EvalBatch(sub)
		if err != nil {
			return err
		}
		if len(part) != len(sub) {
			return fmt.Errorf("cluster: shard reply carried %d members for %d requests", len(part), len(sub))
		}
		for j, i := range groups[si] {
			out[i] = part[j]
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// NodeBatch implements filter.BatchAPI.
func (f *Filter) NodeBatch(pres []int64) ([]filter.NodeMeta, error) {
	groups, active, err := f.group(len(pres), func(i int) int64 { return pres[i] })
	if err != nil {
		return nil, err
	}
	out := make([]filter.NodeMeta, len(pres))
	err = f.scatter(active, func(si int) error {
		sub := make([]int64, len(groups[si]))
		for j, i := range groups[si] {
			sub[j] = pres[i]
		}
		part, err := f.shards[si].Conn.NodeBatch(sub)
		if err != nil {
			return err
		}
		if len(part) != len(sub) {
			return fmt.Errorf("cluster: shard reply carried %d members for %d requests", len(part), len(sub))
		}
		for j, i := range groups[si] {
			out[i] = part[j]
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ChildrenBatch implements filter.BatchAPI.
func (f *Filter) ChildrenBatch(pres []int64) ([][]filter.NodeMeta, error) {
	return broadcastLists(f, pres, func(p int64) int64 { return p },
		func(c Conn, sub []int64) ([][]filter.NodeMeta, error) { return c.ChildrenBatch(sub) })
}

// DescendantsBatch implements filter.BatchAPI.
func (f *Filter) DescendantsBatch(spans []filter.Span) ([][]filter.NodeMeta, error) {
	return broadcastLists(f, spans, func(sp filter.Span) int64 { return sp.Pre },
		func(c Conn, sub []filter.Span) ([][]filter.NodeMeta, error) { return c.DescendantsBatch(sub) })
}

// NodePolysBatch implements filter.BatchAPI: every shard whose range
// reaches the node or could hold its children answers with the fragment
// it stores (filter.PartialAPI); fragments merge into the single-server
// bundle — node row from the owner, children concatenated in shard
// order.
func (f *Filter) NodePolysBatch(pres []int64) ([]filter.NodePolys, error) {
	groups := make([][]int, len(f.shards))
	active := make([]bool, len(f.shards))
	for si, sh := range f.shards {
		for i, pre := range pres {
			if sh.Range.Hi >= pre { // owner (Hi >= pre) or potential child holder (Hi > pre)
				groups[si] = append(groups[si], i)
				active[si] = true
			}
		}
	}
	parts := make([][]filter.PartialNodePolys, len(f.shards))
	err := f.scatter(active, func(si int) error {
		sub := make([]int64, len(groups[si]))
		for j, i := range groups[si] {
			sub[j] = pres[i]
		}
		part, err := f.shards[si].Conn.NodePolysPartial(sub)
		if err != nil {
			return err
		}
		if len(part) != len(sub) {
			return fmt.Errorf("cluster: shard reply carried %d members for %d requests", len(part), len(sub))
		}
		parts[si] = part
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]filter.NodePolys, len(pres))
	found := make([]bool, len(pres))
	for si := 0; si < len(f.shards); si++ {
		for j, i := range groups[si] {
			frag := parts[si][j]
			if frag.Err != "" && out[i].Err == "" {
				out[i].Err = frag.Err
				continue
			}
			if frag.Has {
				out[i].Node = frag.Node
				found[i] = true
			}
			out[i].Children = append(out[i].Children, frag.Children...)
		}
	}
	for i, ok := range found {
		if !ok && out[i].Err == "" {
			// Mirror the single-server behavior for a nonexistent node: a
			// member error, not a call failure.
			out[i].Err = store.NotFoundError(pres[i]).Error()
		}
	}
	return out, nil
}
