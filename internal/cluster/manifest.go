package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// ShardInfo is one manifest entry: the pre range a shard owns plus where
// its data lives (DB files, written by the encoder) and where it serves
// (addresses, filled in at deploy time). A shard may have several
// replicas — byte-identical copies of the same slice — listed in DBs and
// Addrs; the singular Addr/DB fields are the pre-replication manifest
// format and still describe a one-replica shard.
type ShardInfo struct {
	Addr  string   `json:"addr,omitempty"`
	Addrs []string `json:"addrs,omitempty"`
	DB    string   `json:"db,omitempty"`
	DBs   []string `json:"dbs,omitempty"`
	Lo    int64    `json:"lo"`
	Hi    int64    `json:"hi"`
}

// ReplicaDBs returns the shard's replica database files: DBs when set,
// else the legacy singular DB (or nothing).
func (s *ShardInfo) ReplicaDBs() []string {
	if len(s.DBs) > 0 {
		return s.DBs
	}
	if s.DB != "" {
		return []string{s.DB}
	}
	return nil
}

// ReplicaAddrs returns the shard's replica serve addresses: Addrs when
// set, else the legacy singular Addr (or nothing).
func (s *ShardInfo) ReplicaAddrs() []string {
	if len(s.Addrs) > 0 {
		return s.Addrs
	}
	if s.Addr != "" {
		return []string{s.Addr}
	}
	return nil
}

// Replicas returns the shard's replica count (at least 1: a manifest
// entry with no files or addresses still describes one logical serving
// slot).
func (s *ShardInfo) Replicas() int {
	n := len(s.ReplicaDBs())
	if a := len(s.ReplicaAddrs()); a > n {
		n = a
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Manifest describes a sharded deployment: which contiguous pre slice of
// the encrypted node table each server holds. It carries no secrets —
// pre ranges are structural metadata the servers see anyway.
type Manifest struct {
	Shards []ShardInfo `json:"shards"`
}

// Ranges returns the manifest's shard ranges in order.
func (m *Manifest) Ranges() []Range {
	out := make([]Range, len(m.Shards))
	for i, s := range m.Shards {
		out[i] = Range{Lo: s.Lo, Hi: s.Hi}
	}
	return out
}

// Validate checks that the manifest's ranges are in order and tile a
// contiguous pre interval.
func (m *Manifest) Validate() error {
	if len(m.Shards) == 0 {
		return fmt.Errorf("cluster: manifest has no shards")
	}
	for i, s := range m.Shards {
		if s.Lo > s.Hi {
			return fmt.Errorf("cluster: manifest shard %d has empty range [%d, %d]", i, s.Lo, s.Hi)
		}
		if i > 0 && s.Lo != m.Shards[i-1].Hi+1 {
			return fmt.Errorf("cluster: manifest shard %d starts at %d, want %d (contiguous ranges)",
				i, s.Lo, m.Shards[i-1].Hi+1)
		}
		if s.DB != "" && len(s.DBs) > 0 {
			return fmt.Errorf("cluster: manifest shard %d sets both db and dbs", i)
		}
		if s.Addr != "" && len(s.Addrs) > 0 {
			return fmt.Errorf("cluster: manifest shard %d sets both addr and addrs", i)
		}
		if d, a := len(s.ReplicaDBs()), len(s.ReplicaAddrs()); d > 0 && a > 0 && d != a {
			return fmt.Errorf("cluster: manifest shard %d lists %d db files but %d addresses", i, d, a)
		}
	}
	return nil
}

// Write serializes the manifest as indented JSON.
func (m *Manifest) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// WriteFile writes the manifest to path.
func (m *Manifest) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadManifest reads and validates a manifest file.
func LoadManifest(path string) (*Manifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("cluster: parsing manifest %s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return &m, nil
}

// PartitionEven splits the inclusive pre interval [lo, hi] into n
// contiguous ranges whose sizes differ by at most one — the default
// partitioner. Pre numbers are dense (the encoder assigns 1..count), so
// even pre slices are even row slices.
func PartitionEven(lo, hi int64, n int) ([]Range, error) {
	if lo > hi {
		return nil, fmt.Errorf("cluster: empty pre interval [%d, %d]", lo, hi)
	}
	total := hi - lo + 1
	if n < 1 || int64(n) > total {
		return nil, fmt.Errorf("cluster: cannot cut %d nodes into %d shards", total, n)
	}
	out := make([]Range, n)
	base, rem := total/int64(n), total%int64(n)
	next := lo
	for i := 0; i < n; i++ {
		size := base
		if int64(i) < rem {
			size++
		}
		out[i] = Range{Lo: next, Hi: next + size - 1}
		next += size
	}
	return out, nil
}
