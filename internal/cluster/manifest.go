package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// ShardInfo is one manifest entry: the pre range a shard owns plus where
// its data lives (DB files, written by the encoder) and where it serves
// (addresses, filled in at deploy time). A shard may have several
// replicas — byte-identical copies of the same slice — listed in DBs and
// Addrs; the singular Addr/DB fields are the pre-replication manifest
// format and still describe a one-replica shard.
type ShardInfo struct {
	Addr  string   `json:"addr,omitempty"`
	Addrs []string `json:"addrs,omitempty"`
	DB    string   `json:"db,omitempty"`
	DBs   []string `json:"dbs,omitempty"`
	Lo    int64    `json:"lo"`
	Hi    int64    `json:"hi"`
}

// ReplicaDBs returns the shard's replica database files: DBs when set,
// else the legacy singular DB (or nothing).
func (s *ShardInfo) ReplicaDBs() []string {
	if len(s.DBs) > 0 {
		return s.DBs
	}
	if s.DB != "" {
		return []string{s.DB}
	}
	return nil
}

// ReplicaAddrs returns the shard's replica serve addresses: Addrs when
// set, else the legacy singular Addr (or nothing).
func (s *ShardInfo) ReplicaAddrs() []string {
	if len(s.Addrs) > 0 {
		return s.Addrs
	}
	if s.Addr != "" {
		return []string{s.Addr}
	}
	return nil
}

// Replicas returns the shard's replica count (at least 1: a manifest
// entry with no files or addresses still describes one logical serving
// slot).
func (s *ShardInfo) Replicas() int {
	n := len(s.ReplicaDBs())
	if a := len(s.ReplicaAddrs()); a > n {
		n = a
	}
	if n < 1 {
		n = 1
	}
	return n
}

// TenantShards is one tenant's entry in a v2 manifest: a named,
// independently encoded shard table plus its runtime quotas. The shard
// list has exactly the v1 shape, so a v1 manifest normalizes to a
// single unnamed tenant.
type TenantShards struct {
	Name string `json:"name"`
	// Workers bounds the tenant's server-side batch worker pool
	// (0 = number of CPUs).
	Workers int `json:"workers,omitempty"`
	// Cache is the tenant's decoded-polynomial cache quota in entries
	// (0 = server default, negative disables).
	Cache int `json:"cache,omitempty"`
	// P, E are the tenant's field parameters (0 = the serving
	// process's defaults). Tenants may be encoded over different
	// fields.
	P uint32 `json:"p,omitempty"`
	E uint32 `json:"e,omitempty"`

	Shards []ShardInfo `json:"shards"`
}

// Manifest describes a sharded deployment: which contiguous pre slice of
// the encrypted node table each server holds. It carries no secrets —
// pre ranges are structural metadata the servers see anyway.
//
// Two formats share this type. A v1 manifest (the original) lists one
// tenant's shards at top level. A v2 manifest (Version >= 2) lists
// named tenants, each with its own shard table, plus the runtime-level
// cache budget and default-tenant designation; every tenant has the
// same number of shard slots, because shard slot i of every tenant is
// served by the same process (tenants co-locate, their addresses
// overlap; their db files may not).
type Manifest struct {
	Version int         `json:"version,omitempty"`
	Shards  []ShardInfo `json:"shards,omitempty"`

	// v2 fields.
	Tenants []TenantShards `json:"tenants,omitempty"`
	// Default names the tenant that pre-tenant clients are served from
	// ("" = the first listed tenant).
	Default string `json:"default,omitempty"`
	// CacheBudget caps the sum of tenant cache quotas server-side
	// (0 = uncapped).
	CacheBudget int `json:"cache_budget,omitempty"`
}

// TenantTable returns the manifest's tenants in listed order, lifting a
// v1 manifest into a single unnamed tenant — the one shape consumers
// iterate over.
func (m *Manifest) TenantTable() []TenantShards {
	if len(m.Tenants) > 0 {
		return m.Tenants
	}
	return []TenantShards{{Shards: m.Shards}}
}

// DefaultTenant returns the name of the tenant pre-tenant clients land
// on.
func (m *Manifest) DefaultTenant() string {
	if m.Default != "" {
		return m.Default
	}
	if len(m.Tenants) > 0 {
		return m.Tenants[0].Name
	}
	return ""
}

// Ranges returns the manifest's shard ranges in order (the first
// tenant's, for v2 manifests).
func (m *Manifest) Ranges() []Range {
	shards := m.TenantTable()[0].Shards
	out := make([]Range, len(shards))
	for i, s := range shards {
		out[i] = Range{Lo: s.Lo, Hi: s.Hi}
	}
	return out
}

// Validate checks the manifest: per tenant, ranges in order tiling a
// contiguous pre interval; across tenants, unique non-empty names,
// equal shard-slot counts, and no db file claimed twice (tenants
// co-locate on addresses — overlapping replica *address* lists across
// tenants are the expected deployment — but a db file encodes exactly
// one tenant's rows).
func (m *Manifest) Validate() error {
	if m.Version >= 2 || len(m.Tenants) > 0 {
		if len(m.Tenants) == 0 {
			return fmt.Errorf("cluster: v2 manifest has an empty tenant table")
		}
		if len(m.Shards) > 0 {
			return fmt.Errorf("cluster: v2 manifest sets both tenants and top-level shards")
		}
		seen := make(map[string]bool, len(m.Tenants))
		dbOwner := map[string]string{}
		for ti, tn := range m.Tenants {
			if tn.Name == "" {
				return fmt.Errorf("cluster: manifest tenant %d has no name", ti)
			}
			if seen[tn.Name] {
				return fmt.Errorf("cluster: duplicate tenant name %q in manifest", tn.Name)
			}
			seen[tn.Name] = true
			if len(tn.Shards) != len(m.Tenants[0].Shards) {
				return fmt.Errorf("cluster: tenant %q has %d shards, tenant %q has %d (shard slots must align)",
					tn.Name, len(tn.Shards), m.Tenants[0].Name, len(m.Tenants[0].Shards))
			}
			if err := validateShards(tn.Shards, "tenant "+tn.Name+" "); err != nil {
				return err
			}
			for _, s := range tn.Shards {
				for _, db := range s.ReplicaDBs() {
					if owner, dup := dbOwner[db]; dup && owner != tn.Name {
						return fmt.Errorf("cluster: db file %q listed by tenants %q and %q", db, owner, tn.Name)
					}
					dbOwner[db] = tn.Name
				}
			}
		}
		if m.Default != "" && !seen[m.Default] {
			return fmt.Errorf("cluster: manifest default tenant %q is not in the tenant table", m.Default)
		}
		return nil
	}
	return validateShards(m.Shards, "")
}

func validateShards(shards []ShardInfo, where string) error {
	if len(shards) == 0 {
		return fmt.Errorf("cluster: %smanifest has no shards", where)
	}
	for i, s := range shards {
		if s.Lo > s.Hi {
			return fmt.Errorf("cluster: %smanifest shard %d has empty range [%d, %d]", where, i, s.Lo, s.Hi)
		}
		if i > 0 && s.Lo != shards[i-1].Hi+1 {
			return fmt.Errorf("cluster: %smanifest shard %d starts at %d, want %d (contiguous ranges)",
				where, i, s.Lo, shards[i-1].Hi+1)
		}
		if s.DB != "" && len(s.DBs) > 0 {
			return fmt.Errorf("cluster: %smanifest shard %d sets both db and dbs", where, i)
		}
		if s.Addr != "" && len(s.Addrs) > 0 {
			return fmt.Errorf("cluster: %smanifest shard %d sets both addr and addrs", where, i)
		}
		if d, a := len(s.ReplicaDBs()), len(s.ReplicaAddrs()); d > 0 && a > 0 && d != a {
			return fmt.Errorf("cluster: %smanifest shard %d lists %d db files but %d addresses", where, i, d, a)
		}
	}
	return nil
}

// Upgrade lifts a v1 manifest into the v2 format, naming its single
// tenant. A manifest that is already v2 is returned unchanged. The
// upgraded manifest round-trips through Write/LoadManifest with the
// same tenant table.
func (m *Manifest) Upgrade(name string) *Manifest {
	if len(m.Tenants) > 0 {
		return m
	}
	return &Manifest{
		Version: 2,
		Tenants: []TenantShards{{Name: name, Shards: m.Shards}},
		Default: name,
	}
}

// Write serializes the manifest as indented JSON.
func (m *Manifest) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// WriteFile writes the manifest to path.
func (m *Manifest) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadManifest reads and validates a manifest file.
func LoadManifest(path string) (*Manifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("cluster: parsing manifest %s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return &m, nil
}

// PartitionEven splits the inclusive pre interval [lo, hi] into n
// contiguous ranges whose sizes differ by at most one — the default
// partitioner. Pre numbers are dense (the encoder assigns 1..count), so
// even pre slices are even row slices.
func PartitionEven(lo, hi int64, n int) ([]Range, error) {
	if lo > hi {
		return nil, fmt.Errorf("cluster: empty pre interval [%d, %d]", lo, hi)
	}
	total := hi - lo + 1
	if n < 1 || int64(n) > total {
		return nil, fmt.Errorf("cluster: cannot cut %d nodes into %d shards", total, n)
	}
	out := make([]Range, n)
	base, rem := total/int64(n), total%int64(n)
	next := lo
	for i := 0; i < n; i++ {
		size := base
		if int64(i) < rem {
			size++
		}
		out[i] = Range{Lo: next, Hi: next + size - 1}
		next += size
	}
	return out, nil
}
