package cluster_test

import (
	"net"
	"strings"
	"testing"

	"encshare/internal/cluster"
	"encshare/internal/filter"
	"encshare/internal/rmi"
	"encshare/internal/server"
	"encshare/internal/store"
)

// shardedTCP serves each store over its own TCP listener and returns
// the addresses plus a per-server shutdown hook.
func shardedTCP(t *testing.T, fx *fixture, stores []*store.Store) (addrs []string, stop []func()) {
	t.Helper()
	for _, st := range stores {
		srv := rmi.NewServer()
		filter.RegisterServer(srv, filter.NewServerFilter(st, fx.r, 256))
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		go srv.Serve(l)
		addrs = append(addrs, l.Addr().String())
		stop = append(stop, func() { l.Close(); srv.Shutdown() })
	}
	return addrs, stop
}

// TestAddReplicaLiveSession pins the live-topology seam: a session
// dialed against one replica per shard gains a second replica of shard
// 0 via AddReplica, the new replica serves traffic without a redial,
// and after the ORIGINAL shard-0 server dies the session still answers
// — only the added replica can be serving that shard then.
func TestAddReplicaLiveSession(t *testing.T) {
	fx := xmarkFixture(t, 0.02, 11)
	lo, hi, err := fx.st.MinMaxPre()
	if err != nil {
		t.Fatal(err)
	}
	ranges, err := cluster.PartitionEven(lo, hi, 2)
	if err != nil {
		t.Fatal(err)
	}
	stores, cleanup, err := cluster.SplitStore(fx.st, ranges)
	if err != nil {
		cleanup()
		t.Fatal(err)
	}
	t.Cleanup(cleanup)

	addrs, stop := shardedTCP(t, fx, stores)
	f, err := cluster.Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	before, err := f.Count()
	if err != nil {
		t.Fatal(err)
	}

	// A replica whose range matches no shard group is rejected.
	wholeAddrs, _ := shardedTCP(t, fx, []*store.Store{fx.st})
	if _, err := f.AddReplica(wholeAddrs[0]); err == nil || !strings.Contains(err.Error(), "matches no shard group") {
		t.Fatalf("mismatched range: got %v", err)
	}

	// Provision a second replica of shard 0 (same slice, new listener)
	// and join it live.
	newAddrs, _ := shardedTCP(t, fx, stores[:1])
	si, err := f.AddReplica(newAddrs[0])
	if err != nil {
		t.Fatal(err)
	}
	if si != 0 {
		t.Fatalf("joined shard %d, want 0", si)
	}
	if got := f.Replicas(); got[0] != 2 || got[1] != 1 {
		t.Fatalf("Replicas = %v, want [2 1]", got)
	}

	// Round-robin now spreads shard-0 frames over both replicas: after
	// a few queries the new connection must have carried traffic.
	for i := 0; i < 4; i++ {
		if n, err := f.Count(); err != nil || n != before {
			t.Fatalf("count after join: %d, %v", n, err)
		}
	}

	// Kill the original shard-0 server: the session keeps answering
	// through the added replica, without redial.
	stop[0]()
	var after int64
	for i := 0; i < 3; i++ { // retries may trip the breaker first
		after, err = f.Count()
		if err == nil {
			break
		}
	}
	if err != nil {
		t.Fatalf("count after original replica died: %v", err)
	}
	if after != before {
		t.Fatalf("count changed after failover to added replica: %d != %d", after, before)
	}
}

// TestDialTenantAgainstPreTenantServer: naming a tenant at dial time
// against servers that predate the tenant protocol fails loudly (even
// with TolerateUnreachable — the server is up, the config is wrong),
// instead of silently querying the default table.
func TestDialTenantAgainstPreTenantServer(t *testing.T) {
	fx := xmarkFixture(t, 0.02, 11)
	addrs, _ := shardedTCP(t, fx, []*store.Store{fx.st})
	for _, tolerate := range []bool{false, true} {
		_, err := cluster.DialWith(addrs, cluster.Options{Tenant: "alpha", TolerateUnreachable: tolerate})
		// A true pre-PR binary answers unknown-method ("predates the
		// multi-tenant protocol"); a current binary with the legacy
		// single-tenant layout answers unknown-tenant. Either way the
		// dial must fail loudly.
		if err == nil || !strings.Contains(err.Error(), "tenant") {
			t.Fatalf("tolerate=%v: got %v", tolerate, err)
		}
	}
	// Without a tenant the same servers dial fine.
	f, err := cluster.DialWith(addrs, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
}

// TestDialTenantRuntime dials a multi-tenant runtime by tenant name
// and checks tenant routing end to end over TCP, including the
// unknown-tenant rejection.
func TestDialTenantRuntime(t *testing.T) {
	fx := xmarkFixture(t, 0.02, 11)
	rt := server.New(server.Config{})
	if err := rt.AttachStore(server.Tenant{Name: "auction", P: 251}, fx.st); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go rt.Serve(l)
	addr := l.Addr().String()

	f, err := cluster.DialWith([]string{addr}, cluster.Options{Tenant: "auction"})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	want, _ := fx.st.Count()
	if n, err := f.Count(); err != nil || n != want {
		t.Fatalf("tenant-routed count = %d, %v; want %d", n, err, want)
	}

	if _, err := cluster.DialWith([]string{addr}, cluster.Options{Tenant: "nobody"}); err == nil {
		t.Fatal("dial with unknown tenant succeeded")
	}
}
