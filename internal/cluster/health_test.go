package cluster

import (
	"testing"
	"time"
)

// TestBreakerOpensAndRecovers drives the circuit breaker with an
// injected clock: closed through the first failures, open at the
// threshold, exponentially longer cooldowns while failures continue,
// half-open probe after the cooldown, and full reset on success.
func TestBreakerOpensAndRecovers(t *testing.T) {
	now := time.Unix(0, 0)
	b := &breaker{now: func() time.Time { return now }}

	if !b.allow() {
		t.Fatal("fresh breaker not allowed")
	}
	for i := 0; i < breakerThreshold-1; i++ {
		b.failure()
		if !b.allow() {
			t.Fatalf("breaker opened after %d failures, threshold is %d", i+1, breakerThreshold)
		}
	}
	b.failure()
	if b.allow() {
		t.Fatal("breaker still closed at the failure threshold")
	}
	if b.score() != breakerThreshold {
		t.Fatalf("score = %d, want %d", b.score(), breakerThreshold)
	}

	// Cooldown elapses: half-open probe allowed again.
	now = now.Add(breakerCooldown)
	if !b.allow() {
		t.Fatal("breaker not half-open after the cooldown")
	}

	// Another failure re-opens with a doubled cooldown.
	b.failure()
	if b.allow() {
		t.Fatal("breaker closed right after a half-open failure")
	}
	now = now.Add(breakerCooldown)
	if b.allow() {
		t.Fatal("backoff did not grow: re-opened breaker admitted after the base cooldown")
	}
	now = now.Add(breakerCooldown)
	if !b.allow() {
		t.Fatal("breaker not half-open after the doubled cooldown")
	}

	b.success()
	if !b.allow() || b.score() != 0 {
		t.Fatalf("success did not reset the breaker (allow=%v score=%d)", b.allow(), b.score())
	}
}

// TestBreakerBackoffCaps: the cooldown stops doubling at the cap even
// for very long failure streaks.
func TestBreakerBackoffCaps(t *testing.T) {
	now := time.Unix(0, 0)
	b := &breaker{now: func() time.Time { return now }}
	for i := 0; i < 40; i++ {
		b.failure()
	}
	if b.allow() {
		t.Fatal("breaker closed after 40 failures")
	}
	now = now.Add(breakerMaxCooldown)
	if !b.allow() {
		t.Fatal("breaker not half-open after the maximum cooldown")
	}
}

// TestLatWindowQuantile: no estimate until the sample minimum, then the
// requested percentile of the recorded window.
func TestLatWindowQuantile(t *testing.T) {
	var w latWindow
	if _, ok := w.quantile(0.9); ok {
		t.Fatal("empty window produced a quantile")
	}
	for i := 1; i < minHedgeSamples; i++ {
		w.add(time.Duration(i) * time.Millisecond)
	}
	if _, ok := w.quantile(0.9); ok {
		t.Fatalf("window with %d samples produced a quantile (minimum is %d)", minHedgeSamples-1, minHedgeSamples)
	}
	w.add(time.Duration(minHedgeSamples) * time.Millisecond)
	d, ok := w.quantile(0.9)
	if !ok {
		t.Fatal("full window produced no quantile")
	}
	// 16 samples of 1..16ms: p90 index = int(0.9*15) = 13 -> 14ms.
	if d != 14*time.Millisecond {
		t.Fatalf("p90 of 1..16ms = %v, want 14ms", d)
	}

	// The ring overwrites oldest entries: flood with a constant and the
	// quantile must follow.
	for i := 0; i < latWindowSize; i++ {
		w.add(7 * time.Millisecond)
	}
	if d, _ := w.quantile(0.9); d != 7*time.Millisecond {
		t.Fatalf("quantile after overwrite = %v, want 7ms", d)
	}
}

// TestReplicaOrderPrefersClosedBreakers: open-circuit replicas sort
// last but are never dropped entirely.
func TestReplicaOrderPrefersClosedBreakers(t *testing.T) {
	sh := &shardState{reps: []*replica{{addr: "a"}, {addr: "b"}, {addr: "c"}}}
	for i := 0; i < breakerThreshold; i++ {
		sh.reps[1].brk.failure()
	}
	for i := 0; i < 4; i++ {
		order := sh.replicaOrder(sh.replicaList())
		if len(order) != 3 {
			t.Fatalf("order %v dropped replicas", order)
		}
		if order[len(order)-1] != 1 {
			t.Fatalf("order %v does not push the open-circuit replica last", order)
		}
	}
	// All circuits open: every replica must still be listed.
	for _, r := range sh.reps {
		for i := 0; i < breakerThreshold; i++ {
			r.brk.failure()
		}
	}
	if order := sh.replicaOrder(sh.replicaList()); len(order) != 3 {
		t.Fatalf("all-open order %v dropped replicas", order)
	}
}
