package cluster_test

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"encshare/internal/cluster"
	"encshare/internal/engine"
	"encshare/internal/filter"
	"encshare/internal/gf"
	"encshare/internal/rmi"
	"encshare/internal/xmldoc"
	"encshare/internal/xpath"
)

// fragileConn severs the client side of a replica connection after a
// fixed number of request frames — the deterministic stand-in for a
// replica process dying mid-query. Frame n+1 (0-based: after `frames`
// successful sends) closes the connection and fails, so the failure
// lands in whatever phase of whatever query happens to issue it,
// including between the pages of a paged reply loop.
type fragileConn struct {
	net.Conn
	mu     sync.Mutex
	frames int // request frames to allow before dying
}

func (c *fragileConn) Write(b []byte) (int, error) {
	c.mu.Lock()
	kill := c.frames == 0
	if c.frames > 0 {
		c.frames--
	}
	c.mu.Unlock()
	if kill {
		c.Conn.Close()
		return 0, errors.New("chaos: replica killed")
	}
	return c.Conn.Write(b)
}

// replicatedClusterOf serves the fixture's table as a shards × replicas
// cluster over in-process rmi pipes. killAfter[{shard, replica}] = n
// makes that replica die after n request frames.
func (fx *fixture) replicatedClusterOf(t testing.TB, shards, replicas int, killAfter map[[2]int]int, opts cluster.Options) *cluster.Filter {
	t.Helper()
	lo, hi, err := fx.st.MinMaxPre()
	if err != nil {
		t.Fatal(err)
	}
	ranges, err := cluster.PartitionEven(lo, hi, shards)
	if err != nil {
		t.Fatal(err)
	}
	stores, cleanup, err := cluster.SplitStore(fx.st, ranges)
	if err != nil {
		cleanup()
		t.Fatal(err)
	}
	t.Cleanup(cleanup)
	specs := make([]cluster.Shard, shards)
	for i, sst := range stores {
		specs[i].Range = ranges[i]
		for j := 0; j < replicas; j++ {
			srv := rmi.NewServer()
			filter.RegisterServer(srv, filter.NewServerFilter(sst, fx.r, 1024))
			cConn, sConn := net.Pipe()
			go srv.ServeConn(sConn)
			conn := net.Conn(cConn)
			if n, ok := killAfter[[2]int{i, j}]; ok {
				conn = &fragileConn{Conn: cConn, frames: n}
			}
			cli := rmi.NewClient(conn)
			t.Cleanup(func() { cli.Close() })
			specs[i].Replicas = append(specs[i].Replicas, cluster.Replica{
				Addr: fmt.Sprintf("shard%d-r%d", i, j),
				Conn: filter.NewRemote(cli),
			})
		}
	}
	cf, err := cluster.NewWith(specs, opts)
	if err != nil {
		t.Fatal(err)
	}
	return cf
}

// TestChaosReplicaLossMidQuery is the chaos acceptance test: on a
// 3-shard × 2-replica cluster, one replica of EVERY shard dies
// mid-query (at a different frame count per shard, so the deaths land
// in different phases of the traversal), and every engine × test ×
// batch-mode combination must still return results AND client-side work
// counters identical to the single-server baseline, with zero
// client-visible errors and a positive failover count.
func TestChaosReplicaLossMidQuery(t *testing.T) {
	fx := xmarkFixture(t, 0.05, 11)
	singleCli := filter.NewClient(filter.NewServerFilter(fx.st, fx.r, 1024), fx.scheme)

	queries := append(append([]string{}, parityQueries...), "//item[//keyword]")
	engines := []struct {
		name string
		mk   func(cli *filter.Client) engine.Engine
	}{
		{"simple", func(c *filter.Client) engine.Engine { return engine.NewSimple(c, fx.m) }},
		{"advanced", func(c *filter.Client) engine.Engine { return engine.NewAdvanced(c, fx.m) }},
		{"simple-seq", func(c *filter.Client) engine.Engine { return engine.NewSimpleSequential(c, fx.m) }},
		{"advanced-seq", func(c *filter.Client) engine.Engine { return engine.NewAdvancedSequential(c, fx.m) }},
	}
	// One replica per shard dies, each at a different frame count, so
	// the first queries of each combination lose connections in
	// different traversal phases.
	killAfter := map[[2]int]int{{0, 0}: 2, {1, 0}: 5, {2, 0}: 9}

	for _, e := range engines {
		for _, test := range []engine.Test{engine.Containment, engine.Equality} {
			cf := fx.replicatedClusterOf(t, 3, 2, killAfter, cluster.Options{})
			clusterEng := e.mk(filter.NewClient(cf, fx.scheme))
			singleEng := e.mk(singleCli)
			for _, qs := range queries {
				q := xpath.MustParse(qs)
				want, err := singleEng.Run(q, test)
				if err != nil {
					t.Fatalf("%s/%s single %s: %v", e.name, test, qs, err)
				}
				got, err := clusterEng.Run(q, test)
				if err != nil {
					t.Fatalf("%s/%s chaos cluster %s: client-visible error: %v", e.name, test, qs, err)
				}
				if !equalPres(got.Pres, want.Pres) {
					t.Errorf("%s/%s on %s: chaos cluster %v != single %v", e.name, test, qs, got.Pres, want.Pres)
				}
				if got.Stats.Evaluations != want.Stats.Evaluations ||
					got.Stats.Reconstructions != want.Stats.Reconstructions ||
					got.Stats.NodesFetched != want.Stats.NodesFetched ||
					got.Stats.NodesVisited != want.Stats.NodesVisited {
					t.Errorf("%s/%s on %s: chaos cluster work %+v != single %+v",
						e.name, test, qs, got.Stats, want.Stats)
				}
			}
			if cf.Failovers() == 0 {
				t.Errorf("%s/%s: killed replicas but Failovers() = 0", e.name, test)
			}
		}
	}
}

// wideDoc builds a document with one deliberately wide node (a root with
// n children), so a DescendantsBatch reply pages under a small budget.
func wideDoc(t testing.TB, n int) *xmldoc.Doc {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("<site>")
	for i := 0; i < n; i++ {
		sb.WriteString("<item/>")
	}
	sb.WriteString("</site>")
	doc, err := xmldoc.ParseString(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestChaosKillMidPagedDescendantsResume kills a replica BETWEEN the
// pages of a paged DescendantsBatch reply: the transport error from the
// page loop must classify as retryable, the whole logical batch must
// restart on the sibling replica, and the reassembled reply must be
// byte-identical to the direct single-server answer.
func TestChaosKillMidPagedDescendantsResume(t *testing.T) {
	fx := buildFixture(t, wideDoc(t, 3000))
	oldBudget := filter.ReplyByteBudget
	filter.ReplyByteBudget = 2048 // ~64 rows per page: a shard slice takes many pages
	t.Cleanup(func() { filter.ReplyByteBudget = oldBudget })

	// Shard 1's first replica survives exactly 2 frames — enough to
	// answer the first pages of the loop, then dies mid-resume.
	cf := fx.replicatedClusterOf(t, 3, 2, map[[2]int]int{{1, 0}: 2}, cluster.Options{})
	direct := filter.NewServerFilter(fx.st, fx.r, 1024)

	root, err := direct.Root()
	if err != nil {
		t.Fatal(err)
	}
	spans := []filter.Span{{Pre: root.Pre, Post: root.Post}}
	got, err := cf.DescendantsBatch(spans)
	if err != nil {
		t.Fatalf("paged descendants across a mid-page replica death: %v", err)
	}
	want, err := direct.DescendantsBatch(spans)
	if err != nil {
		t.Fatal(err)
	}
	if len(got[0]) != len(want[0]) {
		t.Fatalf("reassembled %d rows, want %d", len(got[0]), len(want[0]))
	}
	for i := range want[0] {
		if got[0][i] != want[0][i] {
			t.Fatalf("row %d = %+v, want %+v (restart on the sibling must reproduce the reply)", i, got[0][i], want[0][i])
		}
	}
	if cf.Failovers() == 0 {
		t.Fatal("mid-page replica death recorded no failover")
	}
}

// blockingConn stalls EvalBatch until released — a replica that hangs
// rather than dies, the case hedging exists for.
type blockingConn struct {
	cluster.Conn
	gate chan struct{}
}

func (c *blockingConn) EvalBatch(reqs []filter.EvalRequest) ([]filter.EvalResult, error) {
	<-c.gate
	return c.Conn.EvalBatch(reqs)
}

// TestHedgedReadBeatsHungReplica: with hedging enabled, a frame stuck on
// a hung replica is duplicated on the sibling and the query completes;
// without hedging it would block until the replica answered.
func TestHedgedReadBeatsHungReplica(t *testing.T) {
	fx := xmarkFixture(t, 0.02, 7)
	sf := filter.NewServerFilter(fx.st, fx.r, 1024)
	gate := make(chan struct{})
	t.Cleanup(func() { close(gate) }) // release the stuck goroutine

	lo, hi, err := fx.st.MinMaxPre()
	if err != nil {
		t.Fatal(err)
	}
	cf, err := cluster.NewWith([]cluster.Shard{{
		Range: cluster.Range{Lo: lo, Hi: hi},
		Replicas: []cluster.Replica{
			{Addr: "hung", Conn: &blockingConn{Conn: sf, gate: gate}},
			{Addr: "healthy", Conn: sf},
		},
	}}, cluster.Options{Hedge: true, HedgeAfter: 1e6 /* 1ms */})
	if err != nil {
		t.Fatal(err)
	}

	reqs := []filter.EvalRequest{{Pre: lo, Point: gf.Elem(3)}}
	want, err := sf.EvalBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	// The round-robin cursor alternates primaries; run two calls so one
	// of them is guaranteed to start on the hung replica and hedge.
	for i := 0; i < 2; i++ {
		got, err := cf.EvalBatch(reqs)
		if err != nil {
			t.Fatalf("hedged eval: %v", err)
		}
		if got[0] != want[0] {
			t.Fatalf("hedged eval = %+v, want %+v", got[0], want[0])
		}
	}
	if cf.Hedges() == 0 {
		t.Fatal("hung replica never triggered a hedge")
	}
	if cf.Failovers() != 0 {
		t.Fatalf("hedge recorded %d failovers (no call failed)", cf.Failovers())
	}
}

// failFastConn always fails EvalBatch with a retryable transport error.
type failFastConn struct{ cluster.Conn }

func (c *failFastConn) EvalBatch([]filter.EvalRequest) ([]filter.EvalResult, error) {
	return nil, &rmi.TransportError{Method: "test", Err: errors.New("replica down")}
}

// slowishConn delays EvalBatch past the hedge trigger.
type slowishConn struct {
	cluster.Conn
	d time.Duration
}

func (c *slowishConn) EvalBatch(reqs []filter.EvalRequest) ([]filter.EvalResult, error) {
	time.Sleep(c.d)
	return c.Conn.EvalBatch(reqs)
}

// TestHedgeTimerAfterFailoverExhaustsReplicas: a fast-failing primary
// consumes the failover slot before the hedge timer fires; the timer
// must then notice there is no replica left to hedge onto instead of
// indexing past the dispatch order (regression test).
func TestHedgeTimerAfterFailoverExhaustsReplicas(t *testing.T) {
	fx := xmarkFixture(t, 0.02, 7)
	sf := filter.NewServerFilter(fx.st, fx.r, 256)
	lo, hi, err := fx.st.MinMaxPre()
	if err != nil {
		t.Fatal(err)
	}
	cf, err := cluster.NewWith([]cluster.Shard{{
		Range: cluster.Range{Lo: lo, Hi: hi},
		Replicas: []cluster.Replica{
			{Addr: "dead", Conn: &failFastConn{Conn: sf}},
			{Addr: "slow", Conn: &slowishConn{Conn: sf, d: 20 * time.Millisecond}},
		},
	}}, cluster.Options{Hedge: true, HedgeAfter: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	reqs := []filter.EvalRequest{{Pre: lo, Point: gf.Elem(3)}}
	want, err := sf.EvalBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	// Several rounds so the round-robin starts on the dead replica at
	// least once: fail-fast -> failover to the slow sibling -> hedge
	// timer fires with every replica already launched.
	for i := 0; i < 4; i++ {
		got, err := cf.EvalBatch(reqs)
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		if got[0] != want[0] {
			t.Fatalf("round %d: got %+v, want %+v", i, got[0], want[0])
		}
	}
}

// TestDialGroupsReplicas: dialing a flat address list groups servers
// reporting the same pre range into one replica failover set.
func TestDialGroupsReplicas(t *testing.T) {
	fx := xmarkFixture(t, 0.02, 7)
	lo, hi, err := fx.st.MinMaxPre()
	if err != nil {
		t.Fatal(err)
	}
	ranges, err := cluster.PartitionEven(lo, hi, 2)
	if err != nil {
		t.Fatal(err)
	}
	stores, cleanup, err := cluster.SplitStore(fx.st, ranges)
	if err != nil {
		cleanup()
		t.Fatal(err)
	}
	t.Cleanup(cleanup)

	serve := func(si int) string {
		srv := rmi.NewServer()
		filter.RegisterServer(srv, filter.NewServerFilter(stores[si], fx.r, 256))
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		go srv.Serve(l)
		return l.Addr().String()
	}
	// Flat, interleaved: shard 0 replica, shard 1 replica, then their
	// siblings.
	addrs := []string{serve(0), serve(1), serve(0), serve(1)}

	f, err := cluster.Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	if f.Shards() != 2 {
		t.Fatalf("Shards() = %d, want 2 (4 addrs grouped by range)", f.Shards())
	}
	for si, n := range f.Replicas() {
		if n != 2 {
			t.Fatalf("shard %d has %d replicas, want 2", si, n)
		}
	}
	count, err := f.Count()
	if err != nil {
		t.Fatal(err)
	}
	if want, _ := fx.st.Count(); count != want {
		t.Fatalf("cluster count %d, want %d", count, want)
	}
}

// TestDialToleratesDownReplica: with TolerateUnreachable a session
// starts during a replica outage, as long as the reachable servers
// still cover the table; without it the dial stays strict.
func TestDialToleratesDownReplica(t *testing.T) {
	fx := xmarkFixture(t, 0.02, 7)
	lo, hi, err := fx.st.MinMaxPre()
	if err != nil {
		t.Fatal(err)
	}
	ranges, err := cluster.PartitionEven(lo, hi, 2)
	if err != nil {
		t.Fatal(err)
	}
	stores, cleanup, err := cluster.SplitStore(fx.st, ranges)
	if err != nil {
		cleanup()
		t.Fatal(err)
	}
	t.Cleanup(cleanup)
	var addrs []string
	for _, sst := range stores {
		srv := rmi.NewServer()
		filter.RegisterServer(srv, filter.NewServerFilter(sst, fx.r, 256))
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		go srv.Serve(l)
		addrs = append(addrs, l.Addr().String())
	}
	withDead := append([]string{"127.0.0.1:1"}, addrs...)

	if _, err := cluster.Dial(withDead); err == nil {
		t.Fatal("strict dial succeeded with a dead address")
	}
	f, err := cluster.DialWith(withDead, cluster.Options{TolerateUnreachable: true})
	if err != nil {
		t.Fatalf("tolerant dial failed: %v", err)
	}
	t.Cleanup(func() { f.Close() })
	if f.Shards() != 2 {
		t.Fatalf("tolerant dial built %d shards, want 2", f.Shards())
	}
	count, err := f.Count()
	if err != nil {
		t.Fatal(err)
	}
	if want, _ := fx.st.Count(); count != want {
		t.Fatalf("count %d, want %d", count, want)
	}
	// All servers down: even the tolerant dial must fail loudly.
	if _, err := cluster.DialWith([]string{"127.0.0.1:1"}, cluster.Options{TolerateUnreachable: true}); err == nil {
		t.Fatal("tolerant dial succeeded with no reachable server")
	}
}

// TestDialRejectsPartialOverlap: replicas must cover the SAME range;
// ranges that overlap without being identical fail the dial.
func TestDialRejectsPartialOverlap(t *testing.T) {
	fx := xmarkFixture(t, 0.02, 7)
	lo, hi, err := fx.st.MinMaxPre()
	if err != nil {
		t.Fatal(err)
	}
	mid := (lo + hi) / 2
	stores, cleanup, err := cluster.SplitStore(fx.st, []cluster.Range{{Lo: lo, Hi: mid + 10}, {Lo: mid, Hi: hi}})
	if err != nil {
		cleanup()
		t.Fatal(err)
	}
	t.Cleanup(cleanup)
	var addrs []string
	for _, sst := range stores {
		srv := rmi.NewServer()
		filter.RegisterServer(srv, filter.NewServerFilter(sst, fx.r, 256))
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		go srv.Serve(l)
		addrs = append(addrs, l.Addr().String())
	}
	if _, err := cluster.Dial(addrs); err == nil || !strings.Contains(err.Error(), "tile") {
		t.Fatalf("partially overlapping ranges dialed successfully (err=%v)", err)
	}
}
