package cluster

import (
	"sync"
	"time"
)

// Circuit-breaker tuning. A replica connection is scored by its streak
// of consecutive failures: once the streak reaches breakerThreshold the
// circuit opens and the replica is deprioritized for a cooldown that
// doubles with every further failure (capped), so a flapping replica is
// probed ever more rarely while a recovered one is readmitted after a
// single successful half-open call.
const (
	breakerThreshold   = 3
	breakerCooldown    = 500 * time.Millisecond
	breakerMaxCooldown = 30 * time.Second
)

// breaker is the per-replica-connection circuit breaker. The zero value
// is a closed (healthy) breaker.
type breaker struct {
	mu        sync.Mutex
	streak    int       // consecutive failures — the health score
	openUntil time.Time // zero when the circuit is closed

	now func() time.Time // injectable clock for tests; nil means time.Now
}

func (b *breaker) clock() time.Time {
	if b.now != nil {
		return b.now()
	}
	return time.Now()
}

// allow reports whether the replica should be dispatched to in
// preference order: true while the circuit is closed, and again once
// the cooldown has expired (the half-open probe).
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.openUntil.IsZero() || !b.clock().Before(b.openUntil)
}

// success closes the circuit and resets the score.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.streak = 0
	b.openUntil = time.Time{}
}

// failure bumps the score and opens (or re-opens, with exponential
// backoff) the circuit once the streak reaches the threshold.
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.streak++
	if b.streak < breakerThreshold {
		return
	}
	cool := breakerCooldown
	for i := breakerThreshold; i < b.streak && cool < breakerMaxCooldown; i++ {
		cool *= 2
	}
	if cool > breakerMaxCooldown {
		cool = breakerMaxCooldown
	}
	b.openUntil = b.clock().Add(cool)
}

// score returns the current consecutive-failure count.
func (b *breaker) score() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.streak
}

// state reports the breaker for metrics exposition: the failure streak
// and whether the circuit is currently open (cooldown still running).
func (b *breaker) state() (streak int, open bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.streak, !b.openUntil.IsZero() && b.clock().Before(b.openUntil)
}
