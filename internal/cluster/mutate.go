// Cluster write path: routing mutation batches to shards and their
// replicas.
//
// The Session planner emits row operations in global pre space; this
// layer splits them by owning shard (patches and deletes by the row
// they address, puts by the shard whose range the new row lands in),
// assigns each shard's batch the next sequence in that shard's log,
// and delivers it to EVERY replica of the shard. One acknowledgment
// per affected shard commits the write — the acking replica journaled
// it — and replicas that missed it are caught up from a bounded
// in-session redelivery window (SyncReplicas), or, past the window,
// by re-seeding from a sibling's files.
//
// Per-shard batches stay independent: an insert's renumbering patches
// for shard k shift only rows shard k holds, so the shard ranges keep
// tiling after every shard applies its own slice of the plan (the
// owner's Hi grows by one, every later shard's window slides by one).
// The reply's range updates the router live.
//
// One writer session per document is assumed — concurrent writer
// sessions would interleave sequence numbers and fail each other's
// gap checks (the second writer sees SeqGapError and must re-learn).
package cluster

import (
	"errors"
	"fmt"
	"sync"

	"encshare/internal/filter"
)

// backlogMax bounds the per-shard redelivery window: a replica that
// missed more than this many batches cannot be caught up by this
// session and must be re-seeded from a sibling's store + log files.
const backlogMax = 64

// epochSetter is the frame-pinning hook a dialed replica connection
// exposes (*filter.Remote). In-process connections don't carry frame
// headers and don't need pins — their sessions serialize locally.
type epochSetter interface{ SetEpoch(epoch uint64) }

// mutMu serializes this session's writers across all shards. It lives
// on the Filter rather than per shard so a multi-shard batch commits
// shard by shard without interleaving another local writer.
type mutState struct{ mu sync.Mutex }

// Mutate applies one logical mutation (the op list a Session planner
// produced) across the cluster. Ops are split by shard, sequenced, and
// sent to every replica; the call succeeds when every affected shard
// acknowledged on at least one replica. Failed replicas are left to
// SyncReplicas — their conns keep their place in the shard and their
// missed batches sit in the redelivery window.
func (f *Filter) Mutate(ops []filter.RowOp) error {
	f.mutMu.mu.Lock()
	defer f.mutMu.mu.Unlock()
	groups, err := f.groupOps(ops)
	if err != nil {
		return err
	}
	for si, sub := range groups {
		if len(sub) == 0 {
			continue
		}
		if err := f.mutateShard(si, sub); err != nil {
			return err
		}
	}
	return nil
}

// groupOps splits ops by owning shard, preserving op order within each
// shard (the planner's shift-ordering is what keeps the primary key
// unique mid-batch, and a subsequence keeps its order).
func (f *Filter) groupOps(ops []filter.RowOp) ([][]filter.RowOp, error) {
	groups := make([][]filter.RowOp, len(f.shards))
	for _, op := range ops {
		var si int
		var err error
		if op.Kind == filter.OpPut {
			si = f.putOwner(op.Pre)
		} else {
			si, err = f.owner(op.Pre)
			if err != nil {
				return nil, err
			}
		}
		groups[si] = append(groups[si], op)
	}
	return groups, nil
}

// putOwner picks the shard a brand-new row at pre lands in: the first
// shard whose range reaches pre, or the last shard when pre extends
// past every range (an append at the end of the document). A put at a
// shard boundary (pre = Hi_k+1 = the next shard's Lo) goes to the next
// shard — its rows shift up by one, opening the slot; both choices
// would re-tile, but every replica must see the same one, so the rule
// is fixed client-side.
func (f *Filter) putOwner(pre int64) int {
	for si := range f.shards {
		if f.shards[si].rangeOf().Hi >= pre {
			return si
		}
	}
	return len(f.shards) - 1
}

// mutateShard sequences and delivers one shard's slice of the plan.
func (f *Filter) mutateShard(si int, ops []filter.RowOp) error {
	sh := f.shards[si]
	if !sh.seqOK {
		info, err := f.shardEpoch(si)
		if err != nil {
			return f.shardErr(si, err)
		}
		sh.lastSeq = info.LastSeq
		sh.seqOK = true
	}
	b := filter.MutationBatch{Ver: filter.MutationBatchVersion, Seq: sh.lastSeq + 1, Ops: ops}
	var (
		acks     int
		firstErr error
		consumed bool // a replica definitively consumed the sequence
		ack      filter.MutateReply
	)
	for _, rep := range sh.replicaList() {
		ma, ok := rep.conn.(filter.MutableAPI)
		if !ok {
			if firstErr == nil {
				firstErr = filter.ErrMutationUnsupported
			}
			continue
		}
		reply, err := ma.Mutate(b)
		switch {
		case err == nil:
			acks++
			ack = reply
		case errors.Is(err, filter.ErrMutationUnsupported):
			if firstErr == nil {
				firstErr = err
			}
		case filter.IsSeqGap(err):
			// This replica's log is elsewhere (it lags, or another
			// writer advanced it). Re-learn before the next attempt.
			sh.seqOK = false
			if firstErr == nil {
				firstErr = err
			}
		case filter.Retryable(err):
			// Transport: delivery unknown. SyncReplicas resolves it.
			if firstErr == nil {
				firstErr = err
			}
		default:
			// A deterministic reply (e.g. the apply failed): the server
			// journaled the batch and advanced its sequence — every
			// replica and every replay lands in the same state, so the
			// sequence is spent even though the mutation failed.
			consumed = true
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	if acks == 0 && !consumed {
		return f.shardErr(si, fmt.Errorf("mutation batch %d: %w", b.Seq, firstErr))
	}
	sh.lastSeq = b.Seq
	sh.backlog = append(sh.backlog, b)
	if len(sh.backlog) > backlogMax {
		sh.backlog = sh.backlog[len(sh.backlog)-backlogMax:]
	}
	if acks == 0 {
		return f.shardErr(si, fmt.Errorf("mutation batch %d: %w", b.Seq, firstErr))
	}
	sh.setRange(Range{Lo: ack.Range.Lo, Hi: ack.Range.Hi})
	f.pinShard(sh, ack.Epoch)
	return nil
}

// pinShard stamps every dialable connection of the shard with the
// epoch. A lagging replica pinned ahead of its data refuses reads with
// a StaleEpochError, which is Retryable — the router fails the frame
// over to an in-sync sibling instead of serving a stale answer.
func (f *Filter) pinShard(sh *shardState, epoch uint64) {
	for _, rep := range sh.replicaList() {
		if es, ok := rep.conn.(epochSetter); ok {
			es.SetEpoch(epoch)
		}
	}
}

// shardEpoch asks the shard's replicas for their mutation state and
// returns the most advanced answer — pinning to a lagging replica's
// epoch would fence reads off the current data. Replicas that are down
// are skipped; a shard where nothing answers fails.
func (f *Filter) shardEpoch(si int) (filter.EpochInfo, error) {
	var (
		best    filter.EpochInfo
		got     bool
		lastErr error
	)
	for _, rep := range f.shards[si].replicaList() {
		ma, ok := rep.conn.(filter.MutableAPI)
		if !ok {
			if lastErr == nil {
				lastErr = filter.ErrMutationUnsupported
			}
			continue
		}
		info, err := ma.Epoch()
		if err != nil {
			if lastErr == nil || errors.Is(lastErr, filter.ErrMutationUnsupported) {
				lastErr = err
			}
			continue
		}
		if !got || info.LastSeq > best.LastSeq {
			best, got = info, true
		}
	}
	if !got {
		return filter.EpochInfo{}, lastErr
	}
	return best, nil
}

// RefreshEpochs re-pins every shard's connections to the shard's
// current epoch and refreshes the routing ranges — what a session calls
// after a StaleEpochError before rerunning its query. Shards served
// only by pre-mutation servers are skipped (nothing to pin).
func (f *Filter) RefreshEpochs() error {
	for si, sh := range f.shards {
		info, err := f.shardEpoch(si)
		if err != nil {
			if errors.Is(err, filter.ErrMutationUnsupported) {
				continue
			}
			return f.shardErr(si, err)
		}
		sh.setRange(Range{Lo: info.Range.Lo, Hi: info.Range.Hi})
		f.pinShard(sh, info.Epoch)
	}
	return nil
}

// SyncReplicas redelivers missed batches from the session's redelivery
// window to every replica that is behind, and reports how many
// replicas remain out of sync (down, or lagging past the window).
// Callers poll it after a replica restart until pending hits zero.
// Replicas are accounted by ADDRESS: a restarted process leaves its
// dead pre-restart connection behind (the reconnect seam keeps it in
// the shard behind its breaker), and an address whose fresh connection
// answers and is caught up is in sync regardless of dead siblings.
func (f *Filter) SyncReplicas() (pending int, err error) {
	f.mutMu.mu.Lock()
	defer f.mutMu.mu.Unlock()
	var firstErr error
	for si, sh := range f.shards {
		if !sh.seqOK {
			continue // no writes through this session: nothing to redeliver
		}
		type endpoint struct {
			ma    filter.MutableAPI
			info  filter.EpochInfo
			alive bool
		}
		state := make(map[string]*endpoint)
		var order []string
		for _, rep := range sh.replicaList() {
			ma, ok := rep.conn.(filter.MutableAPI)
			if !ok {
				continue
			}
			ep := state[rep.addr]
			if ep == nil {
				ep = &endpoint{}
				state[rep.addr] = ep
				order = append(order, rep.addr)
			}
			if ep.alive {
				continue
			}
			if info, ierr := ma.Epoch(); ierr == nil {
				*ep = endpoint{ma: ma, info: info, alive: true}
			}
		}
		for _, addr := range order {
			ep := state[addr]
			if !ep.alive {
				pending++ // down: retry on the caller's next poll
				continue
			}
			if ep.info.LastSeq >= sh.lastSeq {
				continue
			}
			if len(sh.backlog) == 0 || sh.backlog[0].Seq > ep.info.LastSeq+1 {
				pending++
				if firstErr == nil {
					firstErr = f.shardErr(si, fmt.Errorf(
						"replica %s is at seq %d, beyond the %d-batch redelivery window (re-seed it from a sibling)",
						addr, ep.info.LastSeq, backlogMax))
				}
				continue
			}
			caught := true
			for _, b := range sh.backlog {
				if b.Seq <= ep.info.LastSeq {
					continue
				}
				if _, merr := ep.ma.Mutate(b); merr != nil {
					pending++
					caught = false
					if firstErr == nil && !filter.Retryable(merr) {
						firstErr = f.shardErr(si, fmt.Errorf("redelivering batch %d to %s: %w", b.Seq, addr, merr))
					}
					break
				}
			}
			if caught {
				f.pinShard(sh, sh.lastSeq+1)
			}
		}
	}
	return pending, firstErr
}

// AdoptReplica joins conn as a replica of shard si without AddReplica's
// range gate — for a restarted replica the caller knows belongs there
// (its reported range lags until SyncReplicas catches it up) and for
// in-process chaos tests that rebuild a replica's backend around a
// replayed log.
func (f *Filter) AdoptReplica(si int, addr string, conn Conn) error {
	if si < 0 || si >= len(f.shards) {
		return fmt.Errorf("cluster: no shard %d", si)
	}
	if conn == nil {
		return fmt.Errorf("cluster: adopting %s: nil connection", addr)
	}
	if tr := f.tracer.Load(); tr != nil {
		if ct, ok := conn.(connTracer); ok {
			ct.SetTracer(tr, si, addr)
		}
	}
	f.shards[si].addReplica(&replica{addr: addr, conn: conn})
	return nil
}

// EnsureReplica probes the replicas registered at addr and, when none
// answers, dials the address fresh and joins the connection to the
// shard its range (best-overlap for a lagging recoverer) indicates —
// the reconnect seam a writer session uses after a replica process is
// killed and restarted: the dead conn stays behind its breaker, the
// fresh conn takes the traffic, SyncReplicas replays what was missed.
func (f *Filter) EnsureReplica(addr string) (int, error) {
	for si, sh := range f.shards {
		for _, rep := range sh.replicaList() {
			if rep.addr != addr {
				continue
			}
			if ma, ok := rep.conn.(filter.MutableAPI); ok {
				if _, err := ma.Epoch(); err == nil {
					return si, nil // already connected and answering
				}
			}
		}
	}
	return f.AddReplica(addr)
}
