// Cluster write path: routing mutation batches to shards and their
// replicas.
//
// The Session planner emits row operations in global pre space; this
// layer splits them by owning shard (patches and deletes by the row
// they address, puts by the shard whose range the new row lands in),
// assigns each shard's batch the next sequence in that shard's log,
// and delivers it to EVERY replica of the shard. One acknowledgment
// per affected shard commits the write — the acking replica journaled
// it — and replicas that missed it are caught up from a bounded
// in-session redelivery window (SyncReplicas), or, past the window,
// by re-seeding from a sibling's files.
//
// Per-shard batches stay independent: an insert's renumbering patches
// for shard k shift only rows shard k holds, so the shard ranges keep
// tiling after every shard applies its own slice of the plan (the
// owner's Hi grows by one, every later shard's window slides by one).
// The reply's range updates the router live.
//
// A multi-shard plan commits shard by shard with no cross-shard
// atomicity: a failure partway leaves the global pre numbering torn
// across shards. Mutate bounds and repairs the tear — every shard is
// still attempted, a shard whose delivery is merely unknown parks its
// batch, the mixed outcome surfaces as a PartialMutationError, further
// writes are refused (ErrPendingMutation) until SyncReplicas flushes
// the parked batches, and the flush is safe to repeat because servers
// digest-verify redelivered sequences.
//
// One writer session per document is assumed — concurrent writer
// sessions would interleave sequence numbers and fail each other's
// gap checks (SeqGapError, or BatchMismatchError when a batch collides
// with a sequence the other writer already consumed; either way the
// losing writer must re-learn and re-plan).
package cluster

import (
	"errors"
	"fmt"
	"sync"

	"encshare/internal/filter"
)

// backlogMax bounds the per-shard redelivery window: a replica that
// missed more than this many batches cannot be caught up by this
// session and must be re-seeded from a sibling's store + log files.
const backlogMax = 64

// epochSetter is the frame-pinning hook a dialed replica connection
// exposes (*filter.Remote). In-process connections don't carry frame
// headers and don't need pins — their sessions serialize locally.
type epochSetter interface{ SetEpoch(epoch uint64) }

// mutMu serializes this session's writers across all shards. It lives
// on the Filter rather than per shard so a multi-shard batch commits
// shard by shard without interleaving another local writer.
type mutState struct {
	mu sync.Mutex
	// lastLeaseID is the writer-lease fencing ID from the last grant
	// this session saw; a different ID on the next grant means another
	// writer held the lease in between and advanced logs this session's
	// cached sequences do not reflect.
	lastLeaseID uint64
}

// AcquireWriterLease acquires the cluster-wide writer lease from the
// designated sequencer — the lexically lowest address among shard 0's
// replicas whose connection speaks the lease frames, so every session
// elects the same endpoint without coordination. The lease does not
// replace explicit per-shard sequencing (redelivery and digest checks
// still guard correctness); it keeps concurrent writer sessions from
// ever planning against the same state and burning retries.
//
// A grant whose lease ID differs from the last one this session saw
// means the lease transferred through another writer meanwhile: every
// shard's cached sequence is dropped and epochs re-learned before the
// grant is returned.
//
// Returns filter.ErrLeaseUnsupported when no replica speaks the lease
// frames — callers fall back to optimistic sequencing.
func (f *Filter) AcquireWriterLease(owner string, ttlMillis int64) (filter.LeaseGrant, error) {
	la := f.leaseEndpoint()
	if la == nil {
		return filter.LeaseGrant{}, filter.ErrLeaseUnsupported
	}
	grant, err := la.AcquireLease(filter.LeaseRequest{Owner: owner, TTLMillis: ttlMillis})
	if err != nil {
		return filter.LeaseGrant{}, err
	}
	f.mutMu.mu.Lock()
	transferred := grant.ID != f.mutMu.lastLeaseID
	f.mutMu.lastLeaseID = grant.ID
	if transferred {
		for _, sh := range f.shards {
			sh.seqOK = false
		}
	}
	f.mutMu.mu.Unlock()
	if transferred {
		if err := f.RefreshEpochs(); err != nil {
			return grant, err
		}
	}
	return grant, nil
}

// ReleaseWriterLease hands the cluster writer lease back early (it
// would expire on its own). Best-effort: no endpoint, no error.
func (f *Filter) ReleaseWriterLease(id uint64) error {
	la := f.leaseEndpoint()
	if la == nil {
		return nil
	}
	return la.ReleaseLease(id)
}

// leaseEndpoint picks the designated sequencer: shard 0's lease-capable
// replica at the lexically lowest address.
func (f *Filter) leaseEndpoint() filter.LeaseAPI {
	if len(f.shards) == 0 {
		return nil
	}
	var best filter.LeaseAPI
	var bestAddr string
	for _, rep := range f.shards[0].replicaList() {
		la, ok := rep.conn.(filter.LeaseAPI)
		if !ok {
			continue
		}
		if best == nil || rep.addr < bestAddr {
			best, bestAddr = la, rep.addr
		}
	}
	return best
}

// Mutate applies one logical mutation (the op list a Session planner
// produced) across the cluster. Ops are split by shard, sequenced, and
// sent to every replica; the call succeeds when every affected shard
// acknowledged on at least one replica. Failed replicas are left to
// SyncReplicas — their conns keep their place in the shard and their
// missed batches sit in the redelivery window.
//
// A multi-shard plan has no cross-shard atomicity: each shard commits
// its slice independently. Every affected shard is attempted even when
// an earlier one fails — a shard whose delivery is merely unknown
// parks its batch for SyncReplicas to flush, so finishing the others
// means one successful sync restores a globally consistent tiling
// instead of leaving several shards behind. A mixed outcome surfaces
// as a PartialMutationError naming the committed and failed shards;
// until the failed ones are repaired the global pre numbering is torn
// across shards, so callers must not re-plan against it (the root
// session surfaces the error instead of retrying). While any batch is
// parked, further mutations are refused with ErrPendingMutation.
func (f *Filter) Mutate(ops []filter.RowOp) error {
	f.mutMu.mu.Lock()
	defer f.mutMu.mu.Unlock()
	for si, sh := range f.shards {
		if sh.pending != nil {
			return f.shardErr(si, fmt.Errorf("%w (batch %d)", ErrPendingMutation, sh.pending.Seq))
		}
	}
	groups, err := f.groupOps(ops)
	if err != nil {
		return err
	}
	var applied, failed []int
	var firstErr error
	for si, sub := range groups {
		if len(sub) == 0 {
			continue
		}
		if err := f.mutateShard(si, sub); err != nil {
			failed = append(failed, si)
			if firstErr == nil {
				firstErr = err
			}
		} else {
			applied = append(applied, si)
		}
	}
	switch {
	case firstErr == nil:
		return nil
	case len(applied) == 0:
		return firstErr
	default:
		return &PartialMutationError{Applied: applied, Failed: failed, Err: firstErr}
	}
}

// groupOps splits ops by owning shard, preserving op order within each
// shard (the planner's shift-ordering is what keeps the primary key
// unique mid-batch, and a subsequence keeps its order).
func (f *Filter) groupOps(ops []filter.RowOp) ([][]filter.RowOp, error) {
	groups := make([][]filter.RowOp, len(f.shards))
	for _, op := range ops {
		var si int
		var err error
		if op.Kind == filter.OpPut {
			si = f.putOwner(op.Pre)
		} else {
			si, err = f.owner(op.Pre)
			if err != nil {
				return nil, err
			}
		}
		groups[si] = append(groups[si], op)
	}
	return groups, nil
}

// putOwner picks the shard a brand-new row at pre lands in: the first
// shard whose range reaches pre, or the last shard when pre extends
// past every range (an append at the end of the document). A put at a
// shard boundary (pre = Hi_k+1 = the next shard's Lo) goes to the next
// shard — its rows shift up by one, opening the slot; both choices
// would re-tile, but every replica must see the same one, so the rule
// is fixed client-side.
func (f *Filter) putOwner(pre int64) int {
	for si := range f.shards {
		if f.shards[si].rangeOf().Hi >= pre {
			return si
		}
	}
	return len(f.shards) - 1
}

// mutateShard sequences and delivers one shard's slice of the plan.
// Outcomes: at least one ack (or a definitive consume) commits the
// sequence into the shard's bookkeeping; a purely-unknown delivery
// (every answering replica failed at the transport) parks the batch
// for SyncReplicas to flush — the digest-verified idempotent ack makes
// redelivering it safe whether or not it actually landed; a definitive
// rejection on every replica (gap, mismatch, unsupported) consumes
// nothing and parks nothing.
func (f *Filter) mutateShard(si int, ops []filter.RowOp) error {
	sh := f.shards[si]
	if !sh.seqOK {
		info, err := f.shardEpoch(si)
		if err != nil {
			return f.shardErr(si, err)
		}
		sh.lastSeq = info.LastSeq
		sh.seqOK = true
	}
	b := filter.MutationBatch{Ver: filter.MutationBatchVersion, Seq: sh.lastSeq + 1, Ops: ops}
	prev := sh.rangeOf()
	var (
		acks     int
		unknown  int // transport failures: delivery unknown
		firstErr error
		consumed bool // a replica definitively consumed the sequence
		ack      filter.MutateReply
	)
	for _, rep := range sh.replicaList() {
		ma, ok := rep.conn.(filter.MutableAPI)
		if !ok {
			if firstErr == nil {
				firstErr = filter.ErrMutationUnsupported
			}
			continue
		}
		reply, err := ma.Mutate(b)
		switch {
		case err == nil:
			acks++
			ack = reply
		case errors.Is(err, filter.ErrMutationUnsupported):
			if firstErr == nil {
				firstErr = err
			}
		case filter.IsSeqGap(err) || filter.IsBatchMismatch(err):
			// This replica's log is elsewhere (it lags, or another writer
			// advanced it — a mismatch means the sequence this batch was
			// planned for went to a different writer's batch). Re-learn
			// before the next attempt.
			sh.seqOK = false
			if firstErr == nil {
				firstErr = err
			}
		case filter.IsWALFailed(err):
			// A definitive refusal, not an unknown delivery: the replica's
			// disk is sick and it rejected the batch BEFORE journaling, so
			// nothing may have landed there. Keep trying the siblings (the
			// error is Retryable for exactly that reason) — one healthy
			// ack commits the batch; the sick replica catches up through
			// SyncReplicas after its operator restarts it.
			if firstErr == nil {
				firstErr = err
			}
		case filter.Retryable(err):
			// Transport: delivery unknown. SyncReplicas resolves it.
			unknown++
			if firstErr == nil {
				firstErr = err
			}
		default:
			// A deterministic reply (e.g. the apply failed): the server
			// journaled the batch and advanced its sequence — every
			// replica and every replay lands in the same state, so the
			// sequence is spent even though the mutation failed.
			consumed = true
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	if acks == 0 && !consumed {
		if unknown > 0 && sh.seqOK {
			// Delivery unknown on every answering replica: park the batch.
			// SyncReplicas redelivers it — an exact redelivery is acked
			// idempotently if it did land, applied normally if it did not.
			// (Not parked when a replica definitively rejected the
			// sequence: the batch is known-dead and must be re-planned.)
			sh.pending = &b
		}
		return f.shardErr(si, fmt.Errorf("mutation batch %d: %w", b.Seq, firstErr))
	}
	sh.lastSeq = b.Seq
	sh.backlog = append(sh.backlog, backlogEntry{b: b, prev: prev})
	if len(sh.backlog) > backlogMax {
		sh.backlog = sh.backlog[len(sh.backlog)-backlogMax:]
	}
	if acks == 0 {
		return f.shardErr(si, fmt.Errorf("mutation batch %d: %w", b.Seq, firstErr))
	}
	sh.setRange(Range{Lo: ack.Range.Lo, Hi: ack.Range.Hi})
	f.pinShard(sh, ack.Epoch)
	return nil
}

// pinShard stamps every dialable connection of the shard with the
// epoch. A lagging replica pinned ahead of its data refuses reads with
// a StaleEpochError, which is Retryable — the router fails the frame
// over to an in-sync sibling instead of serving a stale answer.
func (f *Filter) pinShard(sh *shardState, epoch uint64) {
	for _, rep := range sh.replicaList() {
		if es, ok := rep.conn.(epochSetter); ok {
			es.SetEpoch(epoch)
		}
	}
}

// shardEpoch asks the shard's replicas for their mutation state and
// returns the most advanced answer — pinning to a lagging replica's
// epoch would fence reads off the current data. Replicas that are down
// are skipped; a shard where nothing answers fails.
func (f *Filter) shardEpoch(si int) (filter.EpochInfo, error) {
	var (
		best    filter.EpochInfo
		got     bool
		lastErr error
	)
	for _, rep := range f.shards[si].replicaList() {
		ma, ok := rep.conn.(filter.MutableAPI)
		if !ok {
			if lastErr == nil {
				lastErr = filter.ErrMutationUnsupported
			}
			continue
		}
		info, err := ma.Epoch()
		if err != nil {
			if lastErr == nil || errors.Is(lastErr, filter.ErrMutationUnsupported) {
				lastErr = err
			}
			continue
		}
		if !got || info.LastSeq > best.LastSeq {
			best, got = info, true
		}
	}
	if !got {
		return filter.EpochInfo{}, lastErr
	}
	return best, nil
}

// RefreshEpochs re-pins every shard's connections to the shard's
// current epoch and refreshes the routing ranges — what a session calls
// after a StaleEpochError before rerunning its query. Shards served
// only by pre-mutation servers are skipped (nothing to pin).
func (f *Filter) RefreshEpochs() error {
	for si, sh := range f.shards {
		info, err := f.shardEpoch(si)
		if err != nil {
			if errors.Is(err, filter.ErrMutationUnsupported) {
				continue
			}
			return f.shardErr(si, err)
		}
		sh.setRange(Range{Lo: info.Range.Lo, Hi: info.Range.Hi})
		f.pinShard(sh, info.Epoch)
	}
	return nil
}

// SyncReplicas redelivers missed batches from the session's redelivery
// window to every replica that is behind, flushes any parked batch
// whose delivery was unknown, and reports how many replicas remain out
// of sync (down, or lagging past the window). Callers poll it after a
// replica restart until pending hits zero. Replicas are accounted by
// ADDRESS: a restarted process leaves its dead pre-restart connection
// behind (the reconnect seam keeps it in the shard behind its
// breaker), and an address whose fresh connection answers and is
// caught up is in sync regardless of dead siblings.
//
// A parked batch is redelivered exactly as sent: if it landed before
// the outage it is acked idempotently (the server digest-verifies the
// bytes), if not it applies as the next sequence — either way one ack
// commits it into the shard's bookkeeping and repairs the torn tiling
// a PartialMutationError reported. A sequence-gap or batch-mismatch
// rejection means another writer consumed its sequence: the batch is
// dropped as definitively lost and the shard's sequence re-learned.
func (f *Filter) SyncReplicas() (pending int, err error) {
	f.mutMu.mu.Lock()
	defer f.mutMu.mu.Unlock()
	var firstErr error
	for si, sh := range f.shards {
		if !sh.seqOK && sh.pending == nil {
			continue // no writes through this session: nothing to redeliver
		}
		type endpoint struct {
			ma    filter.MutableAPI
			info  filter.EpochInfo
			alive bool
		}
		state := make(map[string]*endpoint)
		var order []string
		for _, rep := range sh.replicaList() {
			ma, ok := rep.conn.(filter.MutableAPI)
			if !ok {
				continue
			}
			ep := state[rep.addr]
			if ep == nil {
				ep = &endpoint{}
				state[rep.addr] = ep
				order = append(order, rep.addr)
			}
			if ep.alive {
				continue
			}
			if info, ierr := ma.Epoch(); ierr == nil {
				*ep = endpoint{ma: ma, info: info, alive: true}
			}
		}
		for _, addr := range order {
			ep := state[addr]
			if !ep.alive {
				pending++ // down: retry on the caller's next poll
				continue
			}
			if ep.info.LastSeq >= sh.lastSeq && sh.pending == nil {
				continue
			}
			if ep.info.LastSeq < sh.lastSeq &&
				(len(sh.backlog) == 0 || sh.backlog[0].b.Seq > ep.info.LastSeq+1) {
				pending++
				if firstErr == nil {
					firstErr = f.shardErr(si, fmt.Errorf(
						"replica %s is at seq %d, beyond the %d-batch redelivery window (re-seed it from a sibling)",
						addr, ep.info.LastSeq, backlogMax))
				}
				continue
			}
			caught := true
			for _, e := range sh.backlog {
				if e.b.Seq <= ep.info.LastSeq {
					continue
				}
				if _, merr := ep.ma.Mutate(e.b); merr != nil {
					pending++
					caught = false
					if firstErr == nil && !filter.Retryable(merr) {
						firstErr = f.shardErr(si, fmt.Errorf("redelivering batch %d to %s: %w", e.b.Seq, addr, merr))
					}
					break
				}
			}
			if caught && sh.pending != nil {
				prev := sh.rangeOf()
				reply, merr := ep.ma.Mutate(*sh.pending)
				switch {
				case merr == nil:
					sh.lastSeq = sh.pending.Seq
					sh.backlog = append(sh.backlog, backlogEntry{b: *sh.pending, prev: prev})
					if len(sh.backlog) > backlogMax {
						sh.backlog = sh.backlog[len(sh.backlog)-backlogMax:]
					}
					sh.pending = nil
					sh.setRange(Range{Lo: reply.Range.Lo, Hi: reply.Range.Hi})
				case filter.IsSeqGap(merr) || filter.IsBatchMismatch(merr):
					// Another writer took the parked batch's sequence: the
					// batch is lost for good, not pending. Drop it and
					// re-learn before the next write.
					sh.pending = nil
					sh.seqOK = false
					caught = false
					if firstErr == nil {
						firstErr = f.shardErr(si, fmt.Errorf("parked batch %d lost to a concurrent writer: %w", sh.lastSeq+1, merr))
					}
				default:
					pending++
					caught = false
					if firstErr == nil && !filter.Retryable(merr) {
						firstErr = f.shardErr(si, fmt.Errorf("flushing parked batch to %s: %w", addr, merr))
					}
				}
			}
			if caught {
				f.pinShard(sh, sh.lastSeq+1)
			}
		}
	}
	return pending, firstErr
}

// AdoptReplica joins conn as a replica of shard si without AddReplica's
// range gate — for a restarted replica the caller knows belongs there
// (its reported range lags until SyncReplicas catches it up) and for
// in-process chaos tests that rebuild a replica's backend around a
// replayed log.
func (f *Filter) AdoptReplica(si int, addr string, conn Conn) error {
	if si < 0 || si >= len(f.shards) {
		return fmt.Errorf("cluster: no shard %d", si)
	}
	if conn == nil {
		return fmt.Errorf("cluster: adopting %s: nil connection", addr)
	}
	if tr := f.tracer.Load(); tr != nil {
		if ct, ok := conn.(connTracer); ok {
			ct.SetTracer(tr, si, addr)
		}
	}
	f.shards[si].addReplica(&replica{addr: addr, conn: conn})
	return nil
}

// EnsureReplica probes the replicas registered at addr and, when none
// answers, dials the address fresh and joins the connection to the
// shard its range (best-overlap for a lagging recoverer) indicates —
// the reconnect seam a writer session uses after a replica process is
// killed and restarted: the dead conn stays behind its breaker, the
// fresh conn takes the traffic, SyncReplicas replays what was missed.
func (f *Filter) EnsureReplica(addr string) (int, error) {
	for si, sh := range f.shards {
		for _, rep := range sh.replicaList() {
			if rep.addr != addr {
				continue
			}
			if ma, ok := rep.conn.(filter.MutableAPI); ok {
				if _, err := ma.Epoch(); err == nil {
					return si, nil // already connected and answering
				}
			}
		}
	}
	return f.AddReplica(addr)
}
