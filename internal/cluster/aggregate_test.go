package cluster_test

import (
	"errors"
	"testing"
	"time"

	"encshare/internal/cluster"
	"encshare/internal/filter"
	"encshare/internal/gf"
	"encshare/internal/ring"
	"encshare/internal/xmldoc"
)

// itemPres returns the sorted pre positions of every node named name.
func (fx *fixture) itemPres(name string) []int64 {
	var out []int64
	fx.doc.Walk(func(n *xmldoc.Node) bool {
		if n.Name == name {
			out = append(out, n.Pre)
		}
		return true
	})
	return out
}

// aggregateOracle is the pre-aggregate ground truth: reconstruct every
// row client-side against the single-store server and sum.
func aggregateOracle(t testing.TB, fx *fixture, pres []int64) ring.Poly {
	t.Helper()
	cli := filter.NewClient(filter.NewServerFilter(fx.st, fx.r, 1024), fx.scheme)
	total := fx.r.NewPoly()
	for _, pre := range pres {
		p, err := cli.Reconstruct(pre)
		if err != nil {
			t.Fatal(err)
		}
		fx.r.AddInPlace(total, p)
	}
	return total
}

func (fx *fixture) mapVal(t testing.TB, name string) gf.Elem {
	t.Helper()
	v, err := fx.m.Value(name)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestClusterAggregateParity: for several cluster widths, a verified
// SUM/COUNT fold across shards equals the single-server oracle, and the
// whole fold costs exactly ONE exchange on every shard that owns rows —
// the O(shards) wire profile the frames exist for.
func TestClusterAggregateParity(t *testing.T) {
	fx := xmarkFixture(t, 0.05, 23)
	pres := fx.itemPres("item")
	if len(pres) < 20 {
		t.Fatalf("fixture has only %d items", len(pres))
	}
	point := fx.mapVal(t, "item")
	want := aggregateOracle(t, fx, pres)

	for _, n := range []int{1, 2, 3, 5} {
		cf := fx.clusterOf(t, n)
		cli := filter.NewClient(cf, fx.scheme)
		before := cf.ShardRoundTrips()
		agg, err := cli.AggregateFold(pres, filter.AggSum, filter.AggregateOptions{CheckPoint: point})
		if err != nil {
			t.Fatalf("%d shards: %v", n, err)
		}
		if !fx.r.Equal(agg.Sum, want) {
			t.Fatalf("%d shards: cluster fold != single-server oracle", n)
		}
		if agg.Count != int64(len(pres)) || !agg.Folded || !agg.Verified {
			t.Fatalf("%d shards: count=%d folded=%v verified=%v", n, agg.Count, agg.Folded, agg.Verified)
		}
		after := cf.ShardRoundTrips()
		for si := range after {
			if d := after[si] - before[si]; d > 1 {
				t.Errorf("%d shards: shard %d cost %d exchanges, want ≤1", n, si, d)
			}
		}
	}
}

// tamperConn corrupts one aggregate chunk of its shard's replies.
type tamperConn struct {
	cluster.Conn
	mutate func(*filter.AggregateReply)
}

func (c *tamperConn) AggregateBatch(req filter.AggregateRequest) (filter.AggregateReply, error) {
	reply, err := c.Conn.AggregateBatch(req)
	if err == nil {
		c.mutate(&reply)
	}
	return reply, err
}

// twoShardCluster builds a 2-shard cluster over the fixture store, with
// hooks to wrap each shard's connection.
func (fx *fixture) twoShardCluster(t *testing.T, wrap func(si int, c cluster.Conn) cluster.Conn) *cluster.Filter {
	t.Helper()
	lo, hi, err := fx.st.MinMaxPre()
	if err != nil {
		t.Fatal(err)
	}
	ranges, err := cluster.PartitionEven(lo, hi, 2)
	if err != nil {
		t.Fatal(err)
	}
	stores, cleanup, err := cluster.SplitStore(fx.st, ranges)
	if err != nil {
		cleanup()
		t.Fatal(err)
	}
	t.Cleanup(cleanup)
	shards := make([]cluster.Shard, 2)
	for i, sst := range stores {
		shards[i] = cluster.Shard{
			Addr:  []string{"shard-alpha", "shard-beta"}[i],
			Range: ranges[i],
			Conn:  wrap(i, filter.NewServerFilter(sst, fx.r, 1024)),
		}
	}
	cf, err := cluster.New(shards)
	if err != nil {
		t.Fatal(err)
	}
	return cf
}

// TestClusterAggregateOriginNamesShard: a cluster fold whose chunk
// fails verification must say WHICH shard misbehaved, so an operator
// can quarantine it.
func TestClusterAggregateOriginNamesShard(t *testing.T) {
	fx := xmarkFixture(t, 0.05, 23)
	// Corrupt the field count only: the chunk still tiles structurally
	// (the replica op checks Σ Rows, so a Rows lie would just fail over),
	// and the lie is caught by the client's count cross-check instead.
	corrupt := func(r *filter.AggregateReply) {
		if len(r.Chunks) > 0 {
			r.Chunks[0].Count++
		}
	}
	cf := fx.twoShardCluster(t, func(si int, c cluster.Conn) cluster.Conn {
		if si == 1 {
			return &tamperConn{Conn: c, mutate: corrupt}
		}
		return c
	})
	cli := filter.NewClient(cf, fx.scheme)
	pres := fx.itemPres("item")
	_, err := cli.AggregateFold(pres, filter.AggSum, filter.AggregateOptions{CheckPoint: fx.mapVal(t, "item")})
	var ie *filter.IntegrityError
	if !errors.As(err, &ie) {
		t.Fatalf("corrupted shard: err = %v, want IntegrityError", err)
	}
	if ie.Origin != "shard-beta" {
		t.Fatalf("IntegrityError names shard %q, want shard-beta", ie.Origin)
	}
}

// TestClusterAggregateMixedVersionDowngrade: if ANY shard predates the
// aggregate frames the whole fold downgrades to client-side
// reconstruction — partial folds would double-count — and still
// matches the oracle.
func TestClusterAggregateMixedVersionDowngrade(t *testing.T) {
	fx := xmarkFixture(t, 0.05, 23)
	cf := fx.twoShardCluster(t, func(si int, c cluster.Conn) cluster.Conn {
		if si == 0 {
			return oldShard{c}
		}
		return c
	})
	cli := filter.NewClient(cf, fx.scheme)
	pres := fx.itemPres("item")
	want := aggregateOracle(t, fx, pres)
	agg, err := cli.AggregateFold(pres, filter.AggSum, filter.AggregateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Folded {
		t.Fatal("mixed-version cluster reported a fold")
	}
	if !fx.r.Equal(agg.Sum, want) {
		t.Fatal("downgraded cluster fold != oracle")
	}
}

// oldShard answers aggregate frames the way a pre-aggregate server
// does: with the unsupported sentinel.
type oldShard struct{ cluster.Conn }

func (c oldShard) AggregateBatch(filter.AggregateRequest) (filter.AggregateReply, error) {
	return filter.AggregateReply{}, filter.ErrAggregateUnsupported
}

// TestChaosReplicaLossMidAggregate is the aggregate chaos test: on a
// 3-shard × 2-replica cluster one replica of every shard dies on its
// first aggregate frame, the frames fail over to the siblings, and the
// verified fold still equals the single-server oracle exactly.
func TestChaosReplicaLossMidAggregate(t *testing.T) {
	fx := xmarkFixture(t, 0.05, 31)
	pres := fx.itemPres("item")
	point := fx.mapVal(t, "item")
	want := aggregateOracle(t, fx, pres)

	// Every shard's first replica dies on its very first request frame,
	// so the aggregate frame itself is what fails over.
	killAfter := map[[2]int]int{{0, 0}: 0, {1, 0}: 0, {2, 0}: 0}
	cf := fx.replicatedClusterOf(t, 3, 2, killAfter, cluster.Options{})
	cli := filter.NewClient(cf, fx.scheme)

	agg, err := cli.AggregateFold(pres, filter.AggSum, filter.AggregateOptions{CheckPoint: point})
	if err != nil {
		t.Fatalf("aggregate across replica deaths: %v", err)
	}
	if !fx.r.Equal(agg.Sum, want) {
		t.Fatal("failover fold != oracle")
	}
	if agg.Count != int64(len(pres)) || !agg.Verified {
		t.Fatalf("count=%d verified=%v", agg.Count, agg.Verified)
	}
	if cf.Failovers() == 0 {
		t.Fatal("killed replicas but Failovers() = 0")
	}

	// The fold is repeatable on the surviving replicas.
	again, err := cli.AggregateFold(pres, filter.AggSum, filter.AggregateOptions{CheckPoint: point})
	if err != nil {
		t.Fatal(err)
	}
	if !fx.r.Equal(again.Sum, want) {
		t.Fatal("second fold after failover != oracle")
	}
}

// slowAggConn delays aggregate frames past the hedge trigger, so the
// frame is duplicated onto the sibling and both replicas answer.
type slowAggConn struct {
	cluster.Conn
	d time.Duration
}

func (c *slowAggConn) AggregateBatch(req filter.AggregateRequest) (filter.AggregateReply, error) {
	time.Sleep(c.d)
	return c.Conn.AggregateBatch(req)
}

// TestAggregateHedgeDuplicateFrames: with hedging on, a slow replica
// causes the SAME aggregate frame to run on both replicas. Folds are
// pure functions of immutable shares, so duplicated frames must change
// nothing: every round returns the oracle value.
func TestAggregateHedgeDuplicateFrames(t *testing.T) {
	fx := xmarkFixture(t, 0.02, 7)
	sf := filter.NewServerFilter(fx.st, fx.r, 1024)
	lo, hi, err := fx.st.MinMaxPre()
	if err != nil {
		t.Fatal(err)
	}
	cf, err := cluster.NewWith([]cluster.Shard{{
		Range: cluster.Range{Lo: lo, Hi: hi},
		Replicas: []cluster.Replica{
			{Addr: "slow", Conn: &slowAggConn{Conn: sf, d: 20 * time.Millisecond}},
			{Addr: "fast", Conn: sf},
		},
	}}, cluster.Options{Hedge: true, HedgeAfter: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	cli := filter.NewClient(cf, fx.scheme)
	pres := fx.itemPres("item")
	point := fx.mapVal(t, "item")
	want := aggregateOracle(t, fx, pres)
	// Several rounds so the round-robin starts on the slow replica at
	// least once and the hedge duplicates the frame.
	for round := 0; round < 4; round++ {
		agg, err := cli.AggregateFold(pres, filter.AggSum, filter.AggregateOptions{CheckPoint: point})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !fx.r.Equal(agg.Sum, want) || agg.Count != int64(len(pres)) {
			t.Fatalf("round %d: hedged fold diverged from oracle", round)
		}
	}
	if cf.Hedges() == 0 {
		t.Fatal("slow replica never triggered a hedge")
	}
}
