package cluster

import (
	"sort"
	"sync"
	"time"
)

// Hedged-read tuning: a frame is duplicated on a second replica once it
// outlives the hedgeQuantile of the shard's recent successful call
// latencies. The floor keeps in-process and same-host deployments (where
// the whole distribution sits at microseconds) from hedging every call,
// and the sample minimum keeps cold shards from hedging on noise.
const (
	hedgeQuantile   = 0.9
	minHedgeDelay   = time.Millisecond
	minHedgeSamples = 16
	latWindowSize   = 64
)

// latWindow is a fixed-size ring of recent call latencies, from which
// the adaptive hedge trigger reads its percentile.
type latWindow struct {
	mu  sync.Mutex
	buf [latWindowSize]time.Duration
	n   int // filled entries
	idx int // next write position
}

func (w *latWindow) add(d time.Duration) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf[w.idx] = d
	w.idx = (w.idx + 1) % len(w.buf)
	if w.n < len(w.buf) {
		w.n++
	}
}

// quantile returns the q-quantile of the recorded latencies, or ok=false
// while fewer than minHedgeSamples calls have completed.
func (w *latWindow) quantile(q float64) (time.Duration, bool) {
	w.mu.Lock()
	samples := make([]time.Duration, w.n)
	copy(samples, w.buf[:w.n])
	w.mu.Unlock()
	if len(samples) < minHedgeSamples {
		return 0, false
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	i := int(q * float64(len(samples)-1))
	return samples[i], true
}
