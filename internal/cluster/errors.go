package cluster

import "fmt"

// ShardError wraps a failure of one shard with its identity, so an
// unreachable or misbehaving member of the cluster is named instead of
// surfacing as a raw transport or gob error.
type ShardError struct {
	Shard int    // index in manifest order
	Addr  string // dial address or local label
	Err   error
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("cluster: shard %d (%s): %v", e.Shard, e.Addr, e.Err)
}

func (e *ShardError) Unwrap() error { return e.Err }

// RangeError reports a pre that no shard's manifest range covers — a
// stale manifest or a query against the wrong cluster.
type RangeError struct {
	Pre    int64
	Lo, Hi int64 // the interval the manifest does cover
}

func (e *RangeError) Error() string {
	return fmt.Sprintf("cluster: no shard covers pre %d (manifest covers [%d, %d])", e.Pre, e.Lo, e.Hi)
}
