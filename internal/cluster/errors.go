package cluster

import (
	"errors"
	"fmt"
)

// ErrPendingMutation refuses a new mutation while an earlier batch is
// parked with unknown delivery (every replica of its shard was
// unreachable when it was sent). Accepting more writes would stack
// unacknowledged sequences; the caller repairs first — SyncReplicas
// (or the session's Resync) either delivers the parked batch or
// discovers it definitively lost.
var ErrPendingMutation = errors.New("cluster: a mutation batch is pending delivery; sync replicas before writing again")

// PartialMutationError reports a multi-shard mutation that committed on
// some shards but not all of them: the global pre numbering is torn
// across shards until the failed shards are repaired (SyncReplicas
// delivers parked batches) or the losing writer's view is refreshed.
// Callers must NOT re-plan against the torn state — plan reads span
// shards and would see an inconsistent document.
type PartialMutationError struct {
	Applied []int // shard indices whose slice of the plan committed
	Failed  []int // shard indices whose slice did not
	Err     error // the first per-shard failure
}

func (e *PartialMutationError) Error() string {
	return fmt.Sprintf("cluster: mutation committed on shards %v but not %v: %v", e.Applied, e.Failed, e.Err)
}

func (e *PartialMutationError) Unwrap() error { return e.Err }

// IsPartialMutation reports whether err is (or wraps) a torn
// multi-shard commit.
func IsPartialMutation(err error) bool {
	var pe *PartialMutationError
	return errors.As(err, &pe)
}

// ShardError wraps a failure of one shard with its identity, so an
// unreachable or misbehaving member of the cluster is named instead of
// surfacing as a raw transport or gob error.
type ShardError struct {
	Shard int    // index in manifest order
	Addr  string // dial address or local label
	Err   error
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("cluster: shard %d (%s): %v", e.Shard, e.Addr, e.Err)
}

func (e *ShardError) Unwrap() error { return e.Err }

// RangeError reports a pre that no shard's manifest range covers — a
// stale manifest or a query against the wrong cluster.
type RangeError struct {
	Pre    int64
	Lo, Hi int64 // the interval the manifest does cover
}

func (e *RangeError) Error() string {
	return fmt.Sprintf("cluster: no shard covers pre %d (manifest covers [%d, %d])", e.Pre, e.Lo, e.Hi)
}
