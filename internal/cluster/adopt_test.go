package cluster

import (
	"testing"

	"encshare/internal/filter"
)

// TestShardAtLogPosDisambiguates pins the recovering-replica adoption
// rule: a replica reports the range it holds AND the log position it
// stopped at, and the write history (backlog pre-batch ranges) names
// the one shard whose range at that position matches exactly. The
// scenario is the one an overlap heuristic gets wrong: after enough
// renumbering inserts, a stale replica's range overlaps its neighbor
// shard more than its own group.
func TestShardAtLogPosDisambiguates(t *testing.T) {
	// Two shards after six renumbering inserts into shard A: A grew
	// [1,26] → [1,32], B slid [27,30] → [33,36]. Each shard's backlog
	// records the range it held before each batch.
	a := &shardState{lastSeq: 6, seqOK: true}
	a.setRange(Range{Lo: 1, Hi: 32})
	b := &shardState{lastSeq: 6, seqOK: true}
	b.setRange(Range{Lo: 33, Hi: 36})
	for i := uint64(1); i <= 6; i++ {
		a.backlog = append(a.backlog, backlogEntry{
			b: filter.MutationBatch{Seq: i}, prev: Range{Lo: 1, Hi: int64(25 + i)}})
		b.backlog = append(b.backlog, backlogEntry{
			b: filter.MutationBatch{Seq: i}, prev: Range{Lo: int64(26 + i), Hi: int64(29 + i)}})
	}
	f := &Filter{shards: []*shardState{a, b}}

	// A replica of shard B that stopped at log position 0 reports B's
	// original range [27,30] — overlapping A's current range by four
	// rows and B's by none, so overlap-based adoption would join it to
	// A, where SyncReplicas would apply A's batches to B's rows. The
	// history match resolves it to B.
	if si, ok := f.shardAtLogPos(Range{Lo: 27, Hi: 30}, 0); !ok || si != 1 {
		t.Fatalf("stale B replica adopted into shard %d (ok=%v), want shard 1", si, ok)
	}
	// Mid-window and current positions resolve for both shards.
	if si, ok := f.shardAtLogPos(Range{Lo: 1, Hi: 29}, 3); !ok || si != 0 {
		t.Fatalf("A@3 adopted into shard %d (ok=%v), want shard 0", si, ok)
	}
	if si, ok := f.shardAtLogPos(Range{Lo: 33, Hi: 36}, 6); !ok || si != 1 {
		t.Fatalf("B@6 adopted into shard %d (ok=%v), want shard 1", si, ok)
	}
	// A position ahead of the log, or a range no shard held at the
	// claimed position, refuses rather than guesses.
	if si, ok := f.shardAtLogPos(Range{Lo: 27, Hi: 30}, 99); ok {
		t.Fatalf("future log position adopted into shard %d", si)
	}
	if si, ok := f.shardAtLogPos(Range{Lo: 2, Hi: 30}, 3); ok {
		t.Fatalf("unrecorded range adopted into shard %d", si)
	}
	// A position older than the retained window refuses: SyncReplicas
	// could not catch that replica up either.
	a2 := &shardState{lastSeq: 100, seqOK: true}
	a2.setRange(Range{Lo: 1, Hi: 126})
	a2.backlog = []backlogEntry{{b: filter.MutationBatch{Seq: 100}, prev: Range{Lo: 1, Hi: 125}}}
	f2 := &Filter{shards: []*shardState{a2}}
	if si, ok := f2.shardAtLogPos(Range{Lo: 1, Hi: 30}, 4); ok {
		t.Fatalf("out-of-window position adopted into shard %d", si)
	}
}
