package cluster

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func v2Manifest() *Manifest {
	return &Manifest{
		Version: 2,
		Default: "auction",
		Tenants: []TenantShards{
			{Name: "auction", Workers: 4, Cache: 2048, Shards: []ShardInfo{
				{DBs: []string{"a0.r0.db", "a0.r1.db"}, Addrs: []string{"h:1", "h:2"}, Lo: 1, Hi: 50},
				{DBs: []string{"a1.r0.db", "a1.r1.db"}, Addrs: []string{"h:3", "h:4"}, Lo: 51, Hi: 100},
			}},
			{Name: "books", Cache: 1024, Shards: []ShardInfo{
				{DBs: []string{"b0.r0.db", "b0.r1.db"}, Addrs: []string{"h:1", "h:2"}, Lo: 1, Hi: 30},
				{DBs: []string{"b1.r0.db", "b1.r1.db"}, Addrs: []string{"h:3", "h:4"}, Lo: 31, Hi: 61},
			}},
		},
	}
}

func TestManifestV2Valid(t *testing.T) {
	m := v2Manifest()
	if err := m.Validate(); err != nil {
		t.Fatalf("valid v2 manifest rejected: %v", err)
	}
	if got := m.DefaultTenant(); got != "auction" {
		t.Errorf("DefaultTenant = %q", got)
	}
	if got := len(m.TenantTable()); got != 2 {
		t.Errorf("TenantTable len = %d", got)
	}
}

// Overlapping replica *address* lists across tenants are the expected
// co-location deployment (one process serves shard i of every tenant);
// overlapping *db* lists are an error (a db file encodes one tenant's
// rows).
func TestManifestV2OverlapRules(t *testing.T) {
	m := v2Manifest() // addresses overlap across tenants already
	if err := m.Validate(); err != nil {
		t.Fatalf("address overlap across tenants must be allowed: %v", err)
	}
	m.Tenants[1].Shards[0].DBs[0] = "a0.r0.db" // books claims auction's file
	err := m.Validate()
	if err == nil || !strings.Contains(err.Error(), "a0.r0.db") {
		t.Fatalf("db overlap across tenants: got %v", err)
	}
	// The same file listed twice by ONE tenant (replica copies reuse a
	// path) stays legal.
	m = v2Manifest()
	m.Tenants[0].Shards[0].DBs = []string{"a0.r0.db", "a0.r0.db"}
	if err := m.Validate(); err != nil {
		t.Fatalf("intra-tenant db reuse rejected: %v", err)
	}
}

func TestManifestV2DuplicateTenantNames(t *testing.T) {
	m := v2Manifest()
	m.Tenants[1].Name = "auction"
	err := m.Validate()
	if err == nil || !strings.Contains(err.Error(), "duplicate tenant name") {
		t.Fatalf("duplicate names: got %v", err)
	}
}

func TestManifestV2EmptyTenantTable(t *testing.T) {
	m := &Manifest{Version: 2}
	err := m.Validate()
	if err == nil || !strings.Contains(err.Error(), "empty tenant table") {
		t.Fatalf("empty tenant table: got %v", err)
	}
}

func TestManifestV2Rules(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(*Manifest)
		want string
	}{
		{"unnamed tenant", func(m *Manifest) { m.Tenants[0].Name = "" }, "has no name"},
		{"misaligned shard slots", func(m *Manifest) { m.Tenants[1].Shards = m.Tenants[1].Shards[:1] }, "shard slots must align"},
		{"unknown default", func(m *Manifest) { m.Default = "nobody" }, "default tenant"},
		{"non-contiguous tenant ranges", func(m *Manifest) { m.Tenants[1].Shards[1].Lo = 40 }, "contiguous"},
		{"tenants plus top-level shards", func(m *Manifest) { m.Shards = []ShardInfo{{Lo: 1, Hi: 2}} }, "both tenants and top-level shards"},
	} {
		m := v2Manifest()
		tc.mut(m)
		err := m.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// TestManifestV1RoundTrip pins that pre-tenant manifests still load,
// validate, and rewrite byte-compatibly (no version or tenant fields
// leak into a v1 file).
func TestManifestV1RoundTrip(t *testing.T) {
	m := &Manifest{Shards: []ShardInfo{
		{DB: "s0.db", Addr: "h:1", Lo: 1, Hi: 10},
		{DB: "s1.db", Addr: "h:2", Lo: 11, Hi: 20},
	}}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "m.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("v1 round-trip changed the manifest:\n got %+v\nwant %+v", got, m)
	}
	if n := len(got.TenantTable()); n != 1 {
		t.Fatalf("v1 TenantTable len = %d", n)
	}
}

// TestManifestV1ToV2RoundTrip upgrades a v1 manifest to v2 and pins
// that the upgraded form survives a write/load cycle with the same
// tenant table and shard data.
func TestManifestV1ToV2RoundTrip(t *testing.T) {
	v1 := &Manifest{Shards: []ShardInfo{
		{DBs: []string{"s0.r0.db", "s0.r1.db"}, Addrs: []string{"h:1", "h:2"}, Lo: 1, Hi: 10},
		{DBs: []string{"s1.r0.db", "s1.r1.db"}, Addrs: []string{"h:3", "h:4"}, Lo: 11, Hi: 20},
	}}
	up := v1.Upgrade("auction")
	if err := up.Validate(); err != nil {
		t.Fatalf("upgraded manifest invalid: %v", err)
	}
	if up.DefaultTenant() != "auction" {
		t.Errorf("upgraded default = %q", up.DefaultTenant())
	}
	path := filepath.Join(t.TempDir(), "m2.json")
	if err := up.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, up) {
		t.Fatalf("v2 round-trip changed the manifest:\n got %+v\nwant %+v", got, up)
	}
	if !reflect.DeepEqual(got.TenantTable()[0].Shards, v1.Shards) {
		t.Fatalf("upgrade lost shard data")
	}
	// Upgrading an already-v2 manifest is the identity.
	if again := got.Upgrade("other"); !reflect.DeepEqual(again, got) {
		t.Fatalf("Upgrade on v2 manifest not identity")
	}
}

func TestManifestV2RoundTrip(t *testing.T) {
	m := v2Manifest()
	path := filepath.Join(t.TempDir(), "m.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("v2 round-trip changed the manifest:\n got %+v\nwant %+v", got, m)
	}
}
