package cluster_test

import (
	"bytes"
	"math/rand"
	"testing"

	"encshare/internal/cluster"
	"encshare/internal/minisql"
	"encshare/internal/store"
)

// randomStore builds a store of n rows with random share blobs — the
// partition properties depend only on the pre axis, so no encoder run
// is needed and sizes can range freely.
func randomStore(t *testing.T, rng *rand.Rand, n int) *store.Store {
	t.Helper()
	dsn := minisql.FreshDSN()
	st, err := store.Open(dsn)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Init(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		st.Close()
		minisql.Drop(dsn)
	})
	for pre := int64(1); pre <= int64(n); pre++ {
		poly := make([]byte, 1+rng.Intn(40))
		rng.Read(poly)
		if err := st.InsertNode(store.NodeRow{
			Pre:    pre,
			Post:   rng.Int63n(int64(n) * 2),
			Parent: rng.Int63n(pre), // any smaller pre (or 0): enough for range scans
			Poly:   poly,
		}); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func equalRows(a, b store.NodeRow) bool {
	return a.Pre == b.Pre && a.Post == b.Post && a.Parent == b.Parent && bytes.Equal(a.Poly, b.Poly)
}

// TestPartitionSplitProperty is the property-style partition test: for
// random store sizes and shard counts, the PartitionEven ranges are
// contiguous, disjoint, and cover the full pre interval, and
// re-concatenating the SplitStore shards' dumps (each round-tripped
// through Dump/Load like a real shard file) reproduces the original
// store row-for-row, byte-for-byte.
func TestPartitionSplitProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20260730))
	for iter := 0; iter < 12; iter++ {
		n := 1 + rng.Intn(400)
		shards := 1 + rng.Intn(8)
		if shards > n {
			shards = n
		}
		st := randomStore(t, rng, n)
		lo, hi, err := st.MinMaxPre()
		if err != nil {
			t.Fatal(err)
		}

		ranges, err := cluster.PartitionEven(lo, hi, shards)
		if err != nil {
			t.Fatalf("n=%d shards=%d: %v", n, shards, err)
		}
		// Contiguous, disjoint, covering: each range starts right after
		// its predecessor ends, the first starts at lo, the last ends at
		// hi, and no range is empty.
		next := lo
		for ri, r := range ranges {
			if r.Lo != next {
				t.Fatalf("n=%d shards=%d: range %d starts at %d, want %d", n, shards, ri, r.Lo, next)
			}
			if r.Hi < r.Lo {
				t.Fatalf("n=%d shards=%d: range %d is empty [%d, %d]", n, shards, ri, r.Lo, r.Hi)
			}
			next = r.Hi + 1
		}
		if next != hi+1 {
			t.Fatalf("n=%d shards=%d: ranges end at %d, want %d", n, shards, next-1, hi)
		}

		stores, cleanup, err := cluster.SplitStore(st, ranges)
		if err != nil {
			cleanup()
			t.Fatal(err)
		}

		// Round-trip every shard through its dump (as the CLI shard
		// files do) and re-concatenate in shard order.
		var rebuilt []store.NodeRow
		for si, shardSt := range stores {
			var dump bytes.Buffer
			if err := shardSt.Dump(&dump); err != nil {
				cleanup()
				t.Fatal(err)
			}
			dsn := minisql.FreshDSN()
			loaded, err := store.Open(dsn)
			if err != nil {
				cleanup()
				t.Fatal(err)
			}
			if err := loaded.Load(&dump); err != nil {
				cleanup()
				t.Fatal(err)
			}
			slo, shi, err := loaded.MinMaxPre()
			if err != nil {
				cleanup()
				t.Fatal(err)
			}
			if slo < ranges[si].Lo || shi > ranges[si].Hi {
				t.Fatalf("shard %d holds pres [%d, %d] outside its range [%d, %d]",
					si, slo, shi, ranges[si].Lo, ranges[si].Hi)
			}
			rows, err := loaded.Range(ranges[si].Lo, ranges[si].Hi)
			if err != nil {
				cleanup()
				t.Fatal(err)
			}
			rebuilt = append(rebuilt, rows...)
			loaded.Close()
			minisql.Drop(dsn)
		}
		cleanup()

		want, err := st.Range(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		if len(rebuilt) != len(want) {
			t.Fatalf("n=%d shards=%d: re-concatenated %d rows, want %d", n, shards, len(rebuilt), len(want))
		}
		for i := range want {
			if !equalRows(rebuilt[i], want[i]) {
				t.Fatalf("n=%d shards=%d: row %d diverges after split+dump+load: %+v != %+v",
					n, shards, i, rebuilt[i], want[i])
			}
		}
	}
}
