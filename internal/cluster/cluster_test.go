package cluster_test

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"encshare/internal/cluster"
	"encshare/internal/encoder"
	"encshare/internal/engine"
	"encshare/internal/filter"
	"encshare/internal/gf"
	"encshare/internal/mapping"
	"encshare/internal/minisql"
	"encshare/internal/prg"
	"encshare/internal/ring"
	"encshare/internal/rmi"
	"encshare/internal/secshare"
	"encshare/internal/store"
	"encshare/internal/xmark"
	"encshare/internal/xmldoc"
	"encshare/internal/xpath"
)

// fixture is one encrypted document with a single-server path and the
// machinery to cut it into clusters of any width.
type fixture struct {
	doc    *xmldoc.Doc
	m      *mapping.Map
	r      *ring.Ring
	scheme *secshare.Scheme
	st     *store.Store
}

func buildFixture(t testing.TB, doc *xmldoc.Doc) *fixture {
	t.Helper()
	f := gf.MustNew(251, 1)
	m, err := mapping.Generate(f, doc.Names())
	if err != nil {
		t.Fatal(err)
	}
	r := ring.MustNew(f)
	scheme := secshare.New(r, prg.New([]byte("cluster-test")))
	dsn := minisql.FreshDSN()
	st, err := store.Open(dsn)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Init(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		st.Close()
		minisql.Drop(dsn)
	})
	if _, err := encoder.EncodeDoc(doc, encoder.Options{Map: m, Scheme: scheme}, st); err != nil {
		t.Fatal(err)
	}
	return &fixture{doc: doc, m: m, r: r, scheme: scheme, st: st}
}

func xmarkFixture(t testing.TB, scale float64, seed int64) *fixture {
	t.Helper()
	return buildFixture(t, xmark.Generate(xmark.Config{Scale: scale, Seed: seed}))
}

// clusterOf cuts the fixture's table into n shards, serves each over an
// in-process rmi pipe (real frames, real pagination), and assembles the
// cluster filter over counting Remote proxies.
func (fx *fixture) clusterOf(t testing.TB, n int) *cluster.Filter {
	t.Helper()
	lo, hi, err := fx.st.MinMaxPre()
	if err != nil {
		t.Fatal(err)
	}
	ranges, err := cluster.PartitionEven(lo, hi, n)
	if err != nil {
		t.Fatal(err)
	}
	stores, cleanup, err := cluster.SplitStore(fx.st, ranges)
	if err != nil {
		cleanup()
		t.Fatal(err)
	}
	t.Cleanup(cleanup)
	shards := make([]cluster.Shard, n)
	for i, sst := range stores {
		srv := rmi.NewServer()
		filter.RegisterServer(srv, filter.NewServerFilter(sst, fx.r, 1024))
		cli := rmi.Pipe(srv)
		t.Cleanup(func() { cli.Close() })
		shards[i] = cluster.Shard{
			Addr:  fmt.Sprintf("shard%d", i),
			Range: ranges[i],
			Conn:  filter.NewRemote(cli),
		}
	}
	cf, err := cluster.New(shards)
	if err != nil {
		t.Fatal(err)
	}
	return cf
}

// singleRemote serves the whole table over one rmi pipe — the reference
// path for exchange-count comparisons.
func (fx *fixture) singleRemote(t testing.TB) *filter.Remote {
	t.Helper()
	srv := rmi.NewServer()
	filter.RegisterServer(srv, filter.NewServerFilter(fx.st, fx.r, 1024))
	cli := rmi.Pipe(srv)
	t.Cleanup(func() { cli.Close() })
	return filter.NewRemote(cli)
}

// parityQueries is the XMark parity suite: the chain, strictness, and
// engine-suite queries the repo's other parity tests use.
var parityQueries = []string{
	"/site",
	"/site/regions/europe/item",
	"/site/regions/europe/item/description",
	"/site//europe/item",
	"/site//europe//item",
	"/site/*/person//city",
	"/*/*/open_auction/bidder/date",
	"//bidder/date",
	"/site/regions/../people/person",
}

func equalPres(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestClusterParityXMark is the tentpole's acceptance test: on XMark
// 0.1, a 3-shard cluster must return result sets AND client-side work
// counters identical to the single-server path, for both engines, both
// tests, batched and per-call.
func TestClusterParityXMark(t *testing.T) {
	fx := xmarkFixture(t, 0.1, 42)
	cf := fx.clusterOf(t, 3)

	singleCli := filter.NewClient(filter.NewServerFilter(fx.st, fx.r, 1024), fx.scheme)
	clusterCli := filter.NewClient(cf, fx.scheme)

	engines := []struct {
		name            string
		single, cluster engine.Engine
	}{
		{"simple", engine.NewSimple(singleCli, fx.m), engine.NewSimple(clusterCli, fx.m)},
		{"advanced", engine.NewAdvanced(singleCli, fx.m), engine.NewAdvanced(clusterCli, fx.m)},
		{"simple-seq", engine.NewSimpleSequential(singleCli, fx.m), engine.NewSimpleSequential(clusterCli, fx.m)},
		{"advanced-seq", engine.NewAdvancedSequential(singleCli, fx.m), engine.NewAdvancedSequential(clusterCli, fx.m)},
	}
	for _, qs := range parityQueries {
		q := xpath.MustParse(qs)
		for _, test := range []engine.Test{engine.Containment, engine.Equality} {
			for _, e := range engines {
				sr, err := e.single.Run(q, test)
				if err != nil {
					t.Fatalf("%s/%s single %s: %v", e.name, test, qs, err)
				}
				cr, err := e.cluster.Run(q, test)
				if err != nil {
					t.Fatalf("%s/%s cluster %s: %v", e.name, test, qs, err)
				}
				if !equalPres(sr.Pres, cr.Pres) {
					t.Errorf("%s/%s on %s: cluster %d results != single %d",
						e.name, test, qs, len(cr.Pres), len(sr.Pres))
				}
				if sr.Stats.Evaluations != cr.Stats.Evaluations ||
					sr.Stats.Reconstructions != cr.Stats.Reconstructions ||
					sr.Stats.NodesFetched != cr.Stats.NodesFetched ||
					sr.Stats.NodesVisited != cr.Stats.NodesVisited {
					t.Errorf("%s/%s on %s: cluster work %+v != single %+v",
						e.name, test, qs, cr.Stats, sr.Stats)
				}
			}
		}
	}
}

// TestClusterParityOracle: on a small document the cluster must also
// match the plaintext oracle directly, shard counts 1..4.
func TestClusterParityOracle(t *testing.T) {
	doc, err := xmldoc.ParseString(`<site>
	  <regions><europe><item><name/></item><item/></europe><asia><item/></asia></regions>
	  <people><person><name/><address><city/></address></person><person/></people>
	  <open_auctions><open_auction><bidder><date/></bidder><bidder><date/></bidder></open_auction></open_auctions>
	</site>`)
	if err != nil {
		t.Fatal(err)
	}
	fx := buildFixture(t, doc)
	oracle := xpath.NewOracle(doc)
	for _, n := range []int{1, 2, 3, 4} {
		cf := fx.clusterOf(t, n)
		cli := filter.NewClient(cf, fx.scheme)
		engines := []engine.Engine{engine.NewSimple(cli, fx.m), engine.NewAdvanced(cli, fx.m)}
		for _, qs := range []string{"/site", "//item", "//person//city", "/site/*/person", "//bidder/date", "//*", "/site/regions/../people"} {
			q := xpath.MustParse(qs)
			for _, test := range []engine.Test{engine.Containment, engine.Equality} {
				mode := xpath.MatchContain
				if test == engine.Equality {
					mode = xpath.MatchEqual
				}
				want := xpath.Pres(oracle.Eval(q, mode))
				for _, e := range engines {
					got, err := e.Run(q, test)
					if err != nil {
						t.Fatalf("shards=%d %s/%s %s: %v", n, e.Name(), test, qs, err)
					}
					if !equalPres(got.Pres, want) {
						t.Errorf("shards=%d %s/%s on %s: got %v, want %v", n, e.Name(), test, qs, got.Pres, want)
					}
				}
			}
		}
	}
}

// TestClusterMemberOrder: scatter/gather must hand back batch replies in
// request order even when members arrive shard-interleaved and shuffled.
func TestClusterMemberOrder(t *testing.T) {
	fx := xmarkFixture(t, 0.02, 7)
	cf := fx.clusterOf(t, 3)
	direct := filter.NewServerFilter(fx.st, fx.r, 1024)

	count, err := fx.st.Count()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	pres := rng.Perm(int(count))
	var reqs []filter.EvalRequest
	var nodePres []int64
	for _, p := range pres {
		pre := int64(p + 1)
		nodePres = append(nodePres, pre)
		reqs = append(reqs, filter.EvalRequest{Pre: pre, Point: gf.Elem(uint64(pre)%250 + 1)})
	}

	got, err := cf.EvalBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := direct.EvalBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("EvalBatch member %d (pre=%d): cluster %+v != single %+v", i, reqs[i].Pre, got[i], want[i])
		}
	}

	gotKids, err := cf.ChildrenBatch(nodePres)
	if err != nil {
		t.Fatal(err)
	}
	wantKids, err := direct.ChildrenBatch(nodePres)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantKids {
		if len(gotKids[i]) != len(wantKids[i]) {
			t.Fatalf("ChildrenBatch member %d (pre=%d): %d kids != %d", i, nodePres[i], len(gotKids[i]), len(wantKids[i]))
		}
		for j := range wantKids[i] {
			if gotKids[i][j] != wantKids[i][j] {
				t.Fatalf("ChildrenBatch member %d child %d: %+v != %+v", i, j, gotKids[i][j], wantKids[i][j])
			}
		}
	}

	gotBundles, err := cf.NodePolysBatch(nodePres)
	if err != nil {
		t.Fatal(err)
	}
	wantBundles, err := direct.NodePolysBatch(nodePres)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantBundles {
		g, w := gotBundles[i], wantBundles[i]
		if g.Err != "" || w.Err != "" {
			t.Fatalf("bundle %d errored: cluster %q, single %q", i, g.Err, w.Err)
		}
		if g.Node.Pre != w.Node.Pre || string(g.Node.Poly) != string(w.Node.Poly) {
			t.Fatalf("bundle %d node mismatch", i)
		}
		if len(g.Children) != len(w.Children) {
			t.Fatalf("bundle %d (pre=%d): %d children != %d", i, nodePres[i], len(g.Children), len(w.Children))
		}
		for j := range w.Children {
			if g.Children[j].Pre != w.Children[j].Pre || string(g.Children[j].Poly) != string(w.Children[j].Poly) {
				t.Fatalf("bundle %d child %d mismatch (boundary-crossing children must merge in pre order)", i, j)
			}
		}
	}

	// Descendant spans, shuffled.
	var spans []filter.Span
	for _, pre := range nodePres[:200] {
		m, err := direct.Node(pre)
		if err != nil {
			t.Fatal(err)
		}
		spans = append(spans, filter.Span{Pre: m.Pre, Post: m.Post})
	}
	gotDesc, err := cf.DescendantsBatch(spans)
	if err != nil {
		t.Fatal(err)
	}
	wantDesc, err := direct.DescendantsBatch(spans)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantDesc {
		if len(gotDesc[i]) != len(wantDesc[i]) {
			t.Fatalf("DescendantsBatch member %d: %d nodes != %d", i, len(gotDesc[i]), len(wantDesc[i]))
		}
		for j := range wantDesc[i] {
			if gotDesc[i][j] != wantDesc[i][j] {
				t.Fatalf("DescendantsBatch member %d row %d out of order", i, j)
			}
		}
	}
}

// TestOneShardDegenerates: a 1-shard cluster must cost exactly the
// single-server exchange counts for batched queries.
func TestOneShardDegenerates(t *testing.T) {
	fx := xmarkFixture(t, 0.02, 7)
	cf := fx.clusterOf(t, 1)
	rem := fx.singleRemote(t)

	clusterCli := filter.NewClient(cf, fx.scheme)
	singleCli := filter.NewClient(rem, fx.scheme)

	for _, qs := range []string{"/site//europe/item", "//bidder/date", "/site/*/person//city"} {
		q := xpath.MustParse(qs)
		for _, test := range []engine.Test{engine.Containment, engine.Equality} {
			beforeC := cf.RoundTrips()
			beforeS := rem.RoundTrips()
			cr, err := engine.NewSimple(clusterCli, fx.m).Run(q, test)
			if err != nil {
				t.Fatal(err)
			}
			sr, err := engine.NewSimple(singleCli, fx.m).Run(q, test)
			if err != nil {
				t.Fatal(err)
			}
			if !equalPres(cr.Pres, sr.Pres) {
				t.Fatalf("%s/%s: results diverge", qs, test)
			}
			cRtts := cf.RoundTrips() - beforeC
			sRtts := rem.RoundTrips() - beforeS
			if cRtts != sRtts {
				t.Errorf("%s/%s: 1-shard cluster cost %d exchanges, single server %d", qs, test, cRtts, sRtts)
			}
		}
	}
}

// TestPerShardExchangeBound pins the acceptance property: a batched
// engine step costs at most one evaluation exchange per shard.
func TestPerShardExchangeBound(t *testing.T) {
	fx := xmarkFixture(t, 0.02, 7)
	cf := fx.clusterOf(t, 3)
	cli := filter.NewClient(cf, fx.scheme)
	eng := engine.NewSimple(cli, fx.m)
	for _, qs := range parityQueries {
		q := xpath.MustParse(qs)
		var steps int64
		for _, s := range q.Steps {
			if s.IsNameTest() {
				steps++
			}
		}
		before := cf.ShardEvalRoundTrips()
		if _, err := eng.Run(q, engine.Containment); err != nil {
			t.Fatalf("%s: %v", qs, err)
		}
		after := cf.ShardEvalRoundTrips()
		for si := range after {
			if d := after[si] - before[si]; d > steps {
				t.Errorf("%s: shard %d saw %d evaluation exchanges for %d name steps", qs, si, d, steps)
			}
		}
	}
}

// TestRangeError: a pre outside every shard range must surface as a
// typed RangeError, not a raw store error.
func TestRangeError(t *testing.T) {
	fx := xmarkFixture(t, 0.02, 7)
	cf := fx.clusterOf(t, 2)
	_, err := cf.Node(999999)
	var re *cluster.RangeError
	if !errors.As(err, &re) {
		t.Fatalf("out-of-range pre gave %v, want RangeError", err)
	}
	if re.Pre != 999999 {
		t.Fatalf("RangeError.Pre = %d", re.Pre)
	}
	if _, err := cf.EvalBatch([]filter.EvalRequest{{Pre: -5, Point: 1}}); !errors.As(err, &re) {
		t.Fatalf("batch out-of-range gave %v, want RangeError", err)
	}
}

// TestShardErrorIdentifiesShard: a failing shard is named by index and
// address.
func TestShardErrorIdentifiesShard(t *testing.T) {
	_, err := cluster.Dial([]string{"127.0.0.1:1"})
	var se *cluster.ShardError
	if !errors.As(err, &se) {
		t.Fatalf("dead addr gave %v, want ShardError", err)
	}
	if se.Shard != 0 || se.Addr != "127.0.0.1:1" {
		t.Fatalf("ShardError identifies %d/%s", se.Shard, se.Addr)
	}
	if !strings.Contains(err.Error(), "shard 0 (127.0.0.1:1)") {
		t.Fatalf("error text %q does not name the shard", err)
	}
}

// TestNewValidatesTiling: gaps and overlaps in shard ranges are rejected
// up front.
func TestNewValidatesTiling(t *testing.T) {
	fx := xmarkFixture(t, 0.02, 7)
	sf := filter.NewServerFilter(fx.st, fx.r, 0)
	mk := func(rs ...cluster.Range) []cluster.Shard {
		out := make([]cluster.Shard, len(rs))
		for i, r := range rs {
			out[i] = cluster.Shard{Addr: fmt.Sprintf("s%d", i), Range: r, Conn: sf}
		}
		return out
	}
	if _, err := cluster.New(nil); err == nil {
		t.Fatal("empty cluster accepted")
	}
	if _, err := cluster.New(mk(cluster.Range{Lo: 1, Hi: 10}, cluster.Range{Lo: 12, Hi: 20})); err == nil {
		t.Fatal("gapped ranges accepted")
	}
	if _, err := cluster.New(mk(cluster.Range{Lo: 1, Hi: 10}, cluster.Range{Lo: 10, Hi: 20})); err == nil {
		t.Fatal("overlapping ranges accepted")
	}
	if _, err := cluster.New(mk(cluster.Range{Lo: 11, Hi: 20}, cluster.Range{Lo: 1, Hi: 10})); err != nil {
		t.Fatalf("unsorted but tiling ranges rejected: %v", err)
	}
}

// TestPartitionEven: ranges tile exactly with near-equal sizes.
func TestPartitionEven(t *testing.T) {
	for _, tc := range []struct {
		lo, hi int64
		n      int
	}{
		{1, 10, 1}, {1, 10, 3}, {1, 10, 10}, {5, 104, 7}, {1, 2, 2},
	} {
		rs, err := cluster.PartitionEven(tc.lo, tc.hi, tc.n)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if len(rs) != tc.n {
			t.Fatalf("%+v: %d ranges", tc, len(rs))
		}
		next := tc.lo
		minSize, maxSize := int64(1<<62), int64(0)
		for _, r := range rs {
			if r.Lo != next {
				t.Fatalf("%+v: range starts at %d, want %d", tc, r.Lo, next)
			}
			size := r.Hi - r.Lo + 1
			if size < minSize {
				minSize = size
			}
			if size > maxSize {
				maxSize = size
			}
			next = r.Hi + 1
		}
		if next != tc.hi+1 {
			t.Fatalf("%+v: ranges end at %d, want %d", tc, next-1, tc.hi)
		}
		if maxSize-minSize > 1 {
			t.Fatalf("%+v: shard sizes differ by %d", tc, maxSize-minSize)
		}
	}
	if _, err := cluster.PartitionEven(1, 3, 5); err == nil {
		t.Fatal("more shards than nodes accepted")
	}
	if _, err := cluster.PartitionEven(1, 3, 0); err == nil {
		t.Fatal("zero shards accepted")
	}
}

// TestManifestRoundTrip: write, load, validate.
func TestManifestRoundTrip(t *testing.T) {
	m := &cluster.Manifest{Shards: []cluster.ShardInfo{
		{Addr: "127.0.0.1:7083", DB: "a.shard0.db", Lo: 1, Hi: 100},
		{Addr: "127.0.0.1:7084", DB: "a.shard1.db", Lo: 101, Hi: 200},
	}}
	path := t.TempDir() + "/cluster.json"
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := cluster.LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Shards) != 2 || got.Shards[1].DB != "a.shard1.db" || got.Shards[1].Lo != 101 {
		t.Fatalf("round-trip lost data: %+v", got)
	}
	bad := &cluster.Manifest{Shards: []cluster.ShardInfo{{Lo: 1, Hi: 10}, {Lo: 20, Hi: 30}}}
	badPath := t.TempDir() + "/bad.json"
	if err := bad.WriteFile(badPath); err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.LoadManifest(badPath); err == nil {
		t.Fatal("gapped manifest accepted")
	}
}

// TestManifestReplicas: replica lists round-trip, the legacy singular
// fields still describe a one-replica shard, and mixed or mismatched
// forms are rejected.
func TestManifestReplicas(t *testing.T) {
	m := &cluster.Manifest{Shards: []cluster.ShardInfo{
		{DBs: []string{"a.shard0.r0.db", "a.shard0.r1.db"}, Addrs: []string{":7083", ":7183"}, Lo: 1, Hi: 100},
		{DB: "a.shard1.db", Addr: ":7084", Lo: 101, Hi: 200},
	}}
	path := t.TempDir() + "/replicated.json"
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := cluster.LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Shards[0].Replicas() != 2 || got.Shards[1].Replicas() != 1 {
		t.Fatalf("replica counts = %d/%d, want 2/1", got.Shards[0].Replicas(), got.Shards[1].Replicas())
	}
	if dbs := got.Shards[0].ReplicaDBs(); len(dbs) != 2 || dbs[1] != "a.shard0.r1.db" {
		t.Fatalf("shard 0 replica dbs = %v", dbs)
	}
	if dbs := got.Shards[1].ReplicaDBs(); len(dbs) != 1 || dbs[0] != "a.shard1.db" {
		t.Fatalf("legacy shard dbs = %v", dbs)
	}
	if addrs := got.Shards[1].ReplicaAddrs(); len(addrs) != 1 || addrs[0] != ":7084" {
		t.Fatalf("legacy shard addrs = %v", addrs)
	}

	mixed := &cluster.Manifest{Shards: []cluster.ShardInfo{
		{DB: "x.db", DBs: []string{"y.db"}, Lo: 1, Hi: 10},
	}}
	if err := mixed.Validate(); err == nil {
		t.Fatal("manifest with both db and dbs accepted")
	}
	mismatched := &cluster.Manifest{Shards: []cluster.ShardInfo{
		{DBs: []string{"a.db", "b.db"}, Addrs: []string{":1"}, Lo: 1, Hi: 10},
	}}
	if err := mismatched.Validate(); err == nil {
		t.Fatal("manifest with 2 dbs but 1 addr accepted")
	}
}

// TestClusterServerStats checks the stats counter plumbing through
// scatter/gather: the aggregated cluster stats equal the sum of real
// server-side work, and a query actually moves them.
func TestClusterServerStats(t *testing.T) {
	fx := xmarkFixture(t, 0.01, 7)
	cf := fx.clusterOf(t, 3)
	cli := filter.NewClient(cf, fx.scheme)
	eng := engine.NewAdvanced(cli, fx.m)

	before, err := cf.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(xpath.MustParse("/site//europe/item"), engine.Containment); err != nil {
		t.Fatal(err)
	}
	after, err := cf.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	if after.Evals <= before.Evals {
		t.Fatalf("cluster Evals did not advance: %+v -> %+v", before, after)
	}
	if after.Decodes == 0 || after.CacheMisses == 0 {
		t.Fatalf("cluster decode/cache counters empty: %+v", after)
	}
	// Hits+misses must cover every cache probe that preceded a decode:
	// decodes happen only on misses.
	if after.Decodes > after.CacheMisses {
		t.Fatalf("more decodes than cache misses: %+v", after)
	}
}
