package cluster

import (
	"encshare/internal/minisql"
	"encshare/internal/store"
)

// SplitStore copies the rows of src into one fresh store per range — the
// in-process shard builder used by tests, the experiments, and the
// examples (the CLI path goes through Database.DumpShard instead, which
// writes loadable files). cleanup releases every shard store; it is
// returned non-nil even on error, covering the stores built so far.
func SplitStore(src *store.Store, ranges []Range) (shards []*store.Store, cleanup func(), err error) {
	var dsns []string
	cleanup = func() {
		for i, st := range shards {
			st.Close()
			minisql.Drop(dsns[i])
		}
	}
	for _, r := range ranges {
		st, dsn, err := src.CopyRange(r.Lo, r.Hi)
		if err != nil {
			return shards, cleanup, err
		}
		shards = append(shards, st)
		dsns = append(dsns, dsn)
	}
	return shards, cleanup, nil
}
