package xmark

import (
	"bytes"
	"io"
	"testing"

	"encshare/internal/dtd"
	"encshare/internal/xmldoc"
)

func TestDeterminism(t *testing.T) {
	var a, b bytes.Buffer
	if _, err := WriteXML(&a, Config{Scale: 0.05, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteXML(&b, Config{Scale: 0.05, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same (scale, seed) produced different documents")
	}
	var c bytes.Buffer
	if _, err := WriteXML(&c, Config{Scale: 0.05, Seed: 8}); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("different seeds produced identical documents")
	}
}

func TestSizeScalesLinearly(t *testing.T) {
	size := func(scale float64) int64 {
		n, err := WriteXML(io.Discard, Config{Scale: scale, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	s1, s2, s4 := size(0.1), size(0.2), size(0.4)
	if ratio := float64(s2) / float64(s1); ratio < 1.6 || ratio > 2.4 {
		t.Fatalf("doubling scale changed size by %.2fx (s1=%d s2=%d)", ratio, s1, s2)
	}
	if ratio := float64(s4) / float64(s2); ratio < 1.6 || ratio > 2.4 {
		t.Fatalf("doubling scale changed size by %.2fx (s2=%d s4=%d)", ratio, s2, s4)
	}
}

func TestScaleOneAboutOneMB(t *testing.T) {
	n, err := WriteXML(io.Discard, Config{Scale: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if n < 500_000 || n > 2_000_000 {
		t.Fatalf("scale 1.0 produced %d bytes, want ~1 MB", n)
	}
}

// TestConformsToDTD: every generated element and its children must be
// permitted by the Appendix A DTD.
func TestConformsToDTD(t *testing.T) {
	d := Generate(Config{Scale: 0.2, Seed: 3})
	dt := dtd.MustXMark()
	if d.Root.Name != "site" {
		t.Fatalf("root = %s", d.Root.Name)
	}
	d.Walk(func(n *xmldoc.Node) bool {
		decl, ok := dt.Lookup(n.Name)
		if !ok {
			t.Fatalf("element %q not in DTD", n.Name)
		}
		allowed := map[string]bool{}
		for _, c := range decl.Children() {
			allowed[c] = true
		}
		for _, c := range n.Children {
			if !allowed[c.Name] {
				t.Fatalf("element %q has child %q not allowed by DTD model %q",
					n.Name, c.Name, decl.Model)
			}
		}
		return true
	})
}

// TestQueryTargetsPresent: the paper's Table 1 and Table 2 queries must
// have non-empty targets in any generated document.
func TestQueryTargetsPresent(t *testing.T) {
	d := Generate(Config{Scale: 0.1, Seed: 1})
	counts := map[string]int{}
	d.Walk(func(n *xmldoc.Node) bool {
		counts[n.Name]++
		return true
	})
	for _, name := range []string{
		"site", "regions", "europe", "item", "description", "parlist",
		"listitem", "text", "keyword", "person", "city", "open_auction",
		"bidder", "date",
	} {
		if counts[name] == 0 {
			t.Errorf("generated document has no %q elements", name)
		}
	}
	// All six regions always present.
	for _, r := range regionNames {
		if counts[r] != 1 {
			t.Errorf("region %s count = %d", r, counts[r])
		}
	}
}

func TestParsesBackCleanly(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteXML(&buf, Config{Scale: 0.05, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	d, err := xmldoc.Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	d2 := Generate(Config{Scale: 0.05, Seed: 2})
	if d.Count != d2.Count {
		t.Fatalf("parsed count %d != generated count %d", d.Count, d2.Count)
	}
}

func TestTinyScaleStillComplete(t *testing.T) {
	d := Generate(Config{Scale: 0, Seed: 1}) // clamped, must not be empty
	if d.Count < 50 {
		t.Fatalf("tiny doc has only %d nodes", d.Count)
	}
}

func TestDistinctTagUniverseFitsF83(t *testing.T) {
	d := Generate(Config{Scale: 0.05, Seed: 9})
	if n := len(d.Names()); n > 82 {
		t.Fatalf("document uses %d distinct tags (> 82)", n)
	}
}

func BenchmarkGenerateScale01(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Generate(Config{Scale: 0.1, Seed: int64(i)})
	}
}

func BenchmarkWriteXMLScale1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		n, err := WriteXML(io.Discard, Config{Scale: 1, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(n)
	}
}
