// Package xmark generates deterministic auction-site documents following
// the XMark benchmark DTD reproduced in the paper's Appendix A. The
// paper's experiments (§6) all run against XMark data; the original xmlgen
// tool is not redistributable, so this generator synthesizes documents
// with the same element structure, with sizes scaling linearly in a scale
// factor (Scale 1.0 ≈ 1 MB of serialized XML).
//
// Generation is fully deterministic in (Scale, Seed): the same
// configuration always produces the same document, which keeps the
// experiment harness reproducible.
package xmark

import (
	"fmt"
	"io"
	"strings"

	"encshare/internal/prg"
	"encshare/internal/xmldoc"
)

// Config controls document generation.
type Config struct {
	// Scale stretches all entity counts linearly; 1.0 is roughly 1 MB of
	// XML text. Must be > 0.
	Scale float64
	// Seed selects the pseudorandom stream; equal seeds give equal
	// documents.
	Seed int64
}

// gen wraps the PRG stream with convenience draws.
type gen struct {
	s *prg.Stream
}

func (g *gen) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(g.s.Uniform(uint32(n)))
}

func (g *gen) pick(words []string) string { return words[g.intn(len(words))] }

// chance returns true with probability pct/100.
func (g *gen) chance(pct int) bool { return g.intn(100) < pct }

func (g *gen) words(n int) string {
	parts := make([]string, n)
	for i := range parts {
		w := g.pick(corpus)
		// Inflect a quarter of the words so the vocabulary approaches the
		// diversity of natural text (matters for the §4 trie statistics).
		if g.chance(25) {
			w += g.pick(suffixes)
		}
		parts[i] = w
	}
	return strings.Join(parts, " ")
}

// sentence sizes approximate real XMark text density (~55 bytes of XML
// per element node), which Fig. 4's output/input ratio depends on.
func (g *gen) sentence() string { return g.words(12 + g.intn(14)) }

func (g *gen) digits(n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteByte(byte('0' + g.intn(10)))
	}
	return sb.String()
}

func (g *gen) date() string {
	return fmt.Sprintf("%02d/%02d/%d", 1+g.intn(12), 1+g.intn(28), 1998+g.intn(4))
}

func (g *gen) money() string {
	return fmt.Sprintf("%d.%02d", 1+g.intn(500), g.intn(100))
}

// Generate builds the document tree. Counts scale linearly with
// cfg.Scale; a zero/negative scale is clamped to the smallest document
// that still contains every entity kind (so all of the paper's queries
// have non-empty targets).
func Generate(cfg Config) *xmldoc.Doc {
	scale := cfg.Scale
	if scale <= 0 {
		scale = 0.01
	}
	g := &gen{s: prg.New([]byte(fmt.Sprintf("xmark-%d", cfg.Seed))).Stream("gen", 0)}

	count := func(base float64) int {
		n := int(base*scale + 0.5)
		if n < 1 {
			n = 1
		}
		return n
	}

	nPersons := count(460)
	nItemsPerRegion := count(115)
	nOpen := count(210)
	nClosed := count(130)
	nCategories := count(85)

	root := el("site")
	root.Children = append(root.Children,
		g.regions(nItemsPerRegion),
		g.categories(nCategories),
		g.catgraph(nCategories),
		g.people(nPersons),
		g.openAuctions(nOpen, nPersons, nItemsPerRegion*6),
		g.closedAuctions(nClosed, nPersons, nItemsPerRegion*6),
	)
	d := &xmldoc.Doc{Root: root}
	d.Rebuild()
	return d
}

// WriteXML generates and serializes a document, returning the byte size.
func WriteXML(w io.Writer, cfg Config) (int64, error) {
	d := Generate(cfg)
	cw := &countingWriter{w: w}
	if err := d.WriteXML(cw); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

func el(name string, children ...*xmldoc.Node) *xmldoc.Node {
	return &xmldoc.Node{Name: name, Children: children}
}

func txt(name, text string) *xmldoc.Node {
	return &xmldoc.Node{Name: name, Text: text}
}

var regionNames = []string{"africa", "asia", "australia", "europe", "namerica", "samerica"}

func (g *gen) regions(itemsPerRegion int) *xmldoc.Node {
	regions := el("regions")
	for _, rn := range regionNames {
		region := el(rn)
		for i := 0; i < itemsPerRegion; i++ {
			region.Children = append(region.Children, g.item())
		}
		regions.Children = append(regions.Children, region)
	}
	return regions
}

// item (location, quantity, name, payment, description, shipping, incategory+, mailbox)
func (g *gen) item() *xmldoc.Node {
	item := el("item",
		txt("location", g.pick(countries)),
		txt("quantity", g.digits(1)),
		txt("name", g.words(2)),
		txt("payment", g.pick(payments)),
		g.itemDescription(),
		txt("shipping", g.pick(shippings)),
	)
	for i := 0; i <= g.intn(2); i++ {
		item.Children = append(item.Children, el("incategory"))
	}
	mailbox := el("mailbox")
	for i := 0; i < g.intn(3); i++ {
		mailbox.Children = append(mailbox.Children, el("mail",
			txt("from", g.personName()),
			txt("to", g.personName()),
			txt("date", g.date()),
			g.text(),
		))
	}
	item.Children = append(item.Children, mailbox)
	return item
}

// description (text | parlist); depth limits parlist recursion.
func (g *gen) description(depth int) *xmldoc.Node {
	if depth > 0 && g.chance(30) {
		return el("description", g.parlist(depth-1))
	}
	return el("description", g.text())
}

// itemDescription always carries the full parlist/listitem/text/keyword
// chain. The paper's Table 1 relies on every region item containing it
// ("it is a waste of effort to check whether a europe node contains an
// item, description, parlist, listitem, text and keyword node, because
// the DTD dictates it to be always the case", §6.2), which makes those
// chain queries the advanced engine's worst case.
func (g *gen) itemDescription() *xmldoc.Node {
	text := txt("text", g.sentence())
	text.Children = append(text.Children, txt("keyword", g.words(1)))
	for i := 0; i < g.intn(2); i++ {
		inner := g.pick([]string{"bold", "emph"})
		text.Children = append(text.Children, txt(inner, g.words(1)))
	}
	pl := el("parlist")
	pl.Children = append(pl.Children, el("listitem", text))
	for i := 0; i < g.intn(2); i++ {
		pl.Children = append(pl.Children, el("listitem", g.text()))
	}
	return el("description", pl)
}

// text (#PCDATA | bold | keyword | emph)*
func (g *gen) text() *xmldoc.Node {
	t := txt("text", g.sentence())
	for i := 0; i < g.intn(3); i++ {
		inner := g.pick([]string{"bold", "keyword", "emph"})
		t.Children = append(t.Children, txt(inner, g.words(1+g.intn(2))))
	}
	return t
}

// parlist (listitem)*; listitem (text | parlist)*
func (g *gen) parlist(depth int) *xmldoc.Node {
	pl := el("parlist")
	for i := 0; i < 1+g.intn(3); i++ {
		li := el("listitem")
		if depth > 0 && g.chance(25) {
			li.Children = append(li.Children, g.parlist(depth-1))
		} else {
			li.Children = append(li.Children, g.text())
		}
		pl.Children = append(pl.Children, li)
	}
	return pl
}

// categories (category+); category (name, description)
func (g *gen) categories(n int) *xmldoc.Node {
	cats := el("categories")
	for i := 0; i < n; i++ {
		cats.Children = append(cats.Children, el("category",
			txt("name", g.words(1)),
			g.description(1),
		))
	}
	return cats
}

func (g *gen) catgraph(nCategories int) *xmldoc.Node {
	cg := el("catgraph")
	for i := 0; i < nCategories/2+1; i++ {
		cg.Children = append(cg.Children, el("edge"))
	}
	return cg
}

// people (person*); person (name, emailaddress, phone?, address?,
// homepage?, creditcard?, profile?, watches?)
func (g *gen) people(n int) *xmldoc.Node {
	people := el("people")
	for i := 0; i < n; i++ {
		name := g.personName()
		p := el("person",
			txt("name", name),
			txt("emailaddress", "mailto:"+strings.ReplaceAll(strings.ToLower(name), " ", ".")+"@example.com"),
		)
		if g.chance(50) {
			p.Children = append(p.Children, txt("phone", "+"+g.digits(10)))
		}
		if g.chance(70) {
			addr := el("address",
				txt("street", g.digits(2)+" "+g.pick(corpus)+" St"),
				txt("city", g.pick(cities)),
				txt("country", g.pick(countries)),
			)
			if g.chance(40) {
				addr.Children = append(addr.Children, txt("province", g.pick(cities)))
			}
			addr.Children = append(addr.Children, txt("zipcode", g.digits(5)))
			p.Children = append(p.Children, addr)
		}
		if g.chance(40) {
			p.Children = append(p.Children, txt("homepage", "http://example.com/~"+strings.ToLower(strings.Fields(name)[0])))
		}
		if g.chance(50) {
			p.Children = append(p.Children, txt("creditcard", g.digits(4)+" "+g.digits(4)+" "+g.digits(4)+" "+g.digits(4)))
		}
		if g.chance(60) {
			prof := el("profile")
			for k := 0; k < g.intn(3); k++ {
				prof.Children = append(prof.Children, el("interest"))
			}
			if g.chance(50) {
				prof.Children = append(prof.Children, txt("education", g.pick(educations)))
			}
			if g.chance(50) {
				prof.Children = append(prof.Children, txt("gender", g.pick([]string{"male", "female"})))
			}
			prof.Children = append(prof.Children, txt("business", g.pick([]string{"Yes", "No"})))
			if g.chance(60) {
				prof.Children = append(prof.Children, txt("age", fmt.Sprintf("%d", 18+g.intn(60))))
			}
			p.Children = append(p.Children, prof)
		}
		if g.chance(50) {
			w := el("watches")
			for k := 0; k < g.intn(4); k++ {
				w.Children = append(w.Children, el("watch"))
			}
			p.Children = append(p.Children, w)
		}
		people.Children = append(people.Children, p)
	}
	return people
}

// open_auctions (open_auction*); open_auction (initial, reserve?, bidder*,
// current, privacy?, itemref, seller, annotation, quantity, type, interval)
func (g *gen) openAuctions(n, nPersons, nItems int) *xmldoc.Node {
	oas := el("open_auctions")
	for i := 0; i < n; i++ {
		oa := el("open_auction", txt("initial", g.money()))
		if g.chance(40) {
			oa.Children = append(oa.Children, txt("reserve", g.money()))
		}
		for b := 0; b < g.intn(5); b++ {
			oa.Children = append(oa.Children, el("bidder",
				txt("date", g.date()),
				txt("time", fmt.Sprintf("%02d:%02d:%02d", g.intn(24), g.intn(60), g.intn(60))),
				el("personref"),
				txt("increase", g.money()),
			))
		}
		oa.Children = append(oa.Children,
			txt("current", g.money()),
		)
		if g.chance(30) {
			oa.Children = append(oa.Children, txt("privacy", "Yes"))
		}
		oa.Children = append(oa.Children,
			el("itemref"),
			el("seller"),
			g.annotation(),
			txt("quantity", g.digits(1)),
			txt("type", g.pick([]string{"Regular", "Featured", "Dutch"})),
			el("interval", txt("start", g.date()), txt("end", g.date())),
		)
		oas.Children = append(oas.Children, oa)
	}
	return oas
}

// annotation (author, description?, happiness)
func (g *gen) annotation() *xmldoc.Node {
	a := el("annotation", el("author"))
	if g.chance(60) {
		a.Children = append(a.Children, g.description(1))
	}
	a.Children = append(a.Children, txt("happiness", fmt.Sprintf("%d", 1+g.intn(10))))
	return a
}

// closed_auctions (closed_auction*); closed_auction (seller, buyer,
// itemref, price, date, quantity, type, annotation?)
func (g *gen) closedAuctions(n, nPersons, nItems int) *xmldoc.Node {
	cas := el("closed_auctions")
	for i := 0; i < n; i++ {
		ca := el("closed_auction",
			el("seller"),
			el("buyer"),
			el("itemref"),
			txt("price", g.money()),
			txt("date", g.date()),
			txt("quantity", g.digits(1)),
			txt("type", g.pick([]string{"Regular", "Featured", "Dutch"})),
		)
		if g.chance(50) {
			ca.Children = append(ca.Children, g.annotation())
		}
		cas.Children = append(cas.Children, ca)
	}
	return cas
}

func (g *gen) personName() string {
	return g.pick(firstNames) + " " + g.pick(lastNames)
}

var corpus = strings.Fields(`
the quick brown fox jumps over lazy dog pack my box with five dozen
liquor jugs how vexingly daft zebras jump sphinx of black quartz judge
my vow waltz bad nymph for jack quiz vex chums gold silver copper
bronze market trade value price offer demand supply ledger account
merchant harbor vessel cargo spice silk amber ivory linen wool barrel
crate anchor voyage compass chart island coast river meadow forest
mountain valley stone bridge tower gate castle village city road lamp
candle scroll quill parchment letter seal courier message news rumor
story song dance feast honey bread cheese apple grape olive wine salt
pepper sugar tea coffee garden flower seed harvest plough field grain
mill baker smith tailor weaver potter mason carpenter hunter fisher
sailor soldier guard captain mayor council law court coin purse chest
key lock door window roof wall floor cellar attic stair hall chamber
`)

var suffixes = []string{"s", "ing", "ed", "ly", "er", "est", "ion", "ness", "ful", "ish"}

var firstNames = []string{
	"Joan", "Richard", "Berry", "Jeroen", "Willem", "Alice", "Bob",
	"Carol", "David", "Erik", "Fatima", "Georg", "Hanna", "Igor",
	"Julia", "Kenji", "Laura", "Miguel", "Nadia", "Oskar", "Priya",
}

var lastNames = []string{
	"Johnson", "Brinkman", "Schoenmakers", "Doumen", "Jonker", "Smith",
	"Miller", "Garcia", "Chen", "Kumar", "Novak", "Berg", "Visser",
	"Mori", "Silva", "Keller", "Olsen", "Popov", "Dubois", "Rossi",
}

var cities = []string{
	"Enschede", "Eindhoven", "Amsterdam", "Toronto", "Madison", "Berlin",
	"Lyon", "Porto", "Kyoto", "Oslo", "Prague", "Bergen", "Delft",
}

var countries = []string{
	"Netherlands", "Germany", "Canada", "United States", "France",
	"Portugal", "Japan", "Norway", "Czechia", "Belgium", "Italy",
}

var payments = []string{
	"Cash", "Creditcard", "Money order", "Personal check",
}

var shippings = []string{
	"Will ship internationally", "Will ship only within country",
	"Buyer pays fixed shipping charges", "See description for charges",
}

var educations = []string{
	"High School", "College", "Graduate School", "Other",
}
