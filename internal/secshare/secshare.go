// Package secshare implements the additive secret sharing of node
// polynomials between client and server (paper §3, steps 3–4).
//
// Every node polynomial f is split into two shares with f = client +
// server. The client share is produced by the seeded PRG keyed on the
// node's pre value, so the entire client tree can be discarded and
// regenerated on demand from the seed file; the server share is what gets
// stored in the (public, untrusted) database. Each share on its own is a
// uniformly random polynomial, so the server learns nothing about f.
//
// The evaluation entry points stream the client share straight off the
// PRG (ring.EvalStream): a containment check never materializes a
// client polynomial, it folds each coefficient into the accumulator as
// it is drawn. Reconstruction likewise streams the client coefficients
// directly into the destination buffer; ReconstructInto with a pooled
// buffer makes a full reconstruction allocation-free.
package secshare

import (
	"sync/atomic"

	"encshare/internal/gf"
	"encshare/internal/prg"
	"encshare/internal/ring"
)

// Domain is the PRG domain-separation label for client share streams. The
// encoder and the client filter must agree on it; it is part of the wire
// format between "encrypt time" and "query time".
const Domain = "encshare/client-poly/v1"

// Scheme ties a ring and a PRG together and produces/regenerates shares.
// Immutable and safe for concurrent use; the counter is atomic.
type Scheme struct {
	r *ring.Ring
	g *prg.Generator

	// recons counts full polynomial reconstructions, so tests can
	// cross-check the engines' Stats.Reconstructions against the number
	// of times a share pair was actually recombined here.
	recons atomic.Int64
}

// New creates a sharing scheme over ring r with client shares drawn from g.
func New(r *ring.Ring, g *prg.Generator) *Scheme {
	return &Scheme{r: r, g: g}
}

// Ring returns the underlying polynomial ring.
func (s *Scheme) Ring() *ring.Ring { return s.r }

// Reconstructions returns how many share pairs this scheme has
// recombined (Reconstruct/ReconstructInto calls).
func (s *Scheme) Reconstructions() int64 { return s.recons.Load() }

// clientStream opens the deterministic coefficient stream of the client
// share for the node at pre.
func (s *Scheme) clientStream(pre uint64) *prg.Stream {
	return s.g.Stream(Domain, pre)
}

// ClientShare regenerates the client share for the node stored at the
// given pre position. This is deterministic: it is how the client
// "remembers" its half of every polynomial while storing only the seed.
func (s *Scheme) ClientShare(pre uint64) ring.Poly {
	return s.r.Rand(s.clientStream(pre))
}

// Split computes the server share for node polynomial f at position pre:
// server = f − client. The pair (ClientShare(pre), server) sums to f.
func (s *Scheme) Split(f ring.Poly, pre uint64) (server ring.Poly) {
	return s.SplitInto(s.r.NewPoly(), f, pre)
}

// SplitInto is Split writing the server share into dst (len == N()),
// streaming the client coefficients instead of materializing the client
// polynomial. dst may alias f.
func (s *Scheme) SplitInto(dst, f ring.Poly, pre uint64) ring.Poly {
	var st prg.Stream
	s.g.StreamInto(&st, Domain, pre)
	r := s.r
	field := r.Field()
	q := field.Q()
	u := r.Sampler()
	if field.E() == 1 {
		for i := range dst {
			fv, cv := f[i], st.Sample(u)
			if fv >= cv {
				dst[i] = fv - cv
			} else {
				dst[i] = fv + q - cv
			}
		}
		return dst
	}
	for i := range dst {
		dst[i] = field.Sub(f[i], st.Sample(u))
	}
	return dst
}

// Reconstruct recombines a server share with the regenerated client share:
// f = client + server.
func (s *Scheme) Reconstruct(server ring.Poly, pre uint64) ring.Poly {
	return s.ReconstructInto(s.r.NewPoly(), server, pre)
}

// ReconstructInto recombines into dst (len == N()): dst = client +
// server, with the client coefficients streamed straight from the PRG —
// no intermediate polynomial. dst may alias server, so callers can
// decode a blob into a pooled buffer and reconstruct in place.
func (s *Scheme) ReconstructInto(dst, server ring.Poly, pre uint64) ring.Poly {
	var st prg.Stream
	s.g.StreamInto(&st, Domain, pre)
	r := s.r
	field := r.Field()
	q := field.Q()
	u := r.Sampler()
	if field.E() == 1 {
		for i := range dst {
			v := server[i] + st.Sample(u)
			if v >= q {
				v -= q
			}
			dst[i] = v
		}
	} else {
		for i := range dst {
			dst[i] = field.Add(server[i], st.Sample(u))
		}
	}
	s.recons.Add(1)
	return dst
}

// AddShares folds the regenerated client shares of every listed node
// into dst (dst += Σ client(pre)) and returns dst — the client half of
// an aggregate fold. The server returns Σ server(pre) for the same rows,
// so after this call dst holds Σ f_pre, the true aggregate, without any
// per-row polynomial ever materializing: each share streams straight off
// the PRG into the accumulator.
func (s *Scheme) AddShares(dst ring.Poly, pres []int64) ring.Poly {
	for _, pre := range pres {
		s.AddClientShareScaled(dst, uint64(pre), 1)
	}
	return dst
}

// AddSharesScaled is AddShares with a per-row scalar mask: dst +=
// Σ mask[i]·client(pres[i]) (len(mask) == len(pres), every element
// nonzero and in-field). This is the client half of the verification
// share — the masked aggregate the server cannot predict.
func (s *Scheme) AddSharesScaled(dst ring.Poly, pres []int64, mask []gf.Elem) ring.Poly {
	for i, pre := range pres {
		s.AddClientShareScaled(dst, uint64(pre), mask[i])
	}
	return dst
}

// AddClientShareScaled streams one node's client share into dst with a
// scalar factor: dst += c·client(pre). c must be a valid field element;
// c == 0 still consumes nothing and leaves dst unchanged.
func (s *Scheme) AddClientShareScaled(dst ring.Poly, pre uint64, c gf.Elem) ring.Poly {
	if c == 0 {
		return dst
	}
	var st prg.Stream
	s.g.StreamInto(&st, Domain, pre)
	r := s.r
	field := r.Field()
	q := field.Q()
	u := r.Sampler()
	if c == 1 {
		if field.E() == 1 {
			for i := range dst {
				v := dst[i] + st.Sample(u)
				if v >= q {
					v -= q
				}
				dst[i] = v
			}
			return dst
		}
		for i := range dst {
			dst[i] = field.Add(dst[i], st.Sample(u))
		}
		return dst
	}
	t := field.Tables()
	lg, ex := t.Log, t.Exp
	lc := lg[c]
	if field.E() == 1 {
		for i := range dst {
			cv := st.Sample(u)
			if cv == 0 {
				continue
			}
			v := dst[i] + ex[lg[cv]+lc]
			if v >= q {
				v -= q
			}
			dst[i] = v
		}
		return dst
	}
	for i := range dst {
		cv := st.Sample(u)
		if cv != 0 {
			dst[i] = field.Add(dst[i], ex[lg[cv]+lc])
		}
	}
	return dst
}

// EvalShared evaluates the *unshared* polynomial at point v given only the
// server share: client(v) + server(v) = f(v). This is the core of the
// containment test — the server evaluates its share, the client evaluates
// its regenerated share, and only the sum is meaningful.
func (s *Scheme) EvalShared(server ring.Poly, pre uint64, v uint32) uint32 {
	cv := s.EvalClientAt(pre, v)
	sv := s.r.Eval(server, v)
	return s.r.Field().Add(cv, sv)
}

// EvalClientAt evaluates just the client share at v; used when the server
// evaluation happens remotely and only the two field values meet. The
// share streams off the PRG without being materialized.
func (s *Scheme) EvalClientAt(pre uint64, v uint32) uint32 {
	var st prg.Stream
	s.g.StreamInto(&st, Domain, pre)
	return s.r.EvalStream(&st, v)
}

// EvalClientMany evaluates the client share of one node at every point
// in vs, writing to out (len(out) ≥ len(vs)). The PRG stream — the
// dominant cost of a client evaluation — is traversed once for all
// points, which is what makes the advanced engine's several-names-per-
// node look-ahead cheap on the client side.
func (s *Scheme) EvalClientMany(pre uint64, vs []gf.Elem, out []gf.Elem) {
	var st prg.Stream
	s.g.StreamInto(&st, Domain, pre)
	s.r.EvalStreamMany(&st, vs, out)
}
