// Package secshare implements the additive secret sharing of node
// polynomials between client and server (paper §3, steps 3–4).
//
// Every node polynomial f is split into two shares with f = client +
// server. The client share is produced by the seeded PRG keyed on the
// node's pre value, so the entire client tree can be discarded and
// regenerated on demand from the seed file; the server share is what gets
// stored in the (public, untrusted) database. Each share on its own is a
// uniformly random polynomial, so the server learns nothing about f.
package secshare

import (
	"encshare/internal/prg"
	"encshare/internal/ring"
)

// Domain is the PRG domain-separation label for client share streams. The
// encoder and the client filter must agree on it; it is part of the wire
// format between "encrypt time" and "query time".
const Domain = "encshare/client-poly/v1"

// Scheme ties a ring and a PRG together and produces/regenerates shares.
// Immutable and safe for concurrent use.
type Scheme struct {
	r *ring.Ring
	g *prg.Generator
}

// New creates a sharing scheme over ring r with client shares drawn from g.
func New(r *ring.Ring, g *prg.Generator) *Scheme {
	return &Scheme{r: r, g: g}
}

// Ring returns the underlying polynomial ring.
func (s *Scheme) Ring() *ring.Ring { return s.r }

// ClientShare regenerates the client share for the node stored at the
// given pre position. This is deterministic: it is how the client
// "remembers" its half of every polynomial while storing only the seed.
func (s *Scheme) ClientShare(pre uint64) ring.Poly {
	return s.r.Rand(s.g.Stream(Domain, pre))
}

// Split computes the server share for node polynomial f at position pre:
// server = f − client. The pair (ClientShare(pre), server) sums to f.
func (s *Scheme) Split(f ring.Poly, pre uint64) (server ring.Poly) {
	return s.r.Sub(f, s.ClientShare(pre))
}

// Reconstruct recombines a server share with the regenerated client share:
// f = client + server.
func (s *Scheme) Reconstruct(server ring.Poly, pre uint64) ring.Poly {
	return s.r.Add(s.ClientShare(pre), server)
}

// EvalShared evaluates the *unshared* polynomial at point v given only the
// server share: client(v) + server(v) = f(v). This is the core of the
// containment test — the server evaluates its share, the client evaluates
// its regenerated share, and only the sum is meaningful.
func (s *Scheme) EvalShared(server ring.Poly, pre uint64, v uint32) uint32 {
	cv := s.r.Eval(s.ClientShare(pre), v)
	sv := s.r.Eval(server, v)
	return s.r.Field().Add(cv, sv)
}

// EvalClientAt evaluates just the client share at v; used when the server
// evaluation happens remotely and only the two field values meet.
func (s *Scheme) EvalClientAt(pre uint64, v uint32) uint32 {
	return s.r.Eval(s.ClientShare(pre), v)
}
