package secshare

import (
	"testing"

	"encshare/internal/gf"
	"encshare/internal/prg"
	"encshare/internal/ring"
)

func newScheme(t testing.TB, seed string) *Scheme {
	t.Helper()
	r := ring.MustNew(gf.MustNew(83, 1))
	return New(r, prg.New([]byte(seed)))
}

func TestSplitReconstructRoundTrip(t *testing.T) {
	s := newScheme(t, "seed")
	gen := prg.New([]byte("data")).Stream("f", 0)
	for pre := uint64(1); pre <= 50; pre++ {
		f := s.Ring().Rand(gen)
		server := s.Split(f, pre)
		got := s.Reconstruct(server, pre)
		if !s.Ring().Equal(f, got) {
			t.Fatalf("pre=%d: reconstruct(split(f)) != f", pre)
		}
	}
}

func TestSharesSumToPoly(t *testing.T) {
	s := newScheme(t, "seed")
	f := s.Ring().Linear(17)
	server := s.Split(f, 7)
	client := s.ClientShare(7)
	if !s.Ring().Equal(s.Ring().Add(client, server), f) {
		t.Fatal("client + server != f")
	}
}

func TestClientShareDeterministic(t *testing.T) {
	s1 := newScheme(t, "same-seed")
	s2 := newScheme(t, "same-seed")
	if !s1.Ring().Equal(s1.ClientShare(123), s2.ClientShare(123)) {
		t.Fatal("client shares for the same (seed, pre) differ")
	}
	if s1.Ring().Equal(s1.ClientShare(123), s1.ClientShare(124)) {
		t.Fatal("client shares for different pre values coincide")
	}
}

func TestDifferentSeedsDifferentShares(t *testing.T) {
	a := newScheme(t, "seed-a")
	b := newScheme(t, "seed-b")
	if a.Ring().Equal(a.ClientShare(1), b.ClientShare(1)) {
		t.Fatal("different seeds produced the same client share")
	}
}

// TestServerShareLooksRandom: the server share of a *fixed* polynomial
// under fresh positions should hit many distinct coefficient values — a
// smoke test for the hiding property (each share is uniform).
func TestServerShareCoverage(t *testing.T) {
	s := newScheme(t, "hide")
	f := s.Ring().Linear(5) // low-entropy secret
	seen := map[uint32]bool{}
	for pre := uint64(0); pre < 30; pre++ {
		server := s.Split(f, pre)
		for _, c := range server {
			seen[c] = true
		}
	}
	if len(seen) < 70 { // 83 possible values; ~all should appear in 2460 draws
		t.Fatalf("server share coefficients cover only %d/83 values", len(seen))
	}
}

func TestEvalShared(t *testing.T) {
	s := newScheme(t, "eval")
	r := s.Ring()
	f := r.FromRoots([]gf.Elem{3, 9, 27}) // subtree containing tags 3, 9, 27
	const pre = 11
	server := s.Split(f, pre)
	for v := gf.Elem(1); v < r.Field().Q(); v++ {
		want := r.Eval(f, v)
		if got := s.EvalShared(server, pre, v); got != want {
			t.Fatalf("EvalShared at %d = %d, want %d", v, got, want)
		}
		// Split evaluation path (remote scenario): client(v) + server(v).
		cv := s.EvalClientAt(pre, v)
		sv := r.Eval(server, v)
		if got := r.Field().Add(cv, sv); got != want {
			t.Fatalf("split eval at %d = %d, want %d", v, got, want)
		}
	}
	// Containment: zero exactly at the roots.
	for _, v := range []gf.Elem{3, 9, 27} {
		if s.EvalShared(server, pre, v) != 0 {
			t.Errorf("shared eval at contained tag %d != 0", v)
		}
	}
	if s.EvalShared(server, pre, 5) == 0 {
		t.Error("shared eval at absent tag 5 == 0")
	}
}

// TestWrongSeedGarbles: reconstructing with the wrong seed must not give
// back f (this is what makes the seed the key).
func TestWrongSeedGarbles(t *testing.T) {
	enc := newScheme(t, "right-seed")
	dec := newScheme(t, "wrong-seed")
	f := enc.Ring().Linear(42)
	server := enc.Split(f, 5)
	if dec.Ring().Equal(dec.Reconstruct(server, 5), f) {
		t.Fatal("wrong seed still reconstructed f")
	}
}

func TestExtensionFieldScheme(t *testing.T) {
	r := ring.MustNew(gf.MustNew(3, 2)) // F_9, n = 8
	s := New(r, prg.New([]byte("ext")))
	gen := prg.New([]byte("extdata")).Stream("f", 0)
	f := r.Rand(gen)
	server := s.Split(f, 2)
	if !r.Equal(s.Reconstruct(server, 2), f) {
		t.Fatal("extension-field round-trip failed")
	}
}

func BenchmarkClientShare(b *testing.B) {
	r := ring.MustNew(gf.MustNew(83, 1))
	s := New(r, prg.New([]byte("bench")))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.ClientShare(uint64(i))
	}
}

func BenchmarkSplit(b *testing.B) {
	r := ring.MustNew(gf.MustNew(83, 1))
	s := New(r, prg.New([]byte("bench")))
	f := r.Linear(11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Split(f, uint64(i))
	}
}

// TestStreamingPathsMatchMaterialized proves the streaming entry points
// (SplitInto, ReconstructInto, EvalClientAt, EvalClientMany) equal the
// materialize-then-operate formulation, on prime and extension fields.
func TestStreamingPathsMatchMaterialized(t *testing.T) {
	rings := []*ring.Ring{
		ring.MustNew(gf.MustNew(83, 1)),
		ring.MustNew(gf.MustNew(3, 2)),
	}
	for _, r := range rings {
		s := New(r, prg.New([]byte("streaming")))
		gen := prg.New([]byte("streaming-data")).Stream("f", 0)
		for pre := uint64(0); pre < 8; pre++ {
			f := r.Rand(gen)
			client := s.ClientShare(pre)

			server := s.SplitInto(r.NewPoly(), f, pre)
			if !r.Equal(server, r.Sub(f, client)) {
				t.Fatalf("%v pre=%d: SplitInto != f - client", r.Field(), pre)
			}
			// In-place split: dst aliases f.
			fCopy := r.Clone(f)
			if !r.Equal(s.SplitInto(fCopy, fCopy, pre), server) {
				t.Fatalf("%v pre=%d: in-place SplitInto differs", r.Field(), pre)
			}

			full := s.ReconstructInto(r.NewPoly(), server, pre)
			if !r.Equal(full, f) {
				t.Fatalf("%v pre=%d: ReconstructInto != f", r.Field(), pre)
			}
			// In-place reconstruct: dst aliases server.
			sCopy := r.Clone(server)
			if !r.Equal(s.ReconstructInto(sCopy, sCopy, pre), f) {
				t.Fatalf("%v pre=%d: in-place ReconstructInto differs", r.Field(), pre)
			}

			points := []gf.Elem{0, 1, 2 % r.Field().Q(), r.Field().Q() - 1}
			for _, v := range points {
				if got, want := s.EvalClientAt(pre, v), r.Eval(client, v); got != want {
					t.Fatalf("%v pre=%d: EvalClientAt(%d) = %d, want %d", r.Field(), pre, v, got, want)
				}
			}
			out := make([]gf.Elem, len(points))
			s.EvalClientMany(pre, points, out)
			for i, v := range points {
				if want := r.Eval(client, v); out[i] != want {
					t.Fatalf("%v pre=%d: EvalClientMany[%d] = %d, want %d", r.Field(), pre, i, out[i], want)
				}
			}
		}
	}
}

// TestReconstructionCounterAndAllocs cross-checks the scheme's
// reconstruction counter against the work actually done, and pins the
// allocation-free property of ReconstructInto with a pooled buffer —
// the point of the counter is that the two can be compared.
func TestReconstructionCounterAndAllocs(t *testing.T) {
	s := newScheme(t, "counter")
	r := s.Ring()
	f := r.Linear(9)
	server := s.Split(f, 3)

	before := s.Reconstructions()
	const runs = 100
	dst := r.GetPoly()
	if avg := testing.AllocsPerRun(runs, func() {
		s.ReconstructInto(dst, server, 3)
	}); avg > 0 {
		t.Errorf("ReconstructInto allocates %.2f objects/op, want 0", avg)
	}
	r.PutPoly(dst)
	got := s.Reconstructions() - before
	// AllocsPerRun executes runs+1 iterations (one warm-up).
	if got != runs+1 {
		t.Fatalf("Reconstructions advanced by %d, want %d", got, runs+1)
	}
}
