package secshare

import (
	"testing"

	"encshare/internal/gf"
	"encshare/internal/prg"
	"encshare/internal/ring"
)

// foldSchemes covers a prime field and an extension field — the two
// arithmetic regimes AddClientShareScaled special-cases.
func foldSchemes(t testing.TB) []*Scheme {
	t.Helper()
	return []*Scheme{
		New(ring.MustNew(gf.MustNew(83, 1)), prg.New([]byte("fold-prime"))),
		New(ring.MustNew(gf.MustNew(3, 2)), prg.New([]byte("fold-ext"))),
	}
}

func TestAddSharesMatchesClientShareSum(t *testing.T) {
	pres := []int64{1, 2, 5, 17, 40, 41}
	for _, s := range foldSchemes(t) {
		r := s.Ring()
		want := r.NewPoly()
		for _, pre := range pres {
			want = r.Add(want, s.ClientShare(uint64(pre)))
		}
		got := s.AddShares(r.NewPoly(), pres)
		if !r.Equal(got, want) {
			t.Fatalf("%s: AddShares != Σ ClientShare", r.Field())
		}
	}
}

func TestAddSharesScaledMatchesScaledSum(t *testing.T) {
	pres := []int64{0, 3, 9, 12, 33}
	for _, s := range foldSchemes(t) {
		r, f := s.Ring(), s.Ring().Field()
		mask := make([]gf.Elem, len(pres))
		for i := range mask {
			mask[i] = 1 + gf.Elem(uint32(i*5+2)%(f.Q()-1))
		}
		want := r.NewPoly()
		for i, pre := range pres {
			cs := s.ClientShare(uint64(pre))
			for j := range want {
				want[j] = f.Add(want[j], f.Mul(mask[i], cs[j]))
			}
		}
		got := s.AddSharesScaled(r.NewPoly(), pres, mask)
		if !r.Equal(got, want) {
			t.Fatalf("%s: AddSharesScaled != Σ ρ·ClientShare", r.Field())
		}
	}
}

func TestAddClientShareScaledEdgeScalars(t *testing.T) {
	for _, s := range foldSchemes(t) {
		r := s.Ring()
		base := r.Clone(s.ClientShare(99)) // arbitrary nonzero accumulator
		// c = 0 is a no-op.
		if got := s.AddClientShareScaled(r.Clone(base), 7, 0); !r.Equal(got, base) {
			t.Fatalf("%s: c=0 changed the accumulator", r.Field())
		}
		// c = 1 is a plain add of the client share.
		want := r.Add(base, s.ClientShare(7))
		if got := s.AddClientShareScaled(r.Clone(base), 7, 1); !r.Equal(got, want) {
			t.Fatalf("%s: c=1 != plain ClientShare add", r.Field())
		}
	}
}

// TestFoldCompletesServerFold is the end-to-end share algebra the
// aggregate protocol relies on: the server folds Σ server_p, the client
// adds Σ client_p, and the result is exactly Σ f_p.
func TestFoldCompletesServerFold(t *testing.T) {
	for _, s := range foldSchemes(t) {
		r := s.Ring()
		gen := prg.New([]byte("secrets")).Stream("f", 0)
		pres := []int64{2, 4, 8, 16, 32}
		serverFold := r.NewPoly()
		want := r.NewPoly()
		for _, pre := range pres {
			f := r.Rand(gen)
			want = r.Add(want, f)
			serverFold = r.Add(serverFold, s.Split(f, uint64(pre)))
		}
		got := s.AddShares(r.Clone(serverFold), pres)
		if !r.Equal(got, want) {
			t.Fatalf("%s: server fold + client fold != Σ f", r.Field())
		}
	}
}
