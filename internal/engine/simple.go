package engine

import (
	"encshare/internal/filter"
	"encshare/internal/mapping"
	"encshare/internal/xpath"
)

// Simple is the SimpleQuery engine of §5.3: it processes the query one
// step at a time, expanding the frontier along the step's axis and
// filtering every candidate with a single test against the step's name.
// The preliminary result set lives server-side in the paper (a Queue);
// here it is the frontier slice, with the same cardinalities.
type Simple struct {
	base
}

// NewSimple builds a simple engine over a client filter and the secret
// map.
func NewSimple(cli *filter.Client, m *mapping.Map) *Simple {
	return &Simple{base{cli: cli, m: m}}
}

// Name implements Engine.
func (e *Simple) Name() string { return "simple" }

// Run implements Engine.
func (e *Simple) Run(q *xpath.Query, test Test) (Result, error) {
	return e.run(func() ([]int64, int64, error) {
		var visited int64
		frontier, err := e.steps(nil, q.Steps, test, true, &visited)
		if err != nil {
			return nil, 0, err
		}
		pres, err := applyPreds(e, q, test, frontier)
		return pres, visited, err
	})
}

// evalRelative implements predEvaluator: true iff the relative query has
// at least one match below ctx.
func (e *Simple) evalRelative(ctx filter.NodeMeta, q *xpath.Query, test Test) (bool, error) {
	var visited int64
	frontier, err := e.steps([]filter.NodeMeta{ctx}, q.Steps, test, false, &visited)
	if err != nil {
		return false, err
	}
	return len(frontier) > 0, nil
}

// steps applies the step list to a frontier. fromRoot selects the virtual
// document root as initial context.
func (e *Simple) steps(frontier []filter.NodeMeta, steps []xpath.Step, test Test, fromRoot bool, visited *int64) ([]filter.NodeMeta, error) {
	for i, s := range steps {
		// Parent step: navigate up, no test.
		if s.Name == xpath.ParentStep {
			var parents []filter.NodeMeta
			for _, n := range frontier {
				if n.Parent == 0 {
					continue // root has no parent
				}
				p, err := e.cli.Node(n.Parent)
				if err != nil {
					return nil, err
				}
				parents = append(parents, p)
			}
			frontier = dedupMetas(parents)
			continue
		}

		// Expand candidates along the axis.
		var cands []filter.NodeMeta
		switch {
		case s.Axis == xpath.Child && i == 0 && fromRoot:
			// "The first slash instructs the search engine to locate the
			// root node ... done in constant time" (indexed parent = 0).
			root, err := e.cli.Root()
			if err != nil {
				return nil, err
			}
			cands = []filter.NodeMeta{root}
		case s.Axis == xpath.Child:
			for _, n := range frontier {
				kids, err := e.cli.Children(n.Pre)
				if err != nil {
					return nil, err
				}
				cands = append(cands, kids...)
			}
		case s.Axis == xpath.Descendant && i == 0 && fromRoot:
			root, err := e.cli.Root()
			if err != nil {
				return nil, err
			}
			desc, err := e.cli.Descendants(root.Pre, root.Post)
			if err != nil {
				return nil, err
			}
			cands = append([]filter.NodeMeta{root}, desc...)
		case s.Axis == xpath.Descendant:
			for _, n := range frontier {
				desc, err := e.cli.Descendants(n.Pre, n.Post)
				if err != nil {
					return nil, err
				}
				cands = append(cands, desc...)
			}
			cands = dedupMetas(cands)
		}

		// Filter by the step's test.
		if s.Name == xpath.Wildcard {
			// "The * reduces the workload because no additional filtering
			// is needed."
			frontier = cands
			continue
		}
		var kept []filter.NodeMeta
		for _, c := range cands {
			*visited++
			ok, err := e.accept(c.Pre, s.Name, test)
			if err != nil {
				return nil, err
			}
			if ok {
				kept = append(kept, c)
			}
		}
		frontier = kept
	}
	return frontier, nil
}
