package engine

import (
	"encshare/internal/filter"
	"encshare/internal/mapping"
	"encshare/internal/xpath"
)

// Simple is the SimpleQuery engine of §5.3: it processes the query one
// step at a time, expanding the frontier along the step's axis and
// filtering every candidate with a single test against the step's name.
// The preliminary result set lives server-side in the paper (a Queue);
// here it is the frontier slice, with the same cardinalities.
//
// In the default batched mode each step costs a constant number of
// server exchanges: one to expand the whole frontier along the axis and
// one to test every candidate. Sequential mode issues the paper's
// per-candidate exchanges instead.
type Simple struct {
	base
}

// NewSimple builds a simple engine over a client filter and the secret
// map, using the batched pipeline.
func NewSimple(cli *filter.Client, m *mapping.Map) *Simple {
	return &Simple{base{cli: cli, m: m}}
}

// NewSimpleSequential builds a simple engine that issues one server
// exchange per check, as the paper's prototype did — kept for
// measurement (batched-vs-unbatched comparisons) and for servers that
// predate the batch protocol.
func NewSimpleSequential(cli *filter.Client, m *mapping.Map) *Simple {
	return &Simple{base{cli: cli, m: m, seq: true}}
}

// Name implements Engine.
func (e *Simple) Name() string { return "simple" }

// Run implements Engine.
func (e *Simple) Run(q *xpath.Query, test Test) (Result, error) {
	return e.run(func() ([]int64, int64, error) {
		var visited int64
		frontier, err := e.steps(nil, q.Steps, test, true, &visited)
		if err != nil {
			return nil, 0, err
		}
		pres, err := applyPreds(e, q, test, frontier)
		return pres, visited, err
	})
}

// evalRelative implements predEvaluator: true iff the relative query has
// at least one match below ctx.
func (e *Simple) evalRelative(ctx filter.NodeMeta, q *xpath.Query, test Test) (bool, error) {
	var visited int64
	frontier, err := e.steps([]filter.NodeMeta{ctx}, q.Steps, test, false, &visited)
	if err != nil {
		return false, err
	}
	return len(frontier) > 0, nil
}

// evalRelativeBatch implements batchPredEvaluator: the stepwise
// traversal over a frontier of (node, context) pairs. Each step expands
// and tests the candidates of ALL contexts in the same shared exchanges,
// so answering the existence question for the whole frontier costs the
// same number of round-trips as answering it for one node. A context is
// satisfied iff any of its candidates survives every step.
func (e *Simple) evalRelativeBatch(ctxs []filter.NodeMeta, q *xpath.Query, test Test) ([]bool, error) {
	cur := make([]taggedMeta, len(ctxs))
	for i, m := range ctxs {
		cur[i] = taggedMeta{m: m, ctx: i}
	}
	tr := e.cli.Tracer()
	if tr != nil {
		defer tr.EndStep()
	}
	for _, s := range q.Steps {
		if tr != nil {
			tr.BeginStep("pred " + s.String())
		}
		if len(cur) == 0 {
			break
		}
		// Parent step: navigate up, no test.
		if s.Name == xpath.ParentStep {
			var pres []int64
			var keep []taggedMeta
			for _, tm := range cur {
				if tm.m.Parent != 0 { // root has no parent
					pres = append(pres, tm.m.Parent)
					keep = append(keep, tm)
				}
			}
			parents, err := e.cli.NodeBatch(pres)
			if err != nil {
				return nil, err
			}
			for i := range parents {
				keep[i].m = parents[i]
			}
			cur = dedupTagged(keep)
			continue
		}

		// Expand every context's candidates along the axis together.
		var cands []taggedMeta
		switch s.Axis {
		case xpath.Child:
			pres := make([]int64, len(cur))
			for i, tm := range cur {
				pres[i] = tm.m.Pre
			}
			lists, err := e.cli.ChildrenBatch(pres)
			if err != nil {
				return nil, err
			}
			for i, kids := range lists {
				for _, kid := range kids {
					cands = append(cands, taggedMeta{m: kid, ctx: cur[i].ctx})
				}
			}
		case xpath.Descendant:
			spans := make([]filter.Span, len(cur))
			for i, tm := range cur {
				spans[i] = filter.Span{Pre: tm.m.Pre, Post: tm.m.Post}
			}
			lists, err := e.cli.DescendantsBatch(spans)
			if err != nil {
				return nil, err
			}
			for i, desc := range lists {
				for _, d := range desc {
					cands = append(cands, taggedMeta{m: d, ctx: cur[i].ctx})
				}
			}
			cands = dedupTagged(cands)
		}

		if s.Name == xpath.Wildcard {
			cur = cands
			continue
		}
		v, ok := e.val(s.Name)
		if !ok {
			return make([]bool, len(ctxs)), nil // name cannot occur anywhere
		}
		checks := make([]filter.Check, len(cands))
		for i, tm := range cands {
			checks[i] = filter.Check{Pre: tm.m.Pre, Point: v}
		}
		var oks []bool
		var err error
		if test == Equality {
			oks, err = e.cli.EqualsBatch(checks)
		} else {
			oks, err = e.cli.ContainsBatch(checks)
		}
		if err != nil {
			return nil, err
		}
		var kept []taggedMeta
		for i, ok := range oks {
			if ok {
				kept = append(kept, cands[i])
			}
		}
		cur = kept
	}
	out := make([]bool, len(ctxs))
	for _, tm := range cur {
		out[tm.ctx] = true
	}
	return out, nil
}

// steps applies the step list to a frontier. fromRoot selects the virtual
// document root as initial context.
func (e *Simple) steps(frontier []filter.NodeMeta, steps []xpath.Step, test Test, fromRoot bool, visited *int64) ([]filter.NodeMeta, error) {
	tr := e.cli.Tracer()
	if tr != nil {
		defer tr.EndStep()
	}
	for i, s := range steps {
		if tr != nil {
			tr.BeginStep("step " + s.String())
		}
		// Parent step: navigate up, no test.
		if s.Name == xpath.ParentStep {
			var parents []filter.NodeMeta
			if e.seq {
				for _, n := range frontier {
					if n.Parent == 0 {
						continue // root has no parent
					}
					p, err := e.cli.Node(n.Parent)
					if err != nil {
						return nil, err
					}
					parents = append(parents, p)
				}
			} else {
				var pres []int64
				for _, n := range frontier {
					if n.Parent != 0 { // root has no parent
						pres = append(pres, n.Parent)
					}
				}
				var err error
				parents, err = e.cli.NodeBatch(pres)
				if err != nil {
					return nil, err
				}
			}
			frontier = dedupMetas(parents)
			continue
		}

		// Expand candidates along the axis.
		cands, err := e.expand(frontier, s, i == 0 && fromRoot)
		if err != nil {
			return nil, err
		}

		// Filter by the step's test.
		if s.Name == xpath.Wildcard {
			// "The * reduces the workload because no additional filtering
			// is needed."
			frontier = cands
			continue
		}
		if e.seq {
			var kept []filter.NodeMeta
			for _, c := range cands {
				*visited++
				ok, err := e.accept(c.Pre, s.Name, test)
				if err != nil {
					return nil, err
				}
				if ok {
					kept = append(kept, c)
				}
			}
			frontier = kept
			continue
		}
		*visited += int64(len(cands))
		frontier, err = e.acceptBatch(cands, s.Name, test)
		if err != nil {
			return nil, err
		}
	}
	return frontier, nil
}

// expand collects the step's candidates: the whole frontier is expanded
// along the axis in one server exchange in batched mode.
func (e *Simple) expand(frontier []filter.NodeMeta, s xpath.Step, fromRoot bool) ([]filter.NodeMeta, error) {
	switch {
	case s.Axis == xpath.Child && fromRoot:
		// "The first slash instructs the search engine to locate the
		// root node ... done in constant time" (indexed parent = 0).
		root, err := e.cli.Root()
		if err != nil {
			return nil, err
		}
		return []filter.NodeMeta{root}, nil
	case s.Axis == xpath.Child:
		if e.seq {
			var cands []filter.NodeMeta
			for _, n := range frontier {
				kids, err := e.cli.Children(n.Pre)
				if err != nil {
					return nil, err
				}
				cands = append(cands, kids...)
			}
			return cands, nil
		}
		pres := make([]int64, len(frontier))
		for i, n := range frontier {
			pres[i] = n.Pre
		}
		lists, err := e.cli.ChildrenBatch(pres)
		if err != nil {
			return nil, err
		}
		var cands []filter.NodeMeta
		for _, kids := range lists {
			cands = append(cands, kids...)
		}
		return cands, nil
	case s.Axis == xpath.Descendant && fromRoot:
		root, err := e.cli.Root()
		if err != nil {
			return nil, err
		}
		desc, err := e.cli.Descendants(root.Pre, root.Post)
		if err != nil {
			return nil, err
		}
		return append([]filter.NodeMeta{root}, desc...), nil
	case s.Axis == xpath.Descendant:
		var cands []filter.NodeMeta
		if e.seq {
			for _, n := range frontier {
				desc, err := e.cli.Descendants(n.Pre, n.Post)
				if err != nil {
					return nil, err
				}
				cands = append(cands, desc...)
			}
		} else {
			spans := make([]filter.Span, len(frontier))
			for i, n := range frontier {
				spans[i] = filter.Span{Pre: n.Pre, Post: n.Post}
			}
			lists, err := e.cli.DescendantsBatch(spans)
			if err != nil {
				return nil, err
			}
			for _, desc := range lists {
				cands = append(cands, desc...)
			}
		}
		return dedupMetas(cands), nil
	}
	return nil, nil
}
