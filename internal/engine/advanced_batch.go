package engine

import (
	"fmt"

	"encshare/internal/filter"
	"encshare/internal/gf"
	"encshare/internal/xpath"
)

// advBatch is the level-synchronous (wave-based) form of the advanced
// traversal. It performs exactly the same checks as the depth-first
// advRun — the same look-ahead short-circuit per node, the same
// containment/equality tests per candidate — but reorders them into
// waves so that all checks of a wave travel in one filter exchange:
//
//   - every pending node checks ONE look-ahead name per wave (preserving
//     the sequential short-circuit: name i is only evaluated if names
//     0..i-1 passed), all in a single ContainsBatch;
//   - all child-axis expansions of a wave share one ChildrenBatch and one
//     accept batch;
//   - all descendant-walk levels of a wave share one ChildrenBatch, one
//     ContainsBatch prune, and (strict mode) one EqualsBatch.
//
// For full queries the work counters (evaluations, reconstructions,
// fetches, visits) are identical to the depth-first traversal; only the
// number of round-trips changes, from O(checks) to O(depth × names).
//
// In existence mode (predicate evaluation) the traversal runs many
// predicate contexts at once: every alive branch carries the index of
// the frontier candidate it serves, all contexts' branches share the
// wave exchanges, and a context is satisfied the moment one of its
// branches consumes every step. Satisfied contexts stop spending work
// (their branches are dropped at each stage, the per-context analogue of
// the sequential short-circuit), so a whole frontier's predicate check
// costs O(depth × names) exchanges instead of O(frontier) traversals.
// The wave structure checks witness flags between batches rather than
// between nodes, so it may spend slightly different work than the
// sequential short-circuit — the boolean answers are always the same.
type advBatch struct {
	e          *Advanced
	test       Test
	preds      []*xpath.Query // top-level predicates, folded into look-ahead
	visited    int64
	out        []filter.NodeMeta
	existsOnly bool
	found      []bool // per-context witness flags (existsOnly mode)
	pending    int    // contexts still without a witness

	items []advItem // nodes clearing look-ahead, then consuming a step
	scans []advScan // descendant walks, one level per wave
}

// advItem is one alive traversal branch: a node that must clear the
// pending look-ahead names (one per wave) and then consume steps[0], on
// behalf of predicate context ctx (always 0 for full-result runs).
type advItem struct {
	node  filter.NodeMeta
	steps []xpath.Step
	la    []string
	ctx   int
}

// advScan is one descendant walk position: the children of node are the
// next level, scanned against step s, with rest to follow below matches.
type advScan struct {
	node filter.NodeMeta
	s    xpath.Step
	rest []xpath.Step
	ctx  int
}

// done reports whether branch work for ctx is moot (its witness exists).
func (r *advBatch) done(ctx int) bool { return r.existsOnly && r.found[ctx] }

// allDone reports whether every context has its witness.
func (r *advBatch) allDone() bool { return r.existsOnly && r.pending == 0 }

// witness records ctx's witness.
func (r *advBatch) witness(ctx int) {
	if !r.found[ctx] {
		r.found[ctx] = true
		r.pending--
	}
}

// push enqueues a node with the look-ahead of its remaining steps — the
// wave analogue of calling advRun.rec.
func (r *advBatch) push(node filter.NodeMeta, steps []xpath.Step, ctx int) {
	r.items = append(r.items, advItem{node: node, steps: steps, la: lookaheadNames(steps, r.preds), ctx: ctx})
}

// start handles the virtual document root exactly as advRun.start, then
// drains the wave queue.
func (r *advBatch) start(steps []xpath.Step) error {
	if len(steps) == 0 {
		return nil
	}
	root, err := r.e.cli.Root()
	if err != nil {
		return err
	}
	s := steps[0]
	if s.Name == xpath.ParentStep {
		return nil // the virtual root has no parent: empty result
	}
	switch s.Axis {
	case xpath.Child:
		// "The AdvancedQuery engine always starts at the root node."
		r.visited++
		if s.IsNameTest() {
			ok, err := r.e.accept(root.Pre, s.Name, r.test)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		}
		r.push(root, steps[1:], 0)
	case xpath.Descendant:
		// The root itself is a candidate, then walk downwards.
		r.visited++
		if s.IsNameTest() {
			ok, err := r.e.accept(root.Pre, s.Name, r.test)
			if err != nil {
				return err
			}
			if ok {
				r.push(root, steps[1:], 0)
			}
		} else {
			r.push(root, steps[1:], 0)
		}
		r.scans = append(r.scans, advScan{node: root, s: s, rest: steps[1:]})
	}
	return r.drain()
}

// drain runs waves until no branch is alive (or every existence context
// found its witness).
func (r *advBatch) drain() error {
	tr := r.e.cli.Tracer()
	if tr != nil {
		defer tr.EndStep()
	}
	for wave := 1; len(r.items) > 0 || len(r.scans) > 0; wave++ {
		if r.allDone() {
			return nil
		}
		if tr != nil {
			tr.BeginStep(fmt.Sprintf("wave %d (%d branches, %d scans)", wave, len(r.items), len(r.scans)))
		}
		if err := r.wave(); err != nil {
			return err
		}
	}
	return nil
}

// wave advances every alive branch by one round: one look-ahead name per
// pending node, then step consumption for cleared nodes, then one
// descendant-walk level. Branches of satisfied contexts are dropped at
// every stage — no point spending exchanges once their answer is known.
func (r *advBatch) wave() error {
	ready, err := r.lookaheadRound()
	if err != nil {
		return err
	}
	childParents, err := r.consume(ready)
	if err != nil || r.allDone() {
		return err
	}
	if err := r.expandChildren(childParents); err != nil {
		return err
	}
	return r.scanLevel()
}

// lookaheadRound checks one pending look-ahead name per item in a single
// exchange and returns the items whose look-ahead is fully cleared.
func (r *advBatch) lookaheadRound() ([]advItem, error) {
	var ready, pending, checked []advItem
	var checks []filter.Check
	for _, it := range r.items {
		if r.done(it.ctx) {
			continue // context already witnessed: dead branch
		}
		if len(it.la) == 0 {
			ready = append(ready, it)
			continue
		}
		v, mapped := r.e.val(it.la[0])
		if !mapped {
			continue // name cannot occur anywhere: dead branch
		}
		checks = append(checks, filter.Check{Pre: it.node.Pre, Point: v})
		checked = append(checked, it)
	}
	oks, err := r.e.cli.ContainsBatch(checks)
	if err != nil {
		return nil, err
	}
	for i, ok := range oks {
		if !ok {
			continue // dead branch
		}
		it := checked[i]
		it.la = it.la[1:]
		if len(it.la) == 0 {
			ready = append(ready, it)
		} else {
			pending = append(pending, it)
		}
	}
	r.items = pending
	return ready, nil
}

// consume lets every cleared item take its next step: emit results (or
// witnesses), climb parents (one shared exchange), queue descendant
// walks, and collect child expansions for the shared batch.
func (r *advBatch) consume(ready []advItem) ([]advItem, error) {
	var childParents []advItem
	var parentPres []int64
	var parentItems []advItem
	for _, it := range ready {
		if r.done(it.ctx) {
			continue
		}
		if len(it.steps) == 0 {
			if r.existsOnly {
				r.witness(it.ctx)
				continue
			}
			r.out = append(r.out, it.node)
			continue
		}
		s := it.steps[0]
		rest := it.steps[1:]
		switch {
		case s.Name == xpath.ParentStep:
			if it.node.Parent == 0 {
				continue
			}
			parentPres = append(parentPres, it.node.Parent)
			parentItems = append(parentItems, advItem{steps: rest, ctx: it.ctx})
		case s.Axis == xpath.Child:
			childParents = append(childParents, it)
		case s.Axis == xpath.Descendant:
			r.scans = append(r.scans, advScan{node: it.node, s: s, rest: rest, ctx: it.ctx})
		}
	}
	parents, err := r.e.cli.NodeBatch(parentPres)
	if err != nil {
		return nil, err
	}
	for i, parent := range parents {
		r.visited++
		r.push(parent, parentItems[i].steps, parentItems[i].ctx)
	}
	return childParents, nil
}

// expandChildren expands all child-axis items of the wave with one
// navigation exchange and filters every candidate with one accept batch.
func (r *advBatch) expandChildren(parents []advItem) error {
	live := parents[:0]
	for _, it := range parents {
		if !r.done(it.ctx) {
			live = append(live, it)
		}
	}
	parents = live
	if len(parents) == 0 {
		return nil
	}
	pres := make([]int64, len(parents))
	for i, it := range parents {
		pres[i] = it.node.Pre
	}
	lists, err := r.e.cli.ChildrenBatch(pres)
	if err != nil {
		return err
	}
	var checks []filter.Check
	var cands []advItem // candidate with steps = rest, parallel to checks
	for i, it := range parents {
		s := it.steps[0]
		rest := it.steps[1:]
		var v gf.Elem
		mapped := false
		if s.IsNameTest() {
			v, mapped = r.e.val(s.Name)
		}
		for _, kid := range lists[i] {
			r.visited++
			if !s.IsNameTest() {
				r.push(kid, rest, it.ctx)
				continue
			}
			if !mapped {
				continue
			}
			checks = append(checks, filter.Check{Pre: kid.Pre, Point: v})
			cands = append(cands, advItem{node: kid, steps: rest, ctx: it.ctx})
		}
	}
	oks, err := r.acceptChecks(checks)
	if err != nil {
		return err
	}
	for i, ok := range oks {
		if ok {
			r.push(cands[i].node, cands[i].steps, cands[i].ctx)
		}
	}
	return nil
}

// acceptChecks applies the engine's test to a check batch (Contains for
// non-strict, Equals for strict) in one exchange.
func (r *advBatch) acceptChecks(checks []filter.Check) ([]bool, error) {
	if r.test == Equality {
		return r.e.cli.EqualsBatch(checks)
	}
	return r.e.cli.ContainsBatch(checks)
}

// scanLevel advances every descendant walk by one tree level: fetch all
// children in one exchange, prune subtrees that cannot contain the name
// with one ContainsBatch, and (strict mode) accept matches with one
// EqualsBatch. Children that pass the prune both continue the walk and
// (if accepted) enter the remaining steps — exactly advRun.walkDescendant
// with the per-child exchanges aggregated.
func (r *advBatch) scanLevel() error {
	scans := r.scans
	r.scans = nil
	live := scans[:0]
	for _, sc := range scans {
		if !r.done(sc.ctx) {
			live = append(live, sc)
		}
	}
	scans = live
	if len(scans) == 0 {
		return nil
	}
	pres := make([]int64, len(scans))
	for i, sc := range scans {
		pres[i] = sc.node.Pre
	}
	lists, err := r.e.cli.ChildrenBatch(pres)
	if err != nil {
		return err
	}
	var checks []filter.Check
	var cands []advScan // the kid in .node, walk params in .s/.rest
	for i, sc := range scans {
		if sc.s.IsNameTest() {
			v, mapped := r.e.val(sc.s.Name)
			if !mapped {
				continue // the name cannot occur: nothing to find below
			}
			for _, kid := range lists[i] {
				r.visited++
				checks = append(checks, filter.Check{Pre: kid.Pre, Point: v})
				cands = append(cands, advScan{node: kid, s: sc.s, rest: sc.rest, ctx: sc.ctx})
			}
		} else {
			// //*: every descendant qualifies and the walk continues below.
			for _, kid := range lists[i] {
				r.visited++
				r.push(kid, sc.rest, sc.ctx)
				r.scans = append(r.scans, advScan{node: kid, s: sc.s, rest: sc.rest, ctx: sc.ctx})
			}
		}
	}
	oks, err := r.e.cli.ContainsBatch(checks)
	if err != nil {
		return err
	}
	if r.test == Equality {
		var eqChecks []filter.Check
		var eqCands []advScan
		for i, ok := range oks {
			if !ok {
				continue // prune: nothing named s.Name anywhere below
			}
			kid := cands[i]
			r.scans = append(r.scans, advScan{node: kid.node, s: kid.s, rest: kid.rest, ctx: kid.ctx})
			eqChecks = append(eqChecks, checks[i])
			eqCands = append(eqCands, kid)
		}
		eqOks, err := r.e.cli.EqualsBatch(eqChecks)
		if err != nil {
			return err
		}
		for i, ok := range eqOks {
			if ok {
				r.push(eqCands[i].node, eqCands[i].rest, eqCands[i].ctx)
			}
		}
		return nil
	}
	for i, ok := range oks {
		if !ok {
			continue // prune: nothing named s.Name anywhere below
		}
		kid := cands[i]
		r.push(kid.node, kid.rest, kid.ctx)
		r.scans = append(r.scans, advScan{node: kid.node, s: kid.s, rest: kid.rest, ctx: kid.ctx})
	}
	return nil
}
