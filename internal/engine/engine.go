// Package engine implements the paper's two query engines (§5.3):
//
//   - SimpleQuery parses the query left to right, carrying a frontier of
//     candidate nodes and performing a single test per candidate per step.
//   - AdvancedQuery walks the tree root-to-leaf, and at every visited node
//     containment-checks ALL remaining query names against the node's
//     polynomial (which "has knowledge of all descendants"), pruning dead
//     branches early at the cost of more evaluations per node.
//
// Both engines run with either test (§6.3): non-strict (containment:
// cheap, may over-approximate) or strict (equality: exact, costs
// O(#children) reconstructions per accepted candidate). For a fixed test
// the two engines return identical result sets; they differ only in the
// work spent (the subject of Figs. 5 and 6).
//
// Both engines come in two execution modes. The default batched pipeline
// collects every check of a frontier (simple) or traversal wave
// (advanced) and issues it as a single filter exchange, so a remote
// query costs O(steps) round-trips instead of O(candidates) — including
// predicates, whose existence checks run as ONE multi-context traversal
// over the whole result frontier (evalRelativeBatch) instead of one
// traversal per candidate; the sequential mode (NewSimpleSequential /
// NewAdvancedSequential) keeps the paper's one-exchange-per-check
// protocol for measurement and compatibility. The two modes always
// return identical result sets; for queries without predicates they
// also perform the same checks in the same per-node order, so the work
// counters match exactly. Predicate evaluation short-circuits on the
// first witness, and a shared wave may do a little work past that
// point, so counters can legitimately differ there.
package engine

import (
	"errors"
	"sort"
	"time"

	"encshare/internal/filter"
	"encshare/internal/gf"
	"encshare/internal/mapping"
	"encshare/internal/xpath"
)

// Test selects the per-step matching rule.
type Test int

const (
	// Containment is the non-strict test: one evaluation pair per check.
	Containment Test = iota
	// Equality is the strict test: first-factor reconstruction.
	Equality
)

func (t Test) String() string {
	if t == Equality {
		return "strict"
	}
	return "non-strict"
}

// Stats describes the work one query run performed.
type Stats struct {
	// Evaluations is the number of containment point-tests (client+server
	// evaluation pairs) — the y-axis of Fig. 5.
	Evaluations int64
	// Reconstructions is the number of polynomial reconstructions done by
	// equality tests.
	Reconstructions int64
	// NodesFetched counts node metadata records pulled from the server.
	NodesFetched int64
	// NodesVisited counts candidate nodes the engine examined.
	NodesVisited int64
	// Decodes counts client-side share-blob decodes (the per-row cost of
	// equality tests; the limb codec made each one cheap, this makes
	// them visible).
	Decodes int64
	// Folds counts client shares folded into an aggregate accumulator —
	// zero for plain queries, the per-row client cost of the aggregation
	// phase when Session.Aggregate merges that phase's work in.
	Folds int64
	// Elapsed is the wall-clock execution time — the y-axis of Fig. 6.
	Elapsed time.Duration
}

// Result is a query answer: the pre positions of matched nodes, in
// document order.
type Result struct {
	Pres  []int64
	Stats Stats
}

// Engine is the common interface of the two strategies.
type Engine interface {
	// Run executes a parsed query under the given test.
	Run(q *xpath.Query, test Test) (Result, error)
	// Name identifies the strategy ("simple" or "advanced").
	Name() string
}

// base holds what both engines need: the client filter (seed side) and
// the secret map to translate names to evaluation points.
type base struct {
	cli *filter.Client
	m   *mapping.Map
	seq bool // sequential per-check protocol instead of the batched pipeline
}

// val resolves a query name to its evaluation point. A name absent from
// the map cannot occur in the encoded document (the map covers the whole
// tag/alphabet universe), so it is reported as unmappable rather than as
// an error — the XPath semantics of querying a nonexistent tag is an
// empty result, and a content search for a character outside the corpus
// alphabet must simply not match.
func (b *base) val(name string) (v gf.Elem, ok bool) {
	v, err := b.m.Value(name)
	if err != nil {
		var unknown *mapping.UnknownNameError
		if errors.As(err, &unknown) {
			return 0, false
		}
	}
	return v, true
}

// accept applies the selected test to one candidate.
func (b *base) accept(pre int64, name string, test Test) (bool, error) {
	v, ok := b.val(name)
	if !ok {
		return false, nil
	}
	if test == Equality {
		return b.cli.Equals(pre, v)
	}
	return b.cli.Contains(pre, v)
}

// acceptBatch applies the selected test to a whole candidate slice with
// a single filter exchange, returning the accepted subset in order.
func (b *base) acceptBatch(cands []filter.NodeMeta, name string, test Test) ([]filter.NodeMeta, error) {
	if len(cands) == 0 {
		return nil, nil
	}
	v, ok := b.val(name)
	if !ok {
		return nil, nil
	}
	checks := make([]filter.Check, len(cands))
	for i, c := range cands {
		checks[i] = filter.Check{Pre: c.Pre, Point: v}
	}
	var oks []bool
	var err error
	if test == Equality {
		oks, err = b.cli.EqualsBatch(checks)
	} else {
		oks, err = b.cli.ContainsBatch(checks)
	}
	if err != nil {
		return nil, err
	}
	var kept []filter.NodeMeta
	for i, ok := range oks {
		if ok {
			kept = append(kept, cands[i])
		}
	}
	return kept, nil
}

// run wraps an engine body with counter snapshots and timing.
func (b *base) run(body func() ([]int64, int64, error)) (Result, error) {
	before := b.cli.Counters.Snapshot()
	start := time.Now()
	pres, visited, err := body()
	elapsed := time.Since(start)
	if err != nil {
		return Result{}, err
	}
	d := b.cli.Counters.Snapshot().Sub(before)
	sort.Slice(pres, func(i, j int) bool { return pres[i] < pres[j] })
	return Result{
		Pres: pres,
		Stats: Stats{
			Evaluations:     d.Evaluations,
			Reconstructions: d.Reconstructions,
			NodesFetched:    d.NodesFetched,
			NodesVisited:    visited,
			Decodes:         d.Decodes,
			Folds:           d.Folds,
			Elapsed:         elapsed,
		},
	}, nil
}

// predEvaluator reports whether any node satisfies the relative query q
// from context node ctx — used for predicate filtering by both engines
// (the nested run reuses the engine's own step machinery).
type predEvaluator interface {
	evalRelative(ctx filter.NodeMeta, q *xpath.Query, test Test) (bool, error)
}

// batchPredEvaluator is the batched extension: one traversal answers the
// existence question for a whole slice of context nodes at once, so a
// predicate costs O(steps) filter exchanges instead of O(frontier)
// separate traversals. Both engines implement it; batchedPreds gates it
// off for the sequential twins (whose per-candidate cost is the point).
type batchPredEvaluator interface {
	predEvaluator
	batchedPreds() bool
	evalRelativeBatch(ctxs []filter.NodeMeta, q *xpath.Query, test Test) ([]bool, error)
}

// batchedPreds reports whether the engine runs predicates through the
// multi-context batch path.
func (b *base) batchedPreds() bool { return !b.seq }

func applyPreds(b predEvaluator, q *xpath.Query, test Test, frontier []filter.NodeMeta) ([]int64, error) {
	if len(q.Preds) > 0 && len(frontier) > 0 {
		if mb, ok := b.(batchPredEvaluator); ok && mb.batchedPreds() {
			return applyPredsBatch(mb, q, test, frontier)
		}
	}
	var out []int64
	for _, n := range frontier {
		keep := true
		for _, p := range q.Preds {
			ok, err := b.evalRelative(n, p, test)
			if err != nil {
				return nil, err
			}
			if !ok {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, n.Pre)
		}
	}
	return out, nil
}

// applyPredsBatch filters the frontier through each predicate with one
// multi-context traversal per predicate: all surviving candidates are
// carried as contexts of the same wave, so every traversal level costs
// a constant number of filter exchanges regardless of frontier width.
// Predicates stay conjunctive and short-circuit like the per-candidate
// loop: a candidate killed by predicate i is not carried into i+1.
func applyPredsBatch(b batchPredEvaluator, q *xpath.Query, test Test, frontier []filter.NodeMeta) ([]int64, error) {
	alive := frontier
	for _, p := range q.Preds {
		if len(alive) == 0 {
			break
		}
		oks, err := b.evalRelativeBatch(alive, p, test)
		if err != nil {
			return nil, err
		}
		var kept []filter.NodeMeta
		for i, ok := range oks {
			if ok {
				kept = append(kept, alive[i])
			}
		}
		alive = kept
	}
	var out []int64
	for _, n := range alive {
		out = append(out, n.Pre)
	}
	return out, nil
}

// taggedMeta couples a candidate node with the index of the predicate
// context it descends from, so one shared traversal can attribute its
// survivors back to their contexts.
type taggedMeta struct {
	m   filter.NodeMeta
	ctx int
}

// dedupTagged dedups by (context, pre) and restores per-context pre
// order — the multi-context analogue of dedupMetas, keeping each
// context's candidate set exactly what its solo traversal would carry.
func dedupTagged(ms []taggedMeta) []taggedMeta {
	seen := make(map[taggedKey]bool, len(ms))
	out := ms[:0]
	for _, tm := range ms {
		k := taggedKey{tm.ctx, tm.m.Pre}
		if !seen[k] {
			seen[k] = true
			out = append(out, tm)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ctx != out[j].ctx {
			return out[i].ctx < out[j].ctx
		}
		return out[i].m.Pre < out[j].m.Pre
	})
	return out
}

type taggedKey struct {
	ctx int
	pre int64
}

func dedupMetas(ms []filter.NodeMeta) []filter.NodeMeta {
	seen := make(map[int64]bool, len(ms))
	out := ms[:0]
	for _, m := range ms {
		if !seen[m.Pre] {
			seen[m.Pre] = true
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pre < out[j].Pre })
	return out
}
