package engine

import (
	"testing"

	"encshare/internal/encoder"
	"encshare/internal/filter"
	"encshare/internal/gf"
	"encshare/internal/mapping"
	"encshare/internal/minisql"
	"encshare/internal/prg"
	"encshare/internal/ring"
	"encshare/internal/secshare"
	"encshare/internal/store"
	"encshare/internal/trie"
	"encshare/internal/xmark"
	"encshare/internal/xmldoc"
	"encshare/internal/xpath"
)

// fixture is an encrypted database plus engines and a plaintext oracle.
type fixture struct {
	doc      *xmldoc.Doc
	m        *mapping.Map
	oracle   *xpath.Oracle
	simple   *Simple
	advanced *Advanced
	cli      *filter.Client
	server   *filter.ServerFilter
	scheme   *secshare.Scheme
}

// build encodes doc (already trie-transformed if desired) into a fresh
// store and wires up the engines.
func build(t testing.TB, doc *xmldoc.Doc, extraNames []string) *fixture {
	t.Helper()
	f := gf.MustNew(251, 1) // roomy field: tags + alphabet fit
	names := append(doc.Names(), extraNames...)
	m, err := mapping.Generate(f, names)
	if err != nil {
		t.Fatal(err)
	}
	r := ring.MustNew(f)
	scheme := secshare.New(r, prg.New([]byte("engine-test")))

	dsn := minisql.FreshDSN()
	st, err := store.Open(dsn)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Init(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		st.Close()
		minisql.Drop(dsn)
	})
	if _, err := encoder.EncodeDoc(doc, encoder.Options{Map: m, Scheme: scheme}, st); err != nil {
		t.Fatal(err)
	}
	server := filter.NewServerFilter(st, r, 1024)
	cli := filter.NewClient(server, scheme)
	return &fixture{
		doc:      doc,
		m:        m,
		oracle:   xpath.NewOracle(doc),
		simple:   NewSimple(cli, m),
		advanced: NewAdvanced(cli, m),
		cli:      cli,
		server:   server,
		scheme:   scheme,
	}
}

func buildXML(t testing.TB, xml string) *fixture {
	t.Helper()
	doc, err := xmldoc.ParseString(xml)
	if err != nil {
		t.Fatal(err)
	}
	return build(t, doc, nil)
}

func equalPres(a []int64, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

const smallXML = `<site>
  <regions>
    <europe><item><name/><description><text><keyword/></text></description></item><item><name/></item></europe>
    <asia><item><name/></item></asia>
    <africa/>
  </regions>
  <people>
    <person><name/><address><city/></address></person>
    <person><name/></person>
  </people>
  <open_auctions>
    <open_auction><bidder><date/></bidder><bidder><date/></bidder><itemref/></open_auction>
    <open_auction><itemref/></open_auction>
  </open_auctions>
</site>`

var testQueries = []string{
	"/site",
	"/site/regions",
	"/site/regions/europe",
	"/site/regions/europe/item",
	"/site/regions/europe/item/name",
	"/site//item",
	"/site//europe/item",
	"/site//europe//item",
	"/site/*/person",
	"/site/*/person//city",
	"/*/*/open_auction/bidder/date",
	"//bidder/date",
	"//city",
	"//item/name",
	"/site/regions/../people/person",
	"/nothing/here",
	"//*",
	"/*",
}

// TestEnginesMatchOracle is the central correctness test: for every query
// and every (engine, test) combination, the encrypted result must equal
// the plaintext oracle's prediction for the corresponding match mode.
func TestEnginesMatchOracle(t *testing.T) {
	fx := buildXML(t, smallXML)
	for _, qs := range testQueries {
		q := xpath.MustParse(qs)
		for _, test := range []Test{Containment, Equality} {
			mode := xpath.MatchContain
			if test == Equality {
				mode = xpath.MatchEqual
			}
			want := xpath.Pres(fx.oracle.Eval(q, mode))
			for _, eng := range []Engine{fx.simple, fx.advanced} {
				got, err := eng.Run(q, test)
				if err != nil {
					t.Fatalf("%s %s %s: %v", eng.Name(), test, qs, err)
				}
				if !equalPres(got.Pres, want) {
					t.Errorf("%s/%s on %s: got %v, want %v", eng.Name(), test, qs, got.Pres, want)
				}
			}
		}
	}
}

// TestEnginesAgreeOnXMark runs both engines over a real XMark document.
func TestEnginesAgreeOnXMark(t *testing.T) {
	doc := xmark.Generate(xmark.Config{Scale: 0.02, Seed: 11})
	fx := build(t, doc, nil)
	queries := []string{
		"/site//europe/item",
		"/site/*/person//city",
		"//bidder/date",
		"/site/regions/europe/item/description",
	}
	for _, qs := range queries {
		q := xpath.MustParse(qs)
		for _, test := range []Test{Containment, Equality} {
			mode := xpath.MatchContain
			if test == Equality {
				mode = xpath.MatchEqual
			}
			want := xpath.Pres(fx.oracle.Eval(q, mode))
			s, err := fx.simple.Run(q, test)
			if err != nil {
				t.Fatal(err)
			}
			a, err := fx.advanced.Run(q, test)
			if err != nil {
				t.Fatal(err)
			}
			if !equalPres(s.Pres, want) || !equalPres(a.Pres, want) {
				t.Errorf("%s/%s: simple=%d advanced=%d oracle=%d nodes",
					qs, test, len(s.Pres), len(a.Pres), len(want))
			}
		}
	}
}

// TestEqualitySubsetOfContainment: E ⊆ C for every query (Fig. 7's
// premise).
func TestEqualitySubsetOfContainment(t *testing.T) {
	fx := buildXML(t, smallXML)
	for _, qs := range testQueries {
		q := xpath.MustParse(qs)
		eq, err := fx.simple.Run(q, Equality)
		if err != nil {
			t.Fatal(err)
		}
		co, err := fx.simple.Run(q, Containment)
		if err != nil {
			t.Fatal(err)
		}
		inC := map[int64]bool{}
		for _, p := range co.Pres {
			inC[p] = true
		}
		for _, p := range eq.Pres {
			if !inC[p] {
				t.Errorf("%s: equality hit %d not in containment result", qs, p)
			}
		}
	}
}

// TestWorstCaseChainCosts reproduces the shape of Fig. 5: on straight
// child-only chains the advanced engine evaluates at least as much as the
// simple engine (look-ahead buys nothing), within a constant factor.
func TestWorstCaseChainCosts(t *testing.T) {
	doc := xmark.Generate(xmark.Config{Scale: 0.02, Seed: 4})
	fx := build(t, doc, nil)
	q := xpath.MustParse("/site/regions/europe/item/description")
	s, err := fx.simple.Run(q, Containment)
	if err != nil {
		t.Fatal(err)
	}
	a, err := fx.advanced.Run(q, Containment)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats.Evaluations < s.Stats.Evaluations {
		t.Errorf("advanced evaluated less (%d) than simple (%d) on a chain query",
			a.Stats.Evaluations, s.Stats.Evaluations)
	}
	if a.Stats.Evaluations > 6*s.Stats.Evaluations {
		t.Errorf("advanced/simple evaluation ratio %d/%d exceeds a small constant",
			a.Stats.Evaluations, s.Stats.Evaluations)
	}
}

// TestAdvancedPrunes reproduces the shape of Fig. 6: on // queries the
// advanced engine visits fewer nodes than the simple engine.
func TestAdvancedPrunes(t *testing.T) {
	doc := xmark.Generate(xmark.Config{Scale: 0.02, Seed: 4})
	fx := build(t, doc, nil)
	for _, qs := range []string{"/site/*/person//city", "/site//europe/item"} {
		q := xpath.MustParse(qs)
		s, err := fx.simple.Run(q, Containment)
		if err != nil {
			t.Fatal(err)
		}
		a, err := fx.advanced.Run(q, Containment)
		if err != nil {
			t.Fatal(err)
		}
		if a.Stats.NodesVisited >= s.Stats.NodesVisited {
			t.Errorf("%s: advanced visited %d nodes, simple %d — no pruning benefit",
				qs, a.Stats.NodesVisited, s.Stats.NodesVisited)
		}
	}
}

// TestTrieContentSearch: end-to-end §4 — search inside text content.
func TestTrieContentSearch(t *testing.T) {
	doc, err := xmldoc.ParseString(
		`<people><person><name>Joan Johnson</name></person><person><name>Bob Miller</name></person><person><name>Joanna Keller</name></person></people>`)
	if err != nil {
		t.Fatal(err)
	}
	words := trie.Words("Joan Johnson Bob Miller Joanna Keller")
	alphabet := trie.Alphabet(words)
	trie.TransformDoc(doc, trie.Compressed)
	fx := build(t, doc, alphabet)

	cases := []struct {
		q    string
		want int
	}{
		{`/people/person[contains(text(),"Joan")]`, 2}, // Joan + Joanna (prefix)
		{`/people/person[text()="joan"]`, 1},           // exact word
		{`/people/person[contains(text(),"miller")]`, 1},
		{`/people/person[contains(text(),"xavier")]`, 0},
		{`/people/person[contains(text(),"Joan Johnson")]`, 1}, // both words
	}
	for _, c := range cases {
		q := xpath.MustParse(c.q)
		for _, eng := range []Engine{fx.simple, fx.advanced} {
			got, err := eng.Run(q, Equality)
			if err != nil {
				t.Fatalf("%s %s: %v", eng.Name(), c.q, err)
			}
			if len(got.Pres) != c.want {
				t.Errorf("%s on %s: %d matches, want %d", eng.Name(), c.q, len(got.Pres), c.want)
			}
			// Oracle agreement.
			want := xpath.Pres(fx.oracle.Eval(q, xpath.MatchEqual))
			if !equalPres(got.Pres, want) {
				t.Errorf("%s on %s: %v != oracle %v", eng.Name(), c.q, got.Pres, want)
			}
		}
	}
}

func TestUnknownQueryName(t *testing.T) {
	// Names outside the map universe cannot occur in the document:
	// the result is empty, matching XPath semantics for missing tags.
	fx := buildXML(t, `<a><b/></a>`)
	for _, eng := range []Engine{fx.simple, fx.advanced} {
		res, err := eng.Run(xpath.MustParse("/a/zzz"), Containment)
		if err != nil {
			t.Fatalf("%s: %v", eng.Name(), err)
		}
		if len(res.Pres) != 0 {
			t.Fatalf("%s: unknown name matched %v", eng.Name(), res.Pres)
		}
	}
}

func TestStatsPopulated(t *testing.T) {
	fx := buildXML(t, smallXML)
	res, err := fx.simple.Run(xpath.MustParse("/site//item"), Containment)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Evaluations == 0 || st.NodesVisited == 0 || st.NodesFetched == 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
	if st.Elapsed <= 0 {
		t.Fatal("Elapsed not measured")
	}
	res, err = fx.simple.Run(xpath.MustParse("/site"), Equality)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Reconstructions == 0 {
		t.Fatal("equality run did not count reconstructions")
	}
}

func TestResultsSortedAndDeduped(t *testing.T) {
	fx := buildXML(t, smallXML)
	// //item//name style queries can reach the same node via multiple
	// intermediate matches.
	res, err := fx.advanced.Run(xpath.MustParse("//regions//name"), Containment)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Pres); i++ {
		if res.Pres[i-1] >= res.Pres[i] {
			t.Fatalf("result not sorted/deduped: %v", res.Pres)
		}
	}
}

func BenchmarkSimpleContainment(b *testing.B) {
	doc := xmark.Generate(xmark.Config{Scale: 0.05, Seed: 1})
	fx := build(b, doc, nil)
	q := xpath.MustParse("/site/*/person//city")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fx.simple.Run(q, Containment); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAdvancedContainment(b *testing.B) {
	doc := xmark.Generate(xmark.Config{Scale: 0.05, Seed: 1})
	fx := build(b, doc, nil)
	q := xpath.MustParse("/site/*/person//city")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fx.advanced.Run(q, Containment); err != nil {
			b.Fatal(err)
		}
	}
}
