package engine

import (
	"testing"

	"encshare/internal/filter"
	"encshare/internal/rmi"
	"encshare/internal/xmark"
	"encshare/internal/xmldoc"
	"encshare/internal/xpath"
)

// remoteDoc wires a fixture's server behind a counting rmi proxy and
// returns batched engines running over it.
func remoteDoc(t testing.TB, doc *xmldoc.Doc) (*fixture, *filter.Remote, *Simple, *Advanced) {
	t.Helper()
	fx := build(t, doc, nil)
	srv := rmi.NewServer()
	filter.RegisterServer(srv, fx.server)
	rmiCli := rmi.Pipe(srv)
	t.Cleanup(func() { rmiCli.Close() })
	rem := filter.NewRemote(rmiCli)
	cli := filter.NewClient(rem, fx.scheme)
	return fx, rem, NewSimple(cli, fx.m), NewAdvanced(cli, fx.m)
}

// totalNameSteps counts the location steps that trigger a filter test
// across the main path and every predicate.
func totalNameSteps(q *xpath.Query) int64 {
	n := nameSteps(q)
	for _, p := range q.Preds {
		n += nameSteps(p)
	}
	return n
}

// TestPredicateEvalExchangesPerStep pins the batched-predicate bound on
// the XMark 0.1 corpus: a simple-engine predicate query costs AT MOST
// ONE evaluation exchange per location step — main path and predicate
// steps combined — where the per-candidate predicate loop used to cost
// one traversal per frontier candidate. The frontier sizes are asserted
// to dwarf the bound, so the test genuinely distinguishes O(steps) from
// O(frontier).
func TestPredicateEvalExchangesPerStep(t *testing.T) {
	doc := xmark.Generate(xmark.Config{Scale: 0.1, Seed: 42})
	fx, rem, simple, advanced := remoteDoc(t, doc)

	for _, tc := range []struct {
		query string
		base  string // the same path without predicates = the frontier the preds filter
	}{
		{"//item[//keyword]", "//item"},
		{"/site//person[//city]", "/site//person"},
		{"/site//open_auction[//date]", "/site//open_auction"},
	} {
		q := xpath.MustParse(tc.query)
		frontier := len(fx.oracle.Eval(xpath.MustParse(tc.base), xpath.MatchContain))
		bound := totalNameSteps(q)
		if int64(frontier) <= bound {
			t.Fatalf("%s: frontier %d not larger than the step bound %d — workload too small to prove the bound",
				tc.query, frontier, bound)
		}

		before := rem.EvalRoundTrips()
		res, err := simple.Run(q, Containment)
		if err != nil {
			t.Fatalf("%s: %v", tc.query, err)
		}
		rtts := rem.EvalRoundTrips() - before
		if rtts > bound {
			t.Errorf("%s: %d evaluation exchanges for %d location steps (frontier %d candidates)",
				tc.query, rtts, bound, frontier)
		}

		// The advanced engine spends one look-ahead exchange per pending
		// name per wave — O(depth × names), not one-per-step — but must
		// likewise stay independent of the frontier width.
		before = rem.EvalRoundTrips()
		ares, err := advanced.Run(q, Containment)
		if err != nil {
			t.Fatalf("advanced %s: %v", tc.query, err)
		}
		if rtts := rem.EvalRoundTrips() - before; rtts >= int64(frontier) {
			t.Errorf("advanced %s: %d evaluation exchanges for a %d-candidate frontier — predicate cost is still O(frontier)",
				tc.query, rtts, frontier)
		}

		// Results must equal the plaintext oracle for both engines.
		want := xpath.Pres(fx.oracle.Eval(q, xpath.MatchContain))
		if !equalPres(res.Pres, want) {
			t.Errorf("simple %s: got %v, want %v", tc.query, res.Pres, want)
		}
		if !equalPres(ares.Pres, want) {
			t.Errorf("advanced %s: got %v, want %v", tc.query, ares.Pres, want)
		}
	}
}

// TestPredicateBatchMatchesSequentialStrict repeats the predicate parity
// check in strict mode on a non-trivial corpus: the multi-context
// predicate traversal must keep result sets identical to the
// per-candidate sequential loop under both tests.
func TestPredicateBatchMatchesSequentialStrict(t *testing.T) {
	doc := xmark.Generate(xmark.Config{Scale: 0.05, Seed: 9})
	fx := build(t, doc, nil)
	simpleSeq, advancedSeq := seqEngines(fx)
	for _, qs := range []string{
		"//item[//keyword]",
		"/site//person[//city]",
		"/site/regions/*[//name]",
		"//open_auction[//date][//itemref]",
	} {
		q := xpath.MustParse(qs)
		for _, test := range []Test{Containment, Equality} {
			for _, pair := range []struct {
				name       string
				batched    Engine
				sequential Engine
			}{
				{"simple", fx.simple, simpleSeq},
				{"advanced", fx.advanced, advancedSeq},
			} {
				br, err := pair.batched.Run(q, test)
				if err != nil {
					t.Fatalf("%s/%s batched %s: %v", pair.name, test, qs, err)
				}
				sr, err := pair.sequential.Run(q, test)
				if err != nil {
					t.Fatalf("%s/%s sequential %s: %v", pair.name, test, qs, err)
				}
				if !equalPres(br.Pres, sr.Pres) {
					t.Errorf("%s/%s on %s: batched %v != sequential %v", pair.name, test, qs, br.Pres, sr.Pres)
				}
			}
		}
	}
}
