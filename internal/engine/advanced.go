package engine

import (
	"encshare/internal/filter"
	"encshare/internal/mapping"
	"encshare/internal/xpath"
)

// Advanced is the AdvancedQuery engine of §5.3: a root-to-leaf traversal
// with look-ahead. At every visited node it containment-checks all
// remaining query names (the node's polynomial knows its whole subtree),
// so dead branches are abandoned as early as possible at the cost of more
// evaluations per node. For Table 1's straight-line queries this is the
// worst case (no branch to prune, extra evaluations); for Table 2's
// queries with // and * it wins by skipping whole regions (§6.2–6.3).
//
// The default batched mode runs the same traversal level-synchronously
// (see advanced_batch.go), aggregating every wave's checks into single
// exchanges; sequential mode keeps the paper's depth-first recursion.
type Advanced struct {
	base
}

// NewAdvanced builds an advanced engine over a client filter and the
// secret map, using the batched wave traversal.
func NewAdvanced(cli *filter.Client, m *mapping.Map) *Advanced {
	return &Advanced{base{cli: cli, m: m}}
}

// NewAdvancedSequential builds an advanced engine that issues one server
// exchange per check (the paper's depth-first protocol) — kept for
// measurement and for servers that predate the batch protocol.
func NewAdvancedSequential(cli *filter.Client, m *mapping.Map) *Advanced {
	return &Advanced{base{cli: cli, m: m, seq: true}}
}

// Name implements Engine.
func (e *Advanced) Name() string { return "advanced" }

// Run implements Engine.
func (e *Advanced) Run(q *xpath.Query, test Test) (Result, error) {
	return e.run(func() ([]int64, int64, error) {
		var out []filter.NodeMeta
		var visited int64
		if e.seq {
			r := &advRun{e: e, test: test, preds: q.Preds}
			if err := r.start(q.Steps); err != nil {
				return nil, 0, err
			}
			out, visited = r.out, r.visited
		} else {
			r := &advBatch{e: e, test: test, preds: q.Preds}
			if err := r.start(q.Steps); err != nil {
				return nil, 0, err
			}
			out, visited = r.out, r.visited
		}
		frontier := dedupMetas(out)
		pres, err := applyPreds(e, q, test, frontier)
		return pres, visited, err
	})
}

// evalRelative implements predEvaluator with an existence short-circuit.
func (e *Advanced) evalRelative(ctx filter.NodeMeta, q *xpath.Query, test Test) (bool, error) {
	if e.seq {
		r := &advRun{e: e, test: test, existsOnly: true}
		if err := r.fromContext(ctx, q.Steps); err != nil {
			return false, err
		}
		return r.found, nil
	}
	oks, err := e.evalRelativeBatch([]filter.NodeMeta{ctx}, q, test)
	if err != nil {
		return false, err
	}
	return oks[0], nil
}

// evalRelativeBatch implements batchPredEvaluator: one wave traversal
// answers the existence question for every context at once — each
// context's branches ride the same per-wave exchanges, and a witnessed
// context stops spending work. See advBatch.
func (e *Advanced) evalRelativeBatch(ctxs []filter.NodeMeta, q *xpath.Query, test Test) ([]bool, error) {
	r := &advBatch{e: e, test: test, existsOnly: true, found: make([]bool, len(ctxs)), pending: len(ctxs)}
	for i, ctx := range ctxs {
		r.push(ctx, q.Steps, i)
	}
	if err := r.drain(); err != nil {
		return nil, err
	}
	return r.found, nil
}

// advRun is the state of one traversal.
type advRun struct {
	e          *Advanced
	test       Test
	preds      []*xpath.Query // top-level predicates, folded into look-ahead
	visited    int64
	out        []filter.NodeMeta
	existsOnly bool
	found      bool
}

// lookahead returns the names the traversal can require in the current
// subtree (see lookaheadNames).
func (r *advRun) lookahead(steps []xpath.Step) []string {
	return lookaheadNames(steps, r.preds)
}

// lookaheadNames returns the distinct names the engine can safely
// require in the current subtree: name tests up to the first parent step
// (a ".." lets candidates escape the subtree), plus predicate names when
// the remaining path has no parent steps (predicates apply below result
// nodes, which are then inside the subtree). Shared by the depth-first
// and the wave-based traversals.
func lookaheadNames(steps []xpath.Step, preds []*xpath.Query) []string {
	seen := map[string]bool{}
	var names []string
	sawParent := false
	for _, s := range steps {
		if s.Name == xpath.ParentStep {
			sawParent = true
			break
		}
		if s.IsNameTest() && !seen[s.Name] {
			seen[s.Name] = true
			names = append(names, s.Name)
		}
	}
	if !sawParent {
		for _, p := range preds {
			if predHasParentStep(p) {
				continue
			}
			for _, n := range p.Names() {
				if !seen[n] {
					seen[n] = true
					names = append(names, n)
				}
			}
		}
	}
	return names
}

func predHasParentStep(q *xpath.Query) bool {
	for _, s := range q.Steps {
		if s.Name == xpath.ParentStep {
			return true
		}
	}
	return false
}

// start handles the virtual document root: the first step addresses the
// document root itself (child axis) or every node (descendant axis).
func (r *advRun) start(steps []xpath.Step) error {
	if len(steps) == 0 {
		return nil
	}
	root, err := r.e.cli.Root()
	if err != nil {
		return err
	}
	s := steps[0]
	if s.Name == xpath.ParentStep {
		return nil // the virtual root has no parent: empty result
	}
	switch s.Axis {
	case xpath.Child:
		// "The AdvancedQuery engine always starts at the root node."
		r.visited++
		if s.IsNameTest() {
			ok, err := r.e.accept(root.Pre, s.Name, r.test)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		}
		return r.rec(root, steps[1:])
	case xpath.Descendant:
		// The root itself is a candidate, then walk downwards.
		r.visited++
		if s.IsNameTest() {
			ok, err := r.e.accept(root.Pre, s.Name, r.test)
			if err != nil {
				return err
			}
			if ok {
				if err := r.rec(root, steps[1:]); err != nil {
					return err
				}
			}
		} else {
			if err := r.rec(root, steps[1:]); err != nil {
				return err
			}
		}
		return r.walkDescendant(root, s, steps[1:])
	}
	return nil
}

// fromContext runs relative steps from an accepted context node (used by
// predicate evaluation).
func (r *advRun) fromContext(ctx filter.NodeMeta, steps []xpath.Step) error {
	return r.rec(ctx, steps)
}

// rec processes the remaining steps below an accepted node. It first
// applies the look-ahead prune, then consumes one step.
func (r *advRun) rec(node filter.NodeMeta, steps []xpath.Step) error {
	if r.existsOnly && r.found {
		return nil
	}
	// Look-ahead: all remaining names must occur in this subtree. (The
	// containment test here is exactly the cheap evaluation of §3.)
	for _, name := range r.lookahead(steps) {
		v, mapped := r.e.val(name)
		if !mapped {
			return nil // name cannot occur anywhere: dead branch
		}
		ok, err := r.e.cli.Contains(node.Pre, v)
		if err != nil {
			return err
		}
		if !ok {
			return nil // dead branch
		}
	}
	if len(steps) == 0 {
		if r.existsOnly {
			r.found = true
		} else {
			r.out = append(r.out, node)
		}
		return nil
	}
	s := steps[0]
	rest := steps[1:]

	if s.Name == xpath.ParentStep {
		if node.Parent == 0 {
			return nil
		}
		parent, err := r.e.cli.Node(node.Parent)
		if err != nil {
			return err
		}
		r.visited++
		return r.rec(parent, rest)
	}

	switch s.Axis {
	case xpath.Child:
		kids, err := r.e.cli.Children(node.Pre)
		if err != nil {
			return err
		}
		for _, kid := range kids {
			if r.existsOnly && r.found {
				return nil
			}
			r.visited++
			if s.IsNameTest() {
				ok, err := r.e.accept(kid.Pre, s.Name, r.test)
				if err != nil {
					return err
				}
				if !ok {
					continue
				}
			}
			if err := r.rec(kid, rest); err != nil {
				return err
			}
		}
	case xpath.Descendant:
		return r.walkDescendant(node, s, rest)
	}
	return nil
}

// walkDescendant implements the paper's "interactively walk downwards in
// the tree evaluating the polynomials ... until this results in a
// non-zero sum": children whose subtrees cannot contain the name are
// skipped wholesale; matching nodes continue with the remaining steps,
// and the walk descends past them for deeper matches.
func (r *advRun) walkDescendant(node filter.NodeMeta, s xpath.Step, rest []xpath.Step) error {
	kids, err := r.e.cli.Children(node.Pre)
	if err != nil {
		return err
	}
	var nameVal uint32
	if s.IsNameTest() {
		var mapped bool
		nameVal, mapped = r.e.val(s.Name)
		if !mapped {
			return nil // the name cannot occur: nothing to find below
		}
	}
	for _, kid := range kids {
		if r.existsOnly && r.found {
			return nil
		}
		r.visited++
		if s.IsNameTest() {
			contains, err := r.e.cli.Contains(kid.Pre, nameVal)
			if err != nil {
				return err
			}
			if !contains {
				continue // prune: nothing named s.Name anywhere below
			}
			accepted := true
			if r.test == Equality {
				accepted, err = r.e.cli.Equals(kid.Pre, nameVal)
				if err != nil {
					return err
				}
			}
			if accepted {
				if err := r.rec(kid, rest); err != nil {
					return err
				}
			}
		} else {
			// //*: every descendant qualifies.
			if err := r.rec(kid, rest); err != nil {
				return err
			}
		}
		if err := r.walkDescendant(kid, s, rest); err != nil {
			return err
		}
	}
	return nil
}
