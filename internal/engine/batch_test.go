package engine

import (
	"testing"

	"encshare/internal/filter"
	"encshare/internal/rmi"
	"encshare/internal/xmark"
	"encshare/internal/xpath"
)

// seqEngines returns sequential twins of the fixture's (batched) engines,
// sharing the same client filter and counters.
func seqEngines(fx *fixture) (*Simple, *Advanced) {
	return NewSimpleSequential(fx.cli, fx.m), NewAdvancedSequential(fx.cli, fx.m)
}

// predQueries exercise the predicate machinery, whose existence
// short-circuit legitimately reorders work between the two modes (result
// sets must still agree; counters need not).
var predQueries = []string{
	"/site//person[//city]",
	"/site/regions/*[//name]",
	"/site//item[//keyword]",
}

// TestBatchedMatchesSequential is the batch pipeline's central
// correctness test: for every query, engine, and test, the batched run
// must return the same result set as the sequential run — and, for
// queries without predicates, perform exactly the same work (same
// evaluations, reconstructions, fetches, and visits; only the number of
// round-trips differs).
func TestBatchedMatchesSequential(t *testing.T) {
	fx := buildXML(t, smallXML)
	simpleSeq, advancedSeq := seqEngines(fx)
	pairs := []struct {
		name    string
		batched Engine
		seq     Engine
	}{
		{"simple", fx.simple, simpleSeq},
		{"advanced", fx.advanced, advancedSeq},
	}
	for _, qs := range testQueries {
		q := xpath.MustParse(qs)
		for _, test := range []Test{Containment, Equality} {
			for _, p := range pairs {
				br, err := p.batched.Run(q, test)
				if err != nil {
					t.Fatalf("%s/%s batched %s: %v", p.name, test, qs, err)
				}
				sr, err := p.seq.Run(q, test)
				if err != nil {
					t.Fatalf("%s/%s sequential %s: %v", p.name, test, qs, err)
				}
				if !equalPres(br.Pres, sr.Pres) {
					t.Errorf("%s/%s on %s: batched %v != sequential %v",
						p.name, test, qs, br.Pres, sr.Pres)
				}
				if br.Stats.Evaluations != sr.Stats.Evaluations ||
					br.Stats.Reconstructions != sr.Stats.Reconstructions ||
					br.Stats.NodesFetched != sr.Stats.NodesFetched ||
					br.Stats.NodesVisited != sr.Stats.NodesVisited {
					t.Errorf("%s/%s on %s: batched work %+v != sequential %+v",
						p.name, test, qs, br.Stats, sr.Stats)
				}
			}
		}
	}
	for _, qs := range predQueries {
		q := xpath.MustParse(qs)
		for _, test := range []Test{Containment, Equality} {
			for _, p := range pairs {
				br, err := p.batched.Run(q, test)
				if err != nil {
					t.Fatalf("%s/%s batched %s: %v", p.name, test, qs, err)
				}
				sr, err := p.seq.Run(q, test)
				if err != nil {
					t.Fatalf("%s/%s sequential %s: %v", p.name, test, qs, err)
				}
				if !equalPres(br.Pres, sr.Pres) {
					t.Errorf("%s/%s on %s: batched %v != sequential %v",
						p.name, test, qs, br.Pres, sr.Pres)
				}
			}
		}
	}
}

// TestBatchedMatchesSequentialOnXMark repeats the parity check on a real
// XMark document, where frontiers are wide enough for batches to matter.
func TestBatchedMatchesSequentialOnXMark(t *testing.T) {
	doc := xmark.Generate(xmark.Config{Scale: 0.02, Seed: 7})
	fx := build(t, doc, nil)
	simpleSeq, advancedSeq := seqEngines(fx)
	queries := []string{
		"/site//europe/item",
		"/site/*/person//city",
		"//bidder/date",
		"/site/regions/europe/item/description",
	}
	for _, qs := range queries {
		q := xpath.MustParse(qs)
		for _, test := range []Test{Containment, Equality} {
			for _, pair := range [][2]Engine{{fx.simple, simpleSeq}, {fx.advanced, advancedSeq}} {
				br, err := pair[0].Run(q, test)
				if err != nil {
					t.Fatal(err)
				}
				sr, err := pair[1].Run(q, test)
				if err != nil {
					t.Fatal(err)
				}
				if !equalPres(br.Pres, sr.Pres) {
					t.Errorf("%s/%s/%s: batched %d results, sequential %d",
						pair[0].Name(), test, qs, len(br.Pres), len(sr.Pres))
				}
				if br.Stats.Evaluations != sr.Stats.Evaluations {
					t.Errorf("%s/%s/%s: batched %d evaluations, sequential %d",
						pair[0].Name(), test, qs, br.Stats.Evaluations, sr.Stats.Evaluations)
				}
			}
		}
	}
}

// remoteFixture runs the engines over the RMI transport with a counting
// proxy, so tests can assert on actual round-trips.
type remoteFixture struct {
	*fixture
	rem *filter.Remote
}

func buildRemote(t testing.TB, xml string) *remoteFixture {
	t.Helper()
	fx := buildXML(t, xml)
	srv := rmi.NewServer()
	filter.RegisterServer(srv, fx.server)
	rmiCli := rmi.Pipe(srv)
	t.Cleanup(func() { rmiCli.Close() })
	rem := filter.NewRemote(rmiCli)
	cli := filter.NewClient(rem, fx.scheme)
	rfx := &remoteFixture{fixture: fx, rem: rem}
	rfx.cli = cli
	rfx.simple = NewSimple(cli, fx.m)
	rfx.advanced = NewAdvanced(cli, fx.m)
	return rfx
}

// nameSteps counts the steps of a query that trigger a filter test (name
// tests: not wildcards, not parent steps).
func nameSteps(q *xpath.Query) int64 {
	var n int64
	for _, s := range q.Steps {
		if s.IsNameTest() {
			n++
		}
	}
	return n
}

// TestRemoteRoundTripsPerStep verifies the acceptance property of the
// batch pipeline: a remote simple-engine query issues AT MOST ONE filter
// (evaluation) round-trip per engine step, and none through the per-call
// method.
func TestRemoteRoundTripsPerStep(t *testing.T) {
	rfx := buildRemote(t, smallXML)
	for _, qs := range []string{
		"/site/regions/europe/item",
		"/site//item",
		"//bidder/date",
		"/site/*/person",
		"/site/regions/../people/person",
	} {
		q := xpath.MustParse(qs)
		before := rfx.rem.EvalRoundTrips()
		if _, err := rfx.simple.Run(q, Containment); err != nil {
			t.Fatalf("%s: %v", qs, err)
		}
		rtts := rfx.rem.EvalRoundTrips() - before
		if max := nameSteps(q); rtts > max {
			t.Errorf("%s: %d evaluation round-trips for %d name steps", qs, rtts, max)
		}
	}
	if n := rfx.rem.CallCounts()["filter.EvalAt"]; n != 0 {
		t.Errorf("batched pipeline issued %d per-call evaluations", n)
	}
	// Parent steps ride the batched frame too, never per-call Node floods.
	if n := rfx.rem.CallCounts()["filter.Node"]; n != 0 {
		t.Errorf("batched pipeline issued %d per-call node fetches", n)
	}
}

// TestBatchedReducesRoundTrips: on a document with non-trivial frontiers
// the batched pipeline must cost strictly fewer server exchanges than
// the per-call protocol, for both engines and both tests.
func TestBatchedReducesRoundTrips(t *testing.T) {
	doc := xmark.Generate(xmark.Config{Scale: 0.02, Seed: 7})
	fx := build(t, doc, nil)
	srv := rmi.NewServer()
	filter.RegisterServer(srv, fx.server)
	rmiCli := rmi.Pipe(srv)
	t.Cleanup(func() { rmiCli.Close() })
	rem := filter.NewRemote(rmiCli)
	cli := filter.NewClient(rem, fx.scheme)

	engines := []struct {
		name    string
		batched Engine
		seq     Engine
	}{
		{"simple", NewSimple(cli, fx.m), NewSimpleSequential(cli, fx.m)},
		{"advanced", NewAdvanced(cli, fx.m), NewAdvancedSequential(cli, fx.m)},
	}
	q := xpath.MustParse("/site//europe/item")
	for _, e := range engines {
		for _, test := range []Test{Containment, Equality} {
			before := rem.RoundTrips()
			if _, err := e.batched.Run(q, test); err != nil {
				t.Fatal(err)
			}
			batched := rem.RoundTrips() - before
			before = rem.RoundTrips()
			if _, err := e.seq.Run(q, test); err != nil {
				t.Fatal(err)
			}
			seq := rem.RoundTrips() - before
			if batched >= seq {
				t.Errorf("%s/%s: batched pipeline used %d round-trips, per-call %d",
					e.name, test, batched, seq)
			}
			t.Logf("%s/%s: %d round-trips batched vs %d per-call", e.name, test, batched, seq)
		}
	}
}
