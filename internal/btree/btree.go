// Package btree implements an in-memory B-tree keyed by (int64 key,
// int64 rowid) pairs. It is the index substrate of the embedded SQL engine
// (internal/minisql), standing in for the B-tree indexes the paper adds to
// the pre, post and parent columns of its MySQL table (§5.1).
//
// Duplicate keys are supported by making the rowid part of the ordering:
// entries are totally ordered by (key, rowid). Range scans visit entries
// in that order.
package btree

// degree is the minimum branching factor: every node except the root has
// at least degree-1 and at most 2*degree-1 entries. 32 keeps nodes around
// a cache line multiple without deep trees.
const degree = 32

const (
	maxEntries = 2*degree - 1
	minEntries = degree - 1
)

// Entry is one (key, rowid) pair.
type Entry struct {
	Key int64
	Row int64
}

func (a Entry) less(b Entry) bool {
	if a.Key != b.Key {
		return a.Key < b.Key
	}
	return a.Row < b.Row
}

type node struct {
	entries  []Entry // len <= maxEntries
	children []*node // len == len(entries)+1, nil for leaves
}

func (n *node) leaf() bool { return n.children == nil }

// Tree is a B-tree. The zero value is an empty tree ready for use. Not
// safe for concurrent mutation; the SQL layer serializes access.
type Tree struct {
	root *node
	size int
}

// Len returns the number of entries.
func (t *Tree) Len() int { return t.size }

// search returns the first index i in n.entries with e <= entries[i]
// (lower bound).
func lowerBound(entries []Entry, e Entry) int {
	lo, hi := 0, len(entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if entries[mid].less(e) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Insert adds (key, row). Inserting an entry that already exists is a
// no-op (the tree is a set of pairs).
func (t *Tree) Insert(key, row int64) {
	e := Entry{key, row}
	if t.root == nil {
		t.root = &node{entries: []Entry{e}}
		t.size = 1
		return
	}
	if len(t.root.entries) == maxEntries {
		// Split the root: the tree grows in height.
		old := t.root
		t.root = &node{children: []*node{old}}
		t.root.splitChild(0)
	}
	if t.root.insertNonFull(e) {
		t.size++
	}
}

// splitChild splits the full child at index i of n.
func (n *node) splitChild(i int) {
	child := n.children[i]
	mid := child.entries[degree-1]
	right := &node{
		entries: append([]Entry(nil), child.entries[degree:]...),
	}
	if !child.leaf() {
		right.children = append([]*node(nil), child.children[degree:]...)
		child.children = child.children[:degree]
	}
	child.entries = child.entries[:degree-1]

	n.entries = append(n.entries, Entry{})
	copy(n.entries[i+1:], n.entries[i:])
	n.entries[i] = mid
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

func (n *node) insertNonFull(e Entry) bool {
	i := lowerBound(n.entries, e)
	if i < len(n.entries) && n.entries[i] == e {
		return false // duplicate pair
	}
	if n.leaf() {
		n.entries = append(n.entries, Entry{})
		copy(n.entries[i+1:], n.entries[i:])
		n.entries[i] = e
		return true
	}
	if len(n.children[i].entries) == maxEntries {
		n.splitChild(i)
		if n.entries[i].less(e) {
			i++
		} else if n.entries[i] == e {
			return false
		}
	}
	return n.children[i].insertNonFull(e)
}

// Contains reports whether the exact (key, row) pair is present.
func (t *Tree) Contains(key, row int64) bool {
	e := Entry{key, row}
	n := t.root
	for n != nil {
		i := lowerBound(n.entries, e)
		if i < len(n.entries) && n.entries[i] == e {
			return true
		}
		if n.leaf() {
			return false
		}
		n = n.children[i]
	}
	return false
}

// Delete removes the (key, row) pair if present and reports whether it
// removed anything.
func (t *Tree) Delete(key, row int64) bool {
	if t.root == nil {
		return false
	}
	deleted := t.root.delete(Entry{key, row})
	if deleted {
		t.size--
	}
	if len(t.root.entries) == 0 {
		if t.root.leaf() {
			t.root = nil
		} else {
			t.root = t.root.children[0]
		}
	}
	return deleted
}

// delete removes e from the subtree rooted at n (CLRS-style: every
// recursive call is made on a child that has at least degree entries, so
// removal never underflows below the root).
func (n *node) delete(e Entry) bool {
	i := lowerBound(n.entries, e)
	if i < len(n.entries) && n.entries[i] == e {
		if n.leaf() {
			n.entries = append(n.entries[:i], n.entries[i+1:]...)
			return true
		}
		switch {
		case len(n.children[i].entries) > minEntries:
			// Replace by predecessor and remove it from the left subtree.
			n.entries[i] = n.children[i].deleteMax()
		case len(n.children[i+1].entries) > minEntries:
			// Replace by successor and remove it from the right subtree.
			n.entries[i] = n.children[i+1].deleteMin()
		default:
			// Both neighbours minimal: merge them around e, then delete e
			// from the merged child.
			n.mergeChildren(i)
			return n.children[i].delete(e)
		}
		return true
	}
	if n.leaf() {
		return false
	}
	i = n.ensureChildBig(i)
	return n.children[i].delete(e)
}

// deleteMax removes and returns the maximum entry of the subtree.
func (n *node) deleteMax() Entry {
	if n.leaf() {
		e := n.entries[len(n.entries)-1]
		n.entries = n.entries[:len(n.entries)-1]
		return e
	}
	i := n.ensureChildBig(len(n.children) - 1)
	return n.children[i].deleteMax()
}

// deleteMin removes and returns the minimum entry of the subtree.
func (n *node) deleteMin() Entry {
	if n.leaf() {
		e := n.entries[0]
		n.entries = append(n.entries[:0], n.entries[1:]...)
		return e
	}
	i := n.ensureChildBig(0)
	return n.children[i].deleteMin()
}

// mergeChildren merges children[i], entries[i] and children[i+1] into a
// single child at index i. Both children must have minEntries entries.
func (n *node) mergeChildren(i int) {
	child, right := n.children[i], n.children[i+1]
	child.entries = append(child.entries, n.entries[i])
	child.entries = append(child.entries, right.entries...)
	if !child.leaf() {
		child.children = append(child.children, right.children...)
	}
	n.entries = append(n.entries[:i], n.entries[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
}

// ensureChildBig guarantees children[i] has more than minEntries entries
// by borrowing from a sibling or merging, and returns the (possibly
// shifted) index of the child that now covers the original key range.
func (n *node) ensureChildBig(i int) int {
	if len(n.children[i].entries) > minEntries {
		return i
	}
	child := n.children[i]
	switch {
	case i > 0 && len(n.children[i-1].entries) > minEntries:
		// Borrow from left sibling through the separator.
		left := n.children[i-1]
		child.entries = append(child.entries, Entry{})
		copy(child.entries[1:], child.entries)
		child.entries[0] = n.entries[i-1]
		n.entries[i-1] = left.entries[len(left.entries)-1]
		left.entries = left.entries[:len(left.entries)-1]
		if !child.leaf() {
			child.children = append(child.children, nil)
			copy(child.children[1:], child.children)
			child.children[0] = left.children[len(left.children)-1]
			left.children = left.children[:len(left.children)-1]
		}
	case i < len(n.children)-1 && len(n.children[i+1].entries) > minEntries:
		// Borrow from right sibling.
		right := n.children[i+1]
		child.entries = append(child.entries, n.entries[i])
		n.entries[i] = right.entries[0]
		copy(right.entries, right.entries[1:])
		right.entries = right.entries[:len(right.entries)-1]
		if !child.leaf() {
			child.children = append(child.children, right.children[0])
			copy(right.children, right.children[1:])
			right.children = right.children[:len(right.children)-1]
		}
	default:
		// Merge with a sibling; merging with the left sibling shifts the
		// target child index down by one.
		if i == len(n.children)-1 {
			i--
		}
		n.mergeChildren(i)
	}
	return i
}

func (n *node) max() Entry {
	for !n.leaf() {
		n = n.children[len(n.children)-1]
	}
	return n.entries[len(n.entries)-1]
}

// AscendRange visits all entries with minKey <= Key <= maxKey in
// (key, row) order, calling fn for each; fn returning false stops the
// scan early.
func (t *Tree) AscendRange(minKey, maxKey int64, fn func(Entry) bool) {
	if t.root == nil || minKey > maxKey {
		return
	}
	t.root.ascendRange(Entry{minKey, -1 << 62}, maxKey, fn)
}

// AscendGE visits all entries with Key >= minKey in order.
func (t *Tree) AscendGE(minKey int64, fn func(Entry) bool) {
	if t.root == nil {
		return
	}
	t.root.ascendRange(Entry{minKey, -1 << 62}, 1<<62, fn)
}

// Ascend visits every entry in order.
func (t *Tree) Ascend(fn func(Entry) bool) {
	t.AscendGE(-1<<62, fn)
}

func (n *node) ascendRange(from Entry, maxKey int64, fn func(Entry) bool) bool {
	i := lowerBound(n.entries, from)
	for ; i < len(n.entries); i++ {
		if !n.leaf() {
			if !n.children[i].ascendRange(from, maxKey, fn) {
				return false
			}
		}
		e := n.entries[i]
		if e.Key > maxKey {
			return false
		}
		if !fn(e) {
			return false
		}
	}
	if !n.leaf() {
		return n.children[len(n.children)-1].ascendRange(from, maxKey, fn)
	}
	return true
}

// Min returns the smallest entry, if any.
func (t *Tree) Min() (Entry, bool) {
	if t.root == nil {
		return Entry{}, false
	}
	n := t.root
	for !n.leaf() {
		n = n.children[0]
	}
	return n.entries[0], true
}

// Max returns the largest entry, if any.
func (t *Tree) Max() (Entry, bool) {
	if t.root == nil {
		return Entry{}, false
	}
	return t.root.max(), true
}

// depth returns the tree height (for tests / diagnostics).
func (t *Tree) depth() int {
	d := 0
	n := t.root
	for n != nil {
		d++
		if n.leaf() {
			break
		}
		n = n.children[0]
	}
	return d
}

// checkInvariants validates B-tree structural invariants; used by tests.
func (t *Tree) checkInvariants() error {
	if t.root == nil {
		return nil
	}
	_, _, err := t.root.check(true)
	return err
}

type btError string

func (e btError) Error() string { return string(e) }

func (n *node) check(isRoot bool) (min, max Entry, err error) {
	if !isRoot && len(n.entries) < minEntries {
		return min, max, btError("node underflow")
	}
	if len(n.entries) > maxEntries {
		return min, max, btError("node overflow")
	}
	for i := 1; i < len(n.entries); i++ {
		if !n.entries[i-1].less(n.entries[i]) {
			return min, max, btError("entries out of order")
		}
	}
	if n.leaf() {
		return n.entries[0], n.entries[len(n.entries)-1], nil
	}
	if len(n.children) != len(n.entries)+1 {
		return min, max, btError("child count mismatch")
	}
	var depths []int
	_ = depths
	for i, c := range n.children {
		cmin, cmax, err := c.check(false)
		if err != nil {
			return min, max, err
		}
		if i > 0 && !n.entries[i-1].less(cmin) {
			return min, max, btError("child min violates separator")
		}
		if i < len(n.entries) && !cmax.less(n.entries[i]) {
			return min, max, btError("child max violates separator")
		}
		if i == 0 {
			min = cmin
		}
		if i == len(n.children)-1 {
			max = cmax
		}
	}
	return min, max, nil
}
