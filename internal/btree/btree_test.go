package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyTree(t *testing.T) {
	var tr Tree
	if tr.Len() != 0 {
		t.Fatal("empty tree has nonzero Len")
	}
	if tr.Contains(1, 1) {
		t.Fatal("empty tree Contains")
	}
	if tr.Delete(1, 1) {
		t.Fatal("empty tree Delete returned true")
	}
	if _, ok := tr.Min(); ok {
		t.Fatal("empty tree has Min")
	}
	if _, ok := tr.Max(); ok {
		t.Fatal("empty tree has Max")
	}
	n := 0
	tr.Ascend(func(Entry) bool { n++; return true })
	if n != 0 {
		t.Fatal("empty tree Ascend visited entries")
	}
}

func TestInsertContains(t *testing.T) {
	var tr Tree
	for i := int64(0); i < 1000; i++ {
		tr.Insert(i*3, i)
	}
	if tr.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", tr.Len())
	}
	for i := int64(0); i < 1000; i++ {
		if !tr.Contains(i*3, i) {
			t.Fatalf("missing key %d", i*3)
		}
		if tr.Contains(i*3+1, i) {
			t.Fatalf("phantom key %d", i*3+1)
		}
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicatePairIsNoop(t *testing.T) {
	var tr Tree
	tr.Insert(5, 10)
	tr.Insert(5, 10)
	if tr.Len() != 1 {
		t.Fatalf("Len = %d after duplicate insert, want 1", tr.Len())
	}
	// Same key, different row: both kept.
	tr.Insert(5, 11)
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
}

func TestAscendRangeOrdering(t *testing.T) {
	var tr Tree
	perm := rand.New(rand.NewSource(42)).Perm(2000)
	for _, v := range perm {
		tr.Insert(int64(v%97), int64(v)) // many duplicate keys
	}
	var got []Entry
	tr.AscendRange(10, 50, func(e Entry) bool {
		got = append(got, e)
		return true
	})
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i].less(got[j]) }) {
		t.Fatal("AscendRange out of order")
	}
	for _, e := range got {
		if e.Key < 10 || e.Key > 50 {
			t.Fatalf("entry %v outside range", e)
		}
	}
	// Count must match a full scan filter.
	want := 0
	tr.Ascend(func(e Entry) bool {
		if e.Key >= 10 && e.Key <= 50 {
			want++
		}
		return true
	})
	if len(got) != want {
		t.Fatalf("range returned %d entries, want %d", len(got), want)
	}
}

func TestAscendEarlyStop(t *testing.T) {
	var tr Tree
	for i := int64(0); i < 500; i++ {
		tr.Insert(i, 0)
	}
	n := 0
	tr.Ascend(func(Entry) bool { n++; return n < 7 })
	if n != 7 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestDeleteRandomized(t *testing.T) {
	var tr Tree
	rng := rand.New(rand.NewSource(7))
	ref := map[Entry]bool{}
	for i := 0; i < 5000; i++ {
		e := Entry{int64(rng.Intn(300)), int64(rng.Intn(50))}
		if rng.Intn(2) == 0 {
			tr.Insert(e.Key, e.Row)
			ref[e] = true
		} else {
			got := tr.Delete(e.Key, e.Row)
			want := ref[e]
			if got != want {
				t.Fatalf("step %d: Delete(%v) = %v, want %v", i, e, got, want)
			}
			delete(ref, e)
		}
		if i%500 == 0 {
			if err := tr.checkInvariants(); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
			if tr.Len() != len(ref) {
				t.Fatalf("step %d: Len %d != ref %d", i, tr.Len(), len(ref))
			}
		}
	}
	// Final full comparison.
	if tr.Len() != len(ref) {
		t.Fatalf("final Len %d != ref %d", tr.Len(), len(ref))
	}
	tr.Ascend(func(e Entry) bool {
		if !ref[e] {
			t.Fatalf("tree contains %v not in ref", e)
		}
		return true
	})
	for e := range ref {
		if !tr.Contains(e.Key, e.Row) {
			t.Fatalf("ref contains %v not in tree", e)
		}
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteAll(t *testing.T) {
	var tr Tree
	const n = 3000
	for i := int64(0); i < n; i++ {
		tr.Insert(i%111, i)
	}
	for i := int64(0); i < n; i++ {
		if !tr.Delete(i%111, i) {
			t.Fatalf("Delete(%d,%d) = false", i%111, i)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", tr.Len())
	}
	if tr.root != nil {
		t.Fatal("root not nil after deleting all")
	}
}

func TestMinMax(t *testing.T) {
	var tr Tree
	for _, k := range []int64{5, 3, 9, 1, 7} {
		tr.Insert(k, k*10)
	}
	if mn, _ := tr.Min(); mn.Key != 1 {
		t.Errorf("Min = %v", mn)
	}
	if mx, _ := tr.Max(); mx.Key != 9 {
		t.Errorf("Max = %v", mx)
	}
}

func TestDepthLogarithmic(t *testing.T) {
	var tr Tree
	for i := int64(0); i < 100000; i++ {
		tr.Insert(i, 0)
	}
	if d := tr.depth(); d > 5 {
		t.Fatalf("depth %d too large for 100k sequential inserts (degree %d)", d, degree)
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAgainstModel drives the tree against a map model with random
// operation sequences.
func TestQuickAgainstModel(t *testing.T) {
	err := quick.Check(func(ops []struct {
		Key, Row int8 // small domains force collisions
		Del      bool
	}) bool {
		var tr Tree
		ref := map[Entry]bool{}
		for _, op := range ops {
			e := Entry{int64(op.Key), int64(op.Row)}
			if op.Del {
				if tr.Delete(e.Key, e.Row) != ref[e] {
					return false
				}
				delete(ref, e)
			} else {
				tr.Insert(e.Key, e.Row)
				ref[e] = true
			}
		}
		if tr.Len() != len(ref) {
			return false
		}
		ok := true
		tr.Ascend(func(e Entry) bool {
			if !ref[e] {
				ok = false
			}
			return ok
		})
		return ok && tr.checkInvariants() == nil
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAscendGE(t *testing.T) {
	var tr Tree
	for i := int64(0); i < 100; i++ {
		tr.Insert(i, 0)
	}
	var got []int64
	tr.AscendGE(90, func(e Entry) bool { got = append(got, e.Key); return true })
	if len(got) != 10 || got[0] != 90 || got[9] != 99 {
		t.Fatalf("AscendGE(90) = %v", got)
	}
}

func TestInvertedRangeEmpty(t *testing.T) {
	var tr Tree
	tr.Insert(1, 1)
	n := 0
	tr.AscendRange(10, 5, func(Entry) bool { n++; return true })
	if n != 0 {
		t.Fatal("inverted range visited entries")
	}
}

func BenchmarkInsertSequential(b *testing.B) {
	var tr Tree
	for i := 0; i < b.N; i++ {
		tr.Insert(int64(i), int64(i))
	}
}

func BenchmarkInsertRandom(b *testing.B) {
	var tr Tree
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		tr.Insert(rng.Int63n(1<<30), int64(i))
	}
}

func BenchmarkContains(b *testing.B) {
	var tr Tree
	for i := int64(0); i < 100000; i++ {
		tr.Insert(i, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Contains(int64(i%100000), int64(i%100000))
	}
}

func BenchmarkRangeScan100(b *testing.B) {
	var tr Tree
	for i := int64(0); i < 100000; i++ {
		tr.Insert(i, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := int64(i % 90000)
		n := 0
		tr.AscendRange(lo, lo+99, func(Entry) bool { n++; return true })
	}
}
