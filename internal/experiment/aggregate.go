package experiment

import (
	"fmt"

	"encshare/internal/engine"
	"encshare/internal/filter"
	"encshare/internal/rmi"
	"encshare/internal/xpath"
)

// legacyServerOnly hides the aggregate extension of a remote proxy, so
// the client filter takes the pre-aggregate path: fetch every matching
// row's share blob and reconstruct client-side. It is the measured
// baseline — exactly what querying an old server costs.
type legacyServerOnly struct{ filter.ServerAPI }

// AggregateBytes measures what server-side aggregation does to the wire:
// for each query, the matching rows are folded once through the
// aggregate frames (one request frame, one folded blob per ≤(q−1)-row
// chunk, plus the verification share) and once through the pre-aggregate
// protocol (every row's share blob shipped and reconstructed). Both
// paths run over real rmi connections and both totals count request AND
// reply bytes. The reduction column is the paper-style headline: bytes
// drop from O(rows) to O(chunks) while the client still verifies the
// fold against the query's known root.
func AggregateBytes(env *Env) (*Table, error) {
	queries := []string{"//item", "//person", "//open_auction", "/site/regions//item", "//bidder"}

	srv := rmi.NewServer()
	filter.RegisterServer(srv, filter.NewServerFilter(env.Store, env.Ring, 4096))
	foldConn := rmi.Pipe(srv)
	defer foldConn.Close()
	foldCli := filter.NewClient(filter.NewRemote(foldConn), env.Scheme)

	legacyConn := rmi.Pipe(srv)
	defer legacyConn.Close()
	legacyCli := filter.NewClient(legacyServerOnly{filter.NewRemote(legacyConn)}, env.Scheme)

	table := &Table{
		Title:  "Aggregation: bytes on the wire, server-side fold vs per-row reconstruction (SUM)",
		Header: []string{"query", "rows", "fold bytes", "reconstruct bytes", "reduction", "verified"},
	}
	for _, qs := range queries {
		q, err := xpath.Parse(qs)
		if err != nil {
			return nil, err
		}
		res, err := env.Advanced.Run(q, engine.Equality)
		if err != nil {
			return nil, err
		}
		opts := filter.AggregateOptions{}
		if last := q.Steps[len(q.Steps)-1]; last.IsNameTest() {
			if v, err := env.Map.Value(last.Name); err == nil {
				opts.CheckPoint = v
			}
		}

		before := foldConn.Stats()
		folded, err := foldCli.AggregateFold(res.Pres, filter.AggSum, opts)
		if err != nil {
			return nil, err
		}
		fs := foldConn.Stats()
		foldBytes := (fs.BytesIn - before.BytesIn) + (fs.BytesOut - before.BytesOut)

		before = legacyConn.Stats()
		recon, err := legacyCli.AggregateFold(res.Pres, filter.AggSum, opts)
		if err != nil {
			return nil, err
		}
		ls := legacyConn.Stats()
		reconBytes := (ls.BytesIn - before.BytesIn) + (ls.BytesOut - before.BytesOut)

		if !env.Ring.Equal(folded.Sum, recon.Sum) {
			return nil, fmt.Errorf("aggregate experiment: fold and reconstruction disagree on %s", qs)
		}
		ratio := "-"
		if foldBytes > 0 {
			ratio = fmt.Sprintf("%.1fx", float64(reconBytes)/float64(foldBytes))
		}
		table.Rows = append(table.Rows, []string{
			qs,
			fmt.Sprintf("%d", folded.Count),
			fmt.Sprintf("%d", foldBytes),
			fmt.Sprintf("%d", reconBytes),
			ratio,
			fmt.Sprintf("%v", folded.Verified),
		})
	}
	table.Notes = append(table.Notes,
		"fold: one delta-varint row list out, one folded share blob per ≤(q−1)-row chunk back, plus the masked verification fold",
		"reconstruct: the pre-aggregate protocol — every matching row's share blob shipped to the client",
		fmt.Sprintf("p = %d: one share blob is %d bytes", env.Ring.Field().Q(), env.Ring.PolyBytes()),
	)
	return table, nil
}
