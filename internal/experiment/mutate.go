package experiment

import (
	"bytes"
	"fmt"
	"io/fs"
	"net"
	"os"
	"sync"
	"time"

	"encshare"
	"encshare/internal/minisql"
	"encshare/internal/server"
	"encshare/internal/store"
	"encshare/internal/wal"
	"encshare/internal/xmark"
)

// slowSyncDelay is the simulated fdatasync latency of the group-commit
// arms. Benchmark temp directories often sit on tmpfs or fast NVMe
// where fsync returns in microseconds — faster than a session can plan
// its next batch, so commits never overlap and there is nothing to
// coalesce. Ten milliseconds is a spinning disk's sync cost — the
// regime group commit was invented for; both arms pay the same delay,
// so the comparison isolates the batching.
const slowSyncDelay = 10 * time.Millisecond

// slowFS wraps the real filesystem, adding slowSyncDelay to every
// file Sync.
type slowFS struct{ inner wal.FS }

func (s slowFS) OpenFile(name string, flag int, perm fs.FileMode) (wal.File, error) {
	f, err := s.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return slowFile{f}, nil
}
func (s slowFS) MkdirAll(dir string, perm fs.FileMode) error { return s.inner.MkdirAll(dir, perm) }
func (s slowFS) Rename(oldpath, newpath string) error        { return s.inner.Rename(oldpath, newpath) }
func (s slowFS) Remove(name string) error                    { return s.inner.Remove(name) }

type slowFile struct{ wal.File }

func (f slowFile) Sync() error {
	time.Sleep(slowSyncDelay)
	return f.File.Sync()
}

// MutateConfig sizes the mutation benchmark. The zero value picks the
// small CI-friendly configuration.
type MutateConfig struct {
	Ops   int     // timed iterations per operation class (default 12)
	Scale float64 // XMark scale of the benchmarked document (default 0.05)
	Seed  int64
}

func (c MutateConfig) withDefaults() MutateConfig {
	if c.Ops <= 0 {
		c.Ops = 12
	}
	if c.Scale <= 0 {
		c.Scale = 0.05
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// mutateClasses are the measured operation classes, in display order.
var mutateClasses = []string{
	"append leaf (root child)",
	"rename node",
	"insert+delete (mid-document)",
}

// newMutateDB encodes a fresh XMark document through the public API —
// the same path a client application takes — so every arm starts from
// an identical table.
func newMutateDB(cfg MutateConfig) (*encshare.Keys, *encshare.Database, error) {
	doc := xmark.Generate(xmark.Config{Scale: cfg.Scale, Seed: cfg.Seed})
	keys, err := encshare.GenerateKeys(encshare.Params{P: 83}, doc.Names())
	if err != nil {
		return nil, nil, err
	}
	db, err := encshare.CreateDatabase(minisql.FreshDSN())
	if err != nil {
		return nil, nil, err
	}
	var buf bytes.Buffer
	if err := doc.WriteXML(&buf); err != nil {
		db.Close()
		return nil, nil, err
	}
	if _, err := db.EncodeXML(keys, &buf); err != nil {
		db.Close()
		return nil, nil, err
	}
	return keys, db, nil
}

// pickMidPre returns the middle pre of the first query with results.
func pickMidPre(s *encshare.Session, queries ...string) (int64, error) {
	for _, q := range queries {
		res, err := s.Query(q)
		if err != nil {
			return 0, err
		}
		if len(res.Pres) > 0 {
			return res.Pres[len(res.Pres)/2], nil
		}
	}
	return 0, fmt.Errorf("no results for any of %v", queries)
}

// mutateScript runs the timed mutation mix through one session. Every
// class leaves earlier pres stable (root appends land at the tail; the
// mid-document insert is immediately deleted), so the targets picked up
// front stay valid and every arm executes the identical edit sequence.
func mutateScript(s *encshare.Session, ops int) (map[string][]time.Duration, error) {
	renamePre, err := pickMidPre(s, "//city", "//date", "//name")
	if err != nil {
		return nil, err
	}
	midParent, err := pickMidPre(s, "//person", "//item")
	if err != nil {
		return nil, err
	}
	names := [2]string{"date", "city"}
	res := map[string][]time.Duration{}
	for i := 0; i < ops; i++ {
		start := time.Now()
		if _, err := s.Insert(1, "item"); err != nil {
			return nil, fmt.Errorf("append %d: %w", i, err)
		}
		res[mutateClasses[0]] = append(res[mutateClasses[0]], time.Since(start))

		start = time.Now()
		if err := s.Update(renamePre, names[i%2]); err != nil {
			return nil, fmt.Errorf("rename %d: %w", i, err)
		}
		res[mutateClasses[1]] = append(res[mutateClasses[1]], time.Since(start))

		start = time.Now()
		pre, err := s.Insert(midParent, "item")
		if err != nil {
			return nil, fmt.Errorf("mid insert %d: %w", i, err)
		}
		if err := s.Delete(pre); err != nil {
			return nil, fmt.Errorf("mid delete %d: %w", i, err)
		}
		res[mutateClasses[2]] = append(res[mutateClasses[2]], time.Since(start))
	}
	return res, nil
}

// mutateArmLocal times the script against an in-process session: pure
// planner + apply cost, no wire, no journal.
func mutateArmLocal(cfg MutateConfig) (map[string][]time.Duration, error) {
	keys, db, err := newMutateDB(cfg)
	if err != nil {
		return nil, err
	}
	defer db.Close()
	s := encshare.OpenLocal(keys, db)
	defer s.Close()
	return mutateScript(s, cfg.Ops)
}

// mutateArmTCP times the script over a loopback TCP server. An empty
// walDir serves from memory; otherwise every batch journals to
// walDir/wal.log before applying — the durable configuration.
func mutateArmTCP(cfg MutateConfig, walDir string) (map[string][]time.Duration, error) {
	keys, db, err := newMutateDB(cfg)
	if err != nil {
		return nil, err
	}
	defer db.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer l.Close()
	go db.ServeWith(l, keys.Params(), encshare.ServeConfig{WALDir: walDir})
	s, err := encshare.Dial(keys, l.Addr().String())
	if err != nil {
		return nil, err
	}
	defer s.Close()
	return mutateScript(s, cfg.Ops)
}

// mutateConcurrentArm hammers one WAL-backed TCP server with `sessions`
// concurrent writer sessions, each appending `ops` leaves under the
// root, and returns the wall-clock of the whole hammer plus the
// server's durability counters. perAppendSync false is the default
// group-commit configuration (concurrent batches coalesce under one
// commit leader into fewer fdatasyncs); true forces one fdatasync per
// journaled batch — the baseline the coalescing is measured against.
func mutateConcurrentArm(cfg MutateConfig, sessions int, perAppendSync bool) (time.Duration, server.TenantWAL, error) {
	var tw server.TenantWAL
	keys, db, err := newMutateDB(cfg)
	if err != nil {
		return 0, tw, err
	}
	defer db.Close()
	walDir, err := os.MkdirTemp("", "encshare-mutate-gc")
	if err != nil {
		return 0, tw, err
	}
	defer os.RemoveAll(walDir)

	// The runtime is driven directly (not through Database.Serve) so the
	// arm can flip WALPerAppendSync and read the append/fsync counters.
	dsn := minisql.FreshDSN()
	st, err := store.Open(dsn)
	if err != nil {
		return 0, tw, err
	}
	defer func() { st.Close(); minisql.Drop(dsn) }()
	if err := st.Init(); err != nil {
		return 0, tw, err
	}
	var dump bytes.Buffer
	if err := db.DumpTo(&dump); err != nil {
		return 0, tw, err
	}
	if err := st.Load(&dump); err != nil {
		return 0, tw, err
	}
	params := keys.Params()
	rt := server.New(server.Config{})
	if err := rt.AttachStore(server.Tenant{P: params.P, E: params.E, WALDir: walDir, FS: slowFS{wal.OS}, WALPerAppendSync: perAppendSync}, st); err != nil {
		return 0, tw, err
	}
	defer rt.Shutdown()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, tw, err
	}
	defer l.Close()
	go rt.Serve(l)

	ss := make([]*encshare.Session, sessions)
	for i := range ss {
		if ss[i], err = encshare.Dial(keys, l.Addr().String()); err != nil {
			return 0, tw, err
		}
		defer ss[i].Close()
	}
	var wg sync.WaitGroup
	errs := make([]error, sessions)
	start := time.Now()
	for i, s := range ss {
		wg.Add(1)
		go func(i int, s *encshare.Session) {
			defer wg.Done()
			for j := 0; j < cfg.Ops; j++ {
				if _, err := s.Insert(1, "item"); err != nil {
					errs[i] = fmt.Errorf("session %d append %d: %w", i, j, err)
					return
				}
			}
		}(i, s)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, tw, err
		}
	}
	return elapsed, rt.WALStats()[""], nil
}

func meanMS(ds []time.Duration) string {
	if len(ds) == 0 {
		return "-"
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return ms(sum / time.Duration(len(ds)))
}

// Mutate is the mutation-throughput benchmark: the same timed edit mix
// — tail appends, renames, and a mid-document insert+delete pair whose
// shifts touch ~half the table — against three deployments of an
// identical XMark table: in-process, loopback TCP, and loopback TCP
// with a write-ahead log. The spread between columns is what the wire
// and the journal each cost on the write path.
func Mutate(cfg MutateConfig) (*Table, error) {
	cfg = cfg.withDefaults()
	walDir, err := os.MkdirTemp("", "encshare-mutate-wal")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(walDir)

	local, err := mutateArmLocal(cfg)
	if err != nil {
		return nil, fmt.Errorf("mutate (local): %w", err)
	}
	tcp, err := mutateArmTCP(cfg, "")
	if err != nil {
		return nil, fmt.Errorf("mutate (tcp): %w", err)
	}
	wal, err := mutateArmTCP(cfg, walDir)
	if err != nil {
		return nil, fmt.Errorf("mutate (tcp+wal): %w", err)
	}

	// Group-commit arms: the same append hammer from 8 concurrent
	// sessions, once with commit coalescing (the default) and once with
	// one fdatasync forced per journaled batch.
	const gcSessions = 8
	gcTime, gcStats, err := mutateConcurrentArm(cfg, gcSessions, false)
	if err != nil {
		return nil, fmt.Errorf("mutate (group commit): %w", err)
	}
	paTime, paStats, err := mutateConcurrentArm(cfg, gcSessions, true)
	if err != nil {
		return nil, fmt.Errorf("mutate (per-append fsync): %w", err)
	}

	t := &Table{
		Title:  "Mutation cost by operation class and deployment (mean ms/op)",
		Header: []string{"operation", "ops", "local", "tcp", "tcp+wal"},
		Notes: []string{
			fmt.Sprintf("XMark scale %.2f, seed %d; identical edit sequence per arm", cfg.Scale, cfg.Seed),
			"append rebuilds only the root factor; the mid-document pair renumbers every row past the insertion point",
			"tcp+wal journals each batch to wal.log and fdatasyncs it before acking; concurrent batches coalesce under one commit leader (group commit)",
			fmt.Sprintf("group-commit arms simulate a %v fdatasync (fast tmp filesystems hide the batching); %d sessions, group commit: %d appends over %d fdatasyncs (%.1f appends/sync); per-append baseline: %d appends over %d fdatasyncs",
				slowSyncDelay, gcSessions, gcStats.Appends, gcStats.Syncs, ratio(gcStats.Appends, gcStats.Syncs), paStats.Appends, paStats.Syncs),
		},
	}
	for _, class := range mutateClasses {
		t.Rows = append(t.Rows, []string{
			class, fmt.Sprintf("%d", len(local[class])),
			meanMS(local[class]), meanMS(tcp[class]), meanMS(wal[class]),
		})
	}
	gcOps := gcSessions * cfg.Ops
	t.Rows = append(t.Rows,
		[]string{fmt.Sprintf("append ×%d sessions (group commit)", gcSessions),
			fmt.Sprintf("%d", gcOps), "-", "-", meanMS([]time.Duration{gcTime / time.Duration(gcOps)})},
		[]string{fmt.Sprintf("append ×%d sessions (fsync per append)", gcSessions),
			fmt.Sprintf("%d", gcOps), "-", "-", meanMS([]time.Duration{paTime / time.Duration(gcOps)})},
	)
	return t, nil
}

func ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
