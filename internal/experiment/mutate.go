package experiment

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"time"

	"encshare"
	"encshare/internal/minisql"
	"encshare/internal/xmark"
)

// MutateConfig sizes the mutation benchmark. The zero value picks the
// small CI-friendly configuration.
type MutateConfig struct {
	Ops   int     // timed iterations per operation class (default 12)
	Scale float64 // XMark scale of the benchmarked document (default 0.05)
	Seed  int64
}

func (c MutateConfig) withDefaults() MutateConfig {
	if c.Ops <= 0 {
		c.Ops = 12
	}
	if c.Scale <= 0 {
		c.Scale = 0.05
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// mutateClasses are the measured operation classes, in display order.
var mutateClasses = []string{
	"append leaf (root child)",
	"rename node",
	"insert+delete (mid-document)",
}

// newMutateDB encodes a fresh XMark document through the public API —
// the same path a client application takes — so every arm starts from
// an identical table.
func newMutateDB(cfg MutateConfig) (*encshare.Keys, *encshare.Database, error) {
	doc := xmark.Generate(xmark.Config{Scale: cfg.Scale, Seed: cfg.Seed})
	keys, err := encshare.GenerateKeys(encshare.Params{P: 83}, doc.Names())
	if err != nil {
		return nil, nil, err
	}
	db, err := encshare.CreateDatabase(minisql.FreshDSN())
	if err != nil {
		return nil, nil, err
	}
	var buf bytes.Buffer
	if err := doc.WriteXML(&buf); err != nil {
		db.Close()
		return nil, nil, err
	}
	if _, err := db.EncodeXML(keys, &buf); err != nil {
		db.Close()
		return nil, nil, err
	}
	return keys, db, nil
}

// pickMidPre returns the middle pre of the first query with results.
func pickMidPre(s *encshare.Session, queries ...string) (int64, error) {
	for _, q := range queries {
		res, err := s.Query(q)
		if err != nil {
			return 0, err
		}
		if len(res.Pres) > 0 {
			return res.Pres[len(res.Pres)/2], nil
		}
	}
	return 0, fmt.Errorf("no results for any of %v", queries)
}

// mutateScript runs the timed mutation mix through one session. Every
// class leaves earlier pres stable (root appends land at the tail; the
// mid-document insert is immediately deleted), so the targets picked up
// front stay valid and every arm executes the identical edit sequence.
func mutateScript(s *encshare.Session, ops int) (map[string][]time.Duration, error) {
	renamePre, err := pickMidPre(s, "//city", "//date", "//name")
	if err != nil {
		return nil, err
	}
	midParent, err := pickMidPre(s, "//person", "//item")
	if err != nil {
		return nil, err
	}
	names := [2]string{"date", "city"}
	res := map[string][]time.Duration{}
	for i := 0; i < ops; i++ {
		start := time.Now()
		if _, err := s.Insert(1, "item"); err != nil {
			return nil, fmt.Errorf("append %d: %w", i, err)
		}
		res[mutateClasses[0]] = append(res[mutateClasses[0]], time.Since(start))

		start = time.Now()
		if err := s.Update(renamePre, names[i%2]); err != nil {
			return nil, fmt.Errorf("rename %d: %w", i, err)
		}
		res[mutateClasses[1]] = append(res[mutateClasses[1]], time.Since(start))

		start = time.Now()
		pre, err := s.Insert(midParent, "item")
		if err != nil {
			return nil, fmt.Errorf("mid insert %d: %w", i, err)
		}
		if err := s.Delete(pre); err != nil {
			return nil, fmt.Errorf("mid delete %d: %w", i, err)
		}
		res[mutateClasses[2]] = append(res[mutateClasses[2]], time.Since(start))
	}
	return res, nil
}

// mutateArmLocal times the script against an in-process session: pure
// planner + apply cost, no wire, no journal.
func mutateArmLocal(cfg MutateConfig) (map[string][]time.Duration, error) {
	keys, db, err := newMutateDB(cfg)
	if err != nil {
		return nil, err
	}
	defer db.Close()
	s := encshare.OpenLocal(keys, db)
	defer s.Close()
	return mutateScript(s, cfg.Ops)
}

// mutateArmTCP times the script over a loopback TCP server. An empty
// walDir serves from memory; otherwise every batch journals to
// walDir/wal.log before applying — the durable configuration.
func mutateArmTCP(cfg MutateConfig, walDir string) (map[string][]time.Duration, error) {
	keys, db, err := newMutateDB(cfg)
	if err != nil {
		return nil, err
	}
	defer db.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer l.Close()
	go db.ServeWith(l, keys.Params(), encshare.ServeConfig{WALDir: walDir})
	s, err := encshare.Dial(keys, l.Addr().String())
	if err != nil {
		return nil, err
	}
	defer s.Close()
	return mutateScript(s, cfg.Ops)
}

func meanMS(ds []time.Duration) string {
	if len(ds) == 0 {
		return "-"
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return ms(sum / time.Duration(len(ds)))
}

// Mutate is the mutation-throughput benchmark: the same timed edit mix
// — tail appends, renames, and a mid-document insert+delete pair whose
// shifts touch ~half the table — against three deployments of an
// identical XMark table: in-process, loopback TCP, and loopback TCP
// with a write-ahead log. The spread between columns is what the wire
// and the journal each cost on the write path.
func Mutate(cfg MutateConfig) (*Table, error) {
	cfg = cfg.withDefaults()
	walDir, err := os.MkdirTemp("", "encshare-mutate-wal")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(walDir)

	local, err := mutateArmLocal(cfg)
	if err != nil {
		return nil, fmt.Errorf("mutate (local): %w", err)
	}
	tcp, err := mutateArmTCP(cfg, "")
	if err != nil {
		return nil, fmt.Errorf("mutate (tcp): %w", err)
	}
	wal, err := mutateArmTCP(cfg, walDir)
	if err != nil {
		return nil, fmt.Errorf("mutate (tcp+wal): %w", err)
	}

	t := &Table{
		Title:  "Mutation cost by operation class and deployment (mean ms/op)",
		Header: []string{"operation", "ops", "local", "tcp", "tcp+wal"},
		Notes: []string{
			fmt.Sprintf("XMark scale %.2f, seed %d; identical edit sequence per arm", cfg.Scale, cfg.Seed),
			"append rebuilds only the root factor; the mid-document pair renumbers every row past the insertion point",
			"tcp+wal journals each batch to wal.log before applying (no fsync batching)",
		},
	}
	for _, class := range mutateClasses {
		t.Rows = append(t.Rows, []string{
			class, fmt.Sprintf("%d", len(local[class])),
			meanMS(local[class]), meanMS(tcp[class]), meanMS(wal[class]),
		})
	}
	return t, nil
}
