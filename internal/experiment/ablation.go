package experiment

import (
	"fmt"
	"time"

	"encshare/internal/gf"
	"encshare/internal/minisql"
	"encshare/internal/prg"
	"encshare/internal/ring"
)

// AblationDescendants compares the boundary-optimized descendant scan
// against the naive post-filter variant (DESIGN.md §6) on the same
// encrypted database.
func AblationDescendants(env *Env) (*Table, error) {
	t := &Table{
		Title:  "Ablation — descendant query: boundary scan vs naive post-filter",
		Header: []string{"node", "subtree size", "boundary µs", "naive µs", "speedup"},
	}
	root, err := env.Store.Root()
	if err != nil {
		return nil, err
	}
	// Probe the root plus a few mid-tree nodes of decreasing subtree size.
	probes := []int64{root.Pre}
	kids, err := env.Store.Children(root.Pre)
	if err != nil {
		return nil, err
	}
	for _, k := range kids[:min(3, len(kids))] {
		probes = append(probes, k.Pre)
	}
	for _, pre := range probes {
		n, err := env.Store.Node(pre)
		if err != nil {
			return nil, err
		}
		const reps = 5
		var optDur, naiveDur time.Duration
		var size int
		for i := 0; i < reps; i++ {
			start := time.Now()
			rows, err := env.Store.Descendants(n.Pre, n.Post)
			if err != nil {
				return nil, err
			}
			optDur += time.Since(start)
			size = len(rows)

			start = time.Now()
			nrows, err := env.Store.DescendantsNaive(n.Pre, n.Post)
			if err != nil {
				return nil, err
			}
			naiveDur += time.Since(start)
			if len(nrows) != len(rows) {
				return nil, fmt.Errorf("experiment: naive/optimized descendant counts differ at %d", pre)
			}
		}
		speedup := float64(naiveDur) / float64(optDur)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("pre=%d", pre),
			fmt.Sprintf("%d", size),
			fmt.Sprintf("%.0f", float64(optDur.Microseconds())/reps),
			fmt.Sprintf("%.0f", float64(naiveDur.Microseconds())/reps),
			fmt.Sprintf("%.2fx", speedup),
		})
	}
	t.Notes = append(t.Notes,
		"small subtrees benefit most: the naive variant scans to the end of the pre index regardless")
	return t, nil
}

// AblationIndexes measures why the paper indexes pre/post/parent: point
// child lookups against an indexed vs unindexed table.
func AblationIndexes(rows int64) (*Table, error) {
	build := func(indexed bool) (*minisql.DB, error) {
		db := minisql.NewDB()
		if _, err := db.Exec("CREATE TABLE nodes (pre BIGINT PRIMARY KEY, post BIGINT NOT NULL, parent BIGINT NOT NULL, poly BLOB)"); err != nil {
			return nil, err
		}
		if indexed {
			if _, err := db.Exec("CREATE INDEX idx_parent ON nodes (parent)"); err != nil {
				return nil, err
			}
		}
		blob := make([]byte, 66)
		for i := int64(1); i <= rows; i++ {
			if _, err := db.Exec("INSERT INTO nodes VALUES (?, ?, ?, ?)", i, rows-i+1, i/2, blob); err != nil {
				return nil, err
			}
		}
		return db, nil
	}
	measure := func(db *minisql.DB) (time.Duration, error) {
		start := time.Now()
		const lookups = 200
		for i := int64(0); i < lookups; i++ {
			if _, _, err := db.Query("SELECT pre FROM nodes WHERE parent = ?", i%(rows/2+1)); err != nil {
				return 0, err
			}
		}
		return time.Since(start) / lookups, nil
	}
	withIdx, err := build(true)
	if err != nil {
		return nil, err
	}
	without, err := build(false)
	if err != nil {
		return nil, err
	}
	di, err := measure(withIdx)
	if err != nil {
		return nil, err
	}
	dn, err := measure(without)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  fmt.Sprintf("Ablation — B-tree index on parent (%d rows, per child lookup)", rows),
		Header: []string{"variant", "µs/lookup"},
		Rows: [][]string{
			{"indexed (paper §5.1)", fmt.Sprintf("%.1f", float64(di.Nanoseconds())/1000)},
			{"full scan", fmt.Sprintf("%.1f", float64(dn.Nanoseconds())/1000)},
		},
	}
	return t, nil
}

// AblationSerialization compares the paper-accurate radix-q packing
// against naive one-byte-per-coefficient storage across field sizes.
func AblationSerialization() (*Table, error) {
	t := &Table{
		Title:  "Ablation — polynomial serialization: radix-q packing vs byte-per-coefficient",
		Header: []string{"field", "coeffs", "packed B", "naive B", "saving %"},
	}
	for _, p := range []uint32{29, 83, 151, 251} {
		f, err := gf.New(p, 1)
		if err != nil {
			return nil, err
		}
		r, err := ring.New(f)
		if err != nil {
			return nil, err
		}
		naive := r.N() // one byte per coefficient (q < 256)
		packed := r.PolyBytes()
		t.Rows = append(t.Rows, []string{
			f.String(),
			fmt.Sprintf("%d", r.N()),
			fmt.Sprintf("%d", packed),
			fmt.Sprintf("%d", naive),
			fmt.Sprintf("%.1f", 100*(1-float64(packed)/float64(naive))),
		})
	}
	t.Notes = append(t.Notes, "the paper's (q-1)·log2(q)-bit cost model corresponds to the packed column")
	return t, nil
}

// AblationMulStrategy compares the encoder's incremental linear-factor
// multiply against generic ring multiplication for building node
// polynomials from k roots.
func AblationMulStrategy() (*Table, error) {
	f, err := gf.New(83, 1)
	if err != nil {
		return nil, err
	}
	r, err := ring.New(f)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Ablation — building Π(x−t_i): MulLinear chain vs generic Mul",
		Header: []string{"k roots", "MulLinear ns", "generic Mul ns", "speedup"},
	}
	gen := prg.New([]byte("ablation")).Stream("roots", 0)
	for _, k := range []int{4, 16, 64} {
		roots := make([]gf.Elem, k)
		for i := range roots {
			roots[i] = gen.Uniform(f.Q()-1) + 1
		}
		const reps = 200
		start := time.Now()
		for i := 0; i < reps; i++ {
			p := r.One()
			for _, root := range roots {
				p = r.MulLinear(p, root)
			}
		}
		linDur := time.Since(start) / reps

		start = time.Now()
		for i := 0; i < reps; i++ {
			p := r.One()
			for _, root := range roots {
				p = r.Mul(p, r.Linear(root))
			}
		}
		genDur := time.Since(start) / reps

		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", k),
			fmt.Sprintf("%d", linDur.Nanoseconds()),
			fmt.Sprintf("%d", genDur.Nanoseconds()),
			fmt.Sprintf("%.1fx", float64(genDur)/float64(linDur)),
		})
	}
	return t, nil
}
