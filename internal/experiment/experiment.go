// Package experiment regenerates every table and figure of the paper's
// evaluation (§6) plus the in-text claims of §4, against the same XMark
// workload (Appendix A DTD, p = 83, e = 1). Each experiment returns a
// Table that prints like the paper's figures; EXPERIMENTS.md records a
// reference run next to the paper's numbers.
package experiment

import (
	"fmt"
	"io"
	"strings"
	"time"

	"encshare/internal/encoder"
	"encshare/internal/engine"
	"encshare/internal/filter"
	"encshare/internal/gf"
	"encshare/internal/mapping"
	"encshare/internal/minisql"
	"encshare/internal/prg"
	"encshare/internal/ring"
	"encshare/internal/secshare"
	"encshare/internal/store"
	"encshare/internal/xmark"
	"encshare/internal/xmldoc"
	"encshare/internal/xpath"
)

// Table is a printable experiment result; it also serializes directly
// into encshare-bench's -json report.
type Table struct {
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes,omitempty"`
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	sb.WriteString("== " + t.Title + " ==\n")
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if pad := widths[i] - len(c); pad > 0 && i < len(cells)-1 {
				sb.WriteString(strings.Repeat(" ", pad))
			}
		}
		sb.WriteString("\n")
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		sb.WriteString("note: " + n + "\n")
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// Env is a ready encrypted database over an XMark document, shared by the
// query experiments.
type Env struct {
	Doc      *xmldoc.Doc
	Map      *mapping.Map
	Ring     *ring.Ring
	Scheme   *secshare.Scheme
	Store    *store.Store
	Client   *filter.Client
	Simple   *engine.Simple
	Advanced *engine.Advanced
	Oracle   *xpath.Oracle

	dsn string
}

// NewEnv generates an XMark document at the given scale, encodes it with
// the paper's parameters (p=83, e=1), and wires up both engines.
func NewEnv(scale float64, seed int64) (*Env, error) {
	doc := xmark.Generate(xmark.Config{Scale: scale, Seed: seed})
	f, err := gf.New(83, 1)
	if err != nil {
		return nil, err
	}
	m, err := mapping.Generate(f, doc.Names())
	if err != nil {
		return nil, err
	}
	r, err := ring.New(f)
	if err != nil {
		return nil, err
	}
	scheme := secshare.New(r, prg.New([]byte(fmt.Sprintf("experiment-%d", seed))))

	dsn := minisql.FreshDSN()
	st, err := store.Open(dsn)
	if err != nil {
		return nil, err
	}
	if err := st.Init(); err != nil {
		st.Close()
		minisql.Drop(dsn)
		return nil, err
	}
	if _, err := encoder.EncodeDoc(doc, encoder.Options{Map: m, Scheme: scheme}, st); err != nil {
		st.Close()
		minisql.Drop(dsn)
		return nil, err
	}
	cli := filter.NewClient(filter.NewServerFilter(st, r, 4096), scheme)
	return &Env{
		Doc:      doc,
		Map:      m,
		Ring:     r,
		Scheme:   scheme,
		Store:    st,
		Client:   cli,
		Simple:   engine.NewSimple(cli, m),
		Advanced: engine.NewAdvanced(cli, m),
		Oracle:   xpath.NewOracle(doc),
		dsn:      dsn,
	}, nil
}

// Close releases the environment's database.
func (e *Env) Close() {
	e.Store.Close()
	minisql.Drop(e.dsn)
}

// Table1Queries are the nine queries of increasing length (paper Table 1).
var Table1Queries = []string{
	"/site",
	"/site/regions",
	"/site/regions/europe",
	"/site/regions/europe/item",
	"/site/regions/europe/item/description",
	"/site/regions/europe/item/description/parlist",
	"/site/regions/europe/item/description/parlist/listitem",
	"/site/regions/europe/item/description/parlist/listitem/text",
	"/site/regions/europe/item/description/parlist/listitem/text/keyword",
}

// Table2Queries are the five strictness-check queries (paper Table 2).
var Table2Queries = []string{
	"/site//europe/item",
	"/site//europe//item",
	"/site/*/person//city",
	"/*/*/open_auction/bidder/date",
	"//bidder/date",
}

func mb(b int64) string { return fmt.Sprintf("%.2f", float64(b)/1e6) }
func sec(d time.Duration) string {
	return fmt.Sprintf("%.3f", d.Seconds())
}
