package experiment

import (
	"fmt"
	"io"

	"encshare/internal/encoder"
	"encshare/internal/engine"
	"encshare/internal/gf"
	"encshare/internal/mapping"
	"encshare/internal/minisql"
	"encshare/internal/prg"
	"encshare/internal/ring"
	"encshare/internal/secshare"
	"encshare/internal/store"
	"encshare/internal/trie"
	"encshare/internal/xmark"
	"encshare/internal/xmldoc"
	"encshare/internal/xpath"
)

// Encoding reproduces Fig. 4: encoded database size, index size and
// encoding time against the input XML size, for XMark documents generated
// at the given scales. The paper reports output ≈ 1.5× input plus ~17%
// pre/post/parent overhead within the output, all strictly linear.
func Encoding(scales []float64, seed int64) (*Table, error) {
	t := &Table{
		Title: "Fig. 4 — Encoding: size and time vs input size (p=83, e=1)",
		Header: []string{"scale", "input MB", "output MB", "index MB (est)",
			"meta %", "output/input", "encode s", "nodes"},
	}
	f, err := gf.New(83, 1)
	if err != nil {
		return nil, err
	}
	r, err := ring.New(f)
	if err != nil {
		return nil, err
	}
	for _, scale := range scales {
		cfg := xmark.Config{Scale: scale, Seed: seed}
		var xmlBytes int64
		if xmlBytes, err = xmark.WriteXML(io.Discard, cfg); err != nil {
			return nil, err
		}
		doc := xmark.Generate(cfg)
		m, err := mapping.Generate(f, doc.Names())
		if err != nil {
			return nil, err
		}
		scheme := secshare.New(r, prg.New([]byte(fmt.Sprintf("fig4-%d", seed))))
		dsn := minisql.FreshDSN()
		st, err := store.Open(dsn)
		if err != nil {
			return nil, err
		}
		if err := st.Init(); err != nil {
			return nil, err
		}
		stats, err := encoder.EncodeDoc(doc, encoder.Options{Map: m, Scheme: scheme}, st)
		st.Close()
		minisql.Drop(dsn)
		if err != nil {
			return nil, err
		}
		// Three B-tree indexes (pre, post, parent), ~24 bytes per entry
		// ((key,rowid) pair plus amortized node overhead).
		indexBytes := 3 * stats.Nodes * 24
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", scale),
			mb(xmlBytes),
			mb(stats.OutputBytes()),
			mb(indexBytes),
			fmt.Sprintf("%.1f", 100*float64(stats.MetaBytes)/float64(stats.OutputBytes())),
			fmt.Sprintf("%.2f", float64(stats.OutputBytes())/float64(xmlBytes)),
			sec(stats.Elapsed),
			fmt.Sprintf("%d", stats.Nodes),
		})
	}
	t.Notes = append(t.Notes,
		"paper: output ≈ 1.5x input, ~17% of output is pre/post/parent, both size and time strictly linear")
	return t, nil
}

// QueryLength reproduces Fig. 5 / Table 1: number of evaluations for the
// simple and advanced engines (containment test) on the nine queries of
// increasing length, plus the result-set size.
func QueryLength(env *Env) (*Table, error) {
	t := &Table{
		Title:  "Fig. 5 / Table 1 — evaluations vs query length (containment test)",
		Header: []string{"#", "query", "output size", "evals simple", "evals advanced", "ratio"},
	}
	for i, qs := range Table1Queries {
		q, err := xpath.Parse(qs)
		if err != nil {
			return nil, err
		}
		s, err := env.Simple.Run(q, engine.Containment)
		if err != nil {
			return nil, err
		}
		a, err := env.Advanced.Run(q, engine.Containment)
		if err != nil {
			return nil, err
		}
		if len(s.Pres) != len(a.Pres) {
			return nil, fmt.Errorf("experiment: engines disagree on %s: %d vs %d", qs, len(s.Pres), len(a.Pres))
		}
		ratio := float64(a.Stats.Evaluations) / float64(max64(1, s.Stats.Evaluations))
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", i+1),
			qs,
			fmt.Sprintf("%d", len(s.Pres)),
			fmt.Sprintf("%d", s.Stats.Evaluations),
			fmt.Sprintf("%d", a.Stats.Evaluations),
			fmt.Sprintf("%.2f", ratio),
		})
	}
	t.Notes = append(t.Notes,
		"paper: the two algorithms are comparable, differing by at most a constant factor (worst case for advanced)")
	return t, nil
}

// Strictness reproduces Fig. 6 / Table 2: execution time of
// {simple, advanced} × {non-strict (containment), strict (equality)} on
// the five // and * queries.
func Strictness(env *Env) (*Table, error) {
	t := &Table{
		Title: "Fig. 6 / Table 2 — strictness: execution time (ms)",
		Header: []string{"#", "query",
			"non-strict/simple", "strict/simple",
			"non-strict/advanced", "strict/advanced"},
	}
	type combo struct {
		eng  engine.Engine
		test engine.Test
	}
	for i, qs := range Table2Queries {
		q, err := xpath.Parse(qs)
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprintf("%d", i+1), qs}
		for _, c := range []combo{
			{env.Simple, engine.Containment},
			{env.Simple, engine.Equality},
			{env.Advanced, engine.Containment},
			{env.Advanced, engine.Equality},
		} {
			res, err := c.eng.Run(q, c.test)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.1f", float64(res.Stats.Elapsed.Microseconds())/1000))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"paper: advanced outperforms simple on all five queries; strict checking sometimes pays off, sometimes not")
	return t, nil
}

// StrictnessWork is the counting companion to Strictness: evaluations and
// reconstructions instead of wall-clock (hardware-independent shape).
func StrictnessWork(env *Env) (*Table, error) {
	t := &Table{
		Title: "Fig. 6 companion — work counts per configuration (evals+reconstructions)",
		Header: []string{"#", "query",
			"ns/simple ev", "s/simple ev+rec",
			"ns/adv ev", "s/adv ev+rec"},
	}
	for i, qs := range Table2Queries {
		q, err := xpath.Parse(qs)
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprintf("%d", i+1), qs}
		for _, c := range []struct {
			eng  engine.Engine
			test engine.Test
		}{
			{env.Simple, engine.Containment},
			{env.Simple, engine.Equality},
			{env.Advanced, engine.Containment},
			{env.Advanced, engine.Equality},
		} {
			res, err := c.eng.Run(q, c.test)
			if err != nil {
				return nil, err
			}
			if c.test == engine.Containment {
				row = append(row, fmt.Sprintf("%d", res.Stats.Evaluations))
			} else {
				row = append(row, fmt.Sprintf("%d+%d", res.Stats.Evaluations, res.Stats.Reconstructions))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Accuracy reproduces Fig. 7: the containment test's accuracy E/C per
// Table 2 query, where E is the equality result size and C the
// containment result size. The equality result is cross-checked against
// the plaintext oracle.
func Accuracy(env *Env) (*Table, error) {
	t := &Table{
		Title:  "Fig. 7 — accuracy of the containment test (E/C %)",
		Header: []string{"#", "query", "E (equality)", "C (containment)", "accuracy %"},
	}
	for i, qs := range Table2Queries {
		q, err := xpath.Parse(qs)
		if err != nil {
			return nil, err
		}
		eq, err := env.Simple.Run(q, engine.Equality)
		if err != nil {
			return nil, err
		}
		co, err := env.Simple.Run(q, engine.Containment)
		if err != nil {
			return nil, err
		}
		oracle := xpath.Pres(env.Oracle.Eval(q, xpath.MatchEqual))
		if len(oracle) != len(eq.Pres) {
			return nil, fmt.Errorf("experiment: equality result %d != oracle %d on %s",
				len(eq.Pres), len(oracle), qs)
		}
		acc := 100.0
		if len(co.Pres) > 0 {
			acc = 100 * float64(len(eq.Pres)) / float64(len(co.Pres))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", i+1),
			qs,
			fmt.Sprintf("%d", len(eq.Pres)),
			fmt.Sprintf("%d", len(co.Pres)),
			fmt.Sprintf("%.1f", acc),
		})
	}
	t.Notes = append(t.Notes,
		"paper: accuracy drops for each // in the query; 100% for absolute queries without //")
	return t, nil
}

// TrieStorage reproduces the §4 in-text claims: removing duplicate words
// saves ~50% on running text, the compressed trie representation 75–80%,
// and one encoded character costs ~3.5–4.5 bytes with p=29 (the paper
// rounds the polynomial to 17 bytes; exact packing needs 18).
func TrieStorage(seed int64) (*Table, error) {
	doc := xmark.Generate(xmark.Config{Scale: 0.3, Seed: seed})
	var sb []byte
	doc.Walk(func(n *xmldoc.Node) bool {
		if n.Text != "" {
			sb = append(sb, n.Text...)
			sb = append(sb, ' ')
		}
		return true
	})
	corpus := string(sb)
	st := trie.Measure(corpus)

	f29, err := gf.New(29, 1)
	if err != nil {
		return nil, err
	}
	r29, err := ring.New(f29)
	if err != nil {
		return nil, err
	}
	polyBytes := r29.PolyBytes()

	dedupSave := 100 * (1 - float64(st.DistinctWords)/float64(st.TotalWords))
	trieSave := 100 * (1 - float64(st.CompressedNodes)/float64(st.UncompressedNode))
	bytesPerChar := float64(st.CompressedNodes*polyBytes) / float64(st.Chars)

	t := &Table{
		Title:  "§4 — trie storage claims (XMark text corpus, p=29)",
		Header: []string{"metric", "measured", "paper"},
		Rows: [][]string{
			{"total words", fmt.Sprintf("%d", st.TotalWords), ""},
			{"distinct words", fmt.Sprintf("%d", st.DistinctWords), ""},
			{"dedup saving %", fmt.Sprintf("%.1f", dedupSave), "~50%"},
			{"uncompressed trie nodes", fmt.Sprintf("%d", st.UncompressedNode), ""},
			{"compressed trie nodes", fmt.Sprintf("%d", st.CompressedNodes), ""},
			{"trie compression saving %", fmt.Sprintf("%.1f", trieSave), "75-80%"},
			{"poly bytes (p=29)", fmt.Sprintf("%d", polyBytes), "17 (rounded; 18 exact)"},
			{"bytes per source character", fmt.Sprintf("%.2f", bytesPerChar), "3.5-4.5"},
		},
	}
	return t, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
