package experiment

import (
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"

	"encshare/internal/cluster"
	"encshare/internal/engine"
	"encshare/internal/filter"
	"encshare/internal/obs"
	"encshare/internal/server"
	"encshare/internal/xpath"
)

// LoadTestConfig sizes the load test. The zero value picks the small
// CI-friendly configuration.
type LoadTestConfig struct {
	Sessions int // concurrent client sessions (default 4)
	Ops      int // timed operations per session (default 24)
	Shards   int // shard count of the live cluster (default 2)
	Replicas int // replicas per shard (default 2)
	Seed     int64
}

func (c LoadTestConfig) withDefaults() LoadTestConfig {
	if c.Sessions <= 0 {
		c.Sessions = 4
	}
	if c.Ops <= 0 {
		c.Ops = 24
	}
	if c.Shards <= 0 {
		c.Shards = 2
	}
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// loadClass is one workload class of the mixed load: a name, a weight
// in the mix, and the operation a session runs for it.
type loadClass struct {
	name   string
	weight int
	op     func(*loadSession) error
}

// loadClasses is the mixed workload: point path lookups, descendant
// scans, and server-side aggregates, weighted toward the cheap class
// like a realistic read mix.
var loadClasses = []loadClass{
	{"point", 5, func(s *loadSession) error {
		_, err := s.adv.Run(s.pointQ, engine.Equality)
		return err
	}},
	{"scan", 3, func(s *loadSession) error {
		_, err := s.adv.Run(s.scanQ, engine.Containment)
		return err
	}},
	{"aggregate", 2, func(s *loadSession) error {
		res, err := s.adv.Run(s.aggQ, engine.Equality)
		if err != nil {
			return err
		}
		_, err = s.cli.AggregateFold(res.Pres, filter.AggSum, filter.AggregateOptions{})
		return err
	}},
}

// loadSession is one concurrent client: its own TCP connections to
// every replica, its own filter client and engine, its own RNG.
type loadSession struct {
	cf     *cluster.Filter
	cli    *filter.Client
	adv    *engine.Advanced
	pointQ *xpath.Query
	scanQ  *xpath.Query
	aggQ   *xpath.Query
}

// liveCluster is a real-TCP cluster: every replica of every shard is
// its own server.Runtime accepting on a loopback listener — the same
// process shape `encshare-server` has, minus the process boundary.
type liveCluster struct {
	addrs    []string
	runtimes []*server.Runtime
	cleanup  func()
}

// startLiveCluster splits the env's table into cfg.Shards ranges and
// serves each range from cfg.Replicas independent runtimes (replicas
// share the shard's store — byte-identical by construction). With
// metrics on, every runtime's registry is created and attached, so each
// served frame pays the full exposition-side cost.
func startLiveCluster(env *Env, cfg LoadTestConfig, metrics bool) (*liveCluster, error) {
	lo, hi, err := env.Store.MinMaxPre()
	if err != nil {
		return nil, err
	}
	ranges, err := cluster.PartitionEven(lo, hi, cfg.Shards)
	if err != nil {
		return nil, err
	}
	stores, dropStores, err := cluster.SplitStore(env.Store, ranges)
	if err != nil {
		dropStores()
		return nil, err
	}
	lc := &liveCluster{}
	var listeners []net.Listener
	lc.cleanup = func() {
		for _, rt := range lc.runtimes {
			rt.Shutdown()
		}
		for _, l := range listeners {
			l.Close()
		}
		dropStores()
	}
	for _, st := range stores {
		for r := 0; r < cfg.Replicas; r++ {
			rt := server.New(server.Config{})
			if err := rt.AttachStore(server.Tenant{P: 83, CacheEntries: 4096}, st); err != nil {
				lc.cleanup()
				return nil, err
			}
			if metrics {
				rt.Metrics()
			}
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				lc.cleanup()
				return nil, err
			}
			listeners = append(listeners, l)
			lc.runtimes = append(lc.runtimes, rt)
			go rt.Serve(l)
			lc.addrs = append(lc.addrs, l.Addr().String())
		}
	}
	return lc, nil
}

// loadSample is one timed operation.
type loadSample struct {
	class string
	dur   time.Duration
}

// runLoad executes the full mixed workload — cfg.Sessions concurrent
// sessions, cfg.Ops timed operations each — against a fresh live
// cluster, returning every sample. The metrics flag selects the paired
// run's arm: with it on, every server runtime carries its registry and
// every client session registers its cluster metrics, exactly the
// always-on production configuration; with it off nothing is attached
// and every instrumentation gate stays nil.
func runLoad(env *Env, cfg LoadTestConfig, metrics bool) ([]loadSample, error) {
	lc, err := startLiveCluster(env, cfg, metrics)
	if err != nil {
		return nil, err
	}
	defer lc.cleanup()

	pointQ := xpath.MustParse("/site/regions/europe/item")
	scanQ := xpath.MustParse("//bidder/date")
	aggQ := xpath.MustParse("/site/regions//item")

	var mu sync.Mutex
	var samples []loadSample
	errs := make([]error, cfg.Sessions)
	var wg sync.WaitGroup
	for si := 0; si < cfg.Sessions; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			cf, err := cluster.DialWith(lc.addrs, cluster.Options{})
			if err != nil {
				errs[si] = err
				return
			}
			defer cf.Close()
			if metrics {
				cf.RegisterMetrics(obs.NewRegistry())
			}
			s := &loadSession{
				cf:     cf,
				cli:    filter.NewClient(cf, env.Scheme),
				pointQ: pointQ,
				scanQ:  scanQ,
				aggQ:   aggQ,
			}
			s.adv = engine.NewAdvanced(s.cli, env.Map)
			rng := rand.New(rand.NewSource(cfg.Seed + int64(si)))
			// One untimed warm-up per class: connection setup, cache
			// fill, and the runtime's first-frame costs are not what the
			// percentiles are about.
			for _, c := range loadClasses {
				if err := c.op(s); err != nil {
					errs[si] = fmt.Errorf("session %d warmup %s: %w", si, c.name, err)
					return
				}
			}
			totalWeight := 0
			for _, c := range loadClasses {
				totalWeight += c.weight
			}
			for op := 0; op < cfg.Ops; op++ {
				w := rng.Intn(totalWeight)
				var pick loadClass
				for _, c := range loadClasses {
					if w < c.weight {
						pick = c
						break
					}
					w -= c.weight
				}
				start := time.Now()
				if err := pick.op(s); err != nil {
					errs[si] = fmt.Errorf("session %d op %d (%s): %w", si, op, pick.name, err)
					return
				}
				d := time.Since(start)
				mu.Lock()
				samples = append(samples, loadSample{class: pick.name, dur: d})
				mu.Unlock()
			}
		}(si)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return samples, nil
}

// quantileDur returns the q-quantile of a sorted duration slice by
// nearest-rank.
func quantileDur(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func ms(d time.Duration) string { return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000) }

// LoadTest is the load-test harness: a mixed point/scan/aggregate
// workload from concurrent sessions against a live TCP cluster, run
// twice — once with every metrics registry attached (servers and
// clients), once with none — to put a number on what the always-on
// instrumentation costs. Returns the per-class latency-percentile
// table and the paired-run overhead table.
func LoadTest(env *Env, cfg LoadTestConfig) ([]*Table, error) {
	cfg = cfg.withDefaults()

	off, err := runLoad(env, cfg, false)
	if err != nil {
		return nil, fmt.Errorf("loadtest (metrics off): %w", err)
	}
	on, err := runLoad(env, cfg, true)
	if err != nil {
		return nil, fmt.Errorf("loadtest (metrics on): %w", err)
	}

	// Percentile table from the instrumented arm — the configuration a
	// production deployment runs.
	byClass := map[string][]time.Duration{}
	for _, s := range on {
		byClass[s.class] = append(byClass[s.class], s.dur)
	}
	perc := &Table{
		Title:  "Load test: latency percentiles by query class (live TCP cluster, metrics on)",
		Header: []string{"class", "ops", "p50 (ms)", "p90 (ms)", "p99 (ms)", "max (ms)"},
		Notes: []string{
			fmt.Sprintf("%d sessions x %d ops against %d shards x %d replicas on loopback TCP",
				cfg.Sessions, cfg.Ops, cfg.Shards, cfg.Replicas),
			"point = /site/regions/europe/item (strict); scan = //bidder/date (containment); aggregate = /site/regions//item + server-side SUM fold",
			"one untimed warm-up per class per session; advanced engine throughout",
		},
	}
	for _, c := range loadClasses {
		ds := byClass[c.name]
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		if len(ds) == 0 {
			perc.Rows = append(perc.Rows, []string{c.name, "0", "-", "-", "-", "-"})
			continue
		}
		perc.Rows = append(perc.Rows, []string{
			c.name, fmt.Sprintf("%d", len(ds)),
			ms(quantileDur(ds, 0.50)), ms(quantileDur(ds, 0.90)),
			ms(quantileDur(ds, 0.99)), ms(ds[len(ds)-1]),
		})
	}

	// Overhead table: identical workloads, medians compared. The
	// instrumentation design target is <2% — every hot-path gate is one
	// atomic pointer load when nothing is attached, and with metrics on
	// the per-frame cost is a handful of atomic adds.
	overhead := &Table{
		Title:  "Instrumentation overhead: identical load with metrics registries attached vs detached",
		Header: []string{"run", "ops", "median (ms)", "p90 (ms)"},
		Notes: []string{
			"metrics on: every runtime exposes its registry (RMI counters + per-method histograms + per-tenant collectors); every session registers cluster metrics",
			"metrics off: nothing attached — the hot path sees only nil atomic.Pointer gates",
		},
	}
	var all [2][]time.Duration
	for i, run := range [2][]loadSample{off, on} {
		for _, s := range run {
			all[i] = append(all[i], s.dur)
		}
		sort.Slice(all[i], func(a, b int) bool { return all[i][a] < all[i][b] })
	}
	names := [2]string{"metrics off", "metrics on"}
	for i := range all {
		overhead.Rows = append(overhead.Rows, []string{
			names[i], fmt.Sprintf("%d", len(all[i])),
			ms(quantileDur(all[i], 0.50)), ms(quantileDur(all[i], 0.90)),
		})
	}
	offMed, onMed := quantileDur(all[0], 0.50), quantileDur(all[1], 0.50)
	if offMed > 0 {
		pct := 100 * (float64(onMed) - float64(offMed)) / float64(offMed)
		overhead.Rows = append(overhead.Rows, []string{
			"overhead", "", fmt.Sprintf("%+.2f%%", pct), "",
		})
		overhead.Notes = append(overhead.Notes,
			"overhead = (on median - off median) / off median; design target < 2%")
	}
	return []*Table{perc, overhead}, nil
}
