package experiment

import (
	"strconv"
	"strings"
	"testing"

	"encshare/internal/engine"
	"encshare/internal/xpath"
)

// Aliases keep the strictness test terse.
var (
	parseQuery      = xpath.Parse
	containmentTest = engine.Containment
)

// testEnv is shared across the query experiments (building one takes a
// noticeable fraction of a second).
func testEnv(t *testing.T) *Env {
	t.Helper()
	env, err := NewEnv(0.05, 42)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(env.Close)
	return env
}

func cell(t *testing.T, tb *Table, row, col int) string {
	t.Helper()
	if row >= len(tb.Rows) || col >= len(tb.Rows[row]) {
		t.Fatalf("table %q has no cell (%d,%d)", tb.Title, row, col)
	}
	return tb.Rows[row][col]
}

func cellF(t *testing.T, tb *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell(t, tb, row, col), "x"), 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not numeric", row, col, cell(t, tb, row, col))
	}
	return v
}

func TestEncodingLinear(t *testing.T) {
	tb, err := Encoding([]float64{0.05, 0.1, 0.2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Output/input ratio roughly constant (linearity) and > 1 (overhead).
	r0, r2 := cellF(t, tb, 0, 5), cellF(t, tb, 2, 5)
	if r0 < 1.0 || r2 < 1.0 {
		t.Errorf("output smaller than input: ratios %.2f %.2f", r0, r2)
	}
	if r2/r0 > 1.3 || r0/r2 > 1.3 {
		t.Errorf("output/input ratio drifts: %.2f vs %.2f (not linear)", r0, r2)
	}
	// Meta share near the paper's 17%.
	meta := cellF(t, tb, 1, 4)
	if meta < 5 || meta > 35 {
		t.Errorf("meta overhead %.1f%% far from paper's ~17%%", meta)
	}
}

func TestQueryLengthShape(t *testing.T) {
	env := testEnv(t)
	tb, err := QueryLength(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 9 {
		t.Fatalf("rows = %d, want 9 (Table 1)", len(tb.Rows))
	}
	for i := range tb.Rows {
		simple := cellF(t, tb, i, 3)
		advanced := cellF(t, tb, i, 4)
		if simple <= 0 || advanced <= 0 {
			t.Fatalf("query %d: zero evaluations", i+1)
		}
		// Paper: "differ by at most a constant factor" — advanced does
		// more work on these chain queries but within a small multiple.
		if advanced < simple {
			t.Errorf("query %d: advanced (%v) cheaper than simple (%v) on its worst case", i+1, advanced, simple)
		}
		if advanced > 8*simple {
			t.Errorf("query %d: ratio %v not a small constant", i+1, advanced/simple)
		}
	}
	// Output size for query 1 (/site) is exactly 1.
	if got := cell(t, tb, 0, 2); got != "1" {
		t.Errorf("output size of /site = %s", got)
	}
}

func TestStrictnessShape(t *testing.T) {
	env := testEnv(t)
	tb, err := Strictness(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 (Table 2)", len(tb.Rows))
	}
	// Paper: "for all queries the advanced algorithm outperforms the
	// simple algorithm". Per-query wall-clock is too noisy under CI load,
	// so assert the deterministic mechanism behind it — the advanced
	// engine prunes, visiting no more nodes than simple on every query —
	// plus the aggregate time win with a wide margin.
	var sumSimple, sumAdv float64
	for i, qs := range Table2Queries {
		sumSimple += cellF(t, tb, i, 2)
		sumAdv += cellF(t, tb, i, 4)
		q, err := parseQuery(qs)
		if err != nil {
			t.Fatal(err)
		}
		s, err := env.Simple.Run(q, containmentTest)
		if err != nil {
			t.Fatal(err)
		}
		a, err := env.Advanced.Run(q, containmentTest)
		if err != nil {
			t.Fatal(err)
		}
		if a.Stats.NodesVisited > s.Stats.NodesVisited {
			t.Errorf("query %d: advanced visited %d nodes, simple %d — pruning lost",
				i+1, a.Stats.NodesVisited, s.Stats.NodesVisited)
		}
	}
	if sumAdv > sumSimple {
		t.Errorf("aggregate non-strict time: advanced %.1fms > simple %.1fms", sumAdv, sumSimple)
	}
}

func TestStrictnessWorkCounts(t *testing.T) {
	env := testEnv(t)
	tb, err := StrictnessWork(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Strict columns must mention reconstructions ("ev+rec" format).
	for i := range tb.Rows {
		if !strings.Contains(cell(t, tb, i, 3), "+") {
			t.Errorf("row %d strict/simple cell lacks reconstruction count", i)
		}
	}
}

func TestAccuracyShape(t *testing.T) {
	env := testEnv(t)
	tb, err := Accuracy(env)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tb.Rows {
		acc := cellF(t, tb, i, 4)
		if acc < 0 || acc > 100 {
			t.Fatalf("query %d: accuracy %.1f out of range", i+1, acc)
		}
		e, c := cellF(t, tb, i, 2), cellF(t, tb, i, 3)
		if e > c {
			t.Fatalf("query %d: E=%v > C=%v", i+1, e, c)
		}
	}
	// Queries with // must lose accuracy (paper: "accuracy drops for each
	// // in the query"); all five Table 2 queries contain //.
	below := 0
	for i := range tb.Rows {
		if cellF(t, tb, i, 4) < 100 {
			below++
		}
	}
	if below == 0 {
		t.Error("no query lost accuracy despite // steps")
	}
}

func TestTrieStorageClaims(t *testing.T) {
	tb, err := TrieStorage(7)
	if err != nil {
		t.Fatal(err)
	}
	byMetric := map[string]string{}
	for _, row := range tb.Rows {
		byMetric[row[0]] = row[1]
	}
	dedup, _ := strconv.ParseFloat(byMetric["dedup saving %"], 64)
	if dedup < 20 {
		t.Errorf("dedup saving %.1f%% too low (paper ~50%%)", dedup)
	}
	trieSave, _ := strconv.ParseFloat(byMetric["trie compression saving %"], 64)
	if trieSave < 40 {
		t.Errorf("trie compression saving %.1f%% too low (paper 75-80%%)", trieSave)
	}
	bpc, _ := strconv.ParseFloat(byMetric["bytes per source character"], 64)
	if bpc <= 0 || bpc > 20 {
		t.Errorf("bytes per character %.2f implausible", bpc)
	}
}

func TestAblations(t *testing.T) {
	env := testEnv(t)
	if _, err := AblationDescendants(env); err != nil {
		t.Fatal(err)
	}
	tb, err := AblationIndexes(2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatal("index ablation missing rows")
	}
	ser, err := AblationSerialization()
	if err != nil {
		t.Fatal(err)
	}
	// F_83 packed must be 66 bytes vs 82 naive.
	found := false
	for _, row := range ser.Rows {
		if row[0] == "GF(83)" {
			found = true
			if row[2] != "66" || row[3] != "82" {
				t.Errorf("GF(83) serialization row = %v", row)
			}
		}
	}
	if !found {
		t.Error("GF(83) missing from serialization ablation")
	}
	if _, err := AblationMulStrategy(); err != nil {
		t.Fatal(err)
	}
}

func TestTableFprint(t *testing.T) {
	tb := &Table{
		Title:  "demo",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"hello"},
	}
	var sb strings.Builder
	if err := tb.Fprint(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"== demo ==", "333", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestMutateShape(t *testing.T) {
	tb, err := Mutate(MutateConfig{Ops: 2, Scale: 0.02, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// One row per operation class plus the two concurrent-session
	// group-commit arms (coalescing on/off).
	if len(tb.Rows) != len(mutateClasses)+2 {
		t.Fatalf("rows = %d, want one per class (%d) + 2 group-commit arms", len(tb.Rows), len(mutateClasses))
	}
	for i, class := range mutateClasses {
		if cell(t, tb, i, 0) != class {
			t.Errorf("row %d is %q, want %q", i, cell(t, tb, i, 0), class)
		}
		if cell(t, tb, i, 1) != "2" {
			t.Errorf("row %d ops = %q, want 2", i, cell(t, tb, i, 1))
		}
		// Every arm produced a timing (any parse failure fails here).
		for col := 2; col <= 4; col++ {
			if cellF(t, tb, i, col) < 0 {
				t.Errorf("row %d col %d negative", i, col)
			}
		}
	}
	// The group-commit arms run only the tcp+wal deployment: 8 sessions
	// × Ops appends each, placeholder cells for the other columns.
	for off, label := range []string{"(group commit)", "(fsync per append)"} {
		i := len(mutateClasses) + off
		if !strings.Contains(cell(t, tb, i, 0), label) {
			t.Errorf("row %d is %q, want %q arm", i, cell(t, tb, i, 0), label)
		}
		if cell(t, tb, i, 1) != "16" {
			t.Errorf("row %d ops = %q, want 16 (8 sessions × 2)", i, cell(t, tb, i, 1))
		}
		if cell(t, tb, i, 2) != "-" || cell(t, tb, i, 3) != "-" {
			t.Errorf("row %d local/tcp cells = %q/%q, want placeholders", i, cell(t, tb, i, 2), cell(t, tb, i, 3))
		}
		if cellF(t, tb, i, 4) < 0 {
			t.Errorf("row %d tcp+wal negative", i)
		}
	}
}
