package experiment

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"encshare/internal/engine"
	"encshare/internal/filter"
	"encshare/internal/rmi"
	"encshare/internal/server"
	"encshare/internal/xpath"
)

// MultiTenant measures tenant isolation in the server runtime: a
// victim tenant runs the advanced strict engine over its table while a
// noisy neighbor tenant floods the same process with evaluation
// batches over its own (equally large) table. With per-tenant cache
// quotas the victim keeps its decoded-polynomial hit rate; with the
// quota disabled (one shared cache of the same total budget) the
// neighbor's scan evicts the victim's hot set between queries.
func MultiTenant(env *Env) (*Table, error) {
	nodes, err := env.Store.Count()
	if err != nil {
		return nil, err
	}
	// Half the table: the victim's segment still fits its hot set, but
	// a shared cache of this size cannot hold the neighbor's full
	// random sweep plus the victim's hot set.
	budget := int(nodes) / 2
	const query = "/site//europe/item"
	const rounds = 5

	t := &Table{
		Title:  "Tenant isolation: victim query vs noisy neighbor, cache quotas on vs off (advanced engine, strict)",
		Header: []string{"scenario", "victim median (ms)", "victim hit rate", "victim decodes", "noisy evals"},
		Notes: []string{
			fmt.Sprintf("one runtime process, two tenants over %d-node tables; global cache budget %d entries", nodes, budget),
			"quotas on: per-tenant cache segments (budget/2 each) — the neighbor cannot evict the victim's entries",
			"quotas off: one shared cache of the full budget — the neighbor's scan evicts the victim's hot set",
			fmt.Sprintf("victim runs %s %d times; noisy tenant streams random 256-node eval batches throughout", query, rounds),
		},
	}

	type scenario struct {
		name   string
		noisy  bool
		shared bool
	}
	for _, sc := range []scenario{
		{"idle neighbor, quotas on", false, false},
		{"noisy neighbor, quotas on", true, false},
		{"noisy neighbor, quotas off", true, true},
	} {
		row, err := multiTenantScenario(env, query, rounds, budget, sc.noisy, sc.shared)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, append([]string{sc.name}, row...))
	}
	return t, nil
}

func multiTenantScenario(env *Env, query string, rounds, budget int, noisy, shared bool) ([]string, error) {
	perTenant := budget / 2
	cfg := server.Config{CacheBudget: budget, SharedCache: shared}
	rt := server.New(cfg)
	quota := perTenant
	if shared {
		quota = 0 // quotas off: tenants draw on the one shared cache
	}
	if err := rt.AttachStore(server.Tenant{Name: "victim", P: 83, CacheEntries: quota}, env.Store); err != nil {
		return nil, err
	}
	// The noisy neighbor serves the same table under its own name —
	// equal size, disjoint cache keys, so its traffic is pure cache
	// pressure from the runtime's point of view.
	if err := rt.AttachStore(server.Tenant{Name: "noisy", P: 83, CacheEntries: quota}, env.Store); err != nil {
		return nil, err
	}

	vCli := rmi.Pipe(rt.RMI())
	vCli.SetTenant("victim")
	defer vCli.Close()
	victim := filter.NewClient(filter.NewRemote(vCli), env.Scheme)
	adv := engine.NewAdvanced(victim, env.Map)
	parsed, err := xpath.Parse(query)
	if err != nil {
		return nil, err
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	if noisy {
		nCli := rmi.Pipe(rt.RMI())
		nCli.SetTenant("noisy")
		defer nCli.Close()
		neighbor := filter.NewRemote(nCli)
		lo, hi, err := env.Store.MinMaxPre()
		if err != nil {
			return nil, err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(99))
			reqs := make([]filter.EvalRequest, 256)
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := range reqs {
					reqs[i] = filter.EvalRequest{Pre: lo + rng.Int63n(hi-lo+1), Point: 7}
				}
				if _, err := neighbor.EvalBatch(reqs); err != nil {
					return
				}
			}
		}()
	}

	// Warm the victim's cache once, then measure steady-state rounds —
	// the state a resident tenant is in when a neighbor moves in.
	if _, err := adv.Run(parsed, engine.Equality); err != nil {
		close(stop)
		wg.Wait()
		return nil, err
	}
	statsBefore := rt.Stats()["victim"]
	times := make([]time.Duration, 0, rounds)
	for i := 0; i < rounds; i++ {
		start := time.Now()
		if _, err := adv.Run(parsed, engine.Equality); err != nil {
			close(stop)
			wg.Wait()
			return nil, err
		}
		times = append(times, time.Since(start))
	}
	statsAfter := rt.Stats()["victim"]
	close(stop)
	wg.Wait()
	noisyEvals := rt.Stats()["noisy"].Evals

	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	median := times[len(times)/2]
	hits := statsAfter.CacheHits - statsBefore.CacheHits
	misses := statsAfter.CacheMisses - statsBefore.CacheMisses
	decodes := statsAfter.Decodes - statsBefore.Decodes
	hitRate := "n/a"
	if hits+misses > 0 {
		hitRate = fmt.Sprintf("%.1f%%", 100*float64(hits)/float64(hits+misses))
	}
	return []string{
		fmt.Sprintf("%.2f", float64(median.Microseconds())/1000),
		hitRate,
		fmt.Sprintf("%d", decodes),
		fmt.Sprintf("%d", noisyEvals),
	}, nil
}
