package experiment

import (
	"fmt"
	"net"
	"time"

	"encshare/internal/cluster"
	"encshare/internal/engine"
	"encshare/internal/filter"
	"encshare/internal/rmi"
	"encshare/internal/xpath"
)

// replicatedEnv serves the env's table as a shards × replicas cluster
// over in-process rmi pipes. Each replica's client connection is
// retained so scenarios can sever it (the in-process equivalent of the
// replica process dying) or slow it down.
type replicatedEnv struct {
	filter  *cluster.Filter
	conns   [][]*rmi.Client // [shard][replica]
	cleanup func()
}

// slowWriter delays every reply frame a server writes — the in-process
// stand-in for a replica on a congested or distant host.
type slowWriter struct {
	net.Conn
	delay time.Duration
}

func (c *slowWriter) Write(b []byte) (int, error) {
	time.Sleep(c.delay)
	return c.Conn.Write(b)
}

func newReplicatedEnv(env *Env, shards, replicas int, slow map[[2]int]time.Duration, opts cluster.Options) (*replicatedEnv, error) {
	lo, hi, err := env.Store.MinMaxPre()
	if err != nil {
		return nil, err
	}
	ranges, err := cluster.PartitionEven(lo, hi, shards)
	if err != nil {
		return nil, err
	}
	stores, dropStores, err := cluster.SplitStore(env.Store, ranges)
	if err != nil {
		dropStores()
		return nil, err
	}
	re := &replicatedEnv{conns: make([][]*rmi.Client, shards)}
	var closers []func()
	specs := make([]cluster.Shard, shards)
	for i, st := range stores {
		specs[i] = cluster.Shard{Range: ranges[i]}
		for j := 0; j < replicas; j++ {
			srv := rmi.NewServer()
			filter.RegisterServer(srv, filter.NewServerFilter(st, env.Ring, 4096))
			cConn, sConn := net.Pipe()
			serveConn := net.Conn(sConn)
			if d := slow[[2]int{i, j}]; d > 0 {
				serveConn = &slowWriter{Conn: sConn, delay: d}
			}
			go srv.ServeConn(serveConn)
			cli := rmi.NewClient(cConn)
			closers = append(closers, func() { cli.Close() })
			re.conns[i] = append(re.conns[i], cli)
			specs[i].Replicas = append(specs[i].Replicas, cluster.Replica{
				Addr: fmt.Sprintf("shard%d-r%d", i, j),
				Conn: filter.NewRemote(cli),
			})
		}
	}
	cf, err := cluster.NewWith(specs, opts)
	if err != nil {
		for _, c := range closers {
			c()
		}
		dropStores()
		return nil, err
	}
	re.filter = cf
	re.cleanup = func() {
		for _, c := range closers {
			c()
		}
		dropStores()
	}
	return re, nil
}

// killReplica severs one replica's connection, as a crashed server
// process would.
func (re *replicatedEnv) killReplica(shard, replica int) {
	re.conns[shard][replica].Close()
}

// Failover measures the replicated cluster under degraded conditions:
// for each Table 2 query, the batched advanced engine runs against a
// 3-shard × 2-replica cluster that is (a) healthy, (b) missing one
// replica of every shard — every frame routed there fails over to the
// sibling, (c) serving one artificially slow replica per shard, and
// (d) the same slow cluster with hedged reads. Results are identical in
// all scenarios (replicas are byte-identical and immutable); the table
// shows what failover costs and what hedging buys back.
func Failover(env *Env) (*Table, error) {
	const slowDelay = 3 * time.Millisecond
	t := &Table{
		Title:  "Failover: 3-shard × 2-replica cluster under replica loss and stragglers (advanced engine, batched)",
		Header: []string{"query", "scenario", "results", "failovers", "hedges", "time (ms)"},
		Notes: []string{
			"killed: replica 0 of every shard severed before the run; every frame it owned fails over",
			fmt.Sprintf("slow: replica 0 of every shard delays each reply frame by %s; hedged adds Options.Hedge with a 1ms trigger", slowDelay),
			"result counts are identical across scenarios: replicas are byte-identical, so failover and hedging never change answers",
		},
	}
	type scenario struct {
		name string
		slow map[[2]int]time.Duration
		opts cluster.Options
		kill bool
	}
	slowAll := map[[2]int]time.Duration{{0, 0}: slowDelay, {1, 0}: slowDelay, {2, 0}: slowDelay}
	scenarios := []scenario{
		{name: "healthy"},
		{name: "killed", kill: true},
		{name: "slow", slow: slowAll},
		{name: "slow+hedged", slow: slowAll, opts: cluster.Options{Hedge: true, HedgeAfter: time.Millisecond}},
	}
	for _, qs := range Table2Queries {
		q := xpath.MustParse(qs)
		for _, sc := range scenarios {
			re, err := newReplicatedEnv(env, 3, 2, sc.slow, sc.opts)
			if err != nil {
				return nil, err
			}
			if sc.kill {
				for si := 0; si < 3; si++ {
					re.killReplica(si, 0)
				}
			}
			cli := filter.NewClient(re.filter, env.Scheme)
			eng := engine.NewAdvanced(cli, env.Map)
			start := time.Now()
			res, err := eng.Run(q, engine.Containment)
			elapsed := time.Since(start)
			if err != nil {
				re.cleanup()
				return nil, fmt.Errorf("%s under %s: %w", qs, sc.name, err)
			}
			t.Rows = append(t.Rows, []string{
				qs, sc.name,
				fmt.Sprintf("%d", len(res.Pres)),
				fmt.Sprintf("%d", re.filter.Failovers()),
				fmt.Sprintf("%d", re.filter.Hedges()),
				fmt.Sprintf("%.2f", float64(elapsed.Microseconds())/1000),
			})
			re.cleanup()
		}
	}
	return t, nil
}
