package experiment

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"testing"
	"time"

	"encshare/internal/minisql"
	"encshare/internal/store"
)

// StoreEngines benchmarks the v2 paged storage engine against the v1
// minisql oracle on identical contents: point lookups, child fetches,
// cold and warm subtree scans, the metadata-only scan behind frontier
// expansion, and the mutation apply path. Both stores are loaded from
// one dump of the environment's table, so every number compares the same
// rows.
func StoreEngines(env *Env) (*Table, error) {
	var img bytes.Buffer
	if err := env.Store.Dump(&img); err != nil {
		return nil, err
	}
	open := func(eng store.Engine) (*store.Store, string, error) {
		dsn := minisql.FreshDSN()
		s, err := store.OpenWith(dsn, store.Options{Engine: eng})
		if err != nil {
			return nil, "", err
		}
		if err := s.Load(bytes.NewReader(img.Bytes())); err != nil {
			s.Close()
			minisql.Drop(dsn)
			return nil, "", err
		}
		return s, dsn, nil
	}

	v1, dsn1, err := open(store.EngineV1)
	if err != nil {
		return nil, err
	}
	defer func() { v1.Close(); minisql.Drop(dsn1) }()
	v2, dsn2, err := open(store.EngineV2)
	if err != nil {
		return nil, err
	}
	defer func() { v2.Close(); minisql.Drop(dsn2) }()

	root, err := v2.Root()
	if err != nil {
		return nil, err
	}
	lo, hi, err := v2.MinMaxPre()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(83))
	pres := make([]int64, 512)
	for i := range pres {
		pres[i] = lo + rng.Int63n(hi-lo+1)
	}

	t := &Table{
		Title:  "Storage engine — v2 (paged) vs v1 (minisql oracle)",
		Header: []string{"operation", "v1 µs", "v2 µs", "speedup"},
	}
	// Each engine runs several blocks of reps and reports its median
	// block average. The median drops host-noise spikes (scheduler
	// preemption, a background build) without also censoring the
	// engine's own GC cost the way a minimum would — an engine that
	// allocates per row pays for it in most blocks, and should. The GC
	// fence before each measurement keeps one engine's garbage from
	// being collected on the other engine's clock.
	const blocks = 5
	measure := func(s *store.Store, reps int, op func(*store.Store) error) (time.Duration, error) {
		ds := make([]time.Duration, 0, blocks)
		runtime.GC()
		for b := 0; b < blocks; b++ {
			start := time.Now()
			for i := 0; i < reps; i++ {
				if err := op(s); err != nil {
					return 0, err
				}
			}
			ds = append(ds, time.Since(start)/time.Duration(reps))
		}
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		return ds[blocks/2], nil
	}
	row := func(name string, reps int, op func(*store.Store) error) error {
		d1, err := measure(v1, reps, op)
		if err != nil {
			return err
		}
		d2, err := measure(v2, reps, op)
		if err != nil {
			return err
		}
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%.1f", float64(d1.Nanoseconds())/1e3),
			fmt.Sprintf("%.1f", float64(d2.Nanoseconds())/1e3),
			fmt.Sprintf("%.2fx", float64(d1)/float64(d2)),
		})
		return nil
	}

	// Cold subtree scan: fresh handles, first touch of every heap page
	// (the v2 pool starts empty; v1 re-prepares its statements).
	coldOp := func(eng store.Engine) (time.Duration, error) {
		s, dsn, err := open(eng)
		if err != nil {
			return 0, err
		}
		defer func() { s.Close(); minisql.Drop(dsn) }()
		start := time.Now()
		if _, err := s.Descendants(root.Pre, root.Post); err != nil {
			return 0, err
		}
		return time.Since(start), nil
	}
	c1, err := coldOp(store.EngineV1)
	if err != nil {
		return nil, err
	}
	c2, err := coldOp(store.EngineV2)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{
		"subtree scan (cold)",
		fmt.Sprintf("%.1f", float64(c1.Nanoseconds())/1e3),
		fmt.Sprintf("%.1f", float64(c2.Nanoseconds())/1e3),
		fmt.Sprintf("%.2fx", float64(c1)/float64(c2)),
	})

	if err := row("point lookup", 6, func(s *store.Store) error {
		for _, pre := range pres {
			if _, err := s.Node(pre); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	if err := row("children", 6, func(s *store.Store) error {
		for _, pre := range pres[:128] {
			if _, err := s.Children(pre); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	var warmSpeedup float64
	if err := row("subtree scan (warm)", 8, func(s *store.Store) error {
		_, err := s.Descendants(root.Pre, root.Post)
		return err
	}); err != nil {
		return nil, err
	}
	fmt.Sscanf(t.Rows[len(t.Rows)-1][3], "%fx", &warmSpeedup)
	if err := row("meta-only scan", 8, func(s *store.Store) error {
		return s.VisitDescendantsMeta(root.Pre, root.Post, func(_, _, _ int64) {})
	}); err != nil {
		return nil, err
	}
	if err := row("mutation apply", 4, func(s *store.Store) error {
		for _, pre := range pres[:128] {
			n, err := s.Node(pre)
			if err != nil {
				return err
			}
			if err := s.UpdateNode(pre, n); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}

	// Allocation profile of the v2 meta-only scan: the reply framer's
	// fast path must not allocate per visited row.
	var visited int64
	allocs := testing.AllocsPerRun(10, func() {
		v2.VisitDescendantsMeta(root.Pre, root.Post, func(_, _, _ int64) { visited++ })
	})
	perRow := allocs / float64(visited/11) // AllocsPerRun runs the body 11 times
	if ps, ok := v2.PoolStats(); ok {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"v2 pool: %d/%d pages resident, %d hits, %d misses, %d evictions",
			ps.Resident, ps.Pages, ps.Hits, ps.Misses, ps.Evictions))
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"v2 meta-only scan allocates %.4f per visited row (%.1f per scan)", perRow, allocs))
	t.Notes = append(t.Notes, fmt.Sprintf(
		"warm subtree scan speedup %.2fx (target ≥3x)", warmSpeedup))
	return t, nil
}
