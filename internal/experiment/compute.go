package experiment

import (
	"fmt"
	"testing"

	"encshare/internal/engine"
	"encshare/internal/gf"
	"encshare/internal/prg"
	"encshare/internal/xpath"
)

// Compute benchmarks the hot-path compute engine against the retained
// generic implementations, in one binary: table-driven GF(q) arithmetic
// vs the schoolbook/Fermat originals, the uint64-limb radix-q codec vs
// the big.Int original, streamed client-share evaluation vs
// materialize-then-evaluate, and the end-to-end XMark query CPU cost.
// The generic paths are bit-identical oracles kept for exactly this
// purpose, so the "before" columns are measured, not remembered.
func Compute(env *Env) (*Table, error) {
	t := &Table{
		Title:  "Compute hot path — generic (pre-rewrite) vs table/limb engine",
		Header: []string{"operation", "before ns/op", "after ns/op", "speedup", "after B/op"},
	}

	bench := func(f func(b *testing.B)) testing.BenchmarkResult {
		return testing.Benchmark(f)
	}
	addRow := func(name string, before, after testing.BenchmarkResult) {
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%.1f", float64(before.NsPerOp())),
			fmt.Sprintf("%.1f", float64(after.NsPerOp())),
			fmt.Sprintf("%.1fx", float64(before.NsPerOp())/float64(after.NsPerOp())),
			fmt.Sprintf("%d", after.AllocedBytesPerOp()),
		})
	}

	// --- GF(q) arithmetic -------------------------------------------------
	fields := []*gf.Field{gf.MustNew(83, 1), gf.MustNew(1021, 2)}
	for _, f := range fields {
		f := f
		xs := make([]gf.Elem, 256)
		x := gf.Elem(1)
		for i := range xs {
			xs[i] = x
			x = f.MulGeneric(x, f.Generator())
		}
		out := make([]gf.Elem, 256)
		mulGen := bench(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				j := i & 255
				out[j] = f.MulGeneric(xs[j], xs[255-j])
			}
		})
		mulTab := bench(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				j := i & 255
				out[j] = f.Mul(xs[j], xs[255-j])
			}
		})
		addRow("Mul "+f.String(), mulGen, mulTab)
		invGen := bench(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				j := i & 255
				out[j] = f.InvGeneric(xs[j])
			}
		})
		invTab := bench(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				j := i & 255
				out[j] = f.Inv(xs[j])
			}
		})
		addRow("Inv "+f.String(), invGen, invTab)
	}

	// --- radix-q codec ----------------------------------------------------
	r := env.Ring
	poly := r.Rand(prg.New([]byte("compute")).Stream("p", 0))
	blob := r.Bytes(poly)
	encBig := bench(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = r.BytesBig(poly)
		}
	})
	buf := make([]byte, 0, r.PolyBytes())
	encLimb := bench(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = r.AppendBytes(buf[:0], poly)
		}
	})
	addRow("Encode poly "+r.Field().String(), encBig, encLimb)
	decBig := bench(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := r.FromBytesBig(blob); err != nil {
				b.Fatal(err)
			}
		}
	})
	dst := r.NewPoly()
	decLimb := bench(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := r.DecodeInto(dst, blob); err != nil {
				b.Fatal(err)
			}
		}
	})
	addRow("Decode poly "+r.Field().String(), decBig, decLimb)

	// --- client-share evaluation -----------------------------------------
	scheme := env.Scheme
	materialize := bench(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			share := scheme.ClientShare(uint64(i & 1023))
			_ = r.Eval(share, 2)
		}
	})
	streamed := bench(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = scheme.EvalClientAt(uint64(i&1023), 2)
		}
	})
	addRow("Client-share eval", materialize, streamed)

	// --- end-to-end query CPU --------------------------------------------
	q := xpath.MustParse("/site//europe/item")
	for _, cfg := range []struct {
		name string
		test engine.Test
	}{
		{"query nonstrict (advanced)", engine.Containment},
		{"query strict (advanced)", engine.Equality},
	} {
		cfg := cfg
		res := bench(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := env.Advanced.Run(q, cfg.test); err != nil {
					b.Fatal(err)
				}
			}
		})
		t.Rows = append(t.Rows, []string{
			cfg.name, "(see note)",
			fmt.Sprintf("%.0f", float64(res.NsPerOp())),
			"-",
			fmt.Sprintf("%d", res.AllocedBytesPerOp()),
		})
	}

	if st, err := env.Client.ServerStats(); err == nil && st.CacheHits+st.CacheMisses > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"server cache over this run: %d hits / %d misses (%.1f%% hit rate), %d decodes",
			st.CacheHits, st.CacheMisses,
			100*float64(st.CacheHits)/float64(st.CacheHits+st.CacheMisses), st.Decodes))
	}
	t.Notes = append(t.Notes,
		"'before' columns run the retained generic oracles (MulGeneric/BytesBig/materialized shares) in this binary",
		"end-to-end pre-rewrite baseline, interleaved paired runs on XMark 0.1 (see EXPERIMENTS.md): nonstrict 338 µs/op, strict 2391 µs/op")
	return t, nil
}
