package experiment

import (
	"fmt"
	"time"

	"encshare/internal/cluster"
	"encshare/internal/engine"
	"encshare/internal/filter"
	"encshare/internal/rmi"
	"encshare/internal/xpath"
)

// clusterEnv serves the env's table as an n-shard cluster over
// in-process rmi pipes, with counting Remote proxies per shard.
type clusterEnv struct {
	filter  *cluster.Filter
	cleanup func()
}

func newClusterEnv(env *Env, n int) (*clusterEnv, error) {
	lo, hi, err := env.Store.MinMaxPre()
	if err != nil {
		return nil, err
	}
	ranges, err := cluster.PartitionEven(lo, hi, n)
	if err != nil {
		return nil, err
	}
	stores, dropStores, err := cluster.SplitStore(env.Store, ranges)
	if err != nil {
		dropStores()
		return nil, err
	}
	var closers []func()
	shards := make([]cluster.Shard, n)
	for i, st := range stores {
		srv := rmi.NewServer()
		filter.RegisterServer(srv, filter.NewServerFilter(st, env.Ring, 4096))
		cli := rmi.Pipe(srv)
		closers = append(closers, func() { cli.Close() })
		shards[i] = cluster.Shard{
			Addr:  fmt.Sprintf("shard%d", i),
			Range: ranges[i],
			Conn:  filter.NewRemote(cli),
		}
	}
	cf, err := cluster.New(shards)
	if err != nil {
		for _, c := range closers {
			c()
		}
		dropStores()
		return nil, err
	}
	return &clusterEnv{
		filter: cf,
		cleanup: func() {
			for _, c := range closers {
				c()
			}
			dropStores()
		},
	}, nil
}

// ClusterScaling measures the batched pipeline against clusters of
// increasing width: for each shard count, both engines run the Table 2
// queries over real rmi frames (in-process pipes), reporting server
// exchanges, evaluations, and wall time per query. The exchange column
// is the scaling story: a batched step costs at most one exchange per
// shard, so exchanges grow at worst linearly in the shard count while
// per-shard work shrinks.
func ClusterScaling(env *Env, shardCounts []int) (*Table, error) {
	t := &Table{
		Title:  "Cluster: exchanges and latency vs shard count (batched pipeline, XMark)",
		Header: []string{"query", "engine", "shards", "exchanges", "evals", "time (ms)"},
		Notes: []string{
			"per-shard frames are issued concurrently; exchanges sum over shards",
			"1 shard = the single-server batched pipeline",
		},
	}
	for _, qs := range Table2Queries {
		q := xpath.MustParse(qs)
		for _, engName := range []string{"simple", "advanced"} {
			for _, n := range shardCounts {
				ce, err := newClusterEnv(env, n)
				if err != nil {
					return nil, err
				}
				cli := filter.NewClient(ce.filter, env.Scheme)
				var eng engine.Engine
				if engName == "simple" {
					eng = engine.NewSimple(cli, env.Map)
				} else {
					eng = engine.NewAdvanced(cli, env.Map)
				}
				before := ce.filter.RoundTrips()
				start := time.Now()
				res, err := eng.Run(q, engine.Containment)
				elapsed := time.Since(start)
				if err != nil {
					ce.cleanup()
					return nil, fmt.Errorf("%s on %d shards: %w", qs, n, err)
				}
				exchanges := ce.filter.RoundTrips() - before
				t.Rows = append(t.Rows, []string{
					qs, engName, fmt.Sprintf("%d", n),
					fmt.Sprintf("%d", exchanges),
					fmt.Sprintf("%d", res.Stats.Evaluations),
					fmt.Sprintf("%.2f", float64(elapsed.Microseconds())/1000),
				})
				ce.cleanup()
			}
		}
	}
	return t, nil
}
