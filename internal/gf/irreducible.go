package gf

import "fmt"

// This file finds monic irreducible polynomials over F_p to define the
// extension field F_{p^e}. Polynomials here are coefficient slices over
// F_p (c[0] + c[1] x + ...), independent of the packed Elem encoding.

// findIrreducible returns a monic irreducible polynomial of degree e over
// F_p as a coefficient slice of length e+1 (leading coefficient 1). The
// search is deterministic (lexicographic over the non-leading
// coefficients) so the same (p, e) always defines the same field.
func findIrreducible(p, e uint32) ([]uint32, error) {
	m := make([]uint32, e+1)
	m[e] = 1
	// Enumerate the p^e candidate lower-coefficient vectors in
	// lexicographic order. Density of irreducibles is ~1/e so the search
	// terminates quickly; q = p^e is bounded by MaxQ.
	for {
		if m[0] != 0 && isIrreducible(m, p) { // constant term 0 => divisible by x
			return append([]uint32(nil), m...), nil
		}
		// Increment the vector m[0..e-1] as a base-p counter.
		i := uint32(0)
		for ; i < e; i++ {
			m[i]++
			if m[i] < p {
				break
			}
			m[i] = 0
		}
		if i == e {
			return nil, fmt.Errorf("gf: no irreducible polynomial of degree %d over F_%d (impossible)", e, p)
		}
	}
}

// isIrreducible applies Rabin's irreducibility test to the monic
// polynomial m over F_p: m of degree e is irreducible iff
// x^(p^e) == x (mod m) and gcd(x^(p^(e/r)) - x, m) == 1 for every prime
// r dividing e.
func isIrreducible(m []uint32, p uint32) bool {
	e := uint32(len(m) - 1)
	// x^(p^e) mod m must equal x.
	xq := polyPowXP(m, p, e)
	if !polyEqualX(xq, p) {
		return false
	}
	for _, r := range primeFactors(e) {
		h := polyPowXP(m, p, e/r) // x^(p^(e/r)) mod m
		// g = h - x
		g := append([]uint32(nil), h...)
		for len(g) < 2 {
			g = append(g, 0)
		}
		g[1] = submod(g[1], 1, p)
		g = polyTrim(g)
		if len(polyGCD(g, m, p)) != 1 { // gcd not a nonzero constant
			return false
		}
	}
	return true
}

// polyPowXP computes x^(p^k) mod m by repeated p-th powering.
func polyPowXP(m []uint32, p, k uint32) []uint32 {
	// start with x
	cur := []uint32{0, 1}
	for i := uint32(0); i < k; i++ {
		cur = polyPowMod(cur, uint64(p), m, p)
	}
	return cur
}

// polyPowMod computes a^k mod m over F_p.
func polyPowMod(a []uint32, k uint64, m []uint32, p uint32) []uint32 {
	result := []uint32{1}
	base := polyMod(a, m, p)
	for k > 0 {
		if k&1 == 1 {
			result = polyMod(polyMul(result, base, p), m, p)
		}
		base = polyMod(polyMul(base, base, p), m, p)
		k >>= 1
	}
	return result
}

func polyMul(a, b []uint32, p uint32) []uint32 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := make([]uint32, len(a)+len(b)-1)
	p64 := uint64(p)
	for i, ai := range a {
		if ai == 0 {
			continue
		}
		for j, bj := range b {
			out[i+j] = uint32((uint64(out[i+j]) + uint64(ai)*uint64(bj)) % p64)
		}
	}
	return polyTrim(out)
}

// polyMod reduces a modulo the monic polynomial m over F_p.
func polyMod(a, m []uint32, p uint32) []uint32 {
	r := append([]uint32(nil), a...)
	dm := len(m) - 1
	for len(r)-1 >= dm && len(r) > 0 {
		d := len(r) - 1
		c := r[d]
		if c != 0 {
			shift := d - dm
			for i := 0; i <= dm; i++ {
				// r[shift+i] -= c * m[i]
				t := uint64(c) * uint64(m[i]) % uint64(p)
				r[shift+i] = uint32((uint64(r[shift+i]) + uint64(p) - t) % uint64(p))
			}
		}
		r = polyTrim(r[:d])
	}
	return polyTrim(r)
}

// polyGCD returns the monic gcd of a and b over F_p.
func polyGCD(a, b []uint32, p uint32) []uint32 {
	a = polyTrim(append([]uint32(nil), a...))
	b = polyTrim(append([]uint32(nil), b...))
	for len(b) > 0 {
		a, b = b, polyModGeneric(a, b, p)
	}
	// normalize to monic
	if len(a) > 0 && a[len(a)-1] != 1 {
		inv := invmod(a[len(a)-1], p)
		for i := range a {
			a[i] = uint32(uint64(a[i]) * uint64(inv) % uint64(p))
		}
	}
	return a
}

// polyModGeneric reduces a mod b where b need not be monic.
func polyModGeneric(a, b []uint32, p uint32) []uint32 {
	r := append([]uint32(nil), a...)
	db := len(b) - 1
	lcInv := invmod(b[db], p)
	for len(r)-1 >= db && len(r) > 0 {
		d := len(r) - 1
		c := uint32(uint64(r[d]) * uint64(lcInv) % uint64(p))
		if c != 0 {
			shift := d - db
			for i := 0; i <= db; i++ {
				t := uint64(c) * uint64(b[i]) % uint64(p)
				r[shift+i] = uint32((uint64(r[shift+i]) + uint64(p) - t) % uint64(p))
			}
		}
		r = polyTrim(r[:d])
	}
	return polyTrim(r)
}

func polyTrim(a []uint32) []uint32 {
	for len(a) > 0 && a[len(a)-1] == 0 {
		a = a[:len(a)-1]
	}
	return a
}

// polyEqualX reports whether a (trimmed) equals the polynomial x.
func polyEqualX(a []uint32, p uint32) bool {
	a = polyTrim(a)
	return len(a) == 2 && a[0] == 0 && a[1] == 1
}

func submod(a, b, p uint32) uint32 {
	if a >= b {
		return a - b
	}
	return a + p - b
}

// invmod inverts a nonzero residue mod prime p via Fermat.
func invmod(a, p uint32) uint32 {
	result := uint64(1)
	base := uint64(a % p)
	k := p - 2
	for k > 0 {
		if k&1 == 1 {
			result = result * base % uint64(p)
		}
		base = base * base % uint64(p)
		k >>= 1
	}
	return uint32(result)
}
