package gf

import (
	"sync"
	"sync/atomic"
)

// Tables are the discrete logarithm/exponential tables of a field over
// its stored generator g: Exp[i] = g^i and Log[Exp[i]] = i. They turn
// multiplicative arithmetic into O(1) array lookups for every field,
// prime and extension alike:
//
//	a·b   = Exp[Log[a] + Log[b]]           (a, b ≠ 0)
//	a⁻¹   = Exp[N − Log[a]]
//	a/b   = Exp[Log[a] + N − Log[b]]
//	a^k   = Exp[(Log[a] · (k mod N)) mod N]
//
// where N = q−1 is the order of F_q^*. Exp is doubled (length 2N) so the
// index sums above never need a modulo reduction.
//
// The tables are built lazily on first multiplicative use — a field that
// only ever adds (or is merely constructed to read its dimensions) never
// pays the O(q) build or the O(q) memory. Once built they are immutable
// and shared by all goroutines. The pre-table schoolbook/Fermat
// implementations survive as MulGeneric/InvGeneric/PowGeneric/DivGeneric:
// they are the property-test oracle and the fallback used while the
// tables are being built.
type Tables struct {
	// Log maps a nonzero element to its discrete log in [0, N).
	// Log[0] is a sentinel and must never be read: callers guard with
	// a != 0 checks, which the scheme needs anyway (0 has no log).
	Log []uint32
	// Exp maps an exponent in [0, 2N) to g^exponent; the upper half
	// repeats the lower so Log[a]+Log[b] and Log[a]+N−Log[b] index
	// without reduction.
	Exp []Elem
	// N is q−1, the multiplicative group order.
	N uint32
}

// tableState is the lazily-initialized portion of a Field: an atomic
// pointer for the lock-free fast path plus a sync.Once guarding the
// build. Fields stay immutable-after-construction and safe for
// concurrent use.
type tableState struct {
	tab  atomic.Pointer[Tables]
	once sync.Once
}

// Tables returns the field's discrete log/exp tables, building them on
// first call (O(q) generic multiplications, O(q) memory). Hot loops
// (ring evaluation, batch processing) call this once and keep the
// pointer, hoisting even the atomic load out of their inner loops.
func (f *Field) Tables() *Tables {
	if t := f.ts.tab.Load(); t != nil {
		return t
	}
	f.ts.once.Do(func() {
		n := f.q - 1
		t := &Tables{
			Log: make([]uint32, f.q),
			Exp: make([]Elem, 2*n),
			N:   n,
		}
		x := Elem(1)
		for i := uint32(0); i < n; i++ {
			t.Exp[i] = x
			t.Exp[n+i] = x
			t.Log[x] = i
			x = f.MulGeneric(x, f.gen)
		}
		f.ts.tab.Store(t)
	})
	return f.ts.tab.Load()
}

// Mul returns a·b via one table lookup. Kept on Tables (rather than
// Field) so bulk callers that already hold the tables skip the lazy-init
// check entirely.
func (t *Tables) Mul(a, b Elem) Elem {
	if a == 0 || b == 0 {
		return 0
	}
	return t.Exp[t.Log[a]+t.Log[b]]
}

// Inv returns a⁻¹. Panics if a == 0 (as Field.Inv does).
func (t *Tables) Inv(a Elem) Elem {
	if a == 0 {
		panic("gf: inverse of zero")
	}
	return t.Exp[t.N-t.Log[a]]
}

// Div returns a/b. Panics if b == 0.
func (t *Tables) Div(a, b Elem) Elem {
	if b == 0 {
		panic("gf: division by zero")
	}
	if a == 0 {
		return 0
	}
	return t.Exp[t.Log[a]+t.N-t.Log[b]]
}

// Pow returns a^k (0^0 == 1). The exponent folds into [0, N) first, so
// the Log[a]·k product never overflows: both factors are < 2^20.
func (t *Tables) Pow(a Elem, k uint64) Elem {
	if a == 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	n := uint64(t.N)
	return t.Exp[(uint64(t.Log[a])*(k%n))%n]
}
