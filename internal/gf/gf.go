// Package gf implements arithmetic in finite fields F_{p^e} of small order.
//
// The paper's encoding scheme works over F_q with q = p^e a prime power
// chosen just large enough to hold all distinct tag names (and, with the
// trie enhancement, all alphabet characters). Elements are represented as
// uint32 values in [0, q): for prime fields the value is the residue
// itself; for extension fields the value packs the coefficient vector of
// the residue polynomial in base p (value = sum c_i * p^i).
//
// Multiplicative arithmetic (Mul/Inv/Div/Pow) runs off discrete log/exp
// tables over the stored generator, built lazily on first use — O(1)
// lookups for prime and extension fields alike (see tables.go). The
// table-free implementations are retained as *Generic methods: they are
// the property-test oracle and the primitive the table build uses.
//
// Fields are immutable after construction and safe for concurrent use.
package gf

import (
	"fmt"
	"math/bits"
)

// MaxQ bounds the field order. The scheme stores q-1 coefficients per
// polynomial, so fields beyond this size would be impractical anyway.
const MaxQ = 1 << 20

// Elem is an element of a finite field, valid only together with the Field
// that produced it.
type Elem = uint32

// Field is a finite field F_{p^e}. The zero value is not usable; construct
// with New.
type Field struct {
	p uint32 // characteristic (prime)
	e uint32 // extension degree
	q uint32 // order, p^e

	// irr is the monic irreducible polynomial of degree e used to define
	// the extension (coefficients irr[0..e], irr[e] == 1). nil when e == 1.
	irr []uint32

	// gen is a generator of the multiplicative group: the base of the
	// discrete log/exp tables, and the iteration order of Elems.
	gen uint32

	// ts holds the lazily-built log/exp tables (see tables.go).
	ts tableState
}

// New constructs the finite field F_{p^e}. p must be prime, e >= 1 and
// p^e <= MaxQ.
func New(p, e uint32) (*Field, error) {
	if p < 2 || !isPrime(p) {
		return nil, fmt.Errorf("gf: p = %d is not prime", p)
	}
	if e < 1 {
		return nil, fmt.Errorf("gf: extension degree e = %d must be >= 1", e)
	}
	q := uint64(1)
	for i := uint32(0); i < e; i++ {
		q *= uint64(p)
		if q > MaxQ {
			return nil, fmt.Errorf("gf: field order p^e = %d^%d exceeds limit %d", p, e, MaxQ)
		}
	}
	f := &Field{p: p, e: e, q: uint32(q)}
	if e > 1 {
		irr, err := findIrreducible(p, e)
		if err != nil {
			return nil, err
		}
		f.irr = irr
	}
	gen, err := f.findGenerator()
	if err != nil {
		return nil, err
	}
	f.gen = gen
	return f, nil
}

// MustNew is New but panics on error; for use with known-good constants.
func MustNew(p, e uint32) *Field {
	f, err := New(p, e)
	if err != nil {
		panic(err)
	}
	return f
}

// P returns the field characteristic.
func (f *Field) P() uint32 { return f.p }

// E returns the extension degree.
func (f *Field) E() uint32 { return f.e }

// Q returns the field order p^e.
func (f *Field) Q() uint32 { return f.q }

// Generator returns a fixed generator of the multiplicative group F_q^*.
func (f *Field) Generator() Elem { return f.gen }

// Valid reports whether a is a canonical element of the field.
func (f *Field) Valid(a Elem) bool { return a < f.q }

// BitsPerElem returns ceil(log2 q), the storage cost of one element.
func (f *Field) BitsPerElem() int { return bits.Len32(f.q - 1) }

func (f *Field) String() string {
	if f.e == 1 {
		return fmt.Sprintf("GF(%d)", f.p)
	}
	return fmt.Sprintf("GF(%d^%d)", f.p, f.e)
}

// digits decomposes a packed element into its base-p coefficient vector of
// length e. Only meaningful for e > 1 but correct for e == 1 as well.
func (f *Field) digits(a Elem, out []uint32) {
	for i := uint32(0); i < f.e; i++ {
		out[i] = a % f.p
		a /= f.p
	}
}

// pack recomposes a base-p coefficient vector into a packed element.
func (f *Field) pack(d []uint32) Elem {
	var v uint64
	for i := len(d) - 1; i >= 0; i-- {
		v = v*uint64(f.p) + uint64(d[i])
	}
	return Elem(v)
}

// Add returns a + b.
func (f *Field) Add(a, b Elem) Elem {
	if f.e == 1 {
		s := a + b
		if s >= f.p {
			s -= f.p
		}
		return s
	}
	var da, db [maxDeg]uint32
	f.digits(a, da[:f.e])
	f.digits(b, db[:f.e])
	for i := uint32(0); i < f.e; i++ {
		s := da[i] + db[i]
		if s >= f.p {
			s -= f.p
		}
		da[i] = s
	}
	return f.pack(da[:f.e])
}

// Sub returns a - b.
func (f *Field) Sub(a, b Elem) Elem {
	if f.e == 1 {
		if a >= b {
			return a - b
		}
		return a + f.p - b
	}
	var da, db [maxDeg]uint32
	f.digits(a, da[:f.e])
	f.digits(b, db[:f.e])
	for i := uint32(0); i < f.e; i++ {
		if da[i] >= db[i] {
			da[i] -= db[i]
		} else {
			da[i] += f.p - db[i]
		}
	}
	return f.pack(da[:f.e])
}

// Neg returns -a.
func (f *Field) Neg(a Elem) Elem {
	return f.Sub(0, a)
}

// maxDeg bounds the extension degree for stack-allocated scratch space.
// p >= 2 and p^e <= MaxQ = 2^20 imply e <= 20.
const maxDeg = 20

// Mul returns a * b in O(1): the native widening-multiply-and-reduce
// for prime fields (which beats two table loads on modern cores — the
// compute experiment measures both), the log/exp tables for extension
// fields (where it replaces a schoolbook convolution). Bulk evaluation
// loops use the tables for every field via Tables(), where the log of a
// loop-invariant operand is hoisted and the table genuinely wins.
func (f *Field) Mul(a, b Elem) Elem {
	if f.e == 1 {
		return Elem(uint64(a) * uint64(b) % uint64(f.p))
	}
	if a == 0 || b == 0 {
		return 0
	}
	t := f.Tables()
	return t.Exp[t.Log[a]+t.Log[b]]
}

// MulGeneric is the table-free multiplication the field shipped with
// before the log/exp tables: residue arithmetic for prime fields,
// schoolbook multiply plus reduction modulo the irreducible polynomial
// for extensions. It is retained as the property-test oracle for the
// table path and as the primitive the table build itself uses.
func (f *Field) MulGeneric(a, b Elem) Elem {
	if f.e == 1 {
		return Elem(uint64(a) * uint64(b) % uint64(f.p))
	}
	var da, db [maxDeg]uint32
	var prod [2 * maxDeg]uint32
	f.digits(a, da[:f.e])
	f.digits(b, db[:f.e])
	e := int(f.e)
	p64 := uint64(f.p)
	for i := 0; i < 2*e-1; i++ {
		prod[i] = 0
	}
	for i := 0; i < e; i++ {
		if da[i] == 0 {
			continue
		}
		ai := uint64(da[i])
		for j := 0; j < e; j++ {
			prod[i+j] = uint32((uint64(prod[i+j]) + ai*uint64(db[j])) % p64)
		}
	}
	// Reduce modulo the irreducible polynomial: since irr is monic,
	// x^e = -(irr[0] + irr[1] x + ... + irr[e-1] x^(e-1)).
	for i := 2*e - 2; i >= e; i-- {
		c := prod[i]
		if c == 0 {
			continue
		}
		prod[i] = 0
		for j := 0; j < e; j++ {
			// prod[i-e+j] -= c * irr[j]
			t := uint64(c) * uint64(f.irr[j]) % p64
			v := uint64(prod[i-e+j]) + p64 - t
			prod[i-e+j] = uint32(v % p64)
		}
	}
	return f.pack(prod[:e])
}

// Pow returns a^k (with 0^0 == 1) via one table lookup.
func (f *Field) Pow(a Elem, k uint64) Elem {
	return f.Tables().Pow(a, k)
}

// PowGeneric is table-free square-and-multiply exponentiation, retained
// as the property-test oracle and used during field construction (the
// generator search runs before any table can exist).
func (f *Field) PowGeneric(a Elem, k uint64) Elem {
	result := Elem(1)
	base := a
	for k > 0 {
		if k&1 == 1 {
			result = f.MulGeneric(result, base)
		}
		base = f.MulGeneric(base, base)
		k >>= 1
	}
	return result
}

// Inv returns the multiplicative inverse of a via one table lookup. It
// panics if a == 0, which indicates a programming error in the caller
// (the scheme never inverts zero: map values are restricted to F_q^*).
func (f *Field) Inv(a Elem) Elem {
	return f.Tables().Inv(a)
}

// InvGeneric is the table-free Fermat inverse a^(q-2), retained as the
// property-test oracle for the table path.
func (f *Field) InvGeneric(a Elem) Elem {
	if a == 0 {
		panic("gf: inverse of zero")
	}
	return f.PowGeneric(a, uint64(f.q)-2)
}

// Div returns a / b via one table lookup. Panics if b == 0.
func (f *Field) Div(a, b Elem) Elem {
	return f.Tables().Div(a, b)
}

// DivGeneric is the table-free division, retained as the property-test
// oracle for the table path.
func (f *Field) DivGeneric(a, b Elem) Elem {
	return f.MulGeneric(a, f.InvGeneric(b))
}

// isPrime is a deterministic primality test adequate for p <= MaxQ.
func isPrime(n uint32) bool {
	if n < 2 {
		return false
	}
	if n%2 == 0 {
		return n == 2
	}
	for d := uint32(3); d*d <= n; d += 2 {
		if n%d == 0 {
			return false
		}
	}
	return true
}

// primeFactors returns the distinct prime factors of n in ascending order.
func primeFactors(n uint32) []uint32 {
	var out []uint32
	for d := uint32(2); d*d <= n; d++ {
		if n%d == 0 {
			out = append(out, d)
			for n%d == 0 {
				n /= d
			}
		}
	}
	if n > 1 {
		out = append(out, n)
	}
	return out
}

// findGenerator locates the smallest generator of F_q^* by checking
// g^((q-1)/r) != 1 for every prime r | q-1. It runs at construction,
// before the tables can exist, so it must use the generic arithmetic.
func (f *Field) findGenerator() (Elem, error) {
	n := f.q - 1
	if n == 1 {
		return 1, nil // F_2: the trivial group
	}
	factors := primeFactors(n)
	for g := Elem(2); g < f.q; g++ {
		ok := true
		for _, r := range factors {
			if f.PowGeneric(g, uint64(n/r)) == 1 {
				ok = false
				break
			}
		}
		if ok {
			return g, nil
		}
	}
	return 0, fmt.Errorf("gf: no generator found for %v (impossible)", f)
}

// Elems iterates over all field elements in a fixed order: 0 first, then
// the powers of the generator g^0, g^1, ... This gives deterministic
// element enumeration independent of the internal representation.
func (f *Field) Elems(fn func(Elem) bool) {
	if !fn(0) {
		return
	}
	x := Elem(1)
	for i := uint32(0); i < f.q-1; i++ {
		if !fn(x) {
			return
		}
		x = f.Mul(x, f.gen)
	}
}
