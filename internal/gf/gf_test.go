package gf

import (
	"testing"
	"testing/quick"
)

// testFields covers the paper's parameters (F_83, F_5 from the worked
// example, F_29 from the trie sizing example) plus small extension fields.
func testFields(t *testing.T) []*Field {
	t.Helper()
	params := []struct{ p, e uint32 }{
		{2, 1}, {3, 1}, {5, 1}, {29, 1}, {83, 1}, {101, 1},
		{2, 4}, {3, 2}, {3, 4}, {5, 3}, {7, 2},
	}
	out := make([]*Field, 0, len(params))
	for _, pr := range params {
		f, err := New(pr.p, pr.e)
		if err != nil {
			t.Fatalf("New(%d,%d): %v", pr.p, pr.e, err)
		}
		out = append(out, f)
	}
	return out
}

func TestNewRejectsBadParams(t *testing.T) {
	cases := []struct {
		p, e uint32
	}{
		{0, 1}, {1, 1}, {4, 1}, {6, 2}, {91, 1}, // non-prime p
		{5, 0},       // zero degree
		{2, 21},      // 2^21 > MaxQ
		{1048583, 1}, // prime above MaxQ
	}
	for _, c := range cases {
		if _, err := New(c.p, c.e); err == nil {
			t.Errorf("New(%d,%d) unexpectedly succeeded", c.p, c.e)
		}
	}
}

func TestFieldOrder(t *testing.T) {
	f := MustNew(3, 4)
	if f.Q() != 81 {
		t.Fatalf("Q = %d, want 81", f.Q())
	}
	if f.P() != 3 || f.E() != 4 {
		t.Fatalf("P,E = %d,%d want 3,4", f.P(), f.E())
	}
	if got := MustNew(83, 1).Q(); got != 83 {
		t.Fatalf("Q = %d, want 83", got)
	}
}

func TestStringer(t *testing.T) {
	if s := MustNew(83, 1).String(); s != "GF(83)" {
		t.Errorf("String() = %q", s)
	}
	if s := MustNew(3, 2).String(); s != "GF(3^2)" {
		t.Errorf("String() = %q", s)
	}
}

// TestExhaustiveAxiomsSmall verifies the full field axioms exhaustively on
// small fields where the triple loop is affordable.
func TestExhaustiveAxiomsSmall(t *testing.T) {
	for _, f := range []*Field{MustNew(5, 1), MustNew(2, 3), MustNew(3, 2), MustNew(7, 1)} {
		q := f.Q()
		for a := Elem(0); a < q; a++ {
			for b := Elem(0); b < q; b++ {
				if f.Add(a, b) != f.Add(b, a) {
					t.Fatalf("%v: add not commutative at %d,%d", f, a, b)
				}
				if f.Mul(a, b) != f.Mul(b, a) {
					t.Fatalf("%v: mul not commutative at %d,%d", f, a, b)
				}
				for c := Elem(0); c < q; c++ {
					if f.Add(f.Add(a, b), c) != f.Add(a, f.Add(b, c)) {
						t.Fatalf("%v: add not associative", f)
					}
					if f.Mul(f.Mul(a, b), c) != f.Mul(a, f.Mul(b, c)) {
						t.Fatalf("%v: mul not associative", f)
					}
					if f.Mul(a, f.Add(b, c)) != f.Add(f.Mul(a, b), f.Mul(a, c)) {
						t.Fatalf("%v: not distributive", f)
					}
				}
			}
			if f.Add(a, 0) != a || f.Mul(a, 1) != a {
				t.Fatalf("%v: identity failure at %d", f, a)
			}
			if f.Add(a, f.Neg(a)) != 0 {
				t.Fatalf("%v: additive inverse failure at %d", f, a)
			}
			if a != 0 {
				if f.Mul(a, f.Inv(a)) != 1 {
					t.Fatalf("%v: multiplicative inverse failure at %d", f, a)
				}
			}
		}
	}
}

// TestQuickFieldAxioms property-tests the axioms on the larger fields used
// by the paper's experiments.
func TestQuickFieldAxioms(t *testing.T) {
	for _, f := range testFields(t) {
		f := f
		mod := func(x uint32) Elem { return x % f.Q() }
		if err := quick.Check(func(x, y, z uint32) bool {
			a, b, c := mod(x), mod(y), mod(z)
			if f.Add(a, b) != f.Add(b, a) || f.Mul(a, b) != f.Mul(b, a) {
				return false
			}
			if f.Add(f.Add(a, b), c) != f.Add(a, f.Add(b, c)) {
				return false
			}
			if f.Mul(f.Mul(a, b), c) != f.Mul(a, f.Mul(b, c)) {
				return false
			}
			if f.Mul(a, f.Add(b, c)) != f.Add(f.Mul(a, b), f.Mul(a, c)) {
				return false
			}
			if f.Sub(a, b) != f.Add(a, f.Neg(b)) {
				return false
			}
			if b != 0 && f.Mul(f.Div(a, b), b) != a {
				return false
			}
			return true
		}, nil); err != nil {
			t.Errorf("%v: %v", f, err)
		}
	}
}

func TestPow(t *testing.T) {
	for _, f := range testFields(t) {
		// Lagrange: a^q == a for all a; a^(q-1) == 1 for a != 0.
		q := uint64(f.Q())
		for _, a := range []Elem{0, 1, 2 % f.Q(), f.Q() - 1, f.Generator()} {
			if got := f.Pow(a, q); got != a {
				t.Errorf("%v: %d^q = %d, want %d", f, a, got, a)
			}
			if a != 0 {
				if got := f.Pow(a, q-1); got != 1 {
					t.Errorf("%v: %d^(q-1) = %d, want 1", f, a, got)
				}
			}
		}
		if f.Pow(0, 0) != 1 {
			t.Errorf("%v: 0^0 != 1", f)
		}
	}
}

func TestGeneratorOrder(t *testing.T) {
	for _, f := range testFields(t) {
		g := f.Generator()
		seen := make(map[Elem]bool)
		x := Elem(1)
		for i := uint32(0); i < f.Q()-1; i++ {
			if seen[x] {
				t.Fatalf("%v: generator %d has order < q-1", f, g)
			}
			seen[x] = true
			x = f.Mul(x, g)
		}
		if x != 1 {
			t.Fatalf("%v: g^(q-1) = %d != 1", f, x)
		}
	}
}

func TestElemsEnumeratesAll(t *testing.T) {
	for _, f := range testFields(t) {
		if f.Q() > 1<<12 {
			continue
		}
		seen := make(map[Elem]bool)
		f.Elems(func(a Elem) bool {
			if seen[a] {
				t.Fatalf("%v: duplicate element %d", f, a)
			}
			seen[a] = true
			return true
		})
		if len(seen) != int(f.Q()) {
			t.Fatalf("%v: enumerated %d elements, want %d", f, len(seen), f.Q())
		}
		// Early stop must be honored.
		stopAt := min(3, int(f.Q()))
		n := 0
		f.Elems(func(Elem) bool { n++; return n < stopAt })
		if n != stopAt {
			t.Fatalf("%v: early stop visited %d, want %d", f, n, stopAt)
		}
	}
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) did not panic")
		}
	}()
	MustNew(5, 1).Inv(0)
}

func TestBitsPerElem(t *testing.T) {
	if got := MustNew(83, 1).BitsPerElem(); got != 7 {
		t.Errorf("BitsPerElem(83) = %d, want 7", got)
	}
	if got := MustNew(2, 4).BitsPerElem(); got != 4 {
		t.Errorf("BitsPerElem(16) = %d, want 4", got)
	}
}

func TestIsPrime(t *testing.T) {
	primes := []uint32{2, 3, 5, 7, 11, 13, 29, 83, 101, 65537}
	for _, p := range primes {
		if !isPrime(p) {
			t.Errorf("isPrime(%d) = false", p)
		}
	}
	composites := []uint32{0, 1, 4, 6, 9, 15, 21, 25, 49, 91, 65536}
	for _, c := range composites {
		if isPrime(c) {
			t.Errorf("isPrime(%d) = true", c)
		}
	}
}

func TestPrimeFactors(t *testing.T) {
	cases := []struct {
		n    uint32
		want []uint32
	}{
		{12, []uint32{2, 3}},
		{82, []uint32{2, 41}}, // q-1 for F_83
		{28, []uint32{2, 7}},  // q-1 for F_29
		{7, []uint32{7}},
		{1, nil},
	}
	for _, c := range cases {
		got := primeFactors(c.n)
		if len(got) != len(c.want) {
			t.Errorf("primeFactors(%d) = %v, want %v", c.n, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("primeFactors(%d) = %v, want %v", c.n, got, c.want)
			}
		}
	}
}

// TestIrreducibleIsIrreducible validates the found modulus by brute force:
// no polynomial of degree 1..e/2 divides it (checked via all products for
// tiny fields, via root-freeness for degree-2/3 extensions).
func TestIrreducibleBruteForce(t *testing.T) {
	cases := []struct{ p, e uint32 }{{2, 2}, {2, 3}, {2, 4}, {3, 2}, {3, 3}, {5, 2}, {7, 2}}
	for _, c := range cases {
		m, err := findIrreducible(c.p, c.e)
		if err != nil {
			t.Fatalf("findIrreducible(%d,%d): %v", c.p, c.e, err)
		}
		if len(m) != int(c.e)+1 || m[c.e] != 1 {
			t.Fatalf("findIrreducible(%d,%d) = %v: not monic degree e", c.p, c.e, m)
		}
		// For degree 2 and 3, irreducible <=> no roots in F_p.
		if c.e <= 3 {
			for r := uint32(0); r < c.p; r++ {
				// evaluate m at r
				v := uint64(0)
				for i := len(m) - 1; i >= 0; i-- {
					v = (v*uint64(r) + uint64(m[i])) % uint64(c.p)
				}
				if v == 0 {
					t.Fatalf("findIrreducible(%d,%d) = %v has root %d", c.p, c.e, m, r)
				}
			}
		}
	}
}

func TestExtensionFieldFrobenius(t *testing.T) {
	// In F_{p^e}, the Frobenius map a -> a^p is a field automorphism and
	// fixes exactly the prime subfield.
	f := MustNew(3, 3)
	fixed := 0
	f.Elems(func(a Elem) bool {
		ap := f.Pow(a, uint64(f.P()))
		b := f.Generator() // arbitrary second element
		// additivity of Frobenius
		if f.Pow(f.Add(a, b), uint64(f.P())) != f.Add(ap, f.Pow(b, uint64(f.P()))) {
			t.Fatalf("Frobenius not additive at %d", a)
		}
		if ap == a {
			fixed++
		}
		return true
	})
	if fixed != int(f.P()) {
		t.Fatalf("Frobenius fixes %d elements, want %d", fixed, f.P())
	}
}

func BenchmarkMulPrimeField(b *testing.B) {
	f := MustNew(83, 1)
	x, y := Elem(45), Elem(77)
	for i := 0; i < b.N; i++ {
		x = f.Mul(x, y) + 1%f.Q()
		x %= f.Q()
	}
	_ = x
}

func BenchmarkMulExtensionField(b *testing.B) {
	f := MustNew(3, 4)
	x, y := Elem(45), Elem(77)
	for i := 0; i < b.N; i++ {
		x = f.Mul(x, y)
		if x == 0 {
			x = 1
		}
	}
	_ = x
}

func BenchmarkInv(b *testing.B) {
	f := MustNew(83, 1)
	for i := 0; i < b.N; i++ {
		_ = f.Inv(Elem(i%82) + 1)
	}
}
