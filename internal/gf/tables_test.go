package gf

import (
	"math/rand"
	"testing"
)

// exhaustiveFields lists every field the table≡generic property test
// covers with a FULL operand grid. All have q ≤ 2^12; the grid is q²
// Mul pairs plus q-sized Inv/Pow sweeps, so the generic oracle must stay
// affordable (e ≤ 4 keeps the schoolbook multiply cheap).
func exhaustiveFields(t testing.TB) []*Field {
	params := []struct{ p, e uint32 }{
		{2, 1}, {3, 1}, {5, 1}, {29, 1}, {83, 1}, {251, 1}, {4093, 1},
		{2, 4}, {3, 2}, {5, 3}, {7, 2}, {11, 2}, {3, 5}, {7, 4},
	}
	out := make([]*Field, 0, len(params))
	for _, pr := range params {
		f, err := New(pr.p, pr.e)
		if err != nil {
			t.Fatalf("New(%d,%d): %v", pr.p, pr.e, err)
		}
		if f.Q() > 1<<12 {
			t.Fatalf("exhaustive field %v exceeds the q <= 2^12 bound", f)
		}
		out = append(out, f)
	}
	return out
}

// TestTableMatchesGenericExhaustive proves the table-driven arithmetic
// agrees with the retained generic implementations on the FULL Mul grid
// and full Inv/Div/Pow sweeps of every field with q ≤ 2^12. This is the
// soundness proof of the hot-path rewrite: the generic path is the
// pre-table implementation, verified independently by the field-axiom
// tests.
func TestTableMatchesGenericExhaustive(t *testing.T) {
	for _, f := range exhaustiveFields(t) {
		q := f.Q()
		for a := Elem(0); a < q; a++ {
			for b := Elem(0); b < q; b++ {
				if got, want := f.Mul(a, b), f.MulGeneric(a, b); got != want {
					t.Fatalf("%v: Mul(%d,%d) = %d, generic %d", f, a, b, got, want)
				}
			}
			if a != 0 {
				if got, want := f.Inv(a), f.InvGeneric(a); got != want {
					t.Fatalf("%v: Inv(%d) = %d, generic %d", f, a, got, want)
				}
				if got, want := f.Div(7%q, a), f.DivGeneric(7%q, a); got != want {
					t.Fatalf("%v: Div(%d,%d) = %d, generic %d", f, 7%q, a, got, want)
				}
			}
			for _, k := range []uint64{0, 1, 2, 3, uint64(q) - 1, uint64(q), 1 << 40} {
				if got, want := f.Pow(a, k), f.PowGeneric(a, k); got != want {
					t.Fatalf("%v: Pow(%d,%d) = %d, generic %d", f, a, k, got, want)
				}
			}
		}
	}
}

// TestTableMatchesGenericLargeFields spot-checks the agreement with
// randomized operands on fields near the MaxQ bound, where the
// exhaustive grid is unaffordable but the tables are at their largest.
func TestTableMatchesGenericLargeFields(t *testing.T) {
	params := []struct{ p, e uint32 }{
		{1048573, 1}, // largest prime below 2^20
		{2, 20},      // q = MaxQ exactly
		{1021, 2},    // q = 1042441
		{101, 3},     // q = 1030301
	}
	rng := rand.New(rand.NewSource(7))
	for _, pr := range params {
		f, err := New(pr.p, pr.e)
		if err != nil {
			t.Fatalf("New(%d,%d): %v", pr.p, pr.e, err)
		}
		q := f.Q()
		checks := 2000
		if testing.Short() {
			checks = 200
		}
		for i := 0; i < checks; i++ {
			a, b := Elem(rng.Uint32())%q, Elem(rng.Uint32())%q
			k := rng.Uint64()
			if got, want := f.Mul(a, b), f.MulGeneric(a, b); got != want {
				t.Fatalf("%v: Mul(%d,%d) = %d, generic %d", f, a, b, got, want)
			}
			if got, want := f.Pow(a, k), f.PowGeneric(a, k); got != want {
				t.Fatalf("%v: Pow(%d,%d) = %d, generic %d", f, a, k, got, want)
			}
			if b != 0 {
				if got, want := f.Inv(b), f.InvGeneric(b); got != want {
					t.Fatalf("%v: Inv(%d) = %d, generic %d", f, b, got, want)
				}
				if got, want := f.Div(a, b), f.DivGeneric(a, b); got != want {
					t.Fatalf("%v: Div(%d,%d) = %d, generic %d", f, a, b, got, want)
				}
			}
		}
		// Boundary operands the random sweep can miss.
		for _, a := range []Elem{0, 1, 2 % q, q - 1, f.Generator()} {
			for _, b := range []Elem{0, 1, 2 % q, q - 1, f.Generator()} {
				if got, want := f.Mul(a, b), f.MulGeneric(a, b); got != want {
					t.Fatalf("%v: Mul(%d,%d) = %d, generic %d", f, a, b, got, want)
				}
			}
		}
	}
}

// TestTablesStructure validates the table invariants directly: Exp
// enumerates F_q^* with period N, the doubled upper half mirrors the
// lower, and Log inverts Exp.
func TestTablesStructure(t *testing.T) {
	for _, f := range exhaustiveFields(t) {
		tab := f.Tables()
		if tab.N != f.Q()-1 {
			t.Fatalf("%v: N = %d, want %d", f, tab.N, f.Q()-1)
		}
		if len(tab.Log) != int(f.Q()) || len(tab.Exp) != 2*int(tab.N) {
			t.Fatalf("%v: table sizes %d/%d", f, len(tab.Log), len(tab.Exp))
		}
		seen := make(map[Elem]bool, tab.N)
		for i := uint32(0); i < tab.N; i++ {
			x := tab.Exp[i]
			if x == 0 || seen[x] {
				t.Fatalf("%v: Exp[%d] = %d repeats or is zero", f, i, x)
			}
			seen[x] = true
			if tab.Exp[tab.N+i] != x {
				t.Fatalf("%v: doubled Exp mismatch at %d", f, i)
			}
			if tab.Log[x] != i {
				t.Fatalf("%v: Log[Exp[%d]] = %d", f, i, tab.Log[x])
			}
		}
	}
}

// TestTablesMethodsMatchField checks the Tables convenience methods
// agree with the Field methods (same tables, two entry points).
func TestTablesMethodsMatchField(t *testing.T) {
	f := MustNew(83, 1)
	tab := f.Tables()
	for a := Elem(0); a < f.Q(); a++ {
		for b := Elem(0); b < f.Q(); b++ {
			if tab.Mul(a, b) != f.Mul(a, b) {
				t.Fatalf("Tables.Mul(%d,%d) disagrees with Field.Mul", a, b)
			}
			if b != 0 && tab.Div(a, b) != f.Div(a, b) {
				t.Fatalf("Tables.Div(%d,%d) disagrees with Field.Div", a, b)
			}
		}
		if a != 0 && tab.Inv(a) != f.Inv(a) {
			t.Fatalf("Tables.Inv(%d) disagrees with Field.Inv", a)
		}
		if tab.Pow(a, 12345) != f.Pow(a, 12345) {
			t.Fatalf("Tables.Pow(%d) disagrees with Field.Pow", a)
		}
	}
}

// TestTablesConcurrentBuild hammers the lazy build from many goroutines;
// run under -race this proves the sync.Once publication is sound.
func TestTablesConcurrentBuild(t *testing.T) {
	f := MustNew(83, 1)
	done := make(chan *Tables, 16)
	for i := 0; i < 16; i++ {
		go func() { done <- f.Tables() }()
	}
	first := <-done
	for i := 1; i < 16; i++ {
		if got := <-done; got != first {
			t.Fatal("concurrent Tables() returned different table sets")
		}
	}
}
