package gf

import "testing"

// benchElems yields a deterministic mix of nonzero field elements so the
// arithmetic benchmarks are not dominated by one lucky operand pair.
func benchElems(f *Field, n int) []Elem {
	out := make([]Elem, n)
	x := Elem(1)
	for i := range out {
		out[i] = x
		x = f.MulGeneric(x, f.Generator())
	}
	return out
}

func benchFields(b *testing.B) []*Field {
	return []*Field{
		MustNew(83, 1),   // the paper's parameters
		MustNew(5, 3),    // small extension field
		MustNew(1021, 2), // large extension field (q ~ 2^20)
	}
}

// The arithmetic benchmarks measure throughput over a vector of
// independent operand pairs — the shape of the actual hot path, where
// batch evaluation streams many independent operations — not a serial
// dependency chain. Each sub-benchmark reports ns per single operation.

const benchVec = 256

func benchBinop(b *testing.B, xs, ys, out []Elem, op func(a, c Elem) Elem) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		j := i & (benchVec - 1)
		out[j] = op(xs[j], ys[j])
	}
	sinkElem = out[0]
}

func BenchmarkGFMul(b *testing.B) {
	for _, f := range benchFields(b) {
		xs := benchElems(f, benchVec)
		ys := benchElems(f, benchVec)
		out := make([]Elem, benchVec)
		b.Run(f.String(), func(b *testing.B) {
			benchBinop(b, xs, ys, out, f.Mul)
		})
	}
}

func BenchmarkGFInv(b *testing.B) {
	for _, f := range benchFields(b) {
		xs := benchElems(f, benchVec)
		out := make([]Elem, benchVec)
		b.Run(f.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				j := i & (benchVec - 1)
				out[j] = f.Inv(xs[j])
			}
			sinkElem = out[0]
		})
	}
}

func BenchmarkGFPow(b *testing.B) {
	for _, f := range benchFields(b) {
		xs := benchElems(f, benchVec)
		out := make([]Elem, benchVec)
		b.Run(f.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				j := i & (benchVec - 1)
				out[j] = f.Pow(xs[j], uint64(i)|1)
			}
			sinkElem = out[0]
		})
	}
}

var sinkElem Elem
