// Package xmldoc parses XML documents into trees carrying the pre/post/
// parent numbering that the paper (following Grust's XPath acceleration
// scheme) uses to flatten trees into a relational table (§5.1):
//
//   - pre(n):  1-based sequence number of n's open tag among all open tags
//   - post(n): 1-based sequence number of n's close tag among all close tags
//   - parent(n): pre of n's parent, 0 for the root
//
// The fundamental property (tested): d is a proper descendant of n iff
// pre(d) > pre(n) and post(d) < post(n); moreover descendants occupy the
// contiguous pre-interval (pre(n), pre(n)+size(n)].
//
// A streaming interface (Stream) mirrors the paper's SAX pipeline: memory
// proportional to document depth, as required for the "small clients, big
// servers" philosophy of §5.1.
package xmldoc

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// Node is one element node of a parsed document.
type Node struct {
	Name     string
	Pre      int64
	Post     int64
	Parent   *Node
	Children []*Node

	// Text is the concatenation of character data chunks directly inside
	// this element (excluding descendant elements' text), trimmed of
	// leading/trailing whitespace per chunk. The tag-only scheme of §3
	// ignores it; the trie enhancement of §4 expands it.
	Text string
}

// IsLeaf reports whether the node has no element children.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// Size returns the number of proper descendants.
func (n *Node) Size() int64 {
	var size int64
	for _, c := range n.Children {
		size += 1 + c.Size()
	}
	return size
}

// Path returns the absolute slash path of the node (for diagnostics).
func (n *Node) Path() string {
	if n.Parent == nil {
		return "/" + n.Name
	}
	return n.Parent.Path() + "/" + n.Name
}

// Doc is a parsed document.
type Doc struct {
	Root  *Node
	Count int64 // total element nodes
	byPre map[int64]*Node
}

// Handler receives streaming document structure events in document order.
type Handler interface {
	StartElement(name string) error
	Text(data string) error // non-whitespace character data chunks
	EndElement(name string) error
}

// Stream parses XML from r, delivering events to h with O(depth) memory.
// Exactly one root element is required; processing instructions, comments
// and directives are skipped.
func Stream(r io.Reader, h Handler) error {
	dec := xml.NewDecoder(r)
	depth := 0
	seenRoot := false
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			if depth != 0 {
				return fmt.Errorf("xmldoc: unexpected EOF at depth %d", depth)
			}
			if !seenRoot {
				return fmt.Errorf("xmldoc: document has no root element")
			}
			return nil
		}
		if err != nil {
			return fmt.Errorf("xmldoc: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if depth == 0 && seenRoot {
				return fmt.Errorf("xmldoc: multiple root elements")
			}
			seenRoot = true
			depth++
			if err := h.StartElement(t.Name.Local); err != nil {
				return err
			}
		case xml.EndElement:
			depth--
			if err := h.EndElement(t.Name.Local); err != nil {
				return err
			}
		case xml.CharData:
			if depth == 0 {
				continue
			}
			s := strings.TrimSpace(string(t))
			if s == "" {
				continue
			}
			if err := h.Text(s); err != nil {
				return err
			}
		}
	}
}

// treeBuilder accumulates a Doc from stream events.
type treeBuilder struct {
	doc   *Doc
	stack []*Node
	pre   int64
	post  int64
}

func (b *treeBuilder) StartElement(name string) error {
	b.pre++
	n := &Node{Name: name, Pre: b.pre}
	if len(b.stack) > 0 {
		parent := b.stack[len(b.stack)-1]
		n.Parent = parent
		parent.Children = append(parent.Children, n)
	} else {
		b.doc.Root = n
	}
	b.doc.Count++
	b.doc.byPre[n.Pre] = n
	b.stack = append(b.stack, n)
	return nil
}

func (b *treeBuilder) Text(data string) error {
	n := b.stack[len(b.stack)-1]
	if n.Text == "" {
		n.Text = data
	} else {
		n.Text += " " + data
	}
	return nil
}

func (b *treeBuilder) EndElement(string) error {
	b.post++
	b.stack[len(b.stack)-1].Post = b.post
	b.stack = b.stack[:len(b.stack)-1]
	return nil
}

// Parse reads a whole document into a tree.
func Parse(r io.Reader) (*Doc, error) {
	b := &treeBuilder{doc: &Doc{byPre: map[int64]*Node{}}}
	if err := Stream(r, b); err != nil {
		return nil, err
	}
	return b.doc, nil
}

// ParseString parses a document held in a string.
func ParseString(s string) (*Doc, error) {
	return Parse(strings.NewReader(s))
}

// NodeByPre returns the node with the given pre number.
func (d *Doc) NodeByPre(pre int64) (*Node, bool) {
	n, ok := d.byPre[pre]
	return n, ok
}

// Walk visits nodes in document (pre) order; fn returning false prunes the
// node's subtree (children are skipped, the walk continues elsewhere).
func (d *Doc) Walk(fn func(*Node) bool) {
	if d.Root != nil {
		walk(d.Root, fn)
	}
}

func walk(n *Node, fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		walk(c, fn)
	}
}

// Rebuild recomputes pre/post/parent numbering and the byPre index after a
// structural transformation (e.g. trie expansion inserts synthetic nodes).
func (d *Doc) Rebuild() {
	d.byPre = map[int64]*Node{}
	d.Count = 0
	var pre, post int64
	var rec func(n *Node, parent *Node)
	rec = func(n *Node, parent *Node) {
		pre++
		n.Pre = pre
		n.Parent = parent
		d.Count++
		d.byPre[n.Pre] = n
		for _, c := range n.Children {
			rec(c, n)
		}
		post++
		n.Post = post
	}
	if d.Root != nil {
		rec(d.Root, nil)
	}
}

// IsDescendant reports the Grust descendant test on numbering alone.
func IsDescendant(d, n *Node) bool {
	return d.Pre > n.Pre && d.Post < n.Post
}

// WriteXML serializes the document as indented XML. Trie terminator nodes
// and other synthetic names are escaped by encoding/xml rules; Text is
// emitted before child elements.
func (d *Doc) WriteXML(w io.Writer) error {
	if d.Root == nil {
		return fmt.Errorf("xmldoc: empty document")
	}
	bw := &errWriter{w: w}
	writeNode(bw, d.Root, 0)
	return bw.err
}

type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) printf(format string, args ...any) {
	if ew.err != nil {
		return
	}
	_, ew.err = fmt.Fprintf(ew.w, format, args...)
}

func writeNode(w *errWriter, n *Node, depth int) {
	indent := strings.Repeat("  ", depth)
	if len(n.Children) == 0 && n.Text == "" {
		w.printf("%s<%s/>\n", indent, n.Name)
		return
	}
	w.printf("%s<%s>", indent, n.Name)
	if n.Text != "" {
		var esc strings.Builder
		if err := xml.EscapeText(&esc, []byte(n.Text)); err == nil {
			w.printf("%s", esc.String())
		}
	}
	if len(n.Children) > 0 {
		w.printf("\n")
		for _, c := range n.Children {
			writeNode(w, c, depth+1)
		}
		w.printf("%s</%s>\n", indent, n.Name)
	} else {
		w.printf("</%s>\n", n.Name)
	}
}

// Names returns the set of distinct element names in document order of
// first appearance — input for map generation when no DTD is available.
func (d *Doc) Names() []string {
	seen := map[string]bool{}
	var out []string
	d.Walk(func(n *Node) bool {
		if !seen[n.Name] {
			seen[n.Name] = true
			out = append(out, n.Name)
		}
		return true
	})
	return out
}
