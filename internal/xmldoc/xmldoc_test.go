package xmldoc

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

const paperExample = `<a><b><c/></b><c><a/><b/></c></a>`

func TestParsePaperFigure1Tree(t *testing.T) {
	d, err := ParseString(paperExample)
	if err != nil {
		t.Fatal(err)
	}
	if d.Count != 6 {
		t.Fatalf("Count = %d, want 6", d.Count)
	}
	r := d.Root
	if r.Name != "a" || r.Pre != 1 {
		t.Fatalf("root = %s pre=%d", r.Name, r.Pre)
	}
	if len(r.Children) != 2 || r.Children[0].Name != "b" || r.Children[1].Name != "c" {
		t.Fatalf("root children wrong: %v", r.Children)
	}
	// pre order: a=1 b=2 c=3 c=4 a=5 b=6
	wantPre := map[string]int64{"a/b": 2, "a/b/c": 3, "a/c": 4, "a/c/a": 5, "a/c/b": 6}
	d.Walk(func(n *Node) bool {
		if n == r {
			return true
		}
		p := strings.TrimPrefix(n.Path(), "/")
		if want, ok := wantPre[p]; ok && n.Pre != want {
			t.Errorf("pre(%s) = %d, want %d", p, n.Pre, want)
		}
		return true
	})
	// post order: leaf c=1, b=2, a(leaf)=3, b(leaf)=4, c=5, root=6
	if r.Post != 6 {
		t.Errorf("post(root) = %d, want 6", r.Post)
	}
	// parent field
	if r.Children[0].Parent != r {
		t.Error("parent pointer wrong")
	}
}

func TestGrustDescendantProperty(t *testing.T) {
	d, err := ParseString(paperExample)
	if err != nil {
		t.Fatal(err)
	}
	// For every pair, IsDescendant must equal reachability.
	var nodes []*Node
	d.Walk(func(n *Node) bool { nodes = append(nodes, n); return true })
	isAncestor := func(a, b *Node) bool { // a proper ancestor of b?
		for p := b.Parent; p != nil; p = p.Parent {
			if p == a {
				return true
			}
		}
		return false
	}
	for _, x := range nodes {
		for _, y := range nodes {
			if got, want := IsDescendant(x, y), isAncestor(y, x); got != want {
				t.Fatalf("IsDescendant(%s,%s) = %v, want %v", x.Path(), y.Path(), got, want)
			}
		}
	}
}

// TestDescendantsContiguous checks the pre-interval property the store's
// boundary scan relies on.
func TestDescendantsContiguous(t *testing.T) {
	d := randomDoc(t, 500, 99)
	var nodes []*Node
	d.Walk(func(n *Node) bool { nodes = append(nodes, n); return true })
	for _, n := range nodes {
		size := n.Size()
		// All of (pre, pre+size] are descendants; pre+size+1 is not.
		for i := int64(1); i <= size; i++ {
			m, ok := d.NodeByPre(n.Pre + i)
			if !ok || !IsDescendant(m, n) {
				t.Fatalf("pre %d should be a descendant of %s", n.Pre+i, n.Path())
			}
		}
		if m, ok := d.NodeByPre(n.Pre + size + 1); ok && IsDescendant(m, n) {
			t.Fatalf("pre %d should not be a descendant of %s", n.Pre+size+1, n.Path())
		}
	}
}

func TestTextCollection(t *testing.T) {
	d, err := ParseString(`<name>Joan <b>bold</b> Johnson</name>`)
	if err != nil {
		t.Fatal(err)
	}
	if d.Root.Text != "Joan Johnson" {
		t.Fatalf("Text = %q", d.Root.Text)
	}
	if d.Root.Children[0].Text != "bold" {
		t.Fatalf("child Text = %q", d.Root.Children[0].Text)
	}
}

func TestWhitespaceOnlyTextIgnored(t *testing.T) {
	d, err := ParseString("<a>\n  <b/>\n</a>")
	if err != nil {
		t.Fatal(err)
	}
	if d.Root.Text != "" {
		t.Fatalf("Text = %q, want empty", d.Root.Text)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"<a>",            // unclosed
		"<a></b>",        // mismatched
		"<a/><b/>",       // two roots
		"just text",      // no element
		"<a></a></a>",    // extra close
		"<a><b></a></b>", // interleaved
	}
	for _, src := range bad {
		if _, err := ParseString(src); err == nil {
			t.Errorf("ParseString(%q) succeeded", src)
		}
	}
}

func TestWalkPrune(t *testing.T) {
	d, _ := ParseString(paperExample)
	var visited []string
	d.Walk(func(n *Node) bool {
		visited = append(visited, n.Name)
		return n.Name != "b" // prune below any b
	})
	// a, b (pruned: no c under first b), c, a, b
	want := "a,b,c,a,b"
	if got := strings.Join(visited, ","); got != want {
		t.Fatalf("visited %s, want %s", got, want)
	}
}

func TestRebuildAfterMutation(t *testing.T) {
	d, _ := ParseString(paperExample)
	// Graft a new subtree under the root's first child.
	extra := &Node{Name: "z", Children: []*Node{{Name: "y"}}}
	first := d.Root.Children[0]
	first.Children = append(first.Children, extra)
	d.Rebuild()
	if d.Count != 8 {
		t.Fatalf("Count after rebuild = %d, want 8", d.Count)
	}
	// Check consistency of the numbering.
	seenPre := map[int64]bool{}
	seenPost := map[int64]bool{}
	d.Walk(func(n *Node) bool {
		seenPre[n.Pre] = true
		seenPost[n.Post] = true
		if n.Parent != nil && n.Parent.Pre >= n.Pre {
			t.Errorf("pre(%s) <= pre(parent)", n.Path())
		}
		return true
	})
	for i := int64(1); i <= d.Count; i++ {
		if !seenPre[i] || !seenPost[i] {
			t.Fatalf("numbering has gaps at %d", i)
		}
	}
	if z, ok := d.NodeByPre(extra.Pre); !ok || z != extra {
		t.Fatal("byPre index stale after Rebuild")
	}
}

func TestWriteXMLRoundTrip(t *testing.T) {
	d, err := ParseString(`<site><people><person><name>Joan</name></person></people><regions/></site>`)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.WriteXML(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := Parse(&buf)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, buf.String())
	}
	if d2.Count != d.Count {
		t.Fatalf("round-trip count %d != %d", d2.Count, d.Count)
	}
	var a, b []string
	d.Walk(func(n *Node) bool { a = append(a, n.Name); return true })
	d2.Walk(func(n *Node) bool { b = append(b, n.Name); return true })
	if strings.Join(a, ",") != strings.Join(b, ",") {
		t.Fatalf("round-trip structure differs:\n%v\n%v", a, b)
	}
	// Text preserved.
	if d2.byPre[3].Name != "person" {
		t.Fatalf("unexpected shape: %v", b)
	}
}

func TestWriteXMLEscapesText(t *testing.T) {
	d := &Doc{Root: &Node{Name: "t", Text: `a<b>&"c`}}
	d.Rebuild()
	var buf bytes.Buffer
	if err := d.WriteXML(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Root.Text != `a<b>&"c` {
		t.Fatalf("escaped text round-trip = %q", d2.Root.Text)
	}
}

func TestNames(t *testing.T) {
	d, _ := ParseString(paperExample)
	got := strings.Join(d.Names(), ",")
	if got != "a,b,c" {
		t.Fatalf("Names = %s", got)
	}
}

// randomDoc builds a random tree via the public API, then serializes and
// re-parses it so numbering comes from the parser itself.
func randomDoc(t *testing.T, n int, seed int64) *Doc {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	names := []string{"a", "b", "c", "d", "e"}
	root := &Node{Name: "root"}
	nodes := []*Node{root}
	for i := 0; i < n; i++ {
		parent := nodes[rng.Intn(len(nodes))]
		child := &Node{Name: names[rng.Intn(len(names))]}
		parent.Children = append(parent.Children, child)
		nodes = append(nodes, child)
	}
	d := &Doc{Root: root}
	d.Rebuild()
	var buf bytes.Buffer
	if err := d.WriteXML(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return d2
}

func TestStreamDepthEvents(t *testing.T) {
	var events []string
	h := &recordingHandler{events: &events}
	err := Stream(strings.NewReader(`<a>hi<b>there</b></a>`), h)
	if err != nil {
		t.Fatal(err)
	}
	want := "start:a,text:hi,start:b,text:there,end:b,end:a"
	if got := strings.Join(events, ","); got != want {
		t.Fatalf("events = %s, want %s", got, want)
	}
}

type recordingHandler struct{ events *[]string }

func (h *recordingHandler) StartElement(name string) error {
	*h.events = append(*h.events, "start:"+name)
	return nil
}
func (h *recordingHandler) Text(s string) error {
	*h.events = append(*h.events, "text:"+s)
	return nil
}
func (h *recordingHandler) EndElement(name string) error {
	*h.events = append(*h.events, "end:"+name)
	return nil
}

func BenchmarkParse(b *testing.B) {
	// A moderately nested document.
	var sb strings.Builder
	sb.WriteString("<root>")
	for i := 0; i < 1000; i++ {
		sb.WriteString("<item><name>thing</name><value>42</value></item>")
	}
	sb.WriteString("</root>")
	src := sb.String()
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseString(src); err != nil {
			b.Fatal(err)
		}
	}
}
