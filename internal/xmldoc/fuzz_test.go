package xmldoc

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse guards the XML front end: arbitrary bytes must never panic,
// and accepted documents must have consistent Grust numbering and
// serialize/re-parse stably.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"<a/>",
		"<a><b>text</b><c/></a>",
		"<a>&lt;escaped&gt;</a>",
		"<a", "<a></b>", "<a/><b/>", "",
		"<site><regions><europe><item/></europe></regions></site>",
		"<x>\xff\xfe</x>",
		strings.Repeat("<d>", 50) + strings.Repeat("</d>", 50),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		d, err := ParseString(src)
		if err != nil {
			return
		}
		// Numbering invariants on every accepted document.
		seenPre := map[int64]bool{}
		seenPost := map[int64]bool{}
		count := int64(0)
		d.Walk(func(n *Node) bool {
			count++
			if seenPre[n.Pre] || seenPost[n.Post] {
				t.Fatalf("duplicate numbering in %q", src)
			}
			seenPre[n.Pre], seenPost[n.Post] = true, true
			if n.Parent != nil && !IsDescendant(n, n.Parent) {
				t.Fatalf("child not a descendant of parent in %q", src)
			}
			return true
		})
		if count != d.Count {
			t.Fatalf("Count %d != walked %d for %q", d.Count, count, src)
		}
		// Serialization round-trip preserves structure.
		var buf bytes.Buffer
		if err := d.WriteXML(&buf); err != nil {
			t.Fatalf("WriteXML of accepted doc failed: %v", err)
		}
		d2, err := Parse(&buf)
		if err != nil {
			t.Fatalf("re-parse of serialized doc failed: %v\n%s", err, buf.String())
		}
		if d2.Count != d.Count {
			t.Fatalf("round-trip node count %d != %d for %q", d2.Count, d.Count, src)
		}
	})
}
