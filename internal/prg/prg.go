// Package prg implements the deterministic pseudorandom generator that
// stands in for the paper's seeded client-side generator.
//
// The prototype in the paper regenerates the client share of a node's
// polynomial from a secret seed and the node's pre value. We realize this
// with a SHA-256 counter-mode stream keyed by the seed and domain-separated
// by an arbitrary label plus a 64-bit index, so that:
//
//   - the same (seed, domain, index) always yields the same stream, which
//     is what lets the client discard its share tree and keep only the
//     seed (paper §3 step 4);
//   - streams for different nodes are computationally independent.
//
// The seed file is the encryption key of the whole scheme: without it the
// server's shares are uniformly random noise.
package prg

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/bits"
)

// SeedSize is the size of a generator seed in bytes.
const SeedSize = 32

// Generator derives deterministic pseudorandom streams from a fixed seed.
// It is immutable and safe for concurrent use; each Stream is not.
type Generator struct {
	seed [SeedSize]byte
}

// New creates a Generator from seed. The seed may be any length; it is
// hashed into the internal fixed-size key so that related seeds do not
// produce related streams.
func New(seed []byte) *Generator {
	g := &Generator{}
	g.seed = sha256.Sum256(seed)
	return g
}

// NewRandom creates a Generator with a fresh random seed and returns the
// seed so the caller can persist it (the "seed file").
func NewRandom() (*Generator, []byte, error) {
	seed := make([]byte, SeedSize)
	if _, err := io.ReadFull(rand.Reader, seed); err != nil {
		return nil, nil, fmt.Errorf("prg: generating seed: %w", err)
	}
	return New(seed), seed, nil
}

// Stream returns the deterministic stream for (domain, index). In the
// encoder and client filter, domain identifies the purpose ("poly") and
// index is the node's pre value.
//
// The key is sha256(seed || len(domain) || domain || index), assembled
// in a stack buffer and hashed with one Sum256 call: stream derivation
// sits on the per-check hot path (every client-share evaluation derives
// a fresh stream), and the buffer spares the hash.Hash allocation. For
// unusually long domains the buffer spills to the heap; the digest is
// identical either way.
func (g *Generator) Stream(domain string, index uint64) *Stream {
	s := &Stream{}
	g.StreamInto(s, domain, index)
	return s
}

// StreamInto is Stream writing into a caller-supplied Stream value —
// the allocation-free form for hot paths that derive a fresh stream per
// operation (the client filter derives one per share evaluation). Any
// previous state of s is discarded.
func (g *Generator) StreamInto(s *Stream, domain string, index uint64) {
	var arr [96]byte
	buf := append(arr[:0], g.seed[:]...)
	var lenbuf [8]byte
	binary.BigEndian.PutUint64(lenbuf[:], uint64(len(domain)))
	buf = append(buf, lenbuf[:]...)
	buf = append(buf, domain...)
	binary.BigEndian.PutUint64(lenbuf[:], index)
	buf = append(buf, lenbuf[:]...)
	s.key = sha256.Sum256(buf)
	s.ctr = 0
	s.off = 0
	s.init = false
}

// Stream is a deterministic pseudorandom byte/integer stream. Not safe for
// concurrent use.
type Stream struct {
	key  [32]byte
	ctr  uint64
	buf  [32]byte
	off  int // bytes of buf consumed; initially len(buf) to force refill
	init bool
}

// refill computes the next counter block sha256(key || ctr). One
// Sum256 over a stack buffer — no hash.Hash allocation — producing the
// same digest the original hash.Hash sequence did.
func (s *Stream) refill() {
	var b [40]byte
	copy(b[:32], s.key[:])
	binary.BigEndian.PutUint64(b[32:], s.ctr)
	s.ctr++
	s.buf = sha256.Sum256(b[:])
	s.off = 0
	s.init = true
}

// Read fills p with pseudorandom bytes. It never fails.
func (s *Stream) Read(p []byte) (int, error) {
	n := len(p)
	for len(p) > 0 {
		if !s.init || s.off == len(s.buf) {
			s.refill()
		}
		c := copy(p, s.buf[s.off:])
		s.off += c
		p = p[c:]
	}
	return n, nil
}

// Uint32 returns the next pseudorandom 32-bit value. The aligned fast
// path reads straight out of the counter block; the Read fallback
// handles a cursor left unaligned by byte-granular reads and consumes
// exactly the same 4 stream bytes.
func (s *Stream) Uint32() uint32 {
	if s.init && s.off+4 <= len(s.buf) {
		v := binary.BigEndian.Uint32(s.buf[s.off:])
		s.off += 4
		return v
	}
	var b [4]byte
	s.Read(b[:])
	return binary.BigEndian.Uint32(b[:])
}

// Uint64 returns the next pseudorandom 64-bit value.
func (s *Stream) Uint64() uint64 {
	var b [8]byte
	s.Read(b[:])
	return binary.BigEndian.Uint64(b[:])
}

// Uniform returns a uniformly distributed value in [0, m) using rejection
// sampling, so polynomial coefficients drawn from it are unbiased in F_q.
// It panics if m == 0.
func (s *Stream) Uniform(m uint32) uint32 {
	if m == 0 {
		panic("prg: Uniform(0)")
	}
	if m&(m-1) == 0 { // power of two: mask, no bias
		return s.Uint32() & (m - 1)
	}
	// Reject values in the final partial block of the uint32 range.
	limit := uint32(1<<32 - (uint64(1<<32) % uint64(m)))
	for {
		v := s.Uint32()
		if v < limit {
			return v % m
		}
	}
}

// Sampler carries the precomputed reduction constants of Uniform(m) so
// bulk consumers (a polynomial draw is q−1 samples) avoid the two
// hardware divisions Uniform pays per call — the rejection limit and
// the reciprocal for the final reduction. Sample consumes exactly the
// same stream bytes and returns exactly the same values as Uniform(m);
// the equivalence is property-tested, because the client-share stream
// layout is part of the storage format.
type Sampler struct {
	m     uint32
	mask  uint32 // m-1 when m is a power of two, else 0
	limit uint32
	recip uint64 // ⌊2^64/m⌋+1: ⌊v/m⌋ == (v·recip)>>64 for v < 2^32
}

// NewSampler precomputes the Uniform(m) constants. Panics if m == 0.
func NewSampler(m uint32) Sampler {
	if m == 0 {
		panic("prg: NewSampler(0)")
	}
	if m&(m-1) == 0 {
		return Sampler{m: m, mask: m - 1}
	}
	return Sampler{
		m:     m,
		limit: uint32(1<<32 - (uint64(1<<32) % uint64(m))),
		recip: math.MaxUint64/uint64(m) + 1,
	}
}

// M returns the modulus the sampler was built for.
func (u Sampler) M() uint32 { return u.m }

// Sample draws the next value in [0, m), byte-identical to Uniform(m).
func (s *Stream) Sample(u Sampler) uint32 {
	if u.mask != 0 || u.m == 1 {
		return s.Uint32() & u.mask
	}
	for {
		v := s.Uint32()
		if v < u.limit {
			// v - ⌊v/m⌋·m via the precomputed reciprocal; exact for
			// v < 2^32 (Granlund–Montgomery), so identical to v % m.
			q, _ := bits.Mul64(uint64(v), u.recip)
			return v - uint32(q)*u.m
		}
	}
}
