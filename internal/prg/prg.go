// Package prg implements the deterministic pseudorandom generator that
// stands in for the paper's seeded client-side generator.
//
// The prototype in the paper regenerates the client share of a node's
// polynomial from a secret seed and the node's pre value. We realize this
// with a SHA-256 counter-mode stream keyed by the seed and domain-separated
// by an arbitrary label plus a 64-bit index, so that:
//
//   - the same (seed, domain, index) always yields the same stream, which
//     is what lets the client discard its share tree and keep only the
//     seed (paper §3 step 4);
//   - streams for different nodes are computationally independent.
//
// The seed file is the encryption key of the whole scheme: without it the
// server's shares are uniformly random noise.
package prg

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
)

// SeedSize is the size of a generator seed in bytes.
const SeedSize = 32

// Generator derives deterministic pseudorandom streams from a fixed seed.
// It is immutable and safe for concurrent use; each Stream is not.
type Generator struct {
	seed [SeedSize]byte
}

// New creates a Generator from seed. The seed may be any length; it is
// hashed into the internal fixed-size key so that related seeds do not
// produce related streams.
func New(seed []byte) *Generator {
	g := &Generator{}
	g.seed = sha256.Sum256(seed)
	return g
}

// NewRandom creates a Generator with a fresh random seed and returns the
// seed so the caller can persist it (the "seed file").
func NewRandom() (*Generator, []byte, error) {
	seed := make([]byte, SeedSize)
	if _, err := io.ReadFull(rand.Reader, seed); err != nil {
		return nil, nil, fmt.Errorf("prg: generating seed: %w", err)
	}
	return New(seed), seed, nil
}

// Stream returns the deterministic stream for (domain, index). In the
// encoder and client filter, domain identifies the purpose ("poly") and
// index is the node's pre value.
func (g *Generator) Stream(domain string, index uint64) *Stream {
	s := &Stream{}
	h := sha256.New()
	h.Write(g.seed[:])
	var lenbuf [8]byte
	binary.BigEndian.PutUint64(lenbuf[:], uint64(len(domain)))
	h.Write(lenbuf[:])
	h.Write([]byte(domain))
	binary.BigEndian.PutUint64(lenbuf[:], index)
	h.Write(lenbuf[:])
	h.Sum(s.key[:0])
	return s
}

// Stream is a deterministic pseudorandom byte/integer stream. Not safe for
// concurrent use.
type Stream struct {
	key  [32]byte
	ctr  uint64
	buf  [32]byte
	off  int // bytes of buf consumed; initially len(buf) to force refill
	init bool
}

func (s *Stream) refill() {
	h := sha256.New()
	h.Write(s.key[:])
	var ctrbuf [8]byte
	binary.BigEndian.PutUint64(ctrbuf[:], s.ctr)
	s.ctr++
	h.Write(ctrbuf[:])
	h.Sum(s.buf[:0])
	s.off = 0
	s.init = true
}

// Read fills p with pseudorandom bytes. It never fails.
func (s *Stream) Read(p []byte) (int, error) {
	n := len(p)
	for len(p) > 0 {
		if !s.init || s.off == len(s.buf) {
			s.refill()
		}
		c := copy(p, s.buf[s.off:])
		s.off += c
		p = p[c:]
	}
	return n, nil
}

// Uint32 returns the next pseudorandom 32-bit value.
func (s *Stream) Uint32() uint32 {
	var b [4]byte
	s.Read(b[:])
	return binary.BigEndian.Uint32(b[:])
}

// Uint64 returns the next pseudorandom 64-bit value.
func (s *Stream) Uint64() uint64 {
	var b [8]byte
	s.Read(b[:])
	return binary.BigEndian.Uint64(b[:])
}

// Uniform returns a uniformly distributed value in [0, m) using rejection
// sampling, so polynomial coefficients drawn from it are unbiased in F_q.
// It panics if m == 0.
func (s *Stream) Uniform(m uint32) uint32 {
	if m == 0 {
		panic("prg: Uniform(0)")
	}
	if m&(m-1) == 0 { // power of two: mask, no bias
		return s.Uint32() & (m - 1)
	}
	// Reject values in the final partial block of the uint32 range.
	limit := uint32(1<<32 - (uint64(1<<32) % uint64(m)))
	for {
		v := s.Uint32()
		if v < limit {
			return v % m
		}
	}
}
