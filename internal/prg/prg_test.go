package prg

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	g1 := New([]byte("seed"))
	g2 := New([]byte("seed"))
	s1, s2 := g1.Stream("poly", 42), g2.Stream("poly", 42)
	b1, b2 := make([]byte, 1024), make([]byte, 1024)
	s1.Read(b1)
	s2.Read(b2)
	if !bytes.Equal(b1, b2) {
		t.Fatal("same (seed, domain, index) produced different streams")
	}
}

func TestSeedSeparation(t *testing.T) {
	a := New([]byte("seed-a")).Stream("poly", 1)
	b := New([]byte("seed-b")).Stream("poly", 1)
	ba, bb := make([]byte, 64), make([]byte, 64)
	a.Read(ba)
	b.Read(bb)
	if bytes.Equal(ba, bb) {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestDomainAndIndexSeparation(t *testing.T) {
	g := New([]byte("seed"))
	streams := []*Stream{
		g.Stream("poly", 1),
		g.Stream("poly", 2),
		g.Stream("other", 1),
		g.Stream("pol", 1), // prefix of "poly": length framing must separate
		g.Stream("", 1),
	}
	outs := make([][]byte, len(streams))
	for i, s := range streams {
		outs[i] = make([]byte, 64)
		s.Read(outs[i])
	}
	for i := range outs {
		for j := i + 1; j < len(outs); j++ {
			if bytes.Equal(outs[i], outs[j]) {
				t.Errorf("streams %d and %d are identical", i, j)
			}
		}
	}
}

func TestReadChunkingInvariance(t *testing.T) {
	// Reading 100 bytes at once must equal reading them in odd-sized chunks.
	one := make([]byte, 100)
	New([]byte("x")).Stream("d", 7).Read(one)
	s := New([]byte("x")).Stream("d", 7)
	var parts []byte
	for _, n := range []int{1, 3, 32, 31, 33} {
		p := make([]byte, n)
		s.Read(p)
		parts = append(parts, p...)
	}
	if !bytes.Equal(one, parts) {
		t.Fatal("chunked reads diverge from bulk read")
	}
}

func TestUniformBounds(t *testing.T) {
	s := New([]byte("u")).Stream("d", 0)
	for _, m := range []uint32{1, 2, 3, 5, 83, 1 << 16, math.MaxUint32} {
		for i := 0; i < 200; i++ {
			if v := s.Uniform(m); v >= m {
				t.Fatalf("Uniform(%d) = %d out of range", m, v)
			}
		}
	}
}

func TestUniformZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uniform(0) did not panic")
		}
	}()
	New(nil).Stream("d", 0).Uniform(0)
}

// TestUniformDistribution sanity-checks flatness with a chi-squared-ish
// tolerance: all buckets of Uniform(83) within 3x the expected sqrt band.
func TestUniformDistribution(t *testing.T) {
	const m, n = 83, 83 * 600
	s := New([]byte("dist")).Stream("d", 9)
	counts := make([]int, m)
	for i := 0; i < n; i++ {
		counts[s.Uniform(m)]++
	}
	expected := float64(n) / m
	band := 5 * math.Sqrt(expected)
	for v, c := range counts {
		if math.Abs(float64(c)-expected) > band {
			t.Errorf("bucket %d: count %d, expected %.1f +/- %.1f", v, c, expected, band)
		}
	}
}

func TestNewRandomDistinct(t *testing.T) {
	g1, seed1, err := NewRandom()
	if err != nil {
		t.Fatal(err)
	}
	g2, seed2, err := NewRandom()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(seed1, seed2) {
		t.Fatal("two random seeds are equal")
	}
	if len(seed1) != SeedSize {
		t.Fatalf("seed size %d, want %d", len(seed1), SeedSize)
	}
	// Regenerating from the returned seed reproduces the stream.
	b1, b2 := make([]byte, 64), make([]byte, 64)
	g1.Stream("poly", 3).Read(b1)
	New(seed1).Stream("poly", 3).Read(b2)
	if !bytes.Equal(b1, b2) {
		t.Fatal("seed round-trip failed")
	}
	_ = g2
}

func TestQuickIndexSeparation(t *testing.T) {
	g := New([]byte("q"))
	err := quick.Check(func(i, j uint64) bool {
		if i == j {
			return true
		}
		a, b := make([]byte, 32), make([]byte, 32)
		g.Stream("poly", i).Read(a)
		g.Stream("poly", j).Read(b)
		return !bytes.Equal(a, b)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func BenchmarkStreamRead(b *testing.B) {
	s := New([]byte("bench")).Stream("poly", 1)
	buf := make([]byte, 82) // one F_83 polynomial's worth of coefficients
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		s.Read(buf)
	}
}

func BenchmarkUniform83(b *testing.B) {
	s := New([]byte("bench")).Stream("poly", 1)
	for i := 0; i < b.N; i++ {
		_ = s.Uniform(83)
	}
}

// TestStreamMatchesReferenceConstruction pins the wire-format identity
// of the optimized stream: key = sha256(seed || len(domain) || domain ||
// index) and block i = sha256(key || i), computed here with the plain
// hash.Hash construction the package originally used. The seed file of
// an encoded database depends on this byte layout never changing.
func TestStreamMatchesReferenceConstruction(t *testing.T) {
	seed := []byte("reference-seed")
	g := New(seed)
	for _, domain := range []string{"", "poly", "encshare/client-poly/v1", strings.Repeat("long-domain/", 20)} {
		for _, index := range []uint64{0, 1, 7, 1 << 40} {
			// Reference: hash.Hash step by step.
			kh := sha256.New()
			kh.Write(sha256Sum(seed))
			var lenbuf [8]byte
			binary.BigEndian.PutUint64(lenbuf[:], uint64(len(domain)))
			kh.Write(lenbuf[:])
			kh.Write([]byte(domain))
			binary.BigEndian.PutUint64(lenbuf[:], index)
			kh.Write(lenbuf[:])
			key := kh.Sum(nil)

			want := make([]byte, 0, 96)
			for ctr := uint64(0); ctr < 3; ctr++ {
				bh := sha256.New()
				bh.Write(key)
				var ctrbuf [8]byte
				binary.BigEndian.PutUint64(ctrbuf[:], ctr)
				bh.Write(ctrbuf[:])
				want = bh.Sum(want)
			}

			got := make([]byte, 96)
			g.Stream(domain, index).Read(got)
			if !bytes.Equal(got, want) {
				t.Fatalf("stream bytes diverged from reference for domain %q index %d", domain, index)
			}
		}
	}
}

// TestUint32MatchesRead checks the aligned Uint32 fast path consumes
// exactly the bytes Read would, including when interleaved with
// unaligned byte reads.
func TestUint32MatchesRead(t *testing.T) {
	g := New([]byte("u32"))
	a := g.Stream("d", 1)
	b := g.Stream("d", 1)
	for i := 0; i < 64; i++ {
		var buf [4]byte
		b.Read(buf[:])
		if got, want := a.Uint32(), binary.BigEndian.Uint32(buf[:]); got != want {
			t.Fatalf("Uint32 #%d = %#x, Read gives %#x", i, got, want)
		}
	}
	// Knock both cursors out of alignment and compare again.
	var one [1]byte
	a.Read(one[:])
	b.Read(one[:])
	for i := 0; i < 64; i++ {
		var buf [4]byte
		b.Read(buf[:])
		if got, want := a.Uint32(), binary.BigEndian.Uint32(buf[:]); got != want {
			t.Fatalf("unaligned Uint32 #%d = %#x, Read gives %#x", i, got, want)
		}
	}
}

func sha256Sum(b []byte) []byte {
	s := sha256.Sum256(b)
	return s[:]
}

// TestSamplerMatchesUniform proves Sample is byte- and value-identical
// to Uniform for the moduli the scheme uses plus adversarial ones
// (powers of two, 1, near-2^32 values that stress the rejection limit).
func TestSamplerMatchesUniform(t *testing.T) {
	g := New([]byte("sampler"))
	moduli := []uint32{1, 2, 3, 5, 29, 64, 83, 256, 1021, 1 << 20, math.MaxUint32, math.MaxUint32 - 1, 1<<31 + 1}
	for _, m := range moduli {
		u := NewSampler(m)
		if u.M() != m {
			t.Fatalf("M() = %d, want %d", u.M(), m)
		}
		a := g.Stream("s", uint64(m))
		b := g.Stream("s", uint64(m))
		for i := 0; i < 4096; i++ {
			got, want := a.Sample(u), b.Uniform(m)
			if got != want {
				t.Fatalf("m=%d draw %d: Sample %d != Uniform %d", m, i, got, want)
			}
		}
	}
}

func TestNewSamplerZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSampler(0) did not panic")
		}
	}()
	NewSampler(0)
}
