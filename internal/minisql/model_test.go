package minisql

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// model_test drives the SQL engine against a naive in-memory reference:
// random inserts/updates/deletes interleaved with randomized SELECTs whose
// results are recomputed by brute force. This is the model check promised
// in DESIGN.md §5.

type modelRow struct {
	a, b, c int64
	deleted bool
}

func TestModelRandomizedWorkload(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runModel(t, seed, 1500)
		})
	}
}

func runModel(t *testing.T, seed int64, steps int) {
	rng := rand.New(rand.NewSource(seed))
	db := NewDB()
	mustExec(t, db, "CREATE TABLE m (a BIGINT PRIMARY KEY, b BIGINT NOT NULL, c BIGINT NOT NULL)")
	mustExec(t, db, "CREATE INDEX m_b ON m (b)")

	model := map[int64]*modelRow{} // keyed by a (primary key)
	nextA := int64(0)

	liveMatching := func(pred func(*modelRow) bool) []*modelRow {
		var out []*modelRow
		for _, r := range model {
			if !r.deleted && pred(r) {
				out = append(out, r)
			}
		}
		return out
	}

	for step := 0; step < steps; step++ {
		switch op := rng.Intn(10); {
		case op < 4: // insert
			a := nextA
			nextA++
			b, c := rng.Int63n(50), rng.Int63n(50)
			mustExec(t, db, "INSERT INTO m VALUES (?, ?, ?)", a, b, c)
			model[a] = &modelRow{a: a, b: b, c: c}
		case op < 5 && len(model) > 0: // duplicate-key insert must fail
			var any int64
			for k, r := range model {
				if !r.deleted {
					any = k
					break
				}
			}
			if _, err := db.Exec("INSERT INTO m VALUES (?, 0, 0)", any); err == nil {
				if r := model[any]; r != nil && !r.deleted {
					t.Fatalf("step %d: duplicate key %d accepted", step, any)
				}
			}
		case op < 6: // update by b range
			lo := rng.Int63n(50)
			v := rng.Int63n(50)
			n := mustExec(t, db, "UPDATE m SET c = ? WHERE b >= ?", v, lo)
			want := liveMatching(func(r *modelRow) bool { return r.b >= lo })
			if n != int64(len(want)) {
				t.Fatalf("step %d: UPDATE affected %d, model %d", step, n, len(want))
			}
			for _, r := range want {
				r.c = v
			}
		case op < 7: // delete by b equality
			b := rng.Int63n(50)
			n := mustExec(t, db, "DELETE FROM m WHERE b = ?", b)
			want := liveMatching(func(r *modelRow) bool { return r.b == b })
			if n != int64(len(want)) {
				t.Fatalf("step %d: DELETE affected %d, model %d", step, n, len(want))
			}
			for _, r := range want {
				r.deleted = true
			}
		default: // select with random predicate shape
			var (
				query string
				args  []Value
				pred  func(*modelRow) bool
			)
			switch rng.Intn(4) {
			case 0:
				b := rng.Int63n(50)
				query, args = "SELECT a FROM m WHERE b = ? ORDER BY a", []Value{b}
				pred = func(r *modelRow) bool { return r.b == b }
			case 1:
				lo, hi := rng.Int63n(50), rng.Int63n(60)
				query, args = "SELECT a FROM m WHERE a BETWEEN ? AND ? ORDER BY a", []Value{lo, hi}
				pred = func(r *modelRow) bool { return r.a >= lo && r.a <= hi }
			case 2:
				b, c := rng.Int63n(50), rng.Int63n(50)
				query, args = "SELECT a FROM m WHERE b >= ? AND c < ? ORDER BY a", []Value{b, c}
				pred = func(r *modelRow) bool { return r.b >= b && r.c < c }
			default:
				b := rng.Int63n(50)
				query, args = "SELECT a FROM m WHERE b != ? ORDER BY a", []Value{b}
				pred = func(r *modelRow) bool { return r.b != b }
			}
			rows := mustQuery(t, db, query, args...)
			got := make([]int64, 0, len(rows))
			for _, r := range rows {
				got = append(got, r[0].(int64))
			}
			wantRows := liveMatching(pred)
			want := make([]int64, 0, len(wantRows))
			for _, r := range wantRows {
				want = append(want, r.a)
			}
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			if len(got) != len(want) {
				t.Fatalf("step %d: %s %v: got %d rows, want %d", step, query, args, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("step %d: %s %v: row %d = %d, want %d", step, query, args, i, got[i], want[i])
				}
			}
		}

		// Periodically cross-check aggregates.
		if step%100 == 0 {
			rows := mustQuery(t, db, "SELECT COUNT(*), SUM(c), MIN(a), MAX(b) FROM m")
			live := liveMatching(func(*modelRow) bool { return true })
			if rows[0][0].(int64) != int64(len(live)) {
				t.Fatalf("step %d: COUNT %v, model %d", step, rows[0][0], len(live))
			}
			if len(live) > 0 {
				var sumC, minA, maxB int64
				minA = 1 << 62
				for _, r := range live {
					sumC += r.c
					if r.a < minA {
						minA = r.a
					}
					if r.b > maxB {
						maxB = r.b
					}
				}
				if rows[0][1].(int64) != sumC || rows[0][2].(int64) != minA || rows[0][3].(int64) != maxB {
					t.Fatalf("step %d: aggregates %v, model sum=%d min=%d max=%d",
						step, rows[0], sumC, minA, maxB)
				}
			}
		}
	}
}
