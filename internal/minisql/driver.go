package minisql

import (
	"context"
	"database/sql"
	"database/sql/driver"
	"errors"
	"fmt"
	"io"
)

// DriverName is the name this package registers with database/sql.
const DriverName = "minisql"

func init() {
	sql.Register(DriverName, &Driver{})
}

// Driver implements database/sql/driver.Driver. The DSN is a database
// name in the process-global registry: connections with equal DSNs share
// one database, like connections to the same MySQL schema.
type Driver struct{}

// Open returns a connection to the database named by the DSN.
func (Driver) Open(dsn string) (driver.Conn, error) {
	if dsn == "" {
		return nil, errors.New("minisql: empty DSN; use a database name (see FreshDSN)")
	}
	return &conn{db: Get(dsn)}, nil
}

type conn struct {
	db *DB
}

var (
	_ driver.Conn           = (*conn)(nil)
	_ driver.QueryerContext = (*conn)(nil)
	_ driver.ExecerContext  = (*conn)(nil)
)

func (c *conn) Prepare(query string) (driver.Stmt, error) {
	// Parse once here; executions reuse the parsed statement. Besides
	// reporting syntax errors eagerly like a real DB, this is what makes
	// the store's prepared navigation queries (Children, Descendants)
	// cheap: the per-call lexer/parser pass was a measurable slice of
	// every query's metadata traffic. Parsed statements are read-only at
	// execution time, so sharing one across goroutines is safe.
	s, nparams, err := parse(query)
	if err != nil {
		return nil, err
	}
	return &stmtHandle{db: c.db, parsed: s, nparams: nparams}, nil
}

func (c *conn) Close() error { return nil }

// Begin returns a pass-through transaction: minisql applies each statement
// atomically under the database lock but has no rollback journal, which is
// all the paper's single-writer encoder needs.
func (c *conn) Begin() (driver.Tx, error) { return noopTx{}, nil }

type noopTx struct{}

func (noopTx) Commit() error   { return nil }
func (noopTx) Rollback() error { return errors.New("minisql: rollback not supported") }

func (c *conn) QueryContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Rows, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cols, rows, err := c.db.Query(query, namedToValues(args)...)
	if err != nil {
		return nil, err
	}
	return &resultRows{cols: cols, rows: rows}, nil
}

func (c *conn) ExecContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n, err := c.db.Exec(query, namedToValues(args)...)
	if err != nil {
		return nil, err
	}
	return execResult{affected: n}, nil
}

func namedToValues(args []driver.NamedValue) []Value {
	out := make([]Value, len(args))
	for i, a := range args {
		out[i] = Value(a.Value)
	}
	return out
}

type stmtHandle struct {
	db      *DB
	parsed  stmt
	nparams int
}

func (s *stmtHandle) Close() error  { return nil }
func (s *stmtHandle) NumInput() int { return s.nparams }

func (s *stmtHandle) Exec(args []driver.Value) (driver.Result, error) {
	vals := make([]Value, len(args))
	for i, a := range args {
		vals[i] = Value(a)
	}
	n, err := s.db.execParsed(s.parsed, s.nparams, vals)
	if err != nil {
		return nil, err
	}
	return execResult{affected: n}, nil
}

func (s *stmtHandle) Query(args []driver.Value) (driver.Rows, error) {
	vals := make([]Value, len(args))
	for i, a := range args {
		vals[i] = Value(a)
	}
	cols, rows, err := s.db.queryParsed(s.parsed, s.nparams, vals)
	if err != nil {
		return nil, err
	}
	return &resultRows{cols: cols, rows: rows}, nil
}

type execResult struct{ affected int64 }

func (r execResult) LastInsertId() (int64, error) {
	return 0, errors.New("minisql: LastInsertId not supported")
}
func (r execResult) RowsAffected() (int64, error) { return r.affected, nil }

type resultRows struct {
	cols []string
	rows [][]Value
	pos  int
}

func (r *resultRows) Columns() []string { return r.cols }
func (r *resultRows) Close() error      { return nil }

func (r *resultRows) Next(dest []driver.Value) error {
	if r.pos >= len(r.rows) {
		return io.EOF
	}
	row := r.rows[r.pos]
	r.pos++
	if len(dest) != len(row) {
		return fmt.Errorf("minisql: destination has %d slots for %d columns", len(dest), len(row))
	}
	for i, v := range row {
		dest[i] = driver.Value(v)
	}
	return nil
}
