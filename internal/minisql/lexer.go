package minisql

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// token kinds produced by the lexer.
type tokKind int

const (
	tkEOF tokKind = iota
	tkIdent
	tkNumber
	tkString // single-quoted literal, unescaped
	tkParam  // ?
	tkPunct  // ( ) , * = < > <= >= != <>
)

type token struct {
	kind  tokKind
	text  string // identifier/punct text (identifiers lowercased), or literal
	num   float64
	isInt bool
	ival  int64
	pos   int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes the statement; SQL keywords are returned as tkIdent and
// matched case-insensitively by the parser.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tkEOF, pos: l.pos})
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case c == '?':
			l.toks = append(l.toks, token{kind: tkParam, pos: l.pos})
			l.pos++
		case isIdentStart(rune(c)):
			l.lexIdent()
		case unicode.IsDigit(rune(c)) || (c == '-' && l.pos+1 < len(l.src) && unicode.IsDigit(rune(l.src[l.pos+1]))):
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
		case strings.ContainsRune("(),*=;", rune(c)):
			l.toks = append(l.toks, token{kind: tkPunct, text: string(c), pos: l.pos})
			l.pos++
		case c == '<':
			if l.peekAt(1) == '=' {
				l.emitPunct("<=", 2)
			} else if l.peekAt(1) == '>' {
				l.emitPunct("!=", 2)
			} else {
				l.emitPunct("<", 1)
			}
		case c == '>':
			if l.peekAt(1) == '=' {
				l.emitPunct(">=", 2)
			} else {
				l.emitPunct(">", 1)
			}
		case c == '!':
			if l.peekAt(1) == '=' {
				l.emitPunct("!=", 2)
			} else {
				return nil, fmt.Errorf("minisql: unexpected '!' at %d", l.pos)
			}
		default:
			return nil, fmt.Errorf("minisql: unexpected character %q at %d", c, l.pos)
		}
	}
}

func (l *lexer) peekAt(off int) byte {
	if l.pos+off < len(l.src) {
		return l.src[l.pos+off]
	}
	return 0
}

func (l *lexer) emitPunct(text string, width int) {
	l.toks = append(l.toks, token{kind: tkPunct, text: text, pos: l.pos})
	l.pos += width
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		// -- line comments
		if c == '-' && l.peekAt(1) == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		return
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentCont(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentCont(rune(l.src[l.pos])) {
		l.pos++
	}
	l.toks = append(l.toks, token{
		kind: tkIdent,
		text: strings.ToLower(l.src[start:l.pos]),
		pos:  start,
	})
}

func (l *lexer) lexNumber() error {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
	}
	sawDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if unicode.IsDigit(rune(c)) {
			l.pos++
		} else if c == '.' && !sawDot {
			sawDot = true
			l.pos++
		} else {
			break
		}
	}
	text := l.src[start:l.pos]
	if sawDot {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return fmt.Errorf("minisql: bad number %q at %d", text, start)
		}
		l.toks = append(l.toks, token{kind: tkNumber, num: f, pos: start})
	} else {
		i, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return fmt.Errorf("minisql: bad integer %q at %d", text, start)
		}
		l.toks = append(l.toks, token{kind: tkNumber, isInt: true, ival: i, num: float64(i), pos: start})
	}
	return nil
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.peekAt(1) == '\'' { // escaped quote
				sb.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tkString, text: sb.String(), pos: start})
			return nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("minisql: unterminated string starting at %d", start)
}
