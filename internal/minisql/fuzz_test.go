package minisql

import (
	"bytes"
	"testing"
)

// FuzzParseSQL guards the SQL front end against panics on arbitrary
// statement text.
func FuzzParseSQL(f *testing.F) {
	seeds := []string{
		"SELECT * FROM nodes WHERE pre = ?",
		"SELECT pre, post FROM nodes WHERE pre > 1 AND post < 2 ORDER BY pre DESC LIMIT 3 OFFSET 1",
		"SELECT MIN(pre) FROM nodes WHERE pre > ? AND post > ?",
		"CREATE TABLE t (a BIGINT PRIMARY KEY, b BLOB, c VARCHAR(10) NOT NULL)",
		"CREATE UNIQUE INDEX i ON t (a) USING BTREE",
		"INSERT INTO t (a, b) VALUES (1, ?), (2, NULL)",
		"UPDATE t SET a = 1, b = 'x''y' WHERE c IS NOT NULL",
		"DELETE FROM t WHERE a BETWEEN -5 AND 5",
		"DROP TABLE t",
		"SELECT COUNT(*), SUM(a) FROM t -- trailing comment",
		"SELECT 'unterminated",
		"INSERT INTO",
		"SELECT * FROM t WHERE a <=> 3",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		s, nparams, err := parse(src)
		if err != nil {
			return
		}
		if s == nil {
			t.Fatalf("parse(%q) returned nil statement without error", src)
		}
		if nparams < 0 {
			t.Fatalf("parse(%q) returned negative param count", src)
		}
	})
}

// FuzzLoadDump guards the persistence decoder against malformed input.
func FuzzLoadDump(f *testing.F) {
	f.Add([]byte("not a dump"))
	f.Add([]byte{})
	f.Add([]byte{0x0d, 0x7f, 0x04, 0x01, 0x02, 0xff, 0x81})
	f.Fuzz(func(t *testing.T, data []byte) {
		db := NewDB()
		_ = db.Load(bytes.NewReader(data)) // must not panic
	})
}
