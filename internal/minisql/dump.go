package minisql

import (
	"encoding/gob"
	"fmt"
	"io"
	"strings"
)

// Persistence: Dump serializes a whole database (schema + rows) with gob;
// Load restores it, rebuilding all indexes. This is how the CLI tools
// hand an encoded database from encshare-encode to encshare-server, the
// way the paper's MySQLEncode fills a MySQL instance the server later
// queries.

type dumpFile struct {
	Magic   string
	Version int
	Tables  []dumpTable
}

type dumpTable struct {
	Name    string
	Cols    []Column
	Rows    [][]Value
	Indexes []dumpIndex
}

type dumpIndex struct {
	Name   string
	Col    string
	Unique bool
}

const (
	dumpMagic   = "minisql-dump"
	dumpVersion = 1
)

func init() {
	// Concrete types that may appear inside the Value interface.
	gob.Register(int64(0))
	gob.Register(float64(0))
	gob.Register("")
	gob.Register([]byte(nil))
}

// Dump writes the database content to w.
func (db *DB) Dump(w io.Writer) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	df := dumpFile{Magic: dumpMagic, Version: dumpVersion}
	for _, name := range db.tableNamesLocked() {
		t := db.tables[name]
		dt := dumpTable{Name: t.name, Cols: t.cols}
		for _, row := range t.rows {
			if row != nil {
				dt.Rows = append(dt.Rows, row)
			}
		}
		for _, ix := range t.indexes {
			if strings.HasPrefix(ix.name, "pk_") {
				continue // recreated from the PRIMARY KEY column flag
			}
			dt.Indexes = append(dt.Indexes, dumpIndex{
				Name: ix.name, Col: t.cols[ix.col].Name, Unique: ix.unique,
			})
		}
		df.Tables = append(df.Tables, dt)
	}
	if err := gob.NewEncoder(w).Encode(df); err != nil {
		return fmt.Errorf("minisql: dump: %w", err)
	}
	return nil
}

func (db *DB) tableNamesLocked() []string {
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	// Deterministic dump order.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Load replaces the database content with the dump read from r.
func (db *DB) Load(r io.Reader) error {
	var df dumpFile
	if err := gob.NewDecoder(r).Decode(&df); err != nil {
		return fmt.Errorf("minisql: load: %w", err)
	}
	if df.Magic != dumpMagic {
		return fmt.Errorf("minisql: load: not a minisql dump")
	}
	if df.Version != dumpVersion {
		return fmt.Errorf("minisql: load: unsupported dump version %d", df.Version)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.tables = map[string]*Table{}
	for _, dt := range df.Tables {
		t := &Table{name: dt.Name, cols: dt.Cols, colIdx: map[string]int{}}
		for i, c := range t.cols {
			t.colIdx[strings.ToLower(c.Name)] = i
		}
		for i, c := range t.cols {
			if c.PrimaryKey {
				t.indexes = append(t.indexes, &index{name: "pk_" + t.name, col: i, unique: true})
			}
		}
		for _, di := range dt.Indexes {
			ci, ok := t.colIdx[strings.ToLower(di.Col)]
			if !ok {
				return fmt.Errorf("minisql: load: index %q references unknown column %q", di.Name, di.Col)
			}
			t.indexes = append(t.indexes, &index{name: di.Name, col: ci, unique: di.Unique})
		}
		t.rows = dt.Rows
		t.live = len(dt.Rows)
		for rowid, row := range t.rows {
			if len(row) != len(t.cols) {
				return fmt.Errorf("minisql: load: table %q row %d has %d cells for %d columns", t.name, rowid, len(row), len(t.cols))
			}
			for _, ix := range t.indexes {
				if row[ix.col] == nil {
					continue
				}
				key, ok := row[ix.col].(int64)
				if !ok {
					return fmt.Errorf("minisql: load: non-integer value in indexed column %q", t.cols[ix.col].Name)
				}
				if ix.unique && anyWithKey(&ix.tree, key) {
					return fmt.Errorf("minisql: load: duplicate key %d in unique index %q", key, ix.name)
				}
				ix.tree.Insert(key, int64(rowid))
			}
		}
		db.tables[t.name] = t
	}
	return nil
}
