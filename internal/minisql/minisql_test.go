package minisql

import (
	"bytes"
	"strings"
	"testing"
)

func mustExec(t *testing.T, db *DB, q string, args ...Value) int64 {
	t.Helper()
	n, err := db.Exec(q, args...)
	if err != nil {
		t.Fatalf("Exec(%q): %v", q, err)
	}
	return n
}

func mustQuery(t *testing.T, db *DB, q string, args ...Value) [][]Value {
	t.Helper()
	_, rows, err := db.Query(q, args...)
	if err != nil {
		t.Fatalf("Query(%q): %v", q, err)
	}
	return rows
}

func nodesDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	mustExec(t, db, `CREATE TABLE nodes (
		pre BIGINT PRIMARY KEY,
		post BIGINT NOT NULL,
		parent BIGINT NOT NULL,
		poly BLOB
	)`)
	mustExec(t, db, "CREATE INDEX idx_post ON nodes (post) USING BTREE")
	mustExec(t, db, "CREATE INDEX idx_parent ON nodes (parent) USING BTREE")
	return db
}

func TestCreateInsertSelect(t *testing.T) {
	db := nodesDB(t)
	mustExec(t, db, "INSERT INTO nodes VALUES (1, 6, 0, ?)", []byte{0xAA})
	mustExec(t, db, "INSERT INTO nodes (pre, post, parent, poly) VALUES (2, 2, 1, ?), (3, 5, 1, ?)",
		[]byte{0xBB}, []byte{0xCC})

	rows := mustQuery(t, db, "SELECT pre, post, parent FROM nodes WHERE parent = ?", int64(1))
	if len(rows) != 2 {
		t.Fatalf("children query returned %d rows, want 2", len(rows))
	}
	if rows[0][0].(int64) != 2 || rows[1][0].(int64) != 3 {
		t.Fatalf("children rows = %v", rows)
	}

	rows = mustQuery(t, db, "SELECT poly FROM nodes WHERE pre = 1")
	if len(rows) != 1 || !bytes.Equal(rows[0][0].([]byte), []byte{0xAA}) {
		t.Fatalf("poly lookup = %v", rows)
	}
}

func TestSelectStar(t *testing.T) {
	db := nodesDB(t)
	mustExec(t, db, "INSERT INTO nodes VALUES (1, 1, 0, ?)", []byte{1})
	cols, rows, err := db.Query("SELECT * FROM nodes")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"pre", "post", "parent", "poly"}
	if strings.Join(cols, ",") != strings.Join(want, ",") {
		t.Fatalf("columns = %v", cols)
	}
	if len(rows) != 1 || len(rows[0]) != 4 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestPrimaryKeyUnique(t *testing.T) {
	db := nodesDB(t)
	mustExec(t, db, "INSERT INTO nodes VALUES (1, 1, 0, NULL)")
	if _, err := db.Exec("INSERT INTO nodes VALUES (1, 2, 0, NULL)"); err == nil {
		t.Fatal("duplicate primary key accepted")
	}
}

func TestNotNull(t *testing.T) {
	db := nodesDB(t)
	if _, err := db.Exec("INSERT INTO nodes VALUES (1, NULL, 0, NULL)"); err == nil {
		t.Fatal("NULL in NOT NULL column accepted")
	}
}

func TestRangeQueries(t *testing.T) {
	db := nodesDB(t)
	for i := int64(1); i <= 100; i++ {
		mustExec(t, db, "INSERT INTO nodes VALUES (?, ?, ?, NULL)", i, 200-i, i/2)
	}
	rows := mustQuery(t, db, "SELECT pre FROM nodes WHERE pre > ? AND pre < ? ORDER BY pre", int64(10), int64(20))
	if len(rows) != 9 {
		t.Fatalf("range returned %d rows, want 9", len(rows))
	}
	for i, r := range rows {
		if r[0].(int64) != int64(11+i) {
			t.Fatalf("row %d = %v, want %d", i, r[0], 11+i)
		}
	}
	rows = mustQuery(t, db, "SELECT pre FROM nodes WHERE pre BETWEEN 95 AND 200")
	if len(rows) != 6 {
		t.Fatalf("BETWEEN returned %d rows, want 6", len(rows))
	}
}

func TestOrderByDescLimitOffset(t *testing.T) {
	db := nodesDB(t)
	for i := int64(1); i <= 10; i++ {
		mustExec(t, db, "INSERT INTO nodes VALUES (?, ?, 0, NULL)", i, 11-i)
	}
	rows := mustQuery(t, db, "SELECT pre FROM nodes ORDER BY post DESC LIMIT 3 OFFSET 2")
	// post values are 10..1 for pre 1..10; DESC by post = pre ascending.
	want := []int64{3, 4, 5}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for i, r := range rows {
		if r[0].(int64) != want[i] {
			t.Fatalf("rows = %v, want pre %v", rows, want)
		}
	}
}

func TestLimitWithoutOrder(t *testing.T) {
	db := nodesDB(t)
	for i := int64(1); i <= 10; i++ {
		mustExec(t, db, "INSERT INTO nodes VALUES (?, ?, 0, NULL)", i, i)
	}
	rows := mustQuery(t, db, "SELECT pre FROM nodes LIMIT 4")
	if len(rows) != 4 {
		t.Fatalf("LIMIT returned %d rows", len(rows))
	}
}

func TestAggregates(t *testing.T) {
	db := nodesDB(t)
	for i := int64(1); i <= 10; i++ {
		mustExec(t, db, "INSERT INTO nodes VALUES (?, ?, 0, NULL)", i, i*10)
	}
	rows := mustQuery(t, db, "SELECT COUNT(*), MIN(pre), MAX(post), SUM(pre) FROM nodes")
	r := rows[0]
	if r[0].(int64) != 10 || r[1].(int64) != 1 || r[2].(int64) != 100 || r[3].(int64) != 55 {
		t.Fatalf("aggregates = %v", r)
	}
	// Aggregate with WHERE.
	rows = mustQuery(t, db, "SELECT COUNT(*) FROM nodes WHERE pre > 7")
	if rows[0][0].(int64) != 3 {
		t.Fatalf("COUNT(*) with WHERE = %v", rows[0][0])
	}
	// MIN on indexed column with residual predicate: the boundary query.
	rows = mustQuery(t, db, "SELECT MIN(pre) FROM nodes WHERE pre > ? AND post > ?", int64(2), int64(55))
	if rows[0][0].(int64) != 6 {
		t.Fatalf("boundary MIN = %v, want 6", rows[0][0])
	}
	// Aggregates over empty set.
	rows = mustQuery(t, db, "SELECT COUNT(*), MIN(pre), SUM(pre) FROM nodes WHERE pre > 1000")
	if rows[0][0].(int64) != 0 || rows[0][1] != nil || rows[0][2] != nil {
		t.Fatalf("empty aggregates = %v", rows[0])
	}
}

func TestUpdate(t *testing.T) {
	db := nodesDB(t)
	for i := int64(1); i <= 5; i++ {
		mustExec(t, db, "INSERT INTO nodes VALUES (?, ?, 0, NULL)", i, i)
	}
	n := mustExec(t, db, "UPDATE nodes SET parent = ? WHERE pre >= 3", int64(99))
	if n != 3 {
		t.Fatalf("UPDATE affected %d rows, want 3", n)
	}
	rows := mustQuery(t, db, "SELECT COUNT(*) FROM nodes WHERE parent = 99")
	if rows[0][0].(int64) != 3 {
		t.Fatalf("parent index not updated: %v", rows[0][0])
	}
	// Index on old value must no longer match.
	rows = mustQuery(t, db, "SELECT COUNT(*) FROM nodes WHERE parent = 0")
	if rows[0][0].(int64) != 2 {
		t.Fatalf("old parent count = %v", rows[0][0])
	}
}

func TestUpdateUniqueViolation(t *testing.T) {
	db := nodesDB(t)
	mustExec(t, db, "INSERT INTO nodes VALUES (1, 1, 0, NULL), (2, 2, 0, NULL)")
	if _, err := db.Exec("UPDATE nodes SET pre = 1 WHERE pre = 2"); err == nil {
		t.Fatal("unique violation in UPDATE accepted")
	}
	// Self-assignment is fine.
	mustExec(t, db, "UPDATE nodes SET pre = 2 WHERE pre = 2")
}

func TestDelete(t *testing.T) {
	db := nodesDB(t)
	for i := int64(1); i <= 10; i++ {
		mustExec(t, db, "INSERT INTO nodes VALUES (?, ?, ?, NULL)", i, i, i%3)
	}
	n := mustExec(t, db, "DELETE FROM nodes WHERE parent = 1")
	if n != 4 { // pre 1,4,7,10
		t.Fatalf("DELETE affected %d, want 4", n)
	}
	rows := mustQuery(t, db, "SELECT COUNT(*) FROM nodes")
	if rows[0][0].(int64) != 6 {
		t.Fatalf("COUNT after delete = %v", rows[0][0])
	}
	// Deleted keys must be reusable (index entries gone).
	mustExec(t, db, "INSERT INTO nodes VALUES (1, 1, 5, NULL)")
}

func TestDropTable(t *testing.T) {
	db := nodesDB(t)
	mustExec(t, db, "DROP TABLE nodes")
	if _, err := db.Exec("INSERT INTO nodes VALUES (1,1,0,NULL)"); err == nil {
		t.Fatal("insert into dropped table succeeded")
	}
	if _, err := db.Exec("DROP TABLE nodes"); err == nil {
		t.Fatal("double drop succeeded")
	}
}

func TestIsNull(t *testing.T) {
	db := nodesDB(t)
	mustExec(t, db, "INSERT INTO nodes VALUES (1, 1, 0, NULL), (2, 2, 0, ?)", []byte{1})
	rows := mustQuery(t, db, "SELECT pre FROM nodes WHERE poly IS NULL")
	if len(rows) != 1 || rows[0][0].(int64) != 1 {
		t.Fatalf("IS NULL = %v", rows)
	}
	rows = mustQuery(t, db, "SELECT pre FROM nodes WHERE poly IS NOT NULL")
	if len(rows) != 1 || rows[0][0].(int64) != 2 {
		t.Fatalf("IS NOT NULL = %v", rows)
	}
}

func TestStringsAndEscapes(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE kv (k TEXT, v TEXT)")
	mustExec(t, db, "INSERT INTO kv VALUES ('it''s', 'fine')")
	rows := mustQuery(t, db, "SELECT v FROM kv WHERE k = 'it''s'")
	if len(rows) != 1 || rows[0][0].(string) != "fine" {
		t.Fatalf("string round-trip = %v", rows)
	}
}

func TestParseErrors(t *testing.T) {
	db := NewDB()
	bad := []string{
		"",
		"SELEC pre FROM nodes",
		"SELECT FROM nodes",
		"CREATE TABLE t (x FANCYTYPE)",
		"INSERT INTO t VALUES",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t WHERE x ~ 3",
		"SELECT * FROM t LIMIT x",
		"SELECT * FROM t; SELECT * FROM t",
		"SELECT MAX(*) FROM t",
		"CREATE TABLE t (x INT) garbage",
	}
	for _, q := range bad {
		if _, _, err := db.Query(q); err == nil {
			if _, err2 := db.Exec(q); err2 == nil {
				t.Errorf("statement %q accepted", q)
			}
		}
	}
}

func TestSemanticErrors(t *testing.T) {
	db := nodesDB(t)
	cases := []string{
		"SELECT nope FROM nodes",
		"SELECT pre FROM missing",
		"SELECT pre FROM nodes WHERE ghost = 1",
		"SELECT pre FROM nodes ORDER BY ghost",
		"SELECT pre, COUNT(*) FROM nodes",
		"CREATE INDEX idx_poly ON nodes (poly)", // non-integer column
		"CREATE INDEX idx_post ON nodes (post)", // duplicate index name
		"CREATE TABLE nodes (pre INT)",          // duplicate table
	}
	for _, q := range cases {
		_, _, qerr := db.Query(q)
		_, xerr := db.Exec(q)
		if qerr == nil && xerr == nil {
			t.Errorf("statement %q accepted", q)
		}
	}
	if _, err := db.Exec("INSERT INTO nodes VALUES (1,2)"); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := db.Exec("INSERT INTO nodes VALUES (?,?,?,?)"); err == nil {
		t.Error("missing args accepted")
	}
}

func TestCreateTableRejectsTextPrimaryKey(t *testing.T) {
	db := NewDB()
	if _, err := db.Exec("CREATE TABLE t (k TEXT PRIMARY KEY)"); err == nil {
		t.Fatal("TEXT primary key accepted")
	}
}

func TestDumpLoadRoundTrip(t *testing.T) {
	db := nodesDB(t)
	for i := int64(1); i <= 50; i++ {
		mustExec(t, db, "INSERT INTO nodes VALUES (?, ?, ?, ?)", i, 100-i, i/2, []byte{byte(i)})
	}
	mustExec(t, db, "DELETE FROM nodes WHERE pre = 25") // tombstone must not dump
	var buf bytes.Buffer
	if err := db.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	db2 := NewDB()
	if err := db2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{
		"SELECT COUNT(*) FROM nodes",
		"SELECT COUNT(*) FROM nodes WHERE parent = 10",
		"SELECT MIN(pre) FROM nodes WHERE pre > 30",
	} {
		a := mustQuery(t, db, q)
		b := mustQuery(t, db2, q)
		if a[0][0] != b[0][0] {
			t.Errorf("%s: %v != %v after round-trip", q, a[0][0], b[0][0])
		}
	}
	// Indexes must work for point lookups after load.
	rows := mustQuery(t, db2, "SELECT poly FROM nodes WHERE pre = 7")
	if len(rows) != 1 || !bytes.Equal(rows[0][0].([]byte), []byte{7}) {
		t.Fatalf("poly after load = %v", rows)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	db := NewDB()
	if err := db.Load(strings.NewReader("not a dump")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestRegistry(t *testing.T) {
	name := FreshDSN()
	a, b := Get(name), Get(name)
	if a != b {
		t.Fatal("registry returned different DBs for same name")
	}
	Drop(name)
	c := Get(name)
	if c == a {
		t.Fatal("Drop did not clear registry entry")
	}
	if FreshDSN() == FreshDSN() {
		t.Fatal("FreshDSN repeated")
	}
}

// TestPlannerUsesIndex verifies index selection indirectly: a point query
// on a huge table must not take O(n) comparisons. We time-box by checking
// plan structure instead.
func TestPlannerChoosesIndex(t *testing.T) {
	db := nodesDB(t)
	tbl, err := db.table("nodes")
	if err != nil {
		t.Fatal(err)
	}
	s, _, err := parse("SELECT pre FROM nodes WHERE parent = ? AND post > ?")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := tbl.plan(s.(*selectStmt).where, []Value{int64(5), int64(2)})
	if err != nil {
		t.Fatal(err)
	}
	if plan.idx == nil {
		t.Fatal("planner chose full scan despite indexed equality")
	}
	if got := tbl.cols[plan.idx.col].Name; got != "parent" {
		t.Fatalf("planner chose index on %q, want parent (equality beats range)", got)
	}
	if plan.lo != 5 || plan.hi != 5 {
		t.Fatalf("plan bounds = [%d,%d]", plan.lo, plan.hi)
	}
	if len(plan.residual) != 1 {
		t.Fatalf("residual = %v", plan.residual)
	}
}

func TestPlannerContradictoryBounds(t *testing.T) {
	db := nodesDB(t)
	mustExec(t, db, "INSERT INTO nodes VALUES (1,1,0,NULL)")
	rows := mustQuery(t, db, "SELECT pre FROM nodes WHERE pre > 5 AND pre < 3")
	if len(rows) != 0 {
		t.Fatalf("contradictory range returned %v", rows)
	}
}

func TestNeverMatchingNullComparison(t *testing.T) {
	db := nodesDB(t)
	mustExec(t, db, "INSERT INTO nodes VALUES (1,1,0,NULL)")
	// poly = NULL never matches (SQL three-valued logic); use IS NULL.
	rows := mustQuery(t, db, "SELECT pre FROM nodes WHERE poly = ?", nil)
	if len(rows) != 0 {
		t.Fatalf("NULL equality matched %v", rows)
	}
}

func TestFloatColumn(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE m (id INT, v DOUBLE)")
	mustExec(t, db, "INSERT INTO m VALUES (1, 1.5), (2, -2.25), (3, 7)")
	rows := mustQuery(t, db, "SELECT SUM(v) FROM m")
	if got := rows[0][0].(float64); got != 6.25 {
		t.Fatalf("SUM(v) = %v", got)
	}
	rows = mustQuery(t, db, "SELECT id FROM m WHERE v < 0")
	if len(rows) != 1 || rows[0][0].(int64) != 2 {
		t.Fatalf("float filter = %v", rows)
	}
}
