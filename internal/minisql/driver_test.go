package minisql

import (
	"bytes"
	"context"
	"database/sql"
	"sync"
	"testing"
)

func openSQL(t *testing.T) *sql.DB {
	t.Helper()
	dsn := FreshDSN()
	db, err := sql.Open(DriverName, dsn)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		db.Close()
		Drop(dsn)
	})
	return db
}

func TestDriverEndToEnd(t *testing.T) {
	db := openSQL(t)
	if _, err := db.Exec(`CREATE TABLE nodes (
		pre BIGINT PRIMARY KEY, post BIGINT NOT NULL,
		parent BIGINT NOT NULL, poly BLOB)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("CREATE INDEX idx_parent ON nodes (parent)"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec("INSERT INTO nodes VALUES (?, ?, ?, ?)", int64(1), int64(3), int64(0), []byte{9, 9})
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.RowsAffected(); n != 1 {
		t.Fatalf("RowsAffected = %d", n)
	}
	if _, err := db.Exec("INSERT INTO nodes VALUES (2, 1, 1, ?), (3, 2, 1, ?)", []byte{1}, []byte{2}); err != nil {
		t.Fatal(err)
	}

	rows, err := db.Query("SELECT pre, poly FROM nodes WHERE parent = ? ORDER BY pre", int64(1))
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var got []int64
	for rows.Next() {
		var pre int64
		var poly []byte
		if err := rows.Scan(&pre, &poly); err != nil {
			t.Fatal(err)
		}
		got = append(got, pre)
		if len(poly) != 1 {
			t.Fatalf("poly = %v", poly)
		}
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("children = %v", got)
	}

	var count int64
	if err := db.QueryRow("SELECT COUNT(*) FROM nodes").Scan(&count); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("count = %d", count)
	}
}

func TestDriverPreparedStatements(t *testing.T) {
	db := openSQL(t)
	if _, err := db.Exec("CREATE TABLE t (a BIGINT PRIMARY KEY, b BLOB)"); err != nil {
		t.Fatal(err)
	}
	ins, err := db.Prepare("INSERT INTO t VALUES (?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	defer ins.Close()
	for i := int64(0); i < 100; i++ {
		if _, err := ins.Exec(i, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	get, err := db.Prepare("SELECT b FROM t WHERE a = ?")
	if err != nil {
		t.Fatal(err)
	}
	defer get.Close()
	for i := int64(0); i < 100; i += 7 {
		var b []byte
		if err := get.QueryRow(i).Scan(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b, []byte{byte(i)}) {
			t.Fatalf("row %d: b = %v", i, b)
		}
	}
}

func TestDriverPrepareSyntaxError(t *testing.T) {
	db := openSQL(t)
	if _, err := db.Prepare("SELEKT 1"); err == nil {
		t.Fatal("Prepare accepted bad SQL")
	}
}

func TestDriverSharedDSN(t *testing.T) {
	dsn := FreshDSN()
	defer Drop(dsn)
	a, err := sql.Open(DriverName, dsn)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := sql.Open(DriverName, dsn)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if _, err := a.Exec("CREATE TABLE shared (x BIGINT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Exec("INSERT INTO shared VALUES (42)"); err != nil {
		t.Fatal(err)
	}
	var x int64
	if err := b.QueryRow("SELECT x FROM shared").Scan(&x); err != nil {
		t.Fatal(err)
	}
	if x != 42 {
		t.Fatalf("x = %d", x)
	}
}

func TestDriverEmptyDSNRejected(t *testing.T) {
	db, err := sql.Open(DriverName, "")
	if err != nil {
		t.Fatal(err) // sql.Open defers connection establishment
	}
	defer db.Close()
	if err := db.Ping(); err == nil {
		t.Fatal("empty DSN accepted")
	}
}

func TestDriverConcurrentReaders(t *testing.T) {
	db := openSQL(t)
	if _, err := db.Exec("CREATE TABLE t (a BIGINT PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 1000; i++ {
		if _, err := db.Exec("INSERT INTO t VALUES (?)", i); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var n int64
				err := db.QueryRow("SELECT COUNT(*) FROM t WHERE a >= ?", int64(g*10)).Scan(&n)
				if err != nil {
					errs <- err
					return
				}
				if n != int64(1000-g*10) {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestDriverContextCancelled(t *testing.T) {
	db := openSQL(t)
	if _, err := db.Exec("CREATE TABLE t (a BIGINT)"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.QueryContext(ctx, "SELECT a FROM t"); err == nil {
		t.Fatal("cancelled context accepted")
	}
}

func BenchmarkDriverInsert(b *testing.B) {
	dsn := FreshDSN()
	defer Drop(dsn)
	db, err := sql.Open(DriverName, dsn)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec("CREATE TABLE t (a BIGINT PRIMARY KEY, b BLOB)"); err != nil {
		b.Fatal(err)
	}
	ins, err := db.Prepare("INSERT INTO t VALUES (?, ?)")
	if err != nil {
		b.Fatal(err)
	}
	blob := make([]byte, 66) // one F_83 polynomial
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ins.Exec(int64(i), blob); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDriverPointQuery(b *testing.B) {
	dsn := FreshDSN()
	defer Drop(dsn)
	db, err := sql.Open(DriverName, dsn)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec("CREATE TABLE t (a BIGINT PRIMARY KEY, b BLOB)"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		if _, err := db.Exec("INSERT INTO t VALUES (?, ?)", int64(i), []byte{1}); err != nil {
			b.Fatal(err)
		}
	}
	get, err := db.Prepare("SELECT b FROM t WHERE a = ?")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var blob []byte
		if err := get.QueryRow(int64(i % 10000)).Scan(&blob); err != nil {
			b.Fatal(err)
		}
	}
}
