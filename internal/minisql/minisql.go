// Package minisql is a small embedded relational engine with a SQL subset,
// B-tree secondary indexes and a database/sql driver. It is the repo's
// stand-in for the MySQL back-end of the paper's prototype (§5.1): the
// prototype stores one row (pre, post, parent, poly) per XML node, indexes
// pre, post and parent with B-trees, and only ever issues point lookups,
// range scans and simple aggregates — exactly the subset implemented here.
//
// # Supported SQL
//
//	CREATE TABLE t (col TYPE [PRIMARY KEY] [NOT NULL], ...)
//	CREATE [UNIQUE] INDEX idx ON t (col)        -- integer columns only
//	DROP TABLE t
//	INSERT INTO t [(cols)] VALUES (v, ...)[, (v, ...)]...
//	SELECT cols | * | AGG(col) FROM t [WHERE conj] [ORDER BY col [ASC|DESC]]
//	       [LIMIT n [OFFSET m]]
//	UPDATE t SET col = v, ... [WHERE conj]
//	DELETE FROM t [WHERE conj]
//
// WHERE clauses are conjunctions (AND) of simple predicates:
// col op value (=, !=, <>, <, <=, >, >=), col BETWEEN a AND b,
// col IS [NOT] NULL. Values are literals or ? placeholders. Aggregates:
// COUNT(*), COUNT(col), MIN(col), MAX(col), SUM(col).
//
// Types: INT/INTEGER/BIGINT (int64), DOUBLE/FLOAT/REAL (float64),
// TEXT/VARCHAR (string), BLOB ([]byte).
//
// The engine is process-internal and in-memory, with gob-based Dump/Load
// persistence used by the CLI tools. A single RWMutex per database
// serializes writers; readers materialize result sets under the read lock.
package minisql

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"encshare/internal/btree"
)

// Value is a cell value: int64, float64, string, []byte or nil.
type Value any

// ColType enumerates storable column types.
type ColType int

const (
	TInt ColType = iota
	TFloat
	TText
	TBlob
)

func (t ColType) String() string {
	switch t {
	case TInt:
		return "BIGINT"
	case TFloat:
		return "DOUBLE"
	case TText:
		return "TEXT"
	case TBlob:
		return "BLOB"
	}
	return "?"
}

// Column describes one table column.
type Column struct {
	Name       string
	Type       ColType
	PrimaryKey bool
	NotNull    bool
}

// index is a secondary (or primary) index over one integer column.
type index struct {
	name   string
	col    int // column ordinal
	unique bool
	tree   btree.Tree
}

// Table holds rows as dense slices; deleted rows become nil tombstones.
type Table struct {
	name    string
	cols    []Column
	colIdx  map[string]int
	rows    [][]Value
	live    int
	indexes []*index
}

// DB is one named database: a set of tables guarded by a RWMutex.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewDB creates an empty database.
func NewDB() *DB {
	return &DB{tables: map[string]*Table{}}
}

// global registry backing the database/sql driver: one *DB per DSN.
var (
	registryMu sync.Mutex
	registry   = map[string]*DB{}
	anonSeq    int
)

// Get returns the database registered under name, creating it on demand.
func Get(name string) *DB {
	registryMu.Lock()
	defer registryMu.Unlock()
	db, ok := registry[name]
	if !ok {
		db = NewDB()
		registry[name] = db
	}
	return db
}

// dropHooks run on every Drop, after the registry entry is removed.
// Packages that register other per-DSN state under the same names (the
// store's v2 page engine) hook in here so one Drop call releases a DSN's
// memory no matter which engine backs it.
var (
	dropHooksMu sync.Mutex
	dropHooks   []func(name string)
)

// OnDrop registers a hook invoked by every Drop with the dropped name.
// Hooks must not call back into the registry.
func OnDrop(fn func(name string)) {
	dropHooksMu.Lock()
	defer dropHooksMu.Unlock()
	dropHooks = append(dropHooks, fn)
}

// Drop removes a database from the registry, releasing its memory once
// all handles are gone.
func Drop(name string) {
	registryMu.Lock()
	delete(registry, name)
	registryMu.Unlock()
	dropHooksMu.Lock()
	hooks := dropHooks
	dropHooksMu.Unlock()
	for _, fn := range hooks {
		fn(name)
	}
}

// FreshDSN returns a unique DSN for a private in-memory database, handy
// for tests and parallel benchmarks.
func FreshDSN() string {
	registryMu.Lock()
	defer registryMu.Unlock()
	anonSeq++
	return fmt.Sprintf("anon-%d", anonSeq)
}

func (db *DB) table(name string) (*Table, error) {
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("minisql: no such table %q", name)
	}
	return t, nil
}

// Tables returns the table names, sorted.
func (db *DB) Tables() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func (t *Table) column(name string) (int, error) {
	i, ok := t.colIdx[strings.ToLower(name)]
	if !ok {
		return 0, fmt.Errorf("minisql: no column %q in table %q", name, t.name)
	}
	return i, nil
}

// coerce validates/converts v for storage in a column of type ct.
func coerce(v Value, ct ColType) (Value, error) {
	if v == nil {
		return nil, nil
	}
	switch ct {
	case TInt:
		switch x := v.(type) {
		case int64:
			return x, nil
		case int:
			return int64(x), nil
		case int32:
			return int64(x), nil
		case uint64:
			return int64(x), nil
		case float64:
			if x == float64(int64(x)) {
				return int64(x), nil
			}
		}
	case TFloat:
		switch x := v.(type) {
		case float64:
			return x, nil
		case int64:
			return float64(x), nil
		case int:
			return float64(x), nil
		}
	case TText:
		switch x := v.(type) {
		case string:
			return x, nil
		case []byte:
			return string(x), nil
		}
	case TBlob:
		switch x := v.(type) {
		case []byte:
			// Copy: callers may reuse their buffer.
			return append([]byte(nil), x...), nil
		case string:
			return []byte(x), nil
		}
	}
	return nil, fmt.Errorf("minisql: cannot store %T in %s column", v, ct)
}

// compareValues orders two non-nil values of compatible type. nil sorts
// before everything (SQL-ish, adequate for ORDER BY).
func compareValues(a, b Value) int {
	if a == nil || b == nil {
		switch {
		case a == nil && b == nil:
			return 0
		case a == nil:
			return -1
		default:
			return 1
		}
	}
	switch x := a.(type) {
	case int64:
		switch y := b.(type) {
		case int64:
			switch {
			case x < y:
				return -1
			case x > y:
				return 1
			}
			return 0
		case float64:
			return compareFloat(float64(x), y)
		}
	case float64:
		switch y := b.(type) {
		case float64:
			return compareFloat(x, y)
		case int64:
			return compareFloat(x, float64(y))
		}
	case string:
		if y, ok := b.(string); ok {
			return strings.Compare(x, y)
		}
	case []byte:
		if y, ok := b.([]byte); ok {
			return strings.Compare(string(x), string(y))
		}
	}
	// Incomparable types: order by type name for determinism.
	return strings.Compare(fmt.Sprintf("%T", a), fmt.Sprintf("%T", b))
}

func compareFloat(x, y float64) int {
	switch {
	case x < y:
		return -1
	case x > y:
		return 1
	}
	return 0
}
