package minisql

import (
	"fmt"
	"strings"
)

// ---- AST ----

type stmt interface{ stmtNode() }

type createTableStmt struct {
	table string
	cols  []Column
}

type createIndexStmt struct {
	name   string
	table  string
	col    string
	unique bool
}

type dropTableStmt struct{ table string }

type insertStmt struct {
	table string
	cols  []string // empty = all columns in order
	rows  [][]expr
}

type selectStmt struct {
	table   string
	items   []selectItem
	where   []pred
	orderBy string // column name, empty if none
	desc    bool
	limit   int64 // -1 if absent
	offset  int64
}

type selectItem struct {
	star bool   // SELECT *
	agg  string // "", "count", "min", "max", "sum"; count with col=="" is COUNT(*)
	col  string
}

type updateStmt struct {
	table string
	sets  []struct {
		col string
		val expr
	}
	where []pred
}

type deleteStmt struct {
	table string
	where []pred
}

func (*createTableStmt) stmtNode() {}
func (*createIndexStmt) stmtNode() {}
func (*dropTableStmt) stmtNode()   {}
func (*insertStmt) stmtNode()      {}
func (*selectStmt) stmtNode()      {}
func (*updateStmt) stmtNode()      {}
func (*deleteStmt) stmtNode()      {}

// expr is a literal value or a ? placeholder (ordinal assigned in lexical
// order across the whole statement).
type expr struct {
	isParam bool
	ordinal int
	val     Value
}

// pred is one conjunct of a WHERE clause.
type predOp int

const (
	opEq predOp = iota
	opNe
	opLt
	opLe
	opGt
	opGe
	opBetween
	opIsNull
	opIsNotNull
)

type pred struct {
	col  string
	op   predOp
	a, b expr // b only for BETWEEN
}

// ---- parser ----

type parser struct {
	toks   []token
	pos    int
	params int
}

func parse(src string) (stmt, int, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, 0, err
	}
	p := &parser{toks: toks}
	s, err := p.parseStmt()
	if err != nil {
		return nil, 0, err
	}
	// allow one optional trailing semicolon
	p.acceptPunct(";")
	if !p.atEOF() {
		return nil, 0, fmt.Errorf("minisql: trailing input at %d", p.cur().pos)
	}
	return s, p.params, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) atEOF() bool { return p.cur().kind == tkEOF }

func (p *parser) acceptKeyword(kw string) bool {
	if p.cur().kind == tkIdent && p.cur().text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return fmt.Errorf("minisql: expected %s at %d", strings.ToUpper(kw), p.cur().pos)
	}
	return nil
}

func (p *parser) acceptPunct(s string) bool {
	if p.cur().kind == tkPunct && p.cur().text == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return fmt.Errorf("minisql: expected %q at %d", s, p.cur().pos)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	if p.cur().kind != tkIdent {
		return "", fmt.Errorf("minisql: expected identifier at %d", p.cur().pos)
	}
	s := p.cur().text
	p.pos++
	return s, nil
}

var keywords = map[string]bool{
	"select": true, "from": true, "where": true, "and": true, "order": true,
	"by": true, "limit": true, "offset": true, "insert": true, "into": true,
	"values": true, "update": true, "set": true, "delete": true,
	"create": true, "table": true, "index": true, "unique": true, "on": true,
	"drop": true, "between": true, "is": true, "not": true, "null": true,
	"asc": true, "desc": true, "primary": true, "key": true, "count": true,
	"min": true, "max": true, "sum": true,
}

func (p *parser) parseStmt() (stmt, error) {
	switch {
	case p.acceptKeyword("create"):
		if p.acceptKeyword("table") {
			return p.parseCreateTable()
		}
		unique := p.acceptKeyword("unique")
		if p.acceptKeyword("index") {
			return p.parseCreateIndex(unique)
		}
		return nil, fmt.Errorf("minisql: expected TABLE or INDEX after CREATE")
	case p.acceptKeyword("drop"):
		if err := p.expectKeyword("table"); err != nil {
			return nil, err
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &dropTableStmt{table: name}, nil
	case p.acceptKeyword("insert"):
		return p.parseInsert()
	case p.acceptKeyword("select"):
		return p.parseSelect()
	case p.acceptKeyword("update"):
		return p.parseUpdate()
	case p.acceptKeyword("delete"):
		return p.parseDelete()
	}
	return nil, fmt.Errorf("minisql: unrecognized statement at %d", p.cur().pos)
}

func parseColType(name string) (ColType, bool) {
	switch name {
	case "int", "integer", "bigint", "smallint", "tinyint":
		return TInt, true
	case "double", "float", "real":
		return TFloat, true
	case "text", "varchar", "char":
		return TText, true
	case "blob", "binary", "varbinary", "longblob", "mediumblob":
		return TBlob, true
	}
	return 0, false
}

func (p *parser) parseCreateTable() (stmt, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var cols []Column
	for {
		colName, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		typeName, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		ct, ok := parseColType(typeName)
		if !ok {
			return nil, fmt.Errorf("minisql: unknown column type %q", typeName)
		}
		// optional (n) length suffix, ignored
		if p.acceptPunct("(") {
			if p.cur().kind != tkNumber {
				return nil, fmt.Errorf("minisql: expected length at %d", p.cur().pos)
			}
			p.pos++
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
		}
		col := Column{Name: colName, Type: ct}
		for {
			if p.acceptKeyword("primary") {
				if err := p.expectKeyword("key"); err != nil {
					return nil, err
				}
				col.PrimaryKey = true
				col.NotNull = true
				continue
			}
			if p.acceptKeyword("not") {
				if err := p.expectKeyword("null"); err != nil {
					return nil, err
				}
				col.NotNull = true
				continue
			}
			break
		}
		cols = append(cols, col)
		if p.acceptPunct(",") {
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return &createTableStmt{table: name, cols: cols}, nil
}

func (p *parser) parseCreateIndex(unique bool) (stmt, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("on"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	col, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	// optional "USING BTREE" (the only kind we have)
	if p.acceptKeyword("using") {
		if _, err := p.expectIdent(); err != nil {
			return nil, err
		}
	}
	return &createIndexStmt{name: name, table: table, col: col, unique: unique}, nil
}

func (p *parser) parseExpr() (expr, error) {
	t := p.cur()
	switch t.kind {
	case tkParam:
		p.pos++
		e := expr{isParam: true, ordinal: p.params}
		p.params++
		return e, nil
	case tkNumber:
		p.pos++
		if t.isInt {
			return expr{val: t.ival}, nil
		}
		return expr{val: t.num}, nil
	case tkString:
		p.pos++
		return expr{val: t.text}, nil
	case tkIdent:
		if t.text == "null" {
			p.pos++
			return expr{val: nil}, nil
		}
	}
	return expr{}, fmt.Errorf("minisql: expected value at %d", t.pos)
}

func (p *parser) parseInsert() (stmt, error) {
	if err := p.expectKeyword("into"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	s := &insertStmt{table: table}
	if p.acceptPunct("(") {
		for {
			c, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			s.cols = append(s.cols, c)
			if p.acceptPunct(",") {
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("values"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var row []expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.acceptPunct(",") {
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		s.rows = append(s.rows, row)
		if p.acceptPunct(",") {
			continue
		}
		break
	}
	return s, nil
}

func (p *parser) parseSelectItem() (selectItem, error) {
	if p.acceptPunct("*") {
		return selectItem{star: true}, nil
	}
	t := p.cur()
	if t.kind != tkIdent {
		return selectItem{}, fmt.Errorf("minisql: expected column at %d", t.pos)
	}
	switch t.text {
	case "count", "min", "max", "sum":
		agg := t.text
		p.pos++
		if err := p.expectPunct("("); err != nil {
			return selectItem{}, err
		}
		if p.acceptPunct("*") {
			if agg != "count" {
				return selectItem{}, fmt.Errorf("minisql: %s(*) not supported", strings.ToUpper(agg))
			}
			if err := p.expectPunct(")"); err != nil {
				return selectItem{}, err
			}
			return selectItem{agg: "count"}, nil
		}
		col, err := p.expectIdent()
		if err != nil {
			return selectItem{}, err
		}
		if err := p.expectPunct(")"); err != nil {
			return selectItem{}, err
		}
		return selectItem{agg: agg, col: col}, nil
	}
	col, _ := p.expectIdent()
	return selectItem{col: col}, nil
}

func (p *parser) parseWhere() ([]pred, error) {
	if !p.acceptKeyword("where") {
		return nil, nil
	}
	var preds []pred
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		var pr pred
		pr.col = col
		t := p.cur()
		switch {
		case t.kind == tkPunct:
			switch t.text {
			case "=":
				pr.op = opEq
			case "!=":
				pr.op = opNe
			case "<":
				pr.op = opLt
			case "<=":
				pr.op = opLe
			case ">":
				pr.op = opGt
			case ">=":
				pr.op = opGe
			default:
				return nil, fmt.Errorf("minisql: bad operator %q at %d", t.text, t.pos)
			}
			p.pos++
			pr.a, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		case t.kind == tkIdent && t.text == "between":
			p.pos++
			pr.op = opBetween
			pr.a, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("and"); err != nil {
				return nil, err
			}
			pr.b, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		case t.kind == tkIdent && t.text == "is":
			p.pos++
			if p.acceptKeyword("not") {
				pr.op = opIsNotNull
			} else {
				pr.op = opIsNull
			}
			if err := p.expectKeyword("null"); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("minisql: expected operator at %d", t.pos)
		}
		preds = append(preds, pr)
		if p.acceptKeyword("and") {
			continue
		}
		break
	}
	return preds, nil
}

func (p *parser) parseSelect() (stmt, error) {
	s := &selectStmt{limit: -1}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		s.items = append(s.items, item)
		if p.acceptPunct(",") {
			continue
		}
		break
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	s.table = table
	if s.where, err = p.parseWhere(); err != nil {
		return nil, err
	}
	if p.acceptKeyword("order") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		if s.orderBy, err = p.expectIdent(); err != nil {
			return nil, err
		}
		if p.acceptKeyword("desc") {
			s.desc = true
		} else {
			p.acceptKeyword("asc")
		}
	}
	if p.acceptKeyword("limit") {
		t := p.cur()
		if t.kind != tkNumber || !t.isInt {
			return nil, fmt.Errorf("minisql: LIMIT needs integer at %d", t.pos)
		}
		s.limit = t.ival
		p.pos++
		if p.acceptKeyword("offset") {
			t := p.cur()
			if t.kind != tkNumber || !t.isInt {
				return nil, fmt.Errorf("minisql: OFFSET needs integer at %d", t.pos)
			}
			s.offset = t.ival
			p.pos++
		}
	}
	return s, nil
}

func (p *parser) parseUpdate() (stmt, error) {
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("set"); err != nil {
		return nil, err
	}
	s := &updateStmt{table: table}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.sets = append(s.sets, struct {
			col string
			val expr
		}{col, val})
		if p.acceptPunct(",") {
			continue
		}
		break
	}
	if s.where, err = p.parseWhere(); err != nil {
		return nil, err
	}
	return s, nil
}

func (p *parser) parseDelete() (stmt, error) {
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	s := &deleteStmt{table: table}
	var err2 error
	if s.where, err2 = p.parseWhere(); err2 != nil {
		return nil, err2
	}
	return s, nil
}
