package minisql

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"encshare/internal/btree"
)

// Exec parses and executes a non-SELECT statement, returning the number of
// affected rows.
func (db *DB) Exec(query string, args ...Value) (int64, error) {
	s, nparams, err := parse(query)
	if err != nil {
		return 0, err
	}
	return db.execParsed(s, nparams, args)
}

// execParsed executes an already-parsed non-SELECT statement — the
// driver's prepared-statement path, which parses once at Prepare time
// instead of on every execution.
func (db *DB) execParsed(s stmt, nparams int, args []Value) (int64, error) {
	if nparams != len(args) {
		return 0, fmt.Errorf("minisql: statement has %d parameters, got %d args", nparams, len(args))
	}
	switch st := s.(type) {
	case *createTableStmt:
		return 0, db.execCreateTable(st)
	case *createIndexStmt:
		return 0, db.execCreateIndex(st)
	case *dropTableStmt:
		return 0, db.execDropTable(st)
	case *insertStmt:
		return db.execInsert(st, args)
	case *updateStmt:
		return db.execUpdate(st, args)
	case *deleteStmt:
		return db.execDelete(st, args)
	case *selectStmt:
		return 0, fmt.Errorf("minisql: use Query for SELECT")
	}
	return 0, fmt.Errorf("minisql: unsupported statement %T", s)
}

// Query parses and executes a SELECT, returning column names and all
// result rows (materialized).
func (db *DB) Query(query string, args ...Value) ([]string, [][]Value, error) {
	s, nparams, err := parse(query)
	if err != nil {
		return nil, nil, err
	}
	return db.queryParsed(s, nparams, args)
}

// queryParsed executes an already-parsed SELECT — the driver's
// prepared-statement path.
func (db *DB) queryParsed(s stmt, nparams int, args []Value) ([]string, [][]Value, error) {
	sel, ok := s.(*selectStmt)
	if !ok {
		return nil, nil, fmt.Errorf("minisql: Query requires SELECT")
	}
	if nparams != len(args) {
		return nil, nil, fmt.Errorf("minisql: statement has %d parameters, got %d args", nparams, len(args))
	}
	return db.execSelect(sel, args)
}

func (e expr) resolve(args []Value) Value {
	if e.isParam {
		return args[e.ordinal]
	}
	return e.val
}

// ---- DDL ----

func (db *DB) execCreateTable(st *createTableStmt) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	name := strings.ToLower(st.table)
	if _, exists := db.tables[name]; exists {
		return fmt.Errorf("minisql: table %q already exists", st.table)
	}
	t := &Table{name: name, cols: st.cols, colIdx: map[string]int{}}
	for i, c := range st.cols {
		lc := strings.ToLower(c.Name)
		if _, dup := t.colIdx[lc]; dup {
			return fmt.Errorf("minisql: duplicate column %q", c.Name)
		}
		t.colIdx[lc] = i
		t.cols[i].Name = lc
	}
	for i, c := range t.cols {
		if c.PrimaryKey {
			if c.Type != TInt {
				return fmt.Errorf("minisql: PRIMARY KEY column %q must be an integer type", c.Name)
			}
			t.indexes = append(t.indexes, &index{name: "pk_" + name, col: i, unique: true})
		}
	}
	db.tables[name] = t
	return nil
}

func (db *DB) execCreateIndex(st *createIndexStmt) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.table(st.table)
	if err != nil {
		return err
	}
	ci, err := t.column(st.col)
	if err != nil {
		return err
	}
	if t.cols[ci].Type != TInt {
		return fmt.Errorf("minisql: index %q: only integer columns can be indexed", st.name)
	}
	for _, ix := range t.indexes {
		if ix.name == strings.ToLower(st.name) {
			return fmt.Errorf("minisql: index %q already exists", st.name)
		}
	}
	ix := &index{name: strings.ToLower(st.name), col: ci, unique: st.unique}
	for rowid, row := range t.rows {
		if row == nil || row[ci] == nil {
			continue
		}
		key := row[ci].(int64)
		if st.unique && anyWithKey(&ix.tree, key) {
			return fmt.Errorf("minisql: cannot create unique index %q: duplicate value %d", st.name, key)
		}
		ix.tree.Insert(key, int64(rowid))
	}
	t.indexes = append(t.indexes, ix)
	return nil
}

func anyWithKey(tr *btreeTree, key int64) bool {
	found := false
	tr.AscendRange(key, key, func(btreeEntry) bool {
		found = true
		return false
	})
	return found
}

func (db *DB) execDropTable(st *dropTableStmt) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	name := strings.ToLower(st.table)
	if _, ok := db.tables[name]; !ok {
		return fmt.Errorf("minisql: no such table %q", st.table)
	}
	delete(db.tables, name)
	return nil
}

// ---- DML ----

func (db *DB) execInsert(st *insertStmt, args []Value) (int64, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.table(st.table)
	if err != nil {
		return 0, err
	}
	// Column ordinal list for the VALUES tuples.
	ordinals := make([]int, 0, len(t.cols))
	if len(st.cols) == 0 {
		for i := range t.cols {
			ordinals = append(ordinals, i)
		}
	} else {
		for _, c := range st.cols {
			ci, err := t.column(c)
			if err != nil {
				return 0, err
			}
			ordinals = append(ordinals, ci)
		}
	}
	var inserted int64
	for _, tuple := range st.rows {
		if len(tuple) != len(ordinals) {
			return inserted, fmt.Errorf("minisql: INSERT has %d values for %d columns", len(tuple), len(ordinals))
		}
		row := make([]Value, len(t.cols))
		for k, e := range tuple {
			ci := ordinals[k]
			v, err := coerce(e.resolve(args), t.cols[ci].Type)
			if err != nil {
				return inserted, fmt.Errorf("minisql: column %q: %w", t.cols[ci].Name, err)
			}
			row[ci] = v
		}
		for ci, c := range t.cols {
			if c.NotNull && row[ci] == nil {
				return inserted, fmt.Errorf("minisql: column %q is NOT NULL", c.Name)
			}
		}
		// Unique checks before any mutation.
		for _, ix := range t.indexes {
			if ix.unique && row[ix.col] != nil && anyWithKey(&ix.tree, row[ix.col].(int64)) {
				return inserted, fmt.Errorf("minisql: duplicate key %d for unique index %q", row[ix.col], ix.name)
			}
		}
		rowid := int64(len(t.rows))
		t.rows = append(t.rows, row)
		t.live++
		for _, ix := range t.indexes {
			if row[ix.col] != nil {
				ix.tree.Insert(row[ix.col].(int64), rowid)
			}
		}
		inserted++
	}
	return inserted, nil
}

func (db *DB) execUpdate(st *updateStmt, args []Value) (int64, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.table(st.table)
	if err != nil {
		return 0, err
	}
	sets := make([]struct {
		col int
		val Value
	}, len(st.sets))
	for i, s := range st.sets {
		ci, err := t.column(s.col)
		if err != nil {
			return 0, err
		}
		v, err := coerce(s.val.resolve(args), t.cols[ci].Type)
		if err != nil {
			return 0, fmt.Errorf("minisql: column %q: %w", s.col, err)
		}
		if t.cols[ci].NotNull && v == nil {
			return 0, fmt.Errorf("minisql: column %q is NOT NULL", s.col)
		}
		sets[i].col, sets[i].val = ci, v
	}
	plan, err := t.plan(st.where, args)
	if err != nil {
		return 0, err
	}
	var targets []int64
	plan.scan(t, func(rowid int64, _ []Value) bool {
		targets = append(targets, rowid)
		return true
	})
	for _, rowid := range targets {
		row := t.rows[rowid]
		for _, s := range sets {
			// Unique check against other rows.
			for _, ix := range t.indexes {
				if ix.unique && ix.col == s.col && s.val != nil {
					dup := false
					ix.tree.AscendRange(s.val.(int64), s.val.(int64), func(e btreeEntry) bool {
						if e.Row != rowid {
							dup = true
						}
						return !dup
					})
					if dup {
						return 0, fmt.Errorf("minisql: duplicate key %d for unique index %q", s.val, ix.name)
					}
				}
			}
			old := row[s.col]
			if old == nil && s.val == nil {
				continue
			}
			for _, ix := range t.indexes {
				if ix.col != s.col {
					continue
				}
				if old != nil {
					ix.tree.Delete(old.(int64), rowid)
				}
				if s.val != nil {
					ix.tree.Insert(s.val.(int64), rowid)
				}
			}
			row[s.col] = s.val
		}
	}
	return int64(len(targets)), nil
}

func (db *DB) execDelete(st *deleteStmt, args []Value) (int64, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.table(st.table)
	if err != nil {
		return 0, err
	}
	plan, err := t.plan(st.where, args)
	if err != nil {
		return 0, err
	}
	var targets []int64
	plan.scan(t, func(rowid int64, _ []Value) bool {
		targets = append(targets, rowid)
		return true
	})
	for _, rowid := range targets {
		row := t.rows[rowid]
		for _, ix := range t.indexes {
			if row[ix.col] != nil {
				ix.tree.Delete(row[ix.col].(int64), rowid)
			}
		}
		t.rows[rowid] = nil
		t.live--
	}
	return int64(len(targets)), nil
}

// ---- SELECT ----

func (db *DB) execSelect(st *selectStmt, args []Value) ([]string, [][]Value, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, err := db.table(st.table)
	if err != nil {
		return nil, nil, err
	}
	plan, err := t.plan(st.where, args)
	if err != nil {
		return nil, nil, err
	}

	// Aggregate query? (no mixing of aggregates and plain columns)
	nAgg := 0
	for _, it := range st.items {
		if it.agg != "" {
			nAgg++
		}
	}
	if nAgg > 0 {
		if nAgg != len(st.items) {
			return nil, nil, fmt.Errorf("minisql: cannot mix aggregates and columns")
		}
		return t.execAggregates(st, plan)
	}

	// Projection ordinals and column names.
	var ordinals []int
	var names []string
	for _, it := range st.items {
		if it.star {
			for i, c := range t.cols {
				ordinals = append(ordinals, i)
				names = append(names, c.Name)
			}
			continue
		}
		ci, err := t.column(it.col)
		if err != nil {
			return nil, nil, err
		}
		ordinals = append(ordinals, ci)
		names = append(names, t.cols[ci].Name)
	}

	var orderCol = -1
	if st.orderBy != "" {
		if orderCol, err = t.column(st.orderBy); err != nil {
			return nil, nil, err
		}
	}
	// The index scan already yields ascending order on the index column.
	sorted := orderCol == -1 ||
		(plan.idx != nil && plan.idx.col == orderCol && !st.desc)

	// Fast path: already sorted (or no ordering), apply OFFSET/LIMIT while
	// streaming.
	var out [][]Value
	if sorted {
		skip := st.offset
		plan.scan(t, func(_ int64, row []Value) bool {
			if skip > 0 {
				skip--
				return true
			}
			out = append(out, project(row, ordinals))
			return st.limit < 0 || int64(len(out)) < st.limit
		})
		return names, out, nil
	}

	// General path: materialize matches, sort, then slice.
	type keyed struct {
		key Value
		row []Value
	}
	var all []keyed
	plan.scan(t, func(_ int64, row []Value) bool {
		all = append(all, keyed{row[orderCol], project(row, ordinals)})
		return true
	})
	sort.SliceStable(all, func(i, j int) bool {
		c := compareValues(all[i].key, all[j].key)
		if st.desc {
			return c > 0
		}
		return c < 0
	})
	lo := st.offset
	if lo > int64(len(all)) {
		lo = int64(len(all))
	}
	hi := int64(len(all))
	if st.limit >= 0 && lo+st.limit < hi {
		hi = lo + st.limit
	}
	for _, k := range all[lo:hi] {
		out = append(out, k.row)
	}
	return names, out, nil
}

func project(row []Value, ordinals []int) []Value {
	out := make([]Value, len(ordinals))
	for i, ci := range ordinals {
		out[i] = row[ci]
	}
	return out
}

func (t *Table) execAggregates(st *selectStmt, plan *scanPlan) ([]string, [][]Value, error) {
	type accum struct {
		agg   string
		col   int // -1 for COUNT(*)
		count int64
		sumI  int64
		sumF  float64
		isF   bool
		min   Value
		max   Value
	}
	accums := make([]accum, len(st.items))
	names := make([]string, len(st.items))
	for i, it := range st.items {
		accums[i].agg = it.agg
		accums[i].col = -1
		if it.col != "" {
			ci, err := t.column(it.col)
			if err != nil {
				return nil, nil, err
			}
			accums[i].col = ci
			names[i] = fmt.Sprintf("%s(%s)", it.agg, t.cols[ci].Name)
		} else {
			names[i] = "count(*)"
		}
	}

	// Loose-index-scan optimization: a lone MIN(c) where the plan scans
	// the index on c ascending can stop at the first row passing the
	// residual predicates. This is what makes the store's descendant
	// boundary query O(subtree) instead of O(table).
	minEarlyStop := len(accums) == 1 && accums[0].agg == "min" &&
		plan.idx != nil && plan.idx.col == accums[0].col

	plan.scan(t, func(_ int64, row []Value) bool {
		for i := range accums {
			a := &accums[i]
			var v Value
			if a.col >= 0 {
				v = row[a.col]
				if v == nil {
					continue // SQL aggregates skip NULLs
				}
			}
			switch a.agg {
			case "count":
				a.count++
			case "sum":
				a.count++
				switch x := v.(type) {
				case int64:
					a.sumI += x
				case float64:
					a.isF = true
					a.sumF += x
				default:
					a.isF = true
					a.sumF = math.NaN()
				}
			case "min":
				if a.min == nil || compareValues(v, a.min) < 0 {
					a.min = v
				}
				a.count++
			case "max":
				if a.max == nil || compareValues(v, a.max) > 0 {
					a.max = v
				}
				a.count++
			}
		}
		if minEarlyStop {
			return false
		}
		return true
	})

	row := make([]Value, len(accums))
	for i := range accums {
		a := &accums[i]
		switch a.agg {
		case "count":
			row[i] = a.count
		case "sum":
			if a.count == 0 {
				row[i] = nil
			} else if a.isF {
				row[i] = a.sumF + float64(a.sumI)
			} else {
				row[i] = a.sumI
			}
		case "min":
			row[i] = a.min
		case "max":
			row[i] = a.max
		}
	}
	return names, [][]Value{row}, nil
}

// ---- planner ----

// scanPlan describes how to enumerate candidate rows: over an index key
// range, or a full table scan; residual predicates filter either way.
type scanPlan struct {
	idx      *index
	lo, hi   int64 // inclusive key bounds when idx != nil
	residual []resolvedPred
	empty    bool // provably empty (contradictory bounds)
}

type resolvedPred struct {
	col  int
	op   predOp
	a, b Value
}

// Aliases keep the btree package out of most signatures here.
type (
	btreeEntry = btree.Entry
	btreeTree  = btree.Tree
)

// plan resolves predicate parameters and chooses an index.
func (t *Table) plan(where []pred, args []Value) (*scanPlan, error) {
	resolved := make([]resolvedPred, 0, len(where))
	for _, pr := range where {
		ci, err := t.column(pr.col)
		if err != nil {
			return nil, err
		}
		rp := resolvedPred{col: ci, op: pr.op}
		switch pr.op {
		case opIsNull, opIsNotNull:
		case opBetween:
			if rp.a, err = coerce(pr.a.resolve(args), t.cols[ci].Type); err != nil {
				return nil, err
			}
			if rp.b, err = coerce(pr.b.resolve(args), t.cols[ci].Type); err != nil {
				return nil, err
			}
		default:
			if rp.a, err = coerce(pr.a.resolve(args), t.cols[ci].Type); err != nil {
				return nil, err
			}
		}
		resolved = append(resolved, rp)
	}

	best := &scanPlan{residual: resolved}
	// Try each index: accumulate bounds from predicates on its column.
	type bounds struct {
		lo, hi   int64
		absorbed []int // indices into resolved
		hasEq    bool
		hasAny   bool
	}
	var bestBounds *bounds
	var bestIdx *index
	for _, ix := range t.indexes {
		b := bounds{lo: math.MinInt64, hi: math.MaxInt64}
		for i, rp := range resolved {
			if rp.col != ix.col {
				continue
			}
			iv, ok := rp.a.(int64)
			switch rp.op {
			case opEq:
				if !ok {
					continue
				}
				if iv > b.lo {
					b.lo = iv
				}
				if iv < b.hi {
					b.hi = iv
				}
				b.hasEq, b.hasAny = true, true
				b.absorbed = append(b.absorbed, i)
			case opGt:
				if !ok {
					continue
				}
				if iv+1 > b.lo {
					b.lo = iv + 1
				}
				b.hasAny = true
				b.absorbed = append(b.absorbed, i)
			case opGe:
				if !ok {
					continue
				}
				if iv > b.lo {
					b.lo = iv
				}
				b.hasAny = true
				b.absorbed = append(b.absorbed, i)
			case opLt:
				if !ok {
					continue
				}
				if iv-1 < b.hi {
					b.hi = iv - 1
				}
				b.hasAny = true
				b.absorbed = append(b.absorbed, i)
			case opLe:
				if !ok {
					continue
				}
				if iv < b.hi {
					b.hi = iv
				}
				b.hasAny = true
				b.absorbed = append(b.absorbed, i)
			case opBetween:
				av, aok := rp.a.(int64)
				bv, bok := rp.b.(int64)
				if !aok || !bok {
					continue
				}
				if av > b.lo {
					b.lo = av
				}
				if bv < b.hi {
					b.hi = bv
				}
				b.hasAny = true
				b.absorbed = append(b.absorbed, i)
			}
		}
		if !b.hasAny {
			continue
		}
		// Prefer equality bounds, then any bounded index.
		if bestBounds == nil || (b.hasEq && !bestBounds.hasEq) {
			bb := b
			bestBounds = &bb
			bestIdx = ix
		}
	}
	if bestIdx != nil {
		best.idx = bestIdx
		best.lo, best.hi = bestBounds.lo, bestBounds.hi
		if best.lo > best.hi {
			best.empty = true
		}
		absorbed := map[int]bool{}
		for _, i := range bestBounds.absorbed {
			absorbed[i] = true
		}
		var rest []resolvedPred
		for i, rp := range resolved {
			if !absorbed[i] {
				rest = append(rest, rp)
			}
		}
		best.residual = rest
	}
	return best, nil
}

// scan enumerates matching rows in plan order (index key order for index
// scans; rowid order for full scans), invoking fn until it returns false.
func (p *scanPlan) scan(t *Table, fn func(rowid int64, row []Value) bool) {
	if p.empty {
		return
	}
	match := func(row []Value) bool {
		for _, rp := range p.residual {
			if !rp.eval(row) {
				return false
			}
		}
		return true
	}
	if p.idx != nil {
		p.idx.tree.AscendRange(p.lo, p.hi, func(e btreeEntry) bool {
			row := t.rows[e.Row]
			if row == nil {
				return true
			}
			if !match(row) {
				return true
			}
			return fn(e.Row, row)
		})
		return
	}
	for rowid, row := range t.rows {
		if row == nil || !match(row) {
			continue
		}
		if !fn(int64(rowid), row) {
			return
		}
	}
}

func (rp resolvedPred) eval(row []Value) bool {
	v := row[rp.col]
	switch rp.op {
	case opIsNull:
		return v == nil
	case opIsNotNull:
		return v != nil
	}
	if v == nil || rp.a == nil {
		return false // SQL three-valued logic: NULL comparisons are not true
	}
	switch rp.op {
	case opEq:
		return compareValues(v, rp.a) == 0
	case opNe:
		return compareValues(v, rp.a) != 0
	case opLt:
		return compareValues(v, rp.a) < 0
	case opLe:
		return compareValues(v, rp.a) <= 0
	case opGt:
		return compareValues(v, rp.a) > 0
	case opGe:
		return compareValues(v, rp.a) >= 0
	case opBetween:
		if rp.b == nil {
			return false
		}
		return compareValues(v, rp.a) >= 0 && compareValues(v, rp.b) <= 0
	}
	return false
}

// Stats reports simple table statistics (used by tools and tests).
type Stats struct {
	Rows    int
	Indexes int
}

// TableStats returns statistics for the named table.
func (db *DB) TableStats(name string) (Stats, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, err := db.table(name)
	if err != nil {
		return Stats{}, err
	}
	return Stats{Rows: t.live, Indexes: len(t.indexes)}, nil
}

// Prepared is a statement parsed once and bound to its database — the
// in-process fast path around the database/sql driver machinery for hot
// readers. The node store's navigation queries run here: same engine,
// same locking, but no driver.Value boxing or convertAssign per cell.
type Prepared struct {
	db      *DB
	s       stmt
	nparams int
}

// Prepare parses a statement for repeated direct execution.
func (db *DB) Prepare(query string) (*Prepared, error) {
	s, nparams, err := parse(query)
	if err != nil {
		return nil, err
	}
	return &Prepared{db: db, s: s, nparams: nparams}, nil
}

// Query executes a prepared SELECT, returning column names and all rows.
// Blob cells are returned by reference to the stored row — callers must
// treat them as read-only.
func (p *Prepared) Query(args ...Value) ([]string, [][]Value, error) {
	return p.db.queryParsed(p.s, p.nparams, args)
}

// Exec executes a prepared non-SELECT statement.
func (p *Prepared) Exec(args ...Value) (int64, error) {
	return p.db.execParsed(p.s, p.nparams, args)
}
