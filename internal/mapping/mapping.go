// Package mapping implements the secret tag-name map of the scheme
// (paper §3 step 1 and §5.1): an injective function from tag names (and,
// with the trie enhancement, alphabet characters) to nonzero elements of
// F_q.
//
// The map file is "a property file where each line is of the form
// name = value" and is part of the client's secret key material: without
// it, evaluation points are meaningless. Values must be nonzero because
// reduction mod x^(q-1) − 1 only preserves evaluation at points of F_q^*.
package mapping

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"encshare/internal/gf"
)

// Map is an injective assignment of names to values in F_q^*. Immutable
// after construction; safe for concurrent use.
type Map struct {
	field  *gf.Field
	byName map[string]gf.Elem
	byVal  map[gf.Elem]string
}

// ErrUnknownName is returned (wrapped) when a queried name has no mapping.
type UnknownNameError struct{ Name string }

func (e *UnknownNameError) Error() string {
	return fmt.Sprintf("mapping: unknown name %q", e.Name)
}

// Generate assigns deterministic values 1, 2, 3, ... to the given names in
// the order provided, skipping duplicates. It fails if the distinct names
// do not fit in F_q^* (q − 1 values).
func Generate(f *gf.Field, names []string) (*Map, error) {
	m := &Map{
		field:  f,
		byName: make(map[string]gf.Elem, len(names)),
		byVal:  make(map[gf.Elem]string, len(names)),
	}
	next := gf.Elem(1)
	for _, n := range names {
		if n == "" {
			return nil, fmt.Errorf("mapping: empty name")
		}
		if _, ok := m.byName[n]; ok {
			continue
		}
		if next >= f.Q() {
			return nil, fmt.Errorf("mapping: %d distinct names exceed field capacity q-1 = %d", len(m.byName)+1, f.Q()-1)
		}
		m.byName[n] = next
		m.byVal[next] = n
		next++
	}
	return m, nil
}

// Load parses a map file. Lines are "name = value"; blank lines and lines
// starting with '#' are ignored. Values must be distinct, nonzero and less
// than q.
func Load(f *gf.Field, r io.Reader) (*Map, error) {
	m := &Map{field: f, byName: map[string]gf.Elem{}, byVal: map[gf.Elem]string{}}
	sc := bufio.NewScanner(r)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		eq := strings.Index(line, "=")
		if eq < 0 {
			return nil, fmt.Errorf("mapping: line %d: missing '='", lineno)
		}
		name := strings.TrimSpace(line[:eq])
		valStr := strings.TrimSpace(line[eq+1:])
		if name == "" {
			return nil, fmt.Errorf("mapping: line %d: empty name", lineno)
		}
		v, err := strconv.ParseUint(valStr, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("mapping: line %d: bad value %q: %w", lineno, valStr, err)
		}
		val := gf.Elem(v)
		if val == 0 || val >= f.Q() {
			return nil, fmt.Errorf("mapping: line %d: value %d outside F_%d^*", lineno, val, f.Q())
		}
		if _, dup := m.byName[name]; dup {
			return nil, fmt.Errorf("mapping: line %d: duplicate name %q", lineno, name)
		}
		if prev, dup := m.byVal[val]; dup {
			return nil, fmt.Errorf("mapping: line %d: value %d already assigned to %q", lineno, val, prev)
		}
		m.byName[name] = val
		m.byVal[val] = name
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("mapping: reading map file: %w", err)
	}
	return m, nil
}

// Save writes the map in the property-file format, sorted by name for
// reproducible output.
func (m *Map) Save(w io.Writer) error {
	names := make([]string, 0, len(m.byName))
	for n := range m.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	bw := bufio.NewWriter(w)
	for _, n := range names {
		if _, err := fmt.Fprintf(bw, "%s = %d\n", n, m.byName[n]); err != nil {
			return fmt.Errorf("mapping: writing map file: %w", err)
		}
	}
	return bw.Flush()
}

// Field returns the field the values live in.
func (m *Map) Field() *gf.Field { return m.field }

// Len returns the number of mapped names.
func (m *Map) Len() int { return len(m.byName) }

// Value returns the field value for name.
func (m *Map) Value(name string) (gf.Elem, error) {
	v, ok := m.byName[name]
	if !ok {
		return 0, &UnknownNameError{Name: name}
	}
	return v, nil
}

// Has reports whether name is mapped.
func (m *Map) Has(name string) bool {
	_, ok := m.byName[name]
	return ok
}

// Name returns the name mapped to value v, if any.
func (m *Map) Name(v gf.Elem) (string, bool) {
	n, ok := m.byVal[v]
	return n, ok
}

// Names returns all mapped names, sorted.
func (m *Map) Names() []string {
	out := make([]string, 0, len(m.byName))
	for n := range m.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
