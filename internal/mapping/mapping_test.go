package mapping

import (
	"bytes"
	"strings"
	"testing"

	"encshare/internal/gf"
)

func TestGenerateAssignsSequential(t *testing.T) {
	f := gf.MustNew(5, 1)
	m, err := Generate(f, []string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range []string{"a", "b", "c"} {
		v, err := m.Value(n)
		if err != nil {
			t.Fatal(err)
		}
		if v != gf.Elem(i+1) {
			t.Errorf("Value(%q) = %d, want %d", n, v, i+1)
		}
	}
	if m.Len() != 3 {
		t.Errorf("Len = %d, want 3", m.Len())
	}
}

func TestGenerateDeduplicates(t *testing.T) {
	f := gf.MustNew(5, 1)
	m, err := Generate(f, []string{"a", "b", "a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 2 {
		t.Errorf("Len = %d, want 2", m.Len())
	}
}

func TestGenerateOverflow(t *testing.T) {
	f := gf.MustNew(5, 1) // only 4 nonzero values
	_, err := Generate(f, []string{"a", "b", "c", "d", "e"})
	if err == nil {
		t.Fatal("expected capacity error")
	}
}

func TestGenerateRejectsEmptyName(t *testing.T) {
	if _, err := Generate(gf.MustNew(5, 1), []string{""}); err == nil {
		t.Fatal("empty name accepted")
	}
}

func TestPaperDTDFitsF83(t *testing.T) {
	// The paper chooses p = 83 for the XMark DTD's 77 elements.
	names := make([]string, 77)
	for i := range names {
		names[i] = strings.Repeat("x", i+1)
	}
	if _, err := Generate(gf.MustNew(83, 1), names); err != nil {
		t.Fatalf("77 names should fit in F_83^*: %v", err)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	f := gf.MustNew(83, 1)
	m, err := Generate(f, []string{"site", "regions", "europe", "item"})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(f, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Len() != m.Len() {
		t.Fatalf("round-trip Len %d != %d", m2.Len(), m.Len())
	}
	for _, n := range m.Names() {
		v1, _ := m.Value(n)
		v2, err := m2.Value(n)
		if err != nil || v1 != v2 {
			t.Errorf("round-trip Value(%q): %d vs %d (%v)", n, v1, v2, err)
		}
	}
}

func TestLoadFormat(t *testing.T) {
	f := gf.MustNew(83, 1)
	src := `# comment line
site = 1

regions=2
  europe   =   3
`
	m, err := Load(f, strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	for n, want := range map[string]gf.Elem{"site": 1, "regions": 2, "europe": 3} {
		if v, _ := m.Value(n); v != want {
			t.Errorf("Value(%q) = %d, want %d", n, v, want)
		}
	}
}

func TestLoadErrors(t *testing.T) {
	f := gf.MustNew(5, 1)
	cases := map[string]string{
		"missing equals":  "site 1\n",
		"empty name":      "= 3\n",
		"bad value":       "a = xyz\n",
		"zero value":      "a = 0\n",
		"value too large": "a = 5\n",
		"duplicate name":  "a = 1\na = 2\n",
		"duplicate value": "a = 1\nb = 1\n",
		"negative value":  "a = -1\n",
	}
	for what, src := range cases {
		if _, err := Load(f, strings.NewReader(src)); err == nil {
			t.Errorf("%s: Load accepted %q", what, src)
		}
	}
}

func TestUnknownName(t *testing.T) {
	m, _ := Generate(gf.MustNew(5, 1), []string{"a"})
	_, err := m.Value("nope")
	if err == nil {
		t.Fatal("expected error for unknown name")
	}
	var une *UnknownNameError
	if !errorsAs(err, &une) || une.Name != "nope" {
		t.Fatalf("error %v is not UnknownNameError(nope)", err)
	}
	if m.Has("nope") {
		t.Error("Has(nope) = true")
	}
	if !m.Has("a") {
		t.Error("Has(a) = false")
	}
}

// errorsAs is a tiny local wrapper to avoid importing errors just for one
// assertion site.
func errorsAs(err error, target **UnknownNameError) bool {
	u, ok := err.(*UnknownNameError)
	if ok {
		*target = u
	}
	return ok
}

func TestReverseLookup(t *testing.T) {
	m, _ := Generate(gf.MustNew(5, 1), []string{"a", "b"})
	if n, ok := m.Name(1); !ok || n != "a" {
		t.Errorf("Name(1) = %q,%v", n, ok)
	}
	if _, ok := m.Name(4); ok {
		t.Error("Name(4) found a mapping that should not exist")
	}
}

func TestNamesSorted(t *testing.T) {
	m, _ := Generate(gf.MustNew(83, 1), []string{"zebra", "apple", "mango"})
	names := m.Names()
	want := []string{"apple", "mango", "zebra"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", names, want)
		}
	}
}

func TestInjectivityInvariant(t *testing.T) {
	// Generated maps must be injective with all values nonzero — the
	// precondition for containment exactness.
	names := []string{"q", "w", "e", "r", "t", "y", "u", "i", "o", "p"}
	m, err := Generate(gf.MustNew(29, 1), names)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[gf.Elem]bool{}
	for _, n := range names {
		v, err := m.Value(n)
		if err != nil {
			t.Fatal(err)
		}
		if v == 0 {
			t.Fatalf("Value(%q) = 0", n)
		}
		if seen[v] {
			t.Fatalf("value %d assigned twice", v)
		}
		seen[v] = true
	}
}
