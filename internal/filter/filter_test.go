package filter

import (
	"strings"
	"testing"

	"encshare/internal/encoder"
	"encshare/internal/gf"
	"encshare/internal/mapping"
	"encshare/internal/minisql"
	"encshare/internal/prg"
	"encshare/internal/ring"
	"encshare/internal/rmi"
	"encshare/internal/secshare"
	"encshare/internal/store"
	"encshare/internal/xmldoc"
)

// fixture wires a full pipeline: parse + encode into a store, and build
// both a local and a remote client filter over it.
type fixture struct {
	doc    *xmldoc.Doc
	m      *mapping.Map
	r      *ring.Ring
	scheme *secshare.Scheme
	server *ServerFilter
	local  *Client
	remote *Client
	rmiCli *rmi.Client
}

func newFixture(t testing.TB, xml string) *fixture {
	t.Helper()
	doc, err := xmldoc.ParseString(xml)
	if err != nil {
		t.Fatal(err)
	}
	f := gf.MustNew(83, 1)
	m, err := mapping.Generate(f, doc.Names())
	if err != nil {
		t.Fatal(err)
	}
	r := ring.MustNew(f)
	scheme := secshare.New(r, prg.New([]byte("filter-test")))

	dsn := minisql.FreshDSN()
	st, err := store.Open(dsn)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Init(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		st.Close()
		minisql.Drop(dsn)
	})
	if _, err := encoder.EncodeDoc(doc, encoder.Options{Map: m, Scheme: scheme}, st); err != nil {
		t.Fatal(err)
	}

	server := NewServerFilter(st, r, 256)
	srv := rmi.NewServer()
	RegisterServer(srv, server)
	rmiCli := rmi.Pipe(srv)
	t.Cleanup(func() { rmiCli.Close() })

	return &fixture{
		doc: doc, m: m, r: r, scheme: scheme, server: server,
		local:  NewClient(server, scheme),
		remote: NewClient(NewRemote(rmiCli), scheme),
		rmiCli: rmiCli,
	}
}

const testXML = `<site><regions><europe><item><name/></item><item/></europe><asia/></regions><people><person><name/><city/></person></people></site>`

func (fx *fixture) val(t testing.TB, name string) gf.Elem {
	t.Helper()
	v, err := fx.m.Value(name)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestContainsMatchesTree(t *testing.T) {
	fx := newFixture(t, testXML)
	for _, cli := range []*Client{fx.local, fx.remote} {
		fx.doc.Walk(func(n *xmldoc.Node) bool {
			inSubtree := map[string]bool{}
			var rec func(m *xmldoc.Node)
			rec = func(m *xmldoc.Node) {
				inSubtree[m.Name] = true
				for _, c := range m.Children {
					rec(c)
				}
			}
			rec(n)
			for _, name := range fx.m.Names() {
				got, err := cli.Contains(n.Pre, fx.val(t, name))
				if err != nil {
					t.Fatal(err)
				}
				if got != inSubtree[name] {
					t.Fatalf("Contains(%s, %s) = %v, want %v", n.Path(), name, got, inSubtree[name])
				}
			}
			return true
		})
	}
}

func TestEqualsMatchesTree(t *testing.T) {
	fx := newFixture(t, testXML)
	for _, cli := range []*Client{fx.local, fx.remote} {
		fx.doc.Walk(func(n *xmldoc.Node) bool {
			for _, name := range fx.m.Names() {
				got, err := cli.Equals(n.Pre, fx.val(t, name))
				if err != nil {
					t.Fatal(err)
				}
				if got != (n.Name == name) {
					t.Fatalf("Equals(%s, %s) = %v, want %v", n.Path(), name, got, n.Name == name)
				}
			}
			return true
		})
	}
}

// TestEqualsStricterThanContains: Equals(n, v) implies Contains(n, v).
func TestEqualsImpliesContains(t *testing.T) {
	fx := newFixture(t, testXML)
	fx.doc.Walk(func(n *xmldoc.Node) bool {
		for _, name := range fx.m.Names() {
			eq, err := fx.local.Equals(n.Pre, fx.val(t, name))
			if err != nil {
				t.Fatal(err)
			}
			co, err := fx.local.Contains(n.Pre, fx.val(t, name))
			if err != nil {
				t.Fatal(err)
			}
			if eq && !co {
				t.Fatalf("Equals true but Contains false at %s/%s", n.Path(), name)
			}
		}
		return true
	})
}

func TestNavigationMatchesTree(t *testing.T) {
	fx := newFixture(t, testXML)
	for _, cli := range []*Client{fx.local, fx.remote} {
		root, err := cli.Root()
		if err != nil {
			t.Fatal(err)
		}
		if root.Pre != 1 || root.Parent != 0 {
			t.Fatalf("root = %+v", root)
		}
		kids, err := cli.Children(root.Pre)
		if err != nil {
			t.Fatal(err)
		}
		if len(kids) != len(fx.doc.Root.Children) {
			t.Fatalf("children = %d", len(kids))
		}
		desc, err := cli.Descendants(root.Pre, root.Post)
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(desc)) != fx.doc.Count-1 {
			t.Fatalf("descendants = %d, want %d", len(desc), fx.doc.Count-1)
		}
		n, err := cli.Count()
		if err != nil {
			t.Fatal(err)
		}
		if n != fx.doc.Count {
			t.Fatalf("count = %d", n)
		}
	}
}

func TestCountersTrackWork(t *testing.T) {
	fx := newFixture(t, testXML)
	cli := fx.local
	before := cli.Counters.Snapshot()
	if _, err := cli.Contains(1, fx.val(t, "site")); err != nil {
		t.Fatal(err)
	}
	d := cli.Counters.Snapshot().Sub(before)
	if d.Evaluations != 1 {
		t.Fatalf("Contains counted %d evaluations, want 1", d.Evaluations)
	}
	before = cli.Counters.Snapshot()
	if _, err := cli.Equals(1, fx.val(t, "site")); err != nil {
		t.Fatal(err)
	}
	d = cli.Counters.Snapshot().Sub(before)
	want := int64(1 + len(fx.doc.Root.Children))
	if d.Reconstructions != want {
		t.Fatalf("Equals counted %d reconstructions, want %d", d.Reconstructions, want)
	}
	// Server-side evals tracked separately.
	if fx.server.Evals() == 0 {
		t.Fatal("server evals not counted")
	}
}

func TestWrongSeedBreaksTests(t *testing.T) {
	fx := newFixture(t, testXML)
	wrong := NewClient(fx.server, secshare.New(fx.r, prg.New([]byte("wrong-seed"))))
	// With the wrong seed, Contains(root, map(site)) is overwhelmingly
	// likely false (1/83 chance of an accidental zero).
	got, err := wrong.Contains(1, fx.val(t, "site"))
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Skip("1/83 accidental zero — rerun") // deterministic seed: will not flake
	}
}

func TestRemoteAgainstLocalParity(t *testing.T) {
	fx := newFixture(t, testXML)
	// Every API result must agree between the in-process and RMI paths.
	lr, err1 := fx.local.Root()
	rr, err2 := fx.remote.Root()
	if err1 != nil || err2 != nil || lr != rr {
		t.Fatalf("Root: %+v/%v vs %+v/%v", lr, err1, rr, err2)
	}
	for pre := int64(1); pre <= fx.doc.Count; pre++ {
		lk, err1 := fx.local.Children(pre)
		rk, err2 := fx.remote.Children(pre)
		if err1 != nil || err2 != nil || len(lk) != len(rk) {
			t.Fatalf("Children(%d) disagree", pre)
		}
		for _, name := range []string{"site", "person", "city"} {
			v := fx.val(t, name)
			lc, err1 := fx.local.Contains(pre, v)
			rc, err2 := fx.remote.Contains(pre, v)
			if err1 != nil || err2 != nil || lc != rc {
				t.Fatalf("Contains(%d, %s) disagree: %v/%v", pre, name, lc, rc)
			}
		}
	}
	if fx.rmiCli.Stats().Calls == 0 {
		t.Fatal("remote path did not use RMI")
	}
}

func TestErrorsPropagateOverRMI(t *testing.T) {
	fx := newFixture(t, testXML)
	if _, err := fx.remote.Children(99999); err != nil {
		t.Fatalf("children of missing node should be empty, got %v", err)
	}
	_, err := fx.remote.Contains(99999, 5)
	if err == nil {
		t.Fatal("EvalAt on missing node succeeded")
	}
	if !strings.Contains(err.Error(), "not found") {
		t.Fatalf("error lost its cause: %v", err)
	}
}

func TestPolyCache(t *testing.T) {
	c := newPolyCache(2)
	c.put(1, ring.Poly{1})
	c.put(2, ring.Poly{2})
	c.put(3, ring.Poly{3}) // evicts something
	if c.len() != 2 {
		t.Fatalf("cache len = %d, want 2", c.len())
	}
	if _, ok := c.get(3); !ok {
		t.Fatal("most recent insert evicted")
	}
	// Disabled cache.
	d := newPolyCache(0)
	d.put(1, ring.Poly{1})
	if _, ok := d.get(1); ok {
		t.Fatal("disabled cache stored an entry")
	}
}

func BenchmarkContainsLocal(b *testing.B) {
	fx := newFixture(b, testXML)
	v, _ := fx.m.Value("city")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fx.local.Contains(1, v); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkContainsRemote(b *testing.B) {
	fx := newFixture(b, testXML)
	v, _ := fx.m.Value("city")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fx.remote.Contains(1, v); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEqualsLocal(b *testing.B) {
	fx := newFixture(b, testXML)
	v, _ := fx.m.Value("site")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fx.local.Equals(1, v); err != nil {
			b.Fatal(err)
		}
	}
}
