package filter

import (
	"fmt"
	"sync"
	"testing"

	"encshare/internal/ring"
)

func mkPoly(n int, tag uint32) ring.Poly {
	p := make(ring.Poly, n)
	if n > 0 {
		p[0] = tag
	}
	return p
}

// TestCacheHotEntrySurvivesScan is the eviction-pathology regression
// test: under the old evict-arbitrary-map-key policy, a stream of cold
// inserts could evict the one hot entry on every round, collapsing its
// hit rate. With CLOCK second-chance eviction, a repeatedly-referenced
// node must keep a ≥90% hit rate through an arbitrarily long cold scan.
func TestCacheHotEntrySurvivesScan(t *testing.T) {
	const cap = 64
	c := newPolyCache(cap)
	hot := int64(7)
	c.put(hot, mkPoly(4, 1))

	hits := 0
	const rounds = 4096
	for i := 0; i < rounds; i++ {
		// One cold insert per round: a scan workload streaming new nodes
		// through the cache.
		cold := int64(1000 + i)
		c.put(cold, mkPoly(4, 2))
		// The hot node is referenced every round.
		if _, ok := c.get(hot); ok {
			hits++
		} else {
			c.put(hot, mkPoly(4, 1))
		}
	}
	rate := float64(hits) / rounds
	if rate < 0.9 {
		t.Fatalf("hot entry hit rate %.2f under cold scan, want >= 0.90", rate)
	}
}

// TestCacheRepeatedNodeWorkloadHitRate drives a whole working set that
// fits the cache through a longer mixed scan: every resident node must
// stay resident (aggregate hit rate ≥90%), which the random-eviction
// policy could not guarantee.
func TestCacheRepeatedNodeWorkloadHitRate(t *testing.T) {
	const cap = 128
	c := newPolyCache(cap)
	workingSet := make([]int64, 32)
	for i := range workingSet {
		workingSet[i] = int64(i)
		c.put(int64(i), mkPoly(4, 3))
	}
	var hits, lookups int
	for round := 0; round < 1024; round++ {
		for _, pre := range workingSet {
			lookups++
			if _, ok := c.get(pre); ok {
				hits++
			} else {
				c.put(pre, mkPoly(4, 3))
			}
		}
		// Interleave cold traffic wider than the spare capacity.
		for j := 0; j < 8; j++ {
			c.put(int64(10_000+round*8+j), mkPoly(4, 4))
		}
	}
	rate := float64(hits) / float64(lookups)
	if rate < 0.9 {
		t.Fatalf("repeated-node hit rate %.2f, want >= 0.90", rate)
	}
}

// TestCacheBasics covers bounds, disabled mode, and update-in-place
// across the segmented layout.
func TestCacheBasics(t *testing.T) {
	c := newPolyCache(2)
	c.put(1, mkPoly(2, 1))
	c.put(2, mkPoly(2, 2))
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	c.put(3, mkPoly(2, 3)) // must evict, not grow
	if c.len() > 2 {
		t.Fatalf("len = %d after overflow, want <= 2", c.len())
	}
	if p, ok := c.get(3); !ok || p[0] != 3 {
		t.Fatal("most-recent insert missing")
	}
	// Update in place keeps one entry.
	c.put(3, mkPoly(2, 9))
	if p, ok := c.get(3); !ok || p[0] != 9 {
		t.Fatal("update-in-place failed")
	}

	d := newPolyCache(0) // disabled
	d.put(1, mkPoly(2, 1))
	if _, ok := d.get(1); ok {
		t.Fatal("disabled cache returned a hit")
	}
	if d.len() != 0 {
		t.Fatal("disabled cache grew")
	}

	neg := newPolyCache(-1)
	neg.put(1, mkPoly(2, 1))
	if _, ok := neg.get(1); ok {
		t.Fatal("negative-capacity cache returned a hit")
	}
}

// TestCacheCounters checks hit/miss accounting.
func TestCacheCounters(t *testing.T) {
	c := newPolyCache(8)
	c.put(1, mkPoly(2, 1))
	c.get(1) // hit
	c.get(2) // miss
	c.get(1) // hit
	hits, misses := c.counters()
	if hits != 2 || misses != 1 {
		t.Fatalf("counters = %d hits / %d misses, want 2/1", hits, misses)
	}
}

// TestCacheSegmentsSized checks the segment count adapts to capacity:
// small caches must hold essentially their configured entry count
// (hash spread across segments can cost a few slots at larger sizes,
// never an order of magnitude).
func TestCacheSegmentsSized(t *testing.T) {
	for _, max := range []int{1, 2, 7, 16, 128, 4096} {
		c := newPolyCache(max)
		for i := 0; i < max; i++ {
			c.put(int64(i*7919), mkPoly(1, 0))
		}
		got := c.len()
		if got < 1 || got < max*9/10 {
			t.Fatalf("cap %d: only %d resident", max, got)
		}
	}
}

// TestCacheConcurrent hammers the segmented cache from many goroutines;
// meaningful under -race.
func TestCacheConcurrent(t *testing.T) {
	c := newPolyCache(256)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				pre := int64((w*2000 + i) % 512)
				if _, ok := c.get(pre); !ok {
					c.put(pre, mkPoly(2, uint32(w)))
				}
			}
		}(w)
	}
	wg.Wait()
	if c.len() > 256+cacheSegments(256) {
		t.Fatalf("cache overflowed: %d entries", c.len())
	}
}

// TestCacheConcurrentSameKey overlaps gets with puts that overwrite an
// already-resident key — the exact interleaving where a get must copy
// the slice header under the segment lock (meaningful under -race).
func TestCacheConcurrentSameKey(t *testing.T) {
	c := newPolyCache(16)
	const key = int64(42)
	c.put(key, mkPoly(2, 0))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				if w%2 == 0 {
					c.put(key, mkPoly(2, uint32(i)))
				} else if p, ok := c.get(key); ok && len(p) != 2 {
					t.Errorf("torn read: len %d", len(p))
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestCLOCKSweepTerminates fills one segment with referenced entries
// and inserts one more: the sweep must clear bits and still evict.
func TestCLOCKSweepTerminates(t *testing.T) {
	c := newPolyCache(4) // small enough to collapse to few segments
	var keys []int64
	for i := 0; len(keys) < 4 && i < 1024; i++ {
		c.put(int64(i), mkPoly(1, 0))
		keys = append(keys, int64(i))
	}
	for _, k := range keys {
		c.get(k) // set every reference bit
	}
	c.put(9999, mkPoly(1, 5)) // must not spin forever
	if _, ok := c.get(9999); !ok {
		t.Fatal("insert after full-reference sweep missing")
	}
}

func ExampleServerStats() {
	a := ServerStats{Evals: 1, CacheHits: 2, CacheMisses: 3, Decodes: 4, Aggregates: 5}
	b := ServerStats{Evals: 10, CacheHits: 20, CacheMisses: 30, Decodes: 40, Aggregates: 50}
	fmt.Println(a.Add(b))
	// Output: {11 22 33 44 55}
}
