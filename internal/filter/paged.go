// Byte-aware batch reply framing. The client-side chunking in batch.go
// bounds batch *member counts*, but a single pathological member — a
// giant subtree in DescendantsBatch, a node with thousands of children in
// NodePolysBatch — could still blow the 64 MiB rmi frame, because member
// count says nothing about reply bytes. The paged protocol bounds the
// reply itself: the server fills one page up to a byte budget (estimated
// from the encoded size of each row) and returns a resume cursor; the
// client loops until Done. A normal batch fits in one page, so the
// exchange counts the tests pin are unchanged; only a pathological reply
// costs extra round-trips — instead of a hard frame error.
//
// Descendant pages split *inside* a member (row granularity), so even one
// multi-million-node subtree streams out in bounded frames. Equality
// bundles page at bundle granularity (a bundle is one node plus its
// children's share rows, bounded by fanout × poly size), with at least
// one bundle per page so progress is guaranteed.
//
// Compatibility follows the batch.go pattern: new servers register the
// paged methods alongside the originals; Remote probes the paged method
// once and falls back to the unpaged batch (then to per-call) against
// older servers.
package filter

import (
	"fmt"
)

// ReplyByteBudget bounds the estimated payload of one paged reply frame,
// with a wide margin under the 64 MiB rmi frame limit for gob overhead.
// Exported as a tuning knob: servers on memory-constrained hosts can
// shrink it, and tests shrink it to force multi-page replies (including
// the chaos tests that kill a replica between pages).
var ReplyByteBudget = 48 << 20

// pageFetchChunk is how many members the server fetches at a time while
// filling a page — keeps the worker pool busy without fetching far past
// the byte budget (over-fetched members are re-fetched on the next page).
var pageFetchChunk = 128

// metaWireBytes is a conservative estimate of one gob-encoded NodeMeta.
const metaWireBytes = 32

// polyRowWireBytes estimates one encoded PolyRow.
func polyRowWireBytes(r PolyRow) int { return len(r.Poly) + 24 }

func nodePolysWire(b NodePolys) int {
	n := polyRowWireBytes(b.Node) + len(b.Err) + 16
	for _, c := range b.Children {
		n += polyRowWireBytes(c)
	}
	return n
}

func partialNodePolysWire(b PartialNodePolys) int {
	n := polyRowWireBytes(b.Node) + len(b.Err) + 16
	for _, c := range b.Children {
		n += polyRowWireBytes(c)
	}
	return n
}

// descPageArgs resumes a paged DescendantsBatch at Member; Resume is 0
// or the last pre already delivered for that member — a descendant
// interval is defined by (pre, post), so restarting the span at the
// last delivered pre makes the server scan only the remaining rows
// (the pathological giant member streams in O(total) work, not
// O(pages × total)).
type descPageArgs struct {
	Spans  []Span
	Member int
	Resume int64
}

// descPagePart is one member's (possibly partial) row run within a page.
type descPagePart struct {
	Member int
	Metas  []NodeMeta
}

type descPageReply struct {
	Parts      []descPagePart
	NextMember int
	NextResume int64
	Done       bool
}

// pageDescendants serves one page of a DescendantsBatch reply over any
// BatchAPI, splitting inside wide members at row granularity.
func pageDescendants(b BatchAPI, a descPageArgs) (descPageReply, error) {
	n := len(a.Spans)
	if a.Member < 0 || a.Member > n {
		return descPageReply{}, fmt.Errorf("filter: bad descendants page cursor %d", a.Member)
	}
	var rep descPageReply
	budget := ReplyByteBudget
	emitted := 0
	m, resume := a.Member, a.Resume
	for m < n {
		end := m + pageFetchChunk
		if end > n {
			end = n
		}
		window := make([]Span, end-m)
		copy(window, a.Spans[m:end])
		if resume > 0 {
			window[0] = Span{Pre: resume, Post: window[0].Post}
		}
		lists, err := b.DescendantsBatch(window)
		if err != nil {
			return descPageReply{}, err
		}
		if err := checkReplyLen(lists, end-m); err != nil {
			return descPageReply{}, err
		}
		for _, metas := range lists {
			take := len(metas)
			if max := budget / metaWireBytes; take > max {
				take = max
			}
			if take == 0 && emitted == 0 && len(metas) > 0 {
				take = 1 // guarantee progress even past the budget
			}
			if take > 0 {
				rep.Parts = append(rep.Parts, descPagePart{Member: m, Metas: metas[:take]})
				budget -= take * metaWireBytes
				emitted += take
			}
			if take < len(metas) {
				next := resume
				if take > 0 {
					next = metas[take-1].Pre
				}
				rep.NextMember, rep.NextResume = m, next
				return rep, nil
			}
			m, resume = m+1, 0
			if budget <= 0 && m < n {
				rep.NextMember, rep.NextResume = m, 0
				return rep, nil
			}
		}
	}
	rep.Done = true
	return rep, nil
}

// bundlePageArgs resumes a paged bundle batch (NodePolysBatch or
// NodePolysPartial) at member index Member.
type bundlePageArgs struct {
	Pres   []int64
	Member int
}

// bundlePage is one page of bundles: members [args.Member,
// args.Member+len(Bundles)) of the request, in order.
type bundlePage[T any] struct {
	Bundles []T
	Done    bool
}

// pageBundles serves one page of a bundle batch, splitting between
// bundles by estimated encoded size with at least one bundle per page.
func pageBundles[T any](a bundlePageArgs, fetch func([]int64) ([]T, error), size func(T) int) (bundlePage[T], error) {
	n := len(a.Pres)
	if a.Member < 0 || a.Member > n {
		return bundlePage[T]{}, fmt.Errorf("filter: bad bundle page cursor %d", a.Member)
	}
	var rep bundlePage[T]
	budget := ReplyByteBudget
	m := a.Member
	for m < n && budget > 0 {
		end := m + pageFetchChunk
		if end > n {
			end = n
		}
		part, err := fetch(a.Pres[m:end])
		if err != nil {
			return bundlePage[T]{}, err
		}
		if err := checkReplyLen(part, end-m); err != nil {
			return bundlePage[T]{}, err
		}
		for _, bdl := range part {
			c := size(bdl)
			if c > budget && len(rep.Bundles) > 0 {
				return rep, nil // next page re-fetches from here
			}
			rep.Bundles = append(rep.Bundles, bdl)
			budget -= c
			m++
			if budget <= 0 {
				break
			}
		}
	}
	rep.Done = m == n
	return rep, nil
}

// remotePagedBundles drives a paged bundle method from the client side:
// loop pages until Done, validating that the (untrusted) server makes
// progress and answers exactly the requested members. handled=false
// means the server does not speak the paged protocol.
func remotePagedBundles[T any](r *Remote, method string, pres []int64) (out []T, handled bool, err error) {
	if r.pagedOff(method) {
		return nil, false, nil
	}
	if len(pres) == 0 {
		return nil, true, nil
	}
	out = make([]T, 0, len(pres))
	for {
		var rep bundlePage[T]
		if err := r.call(method, bundlePageArgs{Pres: pres, Member: len(out)}, &rep); err != nil {
			if r.notePagedUnknown(err, method) {
				return nil, false, nil
			}
			return nil, true, err
		}
		if len(rep.Bundles) == 0 && !rep.Done {
			return nil, true, &BadReplyError{Msg: fmt.Sprintf("paged %s reply made no progress at member %d", method, len(out))}
		}
		out = append(out, rep.Bundles...)
		if len(out) > len(pres) {
			return nil, true, &BadReplyError{Msg: fmt.Sprintf("paged %s reply carried %d members for %d requests", method, len(out), len(pres))}
		}
		if rep.Done {
			if err := checkReplyLen(out, len(pres)); err != nil {
				return nil, true, err
			}
			return out, true, nil
		}
	}
}

// descendantsPaged drives the paged descendants method; handled=false
// means the server does not speak it.
func (r *Remote) descendantsPaged(spans []Span) (out [][]NodeMeta, handled bool, err error) {
	if r.pagedOff(methodDescendantsPage) {
		return nil, false, nil
	}
	if len(spans) == 0 {
		return nil, true, nil
	}
	out = make([][]NodeMeta, len(spans))
	m, resume := 0, int64(0)
	for {
		var rep descPageReply
		if err := r.call(methodDescendantsPage, descPageArgs{Spans: spans, Member: m, Resume: resume}, &rep); err != nil {
			if r.notePagedUnknown(err, methodDescendantsPage) {
				return nil, false, nil
			}
			return nil, true, err
		}
		for _, p := range rep.Parts {
			if p.Member < m || p.Member >= len(spans) {
				return nil, true, &BadReplyError{Msg: fmt.Sprintf("paged descendants reply addressed member %d outside [%d, %d)", p.Member, m, len(spans))}
			}
			out[p.Member] = append(out[p.Member], p.Metas...)
		}
		if rep.Done {
			return out, true, nil
		}
		if rep.NextMember < m || rep.NextMember >= len(spans) ||
			(rep.NextMember == m && rep.NextResume <= resume) {
			return nil, true, &BadReplyError{Msg: fmt.Sprintf("paged descendants reply made no progress (cursor %d/%d -> %d/%d)",
				m, resume, rep.NextMember, rep.NextResume)}
		}
		m, resume = rep.NextMember, rep.NextResume
	}
}
