// Package filter implements the paper's distributed filter architecture
// (§5.2): a ServerFilter that operates on the stored server shares, a
// ClientFilter that regenerates client shares from the seed and combines
// evaluations, and the two tests the query engines build on:
//
//   - the containment test ("does tag N occur anywhere in this node's
//     subtree?"): one server evaluation + one client evaluation, sum == 0;
//   - the equality test ("is this node itself tag N?"): reconstruct the
//     node polynomial and all children polynomials and check the first
//     factor f(node) == (x − t)·Π f(child) — exact, but costs O(#children)
//     reconstructions.
//
// The ClientFilter works against any ServerAPI: the in-process
// ServerFilter or an rmi proxy, which is how the prototype splits work
// over the network. Implementations that additionally provide BatchAPI
// (see batch.go) let the client collapse a whole engine step's checks
// into one round-trip; the client feature-detects batching and falls
// back to the original per-call protocol otherwise.
package filter

import (
	"sync/atomic"

	"encshare/internal/gf"
	"encshare/internal/obs"
	"encshare/internal/ring"
	"encshare/internal/secshare"
	"encshare/internal/store"
)

// NodeMeta is the structural information the client sees per node. The
// polynomial share stays on the server unless an equality test demands it.
type NodeMeta struct {
	Pre    int64
	Post   int64
	Parent int64
}

// PolyRow couples a node position with its server share blob (for
// equality-test reconstruction).
type PolyRow struct {
	Pre  int64
	Poly []byte
}

// ServerAPI is the operation set the server exposes — the paper's Filter
// interface as seen from the client.
type ServerAPI interface {
	// Root returns the document root (parent = 0).
	Root() (NodeMeta, error)
	// Node returns the metadata of the node at pre (for parent steps).
	Node(pre int64) (NodeMeta, error)
	// Children returns the children of the node at pre, in document order.
	Children(pre int64) ([]NodeMeta, error)
	// Descendants returns all proper descendants of (pre, post).
	Descendants(pre, post int64) ([]NodeMeta, error)
	// EvalAt evaluates the *server share* of the node at pre at the point,
	// returning a field element.
	EvalAt(pre int64, point gf.Elem) (gf.Elem, error)
	// Poly returns the server share blob of the node at pre.
	Poly(pre int64) (PolyRow, error)
	// ChildrenPolys returns the share blobs of all children of pre.
	ChildrenPolys(pre int64) ([]PolyRow, error)
	// Count returns the number of stored nodes.
	Count() (int64, error)
}

// ServerFilter implements ServerAPI directly against a store. It holds a
// bounded cache of decoded polynomials (decoding a radix-q blob costs more
// than an evaluation); the cache is segment-locked with CLOCK eviction
// (see cache.go).
type ServerFilter struct {
	st      *store.Store
	r       *ring.Ring
	evals   atomic.Int64
	decodes atomic.Int64
	workers int // batch pool bound; 0 means defaultWorkers()

	// aggregates counts aggregate frames served (AggregateBatch calls),
	// per filter, so multi-tenant stats stay disjoint like the cache
	// counters below.
	aggregates atomic.Int64

	cache *polyCache
	// keyBase namespaces this filter's entries inside a cache shared
	// with other filters (tenants): cache keys are keyBase+pre.
	keyBase int64
	// Per-filter cache traffic. The cache's own counters aggregate
	// every filter sharing it; these stay tenant-local so ServerStats
	// isolation holds under any cache layout.
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
}

// ServerOptions tunes a server filter beyond the defaults: an injected
// (possibly shared) decoded-polynomial cache with a key namespace, and
// the batch worker-pool bound. The zero value matches
// NewServerFilter(st, r, 0).
type ServerOptions struct {
	// Cache is the decoded-polynomial cache to use. Nil means a private
	// cache of CacheSize entries.
	Cache *PolyCache
	// CacheSize bounds the private cache when Cache is nil (<= 0
	// disables caching).
	CacheSize int
	// CacheKeyBase offsets this filter's cache keys, so filters of
	// different tenants can share one cache without colliding on equal
	// pre values. Must leave the pre range unshifted within an offset
	// window (the runtime spaces tenants 2^44 apart).
	CacheKeyBase int64
	// Workers bounds the batch worker pool (0 = number of CPUs).
	Workers int
}

// NewServerFilter creates a server filter over st, with polynomials
// decoded in ring r. cacheSize bounds the decoded-polynomial cache
// (0 disables caching).
func NewServerFilter(st *store.Store, r *ring.Ring, cacheSize int) *ServerFilter {
	return NewServerFilterWith(st, r, ServerOptions{CacheSize: cacheSize})
}

// NewServerFilterWith is NewServerFilter with explicit options — how
// the server runtime builds per-tenant filters that draw on a cache it
// owns.
func NewServerFilterWith(st *store.Store, r *ring.Ring, opts ServerOptions) *ServerFilter {
	cache := newPolyCache(opts.CacheSize)
	if opts.Cache != nil {
		cache = opts.Cache.c
	}
	sf := &ServerFilter{st: st, r: r, cache: cache, keyBase: opts.CacheKeyBase}
	if opts.Workers > 0 {
		sf.workers = opts.Workers
	}
	return sf
}

// Evals returns the number of polynomial evaluations performed server-side.
func (s *ServerFilter) Evals() int64 { return s.evals.Load() }

// ServerStats aggregates the server-side work counters: share
// evaluations, decoded-polynomial cache traffic, and blob decodes. A
// decode only happens on a cache miss (or with the cache disabled), so
// Decodes vs CacheHits is the direct measure of what the cache saves.
type ServerStats struct {
	Evals       int64
	CacheHits   int64
	CacheMisses int64
	Decodes     int64
	// Aggregates counts aggregate fold frames served (AggregateBatch
	// calls). Gob tolerates the field's absence in either direction, so
	// old and new binaries interoperate (old peers report/see zero).
	Aggregates int64
}

// Add returns the member-wise sum — how a cluster session aggregates
// per-shard stats.
func (s ServerStats) Add(o ServerStats) ServerStats {
	return ServerStats{
		Evals:       s.Evals + o.Evals,
		CacheHits:   s.CacheHits + o.CacheHits,
		CacheMisses: s.CacheMisses + o.CacheMisses,
		Decodes:     s.Decodes + o.Decodes,
		Aggregates:  s.Aggregates + o.Aggregates,
	}
}

// Sub returns s - o member-wise: the server work done between two
// snapshots, which is what a query trace attributes to its window.
func (s ServerStats) Sub(o ServerStats) ServerStats {
	return ServerStats{
		Evals:       s.Evals - o.Evals,
		CacheHits:   s.CacheHits - o.CacheHits,
		CacheMisses: s.CacheMisses - o.CacheMisses,
		Decodes:     s.Decodes - o.Decodes,
		Aggregates:  s.Aggregates - o.Aggregates,
	}
}

// StatsAPI is the optional introspection extension of ServerAPI. The
// in-process ServerFilter implements it directly; Remote fetches the
// stats over the wire (returning zeros from servers that predate the
// method); a cluster filter sums its shards.
type StatsAPI interface {
	ServerStats() (ServerStats, error)
}

// ServerStats implements StatsAPI. The counters are per-filter: two
// tenants' filters sharing one cache still report disjoint traffic.
func (s *ServerFilter) ServerStats() (ServerStats, error) {
	return ServerStats{
		Evals:       s.evals.Load(),
		CacheHits:   s.cacheHits.Load(),
		CacheMisses: s.cacheMisses.Load(),
		Decodes:     s.decodes.Load(),
		Aggregates:  s.aggregates.Load(),
	}, nil
}

func toMeta(rows []store.NodeRow) []NodeMeta {
	out := make([]NodeMeta, len(rows))
	for i, r := range rows {
		out[i] = NodeMeta{Pre: r.Pre, Post: r.Post, Parent: r.Parent}
	}
	return out
}

// descendantsMeta builds the reply frame for a subtree expansion through
// the store's streaming visitor: the numbering is appended straight into
// the []NodeMeta, skipping the intermediate []NodeRow the materializing
// path allocates per row.
func descendantsMeta(st *store.Store, pre, post int64) ([]NodeMeta, error) {
	var out []NodeMeta
	err := st.VisitDescendantsMeta(pre, post, func(pre, post, parent int64) {
		out = append(out, NodeMeta{Pre: pre, Post: post, Parent: parent})
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Root implements ServerAPI.
func (s *ServerFilter) Root() (NodeMeta, error) {
	row, err := s.st.Root()
	if err != nil {
		return NodeMeta{}, err
	}
	return NodeMeta{Pre: row.Pre, Post: row.Post, Parent: row.Parent}, nil
}

// Node implements ServerAPI.
func (s *ServerFilter) Node(pre int64) (NodeMeta, error) {
	row, err := s.st.NodeMeta(pre)
	if err != nil {
		return NodeMeta{}, err
	}
	return NodeMeta{Pre: row.Pre, Post: row.Post, Parent: row.Parent}, nil
}

// Children implements ServerAPI.
func (s *ServerFilter) Children(pre int64) ([]NodeMeta, error) {
	rows, err := s.st.ChildrenMeta(pre)
	if err != nil {
		return nil, err
	}
	return toMeta(rows), nil
}

// Descendants implements ServerAPI.
func (s *ServerFilter) Descendants(pre, post int64) ([]NodeMeta, error) {
	return descendantsMeta(s.st, pre, post)
}

func (s *ServerFilter) serverPoly(pre int64) (ring.Poly, error) {
	if p, ok := s.cache.get(s.keyBase + pre); ok {
		s.cacheHits.Add(1)
		return p, nil
	}
	s.cacheMisses.Add(1)
	row, err := s.st.Node(pre)
	if err != nil {
		return nil, err
	}
	p, err := s.r.FromBytes(row.Poly)
	if err != nil {
		return nil, decodeErr(pre, err)
	}
	s.decodes.Add(1)
	s.cache.put(s.keyBase+pre, p)
	return p, nil
}

// EvalAt implements ServerAPI.
func (s *ServerFilter) EvalAt(pre int64, point gf.Elem) (gf.Elem, error) {
	p, err := s.serverPoly(pre)
	if err != nil {
		return 0, err
	}
	s.evals.Add(1)
	return s.r.Eval(p, point), nil
}

// Poly implements ServerAPI.
func (s *ServerFilter) Poly(pre int64) (PolyRow, error) {
	row, err := s.st.Node(pre)
	if err != nil {
		return PolyRow{}, err
	}
	return PolyRow{Pre: row.Pre, Poly: row.Poly}, nil
}

// ChildrenPolys implements ServerAPI.
func (s *ServerFilter) ChildrenPolys(pre int64) ([]PolyRow, error) {
	rows, err := s.st.Children(pre)
	if err != nil {
		return nil, err
	}
	out := make([]PolyRow, len(rows))
	for i, r := range rows {
		out[i] = PolyRow{Pre: r.Pre, Poly: r.Poly}
	}
	return out, nil
}

// Count implements ServerAPI.
func (s *ServerFilter) Count() (int64, error) { return s.st.Count() }

// Counters aggregates the client-side work metrics the experiments plot.
type Counters struct {
	// Evaluations counts containment point-tests: each is one server-share
	// evaluation plus one client-share evaluation (the paper's
	// "evaluations" in Fig. 5).
	Evaluations atomic.Int64
	// Reconstructions counts full polynomial reconstructions (client share
	// + server share), the cost unit of the equality test.
	Reconstructions atomic.Int64
	// NodesFetched counts node metadata records retrieved from the server.
	NodesFetched atomic.Int64
	// Decodes counts client-side share-blob decodes (equality tests
	// decode the node and child rows the server ships).
	Decodes atomic.Int64
	// Folds counts client shares folded into an aggregate accumulator
	// (the per-row cost of the aggregation phase: one PRG pass per row,
	// whether the server folded or the client reconstructed).
	Folds atomic.Int64
}

// Snapshot is a point-in-time copy of the counters.
type Snapshot struct {
	Evaluations     int64
	Reconstructions int64
	NodesFetched    int64
	Decodes         int64
	Folds           int64
}

// Snapshot returns the current counter values.
func (c *Counters) Snapshot() Snapshot {
	return Snapshot{
		Evaluations:     c.Evaluations.Load(),
		Reconstructions: c.Reconstructions.Load(),
		NodesFetched:    c.NodesFetched.Load(),
		Decodes:         c.Decodes.Load(),
		Folds:           c.Folds.Load(),
	}
}

// Sub returns s - o, the work done between two snapshots.
func (s Snapshot) Sub(o Snapshot) Snapshot {
	return Snapshot{
		Evaluations:     s.Evaluations - o.Evaluations,
		Reconstructions: s.Reconstructions - o.Reconstructions,
		NodesFetched:    s.NodesFetched - o.NodesFetched,
		Decodes:         s.Decodes - o.Decodes,
		Folds:           s.Folds - o.Folds,
	}
}

// Client is the paper's ClientFilter: it holds the secret (seed-derived
// scheme plus tag map values) and drives a ServerAPI.
type Client struct {
	api     ServerAPI
	scheme  *secshare.Scheme
	r       *ring.Ring
	workers int // batch pool bound; 0 means defaultWorkers()

	// tracer is the session's query tracer, if one was attached; the
	// engines read it to mark step boundaries.
	tracer atomic.Pointer[obs.Tracer]

	Counters Counters
}

// SetTracer attaches (nil detaches) the session's query tracer. The
// engines mark step boundaries on it; the transport proxies record the
// frames (see Remote.SetTracer — wiring both is the session's job).
func (c *Client) SetTracer(tr *obs.Tracer) {
	if tr == nil {
		c.tracer.Store(nil)
		return
	}
	c.tracer.Store(tr)
}

// Tracer returns the attached tracer, or nil.
func (c *Client) Tracer() *obs.Tracer { return c.tracer.Load() }

// NewClient builds a client filter over any ServerAPI.
func NewClient(api ServerAPI, scheme *secshare.Scheme) *Client {
	return &Client{api: api, scheme: scheme, r: scheme.Ring()}
}

// Ring exposes the polynomial ring (for engines needing dimensions).
func (c *Client) Ring() *ring.Ring { return c.r }

// Root fetches the root node.
func (c *Client) Root() (NodeMeta, error) {
	m, err := c.api.Root()
	if err == nil {
		c.Counters.NodesFetched.Add(1)
	}
	return m, err
}

// Node fetches metadata of a single node by pre.
func (c *Client) Node(pre int64) (NodeMeta, error) {
	m, err := c.api.Node(pre)
	if err == nil {
		c.Counters.NodesFetched.Add(1)
	}
	return m, err
}

// Children fetches child metadata.
func (c *Client) Children(pre int64) ([]NodeMeta, error) {
	ms, err := c.api.Children(pre)
	c.Counters.NodesFetched.Add(int64(len(ms)))
	return ms, err
}

// Descendants fetches descendant metadata.
func (c *Client) Descendants(pre, post int64) ([]NodeMeta, error) {
	ms, err := c.api.Descendants(pre, post)
	c.Counters.NodesFetched.Add(int64(len(ms)))
	return ms, err
}

// Count returns the number of stored nodes.
func (c *Client) Count() (int64, error) { return c.api.Count() }

// Contains runs the containment test: true iff the subtree of the node at
// pre contains a node mapped to val. Exactly one evaluation pair.
func (c *Client) Contains(pre int64, val gf.Elem) (bool, error) {
	sv, err := c.api.EvalAt(pre, val)
	if err != nil {
		return false, err
	}
	cv := c.scheme.EvalClientAt(uint64(pre), val)
	c.Counters.Evaluations.Add(1)
	return c.r.Field().Add(sv, cv) == 0, nil
}

// ServerStats fetches the server-side work counters when the backend
// exposes them (StatsAPI); zeros otherwise. For remote backends this is
// one exchange; for clusters it aggregates the shards.
func (c *Client) ServerStats() (ServerStats, error) {
	if sa, ok := c.api.(StatsAPI); ok {
		return sa.ServerStats()
	}
	return ServerStats{}, nil
}

// Reconstruct fetches the server share of pre and adds the regenerated
// client share, yielding the true node polynomial. The decode lands in
// a pooled buffer and the client share streams into it in place, so the
// only allocation is the returned polynomial itself.
func (c *Client) Reconstruct(pre int64) (ring.Poly, error) {
	row, err := c.api.Poly(pre)
	if err != nil {
		return nil, err
	}
	buf := c.r.GetPoly()
	if err := c.r.DecodeInto(buf, row.Poly); err != nil {
		c.r.PutPoly(buf)
		return nil, decodeErr(pre, err)
	}
	c.Counters.Decodes.Add(1)
	c.Counters.Reconstructions.Add(1)
	full := c.scheme.ReconstructInto(c.r.NewPoly(), buf, uint64(pre))
	c.r.PutPoly(buf)
	return full, nil
}

// Equals runs the strict equality test: true iff the node at pre is
// itself mapped to val. Cost: 1 + #children reconstructions (paper §5.2:
// "all the child nodes should be retrieved from the server and added to
// the pseudorandomly generated client polynomials").
func (c *Client) Equals(pre int64, val gf.Elem) (bool, error) {
	row, err := c.api.Poly(pre)
	if err != nil {
		return false, err
	}
	children, err := c.api.ChildrenPolys(pre)
	if err != nil {
		return false, err
	}
	ok, n, err := c.equalsFromBundle(pre, val, NodePolys{Node: row, Children: children})
	c.Counters.Reconstructions.Add(n)
	return ok, err
}
